/**
 * @file
 * Differential tests for the adversarial guest personalities: the
 * signal storm (dense mid-block faults into a registered handler, both
 * OS personalities), the JIT-style self-rewriting guest, and the
 * threaded guest whose two cooperative contexts share writable code
 * pages. Each runs under the reference interpreter and under the
 * translator — synchronously and with pipeline workers — and must
 * agree on exit code, console output and final architectural state.
 */

#include <gtest/gtest.h>

#include "guest/workloads.hh"
#include "harness/exec.hh"

namespace el
{
namespace
{

using btlib::OsAbi;
using guest::Workload;

void
diffWorkload(const Workload &w, core::Options opts = {})
{
    harness::Outcome ref = harness::runInterpreter(w.image, w.params.abi);
    harness::TranslatedRun tr =
        harness::runTranslated(w.image, w.params.abi, opts);
    const harness::Outcome &got = tr.outcome;

    ASSERT_FALSE(got.internal_error) << got.internal_reason;
    EXPECT_EQ(ref.exited, got.exited) << w.name;
    EXPECT_EQ(ref.faulted, got.faulted) << w.name;
    if (ref.exited)
        EXPECT_EQ(ref.exit_code, got.exit_code) << w.name;
    EXPECT_EQ(ref.console, got.console) << w.name;
    std::string why;
    EXPECT_TRUE(ref.final_state.equalsArch(got.final_state, &why))
        << w.name << " state mismatch: " << why;
    EXPECT_EQ(ref.final_state.eip, got.final_state.eip) << w.name;
}

const Workload &
byName(const std::vector<Workload> &suite, const std::string &name)
{
    for (const Workload &w : suite)
        if (w.name == name)
            return w;
    ADD_FAILURE() << "no workload " << name;
    return suite.front();
}

class AdversarialDiff : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AdversarialDiff, MatchesInterpreterSync)
{
    std::vector<Workload> suite = guest::adversarialSuite();
    diffWorkload(byName(suite, GetParam()));
}

TEST_P(AdversarialDiff, MatchesInterpreterPipelined)
{
    std::vector<Workload> suite = guest::adversarialSuite();
    core::Options opts;
    opts.translation_threads = 4;
    opts.deterministic_adoption = true;
    diffWorkload(byName(suite, GetParam()), opts);
}

INSTANTIATE_TEST_SUITE_P(Personalities, AdversarialDiff,
                         ::testing::Values("sigstorm", "sigstorm_win",
                                           "jit_rewriter",
                                           "threaded_smc"));

TEST(AdversarialWorkloads, SignalStormActuallyStorms)
{
    std::vector<Workload> suite = guest::adversarialSuite();
    const Workload &w = byName(suite, "sigstorm");
    harness::TranslatedRun tr =
        harness::runTranslated(w.image, w.params.abi);
    ASSERT_TRUE(tr.outcome.exited);
    // The storm delivered a dense stream of guest faults.
    EXPECT_GE(tr.runtime->stats().get("faults.memory"), 100u);
}

TEST(AdversarialWorkloads, RewritersActuallyTriggerSmc)
{
    std::vector<Workload> suite = guest::adversarialSuite();
    for (const char *name : {"jit_rewriter", "threaded_smc"}) {
        const Workload &w = byName(suite, name);
        harness::TranslatedRun tr =
            harness::runTranslated(w.image, w.params.abi);
        ASSERT_TRUE(tr.outcome.exited) << name;
        EXPECT_GE(tr.runtime->translator().stats.get("smc.invalidations"),
                  1u)
            << name;
    }
}

} // namespace
} // namespace el
