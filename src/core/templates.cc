/**
 * @file
 * Per-IA-32-instruction translation templates.
 *
 * One template per opcode family, written against EmitEnv so the same
 * source serves cold binary generation and hot IL generation (section 2:
 * "the precompiled binary templates and the IL-generation are derived
 * from the same template source code"). Control-transfer instructions
 * (Jcc/Jmp/Call/Ret/Int/...) are handled by the codegen drivers, which
 * own edge profiling and trace shaping; translateInsn() returns false
 * for them.
 */

#include "core/emit_env.hh"

#include "ipf/regs.hh"
#include "ia32/flags.hh"
#include "support/bitfield.hh"
#include "support/logging.hh"

namespace el::core
{

using ia32::Cond;
using ia32::FaultKind;
using ia32::Flag;
using ia32::Insn;
using ia32::Op;
using ia32::Operand;
using ia32::OperandKind;
using ia32::Reg;
using ipf::CmpRel;
using ipf::FpPrec;
using ipf::IpfOp;

namespace
{

/** Convert a predicate to a 0/1 general value. */
int16_t
predToGr(EmitEnv &env, int16_t pred)
{
    int16_t v = env.newGr();
    env.emitOp(IpfOp::Mov, v, ipf::gr_zero);
    Il set = env.mk(IpfOp::AddImm);
    set.qp = pred;
    set.dst = v;
    set.src1 = ipf::gr_zero;
    set.ins.imm = 1;
    env.emit(set);
    return v;
}

/** dst = src zero-extended to `size` bytes. */
int16_t
zxt(EmitEnv &env, int16_t src, unsigned size)
{
    if (size >= 8)
        return src;
    int16_t v = env.newGr();
    Il il = env.mk(IpfOp::Zxt);
    il.dst = v;
    il.src1 = src;
    il.ins.size = static_cast<uint8_t>(size);
    env.emit(il);
    return v;
}

/** dst = src sign-extended from `size` bytes. */
int16_t
sxt(EmitEnv &env, int16_t src, unsigned size)
{
    int16_t v = env.newGr();
    Il il = env.mk(IpfOp::Sxt);
    il.dst = v;
    il.src1 = src;
    il.ins.size = static_cast<uint8_t>(size);
    env.emit(il);
    return v;
}

int16_t
extrU(EmitEnv &env, int16_t src, unsigned pos, unsigned len)
{
    int16_t v = env.newGr();
    Il il = env.mk(IpfOp::ExtrU);
    il.dst = v;
    il.src1 = src;
    il.ins.pos = static_cast<uint8_t>(pos);
    il.ins.len = static_cast<uint8_t>(len);
    env.emit(il);
    return v;
}

int16_t
dep(EmitEnv &env, int16_t val, int16_t into, unsigned pos, unsigned len)
{
    int16_t v = env.newGr();
    Il il = env.mk(IpfOp::Dep);
    il.dst = v;
    il.src1 = val;
    il.src2 = into;
    il.ins.pos = static_cast<uint8_t>(pos);
    il.ins.len = static_cast<uint8_t>(len);
    env.emit(il);
    return v;
}

/** (p, p2) = a rel b. */
std::pair<int16_t, int16_t>
cmp(EmitEnv &env, CmpRel rel, int16_t a, int16_t b)
{
    int16_t p = env.newPr(), p2 = env.newPr();
    Il il = env.mk(IpfOp::Cmp);
    il.dst = p;
    il.dst2 = p2;
    il.src1 = a;
    il.src2 = b;
    il.ins.crel = rel;
    env.emit(il);
    return {p, p2};
}

std::pair<int16_t, int16_t>
cmpImm(EmitEnv &env, CmpRel rel, int64_t imm, int16_t b)
{
    int16_t p = env.newPr(), p2 = env.newPr();
    Il il = env.mk(IpfOp::CmpImm);
    il.dst = p;
    il.dst2 = p2;
    il.ins.imm = imm;
    il.src2 = b;
    il.ins.crel = rel;
    env.emit(il);
    return {p, p2};
}

/** Predicated move v (existing id) <- src. */
void
movIf(EmitEnv &env, int16_t pred, int16_t dst, int16_t src)
{
    Il il = env.mk(IpfOp::Mov);
    il.qp = pred;
    il.dst = dst;
    il.src1 = src;
    env.emit(il);
}

unsigned
opndSize(const Insn &insn)
{
    return insn.op_size;
}

// ----- integer templates --------------------------------------------------

bool
tplMovFamily(EmitEnv &env, const Insn &insn)
{
    unsigned size = opndSize(insn);
    switch (insn.op) {
      case Op::Mov: {
        int16_t v = env.readOperand(insn.src, size);
        env.writeOperand(insn.dst, v, size);
        return true;
      }
      case Op::Movzx: {
        int16_t v = env.readOperand(insn.src, size);
        env.writeGuest(static_cast<Reg>(insn.dst.reg), v, 4);
        return true;
      }
      case Op::Movsx: {
        int16_t v = env.readOperand(insn.src, size);
        env.writeGuest(static_cast<Reg>(insn.dst.reg),
                       sxt(env, v, size), 4, /*clean=*/false);
        return true;
      }
      case Op::Lea: {
        int16_t a = env.effAddr(insn.src.mem);
        env.writeGuest(static_cast<Reg>(insn.dst.reg), a, size);
        return true;
      }
      case Op::Xchg: {
        int16_t a = env.readOperand(insn.dst, size);
        int16_t b = env.readOperand(insn.src, size);
        env.writeOperand(insn.dst, b, size);
        env.writeOperand(insn.src, a, size);
        return true;
      }
      case Op::Push: {
        int16_t v = env.readOperand(insn.dst, 4);
        int16_t esp = env.readGuest(ia32::RegEsp);
        int16_t na = env.newGr();
        env.emitOp(IpfOp::AddImm, na, esp, -1, -4);
        int16_t addr = zxt(env, na, 4);
        env.emitStore(addr, v, 4);
        env.writeGuest(ia32::RegEsp, addr, 4);
        return true;
      }
      case Op::Pop: {
        int16_t esp = env.readGuest(ia32::RegEsp);
        int16_t v = env.emitLoad(esp, 4);
        env.writeOperand(insn.dst, v, 4);
        int16_t na = env.newGr();
        env.emitOp(IpfOp::AddImm, na, esp, -1, 4);
        env.writeGuest(ia32::RegEsp, na, 4, /*clean=*/false);
        return true;
      }
      case Op::Leave: {
        int16_t ebp = env.readGuest(ia32::RegEbp);
        int16_t v = env.emitLoad(ebp, 4);
        int16_t na = env.newGr();
        env.emitOp(IpfOp::AddImm, na, ebp, -1, 4);
        env.writeGuest(ia32::RegEsp, na, 4, /*clean=*/false);
        env.writeGuest(ia32::RegEbp, v, 4);
        return true;
      }
      case Op::Cdq: {
        int16_t eax = env.readGuest(ia32::RegEax);
        int16_t s = sxt(env, eax, 4);
        int16_t hi = env.newGr();
        Il sh = env.mk(IpfOp::ShrUImm);
        sh.dst = hi;
        sh.src1 = s;
        sh.ins.imm = 32;
        env.emit(sh);
        env.writeGuest(ia32::RegEdx, hi, 4);
        return true;
      }
      case Op::Sahf: {
        int16_t ah = env.readGuest8(ia32::RegAh);
        env.setFlagHome(ia32::FlagCf, extrU(env, ah, 0, 1));
        env.setFlagHome(ia32::FlagPf, extrU(env, ah, 2, 1));
        env.setFlagHome(ia32::FlagAf, extrU(env, ah, 4, 1));
        env.setFlagHome(ia32::FlagZf, extrU(env, ah, 6, 1));
        env.setFlagHome(ia32::FlagSf, extrU(env, ah, 7, 1));
        return true;
      }
      case Op::Lahf: {
        env.materializeFlags(ia32::FlagCf | ia32::FlagPf | ia32::FlagAf |
                             ia32::FlagZf | ia32::FlagSf);
        int16_t v = env.immGr(2); // the fixed bit
        v = dep(env, env.readFlagValue(ia32::FlagCf), v, 0, 1);
        v = dep(env, env.readFlagValue(ia32::FlagPf), v, 2, 1);
        v = dep(env, env.readFlagValue(ia32::FlagAf), v, 4, 1);
        v = dep(env, env.readFlagValue(ia32::FlagZf), v, 6, 1);
        v = dep(env, env.readFlagValue(ia32::FlagSf), v, 7, 1);
        env.writeGuest8(ia32::RegAh, v);
        return true;
      }
      case Op::Cld:
        env.emitOp(IpfOp::Mov, ipf::gr_flag_df, ipf::gr_zero);
        return true;
      case Op::Std: {
        int16_t one = env.immGr(1);
        env.emitOp(IpfOp::Mov, ipf::gr_flag_df, one);
        return true;
      }
      case Op::Nop:
        return true;
      default:
        return false;
    }
}

bool
tplAlu(EmitEnv &env, const Insn &insn)
{
    unsigned size = opndSize(insn);
    uint32_t written = ia32::insnFlagsWritten(insn);

    switch (insn.op) {
      case Op::Add:
      case Op::Adc:
      case Op::Sub:
      case Op::Sbb:
      case Op::Cmp:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Test: {
        int16_t a = env.readOperand(insn.dst, size);
        int16_t b = env.readOperand(insn.src, size);
        bool is_add = insn.op == Op::Add || insn.op == Op::Adc;
        bool is_sub = insn.op == Op::Sub || insn.op == Op::Sbb ||
                      insn.op == Op::Cmp;
        int16_t wide, res;
        if (is_add || is_sub) {
            wide = env.newGr();
            env.emitOp(is_add ? IpfOp::Add : IpfOp::Sub, wide, a, b);
            if (insn.op == Op::Adc || insn.op == Op::Sbb) {
                int16_t cf = env.readFlagValue(ia32::FlagCf);
                int16_t wide2 = env.newGr();
                env.emitOp(insn.op == Op::Adc ? IpfOp::Add : IpfOp::Sub,
                           wide2, wide, cf);
                wide = wide2;
            }
            res = zxt(env, wide, size);
            env.setFlags(is_add ? LazyFlags::Kind::Add
                                : LazyFlags::Kind::Sub,
                         size, wide, a, b, res, written);
        } else {
            res = env.newGr();
            IpfOp op = insn.op == Op::Or ? IpfOp::Or
                     : insn.op == Op::Xor ? IpfOp::Xor
                                          : IpfOp::And;
            env.emitOp(op, res, a, b);
            env.setFlags(LazyFlags::Kind::Logic, size, res, a, b, res,
                         written);
        }
        if (insn.op != Op::Cmp && insn.op != Op::Test)
            env.writeOperand(insn.dst, res, size);
        return true;
      }

      case Op::Inc:
      case Op::Dec: {
        int16_t a = env.readOperand(insn.dst, size);
        int16_t one = env.immGr(1);
        int16_t wide = env.newGr();
        env.emitOp(insn.op == Op::Inc ? IpfOp::Add : IpfOp::Sub, wide, a,
                   one);
        int16_t res = zxt(env, wide, size);
        env.setFlags(insn.op == Op::Inc ? LazyFlags::Kind::Add
                                        : LazyFlags::Kind::Sub,
                     size, wide, a, one, res, written);
        env.writeOperand(insn.dst, res, size);
        return true;
      }

      case Op::Neg: {
        int16_t a = env.readOperand(insn.dst, size);
        int16_t wide = env.newGr();
        env.emitOp(IpfOp::Sub, wide, ipf::gr_zero, a);
        int16_t res = zxt(env, wide, size);
        env.setFlags(LazyFlags::Kind::Sub, size, wide, ipf::gr_zero, a,
                     res, written);
        env.writeOperand(insn.dst, res, size);
        return true;
      }

      case Op::Not: {
        int16_t a = env.readOperand(insn.dst, size);
        int16_t ones = env.immGr(static_cast<int64_t>(
            ia32::sizeMask(size)));
        int16_t res = env.newGr();
        env.emitOp(IpfOp::Xor, res, a, ones);
        env.writeOperand(insn.dst, res, size);
        return true;
      }

      case Op::Imul2: {
        int16_t a = env.readOperand(insn.dst, size);
        int16_t b = env.readOperand(insn.src, size);
        int16_t wide = env.newGr();
        env.emitOp(IpfOp::Xmul, wide, sxt(env, a, size), sxt(env, b, size));
        int16_t res = zxt(env, wide, size);
        // SF/ZF/PF defined deterministically from the result; CF=OF set
        // when the product does not fit the destination.
        env.setFlags(LazyFlags::Kind::Logic, size, res, a, b, res,
                     written);
        auto [p, p2] = cmp(env, CmpRel::Ne, wide, sxt(env, res, size));
        int16_t v = predToGr(env, p);
        env.setFlagHome(ia32::FlagCf, v);
        env.setFlagHome(ia32::FlagOf, v);
        env.writeOperand(insn.dst, res, size);
        return true;
      }

      case Op::Mul1:
      case Op::Imul1: {
        int16_t a = env.readGuest(ia32::RegEax);
        int16_t b = env.readOperand(insn.src, 4);
        bool is_signed = insn.op == Op::Imul1;
        int16_t wa = is_signed ? sxt(env, a, 4) : a;
        int16_t wb = is_signed ? sxt(env, b, 4) : b;
        int16_t wide = env.newGr();
        env.emitOp(IpfOp::Xmul, wide, wa, wb);
        int16_t lo = zxt(env, wide, 4);
        int16_t hi = env.newGr();
        Il sh = env.mk(IpfOp::ShrUImm);
        sh.dst = hi;
        sh.src1 = wide;
        sh.ins.imm = 32;
        env.emit(sh);
        int16_t hi32 = zxt(env, hi, 4);
        env.setFlags(LazyFlags::Kind::Logic, 4, lo, a, b, lo, written);
        int16_t over;
        if (is_signed) {
            auto [p, p2] = cmp(env, CmpRel::Ne, wide, sxt(env, lo, 4));
            over = predToGr(env, p);
        } else {
            auto [p, p2] = cmpImm(env, CmpRel::Ne, 0, hi32);
            over = predToGr(env, p);
        }
        env.setFlagHome(ia32::FlagCf, over);
        env.setFlagHome(ia32::FlagOf, over);
        env.writeGuest(ia32::RegEax, lo, 4);
        env.writeGuest(ia32::RegEdx, hi32, 4);
        return true;
      }

      case Op::Div:
      case Op::Idiv: {
        int16_t b = env.readOperand(insn.src, 4);
        auto [pz, pnz] = cmpImm(env, CmpRel::Eq, 0, b);
        env.emitGuestFaultCheck(pz, FaultKind::DivideError);
        int16_t lo = env.readGuest(ia32::RegEax);
        int16_t hi = env.readGuest(ia32::RegEdx);
        int16_t hi_sh = env.newGr();
        Il sh = env.mk(IpfOp::ShlImm);
        sh.dst = hi_sh;
        sh.src1 = hi;
        sh.ins.imm = 32;
        env.emit(sh);
        int16_t d = env.newGr();
        env.emitOp(IpfOp::Or, d, hi_sh, lo);
        int16_t q = env.newGr(), r = env.newGr();
        if (insn.op == Op::Div) {
            env.emitOp(IpfOp::XDivU, q, d, b);
            env.emitOp(IpfOp::XRemU, r, d, b);
            int16_t qhi = env.newGr();
            Il s2 = env.mk(IpfOp::ShrUImm);
            s2.dst = qhi;
            s2.src1 = q;
            s2.ins.imm = 32;
            env.emit(s2);
            auto [po, po2] = cmpImm(env, CmpRel::Ne, 0, qhi);
            env.emitGuestFaultCheck(po, FaultKind::DivideError);
        } else {
            int16_t sb = sxt(env, b, 4);
            // INT64_MIN / -1 overflows the divide macro itself.
            int16_t min64 = env.immGr(INT64_MIN);
            auto [pm, pm2] = cmp(env, CmpRel::Eq, d, min64);
            int16_t mone = env.immGr(-1);
            int16_t pboth = env.newPr(), pboth2 = env.newPr();
            Il c2 = env.mk(IpfOp::Cmp);
            c2.qp = pm;
            c2.dst = pboth;
            c2.dst2 = pboth2;
            c2.src1 = sb;
            c2.src2 = mone;
            c2.ins.crel = CmpRel::Eq;
            env.emit(c2);
            // pboth is only meaningful when pm was true; clear otherwise.
            int16_t flagv = predToGr(env, pm);
            int16_t bothv = predToGr(env, pboth);
            int16_t andv = env.newGr();
            env.emitOp(IpfOp::And, andv, flagv, bothv);
            auto [pf, pf2] = cmpImm(env, CmpRel::Ne, 0, andv);
            env.emitGuestFaultCheck(pf, FaultKind::DivideError);
            env.emitOp(IpfOp::XDivS, q, d, sb);
            env.emitOp(IpfOp::XRemS, r, d, sb);
            auto [po, po2] = cmp(env, CmpRel::Ne, q, sxt(env, q, 4));
            env.emitGuestFaultCheck(po, FaultKind::DivideError);
        }
        env.writeGuest(ia32::RegEax, q, 4, /*clean=*/false);
        env.writeGuest(ia32::RegEdx, r, 4, /*clean=*/false);
        return true;
      }

      default:
        return false;
    }
}

bool
tplShift(EmitEnv &env, const Insn &insn)
{
    unsigned size = opndSize(insn);
    unsigned nbits = size * 8;
    bool is_imm = insn.src.kind == OperandKind::Imm;
    unsigned static_count =
        is_imm ? (static_cast<unsigned>(insn.src.imm) & 31) : 0;
    if (is_imm && static_count == 0)
        return true; // count 0: no result write, no flag change

    int16_t a = env.readOperand(insn.dst, size);
    int16_t c;
    if (is_imm) {
        c = env.immGr(static_count);
    } else {
        int16_t raw = env.readGuest8(ia32::RegCl);
        c = extrU(env, raw, 0, 5);
    }

    // Compute result and flag ingredients unconditionally.
    int16_t res = -1;
    int16_t cf = -1; // 0/1 value
    int16_t of = -1;
    unsigned lg = nbits == 32 ? 5 : nbits == 16 ? 4 : 3;
    int16_t cm = -1; // count mod nbits (rotates)

    switch (insn.op) {
      case Op::Shl: {
        int16_t wide = env.newGr();
        env.emitOp(IpfOp::Shl, wide, a, c);
        res = zxt(env, wide, size);
        cf = extrU(env, wide, nbits, 1);
        int16_t msb = extrU(env, res, nbits - 1, 1);
        of = env.newGr();
        env.emitOp(IpfOp::Xor, of, msb, cf);
        break;
      }
      case Op::Shr: {
        int16_t wide = env.newGr();
        env.emitOp(IpfOp::ShrU, wide, a, c);
        res = wide;
        int16_t one = env.immGr(1);
        int16_t cm1 = env.newGr();
        env.emitOp(IpfOp::Sub, cm1, c, one);
        int16_t sh = env.newGr();
        env.emitOp(IpfOp::ShrU, sh, a, cm1);
        cf = extrU(env, sh, 0, 1);
        of = extrU(env, a, nbits - 1, 1);
        break;
      }
      case Op::Sar: {
        int16_t sa = sxt(env, a, size);
        int16_t wide = env.newGr();
        env.emitOp(IpfOp::Shr, wide, sa, c);
        res = zxt(env, wide, size);
        int16_t one = env.immGr(1);
        int16_t cm1 = env.newGr();
        env.emitOp(IpfOp::Sub, cm1, c, one);
        int16_t sh = env.newGr();
        env.emitOp(IpfOp::Shr, sh, sa, cm1);
        cf = extrU(env, sh, 0, 1);
        of = ipf::gr_zero;
        break;
      }
      case Op::Rol:
      case Op::Ror: {
        cm = extrU(env, c, 0, lg);
        int16_t nb = env.immGr(nbits);
        int16_t nc = env.newGr();
        env.emitOp(IpfOp::Sub, nc, nb, cm);
        int16_t t1 = env.newGr(), t2 = env.newGr();
        if (insn.op == Op::Rol) {
            env.emitOp(IpfOp::Shl, t1, a, cm);
            env.emitOp(IpfOp::ShrU, t2, a, nc);
        } else {
            env.emitOp(IpfOp::ShrU, t1, a, cm);
            env.emitOp(IpfOp::Shl, t2, a, nc);
        }
        int16_t orv = env.newGr();
        env.emitOp(IpfOp::Or, orv, t1, t2);
        res = zxt(env, orv, size);
        if (insn.op == Op::Rol)
            cf = extrU(env, res, 0, 1);
        else
            cf = extrU(env, res, nbits - 1, 1);
        // OF (count==1 form) per the reference interpreter.
        int16_t msb = extrU(env, res, nbits - 1, 1);
        int16_t nxt = extrU(env, res, insn.op == Op::Rol ? 0
                                                         : nbits - 2,
                            1);
        of = env.newGr();
        env.emitOp(IpfOp::Xor, of, msb,
                   insn.op == Op::Rol ? cf : nxt);
        break;
      }
      default:
        return false;
    }

    bool rotate = insn.op == Op::Rol || insn.op == Op::Ror;

    if (is_imm) {
        env.writeOperand(insn.dst, res, size);
        if (!rotate) {
            env.setFlags(LazyFlags::Kind::Logic, size, res, a, a, res,
                         ia32::FlagsArith);
            // Override CF (and OF for count==1) after the Logic recipe.
            env.setFlagHome(ia32::FlagCf, cf);
            if (static_count == 1)
                env.setFlagHome(ia32::FlagOf, of);
            else if (insn.op == Op::Shl || insn.op == Op::Shr)
                env.setFlagHome(ia32::FlagOf, ipf::gr_zero);
            if (insn.op == Op::Sar)
                env.setFlagHome(ia32::FlagOf, ipf::gr_zero);
        } else {
            env.materializeFlags(ia32::FlagCf | ia32::FlagOf);
            env.setFlagHome(ia32::FlagCf, cf);
            env.setFlagHome(ia32::FlagOf,
                            static_count == 1 ? of : ipf::gr_zero);
        }
        return true;
    }

    // Dynamic (CL) count: results and flags change only when count != 0.
    auto [pnz, pz] = cmpImm(env, CmpRel::Ne, 0, c);
    // Merge the result.
    int16_t merged = env.newGr();
    env.emitOp(IpfOp::Mov, merged, a);
    movIf(env, pnz, merged, res);
    env.writeOperand(insn.dst, merged, size);

    // Flags: materialize the old state, then predicated-update homes.
    env.materializeFlags(ia32::FlagsArith);
    auto setIf = [&](Flag flag, int16_t val01) {
        Il il = env.mk(IpfOp::Mov);
        il.qp = pnz;
        il.dst = env.readFlagValue(flag); // home register id
        il.src1 = val01;
        env.emit(il);
    };
    setIf(ia32::FlagCf, cf);
    if (!rotate) {
        // ZF/SF/PF from the result; AF cleared.
        int16_t zf;
        {
            auto [pzf, pzf2] = cmpImm(env, CmpRel::Eq, 0, res);
            zf = predToGr(env, pzf);
        }
        setIf(ia32::FlagZf, zf);
        setIf(ia32::FlagSf, extrU(env, res, nbits - 1, 1));
        int16_t lob = extrU(env, res, 0, 8);
        int16_t pc = env.newGr();
        env.emitOp(IpfOp::Popcnt, pc, lob);
        int16_t lsb = extrU(env, pc, 0, 1);
        int16_t onev = env.immGr(1);
        int16_t pf = env.newGr();
        env.emitOp(IpfOp::Xor, pf, lsb, onev);
        setIf(ia32::FlagPf, pf);
        setIf(ia32::FlagAf, ipf::gr_zero);
    }
    // OF: only for count==1.
    int16_t of_final = env.newGr();
    env.emitOp(IpfOp::Mov, of_final, ipf::gr_zero);
    {
        auto [p1, p1b] = cmpImm(env, CmpRel::Eq, 1, c);
        movIf(env, p1, of_final, of);
    }
    setIf(ia32::FlagOf, of_final);
    return true;
}

bool
tplCond(EmitEnv &env, const Insn &insn)
{
    unsigned size = opndSize(insn);
    switch (insn.op) {
      case Op::Setcc: {
        int16_t p = env.condPred(insn.cond);
        env.writeOperand(insn.dst, predToGr(env, p), 1);
        return true;
      }
      case Op::Cmovcc: {
        int16_t v = env.readOperand(insn.src, size);
        int16_t p = env.condPred(insn.cond);
        int16_t cur = env.readOperand(insn.dst, size);
        int16_t merged = env.newGr();
        env.emitOp(IpfOp::Mov, merged, cur);
        movIf(env, p, merged, v);
        env.writeOperand(insn.dst, merged, size);
        return true;
      }
      default:
        return false;
    }
}

// ----- string templates ----------------------------------------------

bool
tplString(EmitEnv &env, const Insn &insn)
{
    unsigned size = opndSize(insn);
    // String code operates on the home registers directly so that each
    // iteration retires architecturally (REP is restartable).
    if (env.phase == Phase::Hot)
        env.closeRegion();

    int16_t step = env.newGr();
    {
        // step = DF ? -size : size
        int16_t pos = env.immGr(size);
        env.emitOp(IpfOp::Mov, step, pos);
        auto [pdf, pdf2] = cmpImm(env, CmpRel::Ne, 0, ipf::gr_flag_df);
        int16_t negv = env.immGr(-static_cast<int64_t>(size));
        movIf(env, pdf, step, negv);
    }

    const int16_t esi = ipf::grForGuest(ia32::RegEsi);
    const int16_t edi = ipf::grForGuest(ia32::RegEdi);
    const int16_t ecx = ipf::grForGuest(ia32::RegEcx);
    const int16_t eax = ipf::grForGuest(ia32::RegEax);

    int32_t loop_head = -1;
    int16_t p_done = -1;
    if (insn.rep) {
        loop_head = static_cast<int32_t>(env.body.size());
        auto [pz, pnz] = cmpImm(env, CmpRel::Eq, 0, ecx);
        p_done = pz;
        // Forward branch out of the loop; patched below.
        Il br = env.mk(IpfOp::Br);
        br.qp = p_done;
        br.target_il = -1; // patched to loop_end
        env.emit(br);
    }
    int32_t br_out_idx = insn.rep
        ? static_cast<int32_t>(env.body.size()) - 1
        : -1;

    auto advance = [&](int16_t reg) {
        int16_t t = env.newGr();
        env.emitOp(IpfOp::Add, t, reg, step);
        int16_t z = zxt(env, t, 4);
        Il mv = env.mk(IpfOp::Mov);
        mv.dst = reg;
        mv.src1 = z;
        mv.is_ordered = true;
        env.emit(mv);
    };

    switch (insn.op) {
      case Op::Movs: {
        int16_t v = env.emitLoad(esi, size);
        env.emitStore(edi, v, size);
        advance(esi);
        advance(edi);
        break;
      }
      case Op::Stos: {
        int16_t v = size == 4 ? eax : extrU(env, eax, 0, size * 8);
        env.emitStore(edi, v, size);
        advance(edi);
        break;
      }
      case Op::Lods: {
        int16_t v = env.emitLoad(esi, size);
        if (size == 4) {
            Il mv = env.mk(IpfOp::Mov);
            mv.dst = eax;
            mv.src1 = zxt(env, v, 4);
            mv.is_ordered = true;
            env.emit(mv);
        } else {
            int16_t merged = dep(env, v, eax, 0, size * 8);
            Il mv = env.mk(IpfOp::Mov);
            mv.dst = eax;
            mv.src1 = merged;
            mv.is_ordered = true;
            env.emit(mv);
        }
        advance(esi);
        break;
      }
      default:
        return false;
    }

    if (insn.rep) {
        // ecx -= 1; loop back.
        int16_t t = env.newGr();
        env.emitOp(IpfOp::AddImm, t, ecx, -1, -1);
        int16_t z = zxt(env, t, 4);
        Il mv = env.mk(IpfOp::Mov);
        mv.dst = ecx;
        mv.src1 = z;
        mv.is_ordered = true;
        env.emit(mv);
        Il back = env.mk(IpfOp::Br);
        back.target_il = loop_head;
        env.emit(back);
        int32_t loop_end = static_cast<int32_t>(env.body.size());
        env.body.ils[br_out_idx].target_il = loop_end;
        // Insert a label anchor so loop_end is a valid IL index.
        env.emit(env.mk(IpfOp::Nop));
    }
    return true;
}

} // namespace

// x87 / MMX / SSE templates live in templates_fp.cc.
bool tplX87(EmitEnv &env, const Insn &insn);
bool tplMmx(EmitEnv &env, const Insn &insn);
bool tplSse(EmitEnv &env, const Insn &insn);

bool
translateInsn(EmitEnv &env, const Insn &insn)
{
    const ia32::OpInfo &info = ia32::opInfo(insn.op);
    if (info.is_fp)
        return tplX87(env, insn);
    if (info.is_mmx)
        return tplMmx(env, insn);
    if (info.is_sse)
        return tplSse(env, insn);

    switch (insn.op) {
      case Op::Mov:
      case Op::Movzx:
      case Op::Movsx:
      case Op::Lea:
      case Op::Xchg:
      case Op::Push:
      case Op::Pop:
      case Op::Leave:
      case Op::Cdq:
      case Op::Sahf:
      case Op::Lahf:
      case Op::Cld:
      case Op::Std:
      case Op::Nop:
        return tplMovFamily(env, insn);
      case Op::Add:
      case Op::Adc:
      case Op::Sub:
      case Op::Sbb:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Cmp:
      case Op::Test:
      case Op::Inc:
      case Op::Dec:
      case Op::Neg:
      case Op::Not:
      case Op::Imul2:
      case Op::Mul1:
      case Op::Imul1:
      case Op::Div:
      case Op::Idiv:
        return tplAlu(env, insn);
      case Op::Shl:
      case Op::Shr:
      case Op::Sar:
      case Op::Rol:
      case Op::Ror:
        return tplShift(env, insn);
      case Op::Setcc:
      case Op::Cmovcc:
        return tplCond(env, insn);
      case Op::Movs:
      case Op::Stos:
      case Op::Lods:
        return tplString(env, insn);
      default:
        return false; // control transfers: handled by the drivers
    }
}

} // namespace el::core
