#include "core/audit.hh"

#include <array>
#include <cmath>
#include <cstdint>
#include <map>

#include "core/postmortem.hh"
#include "core/provenance.hh"
#include "core/report.hh"
#include "core/runtime.hh"
#include "persist/store.hh"
#include "support/faultinject.hh"
#include "support/flightrec.hh"
#include "support/json.hh"
#include "support/metrics.hh"
#include "support/profile.hh"
#include "support/strfmt.hh"
#include "support/trace.hh"

namespace el::core
{

using ipf::Bucket;

namespace
{

/** Closure tolerance for cycle sums: all charges are integer-valued
 *  doubles well below 2^53, so sums are exact; anything beyond
 *  rounding noise is a real leak. */
double
cycleTolerance(double total)
{
    return 0.5 + 1e-9 * std::fabs(total);
}

/** The merged counter namespace, mirroring runReportJson(). */
StatGroup
mergedStats(Runtime &rt)
{
    StatGroup all = rt.translator().stats;
    all.merge(rt.stats());
    if (rt.options().persist)
        all.merge(rt.options().persist->stats);
    return all;
}

// ----- provenance legality ----------------------------------------------

/** Legal (state, cause) pairs — the edges of the lifecycle state
 *  machine as actually emitted by the translator and runtime. A pair
 *  outside this table means a corrupted ledger or an undocumented
 *  transition; either way, a human should look. */
bool
legalPair(ProvState s, ProvCause c)
{
    switch (s) {
      case ProvState::Decoded:
        return c == ProvCause::None || c == ProvCause::SmcWrite;
      case ProvState::Cold:
        return c == ProvCause::None;
      case ProvState::HotQueued:
        return c == ProvCause::Heat || c == ProvCause::None;
      case ProvState::Session:
        return c == ProvCause::SessionOk ||
               c == ProvCause::SessionAbort;
      case ProvState::Published:
        return c == ProvCause::SessionOk;
      case ProvState::Adopted:
        return c == ProvCause::StoreHit;
      case ProvState::Persisted:
        return c == ProvCause::StoreRecord;
      case ProvState::Discarded:
        return c == ProvCause::Misalign || c == ProvCause::SmcWrite ||
               c == ProvCause::SmcMismatch ||
               c == ProvCause::StaleGeneration ||
               c == ProvCause::CacheFlush ||
               c == ProvCause::CachePressure ||
               c == ProvCause::QuarantineBlocked ||
               c == ProvCause::QuarantinePurge ||
               c == ProvCause::SessionAbort || c == ProvCause::None;
      case ProvState::Suspect:
        return c == ProvCause::None;
      case ProvState::Quarantined:
        return c == ProvCause::None ||
               c == ProvCause::SentinelDivergence ||
               c == ProvCause::FaultThreshold ||
               c == ProvCause::GuardThreshold;
      case ProvState::Retranslated:
        return c == ProvCause::Cooldown;
      case ProvState::Pinned:
        return c == ProvCause::None;
    }
    return false;
}

void
auditProvenance(Runtime &rt, audit::Result &r)
{
    const ProvenanceLedger *pl = rt.provenance();
    if (!pl)
        return;
    for (const auto &[eip, timeline] : pl->all()) {
        for (const ProvEvent &e : timeline) {
            r.check(legalPair(e.state, e.cause), "prov.legal_pair",
                    strfmt("eip 0x%08x: illegal transition %s/%s", eip,
                           provStateName(e.state),
                           provCauseName(e.cause)));
            // A hot publication or store adoption always names the
            // committed block; a missing id means the ledger was fed
            // before the block existed.
            if (e.state == ProvState::Published ||
                e.state == ProvState::Adopted)
                r.check(e.block_id >= 0, "prov.block_id",
                        strfmt("eip 0x%08x: %s event without a block "
                               "id",
                               eip, provStateName(e.state)));
            r.check(e.ts >= 0, "prov.timestamp",
                    strfmt("eip 0x%08x: negative timestamp %g", eip,
                           e.ts));
        }
    }
}

// ----- flight-recorder cross-counts -------------------------------------

void
auditFlight(Runtime &rt, audit::Result &r)
{
    const flight::FlightRecorder *fr = rt.flight();
    if (!fr)
        return;
    std::map<flight::Kind, uint64_t> counts;
    for (const flight::Event &e : fr->snapshot())
        ++counts[e.kind];
    const bool complete = fr->dropped() == 0;
    StatGroup stats = mergedStats(rt);

    // Each pairing below records the flight event and bumps the
    // counter on the same code path, so with a complete flight the
    // counts match exactly; with an overflowed (drop-oldest) ring the
    // flight can only undercount. A flight count *above* the counter
    // is corruption in every case.
    auto crossCheck = [&](flight::Kind kind, uint64_t stat_total,
                          const std::string &stat_name) {
        uint64_t seen = counts.count(kind) ? counts[kind] : 0;
        const char *kn = flight::kindName(kind);
        r.check(seen <= stat_total, "flight.cross_count",
                strfmt("%llu %s flight event(s) exceed %s = %llu",
                       static_cast<unsigned long long>(seen), kn,
                       stat_name.c_str(),
                       static_cast<unsigned long long>(stat_total)));
        if (complete)
            r.check(seen == stat_total, "flight.cross_count",
                    strfmt("%s flight events (%llu) != %s (%llu) with "
                           "zero ring drops",
                           kn, static_cast<unsigned long long>(seen),
                           stat_name.c_str(),
                           static_cast<unsigned long long>(
                               stat_total)));
    };

    crossCheck(flight::Kind::ColdXlate, stats.get("xlate.cold_blocks"),
               "xlate.cold_blocks");
    crossCheck(flight::Kind::CacheFlush,
               stats.get("recover.cache_flush"), "recover.cache_flush");
    crossCheck(flight::Kind::SmcInvalidate,
               stats.get("smc.invalidations"), "smc.invalidations");
    crossCheck(flight::Kind::HotCommit,
               stats.get("xlate.hot_blocks") +
                   stats.get("persist.adopted_blocks"),
               "xlate.hot_blocks + persist.adopted_blocks");
    crossCheck(flight::Kind::GuestFault, stats.get("faults.delivered"),
               "faults.delivered");
    crossCheck(flight::Kind::Divergence,
               stats.get("sentinel.divergence"), "sentinel.divergence");
    if (const FaultInjector *fi = rt.faultInjector()) {
        uint64_t seen = counts.count(flight::Kind::FaultInject)
                            ? counts[flight::Kind::FaultInject]
                            : 0;
        r.check(seen <= fi->totalFires(), "flight.cross_count",
                strfmt("%llu fault_inject flight event(s) exceed "
                       "injector fires = %llu",
                       static_cast<unsigned long long>(seen),
                       static_cast<unsigned long long>(
                           fi->totalFires())));
    }

    // Every event's lane must be a real lane: 0 (guest) or 1+slot
    // within the configured worker count.
    uint32_t max_lane =
        static_cast<uint32_t>(rt.options().translation_threads);
    for (const flight::Event &e : fr->snapshot())
        r.check(e.lane <= max_lane, "flight.lane",
                strfmt("%s event on lane %u with %u worker slot(s)",
                       flight::kindName(e.kind), e.lane, max_lane));
}

// ----- schema self-checks -----------------------------------------------

void
checkProducer(const json::Value &doc, const char *what,
              const buildinfo::ProducerStamp &expect, audit::Result &r)
{
    const json::Value *p = doc.find("producer");
    if (!p || !p->isObject()) {
        r.fail("schema.producer",
               strfmt("%s: no producer stamp", what));
        return;
    }
    r.check(p->strOr("tool", "") == expect.tool, "schema.producer",
            strfmt("%s: producer.tool \"%s\" != \"%s\"", what,
                   p->strOr("tool", "").c_str(), expect.tool.c_str()));
    r.check(static_cast<int>(p->numberOr("schema", 0)) == expect.schema,
            "schema.producer",
            strfmt("%s: producer.schema %d != %d", what,
                   static_cast<int>(p->numberOr("schema", 0)),
                   expect.schema));
}

void
auditSchemas(Runtime &rt, const AuditContext &ctx, audit::Result &r)
{
    // Render each document the run would emit and re-parse it: the
    // emitters and parsers live in different layers, so a drifted
    // field name or a broken writer shows up here before a reader
    // chokes on a real artifact in CI.
    std::string text =
        runReportJson(rt, ctx.workload, nullptr, ctx.producer);
    json::Value doc;
    std::string err;
    if (!json::Parser::parse(text, &doc, &err)) {
        r.fail("schema.report", "run report does not re-parse: " + err);
    } else {
        r.check(doc.strOr("kind", "") == "el-report", "schema.report",
                "run report kind != el-report");
        r.check(doc.numberOr("version", 0) == 1, "schema.report",
                "run report version != 1");
        if (ctx.producer)
            checkProducer(doc, "report", *ctx.producer, r);
        const json::Value *attr = doc.find("attribution");
        r.check(attr && attr->isObject(), "schema.report",
                "run report has no attribution object");
        if (attr && attr->isObject()) {
            double total = attr->numberOr("total", -1);
            double cycles = doc.numberOr("cycles", 0);
            r.check(std::fabs(total - cycles) <=
                        cycleTolerance(cycles),
                    "schema.report",
                    strfmt("serialized attribution total %.17g != "
                           "cycles %.17g",
                           total, cycles));
        }
    }

    if (metrics::Registry *m = rt.options().metrics) {
        std::string line = m->snapshotJson(rt.machine().totalCycles());
        json::Value mdoc;
        if (!json::Parser::parse(line, &mdoc, &err)) {
            r.fail("schema.metrics",
                   "metrics snapshot does not re-parse: " + err);
        } else {
            r.check(mdoc.strOr("kind", "") == "el-metrics",
                    "schema.metrics", "snapshot kind != el-metrics");
            r.check(mdoc.numberOr("version", 0) == 1, "schema.metrics",
                    "snapshot version != 1");
            r.check(mdoc.find("counters") != nullptr, "schema.metrics",
                    "snapshot has no counters object");
        }
    }

    PostmortemInfo info;
    info.workload = ctx.workload;
    info.exit_class = "audit";
    info.producer = ctx.producer;
    std::string pm = postmortemJson(rt, info);
    json::Value pdoc;
    if (!json::Parser::parse(pm, &pdoc, &err)) {
        r.fail("schema.postmortem",
               "postmortem bundle does not re-parse: " + err);
    } else {
        r.check(pdoc.strOr("kind", "") == "el-postmortem",
                "schema.postmortem", "bundle kind != el-postmortem");
        r.check(pdoc.numberOr("version", 0) == 1, "schema.postmortem",
                "bundle version != 1");
        r.check(pdoc.find("exit") != nullptr, "schema.postmortem",
                "bundle has no exit object");
    }
}

} // namespace

audit::Result
auditClosure(Runtime &rt)
{
    audit::Result r;
    if (!rt.initOk())
        return r;
    const ipf::Machine &m = rt.machine();
    const ipf::BucketStats &st = m.stats();
    double total = m.totalCycles();
    double tol = cycleTolerance(total);

    // The central closure identity: every cycle was charged either by
    // closeGroup() (and then also into a per-block cost) or by
    // chargeCycles() (and then also into the synthetic accumulator).
    // Cycles slipped into the buckets any other way break this sum.
    if (m.trackBlockCycles()) {
        double block_cycles = 0;
        double block_insns = 0;
        for (const auto &[id, cost] : m.blockCosts()) {
            block_cycles += cost.cycles;
            block_insns += cost.insns;
        }
        double accounted = block_cycles + m.syntheticCycles();
        r.check(std::fabs(accounted - total) <= tol, "closure.blocks",
                strfmt("block cycles %.17g + synthetic %.17g = %.17g "
                       "!= total %.17g (leak %+.17g)",
                       block_cycles, m.syntheticCycles(), accounted,
                       total, total - accounted));
        r.check(std::fabs(block_insns -
                          static_cast<double>(m.retired())) <= 0.5,
                "closure.block_insns",
                strfmt("block insns %.0f != retired %llu", block_insns,
                       static_cast<unsigned long long>(m.retired())));
    }

    uint64_t bucket_insns = 0;
    for (size_t b = 0; b < static_cast<size_t>(Bucket::NumBuckets); ++b)
        bucket_insns += st.insns[b];
    r.check(bucket_insns == m.retired(), "closure.bucket_insns",
            strfmt("bucket insns %llu != retired %llu",
                   static_cast<unsigned long long>(bucket_insns),
                   static_cast<unsigned long long>(m.retired())));

    static const char *bucket_names[] = {"hot", "cold", "overhead",
                                         "native", "idle"};
    for (size_t b = 0; b < static_cast<size_t>(Bucket::NumBuckets);
         ++b) {
        r.check(m.misalignCycles()[b] <= st.cycles[b] + tol,
                "closure.misalign",
                strfmt("misalign cycles %.17g exceed %s bucket %.17g",
                       m.misalignCycles()[b], bucket_names[b],
                       st.cycles[b]));
        r.check(st.cycles[b] >= -tol, "closure.bucket_sign",
                strfmt("%s bucket is negative: %.17g", bucket_names[b],
                       st.cycles[b]));
    }
    r.check(rt.faultOverheadCycles() <=
                st.cycles[static_cast<size_t>(Bucket::Overhead)] + tol,
            "closure.fault_overhead",
            strfmt("guard-recovery overhead %.17g exceeds overhead "
                   "bucket %.17g",
                   rt.faultOverheadCycles(),
                   st.cycles[static_cast<size_t>(Bucket::Overhead)]));

    // The Figure-6 view re-derives from the same buckets; it must
    // stay a partition (non-negative, summing back to the total).
    Attribution a = attributionOf(rt);
    const struct
    {
        const char *name;
        double v;
    } cats[] = {{"cold_code", a.cold_code},
                {"hot_code", a.hot_code},
                {"btgeneric", a.btgeneric},
                {"fault_handling", a.fault_handling},
                {"native", a.native},
                {"idle", a.idle}};
    for (const auto &c : cats)
        r.check(c.v >= -tol, "closure.attribution_sign",
                strfmt("attribution %s is negative: %.17g", c.name,
                       c.v));
    r.check(std::fabs(a.total() - total) <= tol,
            "closure.attribution_total",
            strfmt("attribution total %.17g != machine total %.17g",
                   a.total(), total));
    return r;
}

audit::Result
auditRun(Runtime &rt, const AuditContext &ctx)
{
    audit::Result r = auditClosure(rt);
    if (!rt.initOk())
        return r;
    auditFlight(rt, r);
    auditProvenance(rt, r);
    auditSchemas(rt, ctx, r);
    return r;
}

} // namespace el::core
