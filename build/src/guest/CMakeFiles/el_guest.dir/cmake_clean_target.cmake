file(REMOVE_RECURSE
  "libel_guest.a"
)
