file(REMOVE_RECURSE
  "libel_ipf.a"
)
