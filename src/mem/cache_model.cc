#include "mem/cache_model.hh"

#include "support/logging.hh"

namespace el::mem
{

CacheModel::CacheModel(std::vector<CacheLevelConfig> levels,
                       unsigned mem_latency)
    : configs_(std::move(levels)), mem_latency_(mem_latency)
{
    for (const auto &cfg : configs_) {
        el_assert(cfg.line && (cfg.line & (cfg.line - 1)) == 0,
                  "line size must be a power of 2");
        Level lvl;
        lvl.cfg = cfg;
        lvl.n_sets = cfg.size / (cfg.line * cfg.assoc);
        el_assert(lvl.n_sets > 0, "cache level %s too small",
                  cfg.name.c_str());
        lvl.ways.resize(lvl.n_sets * cfg.assoc);
        levels_.push_back(std::move(lvl));
        stats_.emplace_back();
    }
}

CacheModel
CacheModel::itanium2()
{
    return CacheModel({
        {"L1D", 16 * 1024, 64, 4, 1},
        {"L2", 256 * 1024, 128, 8, 5},
        {"L3", 3 * 1024 * 1024, 128, 12, 12},
    }, 120);
}

CacheModel
CacheModel::xeon()
{
    return CacheModel({
        {"L1D", 8 * 1024, 64, 4, 1},
        {"L2", 512 * 1024, 64, 8, 7},
    }, 180);
}

unsigned
CacheModel::accessLine(uint64_t line_addr)
{
    ++tick_;
    // Find the first level that hits; fill every level above it.
    for (size_t li = 0; li < levels_.size(); ++li) {
        Level &lvl = levels_[li];
        ++stats_[li].accesses;
        uint64_t set = (line_addr / lvl.cfg.line) % lvl.n_sets;
        uint64_t tag = line_addr / lvl.cfg.line / lvl.n_sets;
        Way *base = &lvl.ways[set * lvl.cfg.assoc];
        Way *victim = base;
        bool hit = false;
        for (unsigned w = 0; w < lvl.cfg.assoc; ++w) {
            Way &way = base[w];
            if (way.valid && way.tag == tag) {
                way.lru = tick_;
                hit = true;
                break;
            }
            if (!way.valid || way.lru < victim->lru)
                victim = &base[w];
        }
        if (hit) {
            // Fill all closer levels.
            for (size_t fi = 0; fi < li; ++fi) {
                Level &f = levels_[fi];
                uint64_t fset = (line_addr / f.cfg.line) % f.n_sets;
                uint64_t ftag = line_addr / f.cfg.line / f.n_sets;
                Way *fbase = &f.ways[fset * f.cfg.assoc];
                Way *fvic = fbase;
                for (unsigned w = 0; w < f.cfg.assoc; ++w) {
                    if (!fbase[w].valid || fbase[w].lru < fvic->lru)
                        fvic = &fbase[w];
                }
                fvic->valid = true;
                fvic->tag = ftag;
                fvic->lru = tick_;
            }
            return lvl.cfg.hit_latency;
        }
        ++stats_[li].misses;
        victim->valid = true;
        victim->tag = tag;
        victim->lru = tick_;
    }
    return mem_latency_;
}

unsigned
CacheModel::access(uint64_t addr, unsigned size)
{
    if (levels_.empty())
        return 0;
    uint64_t line = levels_[0].cfg.line;
    uint64_t first = addr / line;
    uint64_t last = (addr + (size ? size - 1 : 0)) / line;
    unsigned lat = accessLine(first * line);
    if (last != first)
        lat += accessLine(last * line);
    return lat;
}

void
CacheModel::reset()
{
    for (auto &lvl : levels_)
        for (auto &way : lvl.ways)
            way = Way{};
    for (auto &s : stats_)
        s = CacheLevelStats{};
    tick_ = 0;
}

} // namespace el::mem
