file(REMOVE_RECURSE
  "CMakeFiles/case_misalignment_speedup.dir/case_misalignment_speedup.cc.o"
  "CMakeFiles/case_misalignment_speedup.dir/case_misalignment_speedup.cc.o.d"
  "case_misalignment_speedup"
  "case_misalignment_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_misalignment_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
