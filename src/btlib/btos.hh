/**
 * @file
 * The BTOS API: the binary-level interface between BTGeneric (the
 * OS-independent translation engine) and BTLib (the thin OS abstraction
 * layer), as described in section 3 of the paper.
 *
 * The interface is a C-style function table with an opaque context
 * pointer — no C++ types cross it — plus a version handshake that both
 * sides verify before use ("IA-32 EL uses its proprietary protocol to
 * ensure that BTLib and BTGeneric versions match each other").
 */

#ifndef EL_BTLIB_BTOS_HH
#define EL_BTLIB_BTOS_HH

#include <cstdint>

#include "ia32/fault.hh"
#include "ia32/state.hh"
#include "ipf/insn.hh"
#include "mem/memory.hh"

namespace el::btlib
{

/** BTOS API version implemented by this BTGeneric build. */
constexpr uint16_t btos_major = 2;
constexpr uint16_t btos_minor = 1;

/** Result of executing a guest system service. */
struct SyscallResult
{
    bool exit = false;     //!< Process asked to terminate.
    int32_t exit_code = 0;
};

/** What to do after an exception was delivered to the application. */
enum class ExceptionDisposition : uint8_t
{
    Terminate, //!< No handler: kill the process.
    Resume,    //!< Handler adjusted the state; resume at state.eip.
};

/**
 * The function table BTLib hands to BTGeneric at initialization.
 * All callbacks receive the opaque @p ctx registered alongside.
 */
struct BtOsVtable
{
    uint16_t major = 0;
    uint16_t minor = 0;
    void *ctx = nullptr;

    /** Allocate @p bytes of fresh address space; returns base or 0. */
    uint64_t (*alloc_pages)(void *ctx, uint64_t bytes) = nullptr;

    /** Execute the guest system service behind interrupt @p vector. */
    SyscallResult (*system_service)(void *ctx, ia32::State *state,
                                    uint8_t vector) = nullptr;

    /** Deliver a precise IA-32 exception to the application. */
    ExceptionDisposition (*deliver_exception)(void *ctx,
                                              ia32::State *state,
                                              const ia32::Fault *fault)
        = nullptr;

    /** Charge cycles spent outside translated code (native/idle). */
    void (*charge_cycles)(void *ctx, uint8_t bucket, double cycles)
        = nullptr;

    /** Name of the underlying OS (diagnostics only). */
    const char *(*os_name)(void *ctx) = nullptr;
};

/**
 * BTGeneric's wrapper around the vtable. Performs the version handshake
 * on construction; `ok()` reports whether the pairing is usable.
 */
class BtOsClient
{
  public:
    explicit BtOsClient(const BtOsVtable &vtable);

    /** True when the handshake succeeded and all entries are present. */
    bool ok() const { return ok_; }

    /** Why the handshake failed (empty when ok). */
    const std::string &error() const { return error_; }

    uint64_t
    allocPages(uint64_t bytes) const
    {
        return vt_.alloc_pages(vt_.ctx, bytes);
    }

    SyscallResult
    systemService(ia32::State &state, uint8_t vector) const
    {
        return vt_.system_service(vt_.ctx, &state, vector);
    }

    ExceptionDisposition
    deliverException(ia32::State &state, const ia32::Fault &fault) const
    {
        return vt_.deliver_exception(vt_.ctx, &state, &fault);
    }

    void
    chargeCycles(ipf::Bucket bucket, double cycles) const
    {
        vt_.charge_cycles(vt_.ctx, static_cast<uint8_t>(bucket), cycles);
    }

    const char *osName() const { return vt_.os_name(vt_.ctx); }

  private:
    BtOsVtable vt_;
    bool ok_ = false;
    std::string error_;
};

} // namespace el::btlib

#endif // EL_BTLIB_BTOS_HH
