/**
 * @file
 * Layout of the translator's runtime data area.
 *
 * BTGeneric allocates one region from BTLib at startup; translated code
 * reaches it through the dedicated base register r1 (ipf::gr_rt_base).
 * It holds the speculation status bytes of section 5 (FP TOS/TAG, the
 * MMX/FP domain flag, the packed XMM format word), the FP-stack array
 * for the in-memory ablation mode, the indirect-branch fast lookup
 * table, and the profile counters the cold-code instrumentation updates.
 */

#ifndef EL_CORE_LAYOUT_HH
#define EL_CORE_LAYOUT_HH

#include <cstdint>

namespace el::core
{

/** Offsets (from the runtime area base) used by emitted code. */
namespace rt
{

constexpr int64_t fp_tos = 0x00;       //!< u8: canonical x87 TOS.
constexpr int64_t fp_tag = 0x01;       //!< u8: bit i = slot i valid.
constexpr int64_t mmx_domain = 0x02;   //!< u8: 1 = MMX values current.
constexpr int64_t xmm_format = 0x04;   //!< u32: nibble per XMM register.
constexpr int64_t fp_mem_stack = 0x10; //!< 8 x 16B: in-memory FP stack.
constexpr int64_t scratch = 0x90;      //!< 8 x 8B spill slots.

constexpr int64_t lookup_table = 0x1000; //!< 16B entries {eip, target}.
constexpr int64_t profile_base = 0x8000; //!< u32 counters, bump-allocated.

constexpr uint64_t area_size = 0x80000;

/** XMM physical-representation codes stored in the format word. */
enum XmmRep : uint8_t
{
    XmmInt = 0, //!< GR pair holds the raw 16 bytes.
    XmmPs = 1,  //!< FR pair holds 2x2 packed singles (raw bits).
    XmmPd = 2,  //!< FR pair holds two doubles as FP values.
};

/** Nibble of register @p i inside the format word. */
constexpr uint32_t
formatShift(unsigned i)
{
    return (i & 7) * 4;
}

/** Format word with all eight registers set to @p rep. */
constexpr uint32_t
uniformFormatWord(XmmRep rep)
{
    uint32_t w = 0;
    for (unsigned i = 0; i < 8; ++i)
        w |= static_cast<uint32_t>(rep) << formatShift(i);
    return w;
}

} // namespace rt
} // namespace el::core

#endif // EL_CORE_LAYOUT_HH
