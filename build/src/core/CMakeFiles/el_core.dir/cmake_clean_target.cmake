file(REMOVE_RECURSE
  "libel_core.a"
)
