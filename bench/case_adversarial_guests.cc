/**
 * @file
 * Case study: adversarial guest personalities and sentinel cost.
 *
 * The three hostile personalities (signal storms on both OS ABIs, a
 * self-modifying JIT guest, and a threaded guest racing SMC against the
 * hot pipeline) stress the translator's recovery machinery. This bench
 * runs each personality three ways — sentinel detached, sentinel
 * attached but dormant (rate 0), and actively shadow-checking — and
 * reports:
 *
 *   - the dormant-sentinel cycle ratio, which must stay exactly 1.0
 *     (an attached-but-idle sentinel costs zero simulated cycles);
 *   - the active self-check overhead, which is allowed to be large in
 *     wall terms but must stay *stable* (guarded by bench_diff);
 *   - the recovery counters (SMC invalidations, delivered faults,
 *     regions checked) that show the personalities actually bite.
 */

#include <cmath>

#include "bench/bench_common.hh"
#include "support/sentinel.hh"

using namespace el;

namespace
{

struct Run
{
    double cycles = 0;
    uint64_t checked = 0;
    uint64_t passed = 0;
    uint64_t smc_invalidations = 0;
    uint64_t faults_delivered = 0;
};

Run
runWith(const guest::Workload &w, uint32_t selfcheck_rate,
        bool attach, bench::Report &rep, const char *variant)
{
    core::Options o;
    o.heat_threshold = 16;
    o.hot_batch = 1;
    o.translation_threads = 2;
    o.deterministic_adoption = true;

    sentinel::Config cfg;
    cfg.selfcheck_rate = selfcheck_rate;
    sentinel::Sentinel sentinel(cfg);
    if (attach)
        o.sentinel = &sentinel;

    harness::TranslatedRun tr =
        harness::runTranslated(w.image, w.params.abi, o);
    Run r;
    r.cycles = tr.outcome.cycles;
    r.checked = tr.runtime->stats().get("sentinel.checked");
    r.passed = tr.runtime->stats().get("sentinel.passed");
    r.smc_invalidations =
        tr.runtime->translator().stats.get("smc.invalidations");
    r.faults_delivered = tr.runtime->stats().get("faults.delivered");
    rep.row(w.name + "/" + variant)
        .metric("cycles", r.cycles)
        .metric("sentinel_checked", static_cast<double>(r.checked))
        .metric("sentinel_passed", static_cast<double>(r.passed))
        .metric("smc_invalidations",
                static_cast<double>(r.smc_invalidations))
        .metric("faults_delivered",
                static_cast<double>(r.faults_delivered))
        .attribution(*tr.runtime);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    if (int rc = bench::handleArgs(argc, argv); rc >= 0)
        return rc;
    bench::banner("Adversarial guest personalities + divergence sentinel",
                  "section 5's transparency requirements under hostile "
                  "guests (no paper figure)");

    bench::Report rep("case_adversarial_guests");
    Table t({"personality", "detached cyc", "dormant ratio",
             "selfcheck ratio", "checked", "smc inval", "faults"});

    double overhead_product = 1.0;
    int overhead_count = 0;
    double worst_dormant = 1.0;

    for (const guest::Workload &w : guest::adversarialSuite()) {
        Run detached = runWith(w, 0, false, rep, "detached");
        Run dormant = runWith(w, 0, true, rep, "dormant");
        Run active = runWith(w, 8, true, rep, "selfcheck8");

        double dormant_ratio = dormant.cycles / detached.cycles;
        double active_ratio = active.cycles / detached.cycles;
        if (std::abs(dormant_ratio - 1.0) >
            std::abs(worst_dormant - 1.0))
            worst_dormant = dormant_ratio;
        overhead_product *= active_ratio;
        ++overhead_count;

        rep.scalar(w.name + "_cycles", detached.cycles, 0.15);
        rep.scalar(w.name + "_selfcheck_ratio", active_ratio, 0.25);

        t.addRow({w.name, strfmt("%.0f", detached.cycles),
                  strfmt("%.4fx", dormant_ratio),
                  strfmt("%.3fx", active_ratio),
                  strfmt("%llu",
                         static_cast<unsigned long long>(active.checked)),
                  strfmt("%llu", static_cast<unsigned long long>(
                                     active.smc_invalidations)),
                  strfmt("%llu", static_cast<unsigned long long>(
                                     active.faults_delivered))});
    }

    // The dormant ratio is an invariant, not a measurement: an attached
    // sentinel at rate 0 never arms a checkpoint, so the simulated
    // timeline must be bit-identical to the detached run. Tolerance is
    // tight so any drift fails the bench diff.
    rep.scalar("dormant_sentinel_cycle_ratio", worst_dormant, 0.001);
    rep.scalar("selfcheck_overhead_geomean",
               std::pow(overhead_product, 1.0 / overhead_count), 0.25);

    std::printf("%s\n", t.render().c_str());
    rep.write();
    std::printf(
        "Interpretation: the hostile personalities exercise fault "
        "delivery, SMC\ninvalidation, and hot-pipeline racing; the "
        "sentinel shadow-checks a sample of\nregions against the "
        "interpreter oracle. Detached or dormant, it costs zero\n"
        "simulated cycles; active, the overhead scales with the "
        "sampling rate.\n");
    return 0;
}
