#include "persist/durable.hh"

#include <cerrno>
#include <cstdio>

#include <fcntl.h>
#include <unistd.h>

namespace el::persist
{

namespace
{

/** Directory part of @p path ("." when there is none). */
std::string
dirOf(const std::string &path)
{
    size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

bool
writeAll(int fd, const uint8_t *data, size_t n)
{
    size_t done = 0;
    while (done < n) {
        ssize_t w = ::write(fd, data + done, n - done);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<size_t>(w);
    }
    return true;
}

} // namespace

bool
fsyncDir(const std::string &dir)
{
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return false;
    bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

bool
writeFileDurable(const std::string &path, const uint8_t *data, size_t n,
                 FaultSite crash_site)
{
    std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;

    // An injected crash tears the payload in half first, so recovery
    // code sees the worst case: a temp file that is both incomplete
    // and already on disk.
    bool crash = crash_site != FaultSite::NumSites &&
                 faultInjected(crash_site);
    size_t write_n = crash ? n / 2 : n;

    bool ok = writeAll(fd, data, write_n) && ::fsync(fd) == 0;
    ::close(fd);
    if (crash)
        crashNow(crash_site); // Temp durable (half of it), not renamed.
    if (!ok) {
        ::unlink(tmp.c_str());
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    // The rename is only durable once the directory entry is: fsync
    // the parent. Failure here is reported but the file is published.
    return fsyncDir(dirOf(path));
}

} // namespace el::persist
