/**
 * @file
 * Figure 5: SPEC CPU2000 INT scores of IA-32 EL relative to native
 * Itanium execution (native = 100%). Each synthetic stand-in runs
 * translated on the IPF machine and natively as a hand-written IPF
 * kernel on the same machine model; the score ratio is
 * native_cycles / translated_cycles.
 */

#include "bench/bench_common.hh"

using namespace el;

int
main(int argc, char **argv)
{
    if (int rc = bench::handleArgs(argc, argv); rc >= 0)
        return rc;
    bench::banner("SPEC CPU2000 INT: IA-32 EL vs native Itanium",
                  "Figure 5");

    // The paper's reported percentages, for side-by-side comparison.
    const std::map<std::string, double> paper = {
        {"gzip", 86},   {"vpr", 69},    {"gcc", 51},   {"mcf", 104},
        {"crafty", 39}, {"parser", 81}, {"eon", 41},   {"perlbmk", 64},
        {"gap", 62},    {"vortex", 60}, {"bzip2", 74}, {"twolf", 76},
    };

    Table table({"benchmark", "EL cycles", "native cycles",
                 "EL score (ours)", "EL score (paper)"});
    std::vector<double> ours;
    std::vector<double> theirs;
    bench::Report rep("fig5_spec_relative");

    for (guest::Workload &w : guest::specIntSuite()) {
        harness::TranslatedRun tr =
            harness::runTranslated(w.image, w.params.abi);
        double nat = harness::nativeCycles(w);
        double rel = nat / tr.outcome.cycles * 100.0;
        ours.push_back(rel);
        theirs.push_back(paper.at(w.name));
        table.addRow({w.name, strfmt("%.0f", tr.outcome.cycles),
                      strfmt("%.0f", nat), strfmt("%.1f%%", rel),
                      strfmt("%.0f%%", paper.at(w.name))});
        rep.row(w.name)
            .metric("el_cycles", tr.outcome.cycles)
            .metric("native_cycles", nat)
            .metric("score_pct", rel)
            .metric("paper_pct", paper.at(w.name))
            .attribution(*tr.runtime);
    }
    table.addRow({"GeoMean", "", "", strfmt("%.1f%%", geomean(ours)),
                  strfmt("%.0f%%", geomean(theirs))});
    rep.scalar("geomean_pct", geomean(ours));
    rep.scalar("paper_geomean_pct", geomean(theirs));
    rep.write();
    std::printf("%s\n", table.render().c_str());
    std::printf("Shape checks: mcf should be the best (small 32-bit\n"
                "footprint), crafty/eon the worst (indirect branches),\n"
                "gcc/vortex low (flat profile, large code).\n");
    return 0;
}
