#include "ipf/machine.hh"

#include <cmath>

#include "support/bitfield.hh"
#include "support/logging.hh"
#include "support/profile.hh"

namespace el::ipf
{

namespace
{

/** Enumerate the general registers an instruction reads. */
unsigned
grSources(const Instr &i, uint8_t out[3])
{
    unsigned n = 0;
    auto add = [&](uint8_t r) {
        if (r != gr_zero)
            out[n++] = r;
    };
    switch (i.op) {
      case IpfOp::Add:
      case IpfOp::Sub:
      case IpfOp::And:
      case IpfOp::Or:
      case IpfOp::Xor:
      case IpfOp::Andcm:
      case IpfOp::Shl:
      case IpfOp::Shr:
      case IpfOp::ShrU:
      case IpfOp::Cmp:
      case IpfOp::Dep:
      case IpfOp::Padd:
      case IpfOp::Psub:
      case IpfOp::Pmull:
      case IpfOp::Pcmp:
      case IpfOp::St:
        add(i.src1);
        add(i.src2);
        break;
      case IpfOp::Shladd:
      case IpfOp::Xmul:
      case IpfOp::XDivS:
      case IpfOp::XDivU:
      case IpfOp::XRemS:
      case IpfOp::XRemU:
        add(i.src1);
        add(i.src2);
        break;
      case IpfOp::AddImm:
      case IpfOp::ShlImm:
      case IpfOp::ShrImm:
      case IpfOp::ShrUImm:
      case IpfOp::Sxt:
      case IpfOp::Zxt:
      case IpfOp::Mov:
      case IpfOp::MovToBr:
      case IpfOp::Tbit:
      case IpfOp::DepZ:
      case IpfOp::Extr:
      case IpfOp::ExtrU:
      case IpfOp::Popcnt:
      case IpfOp::Ld:
      case IpfOp::ChkS:
      case IpfOp::Setf:
        add(i.src1);
        break;
      case IpfOp::CmpImm:
        add(i.src2);
        break;
      case IpfOp::Ldf:
        add(i.src1);
        break;
      case IpfOp::Stf:
        add(i.src1);
        break;
      case IpfOp::Exit:
        if (i.exit_reason == ExitReason::IndirectMiss)
            add(i.src1);
        break;
      default:
        break;
    }
    return n;
}

/** Enumerate the FP registers an instruction reads. */
unsigned
frSources(const Instr &i, uint8_t out[3])
{
    unsigned n = 0;
    switch (i.op) {
      case IpfOp::Fadd:
      case IpfOp::Fsub:
      case IpfOp::Fmpy:
      case IpfOp::Fdiv:
      case IpfOp::Fcmp:
      case IpfOp::Fpadd:
      case IpfOp::Fpsub:
      case IpfOp::Fpmpy:
      case IpfOp::Fpdiv:
        out[n++] = i.src1;
        out[n++] = i.src2;
        break;
      case IpfOp::Fma:
      case IpfOp::Fms:
      case IpfOp::Fnma:
        out[n++] = i.src1;
        out[n++] = i.src2;
        out[n++] = i.src3;
        break;
      case IpfOp::Fsqrt:
      case IpfOp::Fneg:
      case IpfOp::Fabs:
      case IpfOp::FcvtXf:
      case IpfOp::FcvtFxTrunc:
      case IpfOp::Fmov:
      case IpfOp::Fpcvt:
      case IpfOp::Getf:
        out[n++] = i.src1;
        break;
      case IpfOp::Stf:
        out[n++] = i.src2;
        break;
      default:
        break;
    }
    return n;
}

/** Round a scalar FP result to the instruction's precision. */
long double
roundPrec(FpPrec prec, long double v)
{
    switch (prec) {
      case FpPrec::Single:
        return static_cast<float>(v);
      case FpPrec::Double:
        return static_cast<double>(v);
      case FpPrec::Extended:
        return v;
    }
    return v;
}

float
laneF32(uint64_t bits, unsigned lane)
{
    uint32_t b = static_cast<uint32_t>(bits >> (lane * 32));
    float f;
    std::memcpy(&f, &b, 4);
    return f;
}

uint64_t
packF32(float lo, float hi)
{
    uint32_t a, b;
    std::memcpy(&a, &lo, 4);
    std::memcpy(&b, &hi, 4);
    return static_cast<uint64_t>(a) | (static_cast<uint64_t>(b) << 32);
}

} // namespace

void
Machine::reset()
{
    grs_.fill(0);
    nats_.fill(false);
    for (auto &f : frs_)
        f = Fr{};
    frs_[fr_one].setVal(1.0L);
    prs_.fill(false);
    prs_[pr_true] = true;
    brs_.fill(0);
    gr_ready_.fill(0.0);
    fr_ready_.fill(0.0);
    grp_open_ = false;
    branched_ = false;
}

void
Machine::closeGroup()
{
    if (!grp_open_)
        return;
    auto ceil_div = [](unsigned a, unsigned b) { return (a + b - 1) / b; };
    unsigned width = 1;
    width = std::max(width, ceil_div(grp_total_, 6));
    width = std::max(width, ceil_div(grp_f_, 2));
    width = std::max(width, ceil_div(grp_b_, 3));
    width = std::max(width, ceil_div(grp_m_, 2));
    width = std::max(width, ceil_div(grp_i_, 2));
    width = std::max(width, ceil_div(grp_m_ + grp_i_ + grp_a_, 4));
    double cost = width + grp_stall_ + grp_extra_;
    cycle_ += cost;
    stats_.cycles[static_cast<size_t>(grp_bucket_)] += cost;
    misalign_cycles_[static_cast<size_t>(grp_bucket_)] += grp_misalign_;
    if (track_blocks_) {
        BlockCost &bc = block_costs_[grp_block_];
        bc.cycles += cost;
        bc.insns += grp_insns_;
    }

    grp_m_ = grp_i_ = grp_f_ = grp_b_ = grp_a_ = grp_total_ = 0;
    grp_insns_ = 0;
    grp_stall_ = 0.0;
    grp_extra_ = 0.0;
    grp_misalign_ = 0.0;
    grp_open_ = false;
    if (cfg_.verify_groups) {
        grp_gr_writer_.fill(0);
        grp_fr_writer_.fill(0);
    }
}

void
Machine::accountInstr(const Instr &i)
{
    if (!grp_open_) {
        grp_open_ = true;
        grp_bucket_ = i.meta.bucket;
        grp_block_ = i.meta.block_id;
    }
    ++grp_insns_;
    switch (i.slotKind()) {
      case Slot::M:
        ++grp_m_;
        break;
      case Slot::I:
        ++grp_i_;
        if (i.op == IpfOp::Movl)
            ++grp_i_; // movl consumes the L+X pair
        break;
      case Slot::F:
        ++grp_f_;
        break;
      case Slot::B:
        ++grp_b_;
        break;
      case Slot::A:
        ++grp_a_;
        break;
    }
    ++grp_total_;
    if (i.op == IpfOp::Movl)
        ++grp_total_;

    uint8_t srcs[3];
    unsigned n = grSources(i, srcs);
    for (unsigned k = 0; k < n; ++k)
        grp_stall_ = std::max(grp_stall_, gr_ready_[srcs[k]] - cycle_);
    n = frSources(i, srcs);
    for (unsigned k = 0; k < n; ++k)
        grp_stall_ = std::max(grp_stall_, fr_ready_[srcs[k]] - cycle_);

    if (cfg_.verify_groups && prs_[i.qp]) {
        uint8_t gsrcs[3];
        unsigned gn = grSources(i, gsrcs);
        for (unsigned k = 0; k < gn; ++k) {
            el_assert(!grp_gr_writer_[gsrcs[k]],
                      "intra-group GR RAW on r%u at cache[%lld] (%s)",
                      gsrcs[k], static_cast<long long>(ip_),
                      i.toString().c_str());
        }
        uint8_t fsrcs[3];
        unsigned fn = frSources(i, fsrcs);
        for (unsigned k = 0; k < fn; ++k) {
            el_assert(!grp_fr_writer_[fsrcs[k]],
                      "intra-group FR RAW on f%u at cache[%lld]",
                      fsrcs[k], static_cast<long long>(ip_));
        }
        if (writesGr(i) && i.dst != gr_zero)
            grp_gr_writer_[i.dst] = 1;
        if (writesFr(i))
            grp_fr_writer_[i.dst] = 1;
    }
}

void
Machine::profileObserve(const Instr &i)
{
    // Report the architectural-probe instructions to the profiler. A
    // probe is *visited* whenever execution reaches it, even when its
    // qualifying predicate nullifies it — which is exactly what makes
    // the event stream a pure function of the retired guest instruction
    // sequence (see support/profile.hh). Predicate and register values
    // are architecturally current here: the scheduler never places a
    // probe in the same issue group as its producers.
    switch (i.op) {
      case IpfOp::Exit:
        switch (i.exit_reason) {
          case ExitReason::LinkMiss:
            // Predicated: a conditional-branch probe (cold taken-exit
            // or hot side exit). Unpredicated LinkMiss exits belong to
            // unconditional transfers, which hot traces elide — not a
            // stable observation point, so they are ignored.
            if (i.qp)
                profiler_->condEvent(i.meta.ia32_ip,
                                     static_cast<uint32_t>(i.exit_payload),
                                     prs_[i.qp], false);
            break;
          case ExitReason::IndirectMiss:
            // Predicated: the fast-lookup miss exit, visited on every
            // execution of the indirect site; the target EIP is in the
            // source register on hit and miss alike. The unpredicated
            // backstop after the indirect jump is unreachable.
            if (i.qp)
                profiler_->indirectEvent(
                    i.meta.ia32_ip, static_cast<uint32_t>(grs_[i.src1]),
                    !prs_[i.qp]);
            break;
          case ExitReason::SyscallGate:
            profiler_->stopEvent(i.meta.ia32_ip);
            break;
          case ExitReason::Breakpoint:
          case ExitReason::Halt:
            profiler_->stopEvent(static_cast<uint32_t>(i.exit_payload));
            break;
          case ExitReason::GuestFault:
            // Only the unpredicated form is a block terminator (an
            // undecodable instruction); predicated GuestFault exits are
            // mid-block arithmetic-fault checks.
            if (!i.qp)
                profiler_->stopEvent(
                    static_cast<uint32_t>(i.exit_payload >> 8));
            break;
          default:
            break;
        }
        break;
      case IpfOp::Br:
        // A linked conditional probe: patchToBranch() keeps the
        // LinkMiss reason/payload as metadata on the patched branch.
        if (i.qp && i.exit_reason == ExitReason::LinkMiss)
            profiler_->condEvent(i.meta.ia32_ip,
                                 static_cast<uint32_t>(i.exit_payload),
                                 prs_[i.qp], true);
        break;
      default:
        break;
    }
}

StopInfo
Machine::run(int64_t entry, uint64_t max_cycles)
{
    ip_ = entry;
    double cycle_limit = cycle_ + static_cast<double>(max_cycles);
    StopInfo stop;
    for (;;) {
        if (ip_ < 0 || ip_ >= code_.nextIndex()) {
            closeGroup();
            stop.kind = StopKind::BadIp;
            stop.instr_index = ip_;
            return stop;
        }
        if (cycle_ >= cycle_limit) {
            closeGroup();
            stop.kind = StopKind::CycleLimit;
            stop.instr_index = ip_;
            return stop;
        }
        const Instr &i = code_.at(ip_);
        accountInstr(i);
        if (profiler_)
            profileObserve(i);
        if (visit_log_ && i.meta.block_id != visit_last_) {
            visit_last_ = i.meta.block_id;
            visit_log_->push(i.meta.block_id);
        }
        branched_ = false;
        bool cont = execute(i, &stop);
        ++retired_;
        stats_.insns[static_cast<size_t>(i.meta.bucket)] += 1;
        if (!cont) {
            closeGroup();
            stop.instr_index = ip_;
            return stop;
        }
        bool end_group = i.stop || branched_;
        if (!branched_)
            ++ip_;
        if (end_group)
            closeGroup();
    }
}

bool
Machine::execute(const Instr &i, StopInfo *stop)
{
    // A false qualifying predicate nullifies the instruction (it still
    // consumed its slot in accountInstr — predicated-off instructions
    // cost issue width, as the paper notes).
    if (!prs_[i.qp])
        return true;

    double issue = cycle_ + grp_stall_;

    auto set_gr = [&](uint8_t r, uint64_t v, bool nat, unsigned lat) {
        if (r == gr_zero)
            return;
        grs_[r] = v;
        nats_[r] = nat;
        gr_ready_[r] = issue + lat;
    };
    auto src_nat2 = [&](uint8_t a, uint8_t b) {
        return nats_[a] || nats_[b];
    };
    auto set_pr2 = [&](uint8_t p1, uint8_t p2, bool v) {
        if (p1 != pr_true)
            prs_[p1] = v;
        if (p2 != pr_true)
            prs_[p2] = !v;
    };

    switch (i.op) {
      case IpfOp::Nop:
      case IpfOp::Mf:
        return true;

      case IpfOp::Add:
        set_gr(i.dst, grs_[i.src1] + grs_[i.src2],
               src_nat2(i.src1, i.src2), cfg_.lat_alu);
        return true;
      case IpfOp::Sub:
        set_gr(i.dst, grs_[i.src1] - grs_[i.src2],
               src_nat2(i.src1, i.src2), cfg_.lat_alu);
        return true;
      case IpfOp::AddImm:
        set_gr(i.dst, grs_[i.src1] + static_cast<uint64_t>(i.imm),
               nats_[i.src1], cfg_.lat_alu);
        return true;
      case IpfOp::And:
        set_gr(i.dst, grs_[i.src1] & grs_[i.src2],
               src_nat2(i.src1, i.src2), cfg_.lat_alu);
        return true;
      case IpfOp::Or:
        set_gr(i.dst, grs_[i.src1] | grs_[i.src2],
               src_nat2(i.src1, i.src2), cfg_.lat_alu);
        return true;
      case IpfOp::Xor:
        set_gr(i.dst, grs_[i.src1] ^ grs_[i.src2],
               src_nat2(i.src1, i.src2), cfg_.lat_alu);
        return true;
      case IpfOp::Andcm:
        set_gr(i.dst, grs_[i.src1] & ~grs_[i.src2],
               src_nat2(i.src1, i.src2), cfg_.lat_alu);
        return true;
      case IpfOp::Shl:
        set_gr(i.dst, grs_[i.src1] << (grs_[i.src2] & 63),
               src_nat2(i.src1, i.src2), cfg_.lat_alu);
        return true;
      case IpfOp::ShlImm:
        set_gr(i.dst, grs_[i.src1] << (i.imm & 63), nats_[i.src1],
               cfg_.lat_alu);
        return true;
      case IpfOp::Shr:
        set_gr(i.dst,
               static_cast<uint64_t>(static_cast<int64_t>(grs_[i.src1]) >>
                                     (grs_[i.src2] & 63)),
               src_nat2(i.src1, i.src2), cfg_.lat_alu);
        return true;
      case IpfOp::ShrU:
        set_gr(i.dst, grs_[i.src1] >> (grs_[i.src2] & 63),
               src_nat2(i.src1, i.src2), cfg_.lat_alu);
        return true;
      case IpfOp::ShrImm:
        set_gr(i.dst,
               static_cast<uint64_t>(static_cast<int64_t>(grs_[i.src1]) >>
                                     (i.imm & 63)),
               nats_[i.src1], cfg_.lat_alu);
        return true;
      case IpfOp::ShrUImm:
        set_gr(i.dst, grs_[i.src1] >> (i.imm & 63), nats_[i.src1],
               cfg_.lat_alu);
        return true;
      case IpfOp::Shladd:
        set_gr(i.dst, (grs_[i.src1] << (i.imm & 7)) + grs_[i.src2],
               src_nat2(i.src1, i.src2), cfg_.lat_alu);
        return true;
      case IpfOp::Sxt:
        set_gr(i.dst,
               static_cast<uint64_t>(sext(grs_[i.src1], i.size * 8)),
               nats_[i.src1], cfg_.lat_alu);
        return true;
      case IpfOp::Zxt:
        set_gr(i.dst, truncToSize(grs_[i.src1], i.size), nats_[i.src1],
               cfg_.lat_alu);
        return true;
      case IpfOp::Movl:
        set_gr(i.dst, static_cast<uint64_t>(i.imm), false, cfg_.lat_alu);
        return true;
      case IpfOp::Mov:
        set_gr(i.dst, grs_[i.src1], nats_[i.src1], cfg_.lat_alu);
        return true;
      case IpfOp::MovToBr:
        brs_[i.dst & 7] = grs_[i.src1];
        return true;
      case IpfOp::MovFromBr:
        set_gr(i.dst, brs_[i.src1 & 7], false, cfg_.lat_alu);
        return true;

      case IpfOp::Cmp:
      case IpfOp::CmpImm: {
        uint64_t a, b;
        bool nat;
        if (i.op == IpfOp::Cmp) {
            a = grs_[i.src1];
            b = grs_[i.src2];
            nat = src_nat2(i.src1, i.src2);
        } else {
            a = static_cast<uint64_t>(i.imm);
            b = grs_[i.src2];
            nat = nats_[i.src2];
        }
        bool v = false;
        if (!nat) {
            int64_t sa = static_cast<int64_t>(a);
            int64_t sb = static_cast<int64_t>(b);
            switch (i.crel) {
              case CmpRel::Eq:
                v = a == b;
                break;
              case CmpRel::Ne:
                v = a != b;
                break;
              case CmpRel::Lt:
                v = sa < sb;
                break;
              case CmpRel::Le:
                v = sa <= sb;
                break;
              case CmpRel::Gt:
                v = sa > sb;
                break;
              case CmpRel::Ge:
                v = sa >= sb;
                break;
              case CmpRel::Ltu:
                v = a < b;
                break;
              case CmpRel::Leu:
                v = a <= b;
                break;
              case CmpRel::Gtu:
                v = a > b;
                break;
              case CmpRel::Geu:
                v = a >= b;
                break;
              default:
                el_panic("bad integer cmp relation");
            }
            set_pr2(i.dst, i.dst2, v);
        } else {
            // NaT sources clear both targets (cmp.unc semantics).
            if (i.dst != pr_true)
                prs_[i.dst] = false;
            if (i.dst2 != pr_true)
                prs_[i.dst2] = false;
        }
        return true;
      }

      case IpfOp::Tbit: {
        bool v = bit(grs_[i.src1], i.pos);
        set_pr2(i.dst, i.dst2, v);
        return true;
      }

      case IpfOp::Dep:
        set_gr(i.dst,
               insertBits(grs_[i.src2], i.pos, i.len, grs_[i.src1]),
               src_nat2(i.src1, i.src2), cfg_.lat_alu);
        return true;
      case IpfOp::DepZ:
        set_gr(i.dst,
               insertBits(0, i.pos, i.len, grs_[i.src1]),
               nats_[i.src1], cfg_.lat_alu);
        return true;
      case IpfOp::Extr:
        set_gr(i.dst,
               static_cast<uint64_t>(
                   sext(bits(grs_[i.src1], i.pos, i.len), i.len)),
               nats_[i.src1], cfg_.lat_alu);
        return true;
      case IpfOp::ExtrU:
        set_gr(i.dst, bits(grs_[i.src1], i.pos, i.len), nats_[i.src1],
               cfg_.lat_alu);
        return true;
      case IpfOp::Popcnt: {
        uint64_t v = grs_[i.src1];
        unsigned c = 0;
        for (; v; v &= v - 1)
            ++c;
        set_gr(i.dst, c, nats_[i.src1], cfg_.lat_mul);
        return true;
      }

      case IpfOp::Padd:
      case IpfOp::Psub:
      case IpfOp::Pmull:
      case IpfOp::Pcmp: {
        uint64_t a = grs_[i.src1], b = grs_[i.src2], r = 0;
        unsigned lane_bits = i.size * 8;
        unsigned nlanes = 64 / lane_bits;
        for (unsigned k = 0; k < nlanes; ++k) {
            uint64_t la = bits(a, k * lane_bits, lane_bits);
            uint64_t lb = bits(b, k * lane_bits, lane_bits);
            uint64_t lr = 0;
            switch (i.op) {
              case IpfOp::Padd:
                lr = la + lb;
                break;
              case IpfOp::Psub:
                lr = la - lb;
                break;
              case IpfOp::Pmull:
                lr = static_cast<uint64_t>(static_cast<int16_t>(la) *
                                           static_cast<int16_t>(lb));
                break;
              case IpfOp::Pcmp:
                lr = (la == lb) ? ~0ULL : 0;
                break;
              default:
                el_panic("unreachable");
            }
            r = insertBits(r, k * lane_bits, lane_bits, lr);
        }
        set_gr(i.dst, r, src_nat2(i.src1, i.src2), cfg_.lat_mul);
        return true;
      }

      case IpfOp::Xmul:
        set_gr(i.dst, grs_[i.src1] * grs_[i.src2],
               src_nat2(i.src1, i.src2), 12);
        return true;
      case IpfOp::XDivS:
      case IpfOp::XDivU:
      case IpfOp::XRemS:
      case IpfOp::XRemU: {
        el_assert(!src_nat2(i.src1, i.src2), "NaT at divide");
        uint64_t a = grs_[i.src1];
        uint64_t b = grs_[i.src2];
        el_assert(b != 0, "divide by zero reached the divide macro; the "
                  "template must emit a zero check first");
        uint64_t r;
        if (i.op == IpfOp::XDivU) {
            r = a / b;
        } else if (i.op == IpfOp::XRemU) {
            r = a % b;
        } else {
            int64_t sa = static_cast<int64_t>(a);
            int64_t sb = static_cast<int64_t>(b);
            el_assert(!(sa == INT64_MIN && sb == -1), "divide overflow");
            r = static_cast<uint64_t>(i.op == IpfOp::XDivS ? sa / sb
                                                           : sa % sb);
        }
        set_gr(i.dst, r, false, 45);
        return true;
      }

      case IpfOp::Ld: {
        uint64_t addr = grs_[i.src1];
        if (nats_[i.src1]) {
            // Speculative chain: propagate the NaT.
            set_gr(i.dst, 0, true, cfg_.lat_ld);
            return true;
        }
        uint64_t v = 0;
        auto r = mem_.read(addr, i.size, &v);
        if (!r.ok()) {
            if (i.spec == Spec::S) {
                set_gr(i.dst, 0, true, cfg_.lat_ld); // defer into NaT
                return true;
            }
            stop->kind = StopKind::MemFault;
            stop->fault_addr = r.fault_addr;
            stop->fault_is_write = false;
            return false;
        }
        unsigned lat = cfg_.lat_ld + dcache_.access(addr, i.size);
        if (!isAligned(addr, i.size)) {
            ++misaligned_;
            grp_extra_ += cfg_.misalign_penalty;
            grp_misalign_ += cfg_.misalign_penalty;
        }
        set_gr(i.dst, v, false, lat);
        if (i.imm != 0) // post-increment
            set_gr(i.src1, addr + static_cast<uint64_t>(i.imm), false,
                   cfg_.lat_alu);
        return true;
      }

      case IpfOp::St: {
        uint64_t addr = grs_[i.src1];
        el_assert(!nats_[i.src1] && !nats_[i.src2],
                  "NaT consumption at a store (translator bug)");
        auto r = mem_.write(addr, i.size, grs_[i.src2]);
        if (!r.ok()) {
            stop->kind = StopKind::MemFault;
            stop->fault_addr = r.fault_addr;
            stop->fault_is_write = true;
            return false;
        }
        dcache_.access(addr, i.size);
        if (!isAligned(addr, i.size)) {
            ++misaligned_;
            grp_extra_ += cfg_.misalign_penalty;
            grp_misalign_ += cfg_.misalign_penalty;
        }
        if (i.imm != 0)
            set_gr(i.src1, addr + static_cast<uint64_t>(i.imm), false,
                   cfg_.lat_alu);
        return true;
      }

      case IpfOp::ChkS:
        if (nats_[i.src1]) {
            if (i.target < 0) {
                stop->kind = StopKind::Exit;
                stop->reason = ExitReason::Resync;
                stop->payload = i.exit_payload;
                return false;
            }
            ip_ = i.target;
            branched_ = true;
            grp_extra_ += cfg_.br_taken_bubble;
        }
        return true;

      case IpfOp::Ldf: {
        uint64_t addr = grs_[i.src1];
        el_assert(!nats_[i.src1], "NaT address at ldf");
        unsigned bytes = i.size == 9 ? 8 : i.size;
        uint8_t buf[16] = {};
        auto r = mem_.readBytes(addr, buf, bytes);
        if (!r.ok()) {
            stop->kind = StopKind::MemFault;
            stop->fault_addr = r.fault_addr;
            stop->fault_is_write = false;
            return false;
        }
        unsigned lat = cfg_.lat_ld + dcache_.access(addr, bytes);
        if (!isAligned(addr, bytes == 10 ? 16 : bytes)) {
            ++misaligned_;
            grp_extra_ += cfg_.misalign_penalty;
            grp_misalign_ += cfg_.misalign_penalty;
        }
        Fr &f = frs_[i.dst];
        if (i.size == 4) {
            float v;
            std::memcpy(&v, buf, 4);
            f.setVal(v);
        } else if (i.size == 8) {
            double v;
            std::memcpy(&v, buf, 8);
            f.setVal(v);
        } else if (i.size == 9) {
            uint64_t v;
            std::memcpy(&v, buf, 8);
            f.setBits(v);
        } else {
            long double v;
            std::memcpy(&v, buf, 10);
            f.setVal(v);
        }
        fr_ready_[i.dst] = issue + lat;
        if (i.imm != 0)
            set_gr(i.src1, addr + static_cast<uint64_t>(i.imm), false,
                   cfg_.lat_alu);
        return true;
      }

      case IpfOp::Stf: {
        uint64_t addr = grs_[i.src1];
        el_assert(!nats_[i.src1], "NaT address at stf");
        const Fr &f = frs_[i.src2];
        uint8_t buf[16] = {};
        unsigned bytes = i.size == 9 ? 8 : i.size;
        if (i.size == 4) {
            float v = static_cast<float>(f.valView());
            std::memcpy(buf, &v, 4);
        } else if (i.size == 8) {
            double v = static_cast<double>(f.valView());
            std::memcpy(buf, &v, 8);
        } else if (i.size == 9) {
            uint64_t v = f.bitsView();
            std::memcpy(buf, &v, 8);
        } else {
            long double v = f.valView();
            std::memcpy(buf, &v, 10);
        }
        auto r = mem_.writeBytes(addr, buf, bytes);
        if (!r.ok()) {
            stop->kind = StopKind::MemFault;
            stop->fault_addr = r.fault_addr;
            stop->fault_is_write = true;
            return false;
        }
        dcache_.access(addr, bytes);
        if (!isAligned(addr, bytes == 10 ? 16 : bytes)) {
            ++misaligned_;
            grp_extra_ += cfg_.misalign_penalty;
            grp_misalign_ += cfg_.misalign_penalty;
        }
        if (i.imm != 0)
            set_gr(i.src1, addr + static_cast<uint64_t>(i.imm), false,
                   cfg_.lat_alu);
        return true;
      }

      case IpfOp::Getf: {
        // size 0: significand bits; 4: single memory format;
        // 8: double memory format (getf.sig / getf.s / getf.d).
        uint64_t out;
        if (i.size == 4) {
            float f = static_cast<float>(frs_[i.src1].valView());
            uint32_t b;
            std::memcpy(&b, &f, 4);
            out = b;
        } else if (i.size == 8) {
            double d = static_cast<double>(frs_[i.src1].valView());
            std::memcpy(&out, &d, 8);
        } else {
            out = frs_[i.src1].bitsView();
        }
        set_gr(i.dst, out, false, cfg_.lat_getf);
        return true;
      }

      case IpfOp::Setf: {
        el_assert(!nats_[i.src1], "NaT consumption at setf");
        uint64_t v = grs_[i.src1];
        if (i.size == 4) {
            float f;
            uint32_t b = static_cast<uint32_t>(v);
            std::memcpy(&f, &b, 4);
            frs_[i.dst].setVal(f);
        } else if (i.size == 8) {
            double d;
            std::memcpy(&d, &v, 8);
            frs_[i.dst].setVal(d);
        } else {
            frs_[i.dst].setBits(v);
        }
        fr_ready_[i.dst] = issue + cfg_.lat_setf;
        return true;
      }

      case IpfOp::Fadd:
      case IpfOp::Fsub:
      case IpfOp::Fmpy:
      case IpfOp::Fma:
      case IpfOp::Fms:
      case IpfOp::Fnma:
      case IpfOp::Fdiv:
      case IpfOp::Fsqrt: {
        long double a = frs_[i.src1].valView();
        long double b = frs_[i.src2].valView();
        long double c = frs_[i.src3].valView();
        long double r = 0.0L;
        unsigned lat = cfg_.lat_fp;
        if (i.prec == FpPrec::Single) {
            // Compute in the target precision so a single operation
            // rounds exactly once, matching IA-32 SSE semantics.
            float fa = static_cast<float>(a);
            float fb = static_cast<float>(b);
            float fc = static_cast<float>(c);
            float fr = 0.0f;
            switch (i.op) {
              case IpfOp::Fadd: fr = fa + fb; break;
              case IpfOp::Fsub: fr = fa - fb; break;
              case IpfOp::Fmpy: fr = fa * fb; break;
              case IpfOp::Fma: fr = fa * fb + fc; break;
              case IpfOp::Fms: fr = fa * fb - fc; break;
              case IpfOp::Fnma: fr = -(fa * fb) + fc; break;
              case IpfOp::Fdiv: fr = fa / fb; lat = cfg_.lat_fdiv; break;
              case IpfOp::Fsqrt: fr = std::sqrt(fb); lat = cfg_.lat_fdiv;
                break;
              default: el_panic("unreachable");
            }
            r = fr;
        } else if (i.prec == FpPrec::Double) {
            double fa = static_cast<double>(a);
            double fb = static_cast<double>(b);
            double fc = static_cast<double>(c);
            double fr = 0.0;
            switch (i.op) {
              case IpfOp::Fadd: fr = fa + fb; break;
              case IpfOp::Fsub: fr = fa - fb; break;
              case IpfOp::Fmpy: fr = fa * fb; break;
              case IpfOp::Fma: fr = fa * fb + fc; break;
              case IpfOp::Fms: fr = fa * fb - fc; break;
              case IpfOp::Fnma: fr = -(fa * fb) + fc; break;
              case IpfOp::Fdiv: fr = fa / fb; lat = cfg_.lat_fdiv; break;
              case IpfOp::Fsqrt: fr = std::sqrt(fb); lat = cfg_.lat_fdiv;
                break;
              default: el_panic("unreachable");
            }
            r = fr;
        } else {
            switch (i.op) {
              case IpfOp::Fadd: r = a + b; break;
              case IpfOp::Fsub: r = a - b; break;
              case IpfOp::Fmpy: r = a * b; break;
              case IpfOp::Fma: r = a * b + c; break;
              case IpfOp::Fms: r = a * b - c; break;
              case IpfOp::Fnma: r = -(a * b) + c; break;
              case IpfOp::Fdiv: r = a / b; lat = cfg_.lat_fdiv; break;
              case IpfOp::Fsqrt:
                r = sqrtl(b);
                lat = cfg_.lat_fdiv;
                break;
              default: el_panic("unreachable");
            }
        }
        frs_[i.dst].setVal(roundPrec(i.prec, r));
        fr_ready_[i.dst] = issue + lat;
        return true;
      }

      case IpfOp::Fcmp: {
        long double a = frs_[i.src1].valView();
        long double b = frs_[i.src2].valView();
        bool unord = std::isnan(static_cast<double>(a)) ||
                     std::isnan(static_cast<double>(b));
        bool v = false;
        switch (i.crel) {
          case CmpRel::Eq:
            v = !unord && a == b;
            break;
          case CmpRel::Ne:
            v = unord || a != b;
            break;
          case CmpRel::Lt:
            v = !unord && a < b;
            break;
          case CmpRel::Le:
            v = !unord && a <= b;
            break;
          case CmpRel::Gt:
            v = !unord && a > b;
            break;
          case CmpRel::Ge:
            v = !unord && a >= b;
            break;
          case CmpRel::Unord:
            v = unord;
            break;
          default:
            el_panic("bad fp cmp relation");
        }
        set_pr2(i.dst, i.dst2, v);
        return true;
      }

      case IpfOp::Fneg:
        frs_[i.dst].setVal(-frs_[i.src1].valView());
        fr_ready_[i.dst] = issue + cfg_.lat_fp;
        return true;
      case IpfOp::Fabs: {
        long double v = frs_[i.src1].valView();
        frs_[i.dst].setVal(v < 0 ? -v : v);
        fr_ready_[i.dst] = issue + cfg_.lat_fp;
        return true;
      }
      case IpfOp::FcvtXf:
        frs_[i.dst].setVal(static_cast<long double>(
            static_cast<int64_t>(frs_[i.src1].bitsView())));
        fr_ready_[i.dst] = issue + cfg_.lat_fp;
        return true;
      case IpfOp::FcvtFxTrunc: {
        long double v = frs_[i.src1].valView();
        int64_t out;
        if (std::isnan(static_cast<double>(v)) || v >= 0x1p63L ||
            v < -0x1p63L) {
            out = INT64_MIN;
        } else if (i.size == 1) {
            out = llrintl(v); // round-to-nearest variant (fcvt.fx)
        } else {
            out = static_cast<int64_t>(v);
        }
        frs_[i.dst].setBits(static_cast<uint64_t>(out));
        fr_ready_[i.dst] = issue + cfg_.lat_fp;
        return true;
      }
      case IpfOp::Fmov:
      case IpfOp::Fpcvt:
        frs_[i.dst] = frs_[i.src1];
        fr_ready_[i.dst] = issue + cfg_.lat_fp;
        return true;

      case IpfOp::Fpadd:
      case IpfOp::Fpsub:
      case IpfOp::Fpmpy:
      case IpfOp::Fpdiv: {
        uint64_t a = frs_[i.src1].bitsView();
        uint64_t b = frs_[i.src2].bitsView();
        float lo, hi;
        unsigned lat = cfg_.lat_fp;
        switch (i.op) {
          case IpfOp::Fpadd:
            lo = laneF32(a, 0) + laneF32(b, 0);
            hi = laneF32(a, 1) + laneF32(b, 1);
            break;
          case IpfOp::Fpsub:
            lo = laneF32(a, 0) - laneF32(b, 0);
            hi = laneF32(a, 1) - laneF32(b, 1);
            break;
          case IpfOp::Fpmpy:
            lo = laneF32(a, 0) * laneF32(b, 0);
            hi = laneF32(a, 1) * laneF32(b, 1);
            break;
          case IpfOp::Fpdiv:
            lo = laneF32(a, 0) / laneF32(b, 0);
            hi = laneF32(a, 1) / laneF32(b, 1);
            lat = cfg_.lat_fdiv;
            break;
          default:
            el_panic("unreachable");
        }
        frs_[i.dst].setBits(packF32(lo, hi));
        fr_ready_[i.dst] = issue + lat;
        return true;
      }

      case IpfOp::Br:
        ip_ = i.target;
        branched_ = true;
        grp_extra_ += cfg_.br_taken_bubble;
        return true;
      case IpfOp::BrCall:
        brs_[i.dst & 7] = static_cast<uint64_t>(ip_ + 1);
        ip_ = i.target;
        branched_ = true;
        grp_extra_ += cfg_.br_taken_bubble;
        return true;
      case IpfOp::BrRet:
      case IpfOp::BrInd:
        ip_ = static_cast<int64_t>(brs_[i.src1 & 7]);
        branched_ = true;
        grp_extra_ += cfg_.br_indirect_penalty;
        return true;

      case IpfOp::Exit:
        stop->kind = StopKind::Exit;
        stop->reason = i.exit_reason;
        stop->payload = i.exit_payload;
        if (i.exit_reason == ExitReason::IndirectMiss)
            stop->payload = static_cast<int64_t>(grs_[i.src1]);
        return false;

      default:
        el_panic("machine: unimplemented op %s", ipfOpName(i.op));
    }
}

} // namespace el::ipf
