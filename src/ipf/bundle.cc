#include "ipf/bundle.hh"

#include "ipf/code_cache.hh"

namespace el::ipf
{

namespace
{

/** The slot patterns of the supported bundle templates. */
struct Template
{
    Slot s0, s1, s2;
};

const Template templates[] = {
    {Slot::M, Slot::I, Slot::I}, // MII
    {Slot::M, Slot::M, Slot::I}, // MMI
    {Slot::M, Slot::F, Slot::I}, // MFI
    {Slot::M, Slot::M, Slot::F}, // MMF
    {Slot::M, Slot::I, Slot::B}, // MIB
    {Slot::M, Slot::B, Slot::B}, // MBB
    {Slot::B, Slot::B, Slot::B}, // BBB
    {Slot::M, Slot::M, Slot::B}, // MMB
    {Slot::M, Slot::F, Slot::B}, // MFB
};

/** Can an instruction of kind @p want occupy a template slot @p have? */
bool
fits(Slot want, Slot have)
{
    if (want == Slot::A)
        return have == Slot::M || have == Slot::I;
    return want == have;
}

/**
 * Greedily choose the template that places the most of the next
 * instructions. Returns the number of instructions consumed (>= 1 is
 * guaranteed progress: every slot kind appears in some template).
 */
unsigned
packOne(const std::vector<Slot> &kinds, size_t at, BundleStats *stats)
{
    unsigned best_used = 0;
    for (const Template &t : templates) {
        const Slot slots[3] = {t.s0, t.s1, t.s2};
        unsigned used = 0;
        unsigned si = 0;
        while (si < 3 && at + used < kinds.size()) {
            if (fits(kinds[at + used], slots[si])) {
                ++used;
                ++si;
            } else {
                ++si; // this template slot becomes a nop
            }
        }
        if (used > best_used)
            best_used = used;
    }
    if (best_used == 0)
        best_used = 1; // degenerate; count it as its own bundle
    ++stats->bundles;
    stats->real_slots += best_used;
    stats->nop_slots += 3 - (best_used > 3 ? 3 : best_used);
    return best_used;
}

} // namespace

BundleStats
packBundles(const CodeCache &code, int64_t begin, int64_t end)
{
    BundleStats stats;
    // Split into groups at stop bits; pack each group independently.
    int64_t g_start = begin;
    while (g_start < end) {
        int64_t g_end = g_start;
        while (g_end < end && !code.at(g_end).stop)
            ++g_end;
        if (g_end < end)
            ++g_end; // include the stopped instruction

        std::vector<Slot> kinds;
        for (int64_t k = g_start; k < g_end; ++k) {
            kinds.push_back(code.at(k).slotKind());
            if (code.at(k).op == IpfOp::Movl)
                kinds.push_back(Slot::I); // the X half of the L+X pair
        }
        size_t at = 0;
        while (at < kinds.size())
            at += packOne(kinds, at, &stats);
        g_start = g_end;
    }
    return stats;
}

} // namespace el::ipf
