/**
 * @file
 * One OS-independent translator, multiple operating systems (paper
 * section 3): the same BTGeneric engine runs a guest program under the
 * simulated Linux and Windows personalities, talking to each through
 * the binary-level BTOS API. Also demonstrates the version handshake
 * rejecting an incompatible BTLib.
 */

#include <cstdio>

#include "btlib/abi.hh"
#include "guest/image.hh"
#include "harness/exec.hh"
#include "ia32/assembler.hh"

using namespace el;
using namespace el::ia32;
using guest::Layout;

namespace
{

/** A guest that writes a message and exits 7, per-ABI syscalls. */
guest::Image
makeGuest(btlib::OsAbi abi)
{
    Assembler as(Layout::code_base);
    const char msg[] = "hello from IA-32 guest\n";
    for (unsigned k = 0; k < sizeof(msg) - 1; ++k)
        as.movMI8(memabs(Layout::data_base + k), msg[k]);
    if (abi == btlib::OsAbi::Linux) {
        as.movRI(RegEax, btlib::linux_abi::nr_write);
        as.movRI(RegEbx, Layout::data_base);
        as.movRI(RegEcx, sizeof(msg) - 1);
        as.intN(btlib::linux_abi::int_vector);
        as.movRI(RegEax, btlib::linux_abi::nr_exit);
        as.movRI(RegEbx, 7);
        as.intN(btlib::linux_abi::int_vector);
    } else {
        // Windows personality: argument block in memory, INT 0x2e.
        uint32_t block = Layout::data_base + 0x100;
        as.movMI(memabs(block), Layout::data_base);
        as.movMI(memabs(block + 4), sizeof(msg) - 1);
        as.movRI(RegEax, btlib::windows_abi::nr_write_console);
        as.movRI(RegEdx, block);
        as.intN(btlib::windows_abi::int_vector);
        as.movMI(memabs(block), 7);
        as.movRI(RegEax, btlib::windows_abi::nr_terminate);
        as.movRI(RegEdx, block);
        as.intN(btlib::windows_abi::int_vector);
    }
    guest::Image img;
    img.name = "hello";
    img.entry = Layout::code_base;
    img.addCode(Layout::code_base, as.finish());
    img.addData(Layout::data_base, 0x1000);
    return img;
}

} // namespace

int
main()
{
    for (btlib::OsAbi abi :
         {btlib::OsAbi::Linux, btlib::OsAbi::Windows}) {
        guest::Image img = makeGuest(abi);
        harness::TranslatedRun run = harness::runTranslated(img, abi);
        std::printf("[%s] BTLib personality: %s\n",
                    abi == btlib::OsAbi::Linux ? "linux" : "windows",
                    run.os->name());
        std::printf("  console: %s", run.outcome.console.c_str());
        std::printf("  exit   : %d\n", run.outcome.exit_code);
        std::printf("  BTGeneric syscalls routed through BTOS: %llu\n",
                    (unsigned long long)run.os->stats().syscalls);
    }

    // The BTOS version handshake: an incompatible BTLib is rejected
    // before anything runs (section 3's versioning protocol).
    std::printf("\nversion handshake check:\n");
    mem::Memory memory;
    btlib::SimLinux os(memory);
    btlib::BtOsVtable vt = os.vtable();
    vt.major = 1; // pretend an old BTLib
    core::Runtime rt(memory, vt);
    std::printf("  BTLib v1 vs BTGeneric v%u -> %s\n", btlib::btos_major,
                rt.initOk() ? "accepted (bug!)"
                            : rt.initError().c_str());
    return 0;
}
