/**
 * @file
 * The three-stage misalignment pipeline (paper section 5) in action:
 * stage 1 detects, stage 2 counts and avoids in regenerated cold code,
 * stage 3 bakes avoidance into hot code. The clinic runs the same
 * misaligned kernel with the pipeline off and on and shows the stage
 * transitions and the resulting speedup (the paper's 1236s -> 133s
 * anecdote, in miniature).
 */

#include <cstdio>

#include "guest/workloads.hh"
#include "harness/exec.hh"

using namespace el;

int
main()
{
    guest::WorkloadParams p;
    p.outer_iters = 40;
    p.size = 6000;
    p.misaligned = 2; // all 4-byte accesses land on addr % 4 == 2
    guest::Workload w = guest::buildMatrix("clinic", p);

    core::Options off;
    off.enable_misalign_avoidance = false;
    harness::TranslatedRun raw =
        harness::runTranslated(w.image, w.params.abi, off);

    harness::TranslatedRun cured =
        harness::runTranslated(w.image, w.params.abi);

    auto report = [](const char *tag, harness::TranslatedRun &r) {
        std::printf("%-22s cycles=%12.0f machine-level misaligned "
                    "accesses=%llu\n",
                    tag, r.outcome.cycles,
                    (unsigned long long)
                        r.runtime->machine().misalignedAccesses());
    };
    report("without avoidance:", raw);
    report("with 3-stage pipeline:", cured);

    StatGroup &ts = cured.runtime->translator().stats;
    std::printf("\npipeline activity:\n");
    std::printf("  stage-1 events (detect, exit)      : %llu\n",
                (unsigned long long)
                    cured.runtime->stats().get("exits.misaligned"));
    std::printf("  stage-2 regenerations (count+avoid): %llu\n",
                (unsigned long long)ts.get(
                    "misalign.block_regenerations"));
    std::printf("  blocks with recorded misalignment  : %llu\n",
                (unsigned long long)ts.get("misalign.events"));
    std::printf("\nspeedup: %.2fx (paper's anecdote: 9.3x on a "
                "misalignment-bound workload)\n",
                raw.outcome.cycles / cured.outcome.cycles);
    std::printf("correctness: exit codes %d vs %d -> %s\n",
                raw.outcome.exit_code, cured.outcome.exit_code,
                raw.outcome.exit_code == cured.outcome.exit_code
                    ? "identical"
                    : "BUG");
    return 0;
}
