/*
 * Build/schema provenance stamps.
 *
 * Every artifact the toolchain writes (run reports, profiles, metrics
 * NDJSON, postmortem bundles, bench reports) carries a `producer`
 * header naming the tool that wrote it, the build it came from, the
 * schema version of the document, and — when the producer knows it —
 * the image/options fingerprint of the run. Readers (el_diff above
 * all) use the stamp to refuse cross-schema or cross-image
 * comparisons with a clear message instead of silently diffing
 * incomparable numbers.
 */

#ifndef EL_SUPPORT_BUILDINFO_HH
#define EL_SUPPORT_BUILDINFO_HH

#include <string>

#include "support/json.hh"

namespace el::buildinfo {

/** Version string of this build ("git describe" output captured at
 *  configure time, or "unknown" outside a git checkout). */
const char *buildVersion();

/**
 * The provenance header stamped into emitted artifacts. `schema` is
 * the version of the *document* (el-report-v1, el-metrics-v1, ...),
 * distinct from the build version; `fingerprint` is the persist-layer
 * image+options fingerprint hex, empty when the producer has no image
 * (e.g. bench reports aggregate several runs).
 */
struct ProducerStamp
{
    std::string tool;        //!< e.g. "el_run", "el_aot", "bench"
    std::string build;       //!< buildVersion()
    int schema = 1;          //!< document schema version
    std::string fingerprint; //!< image/options fingerprint hex or ""

    static ProducerStamp make(std::string tool_name,
                              std::string fingerprint_hex = "")
    {
        ProducerStamp s;
        s.tool = std::move(tool_name);
        s.build = buildVersion();
        s.fingerprint = std::move(fingerprint_hex);
        return s;
    }
};

/** Emit the stamp as a "producer" member of the current JSON object. */
inline void
writeStamp(json::Writer &w, const ProducerStamp &s)
{
    w.key("producer");
    w.beginObject();
    w.kv("tool", s.tool);
    w.kv("build", s.build);
    w.kv("schema", s.schema);
    if (!s.fingerprint.empty())
        w.kv("fingerprint", s.fingerprint);
    w.endObject();
}

} // namespace el::buildinfo

#endif // EL_SUPPORT_BUILDINFO_HH
