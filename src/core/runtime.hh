/**
 * @file
 * BTGeneric's runtime: the dispatch loop of Figure 2/3.
 *
 * Owns the IPF machine, the code cache and the translator; converses
 * with the OS exclusively through the BTOS API (btlib::BtOsClient). It
 * services every translated-code exit: linking, indirect lookups, hot
 * registration and optimization sessions, system calls, speculation
 * guard recovery, misalignment stage transitions, SMC invalidation, and
 * precise exception reconstruction (section 4).
 */

#ifndef EL_CORE_RUNTIME_HH
#define EL_CORE_RUNTIME_HH

#include <deque>
#include <memory>

#include "btlib/btos.hh"
#include "core/hot_pipeline.hh"
#include "core/options.hh"
#include "core/provenance.hh"
#include "core/translator.hh"
#include "ia32/state.hh"
#include "ipf/machine.hh"
#include "mem/memory.hh"
#include "support/audit.hh"
#include "support/faultinject.hh"
#include "support/flightrec.hh"
#include "support/ring.hh"
#include "support/sentinel.hh"
#include "support/stats.hh"

namespace el::core
{

/** How a runtime run() finished. */
struct RunResult
{
    enum class Kind
    {
        Exit,       //!< Guest exited (code in exit_code).
        Fault,      //!< Unhandled guest fault (terminated).
        CycleLimit, //!< Simulation budget exhausted.
        InitError,  //!< BTOS handshake failed.
    };

    Kind kind = Kind::Exit;
    int32_t exit_code = 0;
    ia32::Fault fault{};
};

/** The IA-32 EL runtime (BTGeneric). */
class Runtime
{
  public:
    Runtime(mem::Memory &memory, const btlib::BtOsVtable &vtable,
            Options options = {});

    /** False if the BTOS handshake or runtime-area allocation failed. */
    bool initOk() const { return btos_.ok() && rt_base_ != 0; }
    const std::string &initError() const { return btos_.error(); }

    /** The fault injector active for this runtime (null: no injection). */
    const FaultInjector *faultInjector() const { return inject_scope_.get(); }

    /** Run the guest from state.eip until exit/fault/limit. */
    RunResult run(ia32::State &state);

    ipf::Machine &machine() { return *machine_; }
    Translator &translator() { return *translator_; }
    const mem::Memory &memory() const { return mem_; }
    ipf::CodeCache &codeCache() { return cache_; }
    StatGroup &stats() { return stats_; }
    const Options &options() const { return options_; }
    uint64_t rtBase() const { return rt_base_; }

    /**
     * Overhead cycles spent repairing faults at runtime (speculation
     * guard recovery). A subset of the machine's Overhead bucket; the
     * attribution report moves it into "fault handling" alongside the
     * misalignment penalties the machine tracks per bucket.
     */
    double faultOverheadCycles() const { return fault_overhead_cycles_; }

    /** Dispatch-loop lookups serviced so far (monotonic). */
    uint64_t dispatchLookups() const { return dispatch_lookups_; }

    /**
     * Violations found by the periodic in-run closure audit
     * (Options::audit). Empty when auditing is off or the books
     * closed. The embedder merges this into its end-of-run full audit
     * so a corruption that appeared mid-run is reported even if later
     * churn happened to re-balance the totals.
     */
    const audit::Result &auditFindings() const { return audit_findings_; }

    /** The always-on flight recorder (null when Options disabled it). */
    flight::FlightRecorder *flight() { return flight_.get(); }
    const flight::FlightRecorder *flight() const { return flight_.get(); }

    /** The artifact provenance ledger (null when disabled). */
    ProvenanceLedger *provenance() { return provenance_.get(); }
    const ProvenanceLedger *provenance() const
    {
        return provenance_.get();
    }

    /**
     * Wait (wall-clock only) for in-flight pipeline sessions to land so
     * worker-side flight events are complete. Call after run() before
     * snapshotting the recorder or writing a postmortem bundle.
     */
    void quiesce()
    {
        if (hot_pipeline_)
            hot_pipeline_->quiesce();
    }

    /** Copy guest architectural state into the machine + runtime area. */
    void loadContext(const ia32::State &state);

    /** Rebuild the guest architectural state from the machine. */
    void storeContext(ia32::State *state, uint32_t eip);

  private:
    /** Entry-condition snapshot from the runtime status bytes. */
    SpecContext currentSpec() const;

    /** Find/translate the block for @p eip; returns its cache entry. */
    int64_t dispatchEntry(uint32_t eip, bool force_cold,
                          bool fresh_cold = false);

    /** Recover from a speculation guard failure. */
    void recoverGuard(BlockInfo *block, int64_t payload_kind);

    /** Build precise state at a hot-code fault via the recovery map. */
    void reconstructHot(const BlockInfo &block, const ipf::Instr &instr,
                        ia32::State *state);

    /** Evaluate a lazy flag recipe against machine registers. */
    uint32_t evalFlagRecipe(const FlagRecipe &recipe) const;

    uint64_t grAt(const Loc &loc, unsigned guest_reg) const;

    /** Handle the RegisterHot protocol; may run or enqueue a session. */
    void registerHot(int32_t block_id);

    /**
     * Snapshot a hot candidate and hand it to the pipeline workers.
     * The block's use counter is silenced while the session is in
     * flight and re-armed if the session fails or is discarded.
     */
    void enqueueHot(BlockInfo *cand, const SpecContext &spec);

    /**
     * Adoption point (top of the dispatch loop, i.e. a block re-entry
     * boundary): publish finished pipeline sessions into the shared
     * code cache. No-op when the pipeline is off or idle.
     */
    void adoptHotResults();

    /** Charge accumulated translator cycles to Overhead and fold the
     *  hot-stall share into the "hot.stall_cycles" statistic. */
    void chargeTranslatorOverhead();

    /**
     * Bounded-retry accounting for a failed hot session: after
     * options_.hot_retry_limit failures the block is pinned cold.
     */
    void noteHotFailure(BlockInfo *block);

    /**
     * Safety net when translation aborts (fault injection): execute a
     * few guest instructions under the reference interpreter, then
     * resume translated execution. Returns false when run() must
     * return (guest exit / unhandled fault), with @p result filled.
     */
    bool interpretFallback(ia32::State *state, RunResult *result,
                           uint32_t *next_eip);

    /** Deliver a guest fault; returns true to continue running. */
    bool deliverFault(ia32::State *state, const ia32::Fault &fault,
                      RunResult *result);

    // ----- divergence sentinel (attached via Options::sentinel) ------

    /** How a shadow-checked region ended. */
    enum class RegionEnd : uint8_t
    {
        Boundary, //!< Ordinary dispatch boundary (block exit).
        Syscall,  //!< Region ended at a syscall gate (pre-service).
        Fault,    //!< Region ended at a guest fault (pre-delivery).
    };

    /**
     * Open a shadow-checked region at @p eip: snapshot architectural
     * state, arm the memory write journal (runtime area excluded) and
     * the machine's translation-visit log. Zero simulated cycles.
     */
    void armCheckpoint(uint32_t eip);

    /** Close an armed region without verification (halt, breakpoint,
     *  cycle limit); @p why_stat names the skip counter. */
    void discardCheckpoint(const char *why_stat);

    /**
     * Close an armed region WITH verification: rewind memory to the
     * checkpoint, replay the region through the interpreter oracle, and
     * compare final architectural state + net memory effect against the
     * machine's (@p mstate, whose eip is the region end). On a pass the
     * machine's execution is reinstated byte-exactly and true returns.
     * On a divergence every translation the region visited is
     * quarantined, state and memory roll back to the checkpoint, and
     * false returns — the caller resumes at the checkpoint EIP (where
     * the sentinel's interpret gate now routes to the oracle).
     */
    bool finishRegionCheck(RegionEnd kind, const ia32::State &mstate,
                           uint8_t vector, const ia32::Fault *fault);

    /** The interpreter replay; true when it reproduced the machine. */
    bool replayMatches(RegionEnd kind, const ia32::State &mstate,
                       uint8_t vector, const ia32::Fault *fault,
                       mem::WriteJournal *replay_journal);

    /** Quarantine every artifact in the visit log; log the event. */
    void quarantineRegion(uint32_t end_eip);

    mem::Memory &mem_;
    btlib::BtOsClient btos_;
    Options options_;
    FaultInjectorScope inject_scope_; //!< Installed for our lifetime.
    ipf::CodeCache cache_;
    std::unique_ptr<ipf::Machine> machine_;
    std::unique_ptr<Translator> translator_;
    uint64_t rt_base_ = 0;
    StatGroup stats_;
    std::deque<int32_t> hot_queue_;
    trace::Tracer *trace_ = nullptr; //!< From Options; null = off.
    prof::Profiler *profiler_ = nullptr; //!< From Options; null = off.
    // The always-on black box. Owned here (unlike the opt-in observers,
    // which callers attach) and declared before hot_pipeline_ so worker
    // threads are joined before the rings they write to are destroyed.
    std::unique_ptr<flight::FlightRecorder> flight_;
    std::unique_ptr<ProvenanceLedger> provenance_;
    uint64_t dispatch_lookups_ = 0; //!< dispatchEntry() calls (sampled
                                    //!< by the profiler time series).
    double fault_overhead_cycles_ = 0;
    double next_audit_ = 0;         //!< Next in-run closure audit, in
                                    //!< simulated cycles.
    audit::Result audit_findings_;  //!< Accumulated in-run violations.

    // Divergence-sentinel checkpoint state. All dead weight when
    // sentinel_ is null (one branch per dispatch, zero cycles).
    sentinel::Sentinel *sentinel_ = nullptr; //!< From Options; null = off.
    bool ck_armed_ = false;      //!< A shadow-checked region is open.
    uint32_t ck_eip_ = 0;        //!< Region entry (rollback target).
    ia32::State ck_state_;       //!< Architectural state at the entry.
    mem::WriteJournal journal_;  //!< Machine-side writes of the region.
    static constexpr size_t sentinel_visit_capacity = 128;
    BoundedRing<int32_t> visit_log_{sentinel_visit_capacity,
                                    RingPolicy::DropNewest};

    // Declared last on purpose: destruction joins the worker threads
    // before anything they reference (translator_, options_, the fault
    // injector owned by inject_scope_) is torn down.
    std::unique_ptr<HotPipeline> hot_pipeline_;
};

} // namespace el::core

#endif // EL_CORE_RUNTIME_HH
