/**
 * @file
 * `el_diff`: differential run attribution.
 *
 * Feed it two run reports of the same guest image — cold vs warm, a
 * thread sweep, before/after an optimization — and it explains the
 * cycle delta: which Figure-6 phases and which specific translation
 * blocks account for it, with the unattributed residual reported
 * rather than hidden. Writes the human table to stdout and, with
 * --json-out, the machine-readable el-diff v1 document CI archives
 * next to bench results.
 *
 * Exit codes: 0 attribution produced, 1 usage, 2 unreadable input,
 * 3 incompatible inputs (different schema, image fingerprint, or
 * workload; --force downgrades this to a warning).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "support/attrib.hh"
#include "support/buildinfo.hh"

namespace
{

using namespace el;

constexpr int exit_ok = 0;
constexpr int exit_usage = 1;
constexpr int exit_io = 2;
constexpr int exit_incompatible = 3;

void
usage()
{
    std::fprintf(
        stderr,
        "usage: el_diff [options] <base-report.json> "
        "<current-report.json>\n"
        "  --json-out=<file>   write the el-diff v1 JSON document\n"
        "  --noise=<frac>      pool blocks whose |delta| is below this\n"
        "                      fraction of the total delta into one\n"
        "                      below-noise row (default 0.01)\n"
        "  --force             diff despite mismatched fingerprints or\n"
        "                      workloads (prints the mismatch as a\n"
        "                      warning instead of refusing)\n"
        "\n"
        "Inputs are el-report documents from `el_run --report-json`.\n"
        "Reports from the same build stamp carry an image+options\n"
        "fingerprint; el_diff refuses to compare different guests.\n");
}

bool
readFile(const std::string &path, std::string *out)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return false;
    std::ostringstream ss;
    ss << f.rdbuf();
    *out = ss.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_out;
    attrib::Options opts;
    bool force = false;
    std::string paths[2];
    int npaths = 0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            size_t n = std::strlen(prefix);
            if (arg.compare(0, n, prefix) != 0 || arg.size() == n)
                return nullptr;
            return arg.c_str() + n;
        };
        if (const char *v = value("--json-out=")) {
            json_out = v;
        } else if (const char *v = value("--noise=")) {
            char *end = nullptr;
            opts.noise_frac = std::strtod(v, &end);
            if (!end || *end || opts.noise_frac < 0 ||
                opts.noise_frac >= 1) {
                std::fprintf(stderr,
                             "el_diff: bad --noise value '%s' (want a "
                             "fraction in [0, 1))\n", v);
                return exit_usage;
            }
        } else if (arg == "--force") {
            force = true;
        } else if (arg == "--help") {
            usage();
            return exit_ok;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "el_diff: unknown argument '%s'\n",
                         arg.c_str());
            usage();
            return exit_usage;
        } else if (npaths < 2) {
            paths[npaths++] = arg;
        } else {
            std::fprintf(stderr, "el_diff: too many inputs\n");
            usage();
            return exit_usage;
        }
    }
    if (npaths != 2) {
        usage();
        return exit_usage;
    }

    attrib::RunView views[2];
    for (int i = 0; i < 2; ++i) {
        std::string text, err;
        if (!readFile(paths[i], &text)) {
            std::fprintf(stderr, "el_diff: cannot read %s\n",
                         paths[i].c_str());
            return exit_io;
        }
        if (!attrib::parseReport(text, paths[i], &views[i], &err)) {
            std::fprintf(stderr, "el_diff: %s\n", err.c_str());
            return exit_io;
        }
    }

    std::string why;
    if (!attrib::compatible(views[0], views[1], &why)) {
        if (!force) {
            std::fprintf(stderr, "el_diff: %s\n", why.c_str());
            return exit_incompatible;
        }
        std::fprintf(stderr,
                     "el_diff: warning: %s (continuing under "
                     "--force)\n", why.c_str());
    }

    attrib::Diff d = attrib::diffRuns(views[0], views[1], opts);
    std::fputs(attrib::diffTable(d, views[0], views[1]).c_str(),
               stdout);

    if (!json_out.empty()) {
        buildinfo::ProducerStamp stamp = buildinfo::ProducerStamp::make(
            "el_diff", views[0].fingerprint);
        std::ofstream f(json_out, std::ios::binary);
        if (!f ||
            !(f << attrib::diffJson(d, views[0], views[1], stamp))) {
            std::fprintf(stderr, "el_diff: cannot write %s\n",
                         json_out.c_str());
            return exit_io;
        }
        std::printf("\ndiff: %s\n", json_out.c_str());
    }
    return exit_ok;
}
