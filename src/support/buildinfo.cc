#include "support/buildinfo.hh"

// EL_BUILD_VERSION is injected by CMake from `git describe` at
// configure time; fall back so tarball builds still stamp something.
#ifndef EL_BUILD_VERSION
#define EL_BUILD_VERSION "unknown"
#endif

namespace el::buildinfo {

const char *
buildVersion()
{
    return EL_BUILD_VERSION;
}

} // namespace el::buildinfo
