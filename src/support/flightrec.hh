/**
 * @file
 * Always-on flight recorder: the translator's black box.
 *
 * Unlike the opt-in lifecycle tracer (support/trace.hh), the flight
 * recorder runs on every invocation by default and keeps only the
 * *last* N structured events per thread: fixed-size bounded rings with
 * drop-oldest overflow, so when a run ends abnormally the tail of the
 * flight — the part that explains the failure — is always present.
 * The tracer makes the opposite choice (drop-newest) because its job
 * is a faithful prefix for timeline viewers.
 *
 * Events are fixed-width PODs (a kind code, a logical lane, a
 * simulated-cycle timestamp, and three integer payload words), not
 * name/arg pairs: recording is a ring push under a per-thread mutex
 * with no allocation, cheap enough to leave on in production. Lanes
 * follow the tracer's convention — lane 0 is the guest/runtime thread,
 * lane 1+k is hot-pipeline worker slot k — and worker events carry
 * *planned* simulated times from the candidate, never wall clock, so a
 * deterministic run yields a bit-identical merged flight regardless of
 * host scheduling.
 *
 * Recording charges zero simulated cycles and every hook is a single
 * null-check branch when the recorder is detached, so guest results
 * and cycle counts are bit-exact with the recorder on or off.
 */

#ifndef EL_SUPPORT_FLIGHTREC_HH
#define EL_SUPPORT_FLIGHTREC_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "support/ring.hh"

namespace el::flight
{

/** What happened. Names for export via kindName(). */
enum class Kind : uint8_t
{
    Dispatch,       //!< Block-map lookup at a dispatch boundary (a=eip).
    ColdXlate,      //!< Cold block translated (a=eip, b=block id, c=insns).
    HotEnqueue,     //!< Candidate queued to the hot pipeline (a=eip, b=seq).
    HotSession,     //!< Worker session ran (a=eip, b=seq, c=ok).
    HotCommit,      //!< Hot artifact published (a=eip, b=block id, c=insns).
    HotDiscard,     //!< Hot artifact rejected at commit (a=eip, b=cause).
    SmcInvalidate,  //!< Self-modifying write killed blocks (a=addr, b=len, c=count).
    CacheFlush,     //!< Code cache flushed (a=generation).
    PersistAdopt,   //!< Stored artifact adopted (a=eip, b=insns).
    PersistReject,  //!< Stored artifact rejected (a=eip, b=cause).
    SentinelShift,  //!< Health transition (a=eip, b=from, c=to).
    Divergence,     //!< Shadow-execution mismatch (a=checkpoint eip, b=boundary eip).
    FaultInject,    //!< Injected fault fired (a=site, b=fire #).
    GuestFault,     //!< Guest fault delivered (a=eip, b=fault kind).
};

const char *kindName(Kind kind);

/** One fixed-width recorded event; see Kind for payload meanings. */
struct Event
{
    Kind kind = Kind::Dispatch;
    uint32_t lane = 0; //!< 0 = guest thread, 1+k = worker slot k.
    double ts = 0;     //!< Simulated cycles (planned time on workers).
    int64_t a = 0;
    int64_t b = 0;
    int64_t c = 0;
};

/** The recorder. One instance per run; always-on by default. */
class FlightRecorder
{
  public:
    /** @p ring_capacity Per-thread ring size in events (last-N kept). */
    explicit FlightRecorder(size_t ring_capacity = 1024)
        : ring_capacity_(ring_capacity ? ring_capacity : 1)
    {}

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** Record one event into the calling thread's ring. */
    void
    record(Kind kind, uint32_t lane, double ts, int64_t a = 0,
           int64_t b = 0, int64_t c = 0)
    {
        Ring *ring = threadRing();
        std::lock_guard<std::mutex> lk(ring->mu);
        ring->events.push(Event{kind, lane, ts, a, b, c});
    }

    /**
     * Merged view of every ring, sorted by (ts, lane, kind, a) — a
     * deterministic order for a deterministic event set, independent
     * of which host thread recorded what when.
     */
    std::vector<Event> snapshot() const;

    /** Oldest events evicted on ring overflow, across all rings. */
    uint64_t dropped() const;

    size_t ringCapacity() const { return ring_capacity_; }

  private:
    /** One host thread's bounded event buffer. Drop-oldest: the tail
     *  of the run (what a postmortem needs) survives overflow. */
    struct Ring
    {
        mutable std::mutex mu; //!< Owner appends; snapshot() reads.
        BoundedRing<Event> events;

        explicit Ring(size_t capacity)
            : events(capacity, RingPolicy::DropOldest)
        {}
    };

    /** The calling thread's ring (created on first use). */
    Ring *threadRing();

    size_t ring_capacity_;
    /** Distinguishes this instance from a dead recorder that occupied
     *  the same address (the per-thread ring cache keys on both). */
    uint64_t instance_id_ = nextInstanceId();
    mutable std::mutex rings_mu_;
    std::vector<std::unique_ptr<Ring>> rings_;

    static uint64_t nextInstanceId();
};

} // namespace el::flight

#endif // EL_SUPPORT_FLIGHTREC_HH
