/**
 * @file
 * Error and status reporting, following the gem5 logging idiom.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a debugger/core dump can capture the state.
 * fatal()  — the user asked for something impossible (bad configuration,
 *            malformed guest image); exits with an error code.
 * warn()   — something is suspicious but execution can continue.
 * inform() — plain status output.
 */

#ifndef EL_SUPPORT_LOGGING_HH
#define EL_SUPPORT_LOGGING_HH

#include <string>

#include "support/strfmt.hh"

namespace el
{

/** Verbosity control: 0 = errors only, 1 = warn, 2 = inform, 3 = debug. */
extern int log_level;

/**
 * Parse a `--log-level=` value: the canonical names err|warn|info|debug
 * (plus the common spellings error/warning/inform and bare digits
 * 0..3). Returns the level, or -1 when @p name is unrecognized.
 */
int parseLogLevel(const std::string &name);

/** Canonical name for @p level ("err", "warn", "info", "debug"). */
const char *logLevelName(int level);

/**
 * Initialize `log_level` from the EL_LOG environment variable if it is
 * set and parses; an unparseable value is reported (and ignored) so a
 * typo never silently changes verbosity. Tools call this before flag
 * parsing — an explicit `--log-level=` wins over the environment.
 */
void initLogLevelFromEnv();

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

} // namespace el

#define el_panic(...) \
    ::el::panicImpl(__FILE__, __LINE__, ::el::strfmt(__VA_ARGS__))
#define el_fatal(...) \
    ::el::fatalImpl(__FILE__, __LINE__, ::el::strfmt(__VA_ARGS__))
#define el_warn(...) ::el::warnImpl(::el::strfmt(__VA_ARGS__))
#define el_inform(...) ::el::informImpl(::el::strfmt(__VA_ARGS__))
#define el_debug(...) \
    do { \
        if (::el::log_level >= 3) \
            ::el::debugImpl(::el::strfmt(__VA_ARGS__)); \
    } while (0)

/** Assert that must hold regardless of user input; compiled in always. */
#define el_assert(cond, ...) \
    do { \
        if (!(cond)) \
            el_panic("assertion failed: %s: %s", #cond, \
                     ::el::strfmt("" __VA_ARGS__).c_str()); \
    } while (0)

#endif // EL_SUPPORT_LOGGING_HH
