/**
 * @file
 * Tests for the translation-lifecycle tracer and the run report:
 * replaying a deterministic configuration must reproduce the trace
 * bit-identically, lifecycle event sets must be stable across worker
 * thread counts, tracing must never perturb simulated cycles, the
 * Chrome export must validate, the Figure-6 attribution buckets must
 * sum exactly to the machine's cycle total, and the acceptance
 * scenario (gzip under four workers; a bounded cache under pressure)
 * must surface hot sessions on worker lanes and cache-flush events.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

#include "core/report.hh"
#include "guest/workloads.hh"
#include "harness/exec.hh"
#include "support/json.hh"
#include "support/strfmt.hh"
#include "support/trace.hh"

namespace el
{
namespace
{

core::Options
traceOpts(unsigned threads, trace::Tracer *tracer)
{
    core::Options o;
    o.heat_threshold = 16;
    o.hot_batch = 1;
    o.translation_threads = threads;
    o.deterministic_adoption = threads > 0;
    o.trace = tracer;
    return o;
}

guest::Workload
gzipWorkload()
{
    guest::WorkloadParams p;
    p.outer_iters = 60;
    p.size = 24000;
    return guest::buildStream("gzip", p);
}

/** Stable text encoding of one event (everything the trace records). */
std::string
encode(const trace::Event &e)
{
    std::string s = strfmt("%s|%c|%u|%.17g|%.17g", e.name, e.ph, e.tid,
                           e.ts, e.dur);
    for (unsigned i = 0; i < e.nargs; ++i)
        s += strfmt("|%s=%lld", e.args[i].key,
                    static_cast<long long>(e.args[i].value));
    return s;
}

std::string
encodeAll(const trace::Tracer &t)
{
    std::string s;
    for (const trace::Event &e : t.snapshot())
        s += encode(e) + "\n";
    return s;
}

const trace::Arg *
argOf(const trace::Event &e, const char *key)
{
    for (unsigned i = 0; i < e.nargs; ++i)
        if (std::strcmp(e.args[i].key, key) == 0)
            return &e.args[i];
    return nullptr;
}

/** The (name, eip) pairs of all events named @p name. */
std::multiset<std::string>
eipSetOf(const trace::Tracer &t, const char *name)
{
    std::multiset<std::string> out;
    for (const trace::Event &e : t.snapshot()) {
        if (std::strcmp(e.name, name) != 0)
            continue;
        const trace::Arg *eip = argOf(e, "eip");
        out.insert(strfmt("%s@%llx", e.name,
                          eip ? static_cast<long long>(eip->value)
                              : -1LL));
    }
    return out;
}

// ----- replay determinism -----------------------------------------------

TEST(Trace, ReplayProducesIdenticalStream)
{
    guest::Workload w = gzipWorkload();
    trace::Tracer t1, t2;
    harness::TranslatedRun r1 = harness::runTranslated(
        w.image, w.params.abi, traceOpts(4, &t1));
    harness::TranslatedRun r2 = harness::runTranslated(
        w.image, w.params.abi, traceOpts(4, &t2));
    ASSERT_TRUE(r1.outcome.exited);
    EXPECT_EQ(r1.outcome.cycles, r2.outcome.cycles);
    EXPECT_EQ(t1.dropped(), 0u);
    std::string s1 = encodeAll(t1);
    EXPECT_FALSE(s1.empty());
    EXPECT_EQ(s1, encodeAll(t2));
}

// ----- cross-thread-count stability -------------------------------------

TEST(Trace, ColdTranslateSetStableAcrossThreadCounts)
{
    guest::Workload w = gzipWorkload();
    std::multiset<std::string> sync_set, async_ref;
    for (unsigned threads : {0u, 1u, 4u}) {
        trace::Tracer t;
        harness::TranslatedRun r = harness::runTranslated(
            w.image, w.params.abi, traceOpts(threads, &t));
        ASSERT_TRUE(r.outcome.exited) << "threads " << threads;
        std::multiset<std::string> cold = eipSetOf(t, "cold_translate");
        EXPECT_FALSE(cold.empty());
        if (threads == 0) {
            sync_set = cold;
        } else if (threads == 1) {
            async_ref = cold;
        } else {
            // Deterministic adoption makes the async timeline (and so
            // the cold-translation set) identical across worker counts.
            EXPECT_EQ(async_ref, cold) << "threads " << threads;
        }
        if (threads > 0) {
            // Async runs keep executing cold code while hot sessions
            // are in flight, so they cold-translate a superset of what
            // the synchronous run does — never less.
            for (const std::string &e : sync_set)
                EXPECT_TRUE(cold.count(e)) << e << " missing at "
                                           << threads << " threads";
        }
    }
}

TEST(Trace, HotLifecycleStableAcrossWorkerCounts)
{
    guest::Workload w = gzipWorkload();
    std::multiset<std::string> ref;
    for (unsigned threads : {1u, 4u}) {
        trace::Tracer t;
        harness::TranslatedRun r = harness::runTranslated(
            w.image, w.params.abi, traceOpts(threads, &t));
        ASSERT_TRUE(r.outcome.exited);
        // Registration is driven by main-thread execution counts, so
        // the set must not depend on how many workers drain the queue.
        std::multiset<std::string> reg = eipSetOf(t, "heat_register");
        EXPECT_FALSE(reg.empty());
        if (threads == 1)
            ref = reg;
        else
            EXPECT_EQ(ref, reg);
        EXPECT_FALSE(eipSetOf(t, "hot_commit").empty());
    }
}

// ----- the zero-overhead contract ---------------------------------------

TEST(Trace, TracingOffCyclesBitIdentical)
{
    guest::Workload w = gzipWorkload();
    for (unsigned threads : {0u, 4u}) {
        trace::Tracer t;
        harness::TranslatedRun traced = harness::runTranslated(
            w.image, w.params.abi, traceOpts(threads, &t));
        harness::TranslatedRun plain = harness::runTranslated(
            w.image, w.params.abi, traceOpts(threads, nullptr));
        ASSERT_TRUE(traced.outcome.exited);
        EXPECT_EQ(traced.outcome.cycles, plain.outcome.cycles)
            << "threads " << threads;
        EXPECT_EQ(traced.outcome.exit_code, plain.outcome.exit_code);
    }
}

// ----- export + attribution ---------------------------------------------

TEST(Trace, ChromeExportValidates)
{
    guest::Workload w = gzipWorkload();
    trace::Tracer t;
    harness::runTranslated(w.image, w.params.abi, traceOpts(4, &t));
    std::string error;
    EXPECT_TRUE(trace::validateChromeTrace(t.chromeJson(), &error))
        << error;
    // A malformed document must be rejected.
    EXPECT_FALSE(trace::validateChromeTrace("{\"traceEvents\": 3}",
                                            &error));
    EXPECT_FALSE(trace::validateChromeTrace("not json", &error));
}

TEST(Trace, AttributionSumsExactlyToTotalCycles)
{
    guest::Workload w = gzipWorkload();
    for (unsigned threads : {0u, 4u}) {
        harness::TranslatedRun r = harness::runTranslated(
            w.image, w.params.abi, traceOpts(threads, nullptr));
        ASSERT_TRUE(r.outcome.exited);
        core::Attribution a = core::attributionOf(*r.runtime);
        // Exact, not approximate: every subtraction in the attribution
        // re-appears as an addition, and all terms are integer-valued
        // doubles far below 2^53.
        EXPECT_EQ(a.total(),
                  r.runtime->machine().stats().totalCycles());
        EXPECT_GE(a.cold_code, 0.0);
        EXPECT_GE(a.hot_code, 0.0);
        EXPECT_GE(a.btgeneric, 0.0);
        EXPECT_GE(a.fault_handling, 0.0);
    }
}

TEST(Trace, RunReportJsonParsesAndMatchesAttribution)
{
    guest::Workload w = gzipWorkload();
    core::Options o = traceOpts(4, nullptr);
    o.collect_block_cycles = true;
    harness::TranslatedRun r =
        harness::runTranslated(w.image, w.params.abi, o);
    std::string text = core::runReportJson(*r.runtime, w.name);
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::Parser::parse(text, &v, &error)) << error;
    const json::Value *attr = v.find("attribution");
    ASSERT_NE(attr, nullptr);
    const json::Value *total = attr->find("total");
    ASSERT_NE(total, nullptr);
    const json::Value *cycles = v.find("cycles");
    ASSERT_NE(cycles, nullptr);
    EXPECT_EQ(total->num, cycles->num);
    const json::Value *blocks = v.find("blocks");
    ASSERT_NE(blocks, nullptr);
    EXPECT_TRUE(blocks->isArray());
    EXPECT_FALSE(blocks->arr.empty());
}

// ----- acceptance scenario ----------------------------------------------

TEST(Trace, GzipHotSessionsLandOnWorkerLanes)
{
    guest::Workload w = gzipWorkload();
    trace::Tracer t;
    harness::TranslatedRun r = harness::runTranslated(
        w.image, w.params.abi, traceOpts(4, &t));
    ASSERT_TRUE(r.outcome.exited);
    std::set<uint32_t> lanes;
    for (const trace::Event &e : t.snapshot())
        if (std::strcmp(e.name, "hot_emit") == 0)
            lanes.insert(e.tid);
    EXPECT_FALSE(lanes.empty());
    for (uint32_t tid : lanes)
        EXPECT_NE(tid, 0u); // sessions run on worker lanes, not lane 0
}

TEST(Trace, BoundedCachePressureEmitsFlushEvents)
{
    guest::WorkloadParams p;
    p.outer_iters = 12;
    p.size = 4000;
    p.code_copies = 12;
    guest::Workload w = guest::buildBigCode("bigcode", p);

    trace::Tracer t;
    core::Options o = traceOpts(0, &t);
    o.code_cache_capacity = 1024;
    o.cache_headroom = 512;
    harness::TranslatedRun r =
        harness::runTranslated(w.image, w.params.abi, o);
    ASSERT_TRUE(r.outcome.exited);
    unsigned flushes = 0;
    for (const trace::Event &e : t.snapshot())
        if (std::strcmp(e.name, "cache_flush") == 0)
            ++flushes;
    EXPECT_GE(flushes, 1u);
    std::string error;
    EXPECT_TRUE(trace::validateChromeTrace(t.chromeJson(), &error))
        << error;
}

TEST(Trace, InjectedFaultsAreTraced)
{
    guest::Workload w = gzipWorkload();
    trace::Tracer t;
    core::Options o = traceOpts(4, &t);
    o.fault.site(FaultSite::HotXlateAbort, 512); // p = 512/1024
    o.fault.seed = 7;
    harness::TranslatedRun r =
        harness::runTranslated(w.image, w.params.abi, o);
    ASSERT_TRUE(r.outcome.exited);
    unsigned fires = 0;
    for (const trace::Event &e : t.snapshot())
        if (std::strcmp(e.name, "fault_fire") == 0) {
            const trace::Arg *site = argOf(e, "site");
            ASSERT_NE(site, nullptr);
            EXPECT_EQ(site->value,
                      static_cast<int64_t>(FaultSite::HotXlateAbort));
            ++fires;
        }
    EXPECT_GE(fires, 1u);
}

} // namespace
} // namespace el
