/**
 * @file
 * Property tests: every encoding the Assembler can emit must decode back
 * to the intended instruction. This pins the assembler and the decoder
 * to each other, which the whole translation pipeline depends on.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "ia32/assembler.hh"
#include "ia32/decoder.hh"
#include "support/random.hh"

namespace el::ia32
{
namespace
{

/** Assemble one instruction via @p emit and decode it back. */
Insn
roundtrip(const std::function<void(Assembler &)> &emit)
{
    Assembler as(0x1000);
    emit(as);
    std::vector<uint8_t> code = as.finish();
    Insn insn;
    EXPECT_TRUE(decode(code.data(), static_cast<unsigned>(code.size()),
                       0x1000, &insn))
        << "undecodable encoding";
    EXPECT_EQ(insn.len, code.size()) << "length mismatch";
    return insn;
}

MemRef
randomMem(Rng &rng)
{
    switch (rng.range(5)) {
      case 0:
        return memb(static_cast<Reg>(rng.range(8)),
                    static_cast<int32_t>(rng.between(-0x80, 0x7f)));
      case 1:
        return memb(static_cast<Reg>(rng.range(8)),
                    static_cast<int32_t>(rng.between(-100000, 100000)));
      case 2: {
        Reg index;
        do {
            index = static_cast<Reg>(rng.range(8));
        } while (index == RegEsp);
        return membi(static_cast<Reg>(rng.range(8)), index,
                     static_cast<uint8_t>(1u << rng.range(4)),
                     static_cast<int32_t>(rng.between(-128, 127)));
      }
      case 3:
        return memabs(static_cast<uint32_t>(rng.range(0xfffff)));
      default: {
        Reg index;
        do {
            index = static_cast<Reg>(rng.range(8));
        } while (index == RegEsp);
        return memi(index, 4,
                    static_cast<int32_t>(rng.range(0x10000)));
      }
    }
}

void
expectMemEq(const MemRef &a, const MemRef &b)
{
    EXPECT_EQ(a.has_base, b.has_base);
    if (a.has_base) {
        EXPECT_EQ(a.base, b.base);
    }
    EXPECT_EQ(a.has_index, b.has_index);
    if (a.has_index) {
        EXPECT_EQ(a.index, b.index);
        EXPECT_EQ(a.scale, b.scale);
    }
    EXPECT_EQ(a.disp, b.disp);
}

TEST(Roundtrip, MovAllForms)
{
    Rng rng(1);
    for (int iter = 0; iter < 200; ++iter) {
        Reg r = static_cast<Reg>(rng.range(8));
        Reg r2 = static_cast<Reg>(rng.range(8));
        uint32_t imm = static_cast<uint32_t>(rng.next());
        MemRef m = randomMem(rng);

        Insn a = roundtrip([&](Assembler &as) { as.movRI(r, imm); });
        EXPECT_EQ(a.op, Op::Mov);
        EXPECT_EQ(a.dst.reg, r);
        EXPECT_EQ(static_cast<uint32_t>(a.src.imm), imm);

        Insn b = roundtrip([&](Assembler &as) { as.movRR(r, r2); });
        EXPECT_EQ(b.op, Op::Mov);
        EXPECT_EQ(b.dst.reg, r);
        EXPECT_EQ(b.src.reg, r2);

        Insn c = roundtrip([&](Assembler &as) { as.movRM(r, m); });
        EXPECT_EQ(c.op, Op::Mov);
        expectMemEq(c.src.mem, m);

        Insn d = roundtrip([&](Assembler &as) { as.movMR(m, r); });
        EXPECT_EQ(d.op, Op::Mov);
        expectMemEq(d.dst.mem, m);

        Insn e = roundtrip([&](Assembler &as) { as.movMI(m, imm); });
        EXPECT_EQ(e.op, Op::Mov);
        EXPECT_EQ(static_cast<uint32_t>(e.src.imm), imm);
    }
}

TEST(Roundtrip, AluAllForms)
{
    Rng rng(2);
    const Op ops[] = {Op::Add, Op::Adc, Op::Sub, Op::Sbb,
                      Op::And, Op::Or, Op::Xor, Op::Cmp};
    for (int iter = 0; iter < 300; ++iter) {
        Op op = ops[rng.range(8)];
        Reg r = static_cast<Reg>(rng.range(8));
        Reg r2 = static_cast<Reg>(rng.range(8));
        int32_t imm = static_cast<int32_t>(rng.next());
        MemRef m = randomMem(rng);

        Insn a = roundtrip([&](Assembler &as) { as.aluRR(op, r, r2); });
        EXPECT_EQ(a.op, op);
        EXPECT_EQ(a.dst.reg, r);
        EXPECT_EQ(a.src.reg, r2);

        Insn b = roundtrip([&](Assembler &as) { as.aluRI(op, r, imm); });
        EXPECT_EQ(b.op, op);
        EXPECT_EQ(static_cast<int32_t>(b.src.imm), imm);

        Insn c = roundtrip([&](Assembler &as) { as.aluRM(op, r, m); });
        EXPECT_EQ(c.op, op);
        expectMemEq(c.src.mem, m);

        Insn d = roundtrip([&](Assembler &as) { as.aluMR(op, m, r); });
        EXPECT_EQ(d.op, op);
        expectMemEq(d.dst.mem, m);

        Insn e = roundtrip([&](Assembler &as) { as.aluMI(op, m, imm); });
        EXPECT_EQ(e.op, op);
        EXPECT_EQ(static_cast<int32_t>(e.src.imm), imm);
    }
}

TEST(Roundtrip, ShiftForms)
{
    Rng rng(3);
    const Op ops[] = {Op::Shl, Op::Shr, Op::Sar, Op::Rol, Op::Ror};
    for (int iter = 0; iter < 100; ++iter) {
        Op op = ops[rng.range(5)];
        Reg r = static_cast<Reg>(rng.range(8));
        uint8_t imm = static_cast<uint8_t>(1 + rng.range(31));

        Insn a = roundtrip([&](Assembler &as) { as.shiftRI(op, r, imm); });
        EXPECT_EQ(a.op, op);
        EXPECT_EQ(a.src.imm, imm);

        Insn b = roundtrip([&](Assembler &as) { as.shiftRCl(op, r); });
        EXPECT_EQ(b.op, op);
        EXPECT_EQ(b.src.kind, OperandKind::Gpr8);
        EXPECT_EQ(b.src.reg, RegCl);
    }
}

TEST(Roundtrip, StackAndUnary)
{
    Rng rng(4);
    for (int iter = 0; iter < 50; ++iter) {
        Reg r = static_cast<Reg>(rng.range(8));
        EXPECT_EQ(roundtrip([&](Assembler &a) { a.pushR(r); }).op,
                  Op::Push);
        EXPECT_EQ(roundtrip([&](Assembler &a) { a.popR(r); }).op, Op::Pop);
        EXPECT_EQ(roundtrip([&](Assembler &a) { a.incR(r); }).op, Op::Inc);
        EXPECT_EQ(roundtrip([&](Assembler &a) { a.decR(r); }).op, Op::Dec);
        EXPECT_EQ(roundtrip([&](Assembler &a) { a.negR(r); }).op, Op::Neg);
        EXPECT_EQ(roundtrip([&](Assembler &a) { a.notR(r); }).op, Op::Not);
        EXPECT_EQ(roundtrip([&](Assembler &a) { a.mulR(r); }).op, Op::Mul1);
        EXPECT_EQ(roundtrip([&](Assembler &a) { a.divR(r); }).op, Op::Div);
        EXPECT_EQ(roundtrip([&](Assembler &a) { a.idivR(r); }).op,
                  Op::Idiv);
    }
}

TEST(Roundtrip, BranchesWithLabels)
{
    for (unsigned c = 0; c < 16; ++c) {
        Assembler as(0x1000);
        Label fwd = as.label();
        as.jcc(static_cast<Cond>(c), fwd);
        as.nop();
        as.nop();
        as.bind(fwd);
        as.ret();
        std::vector<uint8_t> code = as.finish();

        Insn insn;
        ASSERT_TRUE(decode(code.data(),
                           static_cast<unsigned>(code.size()), 0x1000,
                           &insn));
        EXPECT_EQ(insn.op, Op::Jcc);
        EXPECT_EQ(insn.cond, static_cast<Cond>(c));
        EXPECT_EQ(insn.target(), 0x1000u + 6 + 2);
    }
}

TEST(Roundtrip, BackwardLabel)
{
    Assembler as(0x2000);
    Label top = as.label();
    as.bind(top);
    as.decR(RegEcx);
    as.jcc(Cond::NE, top);
    std::vector<uint8_t> code = as.finish();

    Insn dec_insn, jcc_insn;
    ASSERT_TRUE(decode(code.data(), static_cast<unsigned>(code.size()),
                       0x2000, &dec_insn));
    ASSERT_TRUE(decode(code.data() + dec_insn.len,
                       static_cast<unsigned>(code.size() - dec_insn.len),
                       0x2000 + dec_insn.len, &jcc_insn));
    EXPECT_EQ(jcc_insn.target(), 0x2000u);
}

TEST(Roundtrip, CallJmpAbs)
{
    Assembler as(0x1000);
    as.callAbs(0x4000);
    as.jmpAbs(0x1000);
    std::vector<uint8_t> code = as.finish();
    Insn c, j;
    ASSERT_TRUE(decode(code.data(), 5, 0x1000, &c));
    EXPECT_EQ(c.op, Op::Call);
    EXPECT_EQ(c.target(), 0x4000u);
    ASSERT_TRUE(decode(code.data() + 5, 5, 0x1005, &j));
    EXPECT_EQ(j.op, Op::Jmp);
    EXPECT_EQ(j.target(), 0x1000u);
}

TEST(Roundtrip, X87Forms)
{
    Rng rng(5);
    const Op arith[] = {Op::Fadd, Op::Fmul, Op::Fsub, Op::Fsubr,
                        Op::Fdiv, Op::Fdivr};
    for (int iter = 0; iter < 100; ++iter) {
        MemRef m = randomMem(rng);
        uint8_t sti = static_cast<uint8_t>(rng.range(8));
        Op op = arith[rng.range(6)];

        Insn a = roundtrip([&](Assembler &as) { as.fldM32(m); });
        EXPECT_EQ(a.op, Op::Fld);
        EXPECT_EQ(a.op_size, 4u);

        Insn b = roundtrip([&](Assembler &as) { as.fstM64(m, true); });
        EXPECT_EQ(b.op, Op::Fst);
        EXPECT_TRUE(b.fp_pop);
        EXPECT_EQ(b.op_size, 8u);

        Insn c = roundtrip([&](Assembler &as) { as.farithSt0Sti(op, sti); });
        EXPECT_EQ(c.op, op);
        EXPECT_EQ(c.dst.reg, 0);
        EXPECT_EQ(c.src.reg, sti);

        Insn d = roundtrip(
            [&](Assembler &as) { as.farithStiSt0(op, sti, true); });
        EXPECT_EQ(d.op, op);
        EXPECT_TRUE(d.fp_pop);
        EXPECT_EQ(d.dst.reg, sti);

        Insn e = roundtrip([&](Assembler &as) { as.farithM32(op, m); });
        EXPECT_EQ(e.op, op);
        expectMemEq(e.src.mem, m);

        Insn f = roundtrip([&](Assembler &as) { as.fxch(sti); });
        EXPECT_EQ(f.op, Op::Fxch);
        EXPECT_EQ(f.dst.reg, sti);
    }
}

TEST(Roundtrip, MmxForms)
{
    Rng rng(6);
    const Op ops[] = {Op::Paddb, Op::Paddw, Op::Paddd, Op::Psubb,
                      Op::Psubw, Op::Psubd, Op::Pand, Op::Por,
                      Op::Pxor, Op::Pmullw};
    for (int iter = 0; iter < 100; ++iter) {
        uint8_t d = static_cast<uint8_t>(rng.range(8));
        uint8_t s = static_cast<uint8_t>(rng.range(8));
        Reg r = static_cast<Reg>(rng.range(8));
        MemRef m = randomMem(rng);
        Op op = ops[rng.range(10)];

        Insn a = roundtrip([&](Assembler &as) { as.movdMmR(d, r); });
        EXPECT_EQ(a.op, Op::Movd);
        EXPECT_EQ(a.dst.reg, d);

        Insn b = roundtrip([&](Assembler &as) { as.pArithMmMm(op, d, s); });
        EXPECT_EQ(b.op, op);
        EXPECT_EQ(b.dst.reg, d);
        EXPECT_EQ(b.src.reg, s);

        Insn c = roundtrip([&](Assembler &as) { as.pArithMmM(op, d, m); });
        EXPECT_EQ(c.op, op);
        expectMemEq(c.src.mem, m);

        Insn e = roundtrip([&](Assembler &as) { as.movqMmM(d, m); });
        EXPECT_EQ(e.op, Op::MovqMm);
    }
}

TEST(Roundtrip, SseForms)
{
    Rng rng(7);
    const Op ops[] = {Op::Addps, Op::Subps, Op::Mulps, Op::Divps,
                      Op::Addss, Op::Mulss, Op::Addpd, Op::Mulpd,
                      Op::Xorps, Op::Andps, Op::PadddX};
    for (int iter = 0; iter < 100; ++iter) {
        uint8_t d = static_cast<uint8_t>(rng.range(8));
        uint8_t s = static_cast<uint8_t>(rng.range(8));
        MemRef m = randomMem(rng);
        Op op = ops[rng.range(11)];

        Insn a = roundtrip([&](Assembler &as) { as.sseArithXX(op, d, s); });
        EXPECT_EQ(a.op, op);
        EXPECT_EQ(a.dst.reg, d);
        EXPECT_EQ(a.src.reg, s);

        Insn b = roundtrip([&](Assembler &as) { as.sseArithXM(op, d, m); });
        EXPECT_EQ(b.op, op);
        expectMemEq(b.src.mem, m);

        Insn c = roundtrip([&](Assembler &as) { as.movapsXM(d, m); });
        EXPECT_EQ(c.op, Op::Movaps);

        Insn e = roundtrip([&](Assembler &as) { as.movssXM(d, m); });
        EXPECT_EQ(e.op, Op::Movss);

        Insn f = roundtrip([&](Assembler &as) { as.movdqaMX(m, d); });
        EXPECT_EQ(f.op, Op::Movdqa);
        expectMemEq(f.dst.mem, m);
    }
}

TEST(Roundtrip, MovPartialSizes)
{
    Rng rng(8);
    for (int iter = 0; iter < 100; ++iter) {
        Reg8 r8 = static_cast<Reg8>(rng.range(8));
        Reg r = static_cast<Reg>(rng.range(8));
        MemRef m = randomMem(rng);

        Insn a = roundtrip(
            [&](Assembler &as) { as.movRI8(r8, 0x5a); });
        EXPECT_EQ(a.op, Op::Mov);
        EXPECT_EQ(a.op_size, 1u);
        EXPECT_EQ(a.dst.reg, r8);

        Insn b = roundtrip([&](Assembler &as) { as.movRM8(r8, m); });
        EXPECT_EQ(b.op_size, 1u);

        Insn c = roundtrip([&](Assembler &as) { as.movRM16(r, m); });
        EXPECT_EQ(c.op_size, 2u);

        Insn d = roundtrip([&](Assembler &as) { as.movzxRM8(r, m); });
        EXPECT_EQ(d.op, Op::Movzx);
        EXPECT_EQ(d.op_size, 1u);

        Insn e = roundtrip([&](Assembler &as) { as.movsxRM16(r, m); });
        EXPECT_EQ(e.op, Op::Movsx);
        EXPECT_EQ(e.op_size, 2u);
    }
}

} // namespace
} // namespace el::ia32
