/**
 * @file
 * The persistent translation-artifact store.
 *
 * Hot traces are the expensive half of the two-phase translator (~20x
 * cold translation per instruction), and nothing about them depends on
 * the run that produced them: a published artifact is a pure function
 * of the guest image bytes and the emission-relevant Options. This
 * store serializes published hot artifacts — staging code, recovery
 * maps, guard expectations, and SMC-guard windows — keyed by a
 * guest-image fingerprint (image checksum + entry + translator/options
 * version), into an on-disk file with a versioned, CRC-protected
 * record format, so a second run of the same image starts warm
 * (`el_run --cache-dir=<d>`) and `el_aot` can pre-translate and seal a
 * whole image offline.
 *
 * Safety model:
 *  - The fingerprint gates the whole file: a changed image, entry
 *    point, emission toggle, or format version simply misses.
 *  - Every record carries its own magic + CRC; a corrupt or truncated
 *    record is dropped (counted, never crashes, never loads silently
 *    wrong code) and execution falls back to cold translation.
 *  - Decoded records are semantically validated (enum ranges, cache
 *    bounds, stub indices) before they become visible.
 *  - Loaded artifacts re-enter through the translator's normal commit
 *    path, so generation checks, sentinel quarantine, and the baked
 *    SMC guards apply to them exactly as to freshly translated code;
 *    additionally each record's SMC-guard windows are re-validated
 *    against live guest memory at adoption time, so a guest that
 *    patched its code never resurrects a stale trace.
 *
 * Threading: the store is main-thread-only, like the translator's
 * block maps. Pipeline workers never see it; recording happens at the
 * (main-thread) commit point.
 */

#ifndef EL_PERSIST_STORE_HH
#define EL_PERSIST_STORE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/blockinfo.hh"
#include "ipf/insn.hh"
#include "support/stats.hh"

namespace el::guest
{
struct Image;
} // namespace el::guest

namespace el::core
{
struct Options;
} // namespace el::core

namespace el::persist
{

/** On-disk format version; bump on any layout change. */
constexpr uint32_t format_version = 1;

/** Identity of a store: which image + translator configuration. */
struct Fingerprint
{
    uint64_t image_hash = 0; //!< Checksum of all sections + entry.
    uint64_t opts_hash = 0;  //!< Emission-relevant options + version.
    uint32_t entry = 0;      //!< Guest entry point (redundant, human-
                             //!< checkable in the filename).

    bool
    operator==(const Fingerprint &o) const
    {
        return image_hash == o.image_hash && opts_hash == o.opts_hash &&
               entry == o.entry;
    }

    /** Filename-safe rendering ("\<image\>-\<opts\>-\<entry\>"). */
    std::string hex() const;
};

/**
 * Fingerprint of (image, options). Only emission-relevant options are
 * hashed — feature toggles and code-shape limits that change what a
 * hot session emits. Thresholds, thread counts, simulated costs, and
 * capacities affect *when* artifacts are built, never their contents,
 * so an `el_aot`-built store (aggressive thresholds) is valid for a
 * default `el_run`.
 */
Fingerprint fingerprintOf(const guest::Image &image,
                          const core::Options &options);

/**
 * One persisted hot artifact: everything the translator's commit path
 * needs to republish the trace into a fresh runtime. The proto
 * BlockInfo and the stub indices are staging-relative, exactly as a
 * worker session hands them over.
 */
struct HotRecord
{
    uint32_t entry_eip = 0;

    // Entry SpecContext, stored as raw fields so the store does not
    // depend on the emitter headers.
    uint8_t spec_tos = 0;
    uint8_t spec_tag = 0;
    uint8_t spec_mmx_domain = 0;
    uint32_t spec_xmm_format = 0;

    core::BlockInfo proto;          //!< Staging-relative metadata.
    std::vector<ipf::Instr> code;   //!< Staged instructions [0, n).
    std::vector<uint32_t> covered_eips;
    /** (guest address, expected bytes) per constituent block on a
     *  writable page; re-checked against live memory at adoption. */
    std::vector<std::pair<uint32_t, uint64_t>> smc_guards;
};

/** The in-memory store: records keyed by entry EIP, plus file I/O. */
class ArtifactStore
{
  public:
    ArtifactStore() = default;
    explicit ArtifactStore(const Fingerprint &fp) : fp_(fp) {}

    ArtifactStore(const ArtifactStore &) = delete;
    ArtifactStore &operator=(const ArtifactStore &) = delete;

    ~ArtifactStore() { closeJournal(); }

    /** Set the identity (drops all records and counters' context). */
    void
    resetFingerprint(const Fingerprint &fp)
    {
        closeJournal();
        fp_ = fp;
        records_.clear();
        missed_.clear();
        sealed_ = false;
    }

    const Fingerprint &fingerprint() const { return fp_; }

    // ----- write side (translator commit path) ----------------------

    /**
     * Insert @p rec, replacing any existing record with the same
     * (entry_eip, spec). No-op on a sealed store (an `el_aot`-sealed
     * store is validated content; runs must not dilute it).
     */
    void record(HotRecord rec);

    /**
     * Drop every record at @p eip. Called when the sentinel
     * quarantines a hot block: convicted code must never be shipped,
     * so it leaves the store before the next save.
     */
    void dropAt(uint32_t eip);

    // ----- read side (dispatch-time adoption) -----------------------

    /** Any live record at @p eip? (The cheap pre-probe.) */
    bool
    hasRecordsAt(uint32_t eip) const
    {
        auto it = records_.find(eip);
        return it != records_.end() && !it->second.empty();
    }

    /** All live records at @p eip (pointers valid until mutation). */
    std::vector<const HotRecord *> recordsAt(uint32_t eip) const;

    /** Count a probe that found nothing usable (once per distinct
     *  EIP, so the counter reads as "blocks we could not warm-start"
     *  rather than "dispatches"). */
    void
    noteMiss(uint32_t eip)
    {
        if (missed_.insert(eip).second)
            stats.add("persist.misses");
    }

    // ----- lifecycle ------------------------------------------------

    size_t recordCount() const;

    /** Mark as validated/complete (`el_aot`); freezes record(). */
    void seal() { sealed_ = true; }
    bool sealed() const { return sealed_; }

    /** The store file path for this fingerprint inside @p dir. */
    std::string pathIn(const std::string &dir) const;

    /**
     * Load the store file for this fingerprint from @p dir. Returns
     * true when at least one record was loaded. Missing, truncated,
     * corrupt, or version-mismatched files are tolerated: bad records
     * are dropped (counted in persist.rejected_*) and a bad header
     * rejects the file — the run then simply starts cold.
     */
    bool load(const std::string &dir);

    /** Write all live records to @p dir (created if needed). */
    bool save(const std::string &dir);

    /** load()/save() against an explicit file path. */
    bool loadFile(const std::string &path);
    bool saveFile(const std::string &path);

    // ----- crash consistency: the append-only hot-artifact journal --

    /** The journal file path for this fingerprint inside @p dir. */
    std::string journalPathIn(const std::string &dir) const;

    /**
     * Start journaling this run's record()/dropAt() mutations into
     * `<fp>.eljournal` in @p dir (truncating any previous journal —
     * the caller compacts first). Mutations are framed into a pending
     * buffer; flushJournal() makes them durable. The runtime flushes
     * at adoption boundaries, so a kill -9 loses at most the
     * artifacts since the last boundary instead of the whole run.
     * No-op (false) on a sealed store: sealed stores are immutable
     * validated content and never journal.
     */
    bool openJournal(const std::string &dir);

    /** Append + fsync every pending frame; true when durable (or when
     *  nothing was pending / no journal is open). */
    bool flushJournal();

    /** Flush pending frames and close the journal fd. */
    void closeJournal();

    bool journalOpen() const { return journal_fd_ >= 0; }

    /** Frames recorded since the last flush (cheap dirtiness probe
     *  for the runtime's adoption-boundary hook). */
    bool journalDirty() const { return !journal_pending_.empty(); }

    /** Records applied by the last load()'s journal replay. */
    uint64_t journalReplayed() const { return journal_replayed_; }

    /**
     * Fold the journal into the .elstore: durable save() of the full
     * record set, then unlink the journal. Safe against a crash at
     * any point — replay is idempotent (replace-by-(eip, spec)), so
     * dying between the save and the unlink only means the next start
     * replays records the store already holds. Closes an open journal
     * first; reopen with openJournal() to keep recording.
     */
    bool compact(const std::string &dir);

    /**
     * persist.* counters: hits, misses, loaded_blocks, bytes_read,
     * bytes_written, records saved/loaded, and the rejection tallies
     * of the hardened loader. Merged into the run report.
     */
    StatGroup stats;

  private:
    void insertLoaded(HotRecord &&rec);

    /** Replay one journal file over the in-memory record set; returns
     *  the number of frames applied (adds + drops). Fail-soft: a torn
     *  tail frame is counted (persist.rejected_truncated) and every
     *  intact frame before it still applies. */
    size_t replayJournal(const std::string &path);

    /** Frame one mutation into the pending journal buffer. */
    void journalFrame(uint8_t kind, const std::vector<uint8_t> &payload);

    Fingerprint fp_;
    bool sealed_ = false;
    std::map<uint32_t, std::vector<std::unique_ptr<HotRecord>>> records_;
    std::set<uint32_t> missed_; //!< Distinct-EIP miss dedup.

    int journal_fd_ = -1;                  //!< POSIX fd; -1 = closed.
    std::string journal_path_;             //!< Path of the open journal.
    std::vector<uint8_t> journal_pending_; //!< Frames since last flush.
    uint64_t journal_replayed_ = 0;        //!< Applied on last load().
};

} // namespace el::persist

#endif // EL_PERSIST_STORE_HH
