/**
 * @file
 * End-to-end tests for the divergence sentinel's shadow-execute mode
 * (`--selfcheck`): a seeded miscompile sweep proving every consequential
 * corruption is detected, quarantined and repaired back to the
 * interpreter's answer; determinism of the sampling counters across
 * repeat runs and pipeline thread counts; and the zero-perturbation
 * guarantee — attaching the sentinel must not move a single simulated
 * cycle unless something actually diverges.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "guest/workloads.hh"
#include "harness/exec.hh"
#include "support/faultinject.hh"
#include "support/sentinel.hh"

namespace el
{
namespace
{

using guest::Workload;

/** Small integer kernel: enough blocks to re-heat, quick to replay. */
Workload
victim()
{
    guest::WorkloadParams p;
    p.outer_iters = 6;
    p.size = 150;
    return guest::buildMatrix("selfcheck_victim", p);
}

core::Options
baseOpts(unsigned threads = 0, bool deterministic = false)
{
    core::Options o;
    o.heat_threshold = 16;
    o.hot_batch = 1;
    o.translation_threads = threads;
    o.deterministic_adoption = deterministic;
    return o;
}

/** True when two outcomes agree on everything the guest can observe. */
bool
sameGuestOutcome(const harness::Outcome &a, const harness::Outcome &b)
{
    return a.exited == b.exited && a.faulted == b.faulted &&
           a.internal_error == b.internal_error &&
           a.exit_code == b.exit_code && a.console == b.console &&
           a.final_state.equalsArch(b.final_state);
}

bool
ledgerHasAdverseRow(const sentinel::Sentinel &s)
{
    for (const auto &[eip, rec] : s.ledger())
        if (rec.state != sentinel::Health::Healthy || rec.pinned)
            return true;
    return false;
}

// ----- the miscompile sweep ---------------------------------------------
//
// For each seed, corrupt emitted translations with FaultSite::Miscompile
// and run three ways: the interpreter oracle, the translator unguarded,
// and the translator with --selfcheck=1. A seed is *consequential* when
// the unguarded run disagrees with the oracle — those are exactly the
// corruptions a user would care about, and the sentinel must detect and
// contain 100% of them. Corruptions that happen to be semantically
// neutral (e.g. a patched byte in dead data flow) produce no divergence
// and need none.
//
// One caveat the region protocol implies: a corruption that turns a
// bounded loop into an effectively unbounded one never reaches a
// dispatch boundary, so there is no region end to arbitrate and both
// translated runs exhaust the cycle budget. Those seeds (none with the
// pinned workload below, but injection patterns shift when translation
// changes) are reported as internal errors, not silent wrong answers,
// and are excluded from the bit-identical clause.

class MiscompileSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(MiscompileSweep, SelfcheckDetectsAndRepairs)
{
    const uint64_t seed = GetParam();
    Workload w = victim();
    harness::Outcome ref = harness::runInterpreter(w.image, w.params.abi);
    ASSERT_TRUE(ref.exited);

    core::Options opts = baseOpts();
    opts.fault.seed = seed;
    opts.fault.site(FaultSite::Miscompile, 128);

    harness::TranslatedRun unguarded =
        harness::runTranslated(w.image, w.params.abi, opts);
    if (unguarded.outcome.internal_error) {
        // Corruption produced a non-terminating region (see note above):
        // loudly reported, nothing silent to arbitrate.
        GTEST_SKIP() << "seed " << seed << " corrupts into cycle limit: "
                     << unguarded.outcome.internal_reason;
    }
    const bool consequential = !sameGuestOutcome(ref, unguarded.outcome);

    sentinel::Config cfg;
    cfg.selfcheck_rate = 1;
    sentinel::Sentinel sent(cfg);
    core::Options guarded_opts = opts;
    guarded_opts.sentinel = &sent;
    harness::TranslatedRun guarded =
        harness::runTranslated(w.image, w.params.abi, guarded_opts);

    // The guarded run must complete with the oracle's exact answer —
    // whether or not this seed's corruption was consequential.
    ASSERT_FALSE(guarded.outcome.internal_error)
        << "seed " << seed << ": " << guarded.outcome.internal_reason;
    EXPECT_TRUE(guarded.outcome.exited) << "seed " << seed;
    EXPECT_EQ(ref.exit_code, guarded.outcome.exit_code)
        << "seed " << seed;
    EXPECT_EQ(ref.console, guarded.outcome.console) << "seed " << seed;
    std::string why;
    EXPECT_TRUE(
        ref.final_state.equalsArch(guarded.outcome.final_state, &why))
        << "seed " << seed << ": " << why;

    if (consequential) {
        // Detection: the divergence was noticed, attributed and logged...
        EXPECT_GT(sent.totalDivergences(), 0u) << "seed " << seed;
        EXPECT_GE(sent.divergences().size(), 1u) << "seed " << seed;
        // ...and the offending artifacts were quarantined.
        EXPECT_TRUE(ledgerHasAdverseRow(sent)) << "seed " << seed;
        EXPECT_GE(guarded.runtime->stats().get("sentinel.divergence"),
                  1u)
            << "seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiscompileSweep,
                         ::testing::Range<uint64_t>(1, 19));

TEST(Selfcheck, SweepHasTeeth)
{
    // Guard against the sweep silently degenerating: across the 18
    // seeds, a healthy fraction of corruptions must actually change the
    // unguarded answer (otherwise the detection clause above is vacuous).
    Workload w = victim();
    harness::Outcome ref = harness::runInterpreter(w.image, w.params.abi);
    int consequential = 0;
    for (uint64_t seed = 1; seed < 19; ++seed) {
        core::Options opts = baseOpts();
        opts.fault.seed = seed;
        opts.fault.site(FaultSite::Miscompile, 128);
        harness::TranslatedRun run =
            harness::runTranslated(w.image, w.params.abi, opts);
        consequential += !sameGuestOutcome(ref, run.outcome);
    }
    EXPECT_GE(consequential, 4) << "miscompile injection lost its bite";
}

TEST(Selfcheck, WorksWithPipelineWorkers)
{
    Workload w = victim();
    harness::Outcome ref = harness::runInterpreter(w.image, w.params.abi);
    for (uint64_t seed : {3u, 7u, 11u}) {
        core::Options opts = baseOpts(4, true);
        opts.fault.seed = seed;
        opts.fault.site(FaultSite::Miscompile, 128);
        sentinel::Config cfg;
        cfg.selfcheck_rate = 1;
        sentinel::Sentinel sent(cfg);
        opts.sentinel = &sent;
        harness::TranslatedRun guarded =
            harness::runTranslated(w.image, w.params.abi, opts);
        ASSERT_FALSE(guarded.outcome.internal_error)
            << "seed " << seed << ": " << guarded.outcome.internal_reason;
        EXPECT_EQ(ref.exit_code, guarded.outcome.exit_code)
            << "seed " << seed;
        std::string why;
        EXPECT_TRUE(ref.final_state.equalsArch(
            guarded.outcome.final_state, &why))
            << "seed " << seed << ": " << why;
    }
}

// ----- clean runs --------------------------------------------------------

TEST(Selfcheck, CleanRunsNeverDiverge)
{
    // No injection: sampling the boundary, syscall, fault-delivery and
    // SMC paths across the adversarial personalities must verify clean.
    std::vector<Workload> suite = guest::adversarialSuite();
    suite.push_back(victim());
    for (const Workload &w : suite) {
        sentinel::Config cfg;
        cfg.selfcheck_rate = 4;
        sentinel::Sentinel sent(cfg);
        core::Options opts = baseOpts();
        opts.sentinel = &sent;
        harness::TranslatedRun run =
            harness::runTranslated(w.image, w.params.abi, opts);
        ASSERT_FALSE(run.outcome.internal_error)
            << w.name << ": " << run.outcome.internal_reason;
        EXPECT_TRUE(run.outcome.exited) << w.name;
        EXPECT_EQ(sent.totalDivergences(), 0u) << w.name;
        EXPECT_GE(run.runtime->stats().get("sentinel.checked"), 1u)
            << w.name;
        EXPECT_GE(run.runtime->stats().get("sentinel.passed"), 1u)
            << w.name;
        EXPECT_EQ(run.runtime->stats().get("sentinel.divergence"), 0u)
            << w.name;
    }
}

// ----- zero perturbation when attached-but-clean ------------------------

TEST(Selfcheck, AttachedSentinelCostsZeroCycles)
{
    // Detached, attached-at-rate-0 and attached-and-sampling runs must
    // be cycle-identical: checkpoints, journaling and replays charge
    // nothing to the simulated machine unless a divergence rewrites
    // history.
    Workload w = victim();

    harness::TranslatedRun detached =
        harness::runTranslated(w.image, w.params.abi, baseOpts());

    sentinel::Sentinel idle; // rate 0: ledger only
    core::Options idle_opts = baseOpts();
    idle_opts.sentinel = &idle;
    harness::TranslatedRun rate0 =
        harness::runTranslated(w.image, w.params.abi, idle_opts);

    sentinel::Config cfg;
    cfg.selfcheck_rate = 2;
    sentinel::Sentinel active(cfg);
    core::Options active_opts = baseOpts();
    active_opts.sentinel = &active;
    harness::TranslatedRun sampling =
        harness::runTranslated(w.image, w.params.abi, active_opts);

    ASSERT_TRUE(detached.outcome.exited);
    EXPECT_DOUBLE_EQ(detached.outcome.cycles, rate0.outcome.cycles);
    EXPECT_DOUBLE_EQ(detached.outcome.cycles, sampling.outcome.cycles);
    EXPECT_EQ(detached.outcome.exit_code, rate0.outcome.exit_code);
    EXPECT_EQ(detached.outcome.exit_code, sampling.outcome.exit_code);
    EXPECT_EQ(detached.outcome.guest_insns, rate0.outcome.guest_insns);
    EXPECT_EQ(detached.outcome.guest_insns,
              sampling.outcome.guest_insns);
    EXPECT_EQ(active.totalDivergences(), 0u);
    EXPECT_GE(sampling.runtime->stats().get("sentinel.passed"), 1u);
}

// ----- determinism -------------------------------------------------------

struct SentinelCounters
{
    uint64_t regions = 0;
    uint64_t checked = 0;
    uint64_t passed = 0;
    uint64_t divergences = 0;
    double cycles = 0;

    bool
    operator==(const SentinelCounters &o) const
    {
        return regions == o.regions && checked == o.checked &&
               passed == o.passed && divergences == o.divergences;
    }
};

SentinelCounters
countersFor(const Workload &w, unsigned threads, bool deterministic,
            bool hot_phase = true, harness::Outcome *out = nullptr)
{
    sentinel::Config cfg;
    cfg.selfcheck_rate = 4;
    sentinel::Sentinel sent(cfg);
    core::Options opts = baseOpts(threads, deterministic);
    opts.enable_hot_phase = hot_phase;
    opts.sentinel = &sent;
    harness::TranslatedRun run =
        harness::runTranslated(w.image, w.params.abi, opts);
    EXPECT_TRUE(run.outcome.exited);
    if (out)
        *out = run.outcome;
    SentinelCounters c;
    c.regions = sent.regionsSeen();
    c.checked = run.runtime->stats().get("sentinel.checked");
    c.passed = run.runtime->stats().get("sentinel.passed");
    c.divergences = sent.totalDivergences();
    c.cycles = run.outcome.cycles;
    return c;
}

TEST(SelfcheckDeterminism, RepeatRunsAreBitIdentical)
{
    // Same image, same config (4 workers, deterministic adoption): the
    // sampling decisions are a pure function of the region counter, so
    // two runs agree on every sentinel counter and on cycles.
    Workload w = victim();
    SentinelCounters a = countersFor(w, 4, true);
    SentinelCounters b = countersFor(w, 4, true);
    EXPECT_TRUE(a == b);
    EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
    EXPECT_GE(a.checked, 1u);
    EXPECT_EQ(a.divergences, 0u);
}

TEST(SelfcheckDeterminism, CountersBitIdenticalAcrossThreadCounts)
{
    // The sentinel itself must introduce no thread-count dependence:
    // its sampling keys off the dispatch-region counter, never wall
    // clock or worker identity. With the hot phase off (worker count
    // then has no effect on the region stream at all), every sentinel
    // counter is bit-identical for 0, 1 and 4 workers.
    Workload w = victim();
    SentinelCounters sync = countersFor(w, 0, false, false);
    SentinelCounters one = countersFor(w, 1, true, false);
    SentinelCounters four = countersFor(w, 4, true, false);
    EXPECT_TRUE(sync == one && one == four)
        << "regions " << sync.regions << "/" << one.regions << "/"
        << four.regions << " checked " << sync.checked << "/"
        << one.checked << "/" << four.checked;
    EXPECT_DOUBLE_EQ(sync.cycles, one.cycles);
    EXPECT_DOUBLE_EQ(sync.cycles, four.cycles);
    EXPECT_GE(sync.checked, 1u);
    EXPECT_EQ(sync.divergences, 0u);
}

TEST(SelfcheckDeterminism, ArchInvarianceSurvivesAttachment)
{
    // With the hot phase on, worker count moves *when* traces are
    // adopted — region streams legitimately differ across thread
    // counts (the same is true without a sentinel; see
    // AsyncDeterminism). What must hold: the attached sentinel stays
    // clean and preserves the architectural thread-count invariance,
    // and each thread count remains individually replayable.
    Workload w = victim();
    harness::Outcome ref;
    SentinelCounters sync = countersFor(w, 0, false, true, &ref);
    EXPECT_EQ(sync.divergences, 0u);
    for (unsigned threads : {1u, 4u}) {
        harness::Outcome got;
        SentinelCounters a = countersFor(w, threads, true, true, &got);
        SentinelCounters b = countersFor(w, threads, true, true);
        EXPECT_TRUE(a == b) << threads << " workers not replayable";
        EXPECT_DOUBLE_EQ(a.cycles, b.cycles) << threads << " workers";
        EXPECT_EQ(a.divergences, 0u) << threads << " workers";
        EXPECT_EQ(ref.exit_code, got.exit_code) << threads << " workers";
        std::string why;
        EXPECT_TRUE(ref.final_state.equalsArch(got.final_state, &why))
            << threads << " workers: " << why;
    }
}

} // namespace
} // namespace el
