/**
 * @file
 * Case study: crash recovery cost — interrupted-then-resumed vs a cold
 * restart.
 *
 * Three legs over the same workload:
 *  - cold:        the uninterrupted reference run (also what a restart
 *                 without any recovery machinery would cost),
 *  - interrupted: the same run cut off mid-flight by a cycle budget,
 *                 with the hot-artifact journal and the checkpointer
 *                 attached — what survives is exactly what a kill -9
 *                 would leave on disk (journal frames flushed at
 *                 adoption boundaries, the last durable checkpoint),
 *  - resumed:     a relaunch over that wreckage: journal replay warms
 *                 the store, the checkpoint restores guest state, and
 *                 the run completes.
 *
 * The headline scalars: the resumed leg must reproduce the cold leg's
 * guest results bit-for-bit, reuse journaled hot artifacts instead of
 * re-translating them, and finish cheaper than a cold restart (it
 * skips the simulated cycles up to the checkpoint and the translation
 * work for every replayed artifact).
 */

#include <cstdio>
#include <filesystem>
#include <string>

#include "bench/bench_common.hh"
#include "core/checkpoint.hh"
#include "persist/store.hh"

using namespace el;

namespace
{

namespace fs = std::filesystem;

core::Options
baseOpts()
{
    core::Options o;
    o.heat_threshold = 16;
    o.hot_batch = 1;
    return o;
}

core::GuestResult
guestOf(const harness::TranslatedRun &run)
{
    return core::guestResultOf(
        run.outcome.final_state, run.outcome.console, run.outcome.exited,
        run.outcome.exit_code, run.outcome.guest_insns);
}

bool
sameGuest(const core::GuestResult &a, const core::GuestResult &b)
{
    return a.exited == b.exited && a.exit_code == b.exit_code &&
           a.state_hash == b.state_hash &&
           a.console_hash == b.console_hash;
}

} // namespace

int
main(int argc, char **argv)
{
    if (int rc = bench::handleArgs(argc, argv); rc >= 0)
        return rc;
    bench::banner("Crash recovery: resume vs cold restart",
                  "the crash-consistency subsystem (no paper figure)");

    fs::path dir = fs::temp_directory_path() / "el_bench_crash_recovery";
    fs::remove_all(dir);
    fs::create_directories(dir);

    bench::Report rep("case_crash_recovery");
    Table t({"leg", "cycles", "vs cold", "reuse", "replayed",
             "bit-exact"});
    int rc = 0;

    const guest::Workload *wl = nullptr;
    std::vector<guest::Workload> suite = guest::specIntSuite();
    for (const guest::Workload &w : suite)
        if (w.name == "gzip")
            wl = &w;
    if (!wl) {
        std::fprintf(stderr, "gzip workload missing\n");
        return 1;
    }

    core::Options base = baseOpts();
    persist::Fingerprint fp = persist::fingerprintOf(wl->image, base);

    // ----- cold: the uninterrupted reference ------------------------
    harness::TranslatedRun cold =
        harness::runTranslated(wl->image, wl->params.abi, baseOpts());
    core::GuestResult want = guestOf(cold);
    double cold_cycles = cold.outcome.cycles;
    rep.row("cold").metric("cycles", cold_cycles).attribution(
        *cold.runtime);
    t.addRow({"cold", strfmt("%.0f", cold_cycles), "1.00", "-", "-",
              "yes"});

    // ----- interrupted: die halfway with journal + checkpoints on ---
    double interrupted_cycles = 0;
    {
        persist::ArtifactStore store(fp);
        store.openJournal(dir.string());
        core::CheckpointConfig cfg;
        cfg.dir = dir.string();
        cfg.period_cycles = 200000;
        cfg.fp = fp;
        core::Checkpointer ck(cfg);
        core::Options o = baseOpts();
        o.persist = &store;
        o.checkpointer = &ck;
        o.max_run_cycles = static_cast<uint64_t>(cold_cycles / 2);
        harness::TranslatedRun cut =
            harness::runTranslated(wl->image, wl->params.abi, o);
        interrupted_cycles = cut.outcome.cycles;
        rep.row("interrupted")
            .metric("cycles", interrupted_cycles)
            .metric("checkpoints", static_cast<double>(ck.captures()));
        t.addRow({"interrupted", strfmt("%.0f", interrupted_cycles),
                  strfmt("%.2f", interrupted_cycles / cold_cycles), "-",
                  "-", "-"});
        // No save(), no compact(): the store object dies here exactly
        // as a killed process would, leaving journal + checkpoint.
    }

    // ----- resumed: relaunch over the wreckage ----------------------
    persist::ArtifactStore store(fp);
    bool warm = store.load(dir.string()); // journal replay only
    core::CheckpointImage img;
    std::string err;
    bool have_ckpt =
        core::Checkpointer::load(dir.string(), fp, &img, &err);
    if (!have_ckpt)
        std::fprintf(stderr, "no usable checkpoint (%s): resuming cold\n",
                     err.c_str());
    core::Options o = baseOpts();
    o.persist = &store;
    harness::TranslatedRun resumed = harness::runTranslated(
        wl->image, wl->params.abi, o, have_ckpt ? &img : nullptr);
    double resumed_cycles = resumed.outcome.cycles;
    double hits =
        static_cast<double>(store.stats.get("persist.hits"));
    double local = static_cast<double>(
        resumed.runtime->translator().stats.get("xlate.hot_blocks"));
    double reuse = hits + local > 0 ? hits / (hits + local) : 0;
    double replayed =
        static_cast<double>(store.stats.get("persist.journal_replayed"));
    bool exact = sameGuest(want, guestOf(resumed));
    double ratio = resumed_cycles / cold_cycles;

    rep.row("resumed")
        .metric("cycles", resumed_cycles)
        .metric("reuse", reuse)
        .metric("journal_replayed", replayed)
        .attribution(*resumed.runtime);
    t.addRow({"resumed", strfmt("%.0f", resumed_cycles),
              strfmt("%.2f", ratio), strfmt("%.0f%%", 100.0 * reuse),
              strfmt("%.0f", replayed), exact ? "yes" : "NO"});

    rep.scalar("resume_vs_cold", ratio, 0.15);
    rep.scalar("recovery_reuse", reuse, 0.25);
    rep.scalar("journal_replayed", replayed, 0.50);
    rep.scalar("checkpoint_preserved_fraction",
               have_ckpt ? img.cycles / cold_cycles : 0, 0.50);

    // The subsystem's contract, enforced.
    if (!warm || replayed <= 0) {
        std::fprintf(stderr, "journal replay recovered nothing\n");
        rc = 1;
    }
    if (!exact) {
        std::fprintf(stderr,
                     "resumed guest results diverge from cold\n");
        rc = 1;
    }
    if (reuse < 0.5) {
        std::fprintf(stderr, "recovery reuse %.0f%% below 50%%\n",
                     100.0 * reuse);
        rc = 1;
    }
    if (ratio >= 1.0) {
        std::fprintf(stderr,
                     "resume (%.0f cycles) not cheaper than a cold "
                     "restart (%.0f)\n",
                     resumed_cycles, cold_cycles);
        rc = 1;
    }

    rep.write();
    std::printf("%s\n", t.render().c_str());
    std::printf(
        "Interpretation: the interrupted leg leaves only what a kill -9\n"
        "leaves — journal frames flushed at adoption boundaries and the\n"
        "last durable checkpoint. The resumed leg replays the journal\n"
        "(warm hot traces), restores guest state from the checkpoint,\n"
        "and completes bit-identically, cheaper than restarting cold.\n");
    fs::remove_all(dir);
    return rc;
}
