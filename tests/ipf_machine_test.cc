/**
 * @file
 * IPF machine tests: ALU semantics, predication, speculation (NaT +
 * chk.s), memory faults, FP precision behaviour, parallel ops, branch
 * mechanics, exit records, timing attribution and bundle packing.
 */

#include <gtest/gtest.h>

#include "ipf/bundle.hh"
#include "ipf/machine.hh"

namespace el::ipf
{
namespace
{

/** Small emitter helpers to keep the tests readable. */
struct Emitter
{
    CodeCache code;

    Instr
    base(IpfOp op)
    {
        Instr i;
        i.op = op;
        return i;
    }

    int64_t
    movl(uint8_t dst, int64_t imm, bool stop = true)
    {
        Instr i = base(IpfOp::Movl);
        i.dst = dst;
        i.imm = imm;
        i.stop = stop;
        return code.emit(i);
    }

    int64_t
    add(uint8_t dst, uint8_t a, uint8_t b, bool stop = true)
    {
        Instr i = base(IpfOp::Add);
        i.dst = dst;
        i.src1 = a;
        i.src2 = b;
        i.stop = stop;
        return code.emit(i);
    }

    int64_t
    addImm(uint8_t dst, int64_t imm, uint8_t src, bool stop = true)
    {
        Instr i = base(IpfOp::AddImm);
        i.dst = dst;
        i.imm = imm;
        i.src1 = src;
        i.stop = stop;
        return code.emit(i);
    }

    int64_t
    ld(uint8_t dst, uint8_t addr, unsigned size, Spec spec = Spec::None,
       bool stop = true)
    {
        Instr i = base(IpfOp::Ld);
        i.dst = dst;
        i.src1 = addr;
        i.size = static_cast<uint8_t>(size);
        i.spec = spec;
        i.stop = stop;
        return code.emit(i);
    }

    int64_t
    st(uint8_t addr, uint8_t val, unsigned size, bool stop = true)
    {
        Instr i = base(IpfOp::St);
        i.src1 = addr;
        i.src2 = val;
        i.size = static_cast<uint8_t>(size);
        i.stop = stop;
        return code.emit(i);
    }

    int64_t
    exit(ExitReason reason, int64_t payload = 0)
    {
        Instr i = base(IpfOp::Exit);
        i.exit_reason = reason;
        i.exit_payload = payload;
        i.stop = true;
        return code.emit(i);
    }

    int64_t
    emit(Instr i)
    {
        return code.emit(i);
    }
};

TEST(IpfMachine, BasicAluAndExit)
{
    Emitter e;
    mem::Memory mem;
    e.movl(10, 40);
    e.movl(11, 2);
    e.add(12, 10, 11);
    e.exit(ExitReason::Halt);

    Machine m(e.code, mem);
    StopInfo stop = m.run(0);
    EXPECT_EQ(stop.kind, StopKind::Exit);
    EXPECT_EQ(stop.reason, ExitReason::Halt);
    EXPECT_EQ(m.gr(12), 42u);
}

TEST(IpfMachine, RegisterZeroIsImmutable)
{
    Emitter e;
    mem::Memory mem;
    e.movl(0, 99);
    e.addImm(10, 5, 0);
    e.exit(ExitReason::Halt);
    Machine m(e.code, mem);
    m.run(0);
    EXPECT_EQ(m.gr(0), 0u);
    EXPECT_EQ(m.gr(10), 5u);
}

TEST(IpfMachine, PredicationNullifies)
{
    Emitter e;
    mem::Memory mem;
    Instr cmp = e.base(IpfOp::CmpImm);
    cmp.crel = CmpRel::Eq;
    cmp.imm = 7;
    cmp.src2 = 10;
    cmp.dst = 6;  // p6 = (7 == r10)
    cmp.dst2 = 7; // p7 = !p6
    cmp.stop = true;
    e.movl(10, 7);
    e.emit(cmp);
    Instr t = e.base(IpfOp::AddImm);
    t.qp = 6;
    t.dst = 11;
    t.imm = 111;
    t.src1 = 0;
    e.emit(t);
    Instr f = e.base(IpfOp::AddImm);
    f.qp = 7;
    f.dst = 12;
    f.imm = 222;
    f.src1 = 0;
    f.stop = true;
    e.emit(f);
    e.exit(ExitReason::Halt);

    Machine m(e.code, mem);
    m.run(0);
    EXPECT_EQ(m.gr(11), 111u);
    EXPECT_EQ(m.gr(12), 0u) << "false-predicated op must not execute";
}

TEST(IpfMachine, CmpRelations)
{
    struct Case
    {
        CmpRel rel;
        int64_t a, b;
        bool expect;
    } cases[] = {
        {CmpRel::Eq, 5, 5, true},    {CmpRel::Ne, 5, 5, false},
        {CmpRel::Lt, -1, 1, true},   {CmpRel::Ltu, -1, 1, false},
        {CmpRel::Ge, 3, 3, true},    {CmpRel::Gtu, 0xff, 1, true},
        {CmpRel::Le, -5, -5, true},  {CmpRel::Gt, -2, -3, true},
    };
    for (const auto &c : cases) {
        Emitter e;
        mem::Memory mem;
        e.movl(10, c.a, false);
        e.movl(11, c.b, true);
        Instr cmp = e.base(IpfOp::Cmp);
        cmp.crel = c.rel;
        cmp.src1 = 10;
        cmp.src2 = 11;
        cmp.dst = 6;
        cmp.dst2 = 7;
        cmp.stop = true;
        e.emit(cmp);
        e.exit(ExitReason::Halt);
        Machine m(e.code, mem);
        m.run(0);
        EXPECT_EQ(m.pr(6), c.expect)
            << "rel " << static_cast<int>(c.rel) << " " << c.a << "," << c.b;
        EXPECT_EQ(m.pr(7), !c.expect);
    }
}

TEST(IpfMachine, TbitDepExtr)
{
    Emitter e;
    mem::Memory mem;
    e.movl(10, 0xabcd);
    Instr tb = e.base(IpfOp::Tbit);
    tb.src1 = 10;
    tb.pos = 3; // bit 3 of 0xabcd = 1
    tb.dst = 6;
    tb.dst2 = 7;
    tb.stop = true;
    e.emit(tb);
    Instr dep = e.base(IpfOp::DepZ);
    dep.dst = 11;
    dep.src1 = 10;
    dep.pos = 8;
    dep.len = 8;
    dep.stop = true;
    e.emit(dep);
    Instr ext = e.base(IpfOp::ExtrU);
    ext.dst = 12;
    ext.src1 = 10;
    ext.pos = 8;
    ext.len = 8;
    ext.stop = true;
    e.emit(ext);
    Instr exts = e.base(IpfOp::Extr);
    exts.dst = 13;
    exts.src1 = 10;
    exts.pos = 8;
    exts.len = 8;
    exts.stop = true;
    e.emit(exts);
    e.exit(ExitReason::Halt);

    Machine m(e.code, mem);
    m.run(0);
    EXPECT_TRUE(m.pr(6));
    EXPECT_FALSE(m.pr(7));
    EXPECT_EQ(m.gr(11), 0xcd00u);
    EXPECT_EQ(m.gr(12), 0xabu);
    EXPECT_EQ(m.gr(13), static_cast<uint64_t>(-0x55)); // 0xab sign-extended
}

TEST(IpfMachine, LoadStoreAndPostInc)
{
    Emitter e;
    mem::Memory mem;
    mem.map(0x1000, 0x1000, mem::PermRW);
    e.movl(10, 0x1000);
    e.movl(11, 0x12345678deadbeefLL);
    Instr st8 = e.base(IpfOp::St);
    st8.src1 = 10;
    st8.src2 = 11;
    st8.size = 8;
    st8.imm = 8; // post-increment
    st8.stop = true;
    e.emit(st8);
    e.st(10, 11, 4);
    e.movl(10, 0x1000);
    e.ld(12, 10, 8);
    e.exit(ExitReason::Halt);

    Machine m(e.code, mem);
    m.run(0);
    EXPECT_EQ(m.gr(12), 0x12345678deadbeefULL);
    uint64_t v = 0;
    ASSERT_TRUE(mem.read(0x1008, 4, &v).ok());
    EXPECT_EQ(v, 0xdeadbeefULL);
}

TEST(IpfMachine, MemFaultStopsWithAddress)
{
    Emitter e;
    mem::Memory mem;
    e.movl(10, 0x5000);
    int64_t ld_idx = e.ld(11, 10, 4);
    e.exit(ExitReason::Halt);
    Machine m(e.code, mem);
    StopInfo stop = m.run(0);
    EXPECT_EQ(stop.kind, StopKind::MemFault);
    EXPECT_EQ(stop.fault_addr, 0x5000u);
    EXPECT_EQ(stop.instr_index, ld_idx);
    EXPECT_FALSE(stop.fault_is_write);
}

TEST(IpfMachine, SpeculativeLoadDefersIntoNat)
{
    Emitter e;
    mem::Memory mem;
    e.movl(10, 0x5000); // unmapped
    e.ld(11, 10, 4, Spec::S);
    e.addImm(12, 1, 11); // NaT must propagate
    Instr chk = e.base(IpfOp::ChkS);
    chk.src1 = 12;
    chk.target = -1; // exit Resync on NaT
    chk.stop = true;
    e.emit(chk);
    e.exit(ExitReason::Halt);

    Machine m(e.code, mem);
    StopInfo stop = m.run(0);
    EXPECT_EQ(stop.kind, StopKind::Exit);
    EXPECT_EQ(stop.reason, ExitReason::Resync);
    EXPECT_TRUE(m.grNat(11));
    EXPECT_TRUE(m.grNat(12));
}

TEST(IpfMachine, ChkSBranchesToRecovery)
{
    Emitter e;
    mem::Memory mem;
    mem.map(0x1000, 0x1000, mem::PermRW);
    e.movl(10, 0x5000); // bad address
    e.ld(11, 10, 4, Spec::S);
    Instr chk = e.base(IpfOp::ChkS);
    chk.src1 = 11;
    chk.stop = true;
    int64_t chk_idx = e.emit(chk);
    e.exit(ExitReason::Halt, 1); // fallthrough path
    // Recovery: reload from a good address, then exit with payload 2.
    int64_t recovery = e.movl(10, 0x1000);
    e.ld(11, 10, 4);
    e.exit(ExitReason::Halt, 2);
    e.code.at(chk_idx).target = recovery;

    Machine m(e.code, mem);
    StopInfo stop = m.run(0);
    EXPECT_EQ(stop.kind, StopKind::Exit);
    EXPECT_EQ(stop.payload, 2);
    EXPECT_FALSE(m.grNat(11));
}

TEST(IpfMachine, SpeculativeLoadSucceedsNormally)
{
    Emitter e;
    mem::Memory mem;
    mem.map(0x1000, 0x1000, mem::PermRW);
    ASSERT_TRUE(mem.write(0x1010, 4, 777).ok());
    e.movl(10, 0x1010);
    e.ld(11, 10, 4, Spec::S);
    Instr chk = e.base(IpfOp::ChkS);
    chk.src1 = 11;
    chk.target = -1;
    chk.stop = true;
    e.emit(chk);
    e.exit(ExitReason::Halt);
    Machine m(e.code, mem);
    StopInfo stop = m.run(0);
    EXPECT_EQ(stop.reason, ExitReason::Halt);
    EXPECT_EQ(m.gr(11), 777u);
}

TEST(IpfMachine, FpPrecisionRounding)
{
    Emitter e;
    mem::Memory mem;
    // f6 = 1/3 single, f7 = 1/3 double: must differ.
    e.movl(10, 1, false);
    e.movl(11, 3, true);
    Instr s1 = e.base(IpfOp::Setf);
    s1.dst = 6;
    s1.src1 = 10;
    s1.stop = false;
    e.emit(s1);
    Instr s2 = e.base(IpfOp::Setf);
    s2.dst = 7;
    s2.src1 = 11;
    s2.stop = true;
    e.emit(s2);
    Instr c1 = e.base(IpfOp::FcvtXf);
    c1.dst = 6;
    c1.src1 = 6;
    c1.stop = false;
    e.emit(c1);
    Instr c2 = e.base(IpfOp::FcvtXf);
    c2.dst = 7;
    c2.src1 = 7;
    c2.stop = true;
    e.emit(c2);
    Instr d1 = e.base(IpfOp::Fdiv);
    d1.dst = 8;
    d1.src1 = 6;
    d1.src2 = 7;
    d1.prec = FpPrec::Single;
    d1.stop = true;
    e.emit(d1);
    Instr d2 = e.base(IpfOp::Fdiv);
    d2.dst = 9;
    d2.src1 = 6;
    d2.src2 = 7;
    d2.prec = FpPrec::Double;
    d2.stop = true;
    e.emit(d2);
    e.exit(ExitReason::Halt);

    Machine m(e.code, mem);
    m.run(0);
    EXPECT_EQ(static_cast<float>(m.fr(8).valView()), 1.0f / 3.0f);
    EXPECT_EQ(static_cast<double>(m.fr(9).valView()), 1.0 / 3.0);
    EXPECT_NE(m.fr(8).valView(), m.fr(9).valView());
}

TEST(IpfMachine, FmaExtended)
{
    Emitter e;
    mem::Memory mem;
    e.movl(10, 3, false);
    e.movl(11, 4, false);
    e.movl(12, 5, true);
    for (int k = 0; k < 3; ++k) {
        Instr s = e.base(IpfOp::Setf);
        s.dst = static_cast<uint8_t>(6 + k);
        s.src1 = static_cast<uint8_t>(10 + k);
        s.stop = (k == 2);
        e.emit(s);
    }
    for (int k = 0; k < 3; ++k) {
        Instr c = e.base(IpfOp::FcvtXf);
        c.dst = static_cast<uint8_t>(6 + k);
        c.src1 = static_cast<uint8_t>(6 + k);
        c.stop = (k == 2);
        e.emit(c);
    }
    Instr fma = e.base(IpfOp::Fma);
    fma.dst = 9;
    fma.src1 = 6;
    fma.src2 = 7;
    fma.src3 = 8;
    fma.stop = true;
    e.emit(fma);
    e.exit(ExitReason::Halt);
    Machine m(e.code, mem);
    m.run(0);
    EXPECT_EQ(m.fr(9).valView(), 17.0L);
}

TEST(IpfMachine, ParallelIntegerLanes)
{
    Emitter e;
    mem::Memory mem;
    e.movl(10, 0x0001000200030004LL);
    e.movl(11, 0x0001000100010001LL);
    Instr p = e.base(IpfOp::Padd);
    p.dst = 12;
    p.src1 = 10;
    p.src2 = 11;
    p.size = 2;
    p.stop = true;
    e.emit(p);
    e.exit(ExitReason::Halt);
    Machine m(e.code, mem);
    m.run(0);
    EXPECT_EQ(m.gr(12), 0x0002000300040005ULL);
}

TEST(IpfMachine, ParallelFpPairs)
{
    Emitter e;
    mem::Memory mem;
    float lo = 1.5f, hi = -2.0f;
    uint32_t lo_b, hi_b;
    std::memcpy(&lo_b, &lo, 4);
    std::memcpy(&hi_b, &hi, 4);
    uint64_t packed = lo_b | (static_cast<uint64_t>(hi_b) << 32);
    e.movl(10, static_cast<int64_t>(packed));
    Instr s = e.base(IpfOp::Setf);
    s.dst = 6;
    s.src1 = 10;
    s.stop = true;
    e.emit(s);
    Instr fp = e.base(IpfOp::Fpadd);
    fp.dst = 7;
    fp.src1 = 6;
    fp.src2 = 6;
    fp.stop = true;
    e.emit(fp);
    Instr g = e.base(IpfOp::Getf);
    g.dst = 11;
    g.src1 = 7;
    g.stop = true;
    e.emit(g);
    e.exit(ExitReason::Halt);
    Machine m(e.code, mem);
    m.run(0);
    uint64_t out = m.gr(11);
    float rlo, rhi;
    uint32_t rl = static_cast<uint32_t>(out);
    uint32_t rh = static_cast<uint32_t>(out >> 32);
    std::memcpy(&rlo, &rl, 4);
    std::memcpy(&rhi, &rh, 4);
    EXPECT_FLOAT_EQ(rlo, 3.0f);
    EXPECT_FLOAT_EQ(rhi, -4.0f);
}

TEST(IpfMachine, BranchAndLoop)
{
    Emitter e;
    mem::Memory mem;
    e.movl(10, 0, false);  // sum
    e.movl(11, 10, true);  // counter
    int64_t top = e.add(10, 10, 11, false);
    e.addImm(11, -1, 11, true);
    Instr cmp = e.base(IpfOp::CmpImm);
    cmp.crel = CmpRel::Ne;
    cmp.imm = 0;
    cmp.src2 = 11;
    cmp.dst = 6;
    cmp.dst2 = 7;
    e.emit(cmp);
    Instr br = e.base(IpfOp::Br);
    br.qp = 6;
    br.target = top;
    br.stop = true;
    e.emit(br);
    e.exit(ExitReason::Halt);

    Machine m(e.code, mem);
    StopInfo stop = m.run(0);
    EXPECT_EQ(stop.reason, ExitReason::Halt);
    EXPECT_EQ(m.gr(10), 55u);
}

TEST(IpfMachine, IndirectBranchThroughBr)
{
    Emitter e;
    mem::Memory mem;
    e.movl(10, 0); // patched below
    Instr mb = e.base(IpfOp::MovToBr);
    mb.dst = br_ind;
    mb.src1 = 10;
    mb.stop = true;
    e.emit(mb);
    Instr bi = e.base(IpfOp::BrInd);
    bi.src1 = br_ind;
    bi.stop = true;
    e.emit(bi);
    e.exit(ExitReason::Halt, 1); // skipped
    int64_t tgt = e.exit(ExitReason::Halt, 2);
    e.code.at(0).imm = tgt;

    Machine m(e.code, mem);
    StopInfo stop = m.run(0);
    EXPECT_EQ(stop.payload, 2);
}

TEST(IpfMachine, ExitCarriesIndirectPayloadFromRegister)
{
    Emitter e;
    mem::Memory mem;
    e.movl(10, 0x8048123);
    Instr x = e.base(IpfOp::Exit);
    x.exit_reason = ExitReason::IndirectMiss;
    x.src1 = 10;
    x.stop = true;
    e.emit(x);
    Machine m(e.code, mem);
    StopInfo stop = m.run(0);
    EXPECT_EQ(stop.reason, ExitReason::IndirectMiss);
    EXPECT_EQ(stop.payload, 0x8048123);
}

TEST(IpfMachine, MisalignmentChargesHugePenalty)
{
    Emitter e;
    mem::Memory mem;
    mem.map(0x1000, 0x1000, mem::PermRW);
    e.movl(10, 0x1001); // misaligned for 4-byte access
    e.ld(11, 10, 4);
    e.exit(ExitReason::Halt);
    Machine m(e.code, mem);
    m.run(0);
    EXPECT_EQ(m.misalignedAccesses(), 1u);
    EXPECT_GE(m.totalCycles(), m.config().misalign_penalty);
}

TEST(IpfMachine, AlignedAccessIsCheap)
{
    Emitter e;
    mem::Memory mem;
    mem.map(0x1000, 0x1000, mem::PermRW);
    e.movl(10, 0x1000);
    e.ld(11, 10, 4);
    e.exit(ExitReason::Halt);
    Machine m(e.code, mem);
    m.run(0);
    EXPECT_EQ(m.misalignedAccesses(), 0u);
    EXPECT_LT(m.totalCycles(), 200.0);
}

TEST(IpfMachine, WideGroupIssuesInOneCycle)
{
    // Six independent A-type ops with a single stop: should cost far
    // fewer cycles than six serialized groups.
    Emitter e1;
    mem::Memory mem1;
    for (int k = 0; k < 6; ++k)
        e1.addImm(static_cast<uint8_t>(10 + k), k, 0, k == 5);
    e1.exit(ExitReason::Halt);
    Machine m1(e1.code, mem1);
    m1.run(0);

    Emitter e2;
    mem::Memory mem2;
    for (int k = 0; k < 6; ++k)
        e2.addImm(static_cast<uint8_t>(10 + k), k, 0, true);
    e2.exit(ExitReason::Halt);
    Machine m2(e2.code, mem2);
    m2.run(0);

    EXPECT_LT(m1.totalCycles(), m2.totalCycles());
}

TEST(IpfMachine, BucketAttribution)
{
    Emitter e;
    mem::Memory mem;
    Instr a = e.base(IpfOp::AddImm);
    a.dst = 10;
    a.imm = 1;
    a.src1 = 0;
    a.stop = true;
    a.meta.bucket = Bucket::Hot;
    e.emit(a);
    Instr b = a;
    b.meta.bucket = Bucket::Cold;
    e.emit(b);
    Instr x = e.base(IpfOp::Exit);
    x.exit_reason = ExitReason::Halt;
    x.meta.bucket = Bucket::Overhead;
    x.stop = true;
    e.emit(x);
    Machine m(e.code, mem);
    m.run(0);
    EXPECT_GT(m.stats().cycles[static_cast<size_t>(Bucket::Hot)], 0.0);
    EXPECT_GT(m.stats().cycles[static_cast<size_t>(Bucket::Cold)], 0.0);
    EXPECT_EQ(m.stats().insns[static_cast<size_t>(Bucket::Hot)], 1u);
}

TEST(IpfMachine, VerifyGroupsCatchesNothingOnLegalCode)
{
    Emitter e;
    mem::Memory mem;
    e.movl(10, 1);
    e.addImm(11, 2, 10, false); // independent pair in one group
    e.addImm(12, 3, 10, true);
    e.exit(ExitReason::Halt);
    MachineConfig cfg;
    cfg.verify_groups = true;
    Machine m(e.code, mem, cfg);
    EXPECT_EQ(m.run(0).reason, ExitReason::Halt);
}

TEST(CodeCachePatch, LinkExitBecomesBranch)
{
    Emitter e;
    mem::Memory mem;
    int64_t stub = e.exit(ExitReason::LinkMiss, 0x8048000);
    int64_t blk = e.movl(10, 42);
    e.exit(ExitReason::Halt);

    Machine m(e.code, mem);
    StopInfo s1 = m.run(0);
    EXPECT_EQ(s1.reason, ExitReason::LinkMiss);
    e.code.patchToBranch(stub, blk);
    StopInfo s2 = m.run(0);
    EXPECT_EQ(s2.reason, ExitReason::Halt);
    EXPECT_EQ(m.gr(10), 42u);
}

TEST(CodeCachePatch, InvalidateEntry)
{
    Emitter e;
    mem::Memory mem;
    int64_t entry = e.movl(10, 42);
    e.exit(ExitReason::Halt);
    e.code.invalidateEntry(entry, ExitReason::SmcDetected, 0x1234);
    Machine m(e.code, mem);
    StopInfo stop = m.run(0);
    EXPECT_EQ(stop.reason, ExitReason::SmcDetected);
    EXPECT_EQ(stop.payload, 0x1234);
}

TEST(Bundles, PacksGroupsGreedily)
{
    Emitter e;
    // One group: ld (M), add (A), shl-imm (I) -> should fit one bundle.
    Instr ld = e.base(IpfOp::Ld);
    ld.dst = 10;
    ld.src1 = 11;
    ld.size = 4;
    e.emit(ld);
    e.add(12, 10, 10, false);
    Instr sh = e.base(IpfOp::ShlImm);
    sh.dst = 13;
    sh.src1 = 12;
    sh.imm = 2;
    sh.stop = true;
    e.emit(sh);
    BundleStats stats = packBundles(e.code, 0, e.code.nextIndex());
    EXPECT_EQ(stats.bundles, 1u);
    EXPECT_EQ(stats.real_slots, 3u);
    EXPECT_EQ(stats.nop_slots, 0u);
}

TEST(Bundles, StopsSplitBundles)
{
    Emitter e;
    e.addImm(10, 1, 0, true);
    e.addImm(11, 1, 0, true);
    BundleStats stats = packBundles(e.code, 0, e.code.nextIndex());
    EXPECT_EQ(stats.bundles, 2u);
    EXPECT_GT(stats.nop_slots, 0u);
}

} // namespace
} // namespace el::ipf
