/**
 * @file
 * The section-5 FP machinery end to end: an x87 kernel with heavy FXCH
 * traffic, an MMX kernel, and an SSE kernel run under IA-32 EL; the
 * showcase reports the TOS/TAG/domain/format speculation activity and
 * cross-checks every result against the reference interpreter.
 */

#include <cstdio>

#include "guest/workloads.hh"
#include "harness/exec.hh"

using namespace el;

int
main()
{
    guest::WorkloadParams p;
    p.outer_iters = 20;
    p.size = 2000;

    guest::Workload kernels[] = {
        guest::buildFpKernel("x87-daxpy", p),
        guest::buildMmxKernel("mmx-packed", p),
        guest::buildSseKernel("sse-packed", p),
    };

    for (guest::Workload &w : kernels) {
        harness::Outcome ref =
            harness::runInterpreter(w.image, w.params.abi);
        harness::TranslatedRun tr =
            harness::runTranslated(w.image, w.params.abi);
        StatGroup &rs = tr.runtime->stats();
        StatGroup &ts = tr.runtime->translator().stats;

        std::printf("%-12s exit=%3d (interp %3d)  %s\n", w.name.c_str(),
                    tr.outcome.exit_code, ref.exit_code,
                    tr.outcome.exit_code == ref.exit_code ? "OK"
                                                          : "MISMATCH");
        std::printf("  guard failures: TOS=%llu TAG=%llu domain=%llu "
                    "format=%llu\n",
                    (unsigned long long)rs.get("guard.tos_miss"),
                    (unsigned long long)rs.get("guard.tag_miss"),
                    (unsigned long long)rs.get("guard.domain_miss"),
                    (unsigned long long)rs.get("guard.format_miss"));
        std::printf("  fxch eliminated (hot renaming): %llu, emitted "
                    "as moves (cold): %llu\n",
                    (unsigned long long)ts.get("fxch.eliminated"),
                    (unsigned long long)ts.get("fxch.emitted"));
    }
    std::printf("\nThe near-zero guard-failure counts are the paper's\n"
                "\"speculation success rate was very close to 100%%\".\n");
    return 0;
}
