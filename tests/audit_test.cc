/**
 * @file
 * Tests for the cycle-accounting audit layer and the differential
 * attribution library behind el_diff.
 *
 * The load-bearing properties:
 *  - the closure identity (block cycles + synthetic cycles == total
 *    cycles; per-block insns == retired) holds on real runs at every
 *    pipeline width, so the auditor is green on healthy books;
 *  - the acct_skew fault site — which corrupts ONLY the books, never
 *    guest execution — is caught by the closure check and by the
 *    flight↔counter cross-count, proving the auditor can actually see
 *    the failure class it exists for;
 *  - attrib::diffRuns attributes the whole phase-level delta by
 *    construction (buckets partition the cycle total), reports the
 *    residual instead of hiding it, and pools sub-noise block rows.
 */

#include <gtest/gtest.h>

#include "btlib/abi.hh"
#include "core/audit.hh"
#include "core/report.hh"
#include "guest/image.hh"
#include "harness/exec.hh"
#include "ia32/assembler.hh"
#include "support/attrib.hh"
#include "support/buildinfo.hh"
#include "support/faultinject.hh"

namespace el
{
namespace
{

using guest::Layout;
using namespace ia32;

/** Tight counted loop, hot enough to cross any heat threshold. */
guest::Image
hotLoopProgram(uint32_t iterations = 400)
{
    Assembler as(Layout::code_base);
    as.movRI(RegEax, 0);
    as.movRI(RegEcx, iterations);
    Label top = as.label();
    as.bind(top);
    as.aluRI(Op::Add, RegEax, 3);
    as.aluRI(Op::Xor, RegEax, 0x55);
    as.decR(RegEcx);
    as.jcc(Cond::NE, top);
    as.aluRI(Op::And, RegEax, 0x7f);
    as.movRR(RegEbx, RegEax);
    as.movRI(RegEax, btlib::linux_abi::nr_exit);
    as.intN(btlib::linux_abi::int_vector);

    guest::Image img;
    img.name = "audit_hotloop";
    img.entry = Layout::code_base;
    img.addCode(Layout::code_base, as.finish());
    img.addData(Layout::data_base, 0x1000);
    return img;
}

core::Options
auditOpts(unsigned threads)
{
    core::Options o;
    o.heat_threshold = 16;
    o.hot_batch = 1;
    o.translation_threads = threads;
    o.deterministic_adoption = threads > 0;
    o.audit = true;
    return o;
}

// ----- the auditor on real runs -----------------------------------------

TEST(Audit, GreenOnHealthyRunsAtEveryPipelineWidth)
{
    for (unsigned threads : {0u, 1u, 4u}) {
        harness::TranslatedRun run = harness::runTranslated(
            hotLoopProgram(), btlib::OsAbi::Linux, auditOpts(threads));
        ASSERT_TRUE(run.outcome.exited) << "threads=" << threads;
        run.runtime->quiesce();

        core::AuditContext ctx;
        ctx.workload = "audit_hotloop";
        audit::Result r = core::auditRun(*run.runtime, ctx);
        EXPECT_TRUE(r.ok()) << "threads=" << threads << "\n"
                            << r.summary();
        // The in-run periodic closure audit must agree.
        EXPECT_TRUE(run.runtime->auditFindings().ok())
            << run.runtime->auditFindings().summary();
        EXPECT_GT(r.checksRun(), 20u)
            << "full audit ran suspiciously few checks";
    }
}

TEST(Audit, ClosureIdentityIsExact)
{
    harness::TranslatedRun run = harness::runTranslated(
        hotLoopProgram(), btlib::OsAbi::Linux, auditOpts(0));
    ASSERT_TRUE(run.outcome.exited);
    ipf::Machine &m = run.runtime->machine();
    double blocks = 0;
    for (const auto &[id, cost] : m.blockCosts())
        blocks += cost.cycles;
    // Not approximately: closeGroup() mirrors the identical cost into
    // the per-block books, and chargeCycles() is the only other
    // writer. A one-cycle leak here is a real bug, not rounding.
    EXPECT_DOUBLE_EQ(blocks + m.syntheticCycles(), m.totalCycles());
}

TEST(Audit, AcctSkewIsDetected)
{
    core::Options o = auditOpts(0);
    o.fault.seed = 5;
    o.fault.site(FaultSite::AcctSkew, 1024);
    harness::TranslatedRun run = harness::runTranslated(
        hotLoopProgram(), btlib::OsAbi::Linux, o);
    // The skew corrupts accounting, not execution: the guest still
    // exits cleanly with the right answer.
    ASSERT_TRUE(run.outcome.exited);
    run.runtime->quiesce();

    core::AuditContext ctx;
    ctx.workload = "audit_hotloop";
    audit::Result r = core::auditRun(*run.runtime, ctx);
    EXPECT_FALSE(r.ok()) << "seeded accounting skew went undetected";
    bool closure = false, cross = false;
    for (const audit::Violation &v : r.violations()) {
        if (v.check.find("closure") != std::string::npos)
            closure = true;
        if (v.check.find("cross_count") != std::string::npos)
            cross = true;
    }
    EXPECT_TRUE(closure) << "closure check missed the phantom cycles";
    EXPECT_TRUE(cross)
        << "flight cross-count missed the phantom cold-block tally";
}

TEST(Audit, SkewedRunStillComputesTheRightAnswer)
{
    // The whole point of the site: it must be invisible to everything
    // except the auditor, or a detection test proves nothing.
    harness::TranslatedRun clean = harness::runTranslated(
        hotLoopProgram(), btlib::OsAbi::Linux, auditOpts(0));
    core::Options o = auditOpts(0);
    o.fault.seed = 5;
    o.fault.site(FaultSite::AcctSkew, 1024);
    harness::TranslatedRun skewed = harness::runTranslated(
        hotLoopProgram(), btlib::OsAbi::Linux, o);
    ASSERT_TRUE(clean.outcome.exited && skewed.outcome.exited);
    EXPECT_EQ(clean.outcome.exit_code, skewed.outcome.exit_code);
    EXPECT_EQ(clean.outcome.final_state.gpr[RegEax],
              skewed.outcome.final_state.gpr[RegEax]);
}

// ----- attrib: parsing ---------------------------------------------------

/** A minimal but complete synthetic el-report. */
std::string
syntheticReport(double cold, double hot, const std::string &fp,
                const std::string &blocks_json = "")
{
    std::string s = "{\"kind\":\"el-report\",\"version\":1,"
                    "\"producer\":{\"tool\":\"el_run\",\"build\":\"t\","
                    "\"schema\":1,\"fingerprint\":\"" + fp + "\"},"
                    "\"workload\":\"synth\",";
    double total = cold + hot + 100;
    s += "\"cycles\":" + std::to_string(total) + ",";
    s += "\"attribution\":{\"total\":" + std::to_string(total) +
         ",\"cold_code\":" + std::to_string(cold) +
         ",\"hot_code\":" + std::to_string(hot) +
         ",\"btgeneric\":100,\"fault_handling\":0,"
         "\"native\":0,\"idle\":0}";
    if (!blocks_json.empty())
        s += ",\"blocks\":" + blocks_json;
    s += "}";
    return s;
}

TEST(Attrib, ParseRejectsForeignDocuments)
{
    attrib::RunView v;
    std::string err;
    EXPECT_FALSE(attrib::parseReport("{\"kind\":\"el-profile\"}",
                                     "p.json", &v, &err));
    EXPECT_NE(err.find("el-report"), std::string::npos);
    EXPECT_FALSE(attrib::parseReport("not json", "p.json", &v, &err));
    // A report missing an attribution bucket must fail loudly, not
    // diff that phase as zero.
    EXPECT_FALSE(attrib::parseReport(
        "{\"kind\":\"el-report\",\"version\":1,\"cycles\":1,"
        "\"attribution\":{\"cold_code\":1}}",
        "p.json", &v, &err));
    EXPECT_NE(err.find("attribution"), std::string::npos);
}

TEST(Attrib, ParseMergesBlockRowsByEipAndKind)
{
    // Two translations of the same entry (retranslation after a
    // flush) must merge into one canonical row.
    attrib::RunView v;
    std::string err;
    ASSERT_TRUE(attrib::parseReport(
        syntheticReport(10, 90, "fp",
                        "[{\"eip\":134512640,\"kind\":\"hot\","
                        "\"cycles\":40,\"insns\":4},"
                        "{\"eip\":134512640,\"kind\":\"hot\","
                        "\"cycles\":50,\"insns\":5},"
                        "{\"eip\":134512640,\"kind\":\"cold\","
                        "\"cycles\":10,\"insns\":1}]"),
        "p.json", &v, &err))
        << err;
    ASSERT_EQ(v.blocks.size(), 2u);
    EXPECT_TRUE(v.has_blocks);
    for (const attrib::RunView::BlockRow &r : v.blocks)
        if (r.kind == "hot") {
            EXPECT_DOUBLE_EQ(r.cycles, 90.0);
            EXPECT_DOUBLE_EQ(r.insns, 9.0);
        }
    EXPECT_EQ(v.fingerprint, "fp");
    EXPECT_EQ(v.schema, 1);
}

TEST(Attrib, CompatibilityRefusesDifferentGuests)
{
    attrib::RunView a, b;
    std::string err, why;
    ASSERT_TRUE(attrib::parseReport(syntheticReport(1, 1, "aaaa"),
                                    "a.json", &a, &err));
    ASSERT_TRUE(attrib::parseReport(syntheticReport(1, 1, "bbbb"),
                                    "b.json", &b, &err));
    EXPECT_FALSE(attrib::compatible(a, b, &why));
    EXPECT_NE(why.find("fingerprints differ"), std::string::npos);
    EXPECT_TRUE(attrib::compatible(a, a, &why));
}

// ----- attrib: the diff --------------------------------------------------

TEST(Attrib, PhaseAttributionIsExactByConstruction)
{
    attrib::RunView base, cur;
    std::string err;
    ASSERT_TRUE(attrib::parseReport(syntheticReport(5000, 100000, "f"),
                                    "base.json", &base, &err));
    ASSERT_TRUE(attrib::parseReport(syntheticReport(100, 104000, "f"),
                                    "cur.json", &cur, &err));
    attrib::Diff d = attrib::diffRuns(base, cur, {});
    // Buckets partition the total, so phase deltas sum to the run
    // delta exactly and the attributed fraction is 1.
    EXPECT_DOUBLE_EQ(d.delta, cur.cycles - base.cycles);
    EXPECT_DOUBLE_EQ(d.phase_residual, 0.0);
    EXPECT_DOUBLE_EQ(d.attributed_fraction, 1.0);
    // Sorted by |delta|: cold (-4900) beats hot (+4000)? No — hot
    // moved 4000, cold moved 4900, so cold_code leads.
    ASSERT_FALSE(d.phases.empty());
    EXPECT_EQ(d.phases[0].phase, "cold_code");
    EXPECT_DOUBLE_EQ(d.phases[0].delta, -4900.0);
}

TEST(Attrib, BlockNoisePoolingAndResidual)
{
    attrib::RunView base, cur;
    std::string err;
    // Total delta = -4000 (hot 100000 -> 96000). One block explains
    // -3990; another wiggles by -10, below the 1% noise floor (40).
    ASSERT_TRUE(attrib::parseReport(
        syntheticReport(0, 100000, "f",
                        "[{\"eip\":1,\"kind\":\"hot\",\"cycles\":"
                        "99000,\"insns\":9},{\"eip\":2,\"kind\":"
                        "\"hot\",\"cycles\":1000,\"insns\":1}]"),
        "base.json", &base, &err));
    ASSERT_TRUE(attrib::parseReport(
        syntheticReport(0, 96000, "f",
                        "[{\"eip\":1,\"kind\":\"hot\",\"cycles\":"
                        "95010,\"insns\":9},{\"eip\":2,\"kind\":"
                        "\"hot\",\"cycles\":990,\"insns\":1}]"),
        "cur.json", &cur, &err));
    attrib::Diff d = attrib::diffRuns(base, cur, {});
    ASSERT_TRUE(d.blocks_available);
    EXPECT_DOUBLE_EQ(d.noise_threshold, 40.0);
    ASSERT_EQ(d.blocks.size(), 1u);
    EXPECT_EQ(d.blocks[0].eip, 1u);
    EXPECT_DOUBLE_EQ(d.blocks[0].delta, -3990.0);
    EXPECT_EQ(d.below_noise_rows, 1u);
    EXPECT_DOUBLE_EQ(d.below_noise, -10.0);
    // delta - (block deltas) = -4000 - (-4000) = 0 residual here.
    EXPECT_DOUBLE_EQ(d.block_residual, 0.0);
}

TEST(Attrib, DiffJsonRoundTrips)
{
    attrib::RunView base, cur;
    std::string err;
    ASSERT_TRUE(attrib::parseReport(syntheticReport(50, 1000, "f"),
                                    "base.json", &base, &err));
    ASSERT_TRUE(attrib::parseReport(syntheticReport(10, 1200, "f"),
                                    "cur.json", &cur, &err));
    attrib::Diff d = attrib::diffRuns(base, cur, {});
    std::string doc = attrib::diffJson(
        d, base, cur, buildinfo::ProducerStamp::make("el_diff", "f"));
    json::Value root;
    ASSERT_TRUE(json::Parser::parse(doc, &root, &err)) << err;
    EXPECT_EQ(root.strOr("kind", ""), "el-diff");
    EXPECT_EQ(root.numberOr("version", 0), 1.0);
    const json::Value *producer = root.find("producer");
    ASSERT_NE(producer, nullptr);
    EXPECT_EQ(producer->strOr("tool", ""), "el_diff");
    const json::Value *delta = root.find("delta");
    ASSERT_NE(delta, nullptr);
    EXPECT_DOUBLE_EQ(delta->numberOr("cycles", 0), d.delta);
    EXPECT_DOUBLE_EQ(delta->numberOr("attributed_fraction", 0), 1.0);
}

// ----- end-to-end: real reports through the differ ----------------------

TEST(Attrib, RealRunsDiffWithFullAttribution)
{
    // Render two real reports (differing heat thresholds change the
    // cold/hot split) and check the differ attributes ≥95% of the
    // delta — the ISSUE's acceptance bar, met exactly because phase
    // buckets partition the cycle counter.
    auto report = [](uint32_t heat) {
        core::Options o;
        o.heat_threshold = heat;
        o.hot_batch = 1;
        o.collect_block_cycles = true;
        harness::TranslatedRun run = harness::runTranslated(
            hotLoopProgram(), btlib::OsAbi::Linux, o);
        EXPECT_TRUE(run.outcome.exited);
        buildinfo::ProducerStamp stamp =
            buildinfo::ProducerStamp::make("el_run", "same-guest");
        return core::runReportJson(*run.runtime, "audit_hotloop",
                                   nullptr, &stamp);
    };
    attrib::RunView base, cur;
    std::string err;
    ASSERT_TRUE(attrib::parseReport(report(16), "base.json", &base,
                                    &err))
        << err;
    ASSERT_TRUE(attrib::parseReport(report(64), "cur.json", &cur, &err))
        << err;
    std::string why;
    ASSERT_TRUE(attrib::compatible(base, cur, &why)) << why;
    attrib::Diff d = attrib::diffRuns(base, cur, {});
    EXPECT_NE(d.delta, 0.0)
        << "heat thresholds 16 vs 64 should change the cycle count";
    EXPECT_GE(d.attributed_fraction, 0.95);
    EXPECT_TRUE(d.blocks_available);
    EXPECT_FALSE(d.blocks.empty());
}

} // namespace
} // namespace el
