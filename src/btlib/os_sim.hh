/**
 * @file
 * Simulated OS personalities (the BTLib side of the BTOS API).
 *
 * Both personalities provide the same services — memory allocation,
 * console output, heap growth, virtual time, idle, "kernel work" (native
 * time spent in the OS and drivers, which Figure 7 shows dominating
 * Sysmark-class workloads), and exception delivery — but through
 * different trap vectors, argument conventions and service numbers, so
 * one BTGeneric binary must genuinely abstract over them.
 */

#ifndef EL_BTLIB_OS_SIM_HH
#define EL_BTLIB_OS_SIM_HH

#include <cstdint>
#include <functional>
#include <string>

#include "btlib/abi.hh"
#include "btlib/btos.hh"
#include "guest/image.hh"
#include "mem/memory.hh"

namespace el::btlib
{

/** Statistics a personality accumulates about OS interactions. */
struct OsStats
{
    uint64_t syscalls = 0;
    double native_cycles = 0;
    double idle_cycles = 0;
};

/**
 * The guest-visible OS state a checkpoint must carry: everything a
 * syscall result can depend on. Virtual time matters because the Time
 * service returns it — a resumed run must see the clock where the
 * interrupted run left it or its console output diverges. Cycle
 * accounting (native/idle) is deliberately absent: it is reporting,
 * not guest-visible, and a resumed run accounts only its own work.
 */
struct OsSnapshot
{
    std::string console;
    uint64_t alloc_next = 0;
    uint32_t brk = 0;
    uint32_t handler_eip = 0;
    double virtual_time_us = 0;
    uint64_t syscalls = 0;
};

/** Shared machinery of both simulated personalities. */
class SimOsBase
{
  public:
    explicit SimOsBase(mem::Memory &memory);
    virtual ~SimOsBase() = default;

    /** The BTOS vtable to hand to BTGeneric. */
    BtOsVtable vtable();

    /** Console output captured from guest writes. */
    const std::string &consoleOutput() const { return console_; }

    const OsStats &stats() const { return stats_; }
    int32_t exitCode() const { return exit_code_; }

    /** Hook the runtime installs so native/idle cycles reach Figure 7. */
    void
    setCycleSink(std::function<void(ipf::Bucket, double)> sink)
    {
        sink_ = std::move(sink);
    }

    virtual const char *name() const = 0;

    /** Trap vector this OS uses for system calls. */
    virtual uint8_t intVector() const = 0;

    /** Capture the guest-visible OS state for a checkpoint. */
    OsSnapshot
    snapshot() const
    {
        return {console_, alloc_next_, brk_, handler_eip_,
                virtual_time_us_, stats_.syscalls};
    }

    /** Restore a snapshot into this (freshly constructed) personality. */
    void
    restore(const OsSnapshot &s)
    {
        console_ = s.console;
        alloc_next_ = s.alloc_next;
        brk_ = s.brk;
        handler_eip_ = s.handler_eip;
        virtual_time_us_ = s.virtual_time_us;
        stats_.syscalls = s.syscalls;
    }

  protected:
    /** Decode (service, args) from the guest state per the OS ABI. */
    virtual Service decodeService(const ia32::State &state,
                                  uint32_t args[3]) = 0;

    /** Write the service result back per the OS ABI. */
    virtual void writeResult(ia32::State &state, uint32_t result) = 0;

    SyscallResult dispatch(ia32::State &state, uint8_t vector);
    ExceptionDisposition deliver(ia32::State &state,
                                 const ia32::Fault &fault);
    uint64_t allocPages(uint64_t bytes);
    void charge(ipf::Bucket bucket, double cycles);

    mem::Memory &mem_;
    std::string console_;
    OsStats stats_;
    std::function<void(ipf::Bucket, double)> sink_;
    uint64_t alloc_next_ = 0xe8000000; //!< OS-chosen mmap region.
    uint32_t brk_ = guest::Layout::heap_base;
    uint32_t handler_eip_ = 0;         //!< Registered exception handler.
    int32_t exit_code_ = 0;
    double virtual_time_us_ = 0;

  private:
    friend struct VtableThunks;
};

/** The Linux personality: INT 0x80, register-passed arguments. */
class SimLinux final : public SimOsBase
{
  public:
    using SimOsBase::SimOsBase;
    const char *name() const override { return "sim-linux"; }
    uint8_t intVector() const override { return linux_abi::int_vector; }

  protected:
    Service decodeService(const ia32::State &state,
                          uint32_t args[3]) override;
    void writeResult(ia32::State &state, uint32_t result) override;
};

/** The Windows personality: INT 0x2e, argument block in memory. */
class SimWindows final : public SimOsBase
{
  public:
    using SimOsBase::SimOsBase;
    const char *name() const override { return "sim-windows"; }
    uint8_t intVector() const override { return windows_abi::int_vector; }

  protected:
    Service decodeService(const ia32::State &state,
                          uint32_t args[3]) override;
    void writeResult(ia32::State &state, uint32_t result) override;
};

} // namespace el::btlib

#endif // EL_BTLIB_OS_SIM_HH
