# Empty compiler generated dependencies file for el_ia32.
# This may be replaced when dependencies are built.
