/**
 * @file
 * Tests for the persistent translation-artifact store: fingerprint
 * sensitivity, save/load round trips, warm-start determinism against a
 * cold run across pipeline thread counts, SMC invalidation of loaded
 * artifacts, the hardened loader's corruption matrix (truncation, bit
 * flips, bad magic, bad version — always a clean cold fallback, never
 * a crash or silently wrong code), and `el_aot`-style validation
 * scrubbing a store poisoned by an injected miscompile.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "guest/workloads.hh"
#include "harness/exec.hh"
#include "persist/store.hh"
#include "support/faultinject.hh"
#include "support/profile.hh"
#include "support/sentinel.hh"
#include "support/strfmt.hh"

namespace el
{
namespace
{

namespace fs = std::filesystem;
using guest::Workload;

/** Small integer kernel: a few hot traces, quick to replay. */
Workload
victim()
{
    guest::WorkloadParams p;
    p.outer_iters = 6;
    p.size = 150;
    return guest::buildMatrix("persist_victim", p);
}

core::Options
baseOpts(unsigned threads = 0)
{
    core::Options o;
    o.heat_threshold = 16;
    o.hot_batch = 1;
    o.translation_threads = threads;
    o.deterministic_adoption = threads > 0;
    return o;
}

/** A scratch directory under the gtest temp root, wiped on scope exit. */
struct TempDir
{
    fs::path path;
    explicit TempDir(const std::string &tag)
        : path(fs::path(::testing::TempDir()) / ("el_persist_" + tag))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
    std::string str() const { return path.string(); }
};

/** Cold run with a recording store attached; returns the run. */
harness::TranslatedRun
coldRunInto(persist::ArtifactStore &store, const Workload &w,
            core::Options opts = baseOpts())
{
    store.resetFingerprint(persist::fingerprintOf(w.image, opts));
    opts.persist = &store;
    return harness::runTranslated(w.image, w.params.abi, opts);
}

/**
 * The architectural subset of the profiler's counters: block
 * executions, conditional edges, indirect target counts. Warm and cold
 * runs must agree on these exactly; lookup hit/miss ratios and the
 * via_link/via_dispatch split reflect translation phase and are
 * legitimately different.
 */
std::string
archProfSignature(const prof::Profiler &p)
{
    std::string s;
    for (const auto &[entry, execs] : p.blockExecs())
        s += strfmt("B %08x %llu\n", entry,
                    static_cast<unsigned long long>(execs));
    for (const auto &[ip, cs] : p.condSites())
        s += strfmt("C %08x %llu %llu\n", ip,
                    static_cast<unsigned long long>(cs.taken),
                    static_cast<unsigned long long>(cs.fall));
    for (const auto &[ip, site] : p.indirectSites())
        for (const prof::TargetCount &t : site.targets)
            s += strfmt("I %08x -> %08x %llu\n", ip, t.target,
                        static_cast<unsigned long long>(t.count));
    return s;
}

bool
sameGuestOutcome(const harness::Outcome &a, const harness::Outcome &b,
                 std::string *why = nullptr)
{
    if (a.exited != b.exited || a.exit_code != b.exit_code ||
        a.console != b.console) {
        if (why)
            *why = "exit/console mismatch";
        return false;
    }
    return a.final_state.equalsArch(b.final_state, why);
}

// ----- fingerprint -------------------------------------------------------

TEST(PersistFingerprint, SensitiveToImageAndEmissionOptions)
{
    Workload w = victim();
    core::Options opts;
    persist::Fingerprint base = persist::fingerprintOf(w.image, opts);

    // Same inputs → same fingerprint (it keys the store file).
    EXPECT_TRUE(base == persist::fingerprintOf(w.image, opts));

    // A different guest program must miss.
    guest::WorkloadParams p;
    p.outer_iters = 7;
    p.size = 151;
    Workload other = guest::buildMatrix("persist_other", p);
    EXPECT_NE(base.image_hash,
              persist::fingerprintOf(other.image, opts).image_hash);

    // An emission-relevant toggle changes the options hash...
    core::Options reshaped = opts;
    reshaped.max_trace_blocks = opts.max_trace_blocks + 1;
    EXPECT_NE(base.opts_hash,
              persist::fingerprintOf(w.image, reshaped).opts_hash);

    // ...but thresholds, thread counts and capacities must NOT: an
    // `el_aot`-built store (aggressive heating) serves a default run.
    core::Options retimed = opts;
    retimed.heat_threshold = 4;
    retimed.hot_batch = 1;
    retimed.translation_threads = 4;
    retimed.code_cache_capacity = opts.code_cache_capacity / 2;
    EXPECT_TRUE(base == persist::fingerprintOf(w.image, retimed));
}

// ----- round trip --------------------------------------------------------

TEST(PersistStore, SaveLoadRoundTrip)
{
    TempDir dir("roundtrip");
    Workload w = victim();
    persist::ArtifactStore store;
    coldRunInto(store, w);
    ASSERT_GT(store.recordCount(), 0u);
    ASSERT_TRUE(store.save(dir.str()));

    persist::ArtifactStore loaded(store.fingerprint());
    ASSERT_TRUE(loaded.load(dir.str()));
    EXPECT_EQ(store.recordCount(), loaded.recordCount());
    EXPECT_EQ(loaded.stats.get("persist.rejected_crc"), 0u);
    EXPECT_EQ(loaded.stats.get("persist.rejected_invalid"), 0u);

    // Byte-exact content check: save→load→save must be a fixed point.
    TempDir dir2("roundtrip2");
    ASSERT_TRUE(loaded.save(dir2.str()));
    std::ifstream a(store.pathIn(dir.str()), std::ios::binary);
    std::ifstream b(loaded.pathIn(dir2.str()), std::ios::binary);
    std::string abytes((std::istreambuf_iterator<char>(a)),
                       std::istreambuf_iterator<char>());
    std::string bbytes((std::istreambuf_iterator<char>(b)),
                       std::istreambuf_iterator<char>());
    ASSERT_FALSE(abytes.empty());
    EXPECT_EQ(abytes, bbytes);
}

TEST(PersistStore, FingerprintMismatchLoadsNothing)
{
    TempDir dir("fpmiss");
    Workload w = victim();
    persist::ArtifactStore store;
    coldRunInto(store, w);
    ASSERT_TRUE(store.save(dir.str()));

    // A store keyed differently must not see the file at all.
    persist::Fingerprint other = store.fingerprint();
    other.opts_hash ^= 1;
    persist::ArtifactStore wrong(other);
    EXPECT_FALSE(wrong.load(dir.str()));
    EXPECT_EQ(wrong.recordCount(), 0u);

    // Same path, forced: the header check still rejects it.
    persist::ArtifactStore forced(other);
    EXPECT_FALSE(forced.loadFile(store.pathIn(dir.str())));
    EXPECT_EQ(forced.recordCount(), 0u);
    EXPECT_GE(forced.stats.get("persist.rejected_fingerprint"), 1u);
}

// ----- warm-start determinism -------------------------------------------

TEST(PersistWarmStart, BitExactAcrossThreadCounts)
{
    TempDir dir("warm");
    Workload w = victim();

    // Cold reference run (no store) — the answer everything must match.
    prof::Profiler cold_prof;
    core::Options cold_opts = baseOpts();
    cold_opts.profiler = &cold_prof;
    harness::TranslatedRun cold =
        harness::runTranslated(w.image, w.params.abi, cold_opts);
    ASSERT_TRUE(cold.outcome.exited);
    std::string cold_sig = archProfSignature(cold_prof);
    ASSERT_FALSE(cold_sig.empty());

    // Populate the store once.
    persist::ArtifactStore writer;
    coldRunInto(writer, w);
    ASSERT_GT(writer.recordCount(), 0u);
    ASSERT_TRUE(writer.save(dir.str()));

    for (unsigned threads : {0u, 1u, 4u}) {
        core::Options opts = baseOpts(threads);
        persist::ArtifactStore store(
            persist::fingerprintOf(w.image, opts));
        ASSERT_TRUE(store.load(dir.str())) << "threads=" << threads;
        opts.persist = &store;
        prof::Profiler warm_prof;
        opts.profiler = &warm_prof;
        harness::TranslatedRun warm =
            harness::runTranslated(w.image, w.params.abi, opts);

        std::string why;
        EXPECT_TRUE(sameGuestOutcome(cold.outcome, warm.outcome, &why))
            << "threads=" << threads << ": " << why;

        // The warm run must actually be warm: artifacts adopted, and
        // no hot translation left for the covered entries.
        EXPECT_GT(store.stats.get("persist.hits"), 0u)
            << "threads=" << threads;
        uint64_t hits = store.stats.get("persist.hits");
        uint64_t local =
            warm.runtime->translator().stats.get("xlate.hot_blocks");
        EXPECT_GE(hits * 10, (hits + local) * 9)
            << "threads=" << threads << ": warm reuse below 90% ("
            << hits << " adopted vs " << local << " local)";

        // Architectural profiler counters match the cold run: adopted
        // traces execute exactly like locally built ones.
        // (outcome.guest_insns counts translated-source instructions,
        // which a warm run legitimately avoids — not compared.)
        EXPECT_EQ(cold_sig, archProfSignature(warm_prof))
            << "threads=" << threads;
    }
}

// ----- SMC invalidation of loaded artifacts -----------------------------

TEST(PersistWarmStart, SmcGuardsApplyToLoadedArtifacts)
{
    // jit_rewriter patches its own code mid-run. A warm run adopting
    // pre-SMC artifacts must invalidate them exactly like live ones and
    // still produce the interpreter's answer.
    Workload w;
    for (Workload &cand : guest::adversarialSuite())
        if (cand.name == "jit_rewriter")
            w = std::move(cand);
    ASSERT_FALSE(w.name.empty());

    harness::Outcome oracle =
        harness::runInterpreter(w.image, w.params.abi);
    ASSERT_TRUE(oracle.exited);

    TempDir dir("smc");
    persist::ArtifactStore writer;
    harness::TranslatedRun cold = coldRunInto(writer, w);
    std::string why;
    ASSERT_TRUE(sameGuestOutcome(oracle, cold.outcome,
                                 &why))
        << why;
    ASSERT_TRUE(writer.save(dir.str()));

    core::Options opts = baseOpts();
    persist::ArtifactStore store(persist::fingerprintOf(w.image, opts));
    ASSERT_TRUE(store.load(dir.str()));
    opts.persist = &store;
    harness::TranslatedRun warm =
        harness::runTranslated(w.image, w.params.abi, opts);
    EXPECT_TRUE(sameGuestOutcome(oracle, warm.outcome,
                                 &why))
        << why;
    // The guards must have actually fired on the warm side too: either
    // stale records were rejected at adoption or invalidated after.
    EXPECT_GT(store.stats.get("persist.smc_rejected") +
                  warm.runtime->translator().stats.get(
                      "smc.invalidations"),
              0u);
}

// ----- corruption matrix ------------------------------------------------

class PersistCorruption : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        w_ = victim();
        dir_ = std::make_unique<TempDir>("corrupt");
        persist::ArtifactStore store;
        coldRunInto(store, w_);
        ASSERT_GT(store.recordCount(), 0u);
        ASSERT_TRUE(store.save(dir_->str()));
        fp_ = store.fingerprint();
        path_ = store.pathIn(dir_->str());
        std::ifstream f(path_, std::ios::binary);
        bytes_.assign((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
        ASSERT_GT(bytes_.size(), 64u);
    }

    void
    rewrite(const std::string &bytes)
    {
        std::ofstream f(path_, std::ios::binary | std::ios::trunc);
        f.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size()));
    }

    /** Load must survive, and a warm run over whatever loaded must
     *  still match a cold run — corrupt stores degrade, never lie. */
    void
    expectGracefulFallback(const char *what)
    {
        persist::ArtifactStore store(fp_);
        (void)store.load(dir_->str()); // may load 0..n records
        core::Options opts = baseOpts();
        opts.persist = &store;
        harness::TranslatedRun warm =
            harness::runTranslated(w_.image, w_.params.abi, opts);
        harness::TranslatedRun cold =
            harness::runTranslated(w_.image, w_.params.abi, baseOpts());
        std::string why;
        EXPECT_TRUE(sameGuestOutcome(cold.outcome, warm.outcome, &why))
            << what << ": " << why;
    }

    Workload w_;
    std::unique_ptr<TempDir> dir_;
    persist::Fingerprint fp_;
    std::string path_;
    std::string bytes_;
};

TEST_F(PersistCorruption, TruncatedFile)
{
    for (size_t keep :
         {size_t(0), size_t(10), size_t(36), bytes_.size() / 2,
          bytes_.size() - 3}) {
        rewrite(bytes_.substr(0, keep));
        persist::ArtifactStore store(fp_);
        (void)store.load(dir_->str());
        EXPECT_LT(store.recordCount(), 100000u); // merely: no crash
    }
    rewrite(bytes_.substr(0, bytes_.size() / 2));
    expectGracefulFallback("truncated");
}

TEST_F(PersistCorruption, FlippedPayloadByteFailsCrc)
{
    std::string mutated = bytes_;
    mutated[mutated.size() / 2] ^= 0x40;
    rewrite(mutated);
    persist::ArtifactStore store(fp_);
    (void)store.load(dir_->str());
    EXPECT_GE(store.stats.get("persist.rejected_crc") +
                  store.stats.get("persist.rejected_magic") +
                  store.stats.get("persist.rejected_truncated") +
                  store.stats.get("persist.rejected_invalid"),
              1u);
    expectGracefulFallback("bit flip");
}

TEST_F(PersistCorruption, BadMagicRejectsFile)
{
    std::string mutated = bytes_;
    mutated[0] = 'X';
    rewrite(mutated);
    persist::ArtifactStore store(fp_);
    EXPECT_FALSE(store.load(dir_->str()));
    EXPECT_EQ(store.recordCount(), 0u);
    EXPECT_GE(store.stats.get("persist.rejected_header"), 1u);
    expectGracefulFallback("bad magic");
}

TEST_F(PersistCorruption, BadVersionRejectsFile)
{
    std::string mutated = bytes_;
    mutated[4] = char(0x7f); // version field, little-endian low byte
    rewrite(mutated);
    persist::ArtifactStore store(fp_);
    EXPECT_FALSE(store.load(dir_->str()));
    EXPECT_EQ(store.recordCount(), 0u);
    EXPECT_GE(store.stats.get("persist.rejected_header"), 1u);
    expectGracefulFallback("bad version");
}

TEST_F(PersistCorruption, RandomByteFlipsNeverCrash)
{
    // Deterministic sweep over positions; every mutation must load
    // without crashing and never exceed the original record count.
    persist::ArtifactStore clean(fp_);
    ASSERT_TRUE(clean.loadFile(path_));
    size_t n_clean = clean.recordCount();
    for (size_t pos = 0; pos < bytes_.size();
         pos += 1 + bytes_.size() / 97) {
        std::string mutated = bytes_;
        mutated[pos] ^= 0x5a;
        rewrite(mutated);
        persist::ArtifactStore store(fp_);
        (void)store.load(dir_->str());
        EXPECT_LE(store.recordCount(), n_clean) << "pos=" << pos;
    }
}

// ----- fault-injection site ---------------------------------------------

TEST(PersistFaults, StoreCorruptSiteIsCaughtOnReload)
{
    TempDir dir("faultsite");
    Workload w = victim();
    core::Options opts = baseOpts();
    opts.fault.seed = 7;
    opts.fault.site(FaultSite::StoreCorrupt, 1024);
    persist::ArtifactStore store;
    coldRunInto(store, w, opts);
    ASSERT_GT(store.recordCount(), 0u);
    // save() runs while the runtime's injector is still installed in
    // real CLI flows; install one explicitly here.
    FaultInjectorScope scope(opts.fault);
    ASSERT_TRUE(store.save(dir.str()));
    ASSERT_GE(scope.get()->fires(FaultSite::StoreCorrupt), 1u);

    persist::ArtifactStore reload(store.fingerprint());
    (void)reload.load(dir.str());
    EXPECT_LT(reload.recordCount(), store.recordCount());
    EXPECT_GE(reload.stats.get("persist.rejected_crc") +
                  reload.stats.get("persist.rejected_magic") +
                  reload.stats.get("persist.rejected_truncated") +
                  reload.stats.get("persist.rejected_invalid"),
              1u);
}

// ----- el_aot-style validation scrubs poisoned stores -------------------

TEST(PersistValidation, MiscompiledArtifactsNeverSealed)
{
    TempDir dir("scrub");
    Workload w = victim();
    harness::Outcome oracle =
        harness::runInterpreter(w.image, w.params.abi);
    ASSERT_TRUE(oracle.exited);

    // Discovery run with worker-side miscompile injection: corrupted
    // staging is recorded into the store before publication.
    core::Options poison = baseOpts(1);
    poison.fault.seed = 3;
    poison.fault.site(FaultSite::Miscompile, 128);
    persist::ArtifactStore store;
    coldRunInto(store, w, poison);
    if (store.recordCount() == 0)
        GTEST_SKIP() << "no artifacts survived discovery";

    // Validation run: adopt everything under a shadow-check-everything
    // sentinel; convicted artifacts leave the store via quarantine.
    core::Options vopts = baseOpts();
    vopts.max_run_cycles *= 10;
    sentinel::Config scfg;
    scfg.selfcheck_rate = 1;
    sentinel::Sentinel sent(scfg);
    vopts.sentinel = &sent;
    vopts.persist = &store;
    harness::TranslatedRun validation =
        harness::runTranslated(w.image, w.params.abi, vopts);
    std::string why;
    ASSERT_TRUE(sameGuestOutcome(oracle,
                                 validation.outcome, &why))
        << "validation run must repair to the oracle answer: " << why;
    store.seal();
    ASSERT_TRUE(store.save(dir.str()));

    // Whatever was sealed must reproduce the oracle bit-for-bit.
    core::Options wopts = baseOpts();
    persist::ArtifactStore sealed(
        persist::fingerprintOf(w.image, wopts));
    (void)sealed.load(dir.str());
    wopts.persist = &sealed;
    harness::TranslatedRun warm =
        harness::runTranslated(w.image, w.params.abi, wopts);
    EXPECT_TRUE(
        sameGuestOutcome(oracle, warm.outcome, &why))
        << why;
}

// ----- crash consistency: the hot-artifact journal ----------------------

/** Cold run with an open journal attached; the runtime flushes at
 *  adoption boundaries and closeJournal() flushes the tail. */
harness::TranslatedRun
journaledRunInto(persist::ArtifactStore &store, const TempDir &dir,
                 const Workload &w)
{
    store.resetFingerprint(persist::fingerprintOf(w.image, baseOpts()));
    EXPECT_TRUE(store.openJournal(dir.str()));
    core::Options opts = baseOpts();
    opts.persist = &store;
    harness::TranslatedRun run =
        harness::runTranslated(w.image, w.params.abi, opts);
    store.closeJournal();
    return run;
}

TEST(PersistJournal, ReplayRoundTrip)
{
    TempDir dir("journal_rt");
    Workload w = victim();
    persist::ArtifactStore writer;
    journaledRunInto(writer, dir, w);
    ASSERT_GT(writer.recordCount(), 0u);
    // Nothing but the journal is on disk: the run never called save().
    ASSERT_FALSE(fs::exists(writer.pathIn(dir.str())));
    ASSERT_TRUE(fs::exists(writer.journalPathIn(dir.str())));

    // A fresh store recovers every journaled record by replay alone.
    persist::ArtifactStore replayed(writer.fingerprint());
    ASSERT_TRUE(replayed.load(dir.str()));
    EXPECT_EQ(replayed.recordCount(), writer.recordCount());
    EXPECT_EQ(replayed.journalReplayed(), writer.recordCount());
    EXPECT_EQ(replayed.stats.get("persist.rejected_truncated"), 0u);
    EXPECT_EQ(replayed.stats.get("persist.rejected_crc"), 0u);

    // Compaction folds the journal into the .elstore and removes it;
    // a third store then loads the same record set from the file.
    ASSERT_TRUE(replayed.compact(dir.str()));
    EXPECT_TRUE(fs::exists(replayed.pathIn(dir.str())));
    EXPECT_FALSE(fs::exists(replayed.journalPathIn(dir.str())));
    persist::ArtifactStore compacted(writer.fingerprint());
    ASSERT_TRUE(compacted.load(dir.str()));
    EXPECT_EQ(compacted.recordCount(), writer.recordCount());

    // And the recovered artifacts behave: warm run matches cold.
    core::Options wopts = baseOpts();
    wopts.persist = &compacted;
    harness::TranslatedRun warm =
        harness::runTranslated(w.image, w.params.abi, wopts);
    harness::TranslatedRun cold =
        harness::runTranslated(w.image, w.params.abi, baseOpts());
    std::string why;
    EXPECT_TRUE(sameGuestOutcome(cold.outcome, warm.outcome, &why))
        << why;
    EXPECT_GT(compacted.stats.get("persist.hits"), 0u);
}

TEST(PersistJournal, DropFramesReplayAsDeletions)
{
    TempDir dir("journal_drop");
    Workload w = victim();
    persist::ArtifactStore writer;
    harness::TranslatedRun run = journaledRunInto(writer, dir, w);
    ASSERT_GT(writer.recordCount(), 1u);

    // Quarantine-style drop of one hot entry, journaled like any other
    // mutation (reopen: closeJournal already folded the run's frames —
    // openJournal truncates, so compact first to keep them).
    ASSERT_TRUE(writer.compact(dir.str()));
    ASSERT_TRUE(writer.openJournal(dir.str()));
    uint32_t victim_eip = 0;
    for (const auto &bi : run.runtime->translator().allBlocks())
        if (bi && bi->kind == core::BlockKind::Hot &&
            writer.hasRecordsAt(bi->entry_eip)) {
            victim_eip = bi->entry_eip;
            break;
        }
    ASSERT_NE(victim_eip, 0u);
    size_t before = writer.recordCount();
    writer.dropAt(victim_eip);
    writer.closeJournal();

    // Replay = store file + journal: the drop wins over the compacted
    // record, exactly as it won in memory.
    persist::ArtifactStore replayed(writer.fingerprint());
    ASSERT_TRUE(replayed.load(dir.str()));
    EXPECT_EQ(replayed.recordCount(), writer.recordCount());
    EXPECT_LT(replayed.recordCount(), before);
    EXPECT_FALSE(replayed.hasRecordsAt(victim_eip));
}

TEST(PersistJournal, TruncationSweepRecoversEveryIntactPrefix)
{
    TempDir dir("journal_trunc");
    Workload w = victim();
    persist::ArtifactStore writer;
    journaledRunInto(writer, dir, w);
    ASSERT_GT(writer.recordCount(), 0u);

    std::string jpath = writer.journalPathIn(dir.str());
    std::ifstream f(jpath, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 28u); // journal header

    // Walk the frame layout: boundaries[i] = offset just after frame i.
    // u32 magic | u8 kind | u32 len | u32 crc | payload[len]
    std::vector<size_t> boundaries{28};
    std::vector<size_t> adds_before{0}; // add-frames before boundary i
    size_t off = 28, adds = 0;
    while (off < bytes.size()) {
        ASSERT_GE(bytes.size() - off, 13u) << "writer left a torn tail";
        uint8_t kind = static_cast<uint8_t>(bytes[off + 4]);
        uint32_t len;
        std::memcpy(&len, bytes.data() + off + 5, 4);
        ASSERT_EQ(kind, 0u) << "unexpected drop frame in a pure run";
        off += 13 + len;
        ASSERT_LE(off, bytes.size());
        ++adds;
        boundaries.push_back(off);
        adds_before.push_back(adds);
    }
    ASSERT_EQ(adds, writer.recordCount());

    auto truncateTo = [&](size_t keep) {
        std::ofstream out(jpath, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(keep));
    };

    // Every frame boundary, and one byte either side of it: the intact
    // prefix always recovers, a cut tail costs exactly one
    // rejected_truncated, and a clean cut costs none.
    for (size_t i = 0; i < boundaries.size(); ++i) {
        for (int delta : {-1, 0, 1}) {
            size_t cut = boundaries[i] + static_cast<size_t>(delta);
            if (cut > bytes.size())
                continue;
            truncateTo(cut);
            persist::ArtifactStore store(writer.fingerprint());
            (void)store.load(dir.str());
            SCOPED_TRACE("cut=" + std::to_string(cut));
            if (cut < 28) {
                // Inside the journal header: the whole file is
                // rejected, nothing loads.
                EXPECT_EQ(store.recordCount(), 0u);
                EXPECT_GE(store.stats.get(
                              "persist.journal_rejected_header"),
                          1u);
                continue;
            }
            // Complete frames fully below the cut all recover...
            size_t complete = 0;
            for (size_t k = 0; k < boundaries.size(); ++k)
                if (boundaries[k] <= cut)
                    complete = adds_before[k];
            EXPECT_EQ(store.recordCount(), complete);
            // ...and the tail costs exactly one truncation rejection
            // when (and only when) the cut is not a frame boundary.
            bool exact = delta == 0;
            EXPECT_EQ(store.stats.get("persist.rejected_truncated"),
                      exact ? 0u : 1u);
            EXPECT_EQ(store.stats.get("persist.rejected_crc"), 0u);
            EXPECT_EQ(store.stats.get("persist.rejected_invalid"), 0u);
        }
    }
}

// ----- seal semantics ---------------------------------------------------

TEST(PersistStore, SealedStoreRefusesNewRecords)
{
    Workload w = victim();
    persist::ArtifactStore store;
    coldRunInto(store, w);
    size_t n = store.recordCount();
    ASSERT_GT(n, 0u);
    store.seal();
    // A further recording run must not grow the sealed store.
    core::Options opts = baseOpts();
    opts.persist = &store;
    harness::runTranslated(w.image, w.params.abi, opts);
    EXPECT_EQ(store.recordCount(), n);
}

} // namespace
} // namespace el
