
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cc" "src/core/CMakeFiles/el_core.dir/analysis.cc.o" "gcc" "src/core/CMakeFiles/el_core.dir/analysis.cc.o.d"
  "/root/repo/src/core/emit_env.cc" "src/core/CMakeFiles/el_core.dir/emit_env.cc.o" "gcc" "src/core/CMakeFiles/el_core.dir/emit_env.cc.o.d"
  "/root/repo/src/core/emit_env_state.cc" "src/core/CMakeFiles/el_core.dir/emit_env_state.cc.o" "gcc" "src/core/CMakeFiles/el_core.dir/emit_env_state.cc.o.d"
  "/root/repo/src/core/il.cc" "src/core/CMakeFiles/el_core.dir/il.cc.o" "gcc" "src/core/CMakeFiles/el_core.dir/il.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/core/CMakeFiles/el_core.dir/runtime.cc.o" "gcc" "src/core/CMakeFiles/el_core.dir/runtime.cc.o.d"
  "/root/repo/src/core/sched.cc" "src/core/CMakeFiles/el_core.dir/sched.cc.o" "gcc" "src/core/CMakeFiles/el_core.dir/sched.cc.o.d"
  "/root/repo/src/core/templates.cc" "src/core/CMakeFiles/el_core.dir/templates.cc.o" "gcc" "src/core/CMakeFiles/el_core.dir/templates.cc.o.d"
  "/root/repo/src/core/templates_fp.cc" "src/core/CMakeFiles/el_core.dir/templates_fp.cc.o" "gcc" "src/core/CMakeFiles/el_core.dir/templates_fp.cc.o.d"
  "/root/repo/src/core/translator.cc" "src/core/CMakeFiles/el_core.dir/translator.cc.o" "gcc" "src/core/CMakeFiles/el_core.dir/translator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/el_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/el_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ia32/CMakeFiles/el_ia32.dir/DependInfo.cmake"
  "/root/repo/build/src/ipf/CMakeFiles/el_ipf.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/el_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/btlib/CMakeFiles/el_btlib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
