#include "guest/workloads.hh"

#include "ia32/assembler.hh"
#include "support/logging.hh"

namespace el::guest
{

using btlib::OsAbi;
using ia32::Assembler;
using ia32::Cond;
using ia32::Label;
using ia32::Op;
using namespace ia32;

namespace
{

constexpr uint32_t scratch_abi = Layout::data_base + 0xff00;

/** exit(eax & 0xff) under either personality. */
void
emitExit(Assembler &as, OsAbi abi)
{
    as.aluRI(Op::And, RegEax, 0xff);
    if (abi == OsAbi::Linux) {
        as.movRR(RegEbx, RegEax);
        as.movRI(RegEax, btlib::linux_abi::nr_exit);
        as.intN(btlib::linux_abi::int_vector);
    } else {
        as.movRI(RegEdx, scratch_abi);
        as.movMR(memb(RegEdx, 0), RegEax);
        as.movRI(RegEax, btlib::windows_abi::nr_terminate);
        as.intN(btlib::windows_abi::int_vector);
    }
}

/** kernel_work(units): spend native time in the OS. */
void
emitKernelWork(Assembler &as, OsAbi abi, uint32_t units)
{
    as.pushR(RegEax);
    as.pushR(RegEbx);
    as.pushR(RegEcx);
    as.pushR(RegEdx);
    if (abi == OsAbi::Linux) {
        as.movRI(RegEax, btlib::linux_abi::nr_kernel_work);
        as.movRI(RegEbx, units);
        as.intN(btlib::linux_abi::int_vector);
    } else {
        as.movRI(RegEdx, scratch_abi);
        as.movMI(memb(RegEdx, 0), units);
        as.movRI(RegEax, btlib::windows_abi::nr_kernel_work);
        as.intN(btlib::windows_abi::int_vector);
    }
    as.popR(RegEdx);
    as.popR(RegEcx);
    as.popR(RegEbx);
    as.popR(RegEax);
}

void
emitYield(Assembler &as, OsAbi abi)
{
    as.pushR(RegEax);
    as.pushR(RegEbx);
    as.pushR(RegEdx);
    if (abi == OsAbi::Linux) {
        as.movRI(RegEax, btlib::linux_abi::nr_yield);
        as.intN(btlib::linux_abi::int_vector);
    } else {
        as.movRI(RegEdx, scratch_abi);
        as.movRI(RegEax, btlib::windows_abi::nr_yield);
        as.intN(btlib::windows_abi::int_vector);
    }
    as.popR(RegEdx);
    as.popR(RegEbx);
    as.popR(RegEax);
}

Workload
finish(const std::string &name, const char *kernel, WorkloadParams p,
       Assembler &as, uint32_t data_size, bool writable_code = false)
{
    Workload w;
    w.name = name;
    w.kernel = kernel;
    w.params = p;
    w.image.name = name;
    w.image.entry = as.base();
    w.image.addCode(as.base(), as.finish(), writable_code);
    w.image.addData(Layout::data_base, data_size);
    return w;
}

/** register_handler(eip) under either personality. */
void
emitSetHandler(Assembler &as, OsAbi abi, uint32_t handler_eip)
{
    if (abi == OsAbi::Linux) {
        as.movRI(RegEax, btlib::linux_abi::nr_set_handler);
        as.movRI(RegEbx, handler_eip);
        as.intN(btlib::linux_abi::int_vector);
    } else {
        as.movRI(RegEdx, scratch_abi);
        as.movMI(memb(RegEdx, 0), handler_eip);
        as.movRI(RegEax, btlib::windows_abi::nr_set_handler);
        as.intN(btlib::windows_abi::int_vector);
    }
}

} // namespace

Workload
buildStream(const std::string &name, WorkloadParams p)
{
    Assembler as(Layout::code_base);
    uint32_t data = Layout::data_base + p.misaligned;
    uint32_t table = Layout::data_base + 0x40000;

    // Init: buffer bytes + 256-entry lookup table.
    as.movRI(RegEcx, p.size);
    Label init = as.label();
    as.bind(init);
    as.movRR(RegEax, RegEcx);
    as.imulRM(RegEax, memabs(Layout::data_base + 0xff80)); // zero; cheap
    as.aluRR(Op::Add, RegEax, RegEcx);
    as.movRI(RegEbx, data);
    as.movMR8(membi(RegEbx, RegEcx, 1, -1), RegAl);
    as.decR(RegEcx);
    as.jcc(Cond::NE, init);
    as.movRI(RegEcx, 256);
    Label init2 = as.label();
    as.bind(init2);
    as.movRR(RegEax, RegEcx);
    as.imulRR(RegEax, RegEcx);
    as.shiftRI(Op::Shl, RegEax, 2);
    as.aluRR(Op::Add, RegEax, RegEcx);
    as.movRI(RegEbx, table);
    as.movMR(membi(RegEbx, RegEcx, 4, -4), RegEax);
    as.decR(RegEcx);
    as.jcc(Cond::NE, init2);

    // Outer loop.
    as.movRI(RegEdi, p.outer_iters);
    Label outer = as.label();
    as.bind(outer);
    as.movRI(RegEcx, p.size);
    as.movRI(RegEbx, data);
    as.movRI(RegEsi, table);
    Label inner = as.label();
    as.bind(inner);
    as.movzxRM8(RegEdx, membi(RegEbx, RegEcx, 1, -1));
    as.movRM(RegEdx, membi(RegEsi, RegEdx, 4, 0));
    as.aluRR(Op::Add, RegEax, RegEdx);
    as.shiftRI(Op::Rol, RegEax, 3);
    as.aluRR8(Op::Xor, RegAl, RegDl);
    as.movMR8(membi(RegEbx, RegEcx, 1, -1), RegAl);
    as.decR(RegEcx);
    as.jcc(Cond::NE, inner);
    as.decR(RegEdi);
    as.jcc(Cond::NE, outer);
    emitExit(as, p.abi);
    return finish(name, "stream", p, as, 0x50000);
}

Workload
buildPointerChase(const std::string &name, WorkloadParams p)
{
    Assembler as(Layout::code_base);
    uint32_t data = Layout::data_base;
    // Nodes are 8 bytes: {next:u32, val:u32}. The 32-bit layout is the
    // point: the native 64-bit version has twice the footprint (the mcf
    // effect in Figure 5).
    // next[i] = &node[(i * 7919 + 1) % size]
    as.movRI(RegEcx, p.size);
    Label init = as.label();
    as.bind(init);
    as.lea(RegEax, memb(RegEcx, -1));   // i
    as.imulRR(RegEax, RegEcx);
    as.movRI(RegEdx, 0);
    as.lea(RegEax, membi(RegEax, RegEcx, 8, 7919));
    as.movRI(RegEsi, p.size);
    as.movRI(RegEdx, 0);
    as.divR(RegEsi);                    // edx = hash % size
    as.shiftRI(Op::Shl, RegEdx, 3);
    as.aluRI(Op::Add, RegEdx, data);    // node address
    as.movRI(RegEbx, data);
    as.lea(RegEsi, membi(RegEbx, RegEcx, 8, -8));
    as.movMR(memb(RegEsi, 0), RegEdx);  // next
    as.movMR(memb(RegEsi, 4), RegEcx);  // val
    as.decR(RegEcx);
    as.jcc(Cond::NE, init);

    as.movRI(RegEdi, p.outer_iters);
    as.movRI(RegEdx, 0);
    Label outer = as.label();
    as.bind(outer);
    as.movRI(RegEax, data);
    as.movRI(RegEcx, p.size);
    Label chase = as.label();
    as.bind(chase);
    as.aluRM(Op::Add, RegEdx, memb(RegEax, 4));
    as.movRM(RegEax, memb(RegEax, 0));
    as.decR(RegEcx);
    as.jcc(Cond::NE, chase);
    as.decR(RegEdi);
    as.jcc(Cond::NE, outer);
    as.movRR(RegEax, RegEdx);
    emitExit(as, p.abi);
    return finish(name, "pointer_chase", p, as,
                  p.size * 8 + 0x10000);
}

Workload
buildBranchy(const std::string &name, WorkloadParams p)
{
    Assembler as(Layout::code_base);
    uint32_t table = Layout::data_base + 0x100;

    Label start = as.label();
    as.jmp(start);

    // Four handler functions at recorded addresses.
    uint32_t fn_addrs[4];
    for (int f = 0; f < 4; ++f) {
        while (as.pc() % 16)
            as.nop();
        fn_addrs[f] = as.pc();
        as.aluRI(Op::Add, RegEax, 0x11 * (f + 1));
        as.shiftRI(Op::Ror, RegEax, f + 1);
        as.ret();
    }

    as.bind(start);
    // Install the function table.
    for (int f = 0; f < 4; ++f)
        as.movMI(memabs(table + 4 * f), fn_addrs[f]);

    as.movRI(RegEdi, p.outer_iters);
    as.movRI(RegEax, 0x12345678);
    Label outer = as.label();
    as.bind(outer);
    as.movRI(RegEcx, p.size);
    Label inner = as.label();
    as.bind(inner);
    // LCG step.
    as.movRI(RegEdx, 1103515245);
    as.imulRR(RegEax, RegEdx);
    as.aluRI(Op::Add, RegEax, 12345);
    // Hard-to-predict conditional pattern.
    as.testRI(RegEax, 0x400);
    Label skip1 = as.label();
    as.jcc(Cond::E, skip1);
    as.aluRI(Op::Xor, RegEax, 0x5a5a5a5a);
    as.bind(skip1);
    as.testRI(RegEax, 0x10000);
    Label skip2 = as.label();
    as.jcc(Cond::NE, skip2);
    as.shiftRI(Op::Rol, RegEax, 1);
    as.bind(skip2);
    if (p.indirect_every) {
        // Indirect call through the table, selected by data.
        as.movRR(RegEdx, RegEax);
        as.shiftRI(Op::Shr, RegEdx, 8);
        as.aluRI(Op::And, RegEdx, 3);
        as.movRI(RegEbx, table);
        as.movRM(RegEdx, membi(RegEbx, RegEdx, 4, 0));
        as.callR(RegEdx);
    }
    as.decR(RegEcx);
    as.jcc(Cond::NE, inner);
    as.decR(RegEdi);
    as.jcc(Cond::NE, outer);
    emitExit(as, p.abi);
    return finish(name, "branchy", p, as, 0x10000);
}

Workload
buildParser(const std::string &name, WorkloadParams p)
{
    Assembler as(Layout::code_base);
    uint32_t text = Layout::data_base;

    Label start = as.label();
    as.jmp(start);
    // Helper: small hash of AL into EDX.
    Label helper = as.label();
    as.bind(helper);
    as.movzxRR8(RegEbx, RegAl);
    as.imulRR(RegEdx, RegEbx);
    as.aluRI(Op::Add, RegEdx, 0x9e3779b9);
    as.shiftRI(Op::Ror, RegEdx, 5);
    as.ret();

    as.bind(start);
    // Fill the text buffer with pseudo characters.
    as.movRI(RegEcx, p.size);
    Label init = as.label();
    as.bind(init);
    as.movRR(RegEax, RegEcx);
    as.imulRR(RegEax, RegEcx);
    as.aluRI(Op::And, RegEax, 0x7f);
    as.aluRI(Op::Add, RegEax, 1);
    as.movRI(RegEbx, text);
    as.movMR8(membi(RegEbx, RegEcx, 1, -1), RegAl);
    as.decR(RegEcx);
    as.jcc(Cond::NE, init);

    as.movRI(RegEdi, p.outer_iters);
    as.movRI(RegEdx, 1);
    Label outer = as.label();
    as.bind(outer);
    as.movRI(RegEsi, text);
    as.movRI(RegEcx, p.size);
    Label scan = as.label();
    as.bind(scan);
    as.movzxRM8(RegEax, memb(RegEsi, 0));
    as.incR(RegEsi);
    // Classify: letters / digits / other.
    as.aluRI8(Op::Cmp, RegAl, 0x41);
    Label digits = as.label(), other = as.label(), next = as.label();
    as.jcc(Cond::B, digits);
    as.call(helper);
    as.jmp(next);
    as.bind(digits);
    as.aluRI8(Op::Cmp, RegAl, 0x30);
    as.jcc(Cond::B, other);
    as.aluRR(Op::Add, RegEdx, RegEax);
    as.jmp(next);
    as.bind(other);
    as.aluRI(Op::Xor, RegEdx, 0x55);
    as.bind(next);
    as.decR(RegEcx);
    as.jcc(Cond::NE, scan);
    as.decR(RegEdi);
    as.jcc(Cond::NE, outer);
    as.movRR(RegEax, RegEdx);
    emitExit(as, p.abi);
    return finish(name, "parser", p, as, p.size + 0x10000);
}

Workload
buildMatrix(const std::string &name, WorkloadParams p)
{
    Assembler as(Layout::code_base);
    uint32_t a = Layout::data_base + p.misaligned;
    uint32_t b = a + p.size * 4 + 64;
    uint32_t c = b + p.size * 4 + 64;

    as.movRI(RegEcx, p.size);
    Label init = as.label();
    as.bind(init);
    as.movRR(RegEax, RegEcx);
    as.imulRR(RegEax, RegEcx);
    as.movRI(RegEbx, a);
    as.movMR(membi(RegEbx, RegEcx, 4, -4), RegEax);
    as.aluRI(Op::Add, RegEax, 7);
    as.movRI(RegEbx, b);
    as.movMR(membi(RegEbx, RegEcx, 4, -4), RegEax);
    as.decR(RegEcx);
    as.jcc(Cond::NE, init);

    as.movRI(RegEdi, p.outer_iters);
    Label outer = as.label();
    as.bind(outer);
    as.movRI(RegEcx, p.size);
    Label inner = as.label();
    as.bind(inner);
    as.movRI(RegEbx, a);
    as.movRM(RegEax, membi(RegEbx, RegEcx, 4, -4));
    as.lea(RegEdx, membi(RegEax, RegEax, 2, 0)); // *3
    as.movRI(RegEbx, b);
    as.aluRM(Op::Add, RegEdx, membi(RegEbx, RegEcx, 4, -4));
    as.testRI(RegEcx, 15);
    Label nodiv = as.label();
    as.jcc(Cond::NE, nodiv);
    as.movRR(RegEax, RegEdx);
    as.aluRI(Op::Or, RegEax, 1);
    as.movRR(RegEsi, RegEax);
    as.movRI(RegEdx, 0);
    as.movRI(RegEax, 0x40000000);
    as.divR(RegEsi);
    as.movRR(RegEdx, RegEax);
    as.bind(nodiv);
    as.movRI(RegEbx, c);
    as.movMR(membi(RegEbx, RegEcx, 4, -4), RegEdx);
    as.decR(RegEcx);
    as.jcc(Cond::NE, inner);
    as.movRI(RegEbx, c);
    as.aluRM(Op::Add, RegEax, memb(RegEbx, 0));
    as.decR(RegEdi);
    as.jcc(Cond::NE, outer);
    emitExit(as, p.abi);
    return finish(name, "matrix", p, as, p.size * 12 + 0x10000);
}

Workload
buildBigCode(const std::string &name, WorkloadParams p)
{
    Assembler as(Layout::code_base);
    // `code_copies` distinct medium blocks chained sequentially; the
    // profile is flat, so little of it ever gets hot.
    as.movRI(RegEdi, p.outer_iters);
    as.movRI(RegEax, 1);
    as.movRI(RegEsi, Layout::data_base);
    Label outer = as.label();
    as.bind(outer);
    for (uint32_t cpy = 0; cpy < p.code_copies; ++cpy) {
        as.aluRI(Op::Add, RegEax, 0x1001 + cpy);
        as.movRR(RegEdx, RegEax);
        as.shiftRI(Op::Shr, RegEdx, 3);
        as.aluRR(Op::Xor, RegEax, RegEdx);
        as.movMR(memb(RegEsi, (cpy % 1024) * 4), RegEax);
        as.aluRM(Op::Add, RegEax, memb(RegEsi, ((cpy + 7) % 1024) * 4));
        as.testRI(RegEax, 1 << (cpy % 13));
        Label skip = as.label();
        as.jcc(Cond::E, skip);
        as.aluRI(Op::Sub, RegEax, 3);
        as.bind(skip);
    }
    if (p.kernel_work_units)
        emitKernelWork(as, p.abi, p.kernel_work_units);
    for (uint32_t y = 0; y < p.yields; ++y)
        emitYield(as, p.abi);
    as.decR(RegEdi);
    as.jcc(Cond::NE, outer);
    emitExit(as, p.abi);
    return finish(name, "bigcode", p, as, 0x10000);
}

Workload
buildFpKernel(const std::string &name, WorkloadParams p)
{
    Assembler as(Layout::code_base);
    uint32_t a = Layout::data_base;
    uint32_t b = a + p.size * 8 + 64;
    uint32_t c = b + p.size * 8 + 64;

    // Init doubles via fild of integers.
    as.movRI(RegEcx, p.size);
    Label init = as.label();
    as.bind(init);
    as.movRI(RegEbx, Layout::data_base + 0xff80);
    as.movMR(memb(RegEbx, 0), RegEcx);
    as.fildM32(memb(RegEbx, 0));
    as.movRI(RegEdx, a);
    as.fstM64(membi(RegEdx, RegEcx, 8, -8), false);
    as.movRI(RegEdx, b);
    as.fstM64(membi(RegEdx, RegEcx, 8, -8), true);
    as.decR(RegEcx);
    as.jcc(Cond::NE, init);

    as.movRI(RegEdi, p.outer_iters);
    Label outer = as.label();
    as.bind(outer);
    as.movRI(RegEcx, p.size);
    Label inner = as.label();
    as.bind(inner);
    // The classic stack-top-bound expression tree with fxch traffic:
    // out[i] = a[i]*b[i] + (a[i]+b[i])
    as.movRI(RegEdx, a);
    as.fldM64(membi(RegEdx, RegEcx, 8, -8));
    as.movRI(RegEbx, b);
    as.farithM64(Op::Fmul, membi(RegEbx, RegEcx, 8, -8));
    as.movRI(RegEdx, a);
    as.fldM64(membi(RegEdx, RegEcx, 8, -8));
    as.movRI(RegEbx, b);
    as.farithM64(Op::Fadd, membi(RegEbx, RegEcx, 8, -8));
    as.fxch(1);
    as.farithStiSt0(Op::Fadd, 1, true);
    as.movRI(RegEbx, c);
    as.fstM64(membi(RegEbx, RegEcx, 8, -8), true);
    as.decR(RegEcx);
    as.jcc(Cond::NE, inner);
    as.decR(RegEdi);
    as.jcc(Cond::NE, outer);
    // checksum
    as.movRI(RegEbx, c);
    as.movRM(RegEax, memb(RegEbx, 4));
    emitExit(as, p.abi);
    return finish(name, "fp", p, as, p.size * 24 + 0x10000);
}

Workload
buildSseKernel(const std::string &name, WorkloadParams p)
{
    Assembler as(Layout::code_base);
    uint32_t a = Layout::data_base;
    uint32_t b = a + p.size * 16 + 64;
    uint32_t c = b + p.size * 16 + 64;

    // Init floats via cvtsi2ss + movss.
    as.movRI(RegEcx, p.size * 4);
    Label init = as.label();
    as.bind(init);
    as.cvtsi2ss(0, RegEcx);
    as.movRI(RegEbx, a);
    as.movssMX(membi(RegEbx, RegEcx, 4, -4), 0);
    as.movRI(RegEbx, b);
    as.movssMX(membi(RegEbx, RegEcx, 4, -4), 0);
    as.decR(RegEcx);
    as.jcc(Cond::NE, init);

    as.movRI(RegEdi, p.outer_iters);
    Label outer = as.label();
    as.bind(outer);
    as.movRI(RegEcx, p.size);
    Label inner = as.label();
    as.bind(inner);
    as.movRR(RegEdx, RegEcx);
    as.shiftRI(Op::Shl, RegEdx, 4);
    as.movRI(RegEbx, a - 16);
    as.aluRR(Op::Add, RegEbx, RegEdx);
    as.movapsXM(0, memb(RegEbx, 0));
    as.movRI(RegEsi, b - 16);
    as.aluRR(Op::Add, RegEsi, RegEdx);
    as.movapsXM(1, memb(RegEsi, 0));
    as.sseArithXX(Op::Mulps, 0, 1);
    as.sseArithXX(Op::Addps, 0, 1);
    as.movRI(RegEbx, c - 16);
    as.aluRR(Op::Add, RegEbx, RegEdx);
    as.movapsMX(memb(RegEbx, 0), 0);
    as.decR(RegEcx);
    as.jcc(Cond::NE, inner);
    as.decR(RegEdi);
    as.jcc(Cond::NE, outer);
    as.movRI(RegEbx, c);
    as.movRM(RegEax, memb(RegEbx, 0));
    emitExit(as, p.abi);
    return finish(name, "sse", p, as, p.size * 48 + 0x10000);
}

Workload
buildMmxKernel(const std::string &name, WorkloadParams p)
{
    Assembler as(Layout::code_base);
    uint32_t a = Layout::data_base;
    uint32_t b = a + p.size * 8 + 64;

    as.movRI(RegEcx, p.size * 2);
    Label init = as.label();
    as.bind(init);
    as.movRR(RegEax, RegEcx);
    as.imulRR(RegEax, RegEcx);
    as.movRI(RegEbx, a);
    as.movMR(membi(RegEbx, RegEcx, 4, -4), RegEax);
    as.decR(RegEcx);
    as.jcc(Cond::NE, init);

    as.movRI(RegEdi, p.outer_iters);
    Label outer = as.label();
    as.bind(outer);
    as.movRI(RegEcx, p.size);
    Label inner = as.label();
    as.bind(inner);
    as.movRR(RegEdx, RegEcx);
    as.shiftRI(Op::Shl, RegEdx, 3);
    as.movRI(RegEbx, a - 8);
    as.aluRR(Op::Add, RegEbx, RegEdx);
    as.movqMmM(0, memb(RegEbx, 0));
    as.pArithMmM(Op::Paddb, 0, memb(RegEbx, 0));
    as.pArithMmMm(Op::Pxor, 0, 0);
    as.pArithMmM(Op::Paddw, 0, memb(RegEbx, 0));
    as.movRI(RegEsi, b - 8);
    as.aluRR(Op::Add, RegEsi, RegEdx);
    as.movqMMm(memb(RegEsi, 0), 0);
    as.decR(RegEcx);
    as.jcc(Cond::NE, inner);
    as.decR(RegEdi);
    as.jcc(Cond::NE, outer);
    as.emms();
    as.movRI(RegEbx, b);
    as.movRM(RegEax, memb(RegEbx, 0));
    emitExit(as, p.abi);
    return finish(name, "mmx", p, as, p.size * 16 + 0x10000);
}

Workload
buildOfficeApp(const std::string &name, WorkloadParams p)
{
    return buildBigCode(name, p);
}

Workload
buildSignalStorm(const std::string &name, WorkloadParams p)
{
    Assembler as(Layout::code_base);
    Label start = as.label(), resume = as.label();
    as.jmp(start);

    // Exception handler. Delivery puts kind/addr/eip in eax/ebx/ecx;
    // everything else must still hold the interrupted values. Fold all
    // three into the EBP checksum so an imprecise delivered state (or a
    // wrong resume) changes the exit code.
    while (as.pc() % 16)
        as.nop();
    uint32_t handler_pc = as.pc();
    as.aluRR(Op::Add, RegEbp, RegEcx);
    as.aluRR(Op::Xor, RegEbp, RegEax);
    as.aluRR(Op::Add, RegEbp, RegEbx);
    as.shiftRI(Op::Rol, RegEbp, 1);
    as.jmp(resume);

    as.bind(start);
    emitSetHandler(as, p.abi, handler_pc);
    as.movRI(RegEbp, 0);          // checksum
    as.movRI(RegEdx, 0x1234567);  // LCG state, live across faults
    as.movRI(RegEdi, p.outer_iters);
    Label outer = as.label();
    as.bind(outer);
    as.movRI(RegEsi, p.size);
    Label inner = as.label();
    as.bind(inner);
    // LCG step in EDX (the handler must not disturb it).
    as.movRI(RegEax, 1103515245);
    as.imulRR(RegEdx, RegEax);
    as.aluRI(Op::Add, RegEdx, 12345);
    // Every 4th iteration: fault from the middle of the block, with
    // EDX updates in flight so precise reconstruction is load-bearing.
    as.testRI(RegEsi, 3);
    as.jcc(Cond::NE, resume);
    as.aluRI(Op::Add, RegEdx, 0x111);
    as.shiftRI(Op::Rol, RegEdx, 3);
    as.movRI(RegEbx, 0x40);       // unmapped near-null page
    as.movRM(RegEax, memb(RegEbx, 0)); // #PF -> handler -> resume
    as.bind(resume);
    as.aluRR(Op::Add, RegEbp, RegEdx);
    as.decR(RegEsi);
    as.jcc(Cond::NE, inner);
    as.decR(RegEdi);
    as.jcc(Cond::NE, outer);
    as.movRR(RegEax, RegEbp);
    emitExit(as, p.abi);
    return finish(name, "signal_storm", p, as, 0x10000);
}

Workload
buildJitRewriter(const std::string &name, WorkloadParams p)
{
    Assembler as(Layout::code_base);
    Label start = as.label();
    as.jmp(start);

    // The "jitted" function: add eax, imm32 ; ret (the long 81 /0
    // form — the initial immediate is wide on purpose). The imm32
    // lives at jit_pc + 2 and is rewritten every phase.
    while (as.pc() % 16)
        as.nop();
    uint32_t jit_pc = as.pc();
    as.aluRI(Op::Add, RegEax, 0x11111111);
    as.ret();

    as.bind(start);
    as.movRI(RegEsi, 0);               // checksum
    as.movRI(RegEdi, p.outer_iters);   // phases
    Label phase = as.label();
    as.bind(phase);
    // Rewrite the immediate from the phase counter (SMC on code the
    // previous phase made hot).
    as.movRR(RegEax, RegEdi);
    as.shiftRI(Op::Shl, RegEax, 8);
    as.aluRR(Op::Add, RegEax, RegEdi);
    as.movRI(RegEbx, jit_pc + 2);
    as.movMR(memb(RegEbx, 0), RegEax);
    // Call it in a loop long enough to re-heat every phase.
    as.movRI(RegEcx, p.size);
    as.movRI(RegEax, 0);
    Label calls = as.label();
    as.bind(calls);
    as.callAbs(jit_pc);
    as.decR(RegEcx);
    as.jcc(Cond::NE, calls);
    as.aluRR(Op::Add, RegEsi, RegEax);
    as.decR(RegEdi);
    as.jcc(Cond::NE, phase);
    as.movRR(RegEax, RegEsi);
    emitExit(as, p.abi);
    return finish(name, "jit_rewriter", p, as, 0x10000,
                  /*writable_code=*/true);
}

Workload
buildThreadedSmc(const std::string &name, WorkloadParams p)
{
    Assembler as(Layout::code_base);
    // Cooperative threads with real context switches: each thread has
    // its own stack; a switch saves ESP into the outgoing slot, loads
    // the incoming slot and RETs into the other thread.
    constexpr uint32_t ctx_a = Layout::data_base + 0xf000;
    constexpr uint32_t ctx_b = Layout::data_base + 0xf004;
    constexpr uint32_t b_counter = Layout::data_base + 0xf008;
    constexpr uint32_t stack_b = Layout::data_base + 0xe000;

    Label start = as.label();
    as.jmp(start);

    // Shared function both threads see: add eax, imm32 ; ret (long
    // 81 /0 form; imm32 at shared_pc + 2). Thread B rewrites the
    // immediate while thread A runs the function hot.
    while (as.pc() % 16)
        as.nop();
    uint32_t shared_pc = as.pc();
    as.aluRI(Op::Add, RegEax, 0x11111111);
    as.ret();

    // yield_ab: A -> B (called from A; stack top is A's resume EIP).
    while (as.pc() % 16)
        as.nop();
    uint32_t yield_ab_pc = as.pc();
    as.movRI(RegEbx, ctx_a);
    as.movMR(memb(RegEbx, 0), RegEsp);
    as.movRI(RegEbx, ctx_b);
    as.movRM(RegEsp, memb(RegEbx, 0));
    as.ret();

    // yield_ba: B -> A.
    while (as.pc() % 16)
        as.nop();
    uint32_t yield_ba_pc = as.pc();
    as.movRI(RegEbx, ctx_b);
    as.movMR(memb(RegEbx, 0), RegEsp);
    as.movRI(RegEbx, ctx_a);
    as.movRM(RegEsp, memb(RegEbx, 0));
    as.ret();

    // Thread B: rewrite the shared function's immediate, bump a
    // counter, yield back. Runs forever; dies with the process.
    while (as.pc() % 16)
        as.nop();
    uint32_t thread_b_pc = as.pc();
    Label b_loop = as.label();
    as.bind(b_loop);
    as.movRI(RegEbx, b_counter);
    as.movRM(RegEax, memb(RegEbx, 0));
    as.aluRI(Op::Add, RegEax, 0x111);
    as.movMR(memb(RegEbx, 0), RegEax);
    as.movRI(RegEbx, shared_pc + 2);
    as.movMR(memb(RegEbx, 0), RegEax); // SMC on the shared page
    as.callAbs(yield_ba_pc);
    as.jmp(b_loop);

    // Thread A (the main thread).
    as.bind(start);
    as.movRI(RegEbx, stack_b - 4);     // B's stack: one frame, its entry
    as.movMI(memb(RegEbx, 0), thread_b_pc);
    as.movRI(RegEdx, ctx_b);
    as.movMR(memb(RegEdx, 0), RegEbx);
    as.movRI(RegEsi, 0);               // checksum
    as.movRI(RegEdi, p.outer_iters);   // slices
    Label slice = as.label();
    as.bind(slice);
    as.movRI(RegEcx, p.size);          // shared-fn calls per slice
    as.movRI(RegEax, 0);
    Label calls = as.label();
    as.bind(calls);
    as.callAbs(shared_pc);
    as.decR(RegEcx);
    as.jcc(Cond::NE, calls);
    as.aluRR(Op::Add, RegEsi, RegEax);
    as.callAbs(yield_ab_pc);
    as.decR(RegEdi);
    as.jcc(Cond::NE, slice);
    as.movRI(RegEbx, b_counter);
    as.aluRM(Op::Add, RegEsi, memb(RegEbx, 0));
    as.movRR(RegEax, RegEsi);
    emitExit(as, p.abi);
    return finish(name, "threaded_smc", p, as, 0x10000,
                  /*writable_code=*/true);
}

std::vector<Workload>
specIntSuite(OsAbi abi)
{
    std::vector<Workload> suite;
    auto P = [abi](uint32_t outer, uint32_t size) {
        WorkloadParams p;
        p.outer_iters = outer;
        p.size = size;
        p.abi = abi;
        return p;
    };

    {
        WorkloadParams p = P(60, 24000);
        suite.push_back(buildStream("gzip", p));
    }
    {
        WorkloadParams p = P(50, 12000);
        suite.push_back(buildMatrix("vpr", p));
    }
    {
        WorkloadParams p = P(3600, 0);
        p.code_copies = 300;
        suite.push_back(buildBigCode("gcc", p));
    }
    {
        WorkloadParams p = P(10, 160000); // 1.25MB guest / 2.5MB native
        suite.push_back(buildPointerChase("mcf", p));
    }
    {
        WorkloadParams p = P(40, 9000);
        p.indirect_every = 1;
        suite.push_back(buildBranchy("crafty", p));
    }
    {
        WorkloadParams p = P(60, 20000);
        suite.push_back(buildParser("parser", p));
    }
    {
        WorkloadParams p = P(36, 8000);
        p.indirect_every = 1;
        suite.push_back(buildBranchy("eon", p));
    }
    {
        WorkloadParams p = P(40, 16000);
        suite.push_back(buildParser("perlbmk", p));
    }
    {
        WorkloadParams p = P(40, 10000);
        suite.push_back(buildMatrix("gap", p));
    }
    {
        WorkloadParams p = P(4200, 0);
        p.code_copies = 240;
        suite.push_back(buildBigCode("vortex", p));
    }
    {
        WorkloadParams p = P(50, 28000);
        suite.push_back(buildStream("bzip2", p));
    }
    {
        WorkloadParams p = P(55, 11000);
        suite.push_back(buildMatrix("twolf", p));
    }
    return suite;
}

std::vector<Workload>
specFpSuite(OsAbi abi)
{
    std::vector<Workload> suite;
    WorkloadParams p;
    p.abi = abi;
    p.outer_iters = 40;
    p.size = 6000;
    suite.push_back(buildFpKernel("wupwise", p));
    p.outer_iters = 60;
    p.size = 4000;
    suite.push_back(buildSseKernel("swim", p));
    p.outer_iters = 40;
    p.size = 5000;
    suite.push_back(buildFpKernel("applu", p));
    p.outer_iters = 80;
    p.size = 4000;
    suite.push_back(buildMmxKernel("art", p));
    return suite;
}

std::vector<Workload>
sysmarkSuite(OsAbi abi)
{
    std::vector<Workload> suite;
    auto app = [abi](const char *name, uint32_t outer, uint32_t copies,
                     uint32_t kernel_units, uint32_t yields) {
        WorkloadParams p;
        p.abi = abi;
        p.outer_iters = outer;
        p.code_copies = copies;
        p.kernel_work_units = kernel_units;
        p.yields = yields;
        return buildOfficeApp(name, p);
    };
    suite.push_back(app("wordproc", 4000, 300, 1, 1));
    suite.push_back(app("spreadsheet", 4600, 260, 1, 1));
    suite.push_back(app("browser", 3000, 380, 2, 2));
    return suite;
}

std::vector<Workload>
adversarialSuite()
{
    std::vector<Workload> suite;
    {
        WorkloadParams p;
        p.outer_iters = 30;
        p.size = 256;
        suite.push_back(buildSignalStorm("sigstorm", p));
        p.abi = OsAbi::Windows;
        suite.push_back(buildSignalStorm("sigstorm_win", p));
    }
    {
        WorkloadParams p;
        p.outer_iters = 24;   // rewrite phases
        p.size = 300;         // calls per phase (re-heats every phase)
        suite.push_back(buildJitRewriter("jit_rewriter", p));
    }
    {
        WorkloadParams p;
        p.outer_iters = 40;   // scheduler slices
        p.size = 200;         // shared-fn calls per slice
        suite.push_back(buildThreadedSmc("threaded_smc", p));
    }
    return suite;
}

} // namespace el::guest
