/**
 * @file
 * The synthetic benchmark suite.
 *
 * Stand-ins for the binaries the paper measured (SPEC CPU2000 compiled
 * with the Intel compiler, and Sysmark 2002): each personality is a
 * kernel whose *structural* properties — branch predictability, indirect
 * branch density, code footprint, data footprint, FP/SSE/MMX content,
 * misaligned access density, kernel/idle time — are chosen to match the
 * published profile of the benchmark it stands for. DESIGN.md documents
 * the substitution.
 *
 * All builders emit genuine IA-32 machine code through the assembler and
 * end with the exit system call of the selected OS personality.
 */

#ifndef EL_GUEST_WORKLOADS_HH
#define EL_GUEST_WORKLOADS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "btlib/abi.hh"
#include "guest/image.hh"

namespace el::guest
{

/** Structural knobs of a workload kernel. */
struct WorkloadParams
{
    uint32_t outer_iters = 200;     //!< Outer repetitions.
    uint32_t size = 4096;           //!< Working-set elements.
    uint32_t code_copies = 1;       //!< Distinct code replicas (footprint).
    uint32_t indirect_every = 0;    //!< 0 = none; else indirect call rate.
    uint32_t misaligned = 0;        //!< Byte offset applied to data base.
    uint32_t kernel_work_units = 0; //!< Native kernel-time syscalls.
    uint32_t yields = 0;            //!< Idle syscalls per outer iteration.
    btlib::OsAbi abi = btlib::OsAbi::Linux;
};

/** A named guest program plus the parameters it was built with. */
struct Workload
{
    std::string name;
    std::string kernel;  //!< Underlying kernel class.
    WorkloadParams params;
    Image image;
};

// ----- kernel classes ---------------------------------------------------

/** Byte/word stream processing with a lookup table (gzip/bzip2-like). */
Workload buildStream(const std::string &name, WorkloadParams p);

/** Linked-list pointer chasing (mcf-like; 32-bit nodes). */
Workload buildPointerChase(const std::string &name, WorkloadParams p);

/** Data-dependent branches + indirect calls (crafty/eon-like). */
Workload buildBranchy(const std::string &name, WorkloadParams p);

/** String scanning with helper calls (parser/perlbmk-like). */
Workload buildParser(const std::string &name, WorkloadParams p);

/** Integer array arithmetic with mul/div (vpr/twolf/gap-like). */
Workload buildMatrix(const std::string &name, WorkloadParams p);

/** Large flat code footprint (gcc/vortex-like). */
Workload buildBigCode(const std::string &name, WorkloadParams p);

/** x87 FP kernel (daxpy-style with fxch-rich expression trees). */
Workload buildFpKernel(const std::string &name, WorkloadParams p);

/** SSE packed-single kernel. */
Workload buildSseKernel(const std::string &name, WorkloadParams p);

/** MMX packed-integer kernel. */
Workload buildMmxKernel(const std::string &name, WorkloadParams p);

/** Sysmark-like application: big code + kernel time + idle. */
Workload buildOfficeApp(const std::string &name, WorkloadParams p);

// ----- adversarial personalities (divergence-sentinel chaos suite) ------

/**
 * Signal storm: registers an exception handler, then faults densely
 * from the middle of hot blocks (an unmapped load a few instructions
 * into the loop body). The handler folds the delivered fault kind,
 * address and EIP into the exit checksum, so any imprecision in
 * reconstructed state changes the final answer.
 */
Workload buildSignalStorm(const std::string &name, WorkloadParams p);

/**
 * JIT-style guest: a code page it keeps rewriting. Each phase patches
 * the immediate of a small generated function, then calls it in a loop
 * long enough to re-heat — a stale translation (missed SMC
 * invalidation) computes a visibly wrong checksum.
 */
Workload buildJitRewriter(const std::string &name, WorkloadParams p);

/**
 * Two cooperative threads (real context switches via per-thread
 * stacks) sharing one writable code page: thread A runs the shared
 * function hot while thread B rewrites its immediate every slice —
 * SMC invalidation racing hot-trace selection and the async pipeline.
 */
Workload buildThreadedSmc(const std::string &name, WorkloadParams p);

// ----- suites ------------------------------------------------------------

/** The 12 SPEC CPU2000 INT stand-ins, in Figure 5 order. */
std::vector<Workload> specIntSuite(btlib::OsAbi abi = btlib::OsAbi::Linux);

/** The FP suite (x87 + SSE mix) for Figure 8's CPU2000 FP bar. */
std::vector<Workload> specFpSuite(btlib::OsAbi abi = btlib::OsAbi::Linux);

/** The Sysmark-like application set (Figure 7 / Figure 8). */
std::vector<Workload> sysmarkSuite(btlib::OsAbi abi = btlib::OsAbi::Windows);

/** The adversarial personalities: signal storm under both OS
 *  personalities, the JIT rewriter, and the threaded SMC guest. */
std::vector<Workload> adversarialSuite();

} // namespace el::guest

#endif // EL_GUEST_WORKLOADS_HH
