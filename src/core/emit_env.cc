#include "core/emit_env.hh"

#include "ipf/regs.hh"
#include "support/bitfield.hh"
#include "support/logging.hh"

namespace el::core
{

using ia32::Flag;
using ipf::IpfOp;

namespace
{

/** Does this opcode belong to the program-ordered scheduling class? */
bool
orderedOp(IpfOp op)
{
    switch (op) {
      case IpfOp::St:
      case IpfOp::Stf:
      case IpfOp::ChkS:
      case IpfOp::Mf:
      case IpfOp::Br:
      case IpfOp::BrCall:
      case IpfOp::BrRet:
      case IpfOp::BrInd:
      case IpfOp::MovToBr:
      case IpfOp::Exit:
      case IpfOp::XDivS:
      case IpfOp::XDivU:
      case IpfOp::XRemS:
      case IpfOp::XRemU:
        return true;
      default:
        return false;
    }
}

constexpr Flag flag_order[6] = {
    ia32::FlagCf, ia32::FlagPf, ia32::FlagAf,
    ia32::FlagZf, ia32::FlagSf, ia32::FlagOf,
};

} // namespace

EmitEnv::EmitEnv(const Options &opts, Phase ph, int32_t blk,
                 SpecContext sc)
    : options(opts), phase(ph), block_id(blk), spec(sc)
{
    for (unsigned r = 0; r < ia32::NumRegs; ++r)
        guest_loc_[r] = ipf::grForGuest(r);
    cur_tos_ = spec.tos;
    tag_now_ = spec.tag;
    cur_domain_ = spec.mmx_domain;
    for (unsigned k = 0; k < 8; ++k) {
        fp_perm_[k] = ipf::frForFpSlot(k);
        xmm_rep_[k] = static_cast<rt::XmmRep>(
            (spec.xmm_format >> rt::formatShift(k)) & 0xf);
    }
    xmm_entry_formats_ = spec.xmm_format;
}

// ----- IL emission ----------------------------------------------------

Il
EmitEnv::mk(IpfOp op) const
{
    Il il;
    il.ins.op = op;
    return il;
}

int32_t
EmitEnv::emit(Il il)
{
    il.ins.meta.bucket = bucket_override_ ? override_bucket_
                         : phase == Phase::Hot ? ipf::Bucket::Hot
                                               : ipf::Bucket::Cold;
    il.ins.meta.block_id = block_id;
    // Block-end exits are emitted after endInsn() clears cur_insn; they
    // still belong to the last translated guest instruction, so fall
    // back to its address (the profiler keys probe events on it).
    il.ins.meta.ia32_ip = cur_insn ? cur_insn->addr : last_insn_ip_;
    il.region = region_;
    il.ins.meta.commit_id = cur_commit_id_;
    il.sideways = in_sideways_;
    if (orderedOp(il.ins.op))
        il.is_ordered = true;
    if (il.ins.op == IpfOp::Ld || il.ins.op == IpfOp::Ldf) {
        // Guest loads can fault: ordered until the scheduler decides to
        // control-speculate them (hot phase).
        il.is_ordered = true;
    }
    return to_head_ ? head.append(il) : body.append(il);
}

int32_t
EmitEnv::emitOp(IpfOp op, int16_t dst, int16_t s1, int16_t s2, int64_t imm)
{
    Il il = mk(op);
    il.dst = dst;
    il.src1 = s1;
    il.src2 = s2;
    il.ins.imm = imm;
    return emit(il);
}

// ----- virtual registers ------------------------------------------------

int16_t
EmitEnv::newGr()
{
    if (next_gr_ > 30000)
        overflow_ = true;
    return next_gr_++;
}

int16_t
EmitEnv::newFr()
{
    if (next_fr_ > 30000)
        overflow_ = true;
    return next_fr_++;
}

int16_t
EmitEnv::newPr()
{
    if (next_pr_ > 30000)
        overflow_ = true;
    return next_pr_++;
}

int16_t
EmitEnv::immGr(int64_t value)
{
    int16_t v = newGr();
    if (value >= -(1 << 21) && value < (1 << 21)) {
        emitOp(IpfOp::AddImm, v, ipf::gr_zero, -1, value); // addl
    } else {
        Il il = mk(IpfOp::Movl);
        il.dst = v;
        il.ins.imm = value;
        emit(il);
    }
    return v;
}

// ----- guest integer state ------------------------------------------------

int16_t
EmitEnv::readGuest(ia32::Reg reg)
{
    return guest_loc_[reg];
}

void
EmitEnv::writeGuest(ia32::Reg reg, int16_t val, unsigned size, bool clean)
{
    if (size == 4) {
        // Keep the invariant that guest GPR containers are zero-extended
        // 32-bit values.
        if (clean) {
            guest_loc_[reg] = val;
        } else {
            int16_t z = newGr();
            Il il = mk(IpfOp::Zxt);
            il.dst = z;
            il.src1 = val;
            il.ins.size = 4;
            emit(il);
            guest_loc_[reg] = z;
        }
    } else if (size == 2) {
        writeGuest16(reg, val);
        return;
    } else {
        el_panic("writeGuest: bad size %u", size);
    }
    guest_dirty_ |= 1u << reg;
}

int16_t
EmitEnv::readGuest16(ia32::Reg reg)
{
    int16_t v = newGr();
    Il il = mk(IpfOp::ExtrU);
    il.dst = v;
    il.src1 = guest_loc_[reg];
    il.ins.pos = 0;
    il.ins.len = 16;
    emit(il);
    return v;
}

void
EmitEnv::writeGuest16(ia32::Reg reg, int16_t val)
{
    int16_t merged = newGr();
    Il il = mk(IpfOp::Dep);
    il.dst = merged;
    il.src1 = val;
    il.src2 = guest_loc_[reg];
    il.ins.pos = 0;
    il.ins.len = 16;
    emit(il);
    guest_loc_[reg] = merged;
    guest_dirty_ |= 1u << reg;
}

int16_t
EmitEnv::readGuest8(uint8_t enc)
{
    unsigned reg = enc & 3;
    unsigned pos = enc < 4 ? 0 : 8;
    int16_t v = newGr();
    Il il = mk(IpfOp::ExtrU);
    il.dst = v;
    il.src1 = guest_loc_[reg];
    il.ins.pos = static_cast<uint8_t>(pos);
    il.ins.len = 8;
    emit(il);
    return v;
}

void
EmitEnv::writeGuest8(uint8_t enc, int16_t val)
{
    unsigned reg = enc & 3;
    unsigned pos = enc < 4 ? 0 : 8;
    int16_t merged = newGr();
    Il il = mk(IpfOp::Dep);
    il.dst = merged;
    il.src1 = val;
    il.src2 = guest_loc_[reg];
    il.ins.pos = static_cast<uint8_t>(pos);
    il.ins.len = 8;
    emit(il);
    guest_loc_[reg] = merged;
    guest_dirty_ |= 1u << reg;
}

int16_t
EmitEnv::readOperand(const ia32::Operand &op, unsigned size)
{
    using ia32::OperandKind;
    switch (op.kind) {
      case OperandKind::Gpr:
        if (size == 4)
            return readGuest(static_cast<ia32::Reg>(op.reg));
        return readGuest16(static_cast<ia32::Reg>(op.reg));
      case OperandKind::Gpr8:
        return readGuest8(op.reg);
      case OperandKind::Imm:
        return immGr(static_cast<int64_t>(
            truncToSize(static_cast<uint64_t>(op.imm), size)));
      case OperandKind::Mem:
        return emitLoad(effAddr(op.mem), size);
      default:
        el_panic("readOperand: bad kind");
    }
}

void
EmitEnv::writeOperand(const ia32::Operand &op, int16_t val, unsigned size)
{
    using ia32::OperandKind;
    switch (op.kind) {
      case OperandKind::Gpr:
        if (size == 4)
            writeGuest(static_cast<ia32::Reg>(op.reg), val, 4);
        else
            writeGuest16(static_cast<ia32::Reg>(op.reg), val);
        return;
      case OperandKind::Gpr8:
        writeGuest8(op.reg, val);
        return;
      case OperandKind::Mem:
        emitStore(effAddr(op.mem), val, size);
        return;
      default:
        el_panic("writeOperand: bad kind");
    }
}

// ----- flags -----------------------------------------------------------

int16_t
EmitEnv::flagHomeFor(Flag flag) const
{
    switch (flag) {
      case ia32::FlagCf:
        return ipf::gr_flag_cf;
      case ia32::FlagPf:
        return ipf::gr_flag_pf;
      case ia32::FlagAf:
        return ipf::gr_flag_af;
      case ia32::FlagZf:
        return ipf::gr_flag_zf;
      case ia32::FlagSf:
        return ipf::gr_flag_sf;
      case ia32::FlagOf:
        return ipf::gr_flag_of;
      case ia32::FlagDf:
        return ipf::gr_flag_df;
      default:
        el_panic("no home for flag %x", flag);
    }
}

void
EmitEnv::setFlags(LazyFlags::Kind kind, unsigned size, int16_t wide,
                  int16_t opa, int16_t opb, int16_t res,
                  uint32_t written_mask)
{
    written_mask &= ia32::FlagsArith;
    if (!options.enable_eflags_elim) {
        // Ablation: every flag an instruction writes is materialized.
        lazy_ = LazyFlags{kind, static_cast<uint8_t>(size), wide, opa,
                          opb, res, written_mask};
        materializeFlags(written_mask);
        return;
    }
    // Flags still lazy from an earlier op that this op does NOT rewrite
    // must be materialized if they may still be read (approximated by the
    // current liveness mask).
    uint32_t keep = lazy_.dirty & ~written_mask & live_mask_;
    if (keep)
        materializeFlags(keep);
    lazy_ = LazyFlags{kind, static_cast<uint8_t>(size), wide, opa, opb,
                      res, written_mask};
    if (phase == Phase::Cold) {
        // Cold policy: live flags become architectural immediately.
        materializeFlags(written_mask & live_mask_);
    }
}

void
EmitEnv::materializeOne(Flag flag)
{
    int16_t home = flagHomeFor(flag);
    unsigned nbits = lazy_.size * 8;
    auto tbit01 = [&](int16_t src, unsigned pos) {
        Il il = mk(IpfOp::ExtrU);
        il.dst = home;
        il.src1 = src;
        il.ins.pos = static_cast<uint8_t>(pos);
        il.ins.len = 1;
        emit(il);
    };

    switch (flag) {
      case ia32::FlagZf: {
        Il il = mk(IpfOp::CmpImm);
        int16_t p = newPr(), p2 = newPr();
        il.dst = p;
        il.dst2 = p2;
        il.ins.imm = 0;
        il.src2 = lazy_.res;
        il.ins.crel = ipf::CmpRel::Eq;
        emit(il);
        emitOp(IpfOp::Mov, home, ipf::gr_zero);
        Il set = mk(IpfOp::AddImm);
        set.qp = p;
        set.dst = home;
        set.src1 = ipf::gr_zero;
        set.ins.imm = 1;
        emit(set);
        break;
      }
      case ia32::FlagSf:
        tbit01(lazy_.res, nbits - 1);
        break;
      case ia32::FlagPf: {
        int16_t lo = newGr();
        Il e = mk(IpfOp::ExtrU);
        e.dst = lo;
        e.src1 = lazy_.res;
        e.ins.pos = 0;
        e.ins.len = 8;
        emit(e);
        int16_t pc = newGr();
        emitOp(IpfOp::Popcnt, pc, lo);
        int16_t lsb = newGr();
        Il x = mk(IpfOp::ExtrU);
        x.dst = lsb;
        x.src1 = pc;
        x.ins.pos = 0;
        x.ins.len = 1;
        emit(x);
        // PF = !(popcount & 1)
        int16_t one = immGr(1);
        emitOp(IpfOp::Xor, home, lsb, one);
        break;
      }
      case ia32::FlagCf:
        if (lazy_.kind == LazyFlags::Kind::Add) {
            // Carry out of bit nbits of the wide sum.
            tbit01(lazy_.wide, nbits);
        } else if (lazy_.kind == LazyFlags::Kind::Sub) {
            // Borrow: sign bit of the wide 64-bit difference.
            tbit01(lazy_.wide, 63);
        } else {
            emitOp(IpfOp::Mov, home, ipf::gr_zero);
        }
        break;
      case ia32::FlagOf: {
        if (lazy_.kind == LazyFlags::Kind::Logic) {
            emitOp(IpfOp::Mov, home, ipf::gr_zero);
            break;
        }
        // Add: OF = ((opa ^ res) & (opb ^ res)) >> msb
        // Sub: OF = ((opa ^ opb) & (opa ^ res)) >> msb
        int16_t t1 = newGr(), t2 = newGr(), t3 = newGr();
        if (lazy_.kind == LazyFlags::Kind::Add) {
            emitOp(IpfOp::Xor, t1, lazy_.opa, lazy_.res);
            emitOp(IpfOp::Xor, t2, lazy_.opb, lazy_.res);
        } else {
            emitOp(IpfOp::Xor, t1, lazy_.opa, lazy_.opb);
            emitOp(IpfOp::Xor, t2, lazy_.opa, lazy_.res);
        }
        emitOp(IpfOp::And, t3, t1, t2);
        tbit01(t3, nbits - 1);
        break;
      }
      case ia32::FlagAf: {
        if (lazy_.kind == LazyFlags::Kind::Logic) {
            emitOp(IpfOp::Mov, home, ipf::gr_zero);
            break;
        }
        int16_t t1 = newGr(), t2 = newGr();
        emitOp(IpfOp::Xor, t1, lazy_.opa, lazy_.opb);
        emitOp(IpfOp::Xor, t2, t1, lazy_.res);
        tbit01(t2, 4);
        break;
      }
      default:
        el_panic("materializeOne: bad flag");
    }
}

void
EmitEnv::materializeFlags(uint32_t mask)
{
    mask &= lazy_.dirty;
    for (unsigned k = 0; k < 6; ++k) {
        if (mask & flag_order[k])
            materializeOne(flag_order[k]);
    }
    lazy_.dirty &= ~mask;
}

void
EmitEnv::setFlagHome(Flag flag, int16_t val01)
{
    emitOp(IpfOp::Mov, flagHomeFor(flag), val01);
    lazy_.dirty &= ~static_cast<uint32_t>(flag);
}

int16_t
EmitEnv::readFlagValue(Flag flag)
{
    if (lazy_.dirty & flag)
        materializeFlags(flag);
    return flagHomeFor(flag);
}

FlagRecipe
EmitEnv::flagRecipe() const
{
    FlagRecipe r;
    if (lazy_.dirty == 0) {
        r.op = FlagRecipe::LazyOp::Homes;
        return r;
    }
    switch (lazy_.kind) {
      case LazyFlags::Kind::Add:
        r.op = FlagRecipe::LazyOp::Add;
        break;
      case LazyFlags::Kind::Sub:
        r.op = FlagRecipe::LazyOp::Sub;
        break;
      case LazyFlags::Kind::Logic:
        r.op = FlagRecipe::LazyOp::Logic;
        break;
      default:
        r.op = FlagRecipe::LazyOp::Homes;
        return r;
    }
    r.size = lazy_.size;
    r.dirty_mask = lazy_.dirty;
    r.wide = Loc::gr(lazy_.wide);
    r.a = Loc::gr(lazy_.opa);
    r.b = Loc::gr(lazy_.opb);
    r.res = Loc::gr(lazy_.res);
    return r;
}

int16_t
EmitEnv::condPred(ia32::Cond cond)
{
    using ia32::Cond;
    using ipf::CmpRel;
    bool negate = static_cast<uint8_t>(cond) & 1;
    Cond base = static_cast<Cond>(static_cast<uint8_t>(cond) & ~1u);

    // Fast paths straight from the lazy compare operands.
    if ((lazy_.dirty & ia32::condFlagsRead(cond)) ==
        ia32::condFlagsRead(cond) &&
        lazy_.kind == LazyFlags::Kind::Sub && lazy_.opa >= 0 &&
        lazy_.opb >= 0) {
        CmpRel rel;
        bool ok = true;
        bool need_sext = false;
        switch (base) {
          case Cond::E:
            rel = CmpRel::Eq;
            break;
          case Cond::B:
            rel = CmpRel::Ltu;
            break;
          case Cond::BE:
            rel = CmpRel::Leu;
            break;
          case Cond::L:
            rel = CmpRel::Lt;
            need_sext = true;
            break;
          case Cond::LE:
            rel = CmpRel::Le;
            need_sext = true;
            break;
          default:
            ok = false;
            rel = CmpRel::Eq;
            break;
        }
        if (ok) {
            int16_t a = lazy_.opa, b = lazy_.opb;
            if (need_sext) {
                int16_t sa = newGr(), sb = newGr();
                Il e1 = mk(IpfOp::Sxt);
                e1.dst = sa;
                e1.src1 = a;
                e1.ins.size = lazy_.size;
                emit(e1);
                Il e2 = mk(IpfOp::Sxt);
                e2.dst = sb;
                e2.src1 = b;
                e2.ins.size = lazy_.size;
                emit(e2);
                a = sa;
                b = sb;
            }
            Il c = mk(IpfOp::Cmp);
            int16_t p = newPr(), p2 = newPr();
            c.dst = p;
            c.dst2 = p2;
            c.src1 = a;
            c.src2 = b;
            c.ins.crel = rel;
            emit(c);
            return negate ? p2 : p;
        }
    }
    if ((base == Cond::E || base == Cond::S) && (lazy_.dirty != 0) &&
        lazy_.res >= 0 &&
        (lazy_.dirty & ia32::condFlagsRead(cond)) ==
            ia32::condFlagsRead(cond)) {
        int16_t p = newPr(), p2 = newPr();
        if (base == Cond::E) {
            Il c = mk(IpfOp::CmpImm);
            c.dst = p;
            c.dst2 = p2;
            c.ins.imm = 0;
            c.src2 = lazy_.res;
            c.ins.crel = CmpRel::Eq;
            emit(c);
        } else {
            Il t = mk(IpfOp::Tbit);
            t.dst = p;
            t.dst2 = p2;
            t.src1 = lazy_.res;
            t.ins.pos = static_cast<uint8_t>(lazy_.size * 8 - 1);
            emit(t);
        }
        return negate ? p2 : p;
    }

    // Generic path: materialize the flags this condition reads, then
    // evaluate the boolean expression from the 0/1 homes.
    materializeFlags(ia32::condFlagsRead(cond));
    int16_t v;
    switch (base) {
      case Cond::O:
        v = flagHomeFor(ia32::FlagOf);
        break;
      case Cond::B:
        v = flagHomeFor(ia32::FlagCf);
        break;
      case Cond::E:
        v = flagHomeFor(ia32::FlagZf);
        break;
      case Cond::BE: {
        v = newGr();
        emitOp(IpfOp::Or, v, flagHomeFor(ia32::FlagCf),
               flagHomeFor(ia32::FlagZf));
        break;
      }
      case Cond::S:
        v = flagHomeFor(ia32::FlagSf);
        break;
      case Cond::P:
        v = flagHomeFor(ia32::FlagPf);
        break;
      case Cond::L: {
        v = newGr();
        emitOp(IpfOp::Xor, v, flagHomeFor(ia32::FlagSf),
               flagHomeFor(ia32::FlagOf));
        break;
      }
      case Cond::LE: {
        int16_t x = newGr();
        emitOp(IpfOp::Xor, x, flagHomeFor(ia32::FlagSf),
               flagHomeFor(ia32::FlagOf));
        v = newGr();
        emitOp(IpfOp::Or, v, x, flagHomeFor(ia32::FlagZf));
        break;
      }
      default:
        el_panic("condPred: bad cond");
    }
    Il c = mk(IpfOp::CmpImm);
    int16_t p = newPr(), p2 = newPr();
    c.dst = p;
    c.dst2 = p2;
    c.ins.imm = 0;
    c.src2 = v;
    c.ins.crel = negate ? CmpRel::Eq : CmpRel::Ne;
    emit(c);
    return p;
}

// ----- addresses & memory ---------------------------------------------

int16_t
EmitEnv::rtAddr(int64_t offset)
{
    int16_t v = newGr();
    emitOp(IpfOp::AddImm, v, ipf::gr_rt_base, -1, offset);
    return v;
}

int16_t
EmitEnv::effAddr(const ia32::MemRef &mem)
{
    int16_t base_loc = mem.has_base
        ? guest_loc_[mem.base]
        : static_cast<int16_t>(-1);
    int16_t index_loc = mem.has_index
        ? guest_loc_[mem.index]
        : static_cast<int16_t>(-1);

    auto key = std::make_tuple(base_loc, index_loc, mem.scale, mem.disp);
    bool use_cse = options.enable_addr_cse && phase == Phase::Hot;
    if (use_cse) {
        auto it = addr_cse_.find(key);
        if (it != addr_cse_.end())
            return it->second;
    }

    // Combine index*scale with base.
    int16_t acc = -1;
    if (index_loc >= 0) {
        unsigned lg = mem.scale == 8 ? 3 : mem.scale == 4 ? 2
                     : mem.scale == 2 ? 1 : 0;
        if (base_loc >= 0 && lg > 0) {
            acc = newGr();
            Il il = mk(IpfOp::Shladd);
            il.dst = acc;
            il.src1 = index_loc;
            il.src2 = base_loc;
            il.ins.imm = lg;
            emit(il);
        } else if (base_loc >= 0) {
            acc = newGr();
            emitOp(IpfOp::Add, acc, index_loc, base_loc);
        } else if (lg > 0) {
            acc = newGr();
            Il il = mk(IpfOp::ShlImm);
            il.dst = acc;
            il.src1 = index_loc;
            il.ins.imm = lg;
            emit(il);
        } else {
            acc = index_loc;
        }
    } else if (base_loc >= 0) {
        acc = base_loc;
    }

    if (mem.disp != 0 || acc < 0) {
        int16_t t = newGr();
        if (acc < 0) {
            emitOp(IpfOp::AddImm, t, ipf::gr_zero, -1,
                   static_cast<int64_t>(static_cast<uint32_t>(mem.disp)));
        } else if (mem.disp >= -(1 << 21) && mem.disp < (1 << 21)) {
            emitOp(IpfOp::AddImm, t, acc, -1, mem.disp);
        } else {
            int16_t d = immGr(mem.disp);
            emitOp(IpfOp::Add, t, acc, d);
        }
        acc = t;
    }

    // 32-bit address wraparound.
    bool needs_wrap = mem.disp != 0 || (base_loc >= 0 && index_loc >= 0) ||
                      (index_loc >= 0 && mem.scale > 1);
    if (needs_wrap) {
        int16_t w = newGr();
        Il il = mk(IpfOp::Zxt);
        il.dst = w;
        il.src1 = acc;
        il.ins.size = 4;
        emit(il);
        acc = w;
    }

    if (use_cse)
        addr_cse_[key] = acc;
    return acc;
}

void
EmitEnv::setAccessPolicy(MisalignPolicy policy, uint8_t granularity)
{
    policy_ = policy;
    policy_granularity_ = granularity;
}

std::pair<int16_t, int16_t>
EmitEnv::alignPreds(int16_t addr, unsigned size)
{
    auto key = std::make_pair(addr, size);
    if (phase == Phase::Hot) {
        auto it = align_cache_.find(key);
        if (it != align_cache_.end())
            return it->second;
    }
    int16_t p_mis = newPr(), p_al = newPr();
    unsigned lg = size == 8 ? 3 : size == 4 ? 2 : size == 2 ? 1 : 0;
    if (lg == 1) {
        Il t = mk(IpfOp::Tbit);
        t.dst = p_mis;
        t.dst2 = p_al;
        t.src1 = addr;
        t.ins.pos = 0;
        emit(t);
    } else {
        int16_t low = newGr();
        Il e = mk(IpfOp::ExtrU);
        e.dst = low;
        e.src1 = addr;
        e.ins.pos = 0;
        e.ins.len = static_cast<uint8_t>(lg);
        emit(e);
        Il c = mk(IpfOp::CmpImm);
        c.dst = p_mis;
        c.dst2 = p_al;
        c.ins.imm = 0;
        c.src2 = low;
        c.ins.crel = ipf::CmpRel::Ne;
        emit(c);
    }
    if (phase == Phase::Hot)
        align_cache_[key] = {p_mis, p_al};
    return {p_mis, p_al};
}

int16_t
EmitEnv::emitSplitLoad(int16_t addr, unsigned size, int16_t p_mis,
                       int16_t p_al, unsigned granularity)
{
    int16_t result = newGr();
    // Aligned path.
    Il ld = mk(IpfOp::Ld);
    ld.qp = p_al;
    ld.dst = result;
    ld.src1 = addr;
    ld.ins.size = static_cast<uint8_t>(size);
    ld.ins.exit_payload = static_cast<int64_t>(region_start_ip_);
    emit(ld);
    // Misaligned path: `granularity`-sized pieces assembled with dep.
    unsigned g = granularity ? granularity : 1;
    unsigned parts = size / g;
    for (unsigned k = 0; k < parts; ++k) {
        int16_t part_addr = addr;
        if (k) {
            part_addr = newGr();
            Il a = mk(IpfOp::AddImm);
            a.qp = p_mis;
            a.dst = part_addr;
            a.src1 = addr;
            a.ins.imm = static_cast<int64_t>(k * g);
            emit(a);
        }
        int16_t part = (k == 0) ? result : newGr();
        Il pl = mk(IpfOp::Ld);
        pl.qp = p_mis;
        pl.dst = part;
        pl.src1 = part_addr;
        pl.ins.size = static_cast<uint8_t>(g);
        pl.ins.exit_payload = static_cast<int64_t>(region_start_ip_);
        emit(pl);
        if (k) {
            Il d = mk(IpfOp::Dep);
            d.qp = p_mis;
            d.dst = result;
            d.src1 = part;
            d.src2 = result;
            d.ins.pos = static_cast<uint8_t>(k * g * 8);
            d.ins.len = static_cast<uint8_t>(g * 8);
            emit(d);
        }
    }
    return result;
}

void
EmitEnv::emitSplitStore(int16_t addr, int16_t val, unsigned size,
                        int16_t p_mis, int16_t p_al, unsigned granularity)
{
    Il st = mk(IpfOp::St);
    st.qp = p_al;
    st.src1 = addr;
    st.src2 = val;
    st.ins.size = static_cast<uint8_t>(size);
    emit(st);
    unsigned g = granularity ? granularity : 1;
    unsigned parts = size / g;
    for (unsigned k = 0; k < parts; ++k) {
        int16_t part = val;
        if (k) {
            part = newGr();
            Il e = mk(IpfOp::ExtrU);
            e.qp = p_mis;
            e.dst = part;
            e.src1 = val;
            e.ins.pos = static_cast<uint8_t>(k * g * 8);
            e.ins.len = static_cast<uint8_t>(g * 8);
            emit(e);
        }
        int16_t part_addr = addr;
        if (k) {
            part_addr = newGr();
            Il a = mk(IpfOp::AddImm);
            a.qp = p_mis;
            a.dst = part_addr;
            a.src1 = addr;
            a.ins.imm = static_cast<int64_t>(k * g);
            emit(a);
        }
        Il ps = mk(IpfOp::St);
        ps.qp = p_mis;
        ps.src1 = part_addr;
        ps.src2 = part;
        ps.ins.size = static_cast<uint8_t>(g);
        emit(ps);
    }
}

int16_t
EmitEnv::emitLoad(int16_t addr, unsigned size)
{
    ++loads_emitted;
    uint32_t access_idx = access_count++;
    if (size == 1 || policy_ == MisalignPolicy::Plain) {
        int16_t v = newGr();
        Il il = mk(IpfOp::Ld);
        il.dst = v;
        il.src1 = addr;
        il.ins.size = static_cast<uint8_t>(size);
        il.is_load = true;
        il.ins.exit_payload = static_cast<int64_t>(region_start_ip_);
        emit(il);
        return v;
    }

    switch (policy_) {
      case MisalignPolicy::DetectExit:
      case MisalignPolicy::DetectLight: {
        auto [p_mis, p_al] = alignPreds(addr, size);
        setBucket(ipf::Bucket::Overhead);
        Il x = mk(IpfOp::Exit);
        x.qp = p_mis;
        x.ins.exit_reason = ipf::ExitReason::Misaligned;
        x.ins.exit_payload = phase == Phase::Hot
            ? static_cast<int64_t>(region_start_ip_)
            : static_cast<int64_t>(access_idx);
        emit(x);
        clearBucket();
        int16_t v = newGr();
        Il il = mk(IpfOp::Ld);
        il.dst = v;
        il.src1 = addr;
        il.ins.size = static_cast<uint8_t>(size);
        il.is_load = true;
        il.ins.exit_payload = static_cast<int64_t>(region_start_ip_);
        emit(il);
        return v;
      }
      case MisalignPolicy::CountAndAvoid: {
        auto [p_mis, p_al] = alignPreds(addr, size);
        emitMisalignCounter(p_mis, addr, size, access_idx);
        return emitSplitLoad(addr, size, p_mis, p_al, 1);
      }
      case MisalignPolicy::Avoid: {
        auto [p_mis, p_al] = alignPreds(addr, size);
        unsigned g = policy_granularity_ ? policy_granularity_ : 1;
        if (g >= size)
            g = size / 2 ? size / 2 : 1;
        return emitSplitLoad(addr, size, p_mis, p_al, g);
      }
      default:
        el_panic("bad access policy");
    }
}

void
EmitEnv::emitStore(int16_t addr, int16_t val, unsigned size)
{
    ++stores_emitted;
    uint32_t access_idx = access_count++;
    if (size == 1 || policy_ == MisalignPolicy::Plain) {
        Il il = mk(IpfOp::St);
        il.src1 = addr;
        il.src2 = val;
        il.ins.size = static_cast<uint8_t>(size);
        emit(il);
        return;
    }
    switch (policy_) {
      case MisalignPolicy::DetectExit:
      case MisalignPolicy::DetectLight: {
        auto [p_mis, p_al] = alignPreds(addr, size);
        setBucket(ipf::Bucket::Overhead);
        Il x = mk(IpfOp::Exit);
        x.qp = p_mis;
        x.ins.exit_reason = ipf::ExitReason::Misaligned;
        x.ins.exit_payload = phase == Phase::Hot
            ? static_cast<int64_t>(region_start_ip_)
            : static_cast<int64_t>(access_idx);
        emit(x);
        clearBucket();
        Il il = mk(IpfOp::St);
        il.src1 = addr;
        il.src2 = val;
        il.ins.size = static_cast<uint8_t>(size);
        emit(il);
        return;
      }
      case MisalignPolicy::CountAndAvoid: {
        auto [p_mis, p_al] = alignPreds(addr, size);
        emitMisalignCounter(p_mis, addr, size, access_idx);
        emitSplitStore(addr, val, size, p_mis, p_al, 1);
        return;
      }
      case MisalignPolicy::Avoid: {
        auto [p_mis, p_al] = alignPreds(addr, size);
        unsigned g = policy_granularity_ ? policy_granularity_ : 1;
        if (g >= size)
            g = size / 2 ? size / 2 : 1;
        emitSplitStore(addr, val, size, p_mis, p_al, g);
        return;
      }
      default:
        el_panic("bad access policy");
    }
}

void
EmitEnv::emitMisalignCounter(int16_t p_mis, int16_t addr, unsigned size,
                             uint32_t access_idx)
{
    setBucket(ipf::Bucket::Overhead);
    // detail |= (addr & (size-1)) | SEEN
    int16_t caddr = rtAddr(misalign_ctr_off_ + access_idx * 4);
    int16_t cur = newGr();
    Il ld = mk(IpfOp::Ld);
    ld.qp = p_mis;
    ld.dst = cur;
    ld.src1 = caddr;
    ld.ins.size = 4;
    emit(ld);
    unsigned lg = size == 8 ? 3 : size == 4 ? 2 : 1;
    int16_t low = newGr();
    Il e = mk(IpfOp::ExtrU);
    e.qp = p_mis;
    e.dst = low;
    e.src1 = addr;
    e.ins.pos = 0;
    e.ins.len = static_cast<uint8_t>(lg);
    emit(e);
    int16_t merged = newGr();
    Il o1 = mk(IpfOp::Or);
    o1.qp = p_mis;
    o1.dst = merged;
    o1.src1 = cur;
    o1.src2 = low;
    emit(o1);
    int16_t seen = newGr();
    Il s = mk(IpfOp::AddImm);
    s.qp = p_mis;
    s.dst = seen;
    s.src1 = ipf::gr_zero;
    s.ins.imm = 0x100;
    emit(s);
    int16_t merged2 = newGr();
    Il o2 = mk(IpfOp::Or);
    o2.qp = p_mis;
    o2.dst = merged2;
    o2.src1 = merged;
    o2.src2 = seen;
    emit(o2);
    Il st = mk(IpfOp::St);
    st.qp = p_mis;
    st.src1 = caddr;
    st.src2 = merged2;
    st.ins.size = 4;
    emit(st);
    clearBucket();
}

int16_t
EmitEnv::emitLoadF(int16_t addr, unsigned fsize)
{
    ++loads_emitted;
    ++access_count;
    int16_t v = newFr();
    unsigned bytes = fsize == 9 ? 8 : fsize;
    bool avoid = (policy_ == MisalignPolicy::CountAndAvoid ||
                  policy_ == MisalignPolicy::Avoid) &&
                 (bytes == 4 || bytes == 8);
    if (!avoid) {
        Il il = mk(IpfOp::Ldf);
        il.dst = v;
        il.src1 = addr;
        il.ins.size = static_cast<uint8_t>(fsize);
        il.is_load = true;
        il.ins.exit_payload = static_cast<int64_t>(region_start_ip_);
        emit(il);
        return v;
    }
    // Avoidance path: assemble the raw bits in a GR, then setf.
    auto [p_mis, p_al] = alignPreds(addr, bytes);
    int16_t bits = emitSplitLoad(addr, bytes, p_mis, p_al, 1);
    Il sf = mk(IpfOp::Setf);
    sf.dst = v;
    sf.src1 = bits;
    sf.ins.size = fsize == 9 ? 0 : static_cast<uint8_t>(bytes);
    emit(sf);
    return v;
}

void
EmitEnv::emitStoreF(int16_t addr, int16_t fval, unsigned fsize)
{
    ++stores_emitted;
    ++access_count;
    unsigned bytes = fsize == 9 ? 8 : fsize;
    bool avoid = (policy_ == MisalignPolicy::CountAndAvoid ||
                  policy_ == MisalignPolicy::Avoid) &&
                 (bytes == 4 || bytes == 8);
    if (!avoid) {
        Il il = mk(IpfOp::Stf);
        il.src1 = addr;
        il.src2 = fval;
        il.ins.size = static_cast<uint8_t>(fsize);
        emit(il);
        return;
    }
    int16_t bits = newGr();
    Il gf = mk(IpfOp::Getf);
    gf.dst = bits;
    gf.src1 = fval;
    gf.ins.size = fsize == 9 ? 0 : static_cast<uint8_t>(bytes);
    emit(gf);
    auto [p_mis, p_al] = alignPreds(addr, bytes);
    emitSplitStore(addr, bits, bytes, p_mis, p_al, 1);
}

} // namespace el::core
