# Empty dependencies file for test_core_fp_end2end.
# This may be replaced when dependencies are built.
