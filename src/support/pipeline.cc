#include "support/pipeline.hh"

namespace el::support
{

void
WorkerPool::start(unsigned count, Body body)
{
    threads_.reserve(threads_.size() + count);
    for (unsigned w = 0; w < count; ++w)
        threads_.emplace_back(body, w);
}

void
WorkerPool::join()
{
    for (std::thread &t : threads_)
        if (t.joinable())
            t.join();
    threads_.clear();
}

} // namespace el::support
