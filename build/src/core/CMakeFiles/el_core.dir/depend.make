# Empty dependencies file for el_core.
# This may be replaced when dependencies are built.
