/**
 * @file
 * Online execution profiler: per-block execution counters, per-exit
 * edge counters, indirect-branch value profiles and a time-series
 * metrics sampler.
 *
 * The profiler observes *guest architectural* events, not translation
 * events. The machine reports the probe instructions it visits —
 * predicated conditional exits, the predicated fast-lookup miss exit of
 * every indirect branch, and the block-terminating stop exits — and the
 * profiler replays the guest's control flow over a canonical basic-block
 * decomposition it decodes itself (via a resolver callback, so this
 * support-layer class stays free of ia32 dependencies). Because the
 * probe stream is a pure function of the retired guest instruction
 * sequence, every counter is bit-identical across translation-thread
 * counts, hot/cold phase boundaries, and adoption timing. DESIGN.md
 * ("Observability") documents the invariance argument.
 *
 * Nothing here touches the timing model: the machine's cycle counts are
 * identical with the profiler attached or not, and when it is not
 * attached the machine pays exactly one predictable branch per retired
 * instruction.
 */

#ifndef EL_SUPPORT_PROFILE_HH
#define EL_SUPPORT_PROFILE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "support/ring.hh"
#include "support/stats.hh"

namespace el::prof
{

/** Canonical classification of one guest instruction. */
enum class InsnKind : uint8_t
{
    Plain,      //!< Falls through to the next instruction.
    Cond,       //!< Conditional branch (Jcc).
    Jump,       //!< Unconditional direct jump.
    CallDirect, //!< Direct call (transfers to the target).
    Indirect,   //!< Indirect jump/call or return.
    Stop,       //!< Syscall, breakpoint, halt, or undecodable.
};

/** Resolver result for one guest instruction. */
struct InsnInfo
{
    InsnKind kind = InsnKind::Stop;
    uint32_t next = 0;   //!< Address of the following instruction.
    uint32_t target = 0; //!< Branch target (Cond/Jump/CallDirect).
};

/**
 * Decodes the guest instruction at @p ip. Installed by the runtime
 * (wrapping the ia32 decoder over guest memory). Implementations map
 * undecodable or unmapped bytes to InsnKind::Stop — that *is* the
 * canonical fact (execution there raises a guest fault).
 */
using InsnResolver = std::function<InsnInfo(uint32_t ip)>;

/**
 * One canonical guest basic block: decoded from its entry until the
 * first block-ending instruction (or the decode cap). Never split at
 * interior branch targets, so the decomposition is a pure function of
 * (entry address, guest memory) — unlike the translator's regions,
 * whose block splits depend on discovery order and analysis window.
 */
struct GuestBlock
{
    uint32_t entry = 0;
    uint32_t term_ip = 0;   //!< Address of the terminating instruction.
    uint32_t term_next = 0; //!< Address after the terminator.
    InsnKind kind = InsnKind::Stop; //!< Terminator kind; Plain = cap hit.
    uint32_t taken = 0;     //!< Cond: branch-taken successor.
    uint32_t fall = 0;      //!< Cond: fall-through successor.
    uint32_t next = 0;      //!< Jump/CallDirect/Plain: static successor.
    uint32_t insns = 0;     //!< Decoded instruction count.
};

/** Per-conditional-site edge counters. */
struct CondSite
{
    uint32_t taken_eip = 0; //!< Canonical taken target of the site.
    uint32_t fall_eip = 0;  //!< Canonical fall-through of the site.
    uint64_t taken = 0;     //!< Architectural taken executions.
    uint64_t fall = 0;      //!< Architectural fall-through executions.
    // How the *fired* (off-path) exits left translated code. These are
    // diagnostics, not architectural counts: which direction fires the
    // probe depends on the translation phase (a cold block exits on
    // taken, a hot trace side-exits off-trace), and linking depends on
    // patch timing — so both values, and even their sum, vary with
    // thread count and adoption order. Only taken/fall are invariant.
    uint64_t via_link = 0;
    uint64_t via_dispatch = 0;
};

/** One entry of a bounded top-K target table. */
struct TargetCount
{
    uint32_t target = 0;
    uint64_t count = 0;
};

/** Per-indirect-site value profile (space-saving top-K). */
struct IndirectSite
{
    uint64_t execs = 0;
    uint64_t hits = 0;      //!< Fast-lookup hits (predicted in cache).
    uint64_t misses = 0;    //!< Fast-lookup misses (exited to dispatch).
    uint64_t evictions = 0; //!< Top-K table evictions.
    std::vector<TargetCount> targets; //!< At most Config::topk entries.
};

/** One time-series sample. All values are point-in-time gauges except
 *  the monotonic dispatch_lookups / fault_fires / profile_events. */
struct Sample
{
    uint64_t cycle = 0; //!< Period boundary (simulated cycles).
    uint64_t dispatch_lookups = 0;
    uint64_t cache_occupancy = 0;
    uint64_t hot_queue_depth = 0;
    uint64_t worker_inflight = 0;
    uint64_t fault_fires = 0;
    uint64_t profile_events = 0;
};

/** Fills the runtime-owned metrics of a Sample (cycle/profile_events
 *  are filled by the profiler itself). */
using SampleGather = std::function<void(Sample *s)>;

/** Profiler tunables. */
struct Config
{
    unsigned topk = 8;             //!< Targets tracked per indirect site.
    uint64_t sample_period = 50000; //!< Simulated cycles between samples.
    size_t ring_capacity = 512;    //!< Max retained samples (ring).
    unsigned max_walk = 64;        //!< Chain-walk bound (blocks/event).
    unsigned max_block_insns = 128; //!< Canonical block decode cap.
};

/** The online execution profiler. */
class Profiler
{
  public:
    explicit Profiler(Config cfg = {})
        : cfg_(cfg),
          samples_(cfg.ring_capacity ? cfg.ring_capacity : 1,
                   RingPolicy::DropOldest)
    {
        if (cfg_.topk == 0)
            cfg_.topk = 1;
        if (cfg_.sample_period == 0)
            cfg_.sample_period = 1;
        if (cfg_.ring_capacity == 0)
            cfg_.ring_capacity = 1;
        next_sample_due_ = cfg_.sample_period;
    }

    void setResolver(InsnResolver r) { resolver_ = std::move(r); }
    void setSampleGather(SampleGather g) { gather_ = std::move(g); }

    // ----- event intake (machine probe reports) ----------------------

    /**
     * A predicated conditional-exit probe was visited. @p fired is the
     * probe's predicate (true: control left through this exit to
     * @p exit_target); @p via_link distinguishes a patched (linked)
     * exit from one that still dispatches through the runtime.
     */
    void condEvent(uint32_t site_ip, uint32_t exit_target, bool fired,
                   bool via_link);

    /**
     * The fast-lookup miss probe of an indirect site was visited (this
     * happens on *every* architectural execution of the indirect —
     * the probe is nullified, but still visited, on a lookup hit).
     * @p target is the guest target EIP; @p hit is the lookup outcome.
     */
    void indirectEvent(uint32_t site_ip, uint32_t target, bool hit);

    /**
     * A stop-class terminator executed (syscall gate, breakpoint, halt,
     * undecodable instruction). @p key is the terminator's own address
     * or, for halt, the address after it; both are matched.
     */
    void stopEvent(uint32_t key);

    // ----- control-flow resynchronization ----------------------------

    /** Re-anchor the block cursor at @p eip (run entry, post-syscall,
     *  fault delivery, interpreter fallback). */
    void resync(uint32_t eip);

    /** Drop cached canonical blocks overlapping [addr, addr+len)
     *  (self-modifying code). Counters are retained. */
    void invalidateCode(uint32_t addr, uint32_t len);

    // ----- sampling ---------------------------------------------------

    /** Take every sample due at or before simulated time @p now. */
    void maybeSample(double now);

    // ----- results ----------------------------------------------------

    /** Completed architectural executions per canonical block entry. */
    const std::map<uint32_t, uint64_t> &blockExecs() const
    {
        return block_execs_;
    }

    const std::map<uint32_t, CondSite> &condSites() const
    {
        return cond_sites_;
    }

    const std::map<uint32_t, IndirectSite> &indirectSites() const
    {
        return indirect_sites_;
    }

    const BoundedRing<Sample> &samples() const { return samples_; }
    uint64_t samplesDropped() const { return samples_.dropped(); }

    /** Cached canonical block at @p entry; null if never resolved. */
    const GuestBlock *blockAt(uint32_t entry) const
    {
        auto it = blocks_.find(entry);
        return it == blocks_.end() ? nullptr : &it->second;
    }

    const std::map<uint32_t, GuestBlock> &blocks() const
    {
        return blocks_;
    }

    const Config &config() const { return cfg_; }

    /** Internal health/summary counters, prefixed "prof.". */
    StatGroup counters() const;

    uint64_t walkBreaks() const { return walk_breaks_; }
    uint64_t lostEvents() const { return lost_events_; }
    uint64_t eventCount() const { return events_; }

  private:
    /** Resolve (and cache) the canonical block entered at @p entry. */
    const GuestBlock *resolveBlock(uint32_t entry);

    /**
     * Walk from the cursor through static successors until @p matches
     * accepts a block; on success count every visited block as one
     * completed execution and return the matched block. On failure
     * (resolver missing, walk bound, or a non-walkable terminator
     * first) count nothing and return null.
     */
    const GuestBlock *walkTo(
        const std::function<bool(const GuestBlock &)> &matches);

    Config cfg_;
    InsnResolver resolver_;
    SampleGather gather_;

    std::map<uint32_t, GuestBlock> blocks_; //!< Canonical block cache.
    std::map<uint32_t, uint64_t> block_execs_;
    std::map<uint32_t, CondSite> cond_sites_;
    std::map<uint32_t, IndirectSite> indirect_sites_;

    uint32_t cursor_ = 0;       //!< Entry of the block being executed.
    bool cursor_valid_ = false;

    /** Drop-oldest: the time series keeps the most recent window
     *  (the tracer makes the opposite choice; see support/ring.hh). */
    BoundedRing<Sample> samples_;
    uint64_t samples_taken_ = 0;
    uint64_t next_sample_due_ = 0;

    uint64_t events_ = 0;
    uint64_t cond_events_ = 0;
    uint64_t indirect_events_ = 0;
    uint64_t stop_events_ = 0;
    uint64_t walk_breaks_ = 0;  //!< Cursor lost / walk bound exceeded.
    uint64_t lost_events_ = 0;  //!< Events with no valid cursor.
    uint64_t evictions_ = 0;    //!< Top-K evictions across all sites.
    uint64_t resyncs_ = 0;
};

} // namespace el::prof

#endif // EL_SUPPORT_PROFILE_HH
