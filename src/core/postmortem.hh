/**
 * @file
 * Postmortem bundles: one self-contained JSON document explaining an
 * abnormal exit.
 *
 * When a run ends badly — a guest fault terminates the workload, the
 * divergence sentinel convicts a translation, an injected abort
 * surfaces, or the embedder simply asks for one — the bundle captures
 * everything the flight recorder and provenance ledger know, plus the
 * sentinel health ledger, the merged counter set, and the active
 * fault-injection configuration. It is written from whatever state the
 * runtime is in (including an InitError runtime whose machine and
 * translator were never built), so the dump path itself cannot fail
 * for the same reason the run did.
 */

#ifndef EL_CORE_POSTMORTEM_HH
#define EL_CORE_POSTMORTEM_HH

#include <cstdint>
#include <string>

#include "support/buildinfo.hh"

namespace el::core
{

class Runtime;

/** What the embedder knows about how the run ended. */
struct PostmortemInfo
{
    std::string workload;   //!< Workload name (image path).
    std::string exit_class; //!< "ok", "guest_fault", "divergence",
                            //!< "internal", "requested", ...
    int exit_code = 0;      //!< Process exit code being reported.
    bool resumed = false;   //!< Run was restored from a checkpoint.
    uint64_t checkpoint_seq = 0; //!< Capture ordinal resumed from.
    //! Build/schema stamp for the bundle; unset leaves it unstamped.
    const buildinfo::ProducerStamp *producer = nullptr;
};

/**
 * The bundle as a JSON object string (schema "el-postmortem" v1):
 * the exit classification, the merged last-N flight events, the
 * provenance timeline of every entry point (flagging the ones whose
 * hot translation was live at the end), the sentinel health ledger
 * and divergence log, the merged stats namespace, and the fault
 * injector's seed + per-site fire counts.
 */
std::string postmortemJson(Runtime &rt, const PostmortemInfo &info);

/** Write postmortemJson() to @p path; false on I/O failure. */
bool writePostmortem(Runtime &rt, const PostmortemInfo &info,
                     const std::string &path);

} // namespace el::core

#endif // EL_CORE_POSTMORTEM_HH
