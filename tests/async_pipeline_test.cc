/**
 * @file
 * Tests for the asynchronous hot-translation pipeline: guest state must
 * be bit-exact across worker-thread counts and seeds, stale-generation
 * artifacts must be discarded at commit, worker-side injected session
 * aborts must honor the bounded retry policy, publication must rebase
 * staged code correctly, and moving sessions off the guest's critical
 * path must actually shrink hot-translation stall cycles.
 */

#include <gtest/gtest.h>

#include "btlib/abi.hh"
#include "guest/image.hh"
#include "harness/exec.hh"
#include "ia32/assembler.hh"
#include "ipf/code_cache.hh"
#include "support/random.hh"

namespace el
{
namespace
{

using guest::Layout;
using namespace ia32;

/** Random terminating guest program with hot loops (mirrors the
 *  random-diff generator so the pipeline sees realistic candidates). */
guest::Image
randomHotProgram(uint64_t seed, uint32_t iterations = 0)
{
    Rng rng(seed);
    Assembler as(Layout::code_base);

    static const Reg pool[3] = {RegEax, RegEdx, RegEsi};
    for (int r = 0; r < 3; ++r)
        as.movRI(pool[rng.range(3)], static_cast<uint32_t>(rng.next()));
    as.movRI(RegEbx, Layout::data_base);
    as.movRI(RegEcx, iterations
                         ? iterations
                         : 200 + static_cast<uint32_t>(rng.range(200)));

    Label top = as.label();
    as.bind(top);

    unsigned body = 4 + static_cast<unsigned>(rng.range(10));
    for (unsigned k = 0; k < body; ++k) {
        Reg r1 = pool[rng.range(3)];
        Reg r2 = pool[rng.range(3)];
        uint32_t off = static_cast<uint32_t>(rng.range(64)) * 4;
        switch (rng.range(8)) {
          case 0:
            as.aluRR(Op::Add, r1, r2);
            break;
          case 1:
            as.aluRI(Op::Xor, r1, static_cast<int32_t>(rng.next()));
            break;
          case 2:
            as.movMR(memb(RegEbx, static_cast<int32_t>(off)), r1);
            break;
          case 3:
            as.movRM(r1, memb(RegEbx, static_cast<int32_t>(off)));
            break;
          case 4:
            as.imulRR(r1, r2);
            break;
          case 5: {
            as.aluRI(Op::Cmp, r1, static_cast<int32_t>(rng.range(256)));
            Label skip = as.label();
            as.jcc(static_cast<Cond>(rng.range(16)), skip);
            as.aluRI(Op::Add, r2, 1);
            as.bind(skip);
            break;
          }
          case 6:
            as.negR(r1);
            break;
          default:
            as.aluRM(Op::Add, r1, memb(RegEbx, static_cast<int32_t>(off)));
            break;
        }
    }

    as.decR(RegEcx);
    as.jcc(Cond::NE, top);

    // Checksum the arena into eax and exit with it.
    as.movRI(RegEsi, 64);
    as.movRI(RegEax, 0);
    Label sum = as.label();
    as.bind(sum);
    as.aluRM(Op::Add, RegEax, membi(RegEbx, RegEsi, 4, -4));
    as.decR(RegEsi);
    as.jcc(Cond::NE, sum);
    as.aluRI(Op::And, RegEax, 0xff);
    as.movRR(RegEbx, RegEax);
    as.movRI(RegEax, btlib::linux_abi::nr_exit);
    as.intN(btlib::linux_abi::int_vector);

    guest::Image img;
    img.name = "random_hot";
    img.entry = Layout::code_base;
    img.addCode(Layout::code_base, as.finish());
    img.addData(Layout::data_base, 0x2000);
    return img;
}

core::Options
pipelineOpts(unsigned threads, bool deterministic)
{
    core::Options o;
    o.heat_threshold = 16;
    o.hot_batch = 1;
    o.translation_threads = threads;
    o.deterministic_adoption = deterministic;
    return o;
}

// ----- determinism sweep ------------------------------------------------

class AsyncDeterminism : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(AsyncDeterminism, BitExactAcrossThreadCounts)
{
    guest::Image img = randomHotProgram(GetParam());
    harness::Outcome ref =
        harness::runInterpreter(img, btlib::OsAbi::Linux);
    ASSERT_TRUE(ref.exited);

    for (unsigned threads : {0u, 1u, 4u}) {
        for (bool det : {false, true}) {
            if (threads == 0 && det)
                continue; // adoption mode is meaningless synchronously
            harness::TranslatedRun tr = harness::runTranslated(
                img, btlib::OsAbi::Linux, pipelineOpts(threads, det));
            ASSERT_EQ(ref.exited, tr.outcome.exited)
                << "seed " << GetParam() << " threads " << threads;
            EXPECT_EQ(ref.exit_code, tr.outcome.exit_code)
                << "seed " << GetParam() << " threads " << threads;
            std::string why;
            EXPECT_TRUE(
                ref.final_state.equalsArch(tr.outcome.final_state, &why))
                << "seed " << GetParam() << " threads " << threads
                << " det " << det << ": " << why;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsyncDeterminism,
                         ::testing::Range<uint64_t>(1, 9));

TEST(AsyncPipeline, DeterministicAdoptionIsReplayable)
{
    // Same image, same config, deterministic adoption: two runs must
    // agree not just architecturally but in simulated cycle counts.
    guest::Image img = randomHotProgram(5);
    harness::TranslatedRun a = harness::runTranslated(
        img, btlib::OsAbi::Linux, pipelineOpts(4, true));
    harness::TranslatedRun b = harness::runTranslated(
        img, btlib::OsAbi::Linux, pipelineOpts(4, true));
    ASSERT_TRUE(a.outcome.exited);
    ASSERT_TRUE(b.outcome.exited);
    EXPECT_EQ(a.outcome.exit_code, b.outcome.exit_code);
    EXPECT_DOUBLE_EQ(a.outcome.cycles, b.outcome.cycles);
    EXPECT_EQ(a.runtime->stats().get("hot.adopted"),
              b.runtime->stats().get("hot.adopted"));
    EXPECT_EQ(a.runtime->stats().get("hot.stall_cycles"),
              b.runtime->stats().get("hot.stall_cycles"));
}

// ----- stale-generation discard ----------------------------------------

TEST(AsyncPipeline, StaleGenerationArtifactIsDiscarded)
{
    // Stage a session against generation G, flush (G+1), then commit:
    // the artifact must be discarded, never spliced into the new
    // generation.
    guest::Image img = randomHotProgram(2);
    harness::TranslatedRun tr =
        harness::runTranslated(img, btlib::OsAbi::Linux);
    ASSERT_TRUE(tr.outcome.exited);

    core::Translator &t = tr.runtime->translator();
    core::SpecContext spec;
    core::HotSessionInput input;
    ASSERT_TRUE(t.prepareHotInput(Layout::code_base, spec, &input));

    core::HotArtifact art;
    art.generation = tr.runtime->codeCache().generation();
    core::Translator::runHotSession(input, tr.runtime->options(),
                                    nullptr, &art);
    ASSERT_TRUE(art.ok);

    t.flushCodeCache(); // bumps the generation
    uint64_t discards = t.stats.get("hot.discard_stale");
    EXPECT_EQ(t.commitHotArtifact(art), nullptr);
    EXPECT_EQ(t.stats.get("hot.discard_stale"), discards + 1);
}

TEST(AsyncPipeline, FreshGenerationArtifactCommits)
{
    guest::Image img = randomHotProgram(2);
    harness::TranslatedRun tr =
        harness::runTranslated(img, btlib::OsAbi::Linux);
    ASSERT_TRUE(tr.outcome.exited);

    core::Translator &t = tr.runtime->translator();
    core::SpecContext spec;
    core::HotSessionInput input;
    ASSERT_TRUE(t.prepareHotInput(Layout::code_base, spec, &input));

    core::HotArtifact art;
    art.generation = tr.runtime->codeCache().generation();
    core::Translator::runHotSession(input, tr.runtime->options(),
                                    nullptr, &art);
    ASSERT_TRUE(art.ok);

    int64_t before = tr.runtime->codeCache().nextIndex();
    core::BlockInfo *hot = t.commitHotArtifact(art);
    ASSERT_NE(hot, nullptr);
    EXPECT_EQ(hot->kind, core::BlockKind::Hot);
    EXPECT_EQ(hot->cache_entry, before);
    EXPECT_GT(hot->cache_end, hot->cache_entry);
    // Published instructions carry the final block id.
    EXPECT_EQ(tr.runtime->codeCache().at(hot->cache_entry).meta.block_id,
              hot->id);
}

// ----- worker-side injected aborts -------------------------------------

TEST(AsyncPipeline, InjectedWorkerAbortsPinAfterRetryLimit)
{
    // Every hot session aborts (probability 1024/1024 on the worker's
    // per-candidate stream): blocks must be retried hot_retry_limit
    // times and then pinned cold, with the guest bit-exact throughout.
    // Deterministic adoption + a long-running loop + cheap sessions so
    // every abort is adopted (and retried) well within the run.
    guest::Image img = randomHotProgram(3, 20000);
    harness::Outcome ref =
        harness::runInterpreter(img, btlib::OsAbi::Linux);

    core::Options o = pipelineOpts(2, true);
    o.hot_xlate_cost_per_insn = 100.0;
    o.fault.seed = 7;
    o.fault.site(FaultSite::HotXlateAbort, 1024);

    harness::TranslatedRun tr =
        harness::runTranslated(img, btlib::OsAbi::Linux, o);
    ASSERT_TRUE(tr.outcome.exited);
    EXPECT_EQ(ref.exit_code, tr.outcome.exit_code);
    std::string why;
    EXPECT_TRUE(ref.final_state.equalsArch(tr.outcome.final_state, &why))
        << why;

    const StatGroup &ts = tr.runtime->translator().stats;
    const StatGroup &rs = tr.runtime->stats();
    EXPECT_GT(ts.get("hot.aborts_injected"), 0u);
    EXPECT_EQ(ts.get("xlate.hot_blocks"), 0u); // nothing ever committed
    EXPECT_GE(rs.get("recover.hot_pinned"), 1u);
    // Pinning respects the bounded retry budget: each pinned block
    // failed exactly hot_retry_limit times.
    EXPECT_GE(rs.get("recover.hot_abort"),
              rs.get("recover.hot_pinned") * o.hot_retry_limit);
}

// ----- stall-cycle reduction -------------------------------------------

TEST(AsyncPipeline, WorkersCutHotStallCycles)
{
    guest::Image img = randomHotProgram(4);
    harness::TranslatedRun sync = harness::runTranslated(
        img, btlib::OsAbi::Linux, pipelineOpts(0, false));
    harness::TranslatedRun par = harness::runTranslated(
        img, btlib::OsAbi::Linux, pipelineOpts(4, false));
    ASSERT_TRUE(sync.outcome.exited);
    ASSERT_TRUE(par.outcome.exited);

    uint64_t stall_sync = sync.runtime->stats().get("hot.stall_cycles");
    uint64_t stall_par = par.runtime->stats().get("hot.stall_cycles");
    ASSERT_GT(stall_sync, 0u);
    // Acceptance bar: at least a 50% reduction in guest-attributed
    // hot-translation stall.
    EXPECT_LE(stall_par * 2, stall_sync);
}

// ----- publication primitives ------------------------------------------

TEST(CodeCachePublish, RebasesTargetsAndStampsBlockIds)
{
    ipf::CodeCache main_cache, staging;
    for (int k = 0; k < 3; ++k) {
        ipf::Instr pad;
        pad.op = ipf::IpfOp::Nop;
        main_cache.emit(pad);
    }

    ipf::Instr br;
    br.op = ipf::IpfOp::Br;
    br.target = 2; // staging-relative
    staging.emit(br);
    ipf::Instr stub;
    stub.op = ipf::IpfOp::Exit;
    stub.exit_reason = ipf::ExitReason::LinkMiss;
    stub.target = -1; // unlinked: must NOT be rebased
    staging.emit(stub);
    ipf::Instr nop;
    nop.op = ipf::IpfOp::Nop;
    staging.emit(nop);

    int64_t base =
        main_cache.publish(staging, main_cache.generation(), 42);
    ASSERT_EQ(base, 3);
    EXPECT_EQ(main_cache.at(3).target, 5); // 2 + base
    EXPECT_EQ(main_cache.at(4).target, -1);
    for (int64_t i = 3; i < 6; ++i)
        EXPECT_EQ(main_cache.at(i).meta.block_id, 42);
}

TEST(CodeCachePublish, StaleGenerationRejected)
{
    ipf::CodeCache main_cache, staging;
    ipf::Instr nop;
    nop.op = ipf::IpfOp::Nop;
    staging.emit(nop);

    uint64_t old_gen = main_cache.generation();
    main_cache.flushAll();
    EXPECT_EQ(main_cache.publish(staging, old_gen, 1), -1);
    EXPECT_EQ(main_cache.size(), 0u);
    EXPECT_GE(main_cache.publish(staging, main_cache.generation(), 1),
              0);
}

TEST(CodeCachePublish, CheckedPatchRejectsDeadGeneration)
{
    ipf::CodeCache cache;
    ipf::Instr stub;
    stub.op = ipf::IpfOp::Exit;
    stub.exit_reason = ipf::ExitReason::LinkMiss;
    int64_t idx = cache.emit(stub);

    uint64_t gen = cache.generation();
    EXPECT_TRUE(cache.patchToBranchChecked(idx, 0, gen));
    EXPECT_EQ(cache.at(idx).op, ipf::IpfOp::Br);

    ipf::CodeCache cache2;
    int64_t idx2 = cache2.emit(stub);
    uint64_t gen2 = cache2.generation();
    cache2.flushAll();
    cache2.emit(stub); // same index, new generation
    EXPECT_FALSE(cache2.patchToBranchChecked(idx2, 0, gen2));
    EXPECT_EQ(cache2.at(idx2).op, ipf::IpfOp::Exit);
}

} // namespace
} // namespace el
