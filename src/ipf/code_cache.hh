/**
 * @file
 * The translation code cache.
 *
 * Holds the IPF instructions emitted by the translator. Instruction
 * addresses are indices into one growing vector (a simulator-friendly
 * stand-in for a real code cache's byte addresses). Supports the two
 * patching operations the paper describes:
 *  - converting an exit-to-translator stub into a direct branch once the
 *    target block is translated ("connect predecessors"), and
 *  - invalidating a block (SMC / misalignment regeneration / GC) by
 *    turning its entry into a Resync exit.
 */

#ifndef EL_IPF_CODE_CACHE_HH
#define EL_IPF_CODE_CACHE_HH

#include <cstdint>
#include <vector>

#include "ipf/insn.hh"

namespace el::ipf
{

/** Growing container of translated IPF code with patch support. */
class CodeCache
{
  public:
    /** Append one instruction; returns its index. */
    int64_t
    emit(const Instr &instr)
    {
        code_.push_back(instr);
        return static_cast<int64_t>(code_.size()) - 1;
    }

    /** Current end-of-cache index (where the next block will start). */
    int64_t nextIndex() const { return static_cast<int64_t>(code_.size()); }

    size_t size() const { return code_.size(); }

    const Instr &at(int64_t idx) const { return code_[idx]; }
    Instr &at(int64_t idx) { return code_[idx]; }

    /**
     * Patch the exit stub at @p idx into a direct branch to @p target.
     * Used when a block's successor becomes available.
     */
    void patchToBranch(int64_t idx, int64_t target);

    /**
     * Invalidate the block entry at @p idx: further executions exit to
     * the translator with @p reason.
     */
    void invalidateEntry(int64_t idx, ExitReason reason, int64_t payload);

    /** Total instructions emitted with each bucket tag (code-size stats). */
    uint64_t countBucket(Bucket bucket) const;

  private:
    std::vector<Instr> code_;
};

} // namespace el::ipf

#endif // EL_IPF_CODE_CACHE_HH
