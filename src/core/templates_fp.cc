/**
 * @file
 * x87, MMX and SSE translation templates (section 5 of the paper).
 *
 * x87 uses the TOS/TAG-speculated fixed FR mapping (or the FX!32-style
 * in-memory stack under the ablation flag); MMX operates on the general
 * registers with block-level domain switching; SSE operates on the
 * format-tracked XMM representations (packed-int in GR pairs, packed-
 * single bits or packed-double values in FR pairs).
 */

#include "core/emit_env.hh"

#include "ipf/regs.hh"
#include "support/logging.hh"

namespace el::core
{

using ia32::FaultKind;
using ia32::Insn;
using ia32::Op;
using ia32::OperandKind;
using ia32::Reg;
using ipf::CmpRel;
using ipf::FpPrec;
using ipf::IpfOp;

namespace
{

int16_t
fmovTo(EmitEnv &env, int16_t dst, int16_t src)
{
    Il il = env.mk(IpfOp::Fmov);
    il.dst = dst;
    il.src1 = src;
    env.emit(il);
    return dst;
}

/** Emit a 3-operand FP op: dst = a op b at extended precision. */
void
farith(EmitEnv &env, IpfOp op, int16_t dst, int16_t a, int16_t b,
       FpPrec prec = FpPrec::Extended)
{
    Il il = env.mk(op);
    il.dst = dst;
    il.src1 = a;
    il.src2 = b;
    il.ins.prec = prec;
    env.emit(il);
}

int16_t
getf(EmitEnv &env, int16_t fr, unsigned size /* 0=sig,4,8 */)
{
    int16_t v = env.newGr();
    Il il = env.mk(IpfOp::Getf);
    il.dst = v;
    il.src1 = fr;
    il.ins.size = static_cast<uint8_t>(size);
    env.emit(il);
    return v;
}

void
setf(EmitEnv &env, int16_t fr, int16_t gr, unsigned size)
{
    Il il = env.mk(IpfOp::Setf);
    il.dst = fr;
    il.src1 = gr;
    il.ins.size = static_cast<uint8_t>(size);
    env.emit(il);
}

int16_t
extrU(EmitEnv &env, int16_t src, unsigned pos, unsigned len)
{
    int16_t v = env.newGr();
    Il il = env.mk(IpfOp::ExtrU);
    il.dst = v;
    il.src1 = src;
    il.ins.pos = static_cast<uint8_t>(pos);
    il.ins.len = static_cast<uint8_t>(len);
    env.emit(il);
    return v;
}

int16_t
depInto(EmitEnv &env, int16_t val, int16_t into, unsigned pos,
        unsigned len)
{
    int16_t v = env.newGr();
    Il il = env.mk(IpfOp::Dep);
    il.dst = v;
    il.src1 = val;
    il.src2 = into;
    il.ins.pos = static_cast<uint8_t>(pos);
    il.ins.len = static_cast<uint8_t>(len);
    env.emit(il);
    return v;
}

/** IPF arithmetic opcode for an x87 template. */
IpfOp
x87ArithOp(Op op)
{
    switch (op) {
      case Op::Fadd:
        return IpfOp::Fadd;
      case Op::Fsub:
      case Op::Fsubr:
        return IpfOp::Fsub;
      case Op::Fmul:
        return IpfOp::Fmpy;
      case Op::Fdiv:
      case Op::Fdivr:
        return IpfOp::Fdiv;
      default:
        el_panic("not an x87 arith op");
    }
}

/** Guest-fault check for a 16-byte alignment requirement. */
void
check16Aligned(EmitEnv &env, int16_t addr)
{
    int16_t low = extrU(env, addr, 0, 4);
    int16_t p = env.newPr(), p2 = env.newPr();
    Il c = env.mk(IpfOp::CmpImm);
    c.dst = p;
    c.dst2 = p2;
    c.ins.imm = 0;
    c.src2 = low;
    c.ins.crel = CmpRel::Ne;
    env.emit(c);
    env.emitGuestFaultCheck(p, FaultKind::GeneralProtect);
}

/** Load the FP value of an x87 memory operand (m32 or m64). */
int16_t
loadFpOperand(EmitEnv &env, const Insn &insn)
{
    int16_t addr = env.effAddr(insn.src.mem);
    return env.emitLoadF(addr, insn.op_size);
}

} // namespace

bool
tplX87(EmitEnv &env, const Insn &insn)
{
    const bool mem_mode = env.fpMemoryMode();

    switch (insn.op) {
      case Op::Fninit:
        if (mem_mode) {
            int16_t a = env.rtAddr(rt::fp_tos);
            Il st = env.mk(IpfOp::St);
            st.src1 = a;
            st.src2 = ipf::gr_zero;
            st.ins.size = 1;
            env.emit(st);
        } else {
            env.fpInit();
        }
        return true;

      case Op::Fld1:
      case Op::Fldz: {
        int16_t src = insn.op == Op::Fld1 ? ipf::fr_one : ipf::fr_zero;
        if (mem_mode) {
            env.fpMemPush(src);
        } else {
            env.fpPush();
            fmovTo(env, env.frForSt(0), src);
        }
        return true;
      }

      case Op::Fld: {
        if (insn.src.kind == OperandKind::St) {
            if (mem_mode) {
                int16_t v = env.fpMemLoadSt(insn.src.reg);
                env.fpMemPush(v);
            } else {
                int16_t src = env.frForSt(insn.src.reg);
                env.fpPush();
                fmovTo(env, env.frForSt(0), src);
            }
        } else {
            int16_t v = loadFpOperand(env, insn);
            if (mem_mode) {
                env.fpMemPush(v);
            } else {
                env.fpPush();
                fmovTo(env, env.frForSt(0), v);
            }
        }
        return true;
      }

      case Op::Fild: {
        int16_t addr = env.effAddr(insn.src.mem);
        int16_t bits = env.emitLoad(addr, 4);
        int16_t s = env.newGr();
        Il sx = env.mk(IpfOp::Sxt);
        sx.dst = s;
        sx.src1 = bits;
        sx.ins.size = 4;
        env.emit(sx);
        int16_t f = env.newFr();
        setf(env, f, s, 0);
        int16_t fv = env.newFr();
        Il cv = env.mk(IpfOp::FcvtXf);
        cv.dst = fv;
        cv.src1 = f;
        env.emit(cv);
        if (mem_mode) {
            env.fpMemPush(fv);
        } else {
            env.fpPush();
            fmovTo(env, env.frForSt(0), fv);
        }
        return true;
      }

      case Op::Fst: {
        if (insn.dst.kind == OperandKind::St) {
            if (mem_mode) {
                int16_t v = env.fpMemLoadSt(0);
                env.fpMemStoreSt(insn.dst.reg, v);
                if (insn.fp_pop)
                    env.fpMemPop();
            } else {
                int16_t s = env.frForSt(0);
                int16_t d = env.frForSt(insn.dst.reg);
                if (d != s)
                    fmovTo(env, d, s);
                if (insn.fp_pop)
                    env.fpPop();
            }
        } else {
            int16_t addr = env.effAddr(insn.dst.mem);
            int16_t s = mem_mode ? env.fpMemLoadSt(0) : env.frForSt(0);
            env.emitStoreF(addr, s, insn.op_size);
            if (insn.fp_pop)
                mem_mode ? env.fpMemPop() : env.fpPop();
        }
        return true;
      }

      case Op::Fistp: {
        int16_t s = mem_mode ? env.fpMemLoadSt(0) : env.frForSt(0);
        int16_t t = env.newFr();
        Il cv = env.mk(IpfOp::FcvtFxTrunc);
        cv.dst = t;
        cv.src1 = s;
        cv.ins.size = 1; // round-to-nearest (FISTP default)
        env.emit(cv);
        int16_t q = getf(env, t, 0);
        int16_t sq = env.newGr();
        Il sx = env.mk(IpfOp::Sxt);
        sx.dst = sq;
        sx.src1 = q;
        sx.ins.size = 4;
        env.emit(sx);
        int16_t p = env.newPr(), p2 = env.newPr();
        Il c = env.mk(IpfOp::Cmp);
        c.dst = p;
        c.dst2 = p2;
        c.src1 = q;
        c.src2 = sq;
        c.ins.crel = CmpRel::Ne;
        env.emit(c);
        int16_t out = env.newGr();
        Il mv = env.mk(IpfOp::Mov);
        mv.dst = out;
        mv.src1 = q;
        env.emit(mv);
        int16_t indef = env.immGr(0x80000000);
        Il mvp = env.mk(IpfOp::Mov);
        mvp.qp = p;
        mvp.dst = out;
        mvp.src1 = indef;
        env.emit(mvp);
        int16_t addr = env.effAddr(insn.dst.mem);
        env.emitStore(addr, out, 4);
        mem_mode ? env.fpMemPop() : env.fpPop();
        return true;
      }

      case Op::Fadd:
      case Op::Fsub:
      case Op::Fsubr:
      case Op::Fmul:
      case Op::Fdiv:
      case Op::Fdivr: {
        bool reversed = insn.op == Op::Fsubr || insn.op == Op::Fdivr;
        IpfOp op = x87ArithOp(insn.op);
        if (insn.src.kind == OperandKind::Mem) {
            int16_t b = loadFpOperand(env, insn);
            if (mem_mode) {
                int16_t a = env.fpMemLoadSt(0);
                int16_t r = env.newFr();
                farith(env, op, r, reversed ? b : a, reversed ? a : b);
                env.fpMemStoreSt(0, r);
            } else {
                int16_t a = env.frForSt(0);
                farith(env, op, a, reversed ? b : a, reversed ? a : b);
            }
        } else {
            uint8_t di = insn.dst.reg;
            uint8_t si = insn.src.reg;
            if (mem_mode) {
                int16_t a = env.fpMemLoadSt(di);
                int16_t b = env.fpMemLoadSt(si);
                int16_t r = env.newFr();
                farith(env, op, r, reversed ? b : a, reversed ? a : b);
                env.fpMemStoreSt(di, r);
                if (insn.fp_pop)
                    env.fpMemPop();
            } else {
                int16_t a = env.frForSt(di);
                int16_t b = env.frForSt(si);
                farith(env, op, a, reversed ? b : a, reversed ? a : b);
                if (insn.fp_pop)
                    env.fpPop();
            }
        }
        return true;
      }

      case Op::Fxch:
        if (mem_mode) {
            int16_t a = env.fpMemLoadSt(0);
            int16_t b = env.fpMemLoadSt(insn.dst.reg);
            env.fpMemStoreSt(0, b);
            env.fpMemStoreSt(insn.dst.reg, a);
        } else {
            env.fpSwap(insn.dst.reg);
        }
        return true;

      case Op::Fchs:
      case Op::Fabs:
      case Op::Fsqrt: {
        IpfOp op = insn.op == Op::Fchs ? IpfOp::Fneg
                 : insn.op == Op::Fabs ? IpfOp::Fabs
                                       : IpfOp::Fsqrt;
        if (mem_mode) {
            int16_t a = env.fpMemLoadSt(0);
            int16_t r = env.newFr();
            Il il = env.mk(op);
            il.dst = r;
            il.src1 = a;
            il.src2 = a;
            env.emit(il);
            env.fpMemStoreSt(0, r);
        } else {
            int16_t a = env.frForSt(0);
            Il il = env.mk(op);
            il.dst = a;
            il.src1 = a;
            il.src2 = a;
            env.emit(il);
        }
        return true;
      }

      case Op::Fcomi: {
        int16_t a = mem_mode ? env.fpMemLoadSt(0) : env.frForSt(0);
        int16_t b = mem_mode ? env.fpMemLoadSt(insn.src.reg)
                             : env.frForSt(insn.src.reg);
        // Unordered / equal / less predicates.
        int16_t pu = env.newPr(), pu2 = env.newPr();
        Il cu = env.mk(IpfOp::Fcmp);
        cu.dst = pu;
        cu.dst2 = pu2;
        cu.src1 = a;
        cu.src2 = b;
        cu.ins.crel = CmpRel::Unord;
        env.emit(cu);
        int16_t pe = env.newPr(), pe2 = env.newPr();
        Il ce = env.mk(IpfOp::Fcmp);
        ce.dst = pe;
        ce.dst2 = pe2;
        ce.src1 = a;
        ce.src2 = b;
        ce.ins.crel = CmpRel::Eq;
        env.emit(ce);
        int16_t pl = env.newPr(), pl2 = env.newPr();
        Il cl = env.mk(IpfOp::Fcmp);
        cl.dst = pl;
        cl.dst2 = pl2;
        cl.src1 = a;
        cl.src2 = b;
        cl.ins.crel = CmpRel::Lt;
        env.emit(cl);
        int16_t one = env.immGr(1);
        auto setFrom = [&](ia32::Flag flag, int16_t pred) {
            int16_t v = env.newGr();
            env.emitOp(IpfOp::Mov, v, ipf::gr_zero);
            Il mv = env.mk(IpfOp::Mov);
            mv.qp = pred;
            mv.dst = v;
            mv.src1 = one;
            env.emit(mv);
            Il mvu = env.mk(IpfOp::Mov);
            mvu.qp = pu;
            mvu.dst = v;
            mvu.src1 = one;
            env.emit(mvu);
            env.setFlagHome(flag, v);
        };
        setFrom(ia32::FlagZf, pe);
        setFrom(ia32::FlagCf, pl);
        // PF only set for unordered.
        {
            int16_t v = env.newGr();
            env.emitOp(IpfOp::Mov, v, ipf::gr_zero);
            Il mvu = env.mk(IpfOp::Mov);
            mvu.qp = pu;
            mvu.dst = v;
            mvu.src1 = one;
            env.emit(mvu);
            env.setFlagHome(ia32::FlagPf, v);
        }
        env.setFlagHome(ia32::FlagOf, ipf::gr_zero);
        env.setFlagHome(ia32::FlagSf, ipf::gr_zero);
        env.setFlagHome(ia32::FlagAf, ipf::gr_zero);
        if (insn.fp_pop)
            mem_mode ? env.fpMemPop() : env.fpPop();
        return true;
      }

      case Op::Fnstsw: {
        // TOS is a translation-time constant under the speculation; the
        // condition-code bits are not modelled (no non-i FCOM support).
        if (mem_mode) {
            int16_t tosv = env.rtAddr(rt::fp_tos);
            int16_t t = env.newGr();
            Il ld = env.mk(IpfOp::Ld);
            ld.dst = t;
            ld.src1 = tosv;
            ld.ins.size = 1;
            env.emit(ld);
            int16_t sh = env.newGr();
            Il s = env.mk(IpfOp::ShlImm);
            s.dst = sh;
            s.src1 = t;
            s.ins.imm = 11;
            env.emit(s);
            env.writeGuest16(ia32::RegEax, sh);
        } else {
            int16_t v = env.immGr(
                static_cast<int64_t>(((env.spec.tos + env.tosDelta()) & 7))
                << 11);
            env.writeGuest16(ia32::RegEax, v);
        }
        return true;
      }

      default:
        return false;
    }
}

bool
tplMmx(EmitEnv &env, const Insn &insn)
{
    if (insn.op == Op::Emms) {
        env.fpEmms();
        return true;
    }
    env.touchMmx();

    auto readMmSrc = [&](const ia32::Operand &o) -> int16_t {
        if (o.kind == OperandKind::Mm)
            return ipf::grForMmx(o.reg);
        int16_t addr = env.effAddr(o.mem);
        return env.emitLoad(addr, 8);
    };

    switch (insn.op) {
      case Op::Movd: {
        if (insn.dst.kind == OperandKind::Mm) {
            int16_t v = env.readOperand(insn.src, 4);
            Il mv = env.mk(IpfOp::Mov);
            mv.dst = ipf::grForMmx(insn.dst.reg);
            mv.src1 = v;
            env.emit(mv);
        } else {
            int16_t v = extrU(env, ipf::grForMmx(insn.src.reg), 0, 32);
            env.writeOperand(insn.dst, v, 4);
        }
        return true;
      }
      case Op::MovqMm: {
        if (insn.dst.kind == OperandKind::Mm) {
            int16_t v = readMmSrc(insn.src);
            Il mv = env.mk(IpfOp::Mov);
            mv.dst = ipf::grForMmx(insn.dst.reg);
            mv.src1 = v;
            env.emit(mv);
        } else {
            int16_t addr = env.effAddr(insn.dst.mem);
            env.emitStore(addr, ipf::grForMmx(insn.src.reg), 8);
        }
        return true;
      }
      case Op::Paddb:
      case Op::Paddw:
      case Op::Paddd:
      case Op::Psubb:
      case Op::Psubw:
      case Op::Psubd:
      case Op::Pmullw:
      case Op::Pand:
      case Op::Por:
      case Op::Pxor: {
        int16_t d = ipf::grForMmx(insn.dst.reg);
        int16_t b = readMmSrc(insn.src);
        Il il = env.mk(IpfOp::Nop);
        switch (insn.op) {
          case Op::Paddb:
            il = env.mk(IpfOp::Padd);
            il.ins.size = 1;
            break;
          case Op::Paddw:
            il = env.mk(IpfOp::Padd);
            il.ins.size = 2;
            break;
          case Op::Paddd:
            il = env.mk(IpfOp::Padd);
            il.ins.size = 4;
            break;
          case Op::Psubb:
            il = env.mk(IpfOp::Psub);
            il.ins.size = 1;
            break;
          case Op::Psubw:
            il = env.mk(IpfOp::Psub);
            il.ins.size = 2;
            break;
          case Op::Psubd:
            il = env.mk(IpfOp::Psub);
            il.ins.size = 4;
            break;
          case Op::Pmullw:
            il = env.mk(IpfOp::Pmull);
            il.ins.size = 2;
            break;
          case Op::Pand:
            il = env.mk(IpfOp::And);
            break;
          case Op::Por:
            il = env.mk(IpfOp::Or);
            break;
          case Op::Pxor:
            il = env.mk(IpfOp::Xor);
            break;
          default:
            el_panic("unreachable");
        }
        il.dst = d;
        il.src1 = d;
        il.src2 = b;
        env.emit(il);
        return true;
      }
      default:
        return false;
    }
}

namespace
{

/** Load a 16-byte memory operand into a GR pair (lo, hi). */
std::pair<int16_t, int16_t>
load128(EmitEnv &env, const ia32::MemRef &mem, bool aligned)
{
    int16_t addr = env.effAddr(mem);
    if (aligned)
        check16Aligned(env, addr);
    int16_t lo = env.emitLoad(addr, 8);
    int16_t a8 = env.newGr();
    env.emitOp(IpfOp::AddImm, a8, addr, -1, 8);
    int16_t hi = env.emitLoad(a8, 8);
    return {lo, hi};
}

void
store128(EmitEnv &env, const ia32::MemRef &mem, int16_t lo, int16_t hi,
         bool aligned)
{
    int16_t addr = env.effAddr(mem);
    if (aligned)
        check16Aligned(env, addr);
    env.emitStore(addr, lo, 8);
    int16_t a8 = env.newGr();
    env.emitOp(IpfOp::AddImm, a8, addr, -1, 8);
    env.emitStore(a8, hi, 8);
}

/** Read both halves of an XMM register as raw 64-bit GR values. */
std::pair<int16_t, int16_t>
xmmToGrs(EmitEnv &env, uint8_t i)
{
    rt::XmmRep rep = env.xmmRep(i);
    if (rep == rt::XmmInt)
        return {ipf::grForXmm(i, 0), ipf::grForXmm(i, 1)};
    unsigned gsz = rep == rt::XmmPd ? 8 : 0;
    return {getf(env, ipf::frForXmm(i, 0), gsz),
            getf(env, ipf::frForXmm(i, 1), gsz)};
}

/** Overwrite XMM register i from raw bits, in representation rep. */
void
xmmFromGrs(EmitEnv &env, uint8_t i, int16_t lo, int16_t hi,
           rt::XmmRep rep)
{
    if (rep == rt::XmmInt) {
        Il m1 = env.mk(IpfOp::Mov);
        m1.dst = ipf::grForXmm(i, 0);
        m1.src1 = lo;
        env.emit(m1);
        Il m2 = env.mk(IpfOp::Mov);
        m2.dst = ipf::grForXmm(i, 1);
        m2.src1 = hi;
        env.emit(m2);
    } else {
        unsigned ssz = rep == rt::XmmPd ? 8 : 0;
        setf(env, ipf::frForXmm(i, 0), lo, ssz);
        setf(env, ipf::frForXmm(i, 1), hi, ssz);
    }
    env.xmmDefine(i, rep);
}

/** Scalar-single lane0 value of XMM i as an FR (format Ps required). */
int16_t
ssLane0(EmitEnv &env, uint8_t i)
{
    env.xmmRequire(i, rt::XmmPs);
    int16_t bits = getf(env, ipf::frForXmm(i, 0), 0);
    int16_t lane = extrU(env, bits, 0, 32);
    int16_t f = env.newFr();
    setf(env, f, lane, 4);
    return f;
}

/** Write an FR's single value into lane0 of XMM i (format Ps). */
void
setSsLane0(EmitEnv &env, uint8_t i, int16_t f)
{
    env.xmmRequire(i, rt::XmmPs);
    int16_t fb = getf(env, f, 4);
    int16_t cur = getf(env, ipf::frForXmm(i, 0), 0);
    int16_t merged = depInto(env, fb, cur, 0, 32);
    setf(env, ipf::frForXmm(i, 0), merged, 0);
}

} // namespace

bool
tplSse(EmitEnv &env, const Insn &insn)
{
    switch (insn.op) {
      case Op::Movaps:
      case Op::Movups:
      case Op::Movdqa: {
        bool aligned = insn.op != Op::Movups;
        rt::XmmRep rep = insn.op == Op::Movdqa ? rt::XmmInt : rt::XmmPs;
        if (insn.dst.kind == OperandKind::Xmm &&
            insn.src.kind == OperandKind::Xmm) {
            auto [lo, hi] = xmmToGrs(env, insn.src.reg);
            xmmFromGrs(env, insn.dst.reg, lo, hi, env.xmmRep(insn.src.reg));
        } else if (insn.dst.kind == OperandKind::Xmm) {
            auto [lo, hi] = load128(env, insn.src.mem, aligned);
            xmmFromGrs(env, insn.dst.reg, lo, hi, rep);
        } else {
            auto [lo, hi] = xmmToGrs(env, insn.src.reg);
            store128(env, insn.dst.mem, lo, hi, aligned);
        }
        return true;
      }

      case Op::Movss: {
        if (insn.dst.kind == OperandKind::Xmm &&
            insn.src.kind == OperandKind::Xmm) {
            env.xmmRequire(insn.src.reg, rt::XmmPs);
            env.xmmRequire(insn.dst.reg, rt::XmmPs);
            int16_t sb = getf(env, ipf::frForXmm(insn.src.reg, 0), 0);
            int16_t lane = extrU(env, sb, 0, 32);
            int16_t db = getf(env, ipf::frForXmm(insn.dst.reg, 0), 0);
            int16_t merged = depInto(env, lane, db, 0, 32);
            setf(env, ipf::frForXmm(insn.dst.reg, 0), merged, 0);
        } else if (insn.dst.kind == OperandKind::Xmm) {
            int16_t addr = env.effAddr(insn.src.mem);
            int16_t v = env.emitLoad(addr, 4);
            setf(env, ipf::frForXmm(insn.dst.reg, 0), v, 0);
            setf(env, ipf::frForXmm(insn.dst.reg, 1), ipf::gr_zero, 0);
            env.xmmDefine(insn.dst.reg, rt::XmmPs);
        } else {
            env.xmmRequire(insn.src.reg, rt::XmmPs);
            int16_t sb = getf(env, ipf::frForXmm(insn.src.reg, 0), 0);
            int16_t lane = extrU(env, sb, 0, 32);
            int16_t addr = env.effAddr(insn.dst.mem);
            env.emitStore(addr, lane, 4);
        }
        return true;
      }

      case Op::MovsdX: {
        if (insn.dst.kind == OperandKind::Xmm &&
            insn.src.kind == OperandKind::Xmm) {
            env.xmmRequire(insn.src.reg, rt::XmmPd);
            env.xmmRequire(insn.dst.reg, rt::XmmPd);
            fmovTo(env, ipf::frForXmm(insn.dst.reg, 0),
                   ipf::frForXmm(insn.src.reg, 0));
        } else if (insn.dst.kind == OperandKind::Xmm) {
            int16_t addr = env.effAddr(insn.src.mem);
            int16_t v = env.emitLoad(addr, 8);
            setf(env, ipf::frForXmm(insn.dst.reg, 0), v, 8);
            setf(env, ipf::frForXmm(insn.dst.reg, 1), ipf::gr_zero, 8);
            env.xmmDefine(insn.dst.reg, rt::XmmPd);
        } else {
            env.xmmRequire(insn.src.reg, rt::XmmPd);
            int16_t v = getf(env, ipf::frForXmm(insn.src.reg, 0), 8);
            int16_t addr = env.effAddr(insn.dst.mem);
            env.emitStore(addr, v, 8);
        }
        return true;
      }

      case Op::Addps:
      case Op::Subps:
      case Op::Mulps:
      case Op::Divps: {
        IpfOp op = insn.op == Op::Addps ? IpfOp::Fpadd
                 : insn.op == Op::Subps ? IpfOp::Fpsub
                 : insn.op == Op::Mulps ? IpfOp::Fpmpy
                                        : IpfOp::Fpdiv;
        uint8_t d = insn.dst.reg;
        env.xmmRequire(d, rt::XmmPs);
        int16_t blo, bhi;
        if (insn.src.kind == OperandKind::Xmm) {
            env.xmmRequire(insn.src.reg, rt::XmmPs);
            blo = ipf::frForXmm(insn.src.reg, 0);
            bhi = ipf::frForXmm(insn.src.reg, 1);
        } else {
            auto [glo, ghi] = load128(env, insn.src.mem, true);
            blo = env.newFr();
            setf(env, blo, glo, 0);
            bhi = env.newFr();
            setf(env, bhi, ghi, 0);
        }
        farith(env, op, ipf::frForXmm(d, 0), ipf::frForXmm(d, 0), blo);
        farith(env, op, ipf::frForXmm(d, 1), ipf::frForXmm(d, 1), bhi);
        return true;
      }

      case Op::Addss:
      case Op::Subss:
      case Op::Mulss:
      case Op::Divss:
      case Op::Sqrtss: {
        uint8_t d = insn.dst.reg;
        int16_t b;
        if (insn.src.kind == OperandKind::Xmm) {
            b = ssLane0(env, insn.src.reg);
        } else {
            int16_t addr = env.effAddr(insn.src.mem);
            int16_t v = env.emitLoad(addr, 4);
            b = env.newFr();
            setf(env, b, v, 4);
        }
        int16_t r = env.newFr();
        if (insn.op == Op::Sqrtss) {
            Il il = env.mk(IpfOp::Fsqrt);
            il.dst = r;
            il.src1 = b;
            il.src2 = b;
            il.ins.prec = FpPrec::Single;
            env.emit(il);
        } else {
            int16_t a = ssLane0(env, d);
            IpfOp op = insn.op == Op::Addss ? IpfOp::Fadd
                     : insn.op == Op::Subss ? IpfOp::Fsub
                     : insn.op == Op::Mulss ? IpfOp::Fmpy
                                            : IpfOp::Fdiv;
            farith(env, op, r, a, b, FpPrec::Single);
        }
        setSsLane0(env, d, r);
        return true;
      }

      case Op::Addpd:
      case Op::Subpd:
      case Op::Mulpd: {
        IpfOp op = insn.op == Op::Addpd ? IpfOp::Fadd
                 : insn.op == Op::Subpd ? IpfOp::Fsub
                                        : IpfOp::Fmpy;
        uint8_t d = insn.dst.reg;
        env.xmmRequire(d, rt::XmmPd);
        int16_t blo, bhi;
        if (insn.src.kind == OperandKind::Xmm) {
            env.xmmRequire(insn.src.reg, rt::XmmPd);
            blo = ipf::frForXmm(insn.src.reg, 0);
            bhi = ipf::frForXmm(insn.src.reg, 1);
        } else {
            auto [glo, ghi] = load128(env, insn.src.mem, true);
            blo = env.newFr();
            setf(env, blo, glo, 8);
            bhi = env.newFr();
            setf(env, bhi, ghi, 8);
        }
        farith(env, op, ipf::frForXmm(d, 0), ipf::frForXmm(d, 0), blo,
               FpPrec::Double);
        farith(env, op, ipf::frForXmm(d, 1), ipf::frForXmm(d, 1), bhi,
               FpPrec::Double);
        return true;
      }

      case Op::Addsd:
      case Op::Mulsd: {
        uint8_t d = insn.dst.reg;
        env.xmmRequire(d, rt::XmmPd);
        int16_t b;
        if (insn.src.kind == OperandKind::Xmm) {
            env.xmmRequire(insn.src.reg, rt::XmmPd);
            b = ipf::frForXmm(insn.src.reg, 0);
        } else {
            int16_t addr = env.effAddr(insn.src.mem);
            int16_t v = env.emitLoad(addr, 8);
            b = env.newFr();
            setf(env, b, v, 8);
        }
        farith(env, insn.op == Op::Addsd ? IpfOp::Fadd : IpfOp::Fmpy,
               ipf::frForXmm(d, 0), ipf::frForXmm(d, 0), b,
               FpPrec::Double);
        return true;
      }

      case Op::Andps:
      case Op::Xorps:
      case Op::PadddX: {
        uint8_t d = insn.dst.reg;
        env.xmmRequire(d, rt::XmmInt);
        int16_t blo, bhi;
        if (insn.src.kind == OperandKind::Xmm) {
            env.xmmRequire(insn.src.reg, rt::XmmInt);
            blo = ipf::grForXmm(insn.src.reg, 0);
            bhi = ipf::grForXmm(insn.src.reg, 1);
        } else {
            auto [glo, ghi] = load128(env, insn.src.mem, true);
            blo = glo;
            bhi = ghi;
        }
        for (unsigned half = 0; half < 2; ++half) {
            int16_t dd = ipf::grForXmm(d, half);
            int16_t bb = half ? bhi : blo;
            Il il = env.mk(IpfOp::Nop);
            if (insn.op == Op::Andps)
                il = env.mk(IpfOp::And);
            else if (insn.op == Op::Xorps)
                il = env.mk(IpfOp::Xor);
            else {
                il = env.mk(IpfOp::Padd);
                il.ins.size = 4;
            }
            il.dst = dd;
            il.src1 = dd;
            il.src2 = bb;
            env.emit(il);
        }
        return true;
      }

      case Op::Ucomiss: {
        int16_t a = ssLane0(env, insn.dst.reg);
        int16_t b;
        if (insn.src.kind == OperandKind::Xmm) {
            b = ssLane0(env, insn.src.reg);
        } else {
            int16_t addr = env.effAddr(insn.src.mem);
            int16_t v = env.emitLoad(addr, 4);
            b = env.newFr();
            setf(env, b, v, 4);
        }
        int16_t pu = env.newPr(), pu2 = env.newPr();
        Il cu = env.mk(IpfOp::Fcmp);
        cu.dst = pu;
        cu.dst2 = pu2;
        cu.src1 = a;
        cu.src2 = b;
        cu.ins.crel = CmpRel::Unord;
        env.emit(cu);
        int16_t pe = env.newPr(), pe2 = env.newPr();
        Il ce = env.mk(IpfOp::Fcmp);
        ce.dst = pe;
        ce.dst2 = pe2;
        ce.src1 = a;
        ce.src2 = b;
        ce.ins.crel = CmpRel::Eq;
        env.emit(ce);
        int16_t pl = env.newPr(), pl2 = env.newPr();
        Il cl = env.mk(IpfOp::Fcmp);
        cl.dst = pl;
        cl.dst2 = pl2;
        cl.src1 = a;
        cl.src2 = b;
        cl.ins.crel = CmpRel::Lt;
        env.emit(cl);
        int16_t one = env.immGr(1);
        auto setFrom = [&](ia32::Flag flag, int16_t pred) {
            int16_t v = env.newGr();
            env.emitOp(IpfOp::Mov, v, ipf::gr_zero);
            Il mv = env.mk(IpfOp::Mov);
            mv.qp = pred;
            mv.dst = v;
            mv.src1 = one;
            env.emit(mv);
            Il mvu = env.mk(IpfOp::Mov);
            mvu.qp = pu;
            mvu.dst = v;
            mvu.src1 = one;
            env.emit(mvu);
            env.setFlagHome(flag, v);
        };
        setFrom(ia32::FlagZf, pe);
        setFrom(ia32::FlagCf, pl);
        {
            int16_t v = env.newGr();
            env.emitOp(IpfOp::Mov, v, ipf::gr_zero);
            Il mvu = env.mk(IpfOp::Mov);
            mvu.qp = pu;
            mvu.dst = v;
            mvu.src1 = one;
            env.emit(mvu);
            env.setFlagHome(ia32::FlagPf, v);
        }
        env.setFlagHome(ia32::FlagOf, ipf::gr_zero);
        env.setFlagHome(ia32::FlagSf, ipf::gr_zero);
        env.setFlagHome(ia32::FlagAf, ipf::gr_zero);
        return true;
      }

      case Op::Cvtps2pd: {
        uint8_t d = insn.dst.reg;
        int16_t bits;
        if (insn.src.kind == OperandKind::Xmm) {
            env.xmmRequire(insn.src.reg, rt::XmmPs);
            bits = getf(env, ipf::frForXmm(insn.src.reg, 0), 0);
        } else {
            auto [glo, ghi] = load128(env, insn.src.mem, true);
            bits = glo;
        }
        int16_t l0 = extrU(env, bits, 0, 32);
        int16_t l1 = extrU(env, bits, 32, 32);
        setf(env, ipf::frForXmm(d, 0), l0, 4);
        setf(env, ipf::frForXmm(d, 1), l1, 4);
        env.xmmDefine(d, rt::XmmPd);
        return true;
      }

      case Op::Cvtpd2ps: {
        uint8_t d = insn.dst.reg;
        int16_t flo, fhi;
        if (insn.src.kind == OperandKind::Xmm) {
            env.xmmRequire(insn.src.reg, rt::XmmPd);
            flo = ipf::frForXmm(insn.src.reg, 0);
            fhi = ipf::frForXmm(insn.src.reg, 1);
        } else {
            auto [glo, ghi] = load128(env, insn.src.mem, true);
            flo = env.newFr();
            setf(env, flo, glo, 8);
            fhi = env.newFr();
            setf(env, fhi, ghi, 8);
        }
        int16_t b0 = getf(env, flo, 4);
        int16_t b1 = getf(env, fhi, 4);
        int16_t hi_sh = env.newGr();
        Il sh = env.mk(IpfOp::ShlImm);
        sh.dst = hi_sh;
        sh.src1 = b1;
        sh.ins.imm = 32;
        env.emit(sh);
        int16_t packed = env.newGr();
        env.emitOp(IpfOp::Or, packed, hi_sh, b0);
        setf(env, ipf::frForXmm(d, 0), packed, 0);
        setf(env, ipf::frForXmm(d, 1), ipf::gr_zero, 0);
        env.xmmDefine(d, rt::XmmPs);
        return true;
      }

      case Op::Cvtsi2ss: {
        uint8_t d = insn.dst.reg;
        int16_t v = env.readOperand(insn.src, 4);
        int16_t s = env.newGr();
        Il sx = env.mk(IpfOp::Sxt);
        sx.dst = s;
        sx.src1 = v;
        sx.ins.size = 4;
        env.emit(sx);
        int16_t f = env.newFr();
        setf(env, f, s, 0);
        int16_t fv = env.newFr();
        Il cv = env.mk(IpfOp::FcvtXf);
        cv.dst = fv;
        cv.src1 = f;
        env.emit(cv);
        // Round to single.
        int16_t r = env.newFr();
        Il rd = env.mk(IpfOp::Fadd);
        rd.dst = r;
        rd.src1 = fv;
        rd.src2 = ipf::fr_zero;
        rd.ins.prec = FpPrec::Single;
        env.emit(rd);
        setSsLane0(env, d, r);
        return true;
      }

      case Op::Cvttss2si: {
        int16_t f;
        if (insn.src.kind == OperandKind::Xmm) {
            f = ssLane0(env, insn.src.reg);
        } else {
            int16_t addr = env.effAddr(insn.src.mem);
            int16_t v = env.emitLoad(addr, 4);
            f = env.newFr();
            setf(env, f, v, 4);
        }
        int16_t t = env.newFr();
        Il cv = env.mk(IpfOp::FcvtFxTrunc);
        cv.dst = t;
        cv.src1 = f;
        cv.ins.size = 0; // truncate
        env.emit(cv);
        int16_t q = getf(env, t, 0);
        int16_t sq = env.newGr();
        Il sx = env.mk(IpfOp::Sxt);
        sx.dst = sq;
        sx.src1 = q;
        sx.ins.size = 4;
        env.emit(sx);
        int16_t p = env.newPr(), p2 = env.newPr();
        Il c = env.mk(IpfOp::Cmp);
        c.dst = p;
        c.dst2 = p2;
        c.src1 = q;
        c.src2 = sq;
        c.ins.crel = CmpRel::Ne;
        env.emit(c);
        int16_t out = env.newGr();
        Il mv = env.mk(IpfOp::Mov);
        mv.dst = out;
        mv.src1 = q;
        env.emit(mv);
        int16_t indef = env.immGr(0x80000000);
        Il mvp = env.mk(IpfOp::Mov);
        mvp.qp = p;
        mvp.dst = out;
        mvp.src1 = indef;
        env.emit(mvp);
        env.writeGuest(static_cast<Reg>(insn.dst.reg), out, 4,
                       /*clean=*/false);
        return true;
      }

      default:
        return false;
    }
}

} // namespace el::core
