# Empty compiler generated dependencies file for el_support.
# This may be replaced when dependencies are built.
