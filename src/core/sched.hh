/**
 * @file
 * The back end of translation: dead-IL elimination, load speculation,
 * dependency-graph list scheduling into explicit issue groups, register
 * renaming, and emission into the code cache (section 2's "build
 * dependencies graph / remove dead code / rename registers / reorder and
 * bundle" pipeline).
 *
 * Cold blocks run the same pipeline with reordering disabled: ILs stay
 * in template order and are only packed greedily into legal issue
 * groups, which is what "hand-optimized binary templates" amount to.
 */

#ifndef EL_CORE_SCHED_HH
#define EL_CORE_SCHED_HH

#include <cstdint>
#include <vector>

#include "core/blockinfo.hh"
#include "core/il.hh"
#include "core/options.hh"
#include "ipf/code_cache.hh"

namespace el::core
{

/** Result of scheduling one block into the code cache. */
struct ScheduleResult
{
    bool ok = false;
    int64_t entry = -1;  //!< First emitted cache index.
    int64_t end = -1;    //!< One past the last emitted index.
    /** Final cache index of each input IL (-1 if eliminated). */
    std::vector<int64_t> il_to_cache;
    // Statistics.
    uint32_t dead_removed = 0;
    uint32_t loads_speculated = 0;
    uint32_t groups = 0;
};

/**
 * Schedule @p ils into @p cache.
 *
 * @param reorder Enable list scheduling (hot); false keeps program
 *                order (cold).
 * @param speculate_loads Convert reorderable guest loads to ld.s+chk.s.
 * @param recovery Reconstruction maps whose register references are
 *                 rewritten from virtual to physical ids (may be null).
 */
ScheduleResult schedule(std::vector<Il> ils, ipf::CodeCache &cache,
                        const Options &options, bool reorder,
                        bool speculate_loads,
                        std::vector<RecoveryMap> *recovery);

} // namespace el::core

#endif // EL_CORE_SCHED_HH
