#include "core/il.hh"

namespace el::core
{

OperandClasses
operandClasses(ipf::IpfOp op)
{
    using ipf::IpfOp;
    OperandClasses c;
    auto gr = RegClass::Gr;
    auto fr = RegClass::Fr;
    auto pr = RegClass::Pr;
    auto br = RegClass::Br;

    switch (op) {
      case IpfOp::Add:
      case IpfOp::Sub:
      case IpfOp::And:
      case IpfOp::Or:
      case IpfOp::Xor:
      case IpfOp::Andcm:
      case IpfOp::Shl:
      case IpfOp::Shr:
      case IpfOp::ShrU:
      case IpfOp::Shladd:
      case IpfOp::Dep:
      case IpfOp::Padd:
      case IpfOp::Psub:
      case IpfOp::Pmull:
      case IpfOp::Pcmp:
      case IpfOp::Xmul:
      case IpfOp::XDivS:
      case IpfOp::XDivU:
      case IpfOp::XRemS:
      case IpfOp::XRemU:
        c.dst = gr;
        c.src[0] = gr;
        c.src[1] = gr;
        break;
      case IpfOp::AddImm:
      case IpfOp::ShlImm:
      case IpfOp::ShrImm:
      case IpfOp::ShrUImm:
      case IpfOp::Sxt:
      case IpfOp::Zxt:
      case IpfOp::Mov:
      case IpfOp::DepZ:
      case IpfOp::Extr:
      case IpfOp::ExtrU:
      case IpfOp::Popcnt:
        c.dst = gr;
        c.src[0] = gr;
        break;
      case IpfOp::Movl:
        c.dst = gr;
        break;
      case IpfOp::MovToBr:
        c.dst = br;
        c.src[0] = gr;
        break;
      case IpfOp::MovFromBr:
        c.dst = gr;
        c.src[0] = br;
        break;
      case IpfOp::Cmp:
        c.dst = pr;
        c.dst2 = pr;
        c.src[0] = gr;
        c.src[1] = gr;
        break;
      case IpfOp::CmpImm:
        c.dst = pr;
        c.dst2 = pr;
        c.src[1] = gr;
        break;
      case IpfOp::Tbit:
        c.dst = pr;
        c.dst2 = pr;
        c.src[0] = gr;
        break;
      case IpfOp::Ld:
        c.dst = gr;
        c.src[0] = gr;
        break;
      case IpfOp::St:
        c.src[0] = gr;
        c.src[1] = gr;
        break;
      case IpfOp::ChkS:
        c.src[0] = gr;
        break;
      case IpfOp::Ldf:
        c.dst = fr;
        c.src[0] = gr;
        break;
      case IpfOp::Stf:
        c.src[0] = gr;
        c.src[1] = fr;
        break;
      case IpfOp::Getf:
        c.dst = gr;
        c.src[0] = fr;
        break;
      case IpfOp::Setf:
        c.dst = fr;
        c.src[0] = gr;
        break;
      case IpfOp::Fadd:
      case IpfOp::Fsub:
      case IpfOp::Fmpy:
      case IpfOp::Fdiv:
      case IpfOp::Fpadd:
      case IpfOp::Fpsub:
      case IpfOp::Fpmpy:
      case IpfOp::Fpdiv:
        c.dst = fr;
        c.src[0] = fr;
        c.src[1] = fr;
        break;
      case IpfOp::Fma:
      case IpfOp::Fms:
      case IpfOp::Fnma:
        c.dst = fr;
        c.src[0] = fr;
        c.src[1] = fr;
        c.src[2] = fr;
        break;
      case IpfOp::Fsqrt:
      case IpfOp::Fneg:
      case IpfOp::Fabs:
      case IpfOp::FcvtXf:
      case IpfOp::FcvtFxTrunc:
      case IpfOp::Fmov:
      case IpfOp::Fpcvt:
        c.dst = fr;
        c.src[0] = fr;
        break;
      case IpfOp::Fcmp:
        c.dst = pr;
        c.dst2 = pr;
        c.src[0] = fr;
        c.src[1] = fr;
        break;
      case IpfOp::BrRet:
      case IpfOp::BrInd:
        c.src[0] = br;
        break;
      case IpfOp::BrCall:
        c.dst = br;
        break;
      case IpfOp::Exit:
        // IndirectMiss exits carry the target EIP in a GR.
        c.src[0] = gr;
        break;
      default:
        break;
    }
    return c;
}

} // namespace el::core
