/**
 * @file
 * Architectural IA-32 state: GPRs, EIP, EFLAGS, the x87 FP stack (with
 * TOS and TAG), the MMX registers aliased onto the FP significands, and
 * the eight XMM registers.
 *
 * This structure is both the interpreter's live state and the "canonic"
 * IA-32 state that the translator must be able to reconstruct precisely
 * at any faulting instruction (paper section 4). The same layout is used
 * when comparing a translated run against the interpreter oracle.
 */

#ifndef EL_IA32_STATE_HH
#define EL_IA32_STATE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

#include "ia32/fault.hh"
#include "ia32/regs.hh"

namespace el::ia32
{

/** x87 tag state for one physical stack slot (2-state simplification). */
enum class FpTag : uint8_t
{
    Empty = 0,
    Valid = 1,
};

/**
 * The x87 FPU + MMX state.
 *
 * Physical slots are addressed 0..7; ST(i) resolves to slot
 * (top + i) mod 8. The MMX registers alias the 64-bit significands of
 * the physical slots in their fixed positions (MM0 = slot 0), matching
 * Figure 4 and the aliasing rules in section 5.
 */
struct FpuState
{
    std::array<long double, 8> st{}; //!< Physical slots (80-bit extended).
    std::array<FpTag, 8> tag{};
    uint8_t top = 0;                 //!< Top-of-stack (TOS) field.
    uint16_t control = 0x037f;       //!< FPU control word (all masked).
    uint16_t status = 0;             //!< C0..C3 condition bits live here.

    /** Physical slot index of ST(i). */
    uint8_t phys(uint8_t sti) const { return (top + sti) & 7; }

    bool isEmpty(uint8_t sti) const
    {
        return tag[phys(sti)] == FpTag::Empty;
    }

    /** Read ST(i); caller must have checked the tag. */
    long double readSt(uint8_t sti) const { return st[phys(sti)]; }

    /** Write ST(i) and mark it valid. */
    void
    writeSt(uint8_t sti, long double v)
    {
        st[phys(sti)] = v;
        tag[phys(sti)] = FpTag::Valid;
    }

    /** Decrement TOS (stack push direction). */
    void pushTop() { top = (top + 7) & 7; }

    /** Mark ST(0) empty and increment TOS (stack pop). */
    void
    popTop()
    {
        tag[top] = FpTag::Empty;
        top = (top + 1) & 7;
    }

    /** Read MMX register i: the 64-bit significand of physical slot i. */
    uint64_t
    readMm(uint8_t i) const
    {
        uint64_t bits = 0;
        std::memcpy(&bits, &st[i & 7], 8); // x86 long double: low 8 bytes
        return bits;                       // are the significand.
    }

    /**
     * Write MMX register i. Per the IA-32 aliasing rules this writes the
     * significand, sets the exponent field to all ones, marks every slot
     * valid and resets TOS to 0.
     */
    void
    writeMm(uint8_t i, uint64_t bits)
    {
        uint8_t raw[16] = {};
        std::memcpy(raw, &bits, 8);
        raw[8] = 0xff;
        raw[9] = 0xff; // exponent + sign := 0x7fff | sign bit set too
        std::memcpy(&st[i & 7], raw, sizeof(long double) <= 16 ? 10 : 10);
        for (auto &t : tag)
            t = FpTag::Valid;
        top = 0;
    }

    /** FNINIT semantics: empty the stack, reset words. */
    void
    init()
    {
        st.fill(0.0L);
        tag.fill(FpTag::Empty);
        top = 0;
        control = 0x037f;
        status = 0;
    }

    /** Status word with the TOP field folded in (FNSTSW view). */
    uint16_t
    statusWord() const
    {
        return static_cast<uint16_t>((status & ~0x3800u) |
                                     ((top & 7u) << 11));
    }
};

/** One 128-bit XMM register with typed lane accessors. */
struct XmmReg
{
    std::array<uint8_t, 16> bytes{};

    float
    f32(unsigned lane) const
    {
        float v;
        std::memcpy(&v, &bytes[lane * 4], 4);
        return v;
    }

    void
    setF32(unsigned lane, float v)
    {
        std::memcpy(&bytes[lane * 4], &v, 4);
    }

    double
    f64(unsigned lane) const
    {
        double v;
        std::memcpy(&v, &bytes[lane * 8], 8);
        return v;
    }

    void
    setF64(unsigned lane, double v)
    {
        std::memcpy(&bytes[lane * 8], &v, 8);
    }

    uint32_t
    u32(unsigned lane) const
    {
        uint32_t v;
        std::memcpy(&v, &bytes[lane * 4], 4);
        return v;
    }

    void
    setU32(unsigned lane, uint32_t v)
    {
        std::memcpy(&bytes[lane * 4], &v, 4);
    }

    uint64_t
    u64(unsigned lane) const
    {
        uint64_t v;
        std::memcpy(&v, &bytes[lane * 8], 8);
        return v;
    }

    void
    setU64(unsigned lane, uint64_t v)
    {
        std::memcpy(&bytes[lane * 8], &v, 8);
    }

    bool operator==(const XmmReg &o) const { return bytes == o.bytes; }
};

/** Complete user-visible IA-32 architectural state. */
struct State
{
    std::array<uint32_t, NumRegs> gpr{};
    uint32_t eip = 0;
    uint32_t eflags = FlagsFixed;
    FpuState fpu;
    std::array<XmmReg, 8> xmm{};
    uint32_t mxcsr = 0x1f80; //!< SSE control/status (all masked).

    /** Read a GPR at operand size 2 or 4. */
    uint32_t
    readGpr(Reg r, unsigned size = 4) const
    {
        uint32_t v = gpr[r];
        return size == 4 ? v : (v & 0xffff);
    }

    /** Write a GPR at operand size 2 or 4 (partial writes merge). */
    void
    writeGpr(Reg r, uint32_t v, unsigned size = 4)
    {
        if (size == 4)
            gpr[r] = v;
        else
            gpr[r] = (gpr[r] & 0xffff0000u) | (v & 0xffffu);
    }

    /** Read an 8-bit register (AL..BH encoding). */
    uint8_t
    readGpr8(uint8_t enc) const
    {
        if (enc < 4)
            return static_cast<uint8_t>(gpr[enc]);
        return static_cast<uint8_t>(gpr[enc - 4] >> 8);
    }

    /** Write an 8-bit register (AL..BH encoding). */
    void
    writeGpr8(uint8_t enc, uint8_t v)
    {
        if (enc < 4)
            gpr[enc] = (gpr[enc] & 0xffffff00u) | v;
        else
            gpr[enc - 4] = (gpr[enc - 4] & 0xffff00ffu) |
                           (static_cast<uint32_t>(v) << 8);
    }

    bool flag(Flag f) const { return eflags & f; }

    void
    setFlag(Flag f, bool v)
    {
        if (v)
            eflags |= f;
        else
            eflags &= ~static_cast<uint32_t>(f);
    }

    /** Overwrite the six arithmetic flags from @p value. */
    void
    setArithFlags(uint32_t value)
    {
        eflags = (eflags & ~FlagsArith) | (value & FlagsArith) | FlagsFixed;
    }

    /** Render the integer state for diagnostics. */
    std::string toString() const;

    /**
     * Architectural equality used by the differential tests: integer
     * state, arithmetic flags, FP stack contents (valid slots only),
     * TOS/TAG, and XMM registers.
     */
    bool equalsArch(const State &o, std::string *why = nullptr) const;
};

} // namespace el::ia32

#endif // EL_IA32_STATE_HH
