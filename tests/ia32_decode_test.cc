/**
 * @file
 * Directed decoder tests: hand-written byte sequences with expected
 * decodings, including prefixes, ModRM/SIB shapes, x87 escapes and
 * SSE mandatory prefixes.
 */

#include <gtest/gtest.h>

#include <vector>

#include "ia32/decoder.hh"

namespace el::ia32
{
namespace
{

Insn
dec(std::vector<uint8_t> bytes, uint32_t addr = 0x1000)
{
    Insn insn;
    EXPECT_TRUE(decode(bytes.data(), static_cast<unsigned>(bytes.size()),
                       addr, &insn))
        << "failed to decode";
    EXPECT_EQ(insn.len, bytes.size());
    return insn;
}

TEST(Decode, MovRegImm)
{
    Insn i = dec({0xb8, 0x78, 0x56, 0x34, 0x12}); // mov eax, 0x12345678
    EXPECT_EQ(i.op, Op::Mov);
    EXPECT_EQ(i.dst.kind, OperandKind::Gpr);
    EXPECT_EQ(i.dst.reg, RegEax);
    EXPECT_EQ(i.src.imm, 0x12345678);
}

TEST(Decode, MovRegReg)
{
    Insn i = dec({0x89, 0xd8}); // mov eax, ebx
    EXPECT_EQ(i.op, Op::Mov);
    EXPECT_EQ(i.dst.reg, RegEax);
    EXPECT_EQ(i.src.reg, RegEbx);
}

TEST(Decode, MovLoadBaseDisp8)
{
    Insn i = dec({0x8b, 0x46, 0x10}); // mov eax, [esi+0x10]
    EXPECT_EQ(i.op, Op::Mov);
    EXPECT_TRUE(i.src.isMem());
    EXPECT_TRUE(i.src.mem.has_base);
    EXPECT_EQ(i.src.mem.base, RegEsi);
    EXPECT_EQ(i.src.mem.disp, 0x10);
}

TEST(Decode, MovStoreSib)
{
    // mov [eax+ecx*4+0x20], edx
    Insn i = dec({0x89, 0x54, 0x88, 0x20});
    EXPECT_EQ(i.op, Op::Mov);
    EXPECT_TRUE(i.dst.isMem());
    EXPECT_EQ(i.dst.mem.base, RegEax);
    EXPECT_TRUE(i.dst.mem.has_index);
    EXPECT_EQ(i.dst.mem.index, RegEcx);
    EXPECT_EQ(i.dst.mem.scale, 4);
    EXPECT_EQ(i.dst.mem.disp, 0x20);
}

TEST(Decode, MovAbsolute)
{
    Insn i = dec({0x8b, 0x0d, 0x00, 0x20, 0x40, 0x00});
    // mov ecx, [0x402000]
    EXPECT_EQ(i.op, Op::Mov);
    EXPECT_FALSE(i.src.mem.has_base);
    EXPECT_FALSE(i.src.mem.has_index);
    EXPECT_EQ(i.src.mem.disp, 0x402000);
}

TEST(Decode, EbpRequiresDisp)
{
    Insn i = dec({0x8b, 0x45, 0x00}); // mov eax, [ebp+0]
    EXPECT_TRUE(i.src.mem.has_base);
    EXPECT_EQ(i.src.mem.base, RegEbp);
    EXPECT_EQ(i.src.mem.disp, 0);
}

TEST(Decode, AluGroup83SignExtends)
{
    Insn i = dec({0x83, 0xc0, 0xff}); // add eax, -1
    EXPECT_EQ(i.op, Op::Add);
    EXPECT_EQ(i.src.imm, -1);
}

TEST(Decode, AluRmForms)
{
    Insn i = dec({0x01, 0xc8}); // add eax, ecx
    EXPECT_EQ(i.op, Op::Add);
    EXPECT_EQ(i.dst.reg, RegEax);
    EXPECT_EQ(i.src.reg, RegEcx);

    Insn j = dec({0x2b, 0x03}); // sub eax, [ebx]
    EXPECT_EQ(j.op, Op::Sub);
    EXPECT_EQ(j.dst.reg, RegEax);
    EXPECT_TRUE(j.src.isMem());
}

TEST(Decode, EightBitAlu)
{
    Insn i = dec({0x00, 0xd8}); // add al, bl
    EXPECT_EQ(i.op, Op::Add);
    EXPECT_EQ(i.op_size, 1u);
    EXPECT_EQ(i.dst.kind, OperandKind::Gpr8);
    EXPECT_EQ(i.dst.reg, RegAl);
    EXPECT_EQ(i.src.reg, RegBl);
}

TEST(Decode, SixteenBitViaPrefix)
{
    Insn i = dec({0x66, 0x01, 0xc8}); // add ax, cx
    EXPECT_EQ(i.op, Op::Add);
    EXPECT_EQ(i.op_size, 2u);
}

TEST(Decode, PushPop)
{
    EXPECT_EQ(dec({0x50}).op, Op::Push);
    EXPECT_EQ(dec({0x50}).dst.reg, RegEax);
    EXPECT_EQ(dec({0x5f}).op, Op::Pop);
    EXPECT_EQ(dec({0x5f}).dst.reg, RegEdi);
    Insn i = dec({0x6a, 0xfe}); // push -2
    EXPECT_EQ(i.op, Op::Push);
    EXPECT_EQ(i.dst.imm, -2);
}

TEST(Decode, JccShortAndNear)
{
    Insn i = dec({0x74, 0x10}, 0x1000); // je +0x10
    EXPECT_EQ(i.op, Op::Jcc);
    EXPECT_EQ(i.cond, Cond::E);
    EXPECT_EQ(i.target(), 0x1000u + 2 + 0x10);

    Insn j = dec({0x0f, 0x85, 0x00, 0x01, 0x00, 0x00}, 0x2000); // jne
    EXPECT_EQ(j.op, Op::Jcc);
    EXPECT_EQ(j.cond, Cond::NE);
    EXPECT_EQ(j.target(), 0x2000u + 6 + 0x100);
}

TEST(Decode, JmpCallRet)
{
    Insn i = dec({0xe9, 0xfb, 0xff, 0xff, 0xff}, 0x1000); // jmp $-5+... = 0x1000
    EXPECT_EQ(i.op, Op::Jmp);
    EXPECT_EQ(i.target(), 0x1000u);

    Insn c = dec({0xe8, 0x00, 0x00, 0x00, 0x00}, 0x1000);
    EXPECT_EQ(c.op, Op::Call);
    EXPECT_EQ(c.target(), 0x1005u);

    EXPECT_EQ(dec({0xc3}).op, Op::Ret);
    Insn r = dec({0xc2, 0x08, 0x00});
    EXPECT_EQ(r.op, Op::Ret);
    EXPECT_EQ(r.src.imm, 8);
}

TEST(Decode, IndirectBranch)
{
    Insn i = dec({0xff, 0xe0}); // jmp eax
    EXPECT_EQ(i.op, Op::JmpInd);
    EXPECT_EQ(i.src.reg, RegEax);

    Insn c = dec({0xff, 0x13}); // call [ebx]
    EXPECT_EQ(c.op, Op::CallInd);
    EXPECT_TRUE(c.src.isMem());
}

TEST(Decode, ShiftForms)
{
    Insn i = dec({0xc1, 0xe0, 0x04}); // shl eax, 4
    EXPECT_EQ(i.op, Op::Shl);
    EXPECT_EQ(i.src.imm, 4);

    Insn j = dec({0xd1, 0xf8}); // sar eax, 1
    EXPECT_EQ(j.op, Op::Sar);
    EXPECT_EQ(j.src.imm, 1);

    Insn k = dec({0xd3, 0xe8}); // shr eax, cl
    EXPECT_EQ(k.op, Op::Shr);
    EXPECT_EQ(k.src.kind, OperandKind::Gpr8);
    EXPECT_EQ(k.src.reg, RegCl);
}

TEST(Decode, MulDivGroup)
{
    EXPECT_EQ(dec({0xf7, 0xe1}).op, Op::Mul1);
    EXPECT_EQ(dec({0xf7, 0xe9}).op, Op::Imul1);
    EXPECT_EQ(dec({0xf7, 0xf1}).op, Op::Div);
    EXPECT_EQ(dec({0xf7, 0xf9}).op, Op::Idiv);
    EXPECT_EQ(dec({0xf7, 0xd9}).op, Op::Neg);
    EXPECT_EQ(dec({0xf7, 0xd1}).op, Op::Not);
    Insn i = dec({0x0f, 0xaf, 0xc3}); // imul eax, ebx
    EXPECT_EQ(i.op, Op::Imul2);
}

TEST(Decode, SetccCmovcc)
{
    Insn i = dec({0x0f, 0x94, 0xc0}); // sete al
    EXPECT_EQ(i.op, Op::Setcc);
    EXPECT_EQ(i.cond, Cond::E);
    EXPECT_EQ(i.dst.reg, RegAl);

    Insn j = dec({0x0f, 0x4c, 0xc1}); // cmovl eax, ecx
    EXPECT_EQ(j.op, Op::Cmovcc);
    EXPECT_EQ(j.cond, Cond::L);
}

TEST(Decode, X87MemForms)
{
    Insn i = dec({0xd9, 0x03}); // fld dword [ebx]
    EXPECT_EQ(i.op, Op::Fld);
    EXPECT_EQ(i.op_size, 4u);

    Insn j = dec({0xdd, 0x5d, 0xf8}); // fstp qword [ebp-8]
    EXPECT_EQ(j.op, Op::Fst);
    EXPECT_TRUE(j.fp_pop);
    EXPECT_EQ(j.op_size, 8u);

    Insn k = dec({0xd8, 0x0d, 0x00, 0x20, 0x00, 0x00}); // fmul dword [0x2000]
    EXPECT_EQ(k.op, Op::Fmul);
    EXPECT_EQ(k.src.mem.disp, 0x2000);

    Insn l = dec({0xd8, 0x0e}); // fmul dword [esi]
    EXPECT_EQ(l.op, Op::Fmul);
    EXPECT_EQ(l.src.mem.base, RegEsi);
}

TEST(Decode, X87RegForms)
{
    Insn i = dec({0xd9, 0xc9}); // fxch st(1)
    EXPECT_EQ(i.op, Op::Fxch);
    EXPECT_EQ(i.dst.reg, 1);

    Insn j = dec({0xde, 0xc1}); // faddp st(1), st
    EXPECT_EQ(j.op, Op::Fadd);
    EXPECT_TRUE(j.fp_pop);
    EXPECT_EQ(j.dst.reg, 1);

    Insn k = dec({0xde, 0xe9}); // fsubp st(1), st
    EXPECT_EQ(k.op, Op::Fsub);
    EXPECT_TRUE(k.fp_pop);

    EXPECT_EQ(dec({0xd9, 0xe8}).op, Op::Fld1);
    EXPECT_EQ(dec({0xd9, 0xee}).op, Op::Fldz);
    EXPECT_EQ(dec({0xd9, 0xe0}).op, Op::Fchs);
    EXPECT_EQ(dec({0xd9, 0xfa}).op, Op::Fsqrt);
    EXPECT_EQ(dec({0xdf, 0xe0}).op, Op::Fnstsw);
    EXPECT_EQ(dec({0xdb, 0xe3}).op, Op::Fninit);
}

TEST(Decode, Mmx)
{
    Insn i = dec({0x0f, 0x6e, 0xc3}); // movd mm0, ebx
    EXPECT_EQ(i.op, Op::Movd);
    EXPECT_EQ(i.dst.kind, OperandKind::Mm);

    Insn j = dec({0x0f, 0xfe, 0xca}); // paddd mm1, mm2
    EXPECT_EQ(j.op, Op::Paddd);
    EXPECT_EQ(j.dst.reg, 1);
    EXPECT_EQ(j.src.reg, 2);

    EXPECT_EQ(dec({0x0f, 0x77}).op, Op::Emms);
}

TEST(Decode, SseMandatoryPrefixes)
{
    EXPECT_EQ(dec({0x0f, 0x58, 0xc1}).op, Op::Addps);
    EXPECT_EQ(dec({0xf3, 0x0f, 0x58, 0xc1}).op, Op::Addss);
    EXPECT_EQ(dec({0x66, 0x0f, 0x58, 0xc1}).op, Op::Addpd);
    EXPECT_EQ(dec({0xf2, 0x0f, 0x58, 0xc1}).op, Op::Addsd);
    EXPECT_EQ(dec({0x66, 0x0f, 0xfe, 0xc1}).op, Op::PadddX);
    EXPECT_EQ(dec({0x0f, 0xfe, 0xc1}).op, Op::Paddd);
}

TEST(Decode, SseMoves)
{
    Insn i = dec({0x0f, 0x28, 0x00}); // movaps xmm0, [eax]
    EXPECT_EQ(i.op, Op::Movaps);
    EXPECT_TRUE(i.src.isMem());

    Insn j = dec({0xf3, 0x0f, 0x10, 0x08}); // movss xmm1, [eax]
    EXPECT_EQ(j.op, Op::Movss);

    Insn k = dec({0x66, 0x0f, 0x6f, 0x10}); // movdqa xmm2, [eax]
    EXPECT_EQ(k.op, Op::Movdqa);

    Insn fmt = dec({0x0f, 0x5a, 0xc1}); // cvtps2pd xmm0, xmm1
    EXPECT_EQ(fmt.op, Op::Cvtps2pd);
    Insn fmt2 = dec({0x66, 0x0f, 0x5a, 0xc1});
    EXPECT_EQ(fmt2.op, Op::Cvtpd2ps);
}

TEST(Decode, StringOps)
{
    Insn i = dec({0xf3, 0xa5}); // rep movsd
    EXPECT_EQ(i.op, Op::Movs);
    EXPECT_TRUE(i.rep);
    EXPECT_EQ(i.op_size, 4u);

    Insn j = dec({0xaa}); // stosb
    EXPECT_EQ(j.op, Op::Stos);
    EXPECT_FALSE(j.rep);
    EXPECT_EQ(j.op_size, 1u);
}

TEST(Decode, SystemOps)
{
    Insn i = dec({0xcd, 0x80}); // int 0x80
    EXPECT_EQ(i.op, Op::Int);
    EXPECT_EQ(i.src.imm, 0x80);
    EXPECT_EQ(dec({0xcc}).op, Op::Int3);
    EXPECT_EQ(dec({0xf4}).op, Op::Hlt);
    EXPECT_EQ(dec({0x90}).op, Op::Nop);
    EXPECT_EQ(dec({0x0f, 0x0b}).op, Op::Ud2);
    EXPECT_EQ(dec({0xc9}).op, Op::Leave);
    EXPECT_EQ(dec({0x99}).op, Op::Cdq);
}

TEST(Decode, InvalidBytes)
{
    Insn insn;
    std::vector<uint8_t> bad = {0x0f, 0xff};
    EXPECT_FALSE(decode(bad.data(), 2, 0, &insn));
    EXPECT_EQ(insn.op, Op::Invalid);
    EXPECT_GE(insn.len, 1);
}

TEST(Decode, TruncatedBuffer)
{
    Insn insn;
    std::vector<uint8_t> trunc = {0xb8, 0x01};
    EXPECT_FALSE(decode(trunc.data(), 2, 0, &insn));
    EXPECT_EQ(insn.op, Op::Invalid);
}

TEST(Decode, ClassificationHelpers)
{
    Insn push = dec({0x50});
    EXPECT_TRUE(canFault(push));
    EXPECT_TRUE(writesMemory(push));

    Insn mov_rr = dec({0x89, 0xd8});
    EXPECT_FALSE(canFault(mov_rr));
    EXPECT_FALSE(accessesMemory(mov_rr));

    Insn jcc = dec({0x74, 0x00});
    EXPECT_TRUE(endsBlock(jcc));
    EXPECT_EQ(insnFlagsRead(jcc), static_cast<uint32_t>(FlagZf));

    Insn add = dec({0x01, 0xc8});
    EXPECT_EQ(insnFlagsWritten(add), static_cast<uint32_t>(FlagsArith));

    Insn adc = dec({0x11, 0xc8});
    EXPECT_EQ(insnFlagsRead(adc), static_cast<uint32_t>(FlagCf));

    Insn inc = dec({0x40});
    EXPECT_EQ(insnFlagsWritten(inc),
              static_cast<uint32_t>(FlagsArith & ~FlagCf));
}

} // namespace
} // namespace el::ia32
