/**
 * @file
 * Deterministic pseudo-random number generator (SplitMix64).
 *
 * All stochastic choices in workload generation flow through this type so
 * that every test and benchmark run is reproducible from a fixed seed.
 */

#ifndef EL_SUPPORT_RANDOM_HH
#define EL_SUPPORT_RANDOM_HH

#include <cstdint>

namespace el
{

/** Small, fast, seedable PRNG (SplitMix64). */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, n). @p n must be nonzero. */
    uint64_t range(uint64_t n) { return next() % n; }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    between(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(range(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw: true with probability @p percent / 100. */
    bool chance(unsigned percent) { return range(100) < percent; }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    uint64_t state_;
};

} // namespace el

#endif // EL_SUPPORT_RANDOM_HH
