#include "harness/exec.hh"

#include "support/logging.hh"

namespace el::harness
{

std::unique_ptr<btlib::SimOsBase>
makeOs(btlib::OsAbi abi, mem::Memory &memory)
{
    if (abi == btlib::OsAbi::Windows)
        return std::make_unique<btlib::SimWindows>(memory);
    return std::make_unique<btlib::SimLinux>(memory);
}

Outcome
runInterpreter(const guest::Image &image, btlib::OsAbi abi,
               uint64_t max_insns)
{
    Outcome out;
    mem::Memory memory;
    uint32_t esp = guest::load(image, memory);
    auto os = makeOs(abi, memory);
    btlib::BtOsClient client(os->vtable());
    el_assert(client.ok(), "BTOS handshake failed: %s",
              client.error().c_str());

    ia32::State state;
    state.eip = image.entry;
    state.gpr[ia32::RegEsp] = esp;
    ia32::Interpreter interp(state, memory);

    for (uint64_t k = 0; k < max_insns; ++k) {
        ia32::StepResult res = interp.step();
        if (res.kind == ia32::StepKind::Ok)
            continue;
        if (res.kind == ia32::StepKind::Int) {
            btlib::SyscallResult sr =
                client.systemService(state, res.vector);
            if (sr.exit) {
                out.exited = true;
                out.exit_code = sr.exit_code;
                break;
            }
            continue;
        }
        if (res.kind == ia32::StepKind::Halt) {
            out.exited = true;
            out.exit_code = 0;
            break;
        }
        // Fault: deliver to the registered handler, if any.
        btlib::ExceptionDisposition disp =
            client.deliverException(state, res.fault);
        if (disp == btlib::ExceptionDisposition::Terminate) {
            out.faulted = true;
            out.fault = res.fault;
            break;
        }
    }
    out.console = os->consoleOutput();
    out.final_state = state;
    out.guest_insns = interp.retired();
    return out;
}

TranslatedRun
runTranslated(const guest::Image &image, btlib::OsAbi abi,
              core::Options options, const core::CheckpointImage *resume)
{
    TranslatedRun run;
    run.memory = std::make_unique<mem::Memory>();
    uint32_t esp = guest::load(image, *run.memory);
    // From here on "dirty" means "not re-derivable from the image":
    // the page set a checkpoint captures data for.
    run.memory->clearDirty();
    if (resume)
        core::applyCheckpointMemory(*resume, *run.memory);
    run.os = makeOs(abi, *run.memory);
    run.runtime = std::make_unique<core::Runtime>(
        *run.memory, run.os->vtable(), options);
    if (!run.runtime->initOk()) {
        run.outcome.internal_error = true;
        run.outcome.internal_reason =
            "BTOS handshake failed: " + run.runtime->initError();
        return run;
    }
    // Restore the OS AFTER runtime construction: the fresh runtime's
    // area allocation must consume the same default alloc region the
    // original run's startup did (so rtBase matches and the captured
    // page set stays disjoint from it); only then may alloc_next jump
    // to the captured value, so post-resume guest allocations land at
    // exactly the addresses the uninterrupted run would have used.
    if (resume)
        run.os->restore(resume->os);
    run.os->setCycleSink([rt = run.runtime.get()](ipf::Bucket b,
                                                  double c) {
        rt->machine().chargeCycles(b, c);
    });
    if (options.checkpointer)
        options.checkpointer->setOsSource(
            [osp = run.os.get()] { return osp->snapshot(); });

    ia32::State state;
    if (resume) {
        state = resume->state;
    } else {
        state.eip = image.entry;
        state.gpr[ia32::RegEsp] = esp;
    }

    core::RunResult rr = run.runtime->run(state);
    // Let tail-end pipeline sessions land so the flight recorder and
    // any postmortem bundle see the same events on every run.
    run.runtime->quiesce();
    Outcome &out = run.outcome;
    switch (rr.kind) {
      case core::RunResult::Kind::Exit:
        out.exited = true;
        out.exit_code = rr.exit_code;
        break;
      case core::RunResult::Kind::Fault:
        out.faulted = true;
        out.fault = rr.fault;
        break;
      case core::RunResult::Kind::CycleLimit:
        out.internal_error = true;
        out.internal_reason = "simulation cycle budget exhausted";
        break;
      case core::RunResult::Kind::InitError:
        out.internal_error = true;
        out.internal_reason = "BTOS handshake failed";
        break;
    }
    out.console = run.os->consoleOutput();
    out.final_state = state;
    out.cycles = run.runtime->machine().totalCycles();
    out.guest_insns =
        run.runtime->translator().stats.get("xlate.cold_insns");
    return run;
}

Outcome
runDirect(const guest::Image &image, btlib::OsAbi abi,
          uint64_t max_insns)
{
    Outcome out;
    mem::Memory memory;
    uint32_t esp = guest::load(image, memory);
    auto os = makeOs(abi, memory);
    btlib::BtOsClient client(os->vtable());

    // Native/idle time in the direct model accrues as plain cycles.
    double extra_cycles = 0;
    os->setCycleSink([&extra_cycles](ipf::Bucket, double c) {
        extra_cycles += c;
    });

    ia32::State state;
    state.eip = image.entry;
    state.gpr[ia32::RegEsp] = esp;
    ia32::DirectRunner runner(state, memory);

    ia32::StepResult last = runner.run(max_insns, [&](uint8_t vector) {
        btlib::SyscallResult sr = client.systemService(state, vector);
        if (sr.exit) {
            out.exited = true;
            out.exit_code = sr.exit_code;
            return false;
        }
        return true;
    });
    if (last.kind == ia32::StepKind::Halt) {
        out.exited = true;
    } else if (last.kind == ia32::StepKind::Fault) {
        out.faulted = true;
        out.fault = last.fault;
    }
    out.console = os->consoleOutput();
    out.final_state = state;
    out.guest_insns = runner.retired();
    out.cycles = runner.cycles() + extra_cycles;
    return out;
}

} // namespace el::harness
