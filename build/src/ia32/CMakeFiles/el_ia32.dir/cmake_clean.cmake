file(REMOVE_RECURSE
  "CMakeFiles/el_ia32.dir/assembler.cc.o"
  "CMakeFiles/el_ia32.dir/assembler.cc.o.d"
  "CMakeFiles/el_ia32.dir/decoder.cc.o"
  "CMakeFiles/el_ia32.dir/decoder.cc.o.d"
  "CMakeFiles/el_ia32.dir/fault.cc.o"
  "CMakeFiles/el_ia32.dir/fault.cc.o.d"
  "CMakeFiles/el_ia32.dir/insn.cc.o"
  "CMakeFiles/el_ia32.dir/insn.cc.o.d"
  "CMakeFiles/el_ia32.dir/interp.cc.o"
  "CMakeFiles/el_ia32.dir/interp.cc.o.d"
  "CMakeFiles/el_ia32.dir/regs.cc.o"
  "CMakeFiles/el_ia32.dir/regs.cc.o.d"
  "CMakeFiles/el_ia32.dir/state.cc.o"
  "CMakeFiles/el_ia32.dir/state.cc.o.d"
  "CMakeFiles/el_ia32.dir/timing.cc.o"
  "CMakeFiles/el_ia32.dir/timing.cc.o.d"
  "libel_ia32.a"
  "libel_ia32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/el_ia32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
