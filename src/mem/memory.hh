/**
 * @file
 * Sparse, page-granular guest memory.
 *
 * A single Memory instance models the flat virtual address space shared by
 * the translated IA-32 application, the translator runtime data (lookup
 * tables, profile counters, speculation guards) and the IPF machine, just
 * as IA-32 EL shares the application's user address space on a real
 * system. The IA-32 side uses only the low 4 GiB; the runtime may allocate
 * anywhere.
 *
 * All accessors are little-endian and may span page boundaries. Accesses
 * to unmapped pages or accesses violating page permissions fail and report
 * the faulting address so the caller can raise a guest-visible fault.
 */

#ifndef EL_MEM_MEMORY_HH
#define EL_MEM_MEMORY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace el::mem
{

/** Page permissions, OR-able. */
enum Perm : uint8_t
{
    PermNone = 0,
    PermRead = 1,
    PermWrite = 2,
    PermExec = 4,
    PermRW = PermRead | PermWrite,
    PermRX = PermRead | PermExec,
    PermRWX = PermRead | PermWrite | PermExec,
};

/** Why a memory access failed. */
enum class AccessError
{
    None,       //!< Access succeeded.
    Unmapped,   //!< No page mapped at the address.
    Protection, //!< Page mapped without the needed permission.
};

/** Result of a memory access attempt. */
struct AccessResult
{
    AccessError error = AccessError::None;
    uint64_t fault_addr = 0; //!< First address that failed.

    bool ok() const { return error == AccessError::None; }
};

/**
 * Byte-granular undo/redo journal of guest-visible writes.
 *
 * The divergence sentinel arms one of these over a translated region so
 * it can (a) rewind memory to the checkpoint for an interpreter replay,
 * (b) compare the region's net memory effect against the oracle's, and
 * (c) re-apply the writes when the region verifies. Only *architectural*
 * stores are recorded — the permission-checked write path the guest
 * uses — never the runtime's privileged writes (writePriv), and never
 * writes inside the excluded window (the translator's runtime area,
 * which emitted glue code updates through guest-permission stores).
 */
struct WriteJournal
{
    struct Entry
    {
        uint64_t addr = 0;
        uint8_t old_byte = 0; //!< Value before the write.
        uint8_t new_byte = 0; //!< Value written.
    };

    std::vector<Entry> entries;
    uint64_t exclude_lo = 0; //!< [exclude_lo, exclude_hi) not recorded.
    uint64_t exclude_hi = 0;

    void clear() { entries.clear(); }
};

/** Sparse paged memory with permissions and code-page bookkeeping. */
class Memory
{
  public:
    static constexpr uint64_t page_size = 4096;

    Memory() = default;
    Memory(const Memory &) = delete;
    Memory &operator=(const Memory &) = delete;

    /**
     * Map [addr, addr+len) with permissions @p perm, zero-filled.
     * Remapping an existing page just updates its permissions.
     */
    void map(uint64_t addr, uint64_t len, Perm perm);

    /** Remove the mapping of every page overlapping [addr, addr+len). */
    void unmap(uint64_t addr, uint64_t len);

    /** Change permissions of mapped pages in [addr, addr+len). */
    void protect(uint64_t addr, uint64_t len, Perm perm);

    /** True if every byte of [addr, addr+len) is mapped with @p perm. */
    bool check(uint64_t addr, uint64_t len, Perm perm) const;

    /** Read @p len <= 8 bytes as a little-endian integer. */
    AccessResult read(uint64_t addr, unsigned len, uint64_t *out) const;

    /** Write the low @p len <= 8 bytes of @p value, little-endian. */
    AccessResult write(uint64_t addr, unsigned len, uint64_t value);

    /** Bulk read into @p out. */
    AccessResult readBytes(uint64_t addr, void *out, uint64_t len) const;

    /** Bulk write from @p src. */
    AccessResult writeBytes(uint64_t addr, const void *src, uint64_t len);

    /**
     * Fetch up to @p len instruction bytes into @p out; requires exec
     * permission on the starting page. Returns the number of bytes
     * copied (possibly short at a mapping boundary; 0 => fault).
     */
    uint64_t fetch(uint64_t addr, void *out, uint64_t len) const;

    /**
     * Privileged access used by the translator runtime and the loader:
     * ignores page permissions (but still requires the page to exist).
     */
    AccessResult readPriv(uint64_t addr, unsigned len, uint64_t *out) const;
    AccessResult writePriv(uint64_t addr, unsigned len, uint64_t value);

    /** Mark pages of [addr, addr+len) as containing translated-from code. */
    void markCode(uint64_t addr, uint64_t len);

    /** True if any page in [addr, addr+len) is marked as code. */
    bool isCode(uint64_t addr, uint64_t len) const;

    /** Number of mapped pages. */
    size_t mappedPages() const { return pages_.size(); }

    /**
     * Arm (or with null, disarm) the guest-write journal. At most one
     * journal is armed at a time; recording costs one predictable
     * branch per access when disarmed and never changes access results.
     */
    void setWriteJournal(WriteJournal *journal) { journal_ = journal; }
    WriteJournal *writeJournal() { return journal_; }

    /** Rewind every journaled write, newest first (journal disarmed by
     *  the caller; entries are preserved for a later redo). */
    void undoJournal(const WriteJournal &journal);

    /** Re-apply every journaled write, oldest first. */
    void redoJournal(const WriteJournal &journal);

    // ----- checkpoint support ---------------------------------------

    /**
     * Clear every page's dirty bit. The checkpointer calls this right
     * after guest::load on both cold and resume paths: "dirty" then
     * means "no longer derivable by reloading the image", which is
     * exactly the set of pages a checkpoint must carry data for.
     */
    void clearDirty();

    /**
     * Visit every mapped page in unspecified order:
     * fn(page_addr, perm, has_code, dirty, data).
     */
    void forEachPage(
        const std::function<void(uint64_t, Perm, bool, bool,
                                 const std::vector<uint8_t> &)> &fn) const;

    /**
     * Re-create one page from a checkpoint: map it with @p perm, set
     * the code mark, and when @p data is non-null copy a full page of
     * bytes in (marking it dirty). Null @p data means the page was
     * clean at capture — its image-loaded contents are already right.
     */
    void restorePage(uint64_t page_addr, Perm perm, bool has_code,
                     const uint8_t *data);

  private:
    struct Page
    {
        std::vector<uint8_t> data;
        Perm perm = PermNone;
        bool has_code = false;
        bool dirty = false; //!< Written since the last clearDirty().

        Page() : data(page_size, 0) {}
    };

    Page *find(uint64_t addr);
    const Page *find(uint64_t addr) const;

    /** Generic access walker shared by the typed accessors. */
    AccessResult access(uint64_t addr, void *buf, uint64_t len, bool write,
                        bool check_perm, Perm perm);
    AccessResult accessConst(uint64_t addr, void *buf, uint64_t len,
                             bool check_perm, Perm perm) const;

    std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;
    WriteJournal *journal_ = nullptr; //!< Null = no recording.
};

} // namespace el::mem

#endif // EL_MEM_MEMORY_HH
