/**
 * @file
 * Section 5's misalignment case study: "one workload that initially
 * took 1236 seconds to complete, completed after 133 seconds when
 * adding misalignment detection and avoidance" (~9.3x). This bench runs
 * a misalignment-heavy kernel with avoidance disabled and enabled.
 */

#include "bench/bench_common.hh"

using namespace el;

int
main(int argc, char **argv)
{
    if (int rc = bench::handleArgs(argc, argv); rc >= 0)
        return rc;
    bench::banner("Misalignment detection & avoidance case study",
                  "section 5 (1236s -> 133s)");

    guest::WorkloadParams p;
    p.outer_iters = 60;
    p.size = 12000;
    p.misaligned = 2; // every 4-byte access is 2-byte misaligned
    guest::Workload w = guest::buildMatrix("misaligned-app", p);

    core::Options off;
    off.enable_misalign_avoidance = false;
    off.max_run_cycles = 8ULL * 1000 * 1000 * 1000; // let it finish
    harness::TranslatedRun raw =
        harness::runTranslated(w.image, w.params.abi, off);
    harness::TranslatedRun avoid =
        harness::runTranslated(w.image, w.params.abi);

    Table t({"configuration", "cycles", "misaligned accesses",
             "relative time"});
    t.addRow({"no avoidance", strfmt("%.0f", raw.outcome.cycles),
              strfmt("%llu", (unsigned long long)
                     raw.runtime->machine().misalignedAccesses()),
              "1.00x"});
    t.addRow({"3-stage detection+avoidance",
              strfmt("%.0f", avoid.outcome.cycles),
              strfmt("%llu", (unsigned long long)
                     avoid.runtime->machine().misalignedAccesses()),
              strfmt("%.2fx faster",
                     raw.outcome.cycles / avoid.outcome.cycles)});
    t.addRow({"(paper)", "1236s -> 133s", "",
              "9.29x faster"});

    bench::Report rep("case_misalignment_speedup");
    rep.row("no_avoidance")
        .metric("cycles", raw.outcome.cycles)
        .metric("misaligned_accesses",
                static_cast<double>(
                    raw.runtime->machine().misalignedAccesses()))
        .attribution(*raw.runtime);
    rep.row("avoidance")
        .metric("cycles", avoid.outcome.cycles)
        .metric("misaligned_accesses",
                static_cast<double>(
                    avoid.runtime->machine().misalignedAccesses()))
        .attribution(*avoid.runtime);
    rep.scalar("speedup", raw.outcome.cycles / avoid.outcome.cycles,
               0.20);
    rep.write();
    std::printf("%s\n", t.render().c_str());
    std::printf("stage transitions: %llu block regenerations, "
                "%llu misalignment events recorded\n",
                (unsigned long long)avoid.runtime->translator()
                    .stats.get("misalign.block_regenerations"),
                (unsigned long long)avoid.runtime->translator()
                    .stats.get("misalign.events"));
    return 0;
}
