/**
 * @file
 * Bounded ring buffer shared by the observability recorders.
 *
 * Both the tracer and the profiler keep fixed-capacity event buffers so
 * an instrumented run can never grow without bound; they differ only in
 * which end overflow sacrifices. The tracer keeps the *oldest* events
 * (drop-newest: the front of a lifecycle trace explains the rest), the
 * profiler keeps the *newest* samples (drop-oldest: a time series wants
 * the most recent window). Divergence-sentinel visit logs reuse the
 * same type. Every drop is counted so consumers can tell a complete
 * recording from a truncated one.
 */

#ifndef EL_SUPPORT_RING_HH
#define EL_SUPPORT_RING_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>

namespace el
{

/** What a full ring does with the next push. */
enum class RingPolicy
{
    DropOldest, //!< Evict the front to admit the new element.
    DropNewest, //!< Refuse the new element; keep what is stored.
};

/** Fixed-capacity FIFO with an explicit overflow policy + drop count. */
template <typename T>
class BoundedRing
{
  public:
    explicit BoundedRing(size_t capacity,
                         RingPolicy policy = RingPolicy::DropOldest)
        : capacity_(capacity ? capacity : 1), policy_(policy)
    {}

    /** True when the element was stored (DropNewest refuses on full). */
    bool
    push(T value)
    {
        if (items_.size() >= capacity_) {
            ++dropped_;
            if (policy_ == RingPolicy::DropNewest)
                return false;
            items_.pop_front();
        }
        items_.push_back(std::move(value));
        return true;
    }

    size_t size() const { return items_.size(); }
    bool empty() const { return items_.empty(); }
    size_t capacity() const { return capacity_; }
    RingPolicy policy() const { return policy_; }

    /** Elements sacrificed to the capacity bound so far. */
    uint64_t dropped() const { return dropped_; }

    /** Drop the contents (the drop counter is preserved). */
    void clear() { items_.clear(); }

    const T &operator[](size_t i) const { return items_[i]; }
    T &operator[](size_t i) { return items_[i]; }
    const T &front() const { return items_.front(); }
    const T &back() const { return items_.back(); }

    auto begin() const { return items_.begin(); }
    auto end() const { return items_.end(); }
    auto begin() { return items_.begin(); }
    auto end() { return items_.end(); }

  private:
    size_t capacity_;
    RingPolicy policy_;
    std::deque<T> items_;
    uint64_t dropped_ = 0;
};

} // namespace el

#endif // EL_SUPPORT_RING_HH
