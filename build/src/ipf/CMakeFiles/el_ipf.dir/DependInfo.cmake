
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ipf/bundle.cc" "src/ipf/CMakeFiles/el_ipf.dir/bundle.cc.o" "gcc" "src/ipf/CMakeFiles/el_ipf.dir/bundle.cc.o.d"
  "/root/repo/src/ipf/code_cache.cc" "src/ipf/CMakeFiles/el_ipf.dir/code_cache.cc.o" "gcc" "src/ipf/CMakeFiles/el_ipf.dir/code_cache.cc.o.d"
  "/root/repo/src/ipf/insn.cc" "src/ipf/CMakeFiles/el_ipf.dir/insn.cc.o" "gcc" "src/ipf/CMakeFiles/el_ipf.dir/insn.cc.o.d"
  "/root/repo/src/ipf/machine.cc" "src/ipf/CMakeFiles/el_ipf.dir/machine.cc.o" "gcc" "src/ipf/CMakeFiles/el_ipf.dir/machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/el_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/el_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
