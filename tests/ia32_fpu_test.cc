/**
 * @file
 * x87 FP stack and MMX aliasing tests: TOS rotation, TAG faults, FXCH,
 * the store/convert paths, FCOMI flags, and the MMX<->FP aliasing rules
 * the paper's section 5 speculates on.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "ia32/assembler.hh"
#include "ia32/interp.hh"

namespace el::ia32
{
namespace
{

constexpr uint32_t code_base = 0x08048000;
constexpr uint32_t data_base = 0x10000000;
constexpr uint32_t stack_top = 0x20000000;

class FpuTest : public ::testing::Test
{
  protected:
    void
    install(Assembler &as)
    {
        std::vector<uint8_t> code = as.finish();
        mem.map(code_base, code.size() + 16, mem::PermRWX);
        ASSERT_TRUE(
            mem.writeBytes(code_base, code.data(), code.size()).ok());
        mem.map(data_base, 0x10000, mem::PermRW);
        mem.map(stack_top - 0x10000, 0x10000, mem::PermRW);
        st.eip = code_base;
        st.gpr[RegEsp] = stack_top;
    }

    StepResult
    run(uint64_t max_steps = 100000)
    {
        Interpreter interp(st, mem);
        StepResult res;
        for (uint64_t i = 0; i < max_steps; ++i) {
            res = interp.step();
            if (res.kind != StepKind::Ok)
                return res;
        }
        return res;
    }

    void
    putF64(uint32_t addr, double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, 8);
        ASSERT_TRUE(mem.write(addr, 8, bits).ok());
    }

    void
    putF32(uint32_t addr, float v)
    {
        uint32_t bits;
        std::memcpy(&bits, &v, 4);
        ASSERT_TRUE(mem.write(addr, 4, bits).ok());
    }

    double
    getF64(uint32_t addr)
    {
        uint64_t bits = 0;
        EXPECT_TRUE(mem.read(addr, 8, &bits).ok());
        double v;
        std::memcpy(&v, &bits, 8);
        return v;
    }

    float
    getF32(uint32_t addr)
    {
        uint64_t bits = 0;
        EXPECT_TRUE(mem.read(addr, 4, &bits).ok());
        float v;
        uint32_t b32 = static_cast<uint32_t>(bits);
        std::memcpy(&v, &b32, 4);
        return v;
    }

    mem::Memory mem;
    State st;
};

TEST_F(FpuTest, PushDecrementsTos)
{
    Assembler as(code_base);
    as.fldz();
    as.fld1();
    as.hlt();
    install(as);
    run();
    EXPECT_EQ(st.fpu.top, 6u); // two pushes from 0 wrap to 6
    EXPECT_EQ(st.fpu.readSt(0), 1.0L);
    EXPECT_EQ(st.fpu.readSt(1), 0.0L);
}

TEST_F(FpuTest, LoadComputeStore)
{
    Assembler as(code_base);
    as.movRI(RegEbx, data_base);
    as.fldM64(memb(RegEbx, 0));
    as.fldM64(memb(RegEbx, 8));
    as.farithStiSt0(Op::Fadd, 1, true); // faddp st(1), st
    as.fstM64(memb(RegEbx, 16), true);
    as.hlt();
    install(as);
    putF64(data_base, 1.5);
    putF64(data_base + 8, 2.25);
    run();
    EXPECT_DOUBLE_EQ(getF64(data_base + 16), 3.75);
    EXPECT_EQ(st.fpu.top, 0u) << "stack should be balanced";
    EXPECT_TRUE(st.fpu.isEmpty(0));
}

TEST_F(FpuTest, SubAndSubrDirections)
{
    Assembler as(code_base);
    as.movRI(RegEbx, data_base);
    as.fldM64(memb(RegEbx, 0));    // st0 = 10
    as.farithM64(Op::Fsub, memb(RegEbx, 8));  // st0 = 10 - 4 = 6
    as.fstM64(memb(RegEbx, 16), false);
    as.farithM64(Op::Fsubr, memb(RegEbx, 8)); // st0 = 4 - 6 = -2
    as.fstM64(memb(RegEbx, 24), true);
    as.hlt();
    install(as);
    putF64(data_base, 10.0);
    putF64(data_base + 8, 4.0);
    run();
    EXPECT_DOUBLE_EQ(getF64(data_base + 16), 6.0);
    EXPECT_DOUBLE_EQ(getF64(data_base + 24), -2.0);
}

TEST_F(FpuTest, FxchSwaps)
{
    Assembler as(code_base);
    as.movRI(RegEbx, data_base);
    as.fldM64(memb(RegEbx, 0));  // st0=1
    as.fldM64(memb(RegEbx, 8));  // st0=2 st1=1
    as.fxch(1);                  // st0=1 st1=2
    as.fstM64(memb(RegEbx, 16), true);
    as.fstM64(memb(RegEbx, 24), true);
    as.hlt();
    install(as);
    putF64(data_base, 1.0);
    putF64(data_base + 8, 2.0);
    run();
    EXPECT_DOUBLE_EQ(getF64(data_base + 16), 1.0);
    EXPECT_DOUBLE_EQ(getF64(data_base + 24), 2.0);
}

TEST_F(FpuTest, FxchgHeavyCompilerIdiom)
{
    // The idiom that motivates FXCH elimination: compute a*b + c*d with
    // the stack-top restriction forcing fxch traffic.
    Assembler as(code_base);
    as.movRI(RegEbx, data_base);
    as.fldM64(memb(RegEbx, 0));   // a
    as.farithM64(Op::Fmul, memb(RegEbx, 8));  // a*b
    as.fldM64(memb(RegEbx, 16));  // c
    as.farithM64(Op::Fmul, memb(RegEbx, 24)); // c*d
    as.fxch(1);
    as.farithStiSt0(Op::Fadd, 1, true);
    as.fstM64(memb(RegEbx, 32), true);
    as.hlt();
    install(as);
    putF64(data_base, 2.0);
    putF64(data_base + 8, 3.0);
    putF64(data_base + 16, 5.0);
    putF64(data_base + 24, 7.0);
    run();
    EXPECT_DOUBLE_EQ(getF64(data_base + 32), 41.0);
}

TEST_F(FpuTest, StackOverflowFaults)
{
    Assembler as(code_base);
    for (int i = 0; i < 8; ++i)
        as.fldz();
    uint32_t fault_eip = as.pc();
    as.fldz(); // 9th push overflows
    as.hlt();
    install(as);
    StepResult res = run();
    EXPECT_EQ(res.kind, StepKind::Fault);
    EXPECT_EQ(res.fault.kind, FaultKind::FpStackFault);
    EXPECT_EQ(res.fault.eip, fault_eip);
}

TEST_F(FpuTest, StackUnderflowFaults)
{
    Assembler as(code_base);
    as.fninit();
    uint32_t fault_eip = as.pc();
    as.farithSt0Sti(Op::Fadd, 1); // empty stack
    as.hlt();
    install(as);
    StepResult res = run();
    EXPECT_EQ(res.kind, StepKind::Fault);
    EXPECT_EQ(res.fault.kind, FaultKind::FpStackFault);
    EXPECT_EQ(res.fault.eip, fault_eip);
}

TEST_F(FpuTest, SinglePrecisionRoundTrip)
{
    Assembler as(code_base);
    as.movRI(RegEbx, data_base);
    as.fldM32(memb(RegEbx, 0));
    as.farithM32(Op::Fmul, memb(RegEbx, 4));
    as.fstM32(memb(RegEbx, 8), true);
    as.hlt();
    install(as);
    putF32(data_base, 1.5f);
    putF32(data_base + 4, 4.0f);
    run();
    EXPECT_FLOAT_EQ(getF32(data_base + 8), 6.0f);
}

TEST_F(FpuTest, FildFistp)
{
    Assembler as(code_base);
    as.movRI(RegEbx, data_base);
    as.movMI(memb(RegEbx, 0), static_cast<uint32_t>(-12345));
    as.fildM32(memb(RegEbx, 0));
    as.farithM32(Op::Fadd, memb(RegEbx, 8));
    as.fistpM32(memb(RegEbx, 4));
    as.hlt();
    install(as);
    putF32(data_base + 8, 45.0f);
    run();
    uint64_t v;
    ASSERT_TRUE(mem.read(data_base + 4, 4, &v).ok());
    EXPECT_EQ(static_cast<int32_t>(v), -12300);
}

TEST_F(FpuTest, FcomiSetsEflags)
{
    Assembler as(code_base);
    as.movRI(RegEbx, data_base);
    as.fldM64(memb(RegEbx, 0)); // 2.0 -> st1
    as.fldM64(memb(RegEbx, 8)); // 1.0 -> st0
    as.fcomi(1, false);         // compare 1.0 vs 2.0 -> below
    as.setcc(Cond::B, RegAl);
    as.hlt();
    install(as);
    putF64(data_base, 2.0);
    putF64(data_base + 8, 1.0);
    run();
    EXPECT_EQ(st.gpr[RegEax] & 0xff, 1u);
    EXPECT_TRUE(st.flag(FlagCf));
    EXPECT_FALSE(st.flag(FlagZf));
}

TEST_F(FpuTest, ChsAbsSqrt)
{
    Assembler as(code_base);
    as.movRI(RegEbx, data_base);
    as.fldM64(memb(RegEbx, 0));
    as.fchs();
    as.fabs_();
    as.fsqrt();
    as.fstM64(memb(RegEbx, 8), true);
    as.hlt();
    install(as);
    putF64(data_base, 16.0);
    run();
    EXPECT_DOUBLE_EQ(getF64(data_base + 8), 4.0);
}

TEST_F(FpuTest, FnstswReportsTop)
{
    Assembler as(code_base);
    as.fldz();
    as.fldz();
    as.fldz();
    as.fnstswAx();
    as.hlt();
    install(as);
    run();
    unsigned top = (st.gpr[RegEax] >> 11) & 7;
    EXPECT_EQ(top, 5u);
}

TEST_F(FpuTest, MmxWriteAliasesFpuState)
{
    Assembler as(code_base);
    as.fldz();
    as.fldz(); // top = 6
    as.movRI(RegEax, 0x1234);
    as.movdMmR(0, RegEax); // MMX write: top := 0, all tags valid
    as.hlt();
    install(as);
    run();
    EXPECT_EQ(st.fpu.top, 0u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(st.fpu.tag[i], FpTag::Valid);
    EXPECT_EQ(st.fpu.readMm(0), 0x1234u);
}

TEST_F(FpuTest, MmxArithmeticLanes)
{
    Assembler as(code_base);
    as.movRI(RegEbx, data_base);
    as.movqMmM(0, memb(RegEbx, 0));
    as.movqMmM(1, memb(RegEbx, 8));
    as.pArithMmMm(Op::Paddw, 0, 1);
    as.movqMMm(memb(RegEbx, 16), 0);
    as.hlt();
    install(as);
    ASSERT_TRUE(mem.write(data_base, 8, 0x0001000200030004ULL).ok());
    ASSERT_TRUE(mem.write(data_base + 8, 8, 0x000100010001ffffULL).ok());
    run();
    uint64_t v;
    ASSERT_TRUE(mem.read(data_base + 16, 8, &v).ok());
    EXPECT_EQ(v, 0x0002000300040003ULL);
}

TEST_F(FpuTest, MmxLaneOverflowWraps)
{
    Assembler as(code_base);
    as.movRI(RegEbx, data_base);
    as.movqMmM(0, memb(RegEbx, 0));
    as.pArithMmMm(Op::Paddb, 0, 0); // double each byte lane
    as.movqMMm(memb(RegEbx, 8), 0);
    as.hlt();
    install(as);
    ASSERT_TRUE(mem.write(data_base, 8, 0x80ff7f0102030405ULL).ok());
    run();
    uint64_t v;
    ASSERT_TRUE(mem.read(data_base + 8, 8, &v).ok());
    EXPECT_EQ(v, 0x00fefe020406080aULL);
}

TEST_F(FpuTest, EmmsEmptiesTags)
{
    Assembler as(code_base);
    as.movRI(RegEax, 7);
    as.movdMmR(0, RegEax);
    as.emms();
    as.fldz(); // must succeed after EMMS
    as.hlt();
    install(as);
    EXPECT_EQ(run().kind, StepKind::Halt);
    EXPECT_EQ(st.fpu.tag[7], FpTag::Valid); // the fldz slot (top=7)
}

TEST_F(FpuTest, FpAfterMmxWithoutEmmsFaults)
{
    // All 8 slots become valid after an MMX write, so a subsequent FP
    // push must raise a stack fault — the behaviour that motivates the
    // translator's MMX/FP domain speculation.
    Assembler as(code_base);
    as.movRI(RegEax, 7);
    as.movdMmR(0, RegEax);
    uint32_t fault_eip = as.pc();
    as.fldz();
    as.hlt();
    install(as);
    StepResult res = run();
    EXPECT_EQ(res.kind, StepKind::Fault);
    EXPECT_EQ(res.fault.kind, FaultKind::FpStackFault);
    EXPECT_EQ(res.fault.eip, fault_eip);
}

} // namespace
} // namespace el::ia32
