#include "core/postmortem.hh"

#include <fstream>
#include <set>

#include "core/runtime.hh"
#include "persist/store.hh"
#include "support/json.hh"
#include "support/profile.hh"
#include "support/sentinel.hh"
#include "support/trace.hh"

namespace el::core
{

std::string
postmortemJson(Runtime &rt, const PostmortemInfo &info)
{
    // Let in-flight pipeline sessions land so worker-lane flight
    // events are complete and the bundle is run-to-run deterministic.
    rt.quiesce();

    json::Writer w;
    w.beginObject();
    w.kv("kind", "el-postmortem");
    w.kv("version", 1);
    if (info.producer)
        buildinfo::writeStamp(w, *info.producer);
    w.kv("workload", info.workload);

    w.key("exit");
    w.beginObject();
    w.kv("class", info.exit_class);
    w.kv("code", static_cast<int64_t>(info.exit_code));
    w.kv("resumed", info.resumed);
    if (info.resumed)
        w.kv("checkpoint_seq", info.checkpoint_seq);
    if (!rt.initOk()) {
        // A failed vtable handshake carries a reason; a failed runtime
        // area allocation (rt_base_ == 0) does not, so name it here.
        std::string why = rt.initError();
        if (why.empty())
            why = "runtime area allocation failed";
        w.kv("init_error", why);
    }
    w.endObject();

    bool alive = rt.initOk();
    if (alive)
        w.kv("cycles", rt.machine().totalCycles());

    // ----- flight: the merged last-N event tail ---------------------
    if (const flight::FlightRecorder *fr = rt.flight()) {
        w.key("flight");
        w.beginObject();
        w.kv("ring_capacity",
             static_cast<uint64_t>(fr->ringCapacity()));
        w.kv("dropped", fr->dropped());
        w.key("events");
        w.beginArray();
        for (const flight::Event &e : fr->snapshot()) {
            w.beginObject();
            w.kv("kind", flight::kindName(e.kind));
            w.kv("lane", static_cast<uint64_t>(e.lane));
            w.kv("ts", e.ts);
            w.kv("a", e.a);
            w.kv("b", e.b);
            w.kv("c", e.c);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }

    // ----- provenance: every entry point's lifecycle ----------------
    if (const ProvenanceLedger *pl = rt.provenance()) {
        // The entry points whose hot translation was live (published,
        // not invalidated) when the run ended: the postmortem reader
        // starts from these — they are what the guest was executing.
        std::set<uint32_t> hot_live;
        if (alive)
            for (const auto &bi : rt.translator().allBlocks())
                if (bi && bi->kind == BlockKind::Hot &&
                    !bi->invalidated)
                    hot_live.insert(bi->entry_eip);

        w.key("provenance");
        w.beginArray();
        for (const auto &[eip, ring] : pl->all()) {
            w.beginObject();
            w.kv("eip", static_cast<uint64_t>(eip));
            w.kv("in_hot_set", hot_live.count(eip) != 0);
            w.kv("dropped", ring.dropped());
            w.key("timeline");
            w.beginArray();
            for (const ProvEvent &e : ring) {
                w.beginObject();
                w.kv("state", provStateName(e.state));
                w.kv("cause", provCauseName(e.cause));
                w.kv("block", static_cast<int64_t>(e.block_id));
                w.kv("generation",
                     static_cast<uint64_t>(e.generation));
                w.kv("ts", e.ts);
                w.endObject();
            }
            w.endArray();
            w.endObject();
        }
        w.endArray();
    }

    // ----- sentinel: the health ledger + divergence log -------------
    if (const sentinel::Sentinel *sn = rt.options().sentinel) {
        w.key("sentinel");
        w.beginObject();
        w.kv("total_divergences", sn->totalDivergences());
        w.key("ledger");
        w.beginArray();
        for (const auto &[eip, r] : sn->ledger()) {
            w.beginObject();
            w.kv("eip", static_cast<uint64_t>(eip));
            w.kv("state", sentinel::healthName(r.state));
            w.kv("pinned", r.pinned);
            w.kv("divergences", static_cast<uint64_t>(r.divergences));
            w.kv("faults", static_cast<uint64_t>(r.faults));
            w.kv("guard_misses",
                 static_cast<uint64_t>(r.guard_misses));
            w.kv("retries", static_cast<uint64_t>(r.retries));
            w.endObject();
        }
        w.endArray();
        w.key("divergences");
        w.beginArray();
        for (const sentinel::DivergenceInfo &d : sn->divergences()) {
            w.beginObject();
            w.kv("checkpoint_eip",
                 static_cast<uint64_t>(d.checkpoint_eip));
            w.kv("boundary_eip",
                 static_cast<uint64_t>(d.boundary_eip));
            w.kv("first_block", static_cast<int64_t>(d.first_block));
            w.kv("ip_lo", static_cast<uint64_t>(d.ip_lo));
            w.kv("ip_hi", static_cast<uint64_t>(d.ip_hi));
            w.kv("region_index", d.region_index);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }

    // ----- stats: the same merged namespace as the run report -------
    {
        StatGroup all_stats;
        if (alive)
            all_stats = rt.translator().stats;
        all_stats.merge(rt.stats());
        if (rt.options().persist)
            all_stats.merge(rt.options().persist->stats);
        if (rt.options().trace)
            all_stats.set(
                "trace.dropped_events",
                static_cast<double>(rt.options().trace->dropped()));
        if (rt.options().profiler)
            all_stats.set("profile.dropped_samples",
                          static_cast<double>(
                              rt.options().profiler->samplesDropped()));
        if (rt.flight())
            all_stats.set("flight.dropped_events",
                          static_cast<double>(rt.flight()->dropped()));
        w.key("stats");
        w.beginObject();
        for (const auto &[name, value] : all_stats.all())
            w.kv(name, value);
        w.endObject();
    }

    // ----- fault injection: seed + which sites actually fired -------
    if (const FaultInjector *fi = rt.faultInjector()) {
        w.key("fault_injection");
        w.beginObject();
        w.kv("seed", fi->config().seed);
        w.kv("total_fires", fi->totalFires());
        w.kv("total_consults", fi->totalConsults());
        w.key("sites");
        w.beginArray();
        for (std::size_t i = 0; i < num_fault_sites; ++i) {
            FaultSite site = static_cast<FaultSite>(i);
            uint16_t prob = fi->config().prob[i];
            uint64_t fires = fi->fires(site);
            if (!prob && !fires)
                continue;
            w.beginObject();
            w.kv("site", faultSiteName(site));
            w.kv("prob_1024", static_cast<uint64_t>(prob));
            w.kv("fires", fires);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }

    w.endObject();
    return w.str() + "\n";
}

bool
writePostmortem(Runtime &rt, const PostmortemInfo &info,
                const std::string &path)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    f << postmortemJson(rt, info);
    return static_cast<bool>(f);
}

} // namespace el::core
