file(REMOVE_RECURSE
  "CMakeFiles/scalar_speculation_rates.dir/scalar_speculation_rates.cc.o"
  "CMakeFiles/scalar_speculation_rates.dir/scalar_speculation_rates.cc.o.d"
  "scalar_speculation_rates"
  "scalar_speculation_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalar_speculation_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
