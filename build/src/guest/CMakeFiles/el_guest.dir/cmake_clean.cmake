file(REMOVE_RECURSE
  "CMakeFiles/el_guest.dir/image.cc.o"
  "CMakeFiles/el_guest.dir/image.cc.o.d"
  "CMakeFiles/el_guest.dir/workloads.cc.o"
  "CMakeFiles/el_guest.dir/workloads.cc.o.d"
  "libel_guest.a"
  "libel_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/el_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
