/**
 * @file
 * The evaluation section's scalar claims, measured across the SPEC-like
 * suite:
 *  - hot translation overhead per IA-32 instruction ~ 20x cold (sec. 2)
 *  - cold blocks ~4-5 IA-32 insns, hot traces ~20 (sec. 2)
 *  - 5-10% of cold blocks reach the heating threshold (sec. 2)
 *  - ~1 commit point per 10 native instructions (sec. 4)
 *  - hot code ~3x faster than cold code per instruction (sec. 6)
 */

#include "bench/bench_common.hh"

using namespace el;

int
main(int argc, char **argv)
{
    if (int rc = bench::handleArgs(argc, argv); rc >= 0)
        return rc;
    bench::banner("Scalar claims of sections 2/4/6", "sections 2, 4, 6");

    double cold_blocks = 0, cold_insns = 0, hot_blocks = 0, hot_insns = 0;
    double hot_ipf = 0, commit_points = 0, registrations = 0;
    double hot_cycles = 0, cold_cycles = 0, hot_ret = 0, cold_ret = 0;
    bench::Report rep("scalar_claims");

    for (guest::Workload &w : guest::specIntSuite()) {
        harness::TranslatedRun tr =
            harness::runTranslated(w.image, w.params.abi);
        StatGroup &st = tr.runtime->translator().stats;
        rep.row(w.name)
            .metric("cycles", tr.outcome.cycles)
            .metric("cold_blocks", st.get("xlate.cold_blocks"))
            .metric("hot_blocks", st.get("xlate.hot_blocks"))
            .metric("commit_points", st.get("hot.commit_points"))
            .attribution(*tr.runtime);
        cold_blocks += st.get("xlate.cold_blocks");
        cold_insns += st.get("xlate.cold_insns");
        hot_blocks += st.get("xlate.hot_blocks");
        hot_insns += st.get("xlate.hot_insns");
        hot_ipf += st.get("xlate.hot_ipf_insns");
        commit_points += st.get("hot.commit_points");
        registrations += tr.runtime->stats().get("hot.registrations");
        const auto &ms = tr.runtime->machine().stats();
        hot_cycles += ms.cycles[0];
        cold_cycles += ms.cycles[1];
        hot_ret += static_cast<double>(ms.insns[0]);
        cold_ret += static_cast<double>(ms.insns[1]);
    }

    core::Options opts; // defaults: the cost model used for translation
    double cold_cost = opts.cold_xlate_cost_per_insn;
    double hot_cost = opts.hot_xlate_cost_per_insn;

    Table t({"claim", "ours", "paper"});
    t.addRow({"hot/cold translation overhead per insn",
              strfmt("%.1fx", hot_cost / cold_cost), "~20x"});
    t.addRow({"avg IA-32 insns per cold block",
              strfmt("%.1f", cold_insns / cold_blocks), "4-5"});
    t.addRow({"avg IA-32 insns per hot trace",
              strfmt("%.1f", hot_insns / hot_blocks), "~20"});
    t.addRow({"cold blocks reaching heat threshold",
              strfmt("%.1f%%", 100.0 * hot_blocks / cold_blocks),
              "5-10%"});
    t.addRow({"commit points per 10 hot IPF insns",
              strfmt("%.1f", 10.0 * commit_points / hot_ipf), "~1"});
    double hot_cpi = hot_cycles / hot_ret;
    double cold_cpi = cold_cycles / cold_ret;
    t.addRow({"hot vs cold speed (cycles/IPF insn)",
              strfmt("%.2f vs %.2f", hot_cpi, cold_cpi), ""});
    // Per-guest-instruction comparison needs the IA-32 expansion rates.
    std::printf("%s\n", t.render().c_str());

    // Hot-vs-cold per guest instruction: run one loop kernel twice.
    {
        core::Options cold_only;
        cold_only.enable_hot_phase = false;
        guest::WorkloadParams p;
        p.outer_iters = 40;
        p.size = 20000;
        guest::Workload w = guest::buildStream("probe", p);
        harness::TranslatedRun hot =
            harness::runTranslated(w.image, w.params.abi);
        harness::TranslatedRun cold =
            harness::runTranslated(w.image, w.params.abi, cold_only);
        std::printf("hot-vs-cold end to end (stream kernel): "
                    "%.0f vs %.0f cycles -> hot is %.2fx faster "
                    "(paper: ~3x)\n",
                    hot.outcome.cycles, cold.outcome.cycles,
                    cold.outcome.cycles / hot.outcome.cycles);
        rep.scalar("hot_vs_cold_speedup",
                   cold.outcome.cycles / hot.outcome.cycles);
    }
    rep.scalar("hot_cold_xlate_cost_ratio", hot_cost / cold_cost);
    rep.scalar("avg_insns_per_cold_block", cold_insns / cold_blocks);
    rep.scalar("avg_insns_per_hot_trace", hot_insns / hot_blocks);
    rep.scalar("pct_cold_blocks_hot", 100.0 * hot_blocks / cold_blocks);
    rep.scalar("commit_points_per_10_hot_insns",
               10.0 * commit_points / hot_ipf);
    rep.scalar("hot_cpi", hot_cpi);
    rep.scalar("cold_cpi", cold_cpi);
    rep.write();
    return 0;
}
