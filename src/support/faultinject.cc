#include "support/faultinject.hh"

#include <cstdio>
#include <cstdlib>

namespace el
{

namespace
{

FaultInjector *g_active_injector = nullptr;

} // namespace

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::BtosAlloc:
        return "btos_alloc";
      case FaultSite::ColdXlateAbort:
        return "cold_xlate_abort";
      case FaultSite::HotXlateAbort:
        return "hot_xlate_abort";
      case FaultSite::CacheExhaust:
        return "cache_exhaust";
      case FaultSite::GuestFaultStorm:
        return "guest_fault_storm";
      case FaultSite::Miscompile:
        return "miscompile";
      case FaultSite::StoreCorrupt:
        return "store_corrupt";
      case FaultSite::AcctSkew:
        return "acct_skew";
      case FaultSite::CrashJournalAppend:
        return "crash_journal_append";
      case FaultSite::CrashStoreRename:
        return "crash_store_rename";
      case FaultSite::CrashCheckpoint:
        return "crash_checkpoint";
      case FaultSite::CrashAdopt:
        return "crash_adopt";
      default:
        return "?";
    }
}

void
crashNow(FaultSite site)
{
    // One diagnostic on stderr (unbuffered enough to usually survive),
    // then die without unwinding: no destructors, no atexit, no stdio
    // flush — exactly the state a kill -9 leaves behind.
    std::fprintf(stderr, "el: crash point '%s' fired: _exit(%d)\n",
                 faultSiteName(site), crash_exit_code);
    std::_Exit(crash_exit_code);
}

bool
FaultInjector::shouldFire(FaultSite site)
{
    total_consults_.fetch_add(1);
    uint16_t p = cfg_.prob[static_cast<std::size_t>(site)];
    if (!p)
        return false;
    if (cfg_.max_fires && total_fires_.load() >= cfg_.max_fires)
        return false;
    if (rng_.range(1024) >= p)
        return false;
    fires_[static_cast<std::size_t>(site)].fetch_add(1);
    total_fires_.fetch_add(1);
    if (listener_)
        listener_(site);
    return true;
}

bool
FaultInjector::recordStreamFire(FaultSite site)
{
    if (cfg_.max_fires) {
        // Reserve one unit of budget atomically; over-reservations are
        // rolled back so the final count never exceeds the cap.
        uint64_t prev = total_fires_.fetch_add(1);
        if (prev >= cfg_.max_fires) {
            total_fires_.fetch_sub(1);
            return false;
        }
    } else {
        total_fires_.fetch_add(1);
    }
    fires_[static_cast<std::size_t>(site)].fetch_add(1);
    return true;
}

FaultInjector *
activeFaultInjector()
{
    return g_active_injector;
}

FaultInjectorScope::FaultInjectorScope(const FaultConfig &cfg)
{
    if (!cfg.enabled())
        return;
    owned_.injector = FaultInjector(cfg);
    owned_.active = true;
    previous_ = g_active_injector;
    g_active_injector = &owned_.injector;
    installed_ = true;
}

FaultInjectorScope::~FaultInjectorScope()
{
    if (installed_)
        g_active_injector = previous_;
}

FaultSuppressScope::FaultSuppressScope()
    : suspended_(g_active_injector)
{
    g_active_injector = nullptr;
}

FaultSuppressScope::~FaultSuppressScope()
{
    g_active_injector = suspended_;
}

} // namespace el
