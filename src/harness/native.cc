#include "harness/native.hh"

#include "ipf/machine.hh"
#include "support/logging.hh"

namespace el::harness
{

using guest::WorkloadParams;
using ipf::CmpRel;
using ipf::CodeCache;
using ipf::Instr;
using ipf::IpfOp;
using ipf::Machine;

namespace
{

/** Minimal IPF assembler for the native kernels. */
class NB
{
  public:
    CodeCache code;

    Instr
    base(IpfOp op)
    {
        Instr i;
        i.op = op;
        i.meta.bucket = ipf::Bucket::Native;
        return i;
    }

    int64_t
    movl(uint8_t d, int64_t imm, bool stop = false)
    {
        Instr i = base(IpfOp::Movl);
        i.dst = d;
        i.imm = imm;
        i.stop = stop;
        return code.emit(i);
    }

    int64_t
    addi(uint8_t d, int64_t imm, uint8_t s, bool stop = false)
    {
        Instr i = base(IpfOp::AddImm);
        i.dst = d;
        i.imm = imm;
        i.src1 = s;
        i.stop = stop;
        return code.emit(i);
    }

    int64_t
    alu(IpfOp op, uint8_t d, uint8_t a, uint8_t b, bool stop = false)
    {
        Instr i = base(op);
        i.dst = d;
        i.src1 = a;
        i.src2 = b;
        i.stop = stop;
        return code.emit(i);
    }

    int64_t
    shladd(uint8_t d, uint8_t idx, unsigned lg, uint8_t b,
           bool stop = false)
    {
        Instr i = base(IpfOp::Shladd);
        i.dst = d;
        i.src1 = idx;
        i.src2 = b;
        i.imm = lg;
        i.stop = stop;
        return code.emit(i);
    }

    int64_t
    shli(uint8_t d, uint8_t s, unsigned n, bool stop = false)
    {
        Instr i = base(IpfOp::ShlImm);
        i.dst = d;
        i.src1 = s;
        i.imm = n;
        i.stop = stop;
        return code.emit(i);
    }

    int64_t
    extr(uint8_t d, uint8_t s, unsigned pos, unsigned len,
         bool stop = false)
    {
        Instr i = base(IpfOp::ExtrU);
        i.dst = d;
        i.src1 = s;
        i.pos = static_cast<uint8_t>(pos);
        i.len = static_cast<uint8_t>(len);
        i.stop = stop;
        return code.emit(i);
    }

    int64_t
    ld(uint8_t d, uint8_t a, unsigned size, int64_t post = 0,
       bool stop = false)
    {
        Instr i = base(IpfOp::Ld);
        i.dst = d;
        i.src1 = a;
        i.size = static_cast<uint8_t>(size);
        i.imm = post;
        i.stop = stop;
        return code.emit(i);
    }

    int64_t
    st(uint8_t a, uint8_t v, unsigned size, int64_t post = 0,
       bool stop = false)
    {
        Instr i = base(IpfOp::St);
        i.src1 = a;
        i.src2 = v;
        i.size = static_cast<uint8_t>(size);
        i.imm = post;
        i.stop = stop;
        return code.emit(i);
    }

    int64_t
    cmpi(CmpRel rel, uint8_t p, uint8_t p2, int64_t imm, uint8_t s,
         bool stop = true)
    {
        Instr i = base(IpfOp::CmpImm);
        i.dst = p;
        i.dst2 = p2;
        i.crel = rel;
        i.imm = imm;
        i.src2 = s;
        i.stop = stop;
        return code.emit(i);
    }

    int64_t
    br(int64_t target, uint8_t qp = 0, bool stop = true)
    {
        Instr i = base(IpfOp::Br);
        i.qp = qp;
        i.target = target;
        i.stop = stop;
        return code.emit(i);
    }

    int64_t
    exit(bool stop = true)
    {
        Instr i = base(IpfOp::Exit);
        i.exit_reason = ipf::ExitReason::Halt;
        i.stop = stop;
        return code.emit(i);
    }

    int64_t
    xmul(uint8_t d, uint8_t a, uint8_t b, bool stop = false)
    {
        Instr i = base(IpfOp::Xmul);
        i.dst = d;
        i.src1 = a;
        i.src2 = b;
        i.stop = stop;
        return code.emit(i);
    }

    int64_t
    xdiv(uint8_t d, uint8_t a, uint8_t b, bool stop = false)
    {
        Instr i = base(IpfOp::XDivU);
        i.dst = d;
        i.src1 = a;
        i.src2 = b;
        i.stop = stop;
        return code.emit(i);
    }
};

double
runNative(NB &nb, mem::Memory &memory)
{
    Machine m(nb.code, memory);
    ipf::StopInfo stop = m.run(0, 4ULL * 1000 * 1000 * 1000);
    el_assert(stop.kind == ipf::StopKind::Exit, "native kernel died");
    return m.totalCycles();
}

constexpr uint64_t nat_data = 0x100000;

double
nativeStream(const WorkloadParams &p)
{
    NB nb;
    mem::Memory memory;
    uint64_t table = nat_data + p.size + 4096;
    memory.map(nat_data, p.size + 4096 + 256 * 8 + 4096, mem::PermRW);

    // r10 buffer, r11 table, r12 outer, r13 inner, r14 acc, r15 addr.
    nb.movl(10, static_cast<int64_t>(nat_data));
    nb.movl(11, static_cast<int64_t>(table));
    nb.movl(12, p.outer_iters, true);
    int64_t outer = nb.addi(15, 0, 10);
    nb.movl(13, p.size, true);
    // inner: ld1 byte (post-inc), table lookup, accumulate, store back.
    int64_t inner = nb.ld(16, 15, 1);
    nb.addi(13, -1, 13, true);
    nb.shladd(17, 16, 3, 11, true);
    nb.ld(18, 17, 8, 0, true);
    nb.alu(IpfOp::Add, 14, 14, 18);
    nb.alu(IpfOp::Xor, 16, 16, 14, true);
    nb.st(15, 16, 1, 1);
    nb.cmpi(CmpRel::Ne, 6, 7, 0, 13);
    nb.br(inner, 6);
    nb.addi(12, -1, 12, true);
    nb.cmpi(CmpRel::Ne, 6, 7, 0, 12);
    nb.br(outer, 6);
    nb.exit();
    return runNative(nb, memory);
}

double
nativeChase(const WorkloadParams &p)
{
    NB nb;
    mem::Memory memory;
    // 64-bit nodes: {next:u64, val:u64} -> double the guest footprint.
    uint64_t bytes = static_cast<uint64_t>(p.size) * 16 + 4096;
    memory.map(nat_data, bytes, mem::PermRW);
    // Build next[i] = &node[(i*7919+1) % size] from host code (the init
    // loop is not what Figure 5 measures).
    for (uint32_t i = 0; i < p.size; ++i) {
        uint64_t tgt = (static_cast<uint64_t>(i) * 7919 + 1) % p.size;
        memory.writePriv(nat_data + i * 16, 8, nat_data + tgt * 16);
        memory.writePriv(nat_data + i * 16 + 8, 8, i);
    }
    nb.movl(12, p.outer_iters, true);
    int64_t outer = nb.movl(10, static_cast<int64_t>(nat_data));
    nb.movl(13, p.size, true);
    int64_t inner = nb.addi(15, 8, 10, true);
    nb.ld(16, 15, 8);      // val
    nb.ld(10, 10, 8);      // next (serialized: the chase dependency)
    nb.addi(13, -1, 13, true);
    nb.alu(IpfOp::Add, 14, 14, 16);
    nb.cmpi(CmpRel::Ne, 6, 7, 0, 13);
    nb.br(inner, 6);
    nb.addi(12, -1, 12, true);
    nb.cmpi(CmpRel::Ne, 6, 7, 0, 12);
    nb.br(outer, 6);
    nb.exit();
    return runNative(nb, memory);
}

double
nativeBranchy(const WorkloadParams &p)
{
    NB nb;
    mem::Memory memory;
    memory.map(nat_data, 4096, mem::PermRW);
    nb.movl(12, p.outer_iters);
    nb.movl(14, 0x12345678, true);
    int64_t outer = nb.movl(13, p.size, true);
    int64_t inner = nb.movl(16, 1103515245, true);
    nb.xmul(14, 14, 16, true);
    nb.addi(14, 12345, 14, true);
    // Unpredictable conditional work (predicated natively — the native
    // compiler if-converts these).
    Instr t1 = nb.base(IpfOp::Tbit);
    t1.dst = 6;
    t1.dst2 = 7;
    t1.src1 = 14;
    t1.pos = 10;
    t1.stop = true;
    nb.code.emit(t1);
    {
        Instr x = nb.base(IpfOp::Xor);
        x.qp = 6;
        x.dst = 14;
        x.src1 = 14;
        x.src2 = 16;
        x.stop = true;
        nb.code.emit(x);
    }
    if (p.indirect_every) {
        // Native indirect call through b6 (well-predicted natively is
        // still a few cycles).
        nb.extr(17, 14, 8, 2, true);
        int64_t fn_table = nb.code.nextIndex() + 12; // resolved below
        nb.movl(18, fn_table, true);
        nb.alu(IpfOp::Add, 18, 18, 17, true);
        {
            Instr mb = nb.base(IpfOp::MovToBr);
            mb.dst = ipf::br_ind;
            mb.src1 = 18;
            mb.stop = true;
            nb.code.emit(mb);
        }
        {
            Instr bi = nb.base(IpfOp::BrCall);
            bi.dst = 0; // b0
            // fall through to the "functions": emulate a short callee.
            bi.target = nb.code.nextIndex() + 1;
            bi.stop = true;
            nb.code.emit(bi);
        }
        nb.addi(14, 0x11, 14, true);
        // return
        {
            Instr rr = nb.base(IpfOp::BrRet);
            rr.src1 = 0;
            rr.stop = true;
            // Returning to the call site +1 loops forever; emulate the
            // callee inline instead (fall through).
            rr.op = IpfOp::Nop;
            nb.code.emit(rr);
        }
    }
    nb.addi(13, -1, 13, true);
    nb.cmpi(CmpRel::Ne, 6, 7, 0, 13);
    nb.br(inner, 6);
    nb.addi(12, -1, 12, true);
    nb.cmpi(CmpRel::Ne, 6, 7, 0, 12);
    nb.br(outer, 6);
    nb.exit();
    return runNative(nb, memory);
}

double
nativeParser(const WorkloadParams &p)
{
    NB nb;
    mem::Memory memory;
    memory.map(nat_data, p.size + 4096, mem::PermRW);
    for (uint32_t i = 0; i < p.size; ++i)
        memory.writePriv(nat_data + i, 1, ((i * i) & 0x7f) + 1);

    nb.movl(12, p.outer_iters, true);
    int64_t outer = nb.movl(10, static_cast<int64_t>(nat_data));
    nb.movl(13, p.size, true);
    int64_t inner = nb.ld(16, 10, 1, 1, true);
    // classify + hash (if-converted natively).
    nb.cmpi(CmpRel::Ltu, 6, 7, 0x41, 16, false);
    nb.addi(13, -1, 13, true);
    {
        Instr h = nb.base(IpfOp::Xmul);
        h.qp = 7;
        h.dst = 14;
        h.src1 = 14;
        h.src2 = 16;
        h.stop = true;
        nb.code.emit(h);
    }
    {
        Instr a = nb.base(IpfOp::Add);
        a.qp = 6;
        a.dst = 14;
        a.src1 = 14;
        a.src2 = 16;
        a.stop = true;
        nb.code.emit(a);
    }
    nb.cmpi(CmpRel::Ne, 6, 7, 0, 13);
    nb.br(inner, 6);
    nb.addi(12, -1, 12, true);
    nb.cmpi(CmpRel::Ne, 6, 7, 0, 12);
    nb.br(outer, 6);
    nb.exit();
    return runNative(nb, memory);
}

double
nativeMatrix(const WorkloadParams &p)
{
    NB nb;
    mem::Memory memory;
    uint64_t bytes = static_cast<uint64_t>(p.size) * 24 + 8192;
    memory.map(nat_data, bytes, mem::PermRW);
    uint64_t a = nat_data;
    uint64_t b = nat_data + p.size * 8 + 64;
    uint64_t c = b + p.size * 8 + 64;
    for (uint32_t i = 0; i < p.size; ++i) {
        memory.writePriv(a + i * 8, 8, static_cast<uint64_t>(i) * i);
        memory.writePriv(b + i * 8, 8, static_cast<uint64_t>(i) * i + 7);
    }
    nb.movl(12, p.outer_iters, true);
    int64_t outer = nb.movl(10, static_cast<int64_t>(a));
    nb.movl(11, static_cast<int64_t>(b));
    nb.movl(15, static_cast<int64_t>(c));
    nb.movl(13, p.size, true);
    int64_t inner = nb.ld(16, 10, 8, 8);
    nb.ld(17, 11, 8, 8, true);
    nb.shladd(18, 16, 1, 16, true);     // *3
    nb.alu(IpfOp::Add, 18, 18, 17);
    nb.extr(19, 13, 0, 4, true);        // i & 15
    nb.cmpi(CmpRel::Eq, 6, 7, 0, 19, true);
    {
        Instr d = nb.base(IpfOp::XDivU);
        d.qp = 6;
        d.dst = 18;
        d.src1 = 18;
        d.src2 = 11; // a nonzero address as divisor stand-in
        d.stop = true;
        nb.code.emit(d);
    }
    nb.st(15, 18, 8, 8);
    nb.addi(13, -1, 13, true);
    nb.cmpi(CmpRel::Ne, 6, 7, 0, 13);
    nb.br(inner, 6);
    nb.addi(12, -1, 12, true);
    nb.cmpi(CmpRel::Ne, 6, 7, 0, 12);
    nb.br(outer, 6);
    nb.exit();
    return runNative(nb, memory);
}

double
nativeBigCode(const WorkloadParams &p)
{
    NB nb;
    mem::Memory memory;
    memory.map(nat_data, 65536, mem::PermRW);
    nb.movl(12, p.outer_iters);
    nb.movl(10, static_cast<int64_t>(nat_data));
    nb.movl(14, 1, true);
    int64_t outer = nb.code.nextIndex();
    for (uint32_t cpy = 0; cpy < p.code_copies; ++cpy) {
        nb.addi(14, 0x1001 + (cpy & 0x3ff), 14, true);
        nb.extr(16, 14, 3, 32, false);
        nb.addi(17, ((cpy % 1024) * 8), 10, true);
        nb.alu(IpfOp::Xor, 14, 14, 16);
        nb.st(17, 14, 8, 0, true);
        nb.ld(18, 17, 8, 0, true);
        nb.alu(IpfOp::Add, 14, 14, 18, true);
    }
    nb.addi(12, -1, 12, true);
    nb.cmpi(CmpRel::Ne, 6, 7, 0, 12);
    nb.br(outer, 6);
    nb.exit();
    return runNative(nb, memory);
}

} // namespace

double
nativeCycles(const guest::Workload &workload)
{
    const WorkloadParams &p = workload.params;
    if (workload.kernel == "stream")
        return nativeStream(p);
    if (workload.kernel == "pointer_chase")
        return nativeChase(p);
    if (workload.kernel == "branchy")
        return nativeBranchy(p);
    if (workload.kernel == "parser")
        return nativeParser(p);
    if (workload.kernel == "matrix")
        return nativeMatrix(p);
    if (workload.kernel == "bigcode")
        return nativeBigCode(p);
    el_panic("no native kernel for %s", workload.kernel.c_str());
}

} // namespace el::harness
