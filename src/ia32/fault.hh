/**
 * @file
 * Guest-visible IA-32 fault descriptions.
 *
 * Faults are values, not C++ exceptions: the interpreter and the
 * translated-code runtime both return them to the OS layer (BTLib), which
 * routes them to the application's simulated exception handler — the flow
 * shown in Figure 3(D) of the paper.
 */

#ifndef EL_IA32_FAULT_HH
#define EL_IA32_FAULT_HH

#include <cstdint>
#include <string>

namespace el::ia32
{

/** IA-32 exception classes modelled by this reproduction. */
enum class FaultKind : uint8_t
{
    None = 0,
    PageFault,      //!< #PF - unmapped or protected memory access.
    DivideError,    //!< #DE - divide by zero / quotient overflow.
    InvalidOpcode,  //!< #UD - undecodable or unsupported instruction.
    Breakpoint,     //!< #BP - int3.
    FpStackFault,   //!< x87 stack overflow/underflow (#MF with IS).
    FpNumericError, //!< x87/SSE numeric error (#MF / #XM), e.g. fdiv by 0.
    GeneralProtect, //!< #GP - e.g. misaligned MOVAPS/MOVDQA operand.
};

/** A precise IA-32 fault: kind + the IA-32 state coordinates it needs. */
struct Fault
{
    FaultKind kind = FaultKind::None;
    uint32_t eip = 0;        //!< IA-32 IP of the faulting instruction.
    uint32_t addr = 0;       //!< Faulting data address (PageFault/#GP).
    bool is_write = false;   //!< PageFault direction.
    bool injected = false;   //!< Fault-injection storm artifact, not an
                             //!< architectural fault: recovery retries
                             //!< instead of delivering to the guest.

    bool valid() const { return kind != FaultKind::None; }

    std::string toString() const;
};

/** Printable fault kind. */
const char *faultKindName(FaultKind kind);

} // namespace el::ia32

#endif // EL_IA32_FAULT_HH
