#include "ia32/fault.hh"

#include "support/strfmt.hh"

namespace el::ia32
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None:
        return "none";
      case FaultKind::PageFault:
        return "#PF";
      case FaultKind::DivideError:
        return "#DE";
      case FaultKind::InvalidOpcode:
        return "#UD";
      case FaultKind::Breakpoint:
        return "#BP";
      case FaultKind::FpStackFault:
        return "#MF(stack)";
      case FaultKind::FpNumericError:
        return "#MF";
      case FaultKind::GeneralProtect:
        return "#GP";
    }
    return "?";
}

std::string
Fault::toString() const
{
    std::string s = strfmt("%s at eip=%08x", faultKindName(kind), eip);
    if (kind == FaultKind::PageFault || kind == FaultKind::GeneralProtect)
        s += strfmt(" addr=%08x %s", addr, is_write ? "write" : "read");
    return s;
}

} // namespace el::ia32
