/**
 * @file
 * Error and status reporting, following the gem5 logging idiom.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a debugger/core dump can capture the state.
 * fatal()  — the user asked for something impossible (bad configuration,
 *            malformed guest image); exits with an error code.
 * warn()   — something is suspicious but execution can continue.
 * inform() — plain status output.
 */

#ifndef EL_SUPPORT_LOGGING_HH
#define EL_SUPPORT_LOGGING_HH

#include <string>

#include "support/strfmt.hh"

namespace el
{

/** Verbosity control: 0 = errors only, 1 = warn, 2 = inform, 3 = debug. */
extern int log_level;

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

} // namespace el

#define el_panic(...) \
    ::el::panicImpl(__FILE__, __LINE__, ::el::strfmt(__VA_ARGS__))
#define el_fatal(...) \
    ::el::fatalImpl(__FILE__, __LINE__, ::el::strfmt(__VA_ARGS__))
#define el_warn(...) ::el::warnImpl(::el::strfmt(__VA_ARGS__))
#define el_inform(...) ::el::informImpl(::el::strfmt(__VA_ARGS__))
#define el_debug(...) \
    do { \
        if (::el::log_level >= 3) \
            ::el::debugImpl(::el::strfmt(__VA_ARGS__)); \
    } while (0)

/** Assert that must hold regardless of user input; compiled in always. */
#define el_assert(cond, ...) \
    do { \
        if (!(cond)) \
            el_panic("assertion failed: %s: %s", #cond, \
                     ::el::strfmt("" __VA_ARGS__).c_str()); \
    } while (0)

#endif // EL_SUPPORT_LOGGING_HH
