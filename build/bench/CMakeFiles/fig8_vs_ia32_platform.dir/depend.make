# Empty dependencies file for fig8_vs_ia32_platform.
# This may be replaced when dependencies are built.
