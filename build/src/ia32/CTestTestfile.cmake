# CMake generated Testfile for 
# Source directory: /root/repo/src/ia32
# Build directory: /root/repo/build/src/ia32
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
