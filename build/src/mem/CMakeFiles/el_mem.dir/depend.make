# Empty dependencies file for el_mem.
# This may be replaced when dependencies are built.
