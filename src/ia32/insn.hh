/**
 * @file
 * Decoded IA-32 instruction representation.
 *
 * The decoder (ia32/decoder.hh) produces Insn values from raw machine-code
 * bytes; the interpreter, the cold translator and the hot translator all
 * consume this one representation. Static per-opcode properties (flag
 * def/use sets, faulting behaviour, branch classification) live here too
 * because the EFlags-liveness analysis and the precise-exception machinery
 * are driven by them.
 */

#ifndef EL_IA32_INSN_HH
#define EL_IA32_INSN_HH

#include <cstdint>
#include <string>

#include "ia32/regs.hh"

namespace el::ia32
{

/** Opcodes of the supported IA-32 subset. */
enum class Op : uint16_t
{
    Invalid = 0,

    // Data movement / address arithmetic.
    Mov, Movzx, Movsx, Lea, Xchg, Push, Pop, Cdq, Sahf, Lahf,

    // Integer ALU.
    Add, Adc, Sub, Sbb, And, Or, Xor, Cmp, Test,
    Inc, Dec, Neg, Not,
    Imul2,   //!< two-operand imul r, r/m
    Mul1,    //!< one-operand mul  (edx:eax = eax * r/m)
    Imul1,   //!< one-operand imul (edx:eax = eax * r/m)
    Div, Idiv,
    Shl, Shr, Sar, Rol, Ror,

    // Control flow.
    Jcc, Jmp, JmpInd, Call, CallInd, Ret, Setcc, Cmovcc, Leave,

    // String operations (with optional REP).
    Movs, Stos, Lods, Cld, Std,

    // System.
    Int, Int3, Nop, Hlt, Ud2,

    // x87 floating point.
    Fld,     //!< push from memory or ST(i)
    Fild,    //!< push from integer memory
    Fst,     //!< store to memory or ST(i); fp_pop selects FSTP
    Fistp,   //!< store integer and pop
    Fld1, Fldz,
    Fadd, Fsub, Fsubr, Fmul, Fdiv, Fdivr,
    Fxch, Fchs, Fabs, Fsqrt,
    Fcomi,   //!< compare ST(0), ST(i); writes EFLAGS; fp_pop => fcomip
    Fnstsw,  //!< store FPU status word to AX
    Fninit,

    // MMX (64-bit packed integers in MM registers).
    Movd,    //!< mm <- r/m32 or r/m32 <- mm
    MovqMm,  //!< mm <-> mm/m64
    Paddb, Paddw, Paddd, Psubb, Psubw, Psubd,
    Pand, Por, Pxor, Pmullw,
    Emms,

    // SSE/SSE2 (128-bit XMM registers).
    Movaps,  //!< aligned packed-single move (alignment-checked)
    Movups,  //!< unaligned packed move
    Movss,   //!< scalar single move
    MovsdX,  //!< scalar double move (SSE2)
    Movdqa,  //!< aligned packed-integer move
    Addps, Subps, Mulps, Divps,
    Addss, Subss, Mulss, Divss,
    Addpd, Mulpd, Subpd,
    Addsd, Mulsd,
    Andps, Xorps, Sqrtss,
    Ucomiss, //!< scalar single compare, writes EFLAGS
    Cvtps2pd, Cvtpd2ps, Cvtsi2ss, Cvttss2si,
    PadddX,  //!< paddd on XMM (packed-integer domain)

    NumOps,
};

/** What an operand denotes. */
enum class OperandKind : uint8_t
{
    None = 0,
    Gpr,    //!< general-purpose register (Reg, at insn op_size)
    Gpr8,   //!< 8-bit register (Reg8 encoding; op_size == 1)
    Mem,    //!< memory reference
    Imm,    //!< immediate
    St,     //!< x87 stack register ST(i)
    Mm,     //!< MMX register MMi
    Xmm,    //!< SSE register XMMi
};

/** A [base + index*scale + disp] memory reference (flat address space). */
struct MemRef
{
    bool has_base = false;
    Reg base = RegEax;
    bool has_index = false;
    Reg index = RegEax;
    uint8_t scale = 1; //!< 1, 2, 4 or 8.
    int32_t disp = 0;
};

/** One instruction operand. */
struct Operand
{
    OperandKind kind = OperandKind::None;
    uint8_t reg = 0; //!< Gpr/Gpr8/St/Mm/Xmm index.
    MemRef mem{};
    int64_t imm = 0;

    bool isMem() const { return kind == OperandKind::Mem; }
    bool isReg() const
    {
        return kind == OperandKind::Gpr || kind == OperandKind::Gpr8;
    }

    static Operand
    makeGpr(Reg r)
    {
        Operand o;
        o.kind = OperandKind::Gpr;
        o.reg = r;
        return o;
    }

    static Operand
    makeGpr8(uint8_t r)
    {
        Operand o;
        o.kind = OperandKind::Gpr8;
        o.reg = r;
        return o;
    }

    static Operand
    makeImm(int64_t v)
    {
        Operand o;
        o.kind = OperandKind::Imm;
        o.imm = v;
        return o;
    }

    static Operand
    makeMem(MemRef m)
    {
        Operand o;
        o.kind = OperandKind::Mem;
        o.mem = m;
        return o;
    }

    static Operand
    makeSt(uint8_t i)
    {
        Operand o;
        o.kind = OperandKind::St;
        o.reg = i;
        return o;
    }

    static Operand
    makeMm(uint8_t i)
    {
        Operand o;
        o.kind = OperandKind::Mm;
        o.reg = i;
        return o;
    }

    static Operand
    makeXmm(uint8_t i)
    {
        Operand o;
        o.kind = OperandKind::Xmm;
        o.reg = i;
        return o;
    }
};

/** A fully decoded IA-32 instruction. */
struct Insn
{
    uint32_t addr = 0;   //!< Guest virtual address of the first byte.
    uint8_t len = 0;     //!< Encoded length in bytes.
    Op op = Op::Invalid;
    Cond cond = Cond::O; //!< For Jcc / Setcc / Cmovcc.
    uint8_t op_size = 4; //!< Operand size in bytes (1, 2, 4; FP: 4/8/10).
    bool fp_pop = false; //!< x87 pop-after-execute variant (FADDP, FSTP...).
    bool rep = false;    //!< REP prefix on a string operation.
    int32_t imm_rel = 0; //!< Raw relative displacement of Jcc/Jmp/Call.
    Operand dst;
    Operand src;

    /** Address of the following instruction. */
    uint32_t next() const { return addr + len; }

    /** Branch target for direct Jcc/Jmp/Call (imm holds the target). */
    uint32_t target() const { return static_cast<uint32_t>(src.imm); }

    /** Human-readable disassembly. */
    std::string toString() const;
};

/** Static classification of an opcode. */
struct OpInfo
{
    const char *name;
    uint32_t flags_written; //!< EFLAGS this op defines (Flag mask).
    uint32_t flags_read;    //!< EFLAGS this op uses (excl. cond codes).
    bool writes_all_flags_undefined; //!< Shifts/mul leave some undefined.
    bool may_load;          //!< May read memory (when operand is Mem).
    bool may_store;         //!< May write memory (when operand is Mem).
    bool is_branch;         //!< Ends a basic block.
    bool is_fp;             //!< Touches the x87 stack.
    bool is_mmx;            //!< Touches MM registers.
    bool is_sse;            //!< Touches XMM registers.
    bool may_fault_arith;   //!< Can fault without a memory operand
                            //!< (divide, FP stack, int).
};

/** Look up the static info record for @p op. */
const OpInfo &opInfo(Op op);

/** Printable mnemonic. */
const char *opName(Op op);

/**
 * EFLAGS read by this specific instruction (includes the condition-code
 * flags of Jcc/Setcc/Cmovcc and the CF input of ADC/SBB).
 */
uint32_t insnFlagsRead(const Insn &insn);

/** EFLAGS written by this specific instruction. */
uint32_t insnFlagsWritten(const Insn &insn);

/** True if the instruction ends a basic block. */
bool endsBlock(const Insn &insn);

/**
 * True if executing the instruction can raise a guest-visible fault
 * (memory access, divide error, FP stack fault, software interrupt).
 * This drives the precise-state commit discipline of section 4.
 */
bool canFault(const Insn &insn);

/** True if the instruction reads or writes memory. */
bool accessesMemory(const Insn &insn);

/** True if the instruction writes memory (an irreversible action). */
bool writesMemory(const Insn &insn);

} // namespace el::ia32

#endif // EL_IA32_INSN_HH
