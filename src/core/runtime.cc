#include "core/runtime.hh"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>

#include "core/audit.hh"
#include "core/checkpoint.hh"
#include "ia32/decoder.hh"
#include "ia32/flags.hh"
#include "ia32/interp.hh"
#include "ipf/regs.hh"
#include "persist/store.hh"
#include "support/bitfield.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/profile.hh"
#include "support/trace.hh"

namespace el::core
{

using ia32::FaultKind;
using ipf::Bucket;
using ipf::ExitReason;
using ipf::StopKind;

Runtime::Runtime(mem::Memory &memory, const btlib::BtOsVtable &vtable,
                 Options options)
    : mem_(memory), btos_(vtable), options_(options),
      inject_scope_(options_.fault)
{
    // The black box exists before anything that can fail: a postmortem
    // of an InitError run still has a (short) flight to dump.
    if (options_.flight_recorder) {
        flight_ = std::make_unique<flight::FlightRecorder>(
            options_.flight_ring_capacity);
        provenance_ = std::make_unique<ProvenanceLedger>(
            options_.provenance_events_per_eip);
    }
    if (!btos_.ok()) {
        el_warn("BTOS handshake failed: %s", btos_.error().c_str());
        return;
    }
    machine_ = std::make_unique<ipf::Machine>(cache_, mem_);
    // The runtime area is the one allocation we cannot live without;
    // retry through transient BTOS failures before giving up.
    for (uint32_t attempt = 0; rt_base_ == 0; ++attempt) {
        rt_base_ = btos_.allocPages(rt::area_size);
        if (rt_base_ != 0)
            break;
        stats_.add("recover.btos_alloc_fail");
        if (attempt + 1 >= options_.btos_alloc_retries) {
            el_warn("BTLib failed to allocate the runtime area "
                    "(%u attempts)", attempt + 1);
            return;
        }
    }
    translator_ =
        std::make_unique<Translator>(options_, mem_, cache_, rt_base_);

    trace_ = options_.trace;
    // The audit's central closure identity needs the per-block books,
    // so --audit forces block tracking on even when no report asked.
    if (options_.collect_block_cycles || options_.audit)
        machine_->setTrackBlockCycles(true);
    sentinel_ = options_.sentinel;
    profiler_ = options_.profiler;
    if (profiler_) {
        machine_->setProfiler(profiler_);
        // Canonical-decode resolver: a pure function of guest memory,
        // independent of the translator's region discovery (whose
        // block splits depend on analysis window and discovery order).
        profiler_->setResolver([this](uint32_t ip) {
            prof::InsnInfo info;
            ia32::Insn insn;
            if (!ia32::decode(mem_, ip, &insn)) {
                info.kind = prof::InsnKind::Stop;
                info.next = ip;
                return info;
            }
            info.next = insn.next();
            switch (insn.op) {
              case ia32::Op::Jcc:
                info.kind = prof::InsnKind::Cond;
                info.target = insn.target();
                break;
              case ia32::Op::Jmp:
                info.kind = prof::InsnKind::Jump;
                info.target = insn.target();
                break;
              case ia32::Op::Call:
                info.kind = prof::InsnKind::CallDirect;
                info.target = insn.target();
                break;
              case ia32::Op::JmpInd:
              case ia32::Op::CallInd:
              case ia32::Op::Ret:
                info.kind = prof::InsnKind::Indirect;
                break;
              default:
                info.kind = ia32::endsBlock(insn)
                                ? prof::InsnKind::Stop
                                : prof::InsnKind::Plain;
                break;
            }
            return info;
        });
        profiler_->setSampleGather([this](prof::Sample *s) {
            s->dispatch_lookups = dispatch_lookups_;
            s->cache_occupancy =
                static_cast<uint64_t>(cache_.nextIndex());
            s->hot_queue_depth = hot_queue_.size();
            s->worker_inflight =
                hot_pipeline_ ? hot_pipeline_->inFlight() : 0;
            const FaultInjector *fi = inject_scope_.get();
            s->fault_fires = fi ? fi->totalFires() : 0;
        });
    }
    if (trace_)
        translator_->setTrace(
            trace_, [this] { return machine_->totalCycles(); });
    if (flight_)
        translator_->setObservers(
            flight_.get(), provenance_.get(),
            [this] { return machine_->totalCycles(); });
    if (trace_ || flight_) {
        if (FaultInjector *fi = inject_scope_.get()) {
            // Main-thread fires only; worker-side injection is
            // recorded by the pipeline session wrapper below with the
            // session's planned simulated timeline.
            fi->setFireListener([this, fi](FaultSite site) {
                double now = machine_->totalCycles();
                if (trace_)
                    trace_->instant(
                        "fault_fire", trace::Cat::Fault, 0, now,
                        {{"site", static_cast<int64_t>(site)}});
                if (flight_)
                    flight_->record(
                        flight::Kind::FaultInject, 0, now,
                        static_cast<int64_t>(site),
                        static_cast<int64_t>(fi->totalFires()));
            });
        }
    }
    if (sentinel_ && flight_) {
        // Health transitions feed the black box: the state machine
        // record (the quarantineBlock path separately notes the
        // artifact-level conviction with its precise cause).
        sentinel_->setTransitionListener(
            [this](uint32_t eip, sentinel::Health from,
                   sentinel::Health to, bool pinned) {
                double now = machine_->totalCycles();
                flight_->record(flight::Kind::SentinelShift, 0, now,
                                static_cast<int64_t>(eip),
                                static_cast<int64_t>(from),
                                static_cast<int64_t>(to));
                if (!provenance_)
                    return;
                ProvState st = ProvState::Suspect;
                ProvCause cause = ProvCause::None;
                if (pinned) {
                    st = ProvState::Pinned;
                } else if (to == sentinel::Health::Quarantined) {
                    st = ProvState::Quarantined;
                } else if (to == sentinel::Health::Retranslated) {
                    st = ProvState::Retranslated;
                    cause = ProvCause::Cooldown;
                }
                provenance_->note(eip, st, cause, -1,
                                  cache_.generation(), now);
            });
    }

    if (options_.translation_threads > 0 && options_.enable_hot_phase) {
        HotPipeline::Config cfg;
        cfg.threads = options_.translation_threads;
        cfg.deterministic = options_.deterministic_adoption;
        FaultInjector *fi = inject_scope_.get();
        hot_pipeline_ = std::make_unique<HotPipeline>(
            cfg, [this, fi](const HotCandidate &c, HotArtifact *out) {
                // Runs on a worker thread. The injection stream is
                // keyed by the candidate's sequence number, never the
                // worker, so chaos runs replay across thread counts.
                FaultStream stream(fi, c.seq);
                Translator::runHotSession(c.input, options_, &stream,
                                          out);
                if (trace_) {
                    // Worker lane events carry the *planned* simulated
                    // times from the candidate — workers must never
                    // read the machine's cycle counter (it belongs to
                    // the main thread), and the plan is what makes the
                    // trace replayable across thread counts.
                    uint32_t lane = 1 + c.worker_slot;
                    if (out->injected_abort)
                        trace_->instant(
                            "fault_fire", trace::Cat::Fault, lane,
                            c.start_cycles,
                            {{"site",
                              static_cast<int64_t>(
                                  FaultSite::HotXlateAbort)},
                             {"seq", static_cast<int64_t>(c.seq)}});
                    trace_->span(
                        "hot_emit", trace::Cat::Hot, lane,
                        c.start_cycles, c.ready_cycles - c.start_cycles,
                        {{"eip",
                          static_cast<int64_t>(c.input.entry_eip)},
                         {"seq", static_cast<int64_t>(c.seq)},
                         {"worker",
                          static_cast<int64_t>(c.worker_slot)},
                         {"ok", out->ok ? 1 : 0}});
                }
                if (flight_) {
                    // Same planned-time rule as tracing: the worker
                    // lane's black-box entries must replay bit-exactly
                    // across thread counts.
                    uint32_t lane = 1 + c.worker_slot;
                    if (out->injected_abort)
                        flight_->record(
                            flight::Kind::FaultInject, lane,
                            c.start_cycles,
                            static_cast<int64_t>(
                                FaultSite::HotXlateAbort),
                            static_cast<int64_t>(c.seq));
                    flight_->record(
                        flight::Kind::HotSession, lane, c.ready_cycles,
                        static_cast<int64_t>(c.input.entry_eip),
                        static_cast<int64_t>(c.seq), out->ok ? 1 : 0);
                }
            });
    }

    if (metrics::Registry *m = options_.metrics) {
        // Gauges are closures over live runtime state, read only at
        // emit time; counter groups are exported wholesale under a
        // subsystem prefix. Registration costs nothing per dispatch.
        m->gauge("cycles", [this] { return machine_->totalCycles(); });
        m->gauge("dispatch_lookups", [this] {
            return static_cast<double>(dispatch_lookups_);
        });
        m->gauge("cache_occupancy", [this] {
            return static_cast<double>(cache_.nextIndex());
        });
        m->gauge("cache_generation", [this] {
            return static_cast<double>(cache_.generation());
        });
        m->gauge("hot_queue_depth", [this] {
            return static_cast<double>(hot_queue_.size());
        });
        m->gauge("worker_inflight", [this] {
            return hot_pipeline_
                       ? static_cast<double>(hot_pipeline_->inFlight())
                       : 0.0;
        });
        m->gauge("flight_dropped", [this] {
            return flight_ ? static_cast<double>(flight_->dropped())
                           : 0.0;
        });
        m->counters("translator", &translator_->stats);
        m->counters("runtime", &stats_);
        if (options_.persist)
            m->counters("persist", &options_.persist->stats);
    }
}

SpecContext
Runtime::currentSpec() const
{
    SpecContext spec;
    uint64_t v = 0;
    mem_.readPriv(rt_base_ + rt::fp_tos, 1, &v);
    spec.tos = static_cast<uint8_t>(v);
    mem_.readPriv(rt_base_ + rt::fp_tag, 1, &v);
    spec.tag = static_cast<uint8_t>(v);
    mem_.readPriv(rt_base_ + rt::mmx_domain, 1, &v);
    spec.mmx_domain = static_cast<uint8_t>(v);
    mem_.readPriv(rt_base_ + rt::xmm_format, 4, &v);
    spec.xmm_format = static_cast<uint32_t>(v);
    return spec;
}

void
Runtime::loadContext(const ia32::State &state)
{
    ipf::Machine &m = *machine_;
    for (unsigned r = 0; r < ia32::NumRegs; ++r)
        m.setGr(ipf::grForGuest(r), state.gpr[r]);
    m.setGr(ipf::gr_rt_base, rt_base_);
    m.setGr(ipf::gr_state, state.eip);
    m.setGr(ipf::gr_flag_cf, state.flag(ia32::FlagCf));
    m.setGr(ipf::gr_flag_pf, state.flag(ia32::FlagPf));
    m.setGr(ipf::gr_flag_af, state.flag(ia32::FlagAf));
    m.setGr(ipf::gr_flag_zf, state.flag(ia32::FlagZf));
    m.setGr(ipf::gr_flag_sf, state.flag(ia32::FlagSf));
    m.setGr(ipf::gr_flag_of, state.flag(ia32::FlagOf));
    m.setGr(ipf::gr_flag_df, state.flag(ia32::FlagDf));

    // x87 stack into the canonical FRs; status bytes into the runtime
    // area (the FP domain is canonical after a context load).
    uint8_t tag = 0;
    for (unsigned k = 0; k < 8; ++k) {
        m.fr(ipf::frForFpSlot(k)).setVal(state.fpu.st[k]);
        if (state.fpu.tag[k] == ia32::FpTag::Valid)
            tag |= 1u << k;
    }
    mem_.writePriv(rt_base_ + rt::fp_tos, 1, state.fpu.top);
    mem_.writePriv(rt_base_ + rt::fp_tag, 1, tag);
    mem_.writePriv(rt_base_ + rt::mmx_domain, 1, 0);

    // XMM registers in the packed-single (raw-bits) representation.
    for (unsigned i = 0; i < 8; ++i) {
        m.fr(ipf::frForXmm(i, 0)).setBits(state.xmm[i].u64(0));
        m.fr(ipf::frForXmm(i, 1)).setBits(state.xmm[i].u64(1));
    }
    mem_.writePriv(rt_base_ + rt::xmm_format, 4,
                   rt::uniformFormatWord(rt::XmmPs));
}

void
Runtime::storeContext(ia32::State *state, uint32_t eip)
{
    ipf::Machine &m = *machine_;
    for (unsigned r = 0; r < ia32::NumRegs; ++r)
        state->gpr[r] = static_cast<uint32_t>(m.gr(ipf::grForGuest(r)));
    state->eip = eip;
    uint32_t fl = ia32::FlagsFixed;
    if (m.gr(ipf::gr_flag_cf) & 1)
        fl |= ia32::FlagCf;
    if (m.gr(ipf::gr_flag_pf) & 1)
        fl |= ia32::FlagPf;
    if (m.gr(ipf::gr_flag_af) & 1)
        fl |= ia32::FlagAf;
    if (m.gr(ipf::gr_flag_zf) & 1)
        fl |= ia32::FlagZf;
    if (m.gr(ipf::gr_flag_sf) & 1)
        fl |= ia32::FlagSf;
    if (m.gr(ipf::gr_flag_of) & 1)
        fl |= ia32::FlagOf;
    if (m.gr(ipf::gr_flag_df) & 1)
        fl |= ia32::FlagDf;
    state->eflags = fl;

    SpecContext spec = currentSpec();
    state->fpu.top = spec.tos & 7;
    for (unsigned k = 0; k < 8; ++k) {
        state->fpu.tag[k] = (spec.tag & (1u << k)) ? ia32::FpTag::Valid
                                                   : ia32::FpTag::Empty;
        if (spec.mmx_domain == 1) {
            // MMX values are current in the GR homes; rebuild the
            // aliased 80-bit patterns.
            uint64_t bits = m.gr(ipf::grForMmx(k));
            uint8_t raw[16] = {};
            std::memcpy(raw, &bits, 8);
            raw[8] = 0xff;
            raw[9] = 0xff;
            long double v;
            std::memcpy(&v, raw, 10);
            state->fpu.st[k] = v;
        } else {
            state->fpu.st[k] = m.fr(ipf::frForFpSlot(k)).valView();
        }
    }

    for (unsigned i = 0; i < 8; ++i) {
        rt::XmmRep rep = static_cast<rt::XmmRep>(
            (spec.xmm_format >> rt::formatShift(i)) & 0xf);
        uint64_t lo, hi;
        if (rep == rt::XmmInt) {
            lo = m.gr(ipf::grForXmm(i, 0));
            hi = m.gr(ipf::grForXmm(i, 1));
        } else if (rep == rt::XmmPd) {
            double d0 = static_cast<double>(
                m.fr(ipf::frForXmm(i, 0)).valView());
            double d1 = static_cast<double>(
                m.fr(ipf::frForXmm(i, 1)).valView());
            std::memcpy(&lo, &d0, 8);
            std::memcpy(&hi, &d1, 8);
        } else {
            lo = m.fr(ipf::frForXmm(i, 0)).bitsView();
            hi = m.fr(ipf::frForXmm(i, 1)).bitsView();
        }
        state->xmm[i].setU64(0, lo);
        state->xmm[i].setU64(1, hi);
    }
}

void
Runtime::chargeTranslatorOverhead()
{
    machine_->chargeCycles(Bucket::Overhead,
                           translator_->takePendingOverheadCycles());
    double stall = translator_->takePendingHotStallCycles();
    if (stall > 0)
        stats_.add("hot.stall_cycles", static_cast<uint64_t>(stall));
}

int64_t
Runtime::dispatchEntry(uint32_t eip, bool force_cold, bool fresh_cold)
{
    if (sentinel_ && sentinel_->interpretGate(eip)) {
        // Quarantined EIP: refuse to translate or hand out an entry —
        // even via patched links — so execution funnels back to the
        // top-of-loop gate and its interpreter fallback.
        return -2;
    }
    ++dispatch_lookups_;
    if (flight_)
        flight_->record(flight::Kind::Dispatch, 0,
                        machine_->totalCycles(),
                        static_cast<int64_t>(eip),
                        static_cast<int64_t>(dispatch_lookups_));
    SpecContext spec = currentSpec();
    BlockInfo *block = force_cold
        ? translator_->dispatchCold(eip, spec, fresh_cold)
        : translator_->dispatch(eip, spec);
    chargeTranslatorOverhead();
    if (!block)
        return -1;
    return block->cache_entry;
}

uint64_t
Runtime::grAt(const Loc &loc, unsigned guest_reg) const
{
    if (loc.kind == Loc::Kind::Home)
        return machine_->gr(ipf::grForGuest(guest_reg));
    return machine_->gr(static_cast<unsigned>(loc.reg));
}

uint32_t
Runtime::evalFlagRecipe(const FlagRecipe &recipe) const
{
    // Reconstruct the flags this recipe covers from live register
    // values; the caller merges with home-resident flags.
    auto val = [&](const Loc &l) {
        return machine_->gr(static_cast<unsigned>(l.reg));
    };
    uint64_t wide = val(recipe.wide);
    uint32_t a = static_cast<uint32_t>(val(recipe.a));
    uint32_t b = static_cast<uint32_t>(val(recipe.b));
    uint32_t res = static_cast<uint32_t>(val(recipe.res));
    unsigned size = recipe.size;
    uint32_t fl = ia32::flagsZSP(res, size);
    switch (recipe.op) {
      case FlagRecipe::LazyOp::Add:
        if (bit(wide, size * 8))
            fl |= ia32::FlagCf;
        if (((a ^ res) & (b ^ res)) & ia32::signBit(size))
            fl |= ia32::FlagOf;
        if ((a ^ b ^ res) & 0x10)
            fl |= ia32::FlagAf;
        break;
      case FlagRecipe::LazyOp::Sub:
        if (bit(wide, 63))
            fl |= ia32::FlagCf;
        if (((a ^ b) & (a ^ res)) & ia32::signBit(size))
            fl |= ia32::FlagOf;
        if ((a ^ b ^ res) & 0x10)
            fl |= ia32::FlagAf;
        break;
      case FlagRecipe::LazyOp::Logic:
      default:
        break;
    }
    return fl;
}

void
Runtime::reconstructHot(const BlockInfo &block, const ipf::Instr &instr,
                        ia32::State *state)
{
    int32_t cid = instr.meta.commit_id;
    el_assert(cid >= 0 &&
                  cid < static_cast<int32_t>(block.recovery.size()),
              "hot fault without a recovery map (block %d)", block.id);
    const RecoveryMap &map = block.recovery[cid];

    storeContext(state, map.guest_ip);
    for (unsigned r = 0; r < ia32::NumRegs; ++r)
        state->gpr[r] = static_cast<uint32_t>(grAt(map.gpr[r], r));

    if (map.flags.op != FlagRecipe::LazyOp::Homes &&
        map.flags.dirty_mask) {
        uint32_t lazy = evalFlagRecipe(map.flags);
        state->eflags = (state->eflags & ~map.flags.dirty_mask) |
                        (lazy & map.flags.dirty_mask) | ia32::FlagsFixed;
    }

    // FP stack adjustments relative to block entry.
    SpecContext spec = currentSpec(); // entry values (tail not run)
    state->fpu.top = (spec.tos + map.tos_delta) & 7;
    uint8_t tag = static_cast<uint8_t>(
        (spec.tag & ~map.tag_clear) | map.tag_set);
    for (unsigned k = 0; k < 8; ++k) {
        state->fpu.tag[k] = (tag & (1u << k)) ? ia32::FpTag::Valid
                                              : ia32::FpTag::Empty;
    }
    // XMM representations at the fault point.
    for (unsigned i = 0; i < 8; ++i) {
        rt::XmmRep rep = static_cast<rt::XmmRep>(
            (map.xmm_formats >> rt::formatShift(i)) & 0xf);
        uint64_t lo, hi;
        if (rep == rt::XmmInt) {
            lo = machine_->gr(ipf::grForXmm(i, 0));
            hi = machine_->gr(ipf::grForXmm(i, 1));
        } else if (rep == rt::XmmPd) {
            double d0 = static_cast<double>(
                machine_->fr(ipf::frForXmm(i, 0)).valView());
            double d1 = static_cast<double>(
                machine_->fr(ipf::frForXmm(i, 1)).valView());
            std::memcpy(&lo, &d0, 8);
            std::memcpy(&hi, &d1, 8);
        } else {
            lo = machine_->fr(ipf::frForXmm(i, 0)).bitsView();
            hi = machine_->fr(ipf::frForXmm(i, 1)).bitsView();
        }
        state->xmm[i].setU64(0, lo);
        state->xmm[i].setU64(1, hi);
    }
}

void
Runtime::recoverGuard(BlockInfo *block, int64_t payload_kind)
{
    machine_->chargeCycles(Bucket::Overhead,
                           options_.guard_recovery_cost);
    fault_overhead_cycles_ += options_.guard_recovery_cost;
    if (trace_)
        trace_->span("guard_recover", trace::Cat::Fault, 0,
                     machine_->totalCycles(),
                     options_.guard_recovery_cost,
                     {{"block", block->id}, {"kind", payload_kind}});
    ipf::Machine &m = *machine_;
    switch (payload_kind) {
      case 0: // TOS mismatch: resolved by block-variant dispatch.
        stats_.add("guard.tos_miss");
        break;
      case 1: // TAG mismatch: variant dispatch rebuilds a block that
              // raises the right stack fault statically.
        stats_.add("guard.tag_miss");
        break;
      case 2: { // MMX/FP domain flip.
        stats_.add("guard.domain_miss");
        uint64_t cur = 0;
        mem_.readPriv(rt_base_ + rt::mmx_domain, 1, &cur);
        if (block->guard.expect_domain == 1 && cur == 0) {
            for (unsigned k = 0; k < 8; ++k)
                m.setGr(ipf::grForMmx(k),
                        m.fr(ipf::frForFpSlot(k)).bitsView());
        } else if (block->guard.expect_domain == 0 && cur == 1) {
            for (unsigned k = 0; k < 8; ++k)
                m.fr(ipf::frForFpSlot(k)).setBits(
                    m.gr(ipf::grForMmx(k)));
        }
        mem_.writePriv(rt_base_ + rt::mmx_domain, 1,
                       block->guard.expect_domain);
        break;
      }
      case 3: { // XMM format conversion.
        stats_.add("guard.format_miss");
        uint64_t wv = 0;
        mem_.readPriv(rt_base_ + rt::xmm_format, 4, &wv);
        uint32_t word = static_cast<uint32_t>(wv);
        for (unsigned i = 0; i < 8; ++i) {
            uint32_t mask = 0xfu << rt::formatShift(i);
            if (!(block->guard.xmm_mask & mask))
                continue;
            rt::XmmRep cur = static_cast<rt::XmmRep>(
                (word >> rt::formatShift(i)) & 0xf);
            rt::XmmRep want = static_cast<rt::XmmRep>(
                (block->guard.xmm_expect >> rt::formatShift(i)) & 0xf);
            if (cur == want)
                continue;
            // Extract raw bytes in the current representation...
            uint64_t lo, hi;
            if (cur == rt::XmmInt) {
                lo = m.gr(ipf::grForXmm(i, 0));
                hi = m.gr(ipf::grForXmm(i, 1));
            } else if (cur == rt::XmmPd) {
                double d0 = static_cast<double>(
                    m.fr(ipf::frForXmm(i, 0)).valView());
                double d1 = static_cast<double>(
                    m.fr(ipf::frForXmm(i, 1)).valView());
                std::memcpy(&lo, &d0, 8);
                std::memcpy(&hi, &d1, 8);
            } else {
                lo = m.fr(ipf::frForXmm(i, 0)).bitsView();
                hi = m.fr(ipf::frForXmm(i, 1)).bitsView();
            }
            // ...and install them in the wanted representation.
            if (want == rt::XmmInt) {
                m.setGr(ipf::grForXmm(i, 0), lo);
                m.setGr(ipf::grForXmm(i, 1), hi);
            } else if (want == rt::XmmPd) {
                double d0, d1;
                std::memcpy(&d0, &lo, 8);
                std::memcpy(&d1, &hi, 8);
                m.fr(ipf::frForXmm(i, 0)).setVal(d0);
                m.fr(ipf::frForXmm(i, 1)).setVal(d1);
            } else {
                m.fr(ipf::frForXmm(i, 0)).setBits(lo);
                m.fr(ipf::frForXmm(i, 1)).setBits(hi);
            }
            word = (word & ~mask) |
                   (static_cast<uint32_t>(want) << rt::formatShift(i));
        }
        mem_.writePriv(rt_base_ + rt::xmm_format, 4, word);
        break;
      }
      default:
        el_panic("bad guard payload %lld",
                 static_cast<long long>(payload_kind));
    }
}

void
Runtime::noteHotFailure(BlockInfo *block)
{
    stats_.add("recover.hot_abort");
    if (++block->hot_fail_count < options_.hot_retry_limit)
        return; // Still eligible: the use counter re-registers it.
    block->hot_state = HotState::PinnedCold;
    stats_.add("recover.hot_pinned");
    translator_->disableHeat(block);
}

void
Runtime::registerHot(int32_t block_id)
{
    BlockInfo *block = translator_->blockById(block_id);
    if (!block || block->kind != BlockKind::Cold || block->invalidated)
        return;
    if (block->hot_state != HotState::Eligible) {
        // Already covered (or pinned cold): silence the counter.
        translator_->disableHeat(block);
        return;
    }
    if (block->hot_inflight)
        return; // A pipeline session is already running; adoption (or
                // its bounded-retry failure path) resolves this block.
    block->heat_registrations++;
    stats_.add("hot.registrations");
    if (trace_)
        trace_->instant(
            "heat_register", trace::Cat::Hot, 0,
            machine_->totalCycles(),
            {{"block", block_id},
             {"eip", static_cast<int64_t>(block->entry_eip)},
             {"registrations",
              static_cast<int64_t>(block->heat_registrations)}});
    // O(1) dedup: the queued flag replaces the old linear scan over
    // hot_queue_.
    if (!block->hot_queued) {
        block->hot_queued = true;
        hot_queue_.push_back(block_id);
    }

    bool session =
        hot_queue_.size() >= options_.hot_batch ||
        block->heat_registrations >= options_.second_registration;
    if (!session)
        return;

    stats_.add("hot.sessions");
    // Evaluate all candidates at once (section 2's batching).
    std::deque<int32_t> batch;
    batch.swap(hot_queue_);
    for (int32_t id : batch) {
        BlockInfo *cand = translator_->blockById(id);
        if (!cand)
            continue;
        cand->hot_queued = false;
        if (cand->invalidated ||
            cand->hot_state != HotState::Eligible)
            continue;
        SpecContext spec = currentSpec();
        if (hot_pipeline_) {
            enqueueHot(cand, spec);
            continue;
        }
        if (provenance_)
            provenance_->note(cand->entry_eip, ProvState::HotQueued,
                              ProvCause::Heat, cand->id,
                              cache_.generation(),
                              machine_->totalCycles());
        if (!translator_->translateHot(cand->entry_eip, spec) &&
            !cand->invalidated) {
            // Bounded retry: a transient abort leaves the block
            // eligible so the next threshold hit tries again; repeat
            // offenders are pinned cold (graceful degradation, not an
            // abort loop).
            noteHotFailure(cand);
        }
    }
    chargeTranslatorOverhead();
}

void
Runtime::enqueueHot(BlockInfo *cand, const SpecContext &spec)
{
    if (cand->hot_queued || cand->hot_inflight)
        return; // already queued, or a session is already in flight

    HotCandidate c;
    c.cold_block_id = cand->id;
    c.generation = cache_.generation();
    if (!translator_->prepareHotInput(cand->entry_eip, spec,
                                      &c.input)) {
        // No viable trace — same bounded-retry treatment as a failed
        // synchronous session.
        noteHotFailure(cand);
        return;
    }

    double session_cost = translator_->hotSessionCost(c.input);
    // The guest only stalls for the snapshot + enqueue; the session
    // itself runs on a worker. This is the stall the pipeline removes.
    translator_->chargeHotStall(options_.hot_enqueue_cost);

    // Silence the use counter while the session is in flight: it exits
    // at the block head on every execution past the threshold, so an
    // armed counter would stop the guest before the body runs. But the
    // runtime still needs periodic stops — finished sessions are only
    // adopted at dispatch boundaries, and a fully-chained loop would
    // otherwise starve adoption until it terminates. So unlink the
    // block's patched exits instead: every traversal then exits
    // LinkMiss at the block END (forward progress preserved), and the
    // LinkMiss handler refuses to re-patch while hot_inflight is set.
    // Links re-form lazily after adoption. Re-armed on failure.
    cand->hot_inflight = true;
    translator_->disableHeat(cand);
    translator_->unlinkBlockExits(cand);

    int32_t cand_id = cand->id;
    uint32_t cand_eip = cand->entry_eip;
    double now = machine_->totalCycles();
    uint64_t seq = hot_pipeline_->enqueue(std::move(c), now,
                                          session_cost);
    stats_.add("hot.enqueued");
    if (trace_)
        trace_->span("hot_snapshot", trace::Cat::Hot, 0, now,
                     options_.hot_enqueue_cost,
                     {{"eip", static_cast<int64_t>(cand_eip)},
                      {"block", cand_id},
                      {"seq", static_cast<int64_t>(seq)}});
    if (flight_)
        flight_->record(flight::Kind::HotEnqueue, 0, now,
                        static_cast<int64_t>(cand_eip),
                        static_cast<int64_t>(seq));
    if (provenance_)
        provenance_->note(cand_eip, ProvState::HotQueued,
                          ProvCause::Heat, cand_id, cache_.generation(),
                          now);
}

void
Runtime::adoptHotResults()
{
    if (!hot_pipeline_ || hot_pipeline_->inFlight() == 0)
        return;
    std::vector<HotArtifact> arts =
        hot_pipeline_->drain(machine_->totalCycles());
    for (HotArtifact &art : arts) {
        BlockInfo *cold = translator_->blockById(art.cold_block_id);
        if (cold)
            cold->hot_inflight = false;
        BlockInfo *hot = translator_->commitHotArtifact(art);
        if (hot) {
            stats_.add("hot.adopted");
            // Publication (relocation + linking) is the only part the
            // guest waits for.
            double publish_cost = options_.hot_publish_cost_per_insn *
                                  (hot->insn_count + 1);
            translator_->chargeHotStall(publish_cost);
            if (trace_) {
                double now = machine_->totalCycles();
                trace_->span(
                    "hot_commit", trace::Cat::Hot, 0, now,
                    publish_cost,
                    {{"eip", static_cast<int64_t>(hot->entry_eip)},
                     {"block", hot->id},
                     {"seq", static_cast<int64_t>(art.seq)},
                     {"worker",
                      static_cast<int64_t>(art.worker_slot)}});
                // How long the finished artifact waited for a block
                // re-entry boundary after its (planned) completion.
                double stall = now - art.ready_cycles;
                trace_->instant(
                    "adoption_stall", trace::Cat::Hot, 0, now,
                    {{"seq", static_cast<int64_t>(art.seq)},
                     {"cycles",
                      static_cast<int64_t>(stall > 0 ? stall : 0)}});
            }
        } else if (cold && !cold->invalidated &&
                   cold->hot_state == HotState::Eligible) {
            // Failed or discarded session (a stale-generation discard
            // leaves the cold block invalidated and skips this):
            // bounded retry, and re-arm the counter silenced at
            // enqueue so the block can register again.
            noteHotFailure(cold);
            if (cold->hot_state == HotState::Eligible)
                translator_->enableHeat(cold);
        }
    }
    chargeTranslatorOverhead();
}

bool
Runtime::interpretFallback(ia32::State *state, RunResult *result,
                           uint32_t *next_eip)
{
    // Translation aborted (injected or otherwise unrecoverable): make
    // forward progress under the reference interpreter so the guest
    // never notices, then hand back to translated execution.
    storeContext(state, *next_eip);
    ia32::Interpreter interp(*state, mem_);
    for (uint32_t n = 0; n < options_.interp_fallback_insns; ++n) {
        ia32::StepResult step = interp.step();
        stats_.add("recover.interp_steps");
        if (step.kind == ia32::StepKind::Ok)
            continue;
        if (step.kind == ia32::StepKind::Halt) {
            result->kind = RunResult::Kind::Exit;
            result->exit_code = 0;
            return false;
        }
        if (step.kind == ia32::StepKind::Int) {
            btlib::SyscallResult res =
                btos_.systemService(*state, step.vector);
            if (res.exit) {
                result->kind = RunResult::Kind::Exit;
                result->exit_code = res.exit_code;
                return false;
            }
            continue;
        }
        // step.kind == Fault.
        if (step.fault.injected) {
            // A storm-injected transient: architecturally nothing
            // happened, so simply retry the instruction.
            stats_.add("recover.storm_fault");
            continue;
        }
        if (!deliverFault(state, step.fault, result))
            return false;
        // The handler frame is in *state now; keep stepping from it.
    }
    loadContext(*state);
    *next_eip = state->eip;
    if (profiler_)
        profiler_->resync(*next_eip);
    return true;
}

namespace
{

/** Net effect of a journal: last byte written per address. */
std::map<uint64_t, uint8_t>
journalFinals(const mem::WriteJournal &j)
{
    std::map<uint64_t, uint8_t> m;
    for (const mem::WriteJournal::Entry &e : j.entries)
        m[e.addr] = e.new_byte; // forward order: last write wins
    return m;
}

/** Pre-region byte per address touched by a journal. */
std::map<uint64_t, uint8_t>
journalOrigins(const mem::WriteJournal &j)
{
    std::map<uint64_t, uint8_t> m;
    for (const mem::WriteJournal::Entry &e : j.entries)
        m.emplace(e.addr, e.old_byte); // first record is the original
    return m;
}

/**
 * Compare the net memory effect of two journals recorded from the same
 * starting image: for every address either touched, the final byte must
 * agree (an address only one journal touched counts as final == its
 * pre-region value on the other side).
 */
bool
journalsMatch(const mem::WriteJournal &a, const mem::WriteJournal &b)
{
    std::map<uint64_t, uint8_t> fa = journalFinals(a);
    std::map<uint64_t, uint8_t> fb = journalFinals(b);
    std::map<uint64_t, uint8_t> oa = journalOrigins(a);
    std::map<uint64_t, uint8_t> ob = journalOrigins(b);
    auto lookup = [](const std::map<uint64_t, uint8_t> &m, uint64_t k,
                     uint8_t dflt) {
        auto it = m.find(k);
        return it == m.end() ? dflt : it->second;
    };
    for (const auto &[addr, va] : fa) {
        if (lookup(fb, addr, lookup(ob, addr, oa.at(addr))) != va)
            return false;
    }
    for (const auto &[addr, vb] : fb) {
        if (lookup(fa, addr, lookup(oa, addr, ob.at(addr))) != vb)
            return false;
    }
    return true;
}

} // namespace

void
Runtime::armCheckpoint(uint32_t eip)
{
    storeContext(&ck_state_, eip);
    ck_eip_ = eip;
    journal_.clear();
    // Runtime-area stores (use counters, status bytes, lookup entries)
    // are translator bookkeeping, not guest-architectural effect; the
    // interpreter oracle never performs them.
    journal_.exclude_lo = rt_base_;
    journal_.exclude_hi = rt_base_ + rt::area_size;
    mem_.setWriteJournal(&journal_);
    visit_log_.clear();
    machine_->setVisitLog(&visit_log_);
    ck_armed_ = true;
    stats_.add("sentinel.checked");
}

void
Runtime::discardCheckpoint(const char *why_stat)
{
    mem_.setWriteJournal(nullptr);
    machine_->setVisitLog(nullptr);
    ck_armed_ = false;
    stats_.add(why_stat);
}

bool
Runtime::replayMatches(RegionEnd kind, const ia32::State &mstate,
                       uint8_t vector, const ia32::Fault *fault,
                       mem::WriteJournal *replay_journal)
{
    // The replay must re-execute the recorded history exactly: storm
    // injection must neither perturb it nor consume injector budget.
    FaultSuppressScope suppress;
    replay_journal->clear();
    replay_journal->exclude_lo = journal_.exclude_lo;
    replay_journal->exclude_hi = journal_.exclude_hi;
    mem_.setWriteJournal(replay_journal);

    ia32::State s = ck_state_;
    ia32::Interpreter interp(s, mem_);
    bool matched = false;
    const uint64_t budget = sentinel_->config().replay_budget;
    // EFlags elimination leaves architecturally-dead flags
    // unmaterialized at region boundaries; the oracle computes every
    // flag exactly. Comparing them would flag every eliminated flag as
    // a divergence, so the arbitration runs flags-blind: GPRs, control
    // flow, FPU/XMM state and the memory journal still convict any
    // consequential miscompile (a flag-only corruption steers a branch
    // and surfaces as an eip/GPR divergence within a region or two).
    auto archMatches = [](const ia32::State &a, const ia32::State &b) {
        ia32::State t = a;
        t.eflags = b.eflags;
        return t.equalsArch(b);
    };
    for (uint64_t n = 0;; ++n) {
        if (kind == RegionEnd::Boundary && s.eip == mstate.eip &&
            archMatches(s, mstate) &&
            journalsMatch(journal_, *replay_journal)) {
            // The oracle reached the region's claimed end with the
            // machine's exact state and net memory effect.
            matched = true;
            break;
        }
        if (n >= budget)
            break; // budget exhausted without a match: divergence
        ia32::StepResult rs = interp.step();
        if (rs.kind == ia32::StepKind::Ok)
            continue;
        if (rs.kind == ia32::StepKind::Int) {
            matched = kind == RegionEnd::Syscall &&
                      rs.vector == vector && s.eip == mstate.eip &&
                      archMatches(s, mstate) &&
                      journalsMatch(journal_, *replay_journal);
            break;
        }
        if (rs.kind == ia32::StepKind::Fault) {
            matched = kind == RegionEnd::Fault && fault &&
                      rs.fault.kind == fault->kind &&
                      rs.fault.eip == fault->eip &&
                      (rs.fault.kind != ia32::FaultKind::PageFault ||
                       rs.fault.addr == fault->addr) &&
                      s.eip == mstate.eip && archMatches(s, mstate) &&
                      journalsMatch(journal_, *replay_journal);
            break;
        }
        // Halt inside a region that claimed to end elsewhere.
        break;
    }
    mem_.setWriteJournal(nullptr);
    return matched;
}

bool
Runtime::finishRegionCheck(RegionEnd kind, const ia32::State &mstate,
                           uint8_t vector, const ia32::Fault *fault)
{
    // Detach first: the replay arms its own journal, and divergence
    // handling must not journal its own repairs.
    mem_.setWriteJournal(nullptr);
    machine_->setVisitLog(nullptr);
    ck_armed_ = false;

    // Rewind memory to the checkpoint image; the oracle re-executes the
    // region's writes from there.
    mem_.undoJournal(journal_);

    mem::WriteJournal replay_journal;
    bool ok =
        replayMatches(kind, mstate, vector, fault, &replay_journal);

    // Unwind the oracle's writes. On a pass the machine's own image is
    // reinstated byte-exactly (the digest proved the net effects equal,
    // but the machine's execution is the canonical one); on a
    // divergence memory stays at the checkpoint for the rollback.
    mem_.undoJournal(replay_journal);
    if (ok) {
        mem_.redoJournal(journal_);
        stats_.add("sentinel.passed");
        return true;
    }

    stats_.add("sentinel.divergence");
    quarantineRegion(mstate.eip);
    loadContext(ck_state_);
    if (profiler_)
        profiler_->resync(ck_eip_);
    if (trace_)
        trace_->instant("divergence", trace::Cat::Fault, 0,
                        machine_->totalCycles(),
                        {{"eip", static_cast<int64_t>(ck_eip_)},
                         {"end_eip",
                          static_cast<int64_t>(mstate.eip)}});
    if (flight_)
        flight_->record(flight::Kind::Divergence, 0,
                        machine_->totalCycles(),
                        static_cast<int64_t>(ck_eip_),
                        static_cast<int64_t>(mstate.eip));
    return false;
}

void
Runtime::quarantineRegion(uint32_t end_eip)
{
    sentinel::DivergenceInfo info;
    info.checkpoint_eip = ck_eip_;
    info.region_index = sentinel_->regionsSeen();
    uint32_t lo = ~0u, hi = 0;
    std::set<int32_t> seen;
    for (int32_t id : visit_log_) {
        if (!seen.insert(id).second)
            continue;
        BlockInfo *b = translator_->blockById(id);
        if (!b)
            continue;
        if (info.first_block < 0)
            info.first_block = id;
        // The offending IA-32 range: every guest ip the quarantined
        // artifacts were translated from.
        lo = std::min(lo, b->entry_eip);
        hi = std::max(hi, b->entry_eip);
        for (int64_t i = b->cache_entry;
             i >= 0 && i < b->cache_end; ++i) {
            uint32_t ip = cache_.at(i).meta.ia32_ip;
            if (ip) {
                lo = std::min(lo, ip);
                hi = std::max(hi, ip);
            }
        }
        sentinel_->noteDivergence(b->entry_eip);
        translator_->quarantineBlock(b);
    }
    if (seen.empty() || !sentinel_->record(ck_eip_)) {
        // Degenerate region (empty or overflowed visit log): at least
        // gate the checkpoint EIP so the resume runs on the oracle.
        sentinel_->noteDivergence(ck_eip_);
    }
    if (visit_log_.dropped() > 0)
        stats_.set("sentinel.visit_overflow", visit_log_.dropped());
    info.boundary_eip = end_eip;
    info.ip_lo = lo == ~0u ? ck_eip_ : lo;
    info.ip_hi = hi == 0 ? ck_eip_ : hi;
    sentinel_->logDivergence(info);
}

bool
Runtime::deliverFault(ia32::State *state, const ia32::Fault &fault,
                      RunResult *result)
{
    stats_.add("faults.delivered");
    if (flight_)
        flight_->record(flight::Kind::GuestFault, 0,
                        machine_->totalCycles(),
                        static_cast<int64_t>(fault.kind),
                        static_cast<int64_t>(fault.eip));
    btlib::ExceptionDisposition disp =
        btos_.deliverException(*state, fault);
    if (disp == btlib::ExceptionDisposition::Terminate) {
        result->kind = RunResult::Kind::Fault;
        result->fault = fault;
        return false;
    }
    loadContext(*state);
    // The fault abandoned whatever block was mid-flight; re-anchor the
    // profiler's control-flow cursor at the handler entry.
    if (profiler_)
        profiler_->resync(state->eip);
    return true;
}

RunResult
Runtime::run(ia32::State &state)
{
    RunResult result;
    if (!initOk()) {
        result.kind = RunResult::Kind::InitError;
        return result;
    }

    loadContext(state);
    uint32_t next_eip = state.eip;
    bool force_cold_once = false;
    bool fresh_cold_once = false;
    if (profiler_)
        profiler_->resync(next_eip);

    for (;;) {
        if (machine_->totalCycles() >=
            static_cast<double>(options_.max_run_cycles)) {
            if (ck_armed_)
                discardCheckpoint("sentinel.skipped_limit");
            result.kind = RunResult::Kind::CycleLimit;
            storeContext(&state, next_eip);
            return result;
        }

        if (ck_armed_) {
            // The checked region ended at an ordinary dispatch
            // boundary: verify before any of its effects propagate.
            ia32::State mstate;
            storeContext(&mstate, next_eip);
            if (!finishRegionCheck(RegionEnd::Boundary, mstate, 0,
                                   nullptr)) {
                next_eip = ck_eip_;
                force_cold_once = false;
                fresh_cold_once = false;
            }
        }

        if (sentinel_ && sentinel_->interpretGate(next_eip)) {
            // Quarantined artifact: serve this dispatch under the
            // interpreter oracle and count down its quarantine.
            stats_.add("sentinel.gated_dispatches");
            sentinel_->tickCooldown(next_eip);
            force_cold_once = false;
            fresh_cold_once = false;
            if (!interpretFallback(&state, &result, &next_eip))
                return result;
            continue;
        }

        // Block re-entry boundary: the only place finished pipeline
        // sessions become visible to the guest.
        adoptHotResults();
        if (faultInjected(FaultSite::AcctSkew)) {
            // Silent accounting corruption: cycles slipped into a
            // bucket outside the charging paths, plus a phantom
            // translation count. Guest execution is untouched — only
            // the books lie, which is what the audit layer must
            // catch (closure identity + flight cross-count).
            machine_->stats().cycles[static_cast<size_t>(
                ipf::Bucket::Overhead)] += 1000.0;
            translator_->stats.add("xlate.cold_blocks");
            stats_.add("audit.skew_injected");
        }
        if (options_.audit && machine_->totalCycles() >= next_audit_) {
            audit_findings_.merge(auditClosure(*this));
            uint64_t period = options_.audit_period
                                  ? options_.audit_period
                                  : 1000000;
            while (next_audit_ <= machine_->totalCycles())
                next_audit_ += static_cast<double>(period);
        }
        if (profiler_)
            profiler_->maybeSample(machine_->totalCycles());
        if (options_.metrics)
            options_.metrics->maybeEmit(machine_->totalCycles());
        if (options_.persist && options_.persist->journalDirty()) {
            // CrashAdopt models dying between the in-memory adoption
            // above and the durable journal append below — the window
            // where a kill loses the just-adopted artifacts (they are
            // re-translated on resume; correctness is unaffected).
            if (faultInjected(FaultSite::CrashAdopt))
                crashNow(FaultSite::CrashAdopt);
            options_.persist->flushJournal();
        }
        if (options_.checkpointer)
            options_.checkpointer->maybeCheckpoint(*this, next_eip);

        int64_t entry = dispatchEntry(next_eip, force_cold_once,
                                      fresh_cold_once);
        force_cold_once = false;
        fresh_cold_once = false;
        if (entry < 0) {
            if (translator_->takeInjectedAbort()) {
                // Injected translation abort: fall back to the
                // interpreter for a few instructions and retry.
                stats_.add("recover.xlate_abort");
                if (!interpretFallback(&state, &result, &next_eip))
                    return result;
                continue;
            }
            // Undecodable code at next_eip.
            ia32::Fault fault;
            fault.kind = FaultKind::InvalidOpcode;
            fault.eip = next_eip;
            storeContext(&state, next_eip);
            if (!deliverFault(&state, fault, &result))
                return result;
            next_eip = state.eip;
            continue;
        }

        if (sentinel_ && !ck_armed_ && sentinel_->shouldCheck())
            armCheckpoint(next_eip);

        double remaining = static_cast<double>(options_.max_run_cycles) -
                           machine_->totalCycles();
        ipf::StopInfo stop = machine_->run(
            entry, remaining < 1 ? 1
                                 : static_cast<uint64_t>(remaining));
        machine_->chargeCycles(Bucket::Overhead,
                               options_.runtime_entry_cost);

        if (stop.kind == StopKind::CycleLimit) {
            if (ck_armed_)
                discardCheckpoint("sentinel.skipped_limit");
            result.kind = RunResult::Kind::CycleLimit;
            storeContext(&state, next_eip);
            return result;
        }
        el_assert(stop.kind != StopKind::BadIp, "machine left the cache");

        // Copy, not reference: dispatch below may flush the cache,
        // which would leave a reference dangling.
        const ipf::Instr instr = cache_.at(stop.instr_index);
        BlockInfo *block = translator_->blockById(instr.meta.block_id);

        if (stop.kind == StopKind::MemFault) {
            ia32::Fault fault;
            fault.kind = FaultKind::PageFault;
            fault.addr = static_cast<uint32_t>(stop.fault_addr);
            fault.is_write = stop.fault_is_write;
            if (block && instr.meta.commit_id >= 0 &&
                instr.meta.commit_id <
                    static_cast<int32_t>(block->recovery.size())) {
                reconstructHot(*block, instr, &state);
                fault.eip = state.eip;
            } else {
                uint32_t eip =
                    static_cast<uint32_t>(machine_->gr(ipf::gr_state));
                storeContext(&state, eip);
                fault.eip = eip;
            }
            stats_.add("faults.memory");
            if (ck_armed_ &&
                !finishRegionCheck(RegionEnd::Fault, state, 0,
                                   &fault)) {
                // The "fault" was an artifact of a bad translation
                // (e.g. a corrupted address computation): it must never
                // reach the guest. Rolled back; resume at checkpoint.
                next_eip = ck_eip_;
                continue;
            }
            if (sentinel_ && block &&
                sentinel_->noteFault(block->entry_eip))
                translator_->quarantineBlock(
                    block, ProvCause::FaultThreshold);
            if (!deliverFault(&state, fault, &result))
                return result;
            next_eip = state.eip;
            continue;
        }

        switch (stop.reason) {
          case ExitReason::LinkMiss: {
            uint32_t target = static_cast<uint32_t>(stop.payload);
            stats_.add("exits.link_miss");
            // Any translation below may flush the cache; never patch
            // an exit index from a dead generation.
            uint64_t gen = cache_.generation();
            // Hot-to-hot chaining: when hot code falls off its trace
            // tail, extend the hot tiling at the target immediately
            // instead of decaying into cold execution.
            if (block && block->kind == BlockKind::Hot &&
                options_.enable_hot_phase &&
                !translator_->persistCovers(target) &&
                !(sentinel_ && sentinel_->interpretGate(target))) {
                // (A store-covered target is excluded: dispatchEntry
                // below adopts the persisted trace, so spending a local
                // hot session on it would only duplicate work.)
                SpecContext spec = currentSpec();
                BlockInfo *cold =
                    translator_->dispatchCold(target, spec, false);
                if (cold && cold->kind == BlockKind::Cold &&
                    cold->hot_state == HotState::Eligible) {
                    if (hot_pipeline_) {
                        enqueueHot(cold, spec);
                    } else if (translator_->translateHot(target,
                                                         spec)) {
                        stats_.add("hot.chained");
                    } else if (!cold->invalidated) {
                        noteHotFailure(cold);
                    }
                    chargeTranslatorOverhead();
                }
            }
            int64_t tentry = dispatchEntry(target, false);
            // While a hot session for the exiting block is in flight
            // its exits stay unlinked — every traversal must keep
            // stopping here so the finished artifact can be adopted.
            if (tentry >= 0 && options_.enable_chaining &&
                !(block && block->hot_inflight) &&
                cache_.patchToBranchChecked(stop.instr_index, tentry,
                                            gen)) {
                stats_.add("links.patched");
                if (trace_)
                    trace_->instant(
                        "exit_relink", trace::Cat::Cache, 0,
                        machine_->totalCycles(),
                        {{"from_block", instr.meta.block_id},
                         {"target_eip",
                          static_cast<int64_t>(target)}});
            }
            next_eip = target;
            break;
          }

          case ExitReason::IndirectMiss: {
            uint32_t target = static_cast<uint32_t>(stop.payload);
            stats_.add("exits.indirect_miss");
            int64_t tentry = dispatchEntry(target, false);
            if (tentry >= 0) {
                // Install the fast-lookup entry.
                uint64_t h = bits(target, 2, 10);
                uint64_t eaddr =
                    rt_base_ + rt::lookup_table + h * 16;
                mem_.writePriv(eaddr, 8, target);
                mem_.writePriv(eaddr + 8, 8,
                               static_cast<uint64_t>(tentry));
            }
            next_eip = target;
            break;
          }

          case ExitReason::RegisterHot: {
            stats_.add("exits.register_hot");
            registerHot(static_cast<int32_t>(stop.payload));
            // Resume the block that registered (possibly now hot).
            next_eip = block ? block->entry_eip : next_eip;
            break;
          }

          case ExitReason::SyscallGate: {
            stats_.add("exits.syscall");
            uint8_t vector =
                static_cast<uint8_t>(stop.payload >> 32);
            uint32_t ret_eip =
                static_cast<uint32_t>(stop.payload & 0xffffffff);
            storeContext(&state, ret_eip);
            if (ck_armed_ &&
                !finishRegionCheck(RegionEnd::Syscall, state, vector,
                                   nullptr)) {
                // Never let a region that corrupted state reach the
                // OS: the syscall is not serviced; resume from the
                // checkpoint on the oracle.
                next_eip = ck_eip_;
                break;
            }
            btlib::SyscallResult res =
                btos_.systemService(state, vector);
            if (res.exit) {
                result.kind = RunResult::Kind::Exit;
                result.exit_code = res.exit_code;
                return result;
            }
            loadContext(state);
            next_eip = state.eip;
            // The machine's SyscallGate probe invalidated the cursor;
            // execution architecturally resumes at the return EIP.
            if (profiler_)
                profiler_->resync(next_eip);
            break;
          }

          case ExitReason::Misaligned: {
            stats_.add("exits.misaligned");
            el_assert(block, "misalignment exit without a block");
            if (block->kind == BlockKind::Cold) {
                uint32_t resume = instr.meta.ia32_ip;
                translator_->recordMisalignment(block->entry_eip);
                if (block->misalign_stage == MisalignStage::Light) {
                    // Stage 1 -> 2: regenerate with detection+avoidance.
                    translator_->regenerateForMisalignment(
                        block->entry_eip, currentSpec());
                }
                next_eip = resume;
            } else {
                // Stage 3: discard the hot block, remember to avoid.
                translator_->recordMisalignment(instr.meta.ia32_ip);
                translator_->discardHotBlock(block);
                next_eip = static_cast<uint32_t>(stop.payload);
            }
            chargeTranslatorOverhead();
            break;
          }

          case ExitReason::GuardFail: {
            stats_.add("exits.guard_fail");
            el_assert(block, "guard exit without a block");
            recoverGuard(block, stop.payload);
            if (sentinel_ &&
                sentinel_->noteGuardMiss(block->entry_eip)) {
                // Chronic guard mispredicts crossed the quarantine
                // threshold: blacklist the artifact.
                translator_->quarantineBlock(
                    block, ProvCause::GuardThreshold);
            }
            next_eip = block->entry_eip;
            break;
          }

          case ExitReason::SmcDetected: {
            stats_.add("exits.smc");
            // Payload: (guard window width << 32) | guarded address.
            // Invalidate exactly the guarded window, not a whole page.
            uint32_t addr =
                static_cast<uint32_t>(stop.payload & 0xffffffff);
            uint32_t width = static_cast<uint32_t>(stop.payload >> 32);
            translator_->invalidateRange(addr, width ? width : 4096);
            next_eip = block ? block->entry_eip : addr;
            if (profiler_) {
                // Canonical decodes over the written range are stale.
                // The SMC guard fires at the block head, before any
                // probe, so re-anchoring at the re-execution point
                // keeps the event stream architectural.
                profiler_->invalidateCode(addr, width ? width : 4096);
                profiler_->resync(next_eip);
            }
            break;
          }

          case ExitReason::Resync: {
            stats_.add("exits.resync");
            // Speculation failed or a block was invalidated: re-execute
            // the region cold, precisely.
            next_eip = static_cast<uint32_t>(stop.payload);
            force_cold_once = true;
            fresh_cold_once = true;
            break;
          }

          case ExitReason::GuestFault: {
            stats_.add("exits.guest_fault");
            ia32::Fault fault;
            fault.kind =
                static_cast<FaultKind>(stop.payload & 0xff);
            fault.eip = static_cast<uint32_t>(stop.payload >> 8);
            if (fault.kind == FaultKind::PageFault)
                fault.addr = fault.eip; // instruction-fetch fault
            if (block && instr.meta.commit_id >= 0 &&
                instr.meta.commit_id <
                    static_cast<int32_t>(block->recovery.size())) {
                reconstructHot(*block, instr, &state);
                state.eip = fault.eip;
            } else {
                storeContext(&state, fault.eip);
            }
            if (ck_armed_ &&
                !finishRegionCheck(RegionEnd::Fault, state, 0,
                                   &fault)) {
                next_eip = ck_eip_;
                break;
            }
            if (sentinel_ && block &&
                sentinel_->noteFault(block->entry_eip))
                translator_->quarantineBlock(
                    block, ProvCause::FaultThreshold);
            if (!deliverFault(&state, fault, &result))
                return result;
            next_eip = state.eip;
            break;
          }

          case ExitReason::Breakpoint: {
            stats_.add("exits.breakpoint");
            if (ck_armed_)
                discardCheckpoint("sentinel.skipped_breakpoint");
            ia32::Fault fault;
            fault.kind = FaultKind::Breakpoint;
            fault.eip = static_cast<uint32_t>(stop.payload);
            storeContext(&state, fault.eip);
            if (!deliverFault(&state, fault, &result))
                return result;
            next_eip = state.eip;
            break;
          }

          case ExitReason::Halt: {
            stats_.add("exits.halt");
            if (ck_armed_)
                discardCheckpoint("sentinel.skipped_halt");
            storeContext(&state,
                         static_cast<uint32_t>(stop.payload));
            result.kind = RunResult::Kind::Exit;
            result.exit_code = 0;
            return result;
          }

          default:
            el_panic("unhandled exit reason %u",
                     static_cast<unsigned>(stop.reason));
        }
    }
}

} // namespace el::core
