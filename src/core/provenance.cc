#include "core/provenance.hh"

namespace el::core
{

const char *
provStateName(ProvState s)
{
    switch (s) {
      case ProvState::Decoded:
        return "decoded";
      case ProvState::Cold:
        return "cold";
      case ProvState::HotQueued:
        return "hot_queued";
      case ProvState::Session:
        return "session";
      case ProvState::Published:
        return "published";
      case ProvState::Discarded:
        return "discarded";
      case ProvState::Persisted:
        return "persisted";
      case ProvState::Adopted:
        return "adopted";
      case ProvState::Suspect:
        return "suspect";
      case ProvState::Quarantined:
        return "quarantined";
      case ProvState::Retranslated:
        return "retranslated";
      case ProvState::Pinned:
        return "pinned";
    }
    return "?";
}

const char *
provCauseName(ProvCause c)
{
    switch (c) {
      case ProvCause::None:
        return "none";
      case ProvCause::Heat:
        return "heat";
      case ProvCause::SessionOk:
        return "session_ok";
      case ProvCause::SessionAbort:
        return "session_abort";
      case ProvCause::StaleGeneration:
        return "stale_generation";
      case ProvCause::SmcWrite:
        return "smc_write";
      case ProvCause::CacheFlush:
        return "cache_flush";
      case ProvCause::CachePressure:
        return "cache_pressure";
      case ProvCause::QuarantineBlocked:
        return "quarantine_blocked";
      case ProvCause::SentinelDivergence:
        return "sentinel_divergence";
      case ProvCause::FaultThreshold:
        return "fault_threshold";
      case ProvCause::GuardThreshold:
        return "guard_threshold";
      case ProvCause::StoreRecord:
        return "store_record";
      case ProvCause::StoreHit:
        return "store_hit";
      case ProvCause::SmcMismatch:
        return "smc_mismatch";
      case ProvCause::QuarantinePurge:
        return "quarantine_purge";
      case ProvCause::Cooldown:
        return "cooldown";
      case ProvCause::Misalign:
        return "misalign";
    }
    return "?";
}

} // namespace el::core
