/**
 * @file
 * The runtime accounting auditor: cross-checks every telemetry view of
 * a run against every other.
 *
 * Each observability layer added so far — bucketed cycle accounting,
 * per-block costs, StatGroup counters, the flight recorder, the
 * provenance ledger, the serialized report/metrics/postmortem schemas
 * — measures the same execution independently. The auditor exploits
 * that redundancy: when the books do not close, some counter was
 * dropped, double-charged, or silently bypassed, and every bench delta
 * and el_diff attribution downstream is built on sand.
 *
 * Two entry points with different safety envelopes:
 *
 *  - `auditClosure()` reads only the machine (main-thread state) and
 *    is safe at any dispatch/adoption boundary — this is what
 *    `el_run --audit` runs periodically during execution.
 *
 *  - `auditRun()` additionally walks the flight recorder, the
 *    provenance ledger and the serialized schemas. Flight rings are
 *    written by live pipeline workers, so this pass is only legal
 *    after `Runtime::quiesce()` — el_run runs it once at end of run.
 *
 * The invariant table is documented in DESIGN.md §14.
 */

#ifndef EL_CORE_AUDIT_HH
#define EL_CORE_AUDIT_HH

#include <string>

#include "support/audit.hh"
#include "support/buildinfo.hh"

namespace el::core
{

class Runtime;

/**
 * Machine-level closure checks (safe mid-run at dispatch boundaries):
 *
 *  - Σ per-block cycles + synthetic cycles == total cycles (when
 *    block tracking is on) — catches any cycle added outside the
 *    charging paths;
 *  - Σ per-bucket retired instructions == total retired;
 *  - Σ per-block instructions == total retired (block tracking on);
 *  - per-bucket misalignment-penalty cycles ≤ that bucket's cycles;
 *  - guard-recovery overhead ≤ the Overhead bucket;
 *  - every Figure-6 attribution category is non-negative and the
 *    categories sum to the machine total.
 */
audit::Result auditClosure(Runtime &rt);

/** What the full audit needs beyond the runtime itself. */
struct AuditContext
{
    std::string workload; //!< For the schema self-check render.
    //! Stamp used when rendering schema self-check documents; null
    //! renders them unstamped (the producer checks are then skipped).
    const buildinfo::ProducerStamp *producer = nullptr;
};

/**
 * The full audit: closure checks plus flight↔counter cross-counts,
 * provenance state-machine legality, and report/metrics/postmortem
 * schema self-checks. Call only after Runtime::quiesce() — the flight
 * snapshot reads worker rings.
 */
audit::Result auditRun(Runtime &rt, const AuditContext &ctx);

} // namespace el::core

#endif // EL_CORE_AUDIT_HH
