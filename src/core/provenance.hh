/**
 * @file
 * Artifact provenance ledger: per-entry-point lifecycle timelines.
 *
 * Every translation artifact the runtime ever produces for a guest
 * entry point leaves a compact trail here: decoded → cold → hot-queued
 * → session → published/discarded → persisted → adopted → suspect →
 * quarantined → retranslated, each step stamped with the simulated
 * cycle, the code-cache generation, the block id, and a cause code
 * (why did the artifact leave its previous state — heat, an SMC write,
 * cache pressure, a sentinel conviction, ...). When a run ends badly,
 * the ledger answers the first forensic question — "where did the code
 * I was executing come from, and what happened to its ancestors?" —
 * without re-running under a tracer.
 *
 * The ledger is fed only from the owning (guest) thread: worker-side
 * session outcomes are recorded at adoption time using the candidate's
 * planned simulated times, mirroring how the tracer handles worker
 * lanes, so timelines are deterministic across translation_threads.
 * Per-eip history is a bounded drop-oldest ring (churning blocks keep
 * their recent lifecycle, not their full history). Recording charges
 * zero simulated cycles.
 */

#ifndef EL_CORE_PROVENANCE_HH
#define EL_CORE_PROVENANCE_HH

#include <cstdint>
#include <map>

#include "support/ring.hh"

namespace el::core
{

/** Lifecycle states an artifact moves through. */
enum class ProvState : uint8_t
{
    Decoded,      //!< Guest bytes decoded at this entry point.
    Cold,         //!< Cold translation published.
    HotQueued,    //!< Registered hot and queued for a session.
    Session,      //!< Hot-translation session ran (worker or inline).
    Published,    //!< Hot artifact committed into the code cache.
    Discarded,    //!< Artifact rejected/killed (see cause).
    Persisted,    //!< Recorded into the on-disk artifact store.
    Adopted,      //!< Stored artifact adopted instead of retranslating.
    Suspect,      //!< Sentinel raised suspicion (fault/guard misses).
    Quarantined,  //!< Sentinel conviction: artifact blacklisted.
    Retranslated, //!< Cooldown expired; eligible to translate again.
    Pinned,       //!< Retry budget exhausted; interpreter-only forever.
};

/** Why the state changed. */
enum class ProvCause : uint8_t
{
    None,
    Heat,               //!< Use counter crossed the heat threshold.
    SessionOk,          //!< Hot session completed successfully.
    SessionAbort,       //!< Hot session failed (incl. injected aborts).
    StaleGeneration,    //!< Cache generation moved under the artifact.
    SmcWrite,           //!< Self-modifying store hit covered bytes.
    CacheFlush,         //!< Bounded-cache flush reclaimed it.
    CachePressure,      //!< Publication refused: cache over capacity.
    QuarantineBlocked,  //!< Commit refused: entry is quarantined.
    SentinelDivergence, //!< Shadow execution disagreed.
    FaultThreshold,     //!< Too many guest faults in the artifact.
    GuardThreshold,     //!< Too many speculation-guard misses.
    StoreRecord,        //!< Captured into the persistent store.
    StoreHit,           //!< Matching record found in the store.
    SmcMismatch,        //!< Store record's guard bytes ≠ live memory.
    QuarantinePurge,    //!< Quarantine scrubbed the store record.
    Cooldown,           //!< Quarantine cooldown expired.
    Misalign,           //!< Regenerated for misalignment avoidance.
};

const char *provStateName(ProvState s);
const char *provCauseName(ProvCause c);

/** One lifecycle step. */
struct ProvEvent
{
    ProvState state = ProvState::Decoded;
    ProvCause cause = ProvCause::None;
    int32_t block_id = -1;    //!< BlockInfo id, -1 when not applicable.
    uint32_t generation = 0;  //!< Code-cache generation at the event.
    double ts = 0;            //!< Simulated cycles.
};

/** The ledger. Owned by the runtime; main-thread only. */
class ProvenanceLedger
{
  public:
    /** @p per_eip_capacity Last-N lifecycle events kept per eip. */
    explicit ProvenanceLedger(size_t per_eip_capacity = 32)
        : per_eip_capacity_(per_eip_capacity ? per_eip_capacity : 1)
    {}

    ProvenanceLedger(const ProvenanceLedger &) = delete;
    ProvenanceLedger &operator=(const ProvenanceLedger &) = delete;

    /** Append one step to @p eip's timeline. */
    void
    note(uint32_t eip, ProvState state, ProvCause cause, int32_t block_id,
         uint32_t generation, double ts)
    {
        auto it = timelines_.find(eip);
        if (it == timelines_.end())
            it = timelines_
                     .emplace(eip, BoundedRing<ProvEvent>(
                                       per_eip_capacity_,
                                       RingPolicy::DropOldest))
                     .first;
        it->second.push(ProvEvent{state, cause, block_id, generation, ts});
    }

    /** @p eip's timeline, oldest first; null when never seen. */
    const BoundedRing<ProvEvent> *
    timeline(uint32_t eip) const
    {
        auto it = timelines_.find(eip);
        return it == timelines_.end() ? nullptr : &it->second;
    }

    /** All timelines, keyed and iterated by eip (deterministic). */
    const std::map<uint32_t, BoundedRing<ProvEvent>> &
    all() const
    {
        return timelines_;
    }

    size_t perEipCapacity() const { return per_eip_capacity_; }

  private:
    size_t per_eip_capacity_;
    std::map<uint32_t, BoundedRing<ProvEvent>> timelines_;
};

} // namespace el::core

#endif // EL_CORE_PROVENANCE_HH
