file(REMOVE_RECURSE
  "CMakeFiles/precise_exceptions.dir/precise_exceptions.cpp.o"
  "CMakeFiles/precise_exceptions.dir/precise_exceptions.cpp.o.d"
  "precise_exceptions"
  "precise_exceptions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precise_exceptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
