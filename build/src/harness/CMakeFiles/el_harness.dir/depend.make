# Empty dependencies file for el_harness.
# This may be replaced when dependencies are built.
