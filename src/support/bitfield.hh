/**
 * @file
 * Bit-manipulation helpers shared by the decoder, the translator and the
 * IPF machine model (bit extraction, insertion, sign extension, alignment).
 */

#ifndef EL_SUPPORT_BITFIELD_HH
#define EL_SUPPORT_BITFIELD_HH

#include <cstdint>

namespace el
{

/** Extract bits [first, first+len) of @p val (len in 1..64). */
constexpr uint64_t
bits(uint64_t val, unsigned first, unsigned len)
{
    uint64_t mask = (len >= 64) ? ~0ULL : ((1ULL << len) - 1);
    return (val >> first) & mask;
}

/** Extract a single bit of @p val. */
constexpr uint64_t
bit(uint64_t val, unsigned pos)
{
    return (val >> pos) & 1;
}

/** Insert the low @p len bits of @p src into @p dst at position @p first. */
constexpr uint64_t
insertBits(uint64_t dst, unsigned first, unsigned len, uint64_t src)
{
    uint64_t mask = (len >= 64) ? ~0ULL : ((1ULL << len) - 1);
    return (dst & ~(mask << first)) | ((src & mask) << first);
}

/** Sign-extend the low @p len bits of @p val to 64 bits. */
constexpr int64_t
sext(uint64_t val, unsigned len)
{
    if (len >= 64)
        return static_cast<int64_t>(val);
    uint64_t sign = 1ULL << (len - 1);
    uint64_t mask = (1ULL << len) - 1;
    val &= mask;
    return static_cast<int64_t>((val ^ sign) - sign);
}

/** True if @p addr is a multiple of @p align (align must be a power of 2). */
constexpr bool
isAligned(uint64_t addr, uint64_t align)
{
    return (addr & (align - 1)) == 0;
}

/** Round @p addr down to a multiple of @p align (power of 2). */
constexpr uint64_t
alignDown(uint64_t addr, uint64_t align)
{
    return addr & ~(align - 1);
}

/** Round @p addr up to a multiple of @p align (power of 2). */
constexpr uint64_t
alignUp(uint64_t addr, uint64_t align)
{
    return (addr + align - 1) & ~(align - 1);
}

/** Truncate @p val to @p size bytes (size in {1,2,4,8}). */
constexpr uint64_t
truncToSize(uint64_t val, unsigned size)
{
    if (size >= 8)
        return val;
    return val & ((1ULL << (size * 8)) - 1);
}

/** Population count of bits set in a byte (used by the PF flag). */
constexpr unsigned
popcount8(uint8_t v)
{
    unsigned c = 0;
    for (unsigned i = 0; i < 8; ++i)
        c += (v >> i) & 1;
    return c;
}

} // namespace el

#endif // EL_SUPPORT_BITFIELD_HH
