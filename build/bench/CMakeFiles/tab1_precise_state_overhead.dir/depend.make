# Empty dependencies file for tab1_precise_state_overhead.
# This may be replaced when dependencies are built.
