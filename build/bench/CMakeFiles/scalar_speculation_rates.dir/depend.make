# Empty dependencies file for scalar_speculation_rates.
# This may be replaced when dependencies are built.
