# Empty compiler generated dependencies file for multi_os.
# This may be replaced when dependencies are built.
