#include "core/checkpoint.hh"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "core/layout.hh"
#include "core/runtime.hh"
#include "persist/durable.hh"
#include "support/wire.hh"

namespace el::core
{

namespace
{

constexpr uint32_t ckpt_magic = 0x4b434c45u; // "ELCK"
constexpr uint32_t ckpt_version = 1;

// Caps on deserialized counts, same rationale as the store's.
constexpr uint32_t max_pages = 1u << 22; // 16 GiB of 4K pages.
constexpr uint64_t max_console = 256u << 20;

uint64_t
doubleBits(double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double
bitsDouble(uint64_t bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

void
putState(wire::Writer &w, const ia32::State &s)
{
    for (uint32_t r : s.gpr)
        w.u32(r);
    w.u32(s.eip);
    w.u32(s.eflags);
    for (const long double &st : s.fpu.st) {
        // x86 extended precision: the 10 low bytes are the value, the
        // rest is in-memory padding. Serializing raw bytes keeps the
        // full 80-bit precision a double round-trip would lose.
        uint8_t raw[10];
        std::memcpy(raw, &st, sizeof(raw));
        w.bytes(raw, sizeof(raw));
    }
    for (ia32::FpTag t : s.fpu.tag)
        w.u8(static_cast<uint8_t>(t));
    w.u8(s.fpu.top);
    w.u16(s.fpu.control);
    w.u16(s.fpu.status);
    for (const ia32::XmmReg &x : s.xmm)
        w.bytes(x.bytes.data(), x.bytes.size());
    w.u32(s.mxcsr);
}

bool
getState(wire::Reader &r, ia32::State &s)
{
    for (uint32_t &g : s.gpr)
        g = r.u32();
    s.eip = r.u32();
    s.eflags = r.u32();
    for (long double &st : s.fpu.st) {
        uint8_t raw[10];
        if (!r.bytes(raw, sizeof(raw)))
            return false;
        st = 0.0L;
        std::memcpy(&st, raw, sizeof(raw));
    }
    for (ia32::FpTag &t : s.fpu.tag) {
        uint8_t v = r.u8();
        if (v > 1)
            return false;
        t = static_cast<ia32::FpTag>(v);
    }
    s.fpu.top = r.u8();
    if (s.fpu.top > 7)
        return false;
    s.fpu.control = r.u16();
    s.fpu.status = r.u16();
    for (ia32::XmmReg &x : s.xmm)
        if (!r.bytes(x.bytes.data(), x.bytes.size()))
            return false;
    s.mxcsr = r.u32();
    return r.ok;
}

void
putOs(wire::Writer &w, const btlib::OsSnapshot &os)
{
    w.u64(os.console.size());
    w.bytes(os.console.data(), os.console.size());
    w.u64(os.alloc_next);
    w.u32(os.brk);
    w.u32(os.handler_eip);
    w.u64(doubleBits(os.virtual_time_us));
    w.u64(os.syscalls);
}

bool
getOs(wire::Reader &r, btlib::OsSnapshot &os)
{
    uint64_t len = r.u64();
    if (!r.ok || len > max_console || !r.need(len))
        return false;
    os.console.assign(reinterpret_cast<const char *>(r.p + r.off), len);
    r.off += len;
    os.alloc_next = r.u64();
    os.brk = r.u32();
    os.handler_eip = r.u32();
    os.virtual_time_us = bitsDouble(r.u64());
    os.syscalls = r.u64();
    return r.ok;
}

} // namespace

std::string
Checkpointer::path() const
{
    return cfg_.dir + "/" + cfg_.fp.hex() + ".elckpt";
}

void
Checkpointer::maybeCheckpoint(Runtime &rt, uint32_t next_eip)
{
    if (!cfg_.period_cycles)
        return;
    double now = rt.machine().totalCycles();
    if (now < next_due_)
        return;
    checkpointNow(rt, next_eip);
    next_due_ = now + static_cast<double>(cfg_.period_cycles);
}

bool
Checkpointer::checkpointNow(Runtime &rt, uint32_t next_eip)
{
    CheckpointImage img;
    img.seq = seq_ + 1;
    img.cycles = rt.machine().totalCycles();
    rt.storeContext(&img.state, next_eip);
    if (os_source_)
        img.os = os_source_();
    img.console_hash =
        wire::fnv1a(img.os.console.data(), img.os.console.size());

    // The runtime area is the canonical never-persisted-mid-flight
    // region: it holds translator-internal state (lookup tables,
    // profile counters, speculation bytes) that a resumed runtime
    // rebuilds from scratch at its own base address.
    uint64_t rt_lo = rt.rtBase();
    uint64_t rt_hi = rt_lo + rt::area_size;
    rt.memory().forEachPage([&](uint64_t addr, mem::Perm perm,
                                bool has_code, bool dirty,
                                const std::vector<uint8_t> &data) {
        if (addr >= rt_lo && addr < rt_hi)
            return;
        PageImage p;
        p.addr = addr;
        p.perm = perm;
        p.has_code = has_code;
        if (dirty)
            p.data = data;
        img.pages.push_back(std::move(p));
    });
    std::sort(img.pages.begin(), img.pages.end(),
              [](const PageImage &a, const PageImage &b) {
                  return a.addr < b.addr;
              });

    wire::Writer w;
    w.u32(ckpt_magic);
    w.u32(ckpt_version);
    w.u64(cfg_.fp.image_hash);
    w.u64(cfg_.fp.opts_hash);
    w.u32(cfg_.fp.entry);
    w.u64(img.seq);
    w.u64(doubleBits(img.cycles));
    w.u64(img.console_hash);
    putState(w, img.state);
    putOs(w, img.os);
    w.u32(static_cast<uint32_t>(img.pages.size()));
    for (const PageImage &p : img.pages) {
        w.u64(p.addr);
        w.u8(static_cast<uint8_t>(p.perm));
        w.b(p.has_code);
        w.b(!p.data.empty());
        if (!p.data.empty())
            w.bytes(p.data.data(), p.data.size());
    }
    // Whole-file CRC over everything after the magic; the durable
    // rename makes torn files impossible to publish, the CRC catches
    // bit rot and the injected-crash temp files.
    w.u32(wire::crc32(w.buf.data() + 4, w.buf.size() - 4));

    std::error_code ec;
    std::filesystem::create_directories(cfg_.dir, ec);
    if (!persist::writeFileDurable(path(), w.buf.data(), w.buf.size(),
                                   FaultSite::CrashCheckpoint)) {
        stats.add("ckpt.failed");
        return false;
    }
    seq_ = img.seq;
    stats.add("ckpt.written");
    stats.add("ckpt.bytes", w.buf.size());
    return true;
}

bool
Checkpointer::load(const std::string &dir, const persist::Fingerprint &fp,
                   CheckpointImage *out, std::string *error)
{
    std::string path = dir + "/" + fp.hex() + ".elckpt";
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "no checkpoint file";
        return false;
    }
    std::vector<uint8_t> buf{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
    in.close();

    if (buf.size() < 8) {
        if (error)
            *error = "checkpoint file too small";
        return false;
    }
    wire::Reader tail(buf.data() + buf.size() - 4, 4);
    if (wire::crc32(buf.data() + 4, buf.size() - 8) != tail.u32()) {
        if (error)
            *error = "checkpoint CRC mismatch";
        return false;
    }

    wire::Reader r(buf.data(), buf.size() - 4);
    uint32_t magic = r.u32();
    uint32_t version = r.u32();
    uint64_t image_hash = r.u64();
    uint64_t opts_hash = r.u64();
    uint32_t entry = r.u32();
    if (!r.ok || magic != ckpt_magic || version != ckpt_version) {
        if (error)
            *error = "bad checkpoint header";
        return false;
    }
    if (image_hash != fp.image_hash || opts_hash != fp.opts_hash ||
        entry != fp.entry) {
        if (error)
            *error = "checkpoint fingerprint mismatch";
        return false;
    }

    CheckpointImage img;
    img.seq = r.u64();
    img.cycles = bitsDouble(r.u64());
    img.console_hash = r.u64();
    if (!getState(r, img.state) || !getOs(r, img.os)) {
        if (error)
            *error = "corrupt checkpoint state";
        return false;
    }
    uint32_t page_count = r.u32();
    if (!r.ok || page_count > max_pages) {
        if (error)
            *error = "corrupt checkpoint page table";
        return false;
    }
    img.pages.resize(page_count);
    for (PageImage &p : img.pages) {
        p.addr = r.u64();
        uint8_t perm = r.u8();
        p.has_code = r.b();
        bool has_data = r.b();
        if (!r.ok || perm > mem::PermRWX ||
            p.addr % mem::Memory::page_size != 0) {
            if (error)
                *error = "corrupt checkpoint page";
            return false;
        }
        p.perm = static_cast<mem::Perm>(perm);
        if (has_data) {
            p.data.resize(mem::Memory::page_size);
            if (!r.bytes(p.data.data(), p.data.size())) {
                if (error)
                    *error = "truncated checkpoint page data";
                return false;
            }
        }
    }
    if (!r.ok || r.off != r.n) {
        if (error)
            *error = "trailing garbage in checkpoint";
        return false;
    }
    *out = std::move(img);
    return true;
}

void
applyCheckpointMemory(const CheckpointImage &image, mem::Memory &memory)
{
    for (const PageImage &p : image.pages)
        memory.restorePage(p.addr, p.perm, p.has_code,
                           p.data.empty() ? nullptr : p.data.data());
}

} // namespace el::core
