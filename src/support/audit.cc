#include "support/audit.hh"

#include "support/strfmt.hh"

namespace el::audit
{

std::string
Result::summary() const
{
    std::string out =
        strfmt("audit: %llu check(s), %zu violation(s)",
               static_cast<unsigned long long>(checks_run_),
               violations_.size());
    for (const Violation &v : violations_)
        out += strfmt("\n  FAIL %s: %s", v.check.c_str(),
                      v.detail.c_str());
    return out;
}

} // namespace el::audit
