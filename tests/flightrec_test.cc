/**
 * @file
 * Tests for the observability tentpole: the always-on flight recorder,
 * the artifact provenance ledger, the telemetry snapshotter, and the
 * postmortem bundle.
 *
 * The load-bearing properties:
 *  - recording charges zero simulated cycles: guest results AND cycle
 *    counts are bit-exact with the recorder on or off;
 *  - the merged flight is deterministic: two identical runs produce
 *    identical event sequences for every translation_threads setting,
 *    because worker events carry planned simulated times and planned
 *    worker slots, never wall clock;
 *  - a chaos run's postmortem names the injected fault site that
 *    caused the trouble, and the faulting entry point's provenance
 *    chain is present.
 */

#include <gtest/gtest.h>

#include "btlib/abi.hh"
#include "core/postmortem.hh"
#include "core/provenance.hh"
#include "guest/image.hh"
#include "harness/exec.hh"
#include "ia32/assembler.hh"
#include "support/faultinject.hh"
#include "support/flightrec.hh"
#include "support/json.hh"
#include "support/metrics.hh"
#include "support/random.hh"

namespace el
{
namespace
{

using guest::Layout;
using namespace ia32;

/** Tight counted loop, hot enough to cross any heat threshold. */
guest::Image
hotLoopProgram(uint32_t iterations = 400)
{
    Assembler as(Layout::code_base);
    as.movRI(RegEax, 0);
    as.movRI(RegEcx, iterations);
    Label top = as.label();
    as.bind(top);
    as.aluRI(Op::Add, RegEax, 3);
    as.aluRI(Op::Xor, RegEax, 0x55);
    as.decR(RegEcx);
    as.jcc(Cond::NE, top);
    as.aluRI(Op::And, RegEax, 0x7f);
    as.movRR(RegEbx, RegEax);
    as.movRI(RegEax, btlib::linux_abi::nr_exit);
    as.intN(btlib::linux_abi::int_vector);

    guest::Image img;
    img.name = "flight_hotloop";
    img.entry = Layout::code_base;
    img.addCode(Layout::code_base, as.finish());
    img.addData(Layout::data_base, 0x1000);
    return img;
}

core::Options
hotOpts(unsigned threads, bool flight = true)
{
    core::Options o;
    o.heat_threshold = 16;
    o.hot_batch = 1;
    o.translation_threads = threads;
    o.deterministic_adoption = threads > 0;
    o.flight_recorder = flight;
    return o;
}

// ----- recorder unit behavior -------------------------------------------

TEST(FlightRecorder, DropOldestKeepsTheTail)
{
    flight::FlightRecorder fr(4);
    for (int i = 0; i < 10; ++i)
        fr.record(flight::Kind::Dispatch, 0, i, i);
    std::vector<flight::Event> ev = fr.snapshot();
    ASSERT_EQ(ev.size(), 4u);
    // The last four events survive, the first six were evicted.
    EXPECT_EQ(ev.front().a, 6);
    EXPECT_EQ(ev.back().a, 9);
    EXPECT_EQ(fr.dropped(), 6u);
}

TEST(FlightRecorder, SnapshotMergesSortedByTime)
{
    flight::FlightRecorder fr(16);
    fr.record(flight::Kind::HotCommit, 0, 30.0, 3);
    fr.record(flight::Kind::Dispatch, 0, 10.0, 1);
    fr.record(flight::Kind::ColdXlate, 0, 20.0, 2);
    std::vector<flight::Event> ev = fr.snapshot();
    ASSERT_EQ(ev.size(), 3u);
    EXPECT_EQ(ev[0].a, 1);
    EXPECT_EQ(ev[1].a, 2);
    EXPECT_EQ(ev[2].a, 3);
}

TEST(FlightRecorder, KindNamesAreStable)
{
    // The postmortem schema exports these names; renaming one is a
    // consumer-visible break and must be deliberate.
    EXPECT_STREQ(flight::kindName(flight::Kind::Dispatch), "dispatch");
    EXPECT_STREQ(flight::kindName(flight::Kind::HotCommit),
                 "hot_commit");
    EXPECT_STREQ(flight::kindName(flight::Kind::FaultInject),
                 "fault_inject");
    EXPECT_STREQ(flight::kindName(flight::Kind::SentinelShift),
                 "sentinel_shift");
}

TEST(ProvenanceLedger, TimelineIsBoundedPerEip)
{
    core::ProvenanceLedger led(2);
    for (int i = 0; i < 5; ++i)
        led.note(0x1000, core::ProvState::Cold, core::ProvCause::None,
                 i, 0, i);
    const BoundedRing<core::ProvEvent> *tl = led.timeline(0x1000);
    ASSERT_NE(tl, nullptr);
    EXPECT_EQ(tl->size(), 2u);
    EXPECT_EQ(led.timeline(0x2000), nullptr);
    // Oldest dropped: the survivors are the last two notes.
    auto it = tl->begin();
    EXPECT_EQ(it->block_id, 3);
}

// ----- zero-overhead / bit-exactness ------------------------------------

TEST(FlightRecorder, RecorderOnOffIsBitExactIncludingCycles)
{
    guest::Image img = hotLoopProgram();
    for (unsigned threads : {0u, 4u}) {
        harness::TranslatedRun on = harness::runTranslated(
            img, btlib::OsAbi::Linux, hotOpts(threads, true));
        harness::TranslatedRun off = harness::runTranslated(
            img, btlib::OsAbi::Linux, hotOpts(threads, false));
        ASSERT_TRUE(on.outcome.exited);
        ASSERT_TRUE(off.outcome.exited);
        EXPECT_EQ(on.outcome.exit_code, off.outcome.exit_code);
        std::string why;
        EXPECT_TRUE(on.outcome.final_state.equalsArch(
            off.outcome.final_state, &why))
            << "threads " << threads << ": " << why;
        // The acceptance bar: zero simulated-cycle delta.
        EXPECT_DOUBLE_EQ(on.outcome.cycles, off.outcome.cycles)
            << "threads " << threads;
        EXPECT_NE(on.runtime->flight(), nullptr);
        EXPECT_EQ(off.runtime->flight(), nullptr);
        EXPECT_GT(on.runtime->flight()->snapshot().size(), 0u);
    }
}

// ----- merged-order determinism -----------------------------------------

/** The merged flight of one run, reduced to a comparable string. */
std::string
flightFingerprint(const flight::FlightRecorder &fr)
{
    std::string out;
    for (const flight::Event &e : fr.snapshot()) {
        char buf[160];
        std::snprintf(buf, sizeof(buf), "%s lane=%u ts=%.0f %lld %lld "
                      "%lld\n",
                      flight::kindName(e.kind), e.lane, e.ts,
                      static_cast<long long>(e.a),
                      static_cast<long long>(e.b),
                      static_cast<long long>(e.c));
        out += buf;
    }
    return out;
}

TEST(FlightRecorder, MergedOrderIsDeterministicAcrossThreadCounts)
{
    guest::Image img = hotLoopProgram();
    for (unsigned threads : {0u, 1u, 4u}) {
        harness::TranslatedRun a = harness::runTranslated(
            img, btlib::OsAbi::Linux, hotOpts(threads));
        harness::TranslatedRun b = harness::runTranslated(
            img, btlib::OsAbi::Linux, hotOpts(threads));
        ASSERT_TRUE(a.outcome.exited);
        ASSERT_TRUE(b.outcome.exited);
        ASSERT_NE(a.runtime->flight(), nullptr);
        ASSERT_NE(b.runtime->flight(), nullptr);
        // Identical runs must replay to identical merged flights:
        // worker events carry planned times and planned slots, so host
        // scheduling cannot reorder or relabel anything.
        EXPECT_EQ(flightFingerprint(*a.runtime->flight()),
                  flightFingerprint(*b.runtime->flight()))
            << "threads " << threads;
    }
}

// ----- provenance through a real run ------------------------------------

TEST(ProvenanceLedger, HotBlockLifecycleIsRecorded)
{
    guest::Image img = hotLoopProgram();
    harness::TranslatedRun tr =
        harness::runTranslated(img, btlib::OsAbi::Linux, hotOpts(4));
    ASSERT_TRUE(tr.outcome.exited);
    const core::ProvenanceLedger *led = tr.runtime->provenance();
    ASSERT_NE(led, nullptr);

    const BoundedRing<core::ProvEvent> *tl =
        led->timeline(Layout::code_base);
    ASSERT_NE(tl, nullptr) << "entry point never entered the ledger";
    // The entry block is decoded cold; the hot candidate is the loop
    // head further in, so scan the whole ledger for the hot states.
    bool decoded = false, cold = false, queued = false,
         published = false;
    for (const core::ProvEvent &e : *tl) {
        decoded |= e.state == core::ProvState::Decoded;
        cold |= e.state == core::ProvState::Cold;
    }
    for (const auto &[eip, ring] : led->all()) {
        for (const core::ProvEvent &e : ring) {
            queued |= e.state == core::ProvState::HotQueued;
            published |= e.state == core::ProvState::Published;
        }
    }
    EXPECT_TRUE(decoded);
    EXPECT_TRUE(cold);
    EXPECT_TRUE(queued);
    EXPECT_TRUE(published) << "hot commit never reached the ledger";
}

// ----- telemetry snapshots ----------------------------------------------

TEST(Metrics, SnapshotJsonIsWellFormed)
{
    metrics::Registry reg;
    double g = 42.0;
    reg.gauge("answer", [&] { return g; });
    StatGroup sg;
    sg.add("lookups", 7);
    reg.counters("demo", &sg);
    Histogram h(0, 10, 10);
    h.sample(5);
    h.sample(25);
    reg.histogram("latency", &h);

    json::Value root;
    std::string error;
    ASSERT_TRUE(json::Parser::parse(reg.snapshotJson(123), &root,
                                    &error))
        << error;
    EXPECT_EQ(root.strOr("kind", ""), "el-metrics");
    EXPECT_EQ(root.numberOr("version", 0), 1);
    EXPECT_EQ(root.numberOr("cycle", 0), 123);
    const json::Value *gauges = root.find("gauges");
    ASSERT_NE(gauges, nullptr);
    EXPECT_EQ(gauges->numberOr("answer", 0), 42.0);
    const json::Value *counters = root.find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->numberOr("demo.lookups", 0), 7);
    const json::Value *hists = root.find("histograms");
    ASSERT_NE(hists, nullptr);
    const json::Value *lat = hists->find("latency");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->numberOr("count", 0), 2);
}

TEST(Metrics, MaybeEmitHonorsThePeriod)
{
    metrics::Registry reg;
    reg.setPeriod(100);
    // No output file open: maybeEmit must be a no-op, not a crash.
    reg.maybeEmit(1000);
    EXPECT_EQ(reg.snapshots(), 0u);
}

// ----- postmortem bundles -----------------------------------------------

TEST(Postmortem, CleanRunBundleIsSchemaValid)
{
    guest::Image img = hotLoopProgram();
    harness::TranslatedRun tr =
        harness::runTranslated(img, btlib::OsAbi::Linux, hotOpts(4));
    ASSERT_TRUE(tr.outcome.exited);

    core::PostmortemInfo info;
    info.workload = "flight_hotloop";
    info.exit_class = "ok";
    info.exit_code = 0;
    json::Value root;
    std::string error;
    ASSERT_TRUE(json::Parser::parse(
        core::postmortemJson(*tr.runtime, info), &root, &error))
        << error;
    EXPECT_EQ(root.strOr("kind", ""), "el-postmortem");
    EXPECT_EQ(root.numberOr("version", 0), 1);
    const json::Value *fl = root.find("flight");
    ASSERT_NE(fl, nullptr);
    const json::Value *events = fl->find("events");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    EXPECT_GT(events->arr.size(), 0u);
    const json::Value *prov = root.find("provenance");
    ASSERT_NE(prov, nullptr);
    ASSERT_TRUE(prov->isArray());
    // The hot loop must appear with its translation in the final hot
    // set and a published step in its timeline.
    bool found_hot = false;
    for (const json::Value &entry : prov->arr) {
        const json::Value *hot = entry.find("in_hot_set");
        if (hot && hot->kind == json::Value::Kind::Bool && hot->b)
            found_hot = true;
    }
    EXPECT_TRUE(found_hot);
}

TEST(Postmortem, ChaosRunNamesTheInjectedFaultSite)
{
    // Directed chaos: force hot-session aborts and require the bundle
    // to convict the injected site by name, with the abort visible in
    // both the flight tail and the victim's provenance chain.
    guest::Image img = hotLoopProgram();
    core::Options opts = hotOpts(4);
    opts.fault.seed = 7;
    opts.fault.site(FaultSite::HotXlateAbort, 1024);
    harness::TranslatedRun tr =
        harness::runTranslated(img, btlib::OsAbi::Linux, opts);
    ASSERT_TRUE(tr.outcome.exited);
    ASSERT_NE(tr.runtime->faultInjector(), nullptr);
    ASSERT_GT(tr.runtime->faultInjector()->totalFires(), 0u);

    core::PostmortemInfo info;
    info.workload = "flight_hotloop";
    info.exit_class = "ok";
    info.exit_code = 0;
    json::Value root;
    std::string error;
    ASSERT_TRUE(json::Parser::parse(
        core::postmortemJson(*tr.runtime, info), &root, &error))
        << error;

    const json::Value *fi = root.find("fault_injection");
    ASSERT_NE(fi, nullptr) << "bundle lost the injection config";
    EXPECT_EQ(fi->numberOr("seed", 0), 7);
    const json::Value *sites = fi->find("sites");
    ASSERT_NE(sites, nullptr);
    bool named = false;
    for (const json::Value &s : sites->arr)
        if (s.strOr("site", "") == "hot_xlate_abort" &&
            s.numberOr("fires", 0) > 0)
            named = true;
    EXPECT_TRUE(named)
        << "postmortem does not name the injected fault site";

    // The flight tail carries the worker-lane injection events...
    const json::Value *events = root.find("flight")->find("events");
    ASSERT_NE(events, nullptr);
    bool injected_event = false;
    for (const json::Value &e : events->arr)
        if (e.strOr("kind", "") == "fault_inject")
            injected_event = true;
    EXPECT_TRUE(injected_event);

    // ...and the victim's provenance chain records the aborted
    // session.
    const core::ProvenanceLedger *led = tr.runtime->provenance();
    ASSERT_NE(led, nullptr);
    // The aborted session belongs to the hot loop head, not the image
    // entry block, so scan every timeline for the abort step.
    bool aborted = false;
    for (const auto &[eip, ring] : led->all())
        for (const core::ProvEvent &e : ring)
            aborted |= e.cause == core::ProvCause::SessionAbort;
    EXPECT_TRUE(aborted)
        << "no session_abort step in any timeline";
}

} // namespace
} // namespace el
