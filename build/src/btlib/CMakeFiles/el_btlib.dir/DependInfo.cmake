
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btlib/btos.cc" "src/btlib/CMakeFiles/el_btlib.dir/btos.cc.o" "gcc" "src/btlib/CMakeFiles/el_btlib.dir/btos.cc.o.d"
  "/root/repo/src/btlib/os_sim.cc" "src/btlib/CMakeFiles/el_btlib.dir/os_sim.cc.o" "gcc" "src/btlib/CMakeFiles/el_btlib.dir/os_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/el_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/el_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ia32/CMakeFiles/el_ia32.dir/DependInfo.cmake"
  "/root/repo/build/src/ipf/CMakeFiles/el_ipf.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/el_guest.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
