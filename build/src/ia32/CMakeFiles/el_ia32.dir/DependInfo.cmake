
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ia32/assembler.cc" "src/ia32/CMakeFiles/el_ia32.dir/assembler.cc.o" "gcc" "src/ia32/CMakeFiles/el_ia32.dir/assembler.cc.o.d"
  "/root/repo/src/ia32/decoder.cc" "src/ia32/CMakeFiles/el_ia32.dir/decoder.cc.o" "gcc" "src/ia32/CMakeFiles/el_ia32.dir/decoder.cc.o.d"
  "/root/repo/src/ia32/fault.cc" "src/ia32/CMakeFiles/el_ia32.dir/fault.cc.o" "gcc" "src/ia32/CMakeFiles/el_ia32.dir/fault.cc.o.d"
  "/root/repo/src/ia32/insn.cc" "src/ia32/CMakeFiles/el_ia32.dir/insn.cc.o" "gcc" "src/ia32/CMakeFiles/el_ia32.dir/insn.cc.o.d"
  "/root/repo/src/ia32/interp.cc" "src/ia32/CMakeFiles/el_ia32.dir/interp.cc.o" "gcc" "src/ia32/CMakeFiles/el_ia32.dir/interp.cc.o.d"
  "/root/repo/src/ia32/regs.cc" "src/ia32/CMakeFiles/el_ia32.dir/regs.cc.o" "gcc" "src/ia32/CMakeFiles/el_ia32.dir/regs.cc.o.d"
  "/root/repo/src/ia32/state.cc" "src/ia32/CMakeFiles/el_ia32.dir/state.cc.o" "gcc" "src/ia32/CMakeFiles/el_ia32.dir/state.cc.o.d"
  "/root/repo/src/ia32/timing.cc" "src/ia32/CMakeFiles/el_ia32.dir/timing.cc.o" "gcc" "src/ia32/CMakeFiles/el_ia32.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/el_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/el_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
