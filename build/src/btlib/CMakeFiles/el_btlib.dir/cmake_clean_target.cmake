file(REMOVE_RECURSE
  "libel_btlib.a"
)
