#include "core/analysis.hh"

#include <deque>

#include "ia32/decoder.hh"
#include "support/logging.hh"

namespace el::core
{

using ia32::Insn;
using ia32::Op;

namespace
{

/** Decode one basic block starting at @p eip. */
BasicBlock
decodeBlock(const mem::Memory &memory, uint32_t eip, unsigned max_insns)
{
    BasicBlock bb;
    bb.start = eip;
    uint32_t ip = eip;
    for (unsigned n = 0; n < max_insns; ++n) {
        Insn insn;
        if (!ia32::decode(memory, ip, &insn)) {
            bb.ends_stop = true;
            bb.fetch_fault = insn.len == 0; // fetch fault vs bad opcode
            break;
        }
        bb.insns.push_back(insn);
        ip = insn.next();
        if (ia32::endsBlock(insn)) {
            switch (insn.op) {
              case Op::Jcc:
                bb.taken = insn.target();
                bb.fall = insn.next();
                break;
              case Op::Jmp:
                bb.taken = insn.target();
                break;
              case Op::Call:
                bb.taken = insn.target();
                break;
              case Op::Ret:
              case Op::JmpInd:
              case Op::CallInd:
                bb.ends_indirect = true;
                break;
              default: // Int / Int3 / Hlt / Ud2
                bb.ends_stop = true;
                break;
            }
            break;
        }
    }
    return bb;
}

} // namespace

Region
discoverRegion(const mem::Memory &memory, uint32_t entry,
               unsigned max_blocks)
{
    Region region;
    region.entry = entry;
    std::deque<uint32_t> worklist{entry};
    constexpr unsigned max_block_insns = 128;

    while (!worklist.empty() && region.blocks.size() < max_blocks) {
        uint32_t eip = worklist.front();
        worklist.pop_front();
        if (region.blocks.count(eip))
            continue;

        // Block splitting: if eip falls inside an already-decoded block,
        // split that block at eip.
        auto it = region.blocks.upper_bound(eip);
        if (it != region.blocks.begin()) {
            auto prev = std::prev(it);
            BasicBlock &pb = prev->second;
            if (eip > pb.start && !pb.insns.empty() &&
                eip < pb.insns.back().next()) {
                // Find the instruction boundary.
                size_t split = 0;
                bool on_boundary = false;
                for (; split < pb.insns.size(); ++split) {
                    if (pb.insns[split].addr == eip) {
                        on_boundary = true;
                        break;
                    }
                }
                if (on_boundary) {
                    BasicBlock tail;
                    tail.start = eip;
                    tail.insns.assign(pb.insns.begin() + split,
                                      pb.insns.end());
                    tail.taken = pb.taken;
                    tail.fall = pb.fall;
                    tail.ends_indirect = pb.ends_indirect;
                    tail.ends_stop = pb.ends_stop;
                    pb.insns.resize(split);
                    pb.taken = 0;
                    pb.fall = eip;
                    pb.ends_indirect = false;
                    pb.ends_stop = false;
                    region.blocks.emplace(eip, std::move(tail));
                    continue;
                }
                // Overlapping decode (mid-instruction entry): decode
                // independently; IA-32 allows overlapping code.
            }
        }

        BasicBlock bb = decodeBlock(memory, eip, max_block_insns);
        uint32_t taken = bb.taken;
        uint32_t fall = bb.fall;
        region.blocks.emplace(eip, std::move(bb));
        if (taken)
            worklist.push_back(taken);
        if (fall)
            worklist.push_back(fall);
    }
    return region;
}

void
computeFlagsLiveness(Region &region)
{
    // live_in(b) = first-use-before-def scan of b, extended by
    // live_out(b) through the flags that pass through unwritten.
    // Iterate to a fixed point (the region is tiny).
    auto blockGenKill = [](const BasicBlock &bb, uint32_t *use,
                           uint32_t *def) {
        *use = 0;
        *def = 0;
        for (const Insn &insn : bb.insns) {
            *use |= ia32::insnFlagsRead(insn) & ~*def;
            *def |= ia32::insnFlagsWritten(insn);
        }
    };

    std::map<uint32_t, uint32_t> live_in;
    std::map<uint32_t, std::pair<uint32_t, uint32_t>> genkill;
    for (auto &[eip, bb] : region.blocks) {
        uint32_t use, def;
        blockGenKill(bb, &use, &def);
        genkill[eip] = {use, def};
        live_in[eip] = ia32::FlagsArith; // start conservative
    }

    bool changed = true;
    unsigned iters = 0;
    while (changed && iters++ < 64) {
        changed = false;
        for (auto &[eip, bb] : region.blocks) {
            uint32_t out = 0;
            auto succ_live = [&](uint32_t succ) {
                if (succ == 0)
                    return;
                auto it = live_in.find(succ);
                out |= (it == live_in.end())
                           ? static_cast<uint32_t>(ia32::FlagsArith)
                           : it->second;
            };
            if (bb.ends_indirect || bb.ends_stop) {
                out = ia32::FlagsArith; // unknown continuation
            } else {
                succ_live(bb.taken);
                succ_live(bb.fall);
                if (!bb.taken && !bb.fall)
                    out = ia32::FlagsArith;
            }
            bb.flags_live_out = out;
            auto [use, def] = genkill[eip];
            uint32_t in = use | (out & ~def);
            if (in != live_in[eip]) {
                live_in[eip] = in;
                changed = true;
            }
        }
    }
}

std::vector<uint32_t>
perInsnLiveFlags(const BasicBlock &block, uint32_t live_out)
{
    std::vector<uint32_t> live(block.insns.size(), 0);
    uint32_t cur = live_out;
    for (size_t k = block.insns.size(); k-- > 0;) {
        live[k] = cur;
        const Insn &insn = block.insns[k];
        cur &= ~ia32::insnFlagsWritten(insn);
        cur |= ia32::insnFlagsRead(insn);
    }
    return live;
}

} // namespace el::core
