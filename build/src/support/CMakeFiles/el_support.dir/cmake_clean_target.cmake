file(REMOVE_RECURSE
  "libel_support.a"
)
