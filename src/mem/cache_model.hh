/**
 * @file
 * Multi-level cache cost model.
 *
 * This is a timing-only model: it never holds data, it just tracks which
 * lines would be resident in a set-associative LRU hierarchy and charges
 * latency for the level that hits. Both machine models (the IPF machine
 * the translated code runs on, and the direct-execution IA-32 cost model
 * used as the Figure-8 baseline) own one instance each.
 *
 * The level parameters default to the platforms the paper measured on:
 * the Itanium 2 configuration matches the paper's "1GHz Itanium 2 with
 * 3MB L3"; the Xeon configuration approximates the 1.6GHz Xeon baseline.
 */

#ifndef EL_MEM_CACHE_MODEL_HH
#define EL_MEM_CACHE_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace el::mem
{

/** Parameters of one cache level. */
struct CacheLevelConfig
{
    std::string name;      //!< e.g. "L1D".
    uint64_t size;         //!< Total bytes.
    uint64_t line;         //!< Line size in bytes (power of 2).
    unsigned assoc;        //!< Ways per set.
    unsigned hit_latency;  //!< Cycles charged when this level hits.
};

/** Statistics for one cache level. */
struct CacheLevelStats
{
    uint64_t accesses = 0;
    uint64_t misses = 0;
};

/** A timing-only, inclusive, set-associative LRU cache hierarchy. */
class CacheModel
{
  public:
    /**
     * @param levels Cache levels ordered from closest to the core.
     * @param mem_latency Cycles charged when every level misses.
     */
    CacheModel(std::vector<CacheLevelConfig> levels, unsigned mem_latency);

    /** Itanium-2-like hierarchy (16K L1D / 256K L2 / 3M L3). */
    static CacheModel itanium2();

    /** Xeon-like hierarchy (8K L1D / 512K L2). */
    static CacheModel xeon();

    /**
     * Model one data access.
     *
     * @param addr Byte address.
     * @param size Access size in bytes (accesses spanning two lines touch
     *             both).
     * @return Latency in cycles for the access.
     */
    unsigned access(uint64_t addr, unsigned size);

    /** Per-level statistics, parallel to the configured levels. */
    const std::vector<CacheLevelStats> &stats() const { return stats_; }

    /** Configured levels. */
    const std::vector<CacheLevelConfig> &levels() const { return configs_; }

    /** Drop all resident lines and statistics. */
    void reset();

  private:
    struct Way
    {
        uint64_t tag = ~0ULL;
        uint64_t lru = 0;
        bool valid = false;
    };

    struct Level
    {
        CacheLevelConfig cfg;
        uint64_t n_sets;
        std::vector<Way> ways; //!< n_sets * assoc, row-major by set.
    };

    /** Look up one line address; returns hit latency or full-miss chain. */
    unsigned accessLine(uint64_t line_addr);

    std::vector<CacheLevelConfig> configs_;
    std::vector<Level> levels_;
    std::vector<CacheLevelStats> stats_;
    unsigned mem_latency_;
    uint64_t tick_ = 0;
};

} // namespace el::mem

#endif // EL_MEM_CACHE_MODEL_HH
