file(REMOVE_RECURSE
  "libel_mem.a"
)
