file(REMOVE_RECURSE
  "CMakeFiles/el_support.dir/logging.cc.o"
  "CMakeFiles/el_support.dir/logging.cc.o.d"
  "CMakeFiles/el_support.dir/stats.cc.o"
  "CMakeFiles/el_support.dir/stats.cc.o.d"
  "CMakeFiles/el_support.dir/strfmt.cc.o"
  "CMakeFiles/el_support.dir/strfmt.cc.o.d"
  "libel_support.a"
  "libel_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/el_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
