/**
 * @file
 * In-run guest checkpoint/resume.
 *
 * Periodically (on the simulated clock) the runtime captures the
 * complete guest-visible execution state — architectural registers,
 * the dirty subset of guest memory, and the simulated OS state
 * (console, heap, clock) — into a single durable file beside the
 * artifact store. A killed run relaunched with `el_run --resume`
 * restores the capture through the normal init path and finishes
 * bit-exactly: same final state hash, same console hash, same exit.
 *
 * What is deliberately NOT persisted (the "never mid-flight" set):
 *  - the translator runtime area (lookup tables, profile counters,
 *    speculation status bytes) — rebuilt by Runtime's constructor;
 *  - the code cache and block maps — re-translated, or re-adopted
 *    from the artifact store/journal;
 *  - in-flight hot pipeline sessions — simply lost, re-registered
 *    when the block gets hot again;
 *  - sentinel / provenance / flight-recorder state — observers re-arm
 *    from scratch on the resumed runtime.
 * Captures happen only at the adoption boundary of the dispatch loop,
 * where no sentinel region is open and no block is mid-execution, so
 * the capture is always at a clean architectural instant and costs
 * zero simulated cycles.
 */

#ifndef EL_CORE_CHECKPOINT_HH
#define EL_CORE_CHECKPOINT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "btlib/os_sim.hh"
#include "ia32/state.hh"
#include "mem/memory.hh"
#include "persist/store.hh"
#include "support/stats.hh"

namespace el::core
{

class Runtime;

/** One captured guest memory page. */
struct PageImage
{
    uint64_t addr = 0;
    mem::Perm perm = mem::PermNone;
    bool has_code = false;
    /** Page bytes; empty = the page was clean at capture (its content
     *  is re-derived by reloading the guest image on resume). */
    std::vector<uint8_t> data;
};

/** A complete restorable capture. */
struct CheckpointImage
{
    uint64_t seq = 0;       //!< Capture ordinal within the run.
    double cycles = 0;      //!< Simulated clock at capture.
    uint64_t console_hash = 0; //!< FNV of the console at capture.
    ia32::State state;
    btlib::OsSnapshot os;
    std::vector<PageImage> pages;
};

/** Checkpointer configuration. */
struct CheckpointConfig
{
    std::string dir;
    uint64_t period_cycles = 0; //!< Simulated cycles between captures;
                                //!< 0 = never capture (load-only use).
    persist::Fingerprint fp;    //!< Same gate as the artifact store.
};

/**
 * Drives periodic captures from the runtime's adoption boundary and
 * loads them back for `--resume`. The checkpoint file is a single
 * rolling `<fp>.elckpt`, atomically replaced on every capture, so a
 * crash mid-write leaves the previous capture intact.
 */
class Checkpointer
{
  public:
    explicit Checkpointer(CheckpointConfig cfg) : cfg_(std::move(cfg)) {}

    /** Where the OS snapshot comes from (the harness wires the live
     *  personality in; the Runtime cannot see it through BTOS). */
    void
    setOsSource(std::function<btlib::OsSnapshot()> source)
    {
        os_source_ = std::move(source);
    }

    /** Capture when the period elapsed; called at adoption boundaries
     *  (never with a sentinel region open). Zero simulated cycles. */
    void maybeCheckpoint(Runtime &rt, uint32_t next_eip);

    /** Unconditional capture + durable publish. */
    bool checkpointNow(Runtime &rt, uint32_t next_eip);

    /** The checkpoint file path for this configuration. */
    std::string path() const;

    uint64_t captures() const { return seq_; }

    /**
     * Load the checkpoint for @p fp from @p dir. False (with *error
     * set) when absent, torn, corrupt, or fingerprint-mismatched —
     * callers then start cold; a bad checkpoint never aborts a run.
     */
    static bool load(const std::string &dir,
                     const persist::Fingerprint &fp, CheckpointImage *out,
                     std::string *error);

    /** ckpt.* counters (written, bytes, failed). */
    StatGroup stats;

  private:
    CheckpointConfig cfg_;
    std::function<btlib::OsSnapshot()> os_source_;
    uint64_t seq_ = 0;
    double next_due_ = 0;
};

/**
 * Apply a checkpoint's memory to @p memory, which must hold a freshly
 * loaded guest image with clearDirty() already called: dirty pages are
 * overwritten from the capture, clean pages keep their image-loaded
 * bytes, and pages the image did not map are created.
 */
void applyCheckpointMemory(const CheckpointImage &image,
                           mem::Memory &memory);

} // namespace el::core

#endif // EL_CORE_CHECKPOINT_HH
