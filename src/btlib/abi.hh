/**
 * @file
 * Guest system-call ABIs of the simulated operating systems.
 *
 * IA-32 EL ships one OS-independent BTGeneric and a per-OS BTLib
 * (section 3). The two personalities here differ exactly where real OSes
 * differ from the translator's point of view: the trap vector, how
 * arguments are passed, and the service numbering. Workload builders
 * emit syscall stubs against these descriptions so the same workload
 * source runs on either personality.
 */

#ifndef EL_BTLIB_ABI_HH
#define EL_BTLIB_ABI_HH

#include <cstdint>

namespace el::btlib
{

/** Which simulated OS a guest binary targets. */
enum class OsAbi : uint8_t
{
    Linux,
    Windows,
};

/** Services every personality provides (numbers differ per ABI). */
enum class Service : uint8_t
{
    Exit,       //!< terminate the process; arg0 = exit code
    Write,      //!< write to console; arg0 = buf, arg1 = len
    Brk,        //!< grow the heap; arg0 = bytes (0 = query); returns addr
    Time,       //!< virtual time in microseconds; returns low 32 bits
    Yield,      //!< give up the CPU (accrues idle time)
    KernelWork, //!< spend arg0 kilocycles natively in kernel/drivers
    SetHandler, //!< register an exception handler; arg0 = handler EIP
    Unknown,
};

/** Linux personality: INT 0x80; eax = nr, args in ebx/ecx/edx. */
namespace linux_abi
{
constexpr uint8_t int_vector = 0x80;
constexpr uint32_t nr_exit = 1;
constexpr uint32_t nr_write = 4;
constexpr uint32_t nr_brk = 45;
constexpr uint32_t nr_time = 13;
constexpr uint32_t nr_yield = 158;
constexpr uint32_t nr_kernel_work = 240;
constexpr uint32_t nr_set_handler = 48;

/** Map a Linux syscall number to a Service. */
Service serviceFor(uint32_t nr);
} // namespace linux_abi

/** Windows personality: INT 0x2e; eax = service, edx = argument block. */
namespace windows_abi
{
constexpr uint8_t int_vector = 0x2e;
constexpr uint32_t nr_terminate = 0x01;
constexpr uint32_t nr_write_console = 0x02;
constexpr uint32_t nr_allocate_vm = 0x03;
constexpr uint32_t nr_query_time = 0x04;
constexpr uint32_t nr_yield = 0x05;
constexpr uint32_t nr_kernel_work = 0x06;
constexpr uint32_t nr_set_handler = 0x07;

Service serviceFor(uint32_t nr);
} // namespace windows_abi

} // namespace el::btlib

#endif // EL_BTLIB_ABI_HH
