/**
 * @file
 * Whole-program execution harness.
 *
 * Runs one guest image three ways over identical initial conditions:
 *  - under the reference interpreter (the semantic oracle),
 *  - under the IA-32 EL runtime on the IPF machine (the paper's system),
 *  - under the direct-execution IA-32 cost model (the Figure-8 baseline).
 *
 * Used by the differential tests, the examples and every benchmark.
 */

#ifndef EL_HARNESS_EXEC_HH
#define EL_HARNESS_EXEC_HH

#include <memory>
#include <string>

#include "btlib/os_sim.hh"
#include "core/checkpoint.hh"
#include "core/options.hh"
#include "core/runtime.hh"
#include "guest/image.hh"
#include "ia32/interp.hh"
#include "ia32/timing.hh"

namespace el::harness
{

/** Outcome shared by all three execution modes. */
struct Outcome
{
    bool exited = false;      //!< Clean guest exit.
    int32_t exit_code = 0;
    bool faulted = false;     //!< Terminated by an unhandled fault.
    ia32::Fault fault{};
    bool internal_error = false; //!< Translator-side failure, not the
                                 //!< guest's: BTOS handshake (InitError)
                                 //!< or simulation budget (CycleLimit).
    std::string internal_reason; //!< Human-readable cause when set.
    std::string console;      //!< Captured guest output.
    ia32::State final_state;  //!< Architectural state at termination.
    uint64_t guest_insns = 0; //!< IA-32 instructions retired (interp) or
                              //!< translated-source count (translated).
    double cycles = 0;        //!< Simulated cycles (timing modes).
};

/** Run the image under the reference interpreter + an OS personality. */
Outcome runInterpreter(const guest::Image &image, btlib::OsAbi abi,
                       uint64_t max_insns = 200u * 1000 * 1000);

/** Result of a translated run, with the runtime kept for inspection. */
struct TranslatedRun
{
    Outcome outcome;
    std::unique_ptr<mem::Memory> memory;
    std::unique_ptr<btlib::SimOsBase> os;
    std::unique_ptr<core::Runtime> runtime;
};

/**
 * Run the image under IA-32 EL on the IPF machine. With @p resume, the
 * run restores the checkpoint instead of starting at the image entry:
 * guest memory, OS state, and architectural registers come from the
 * capture, while the runtime itself (code cache, observers, runtime
 * area) is constructed fresh through the normal init path.
 */
TranslatedRun runTranslated(const guest::Image &image, btlib::OsAbi abi,
                            core::Options options = {},
                            const core::CheckpointImage *resume = nullptr);

/** Run under the direct IA-32 cost model (the Figure-8 baseline). */
Outcome runDirect(const guest::Image &image, btlib::OsAbi abi,
                  uint64_t max_insns = 200u * 1000 * 1000);

/** Make the OS personality for an ABI over @p memory. */
std::unique_ptr<btlib::SimOsBase> makeOs(btlib::OsAbi abi,
                                         mem::Memory &memory);

} // namespace el::harness

#endif // EL_HARNESS_EXEC_HH
