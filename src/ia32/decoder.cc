#include "ia32/decoder.hh"

#include "support/bitfield.hh"
#include "support/logging.hh"

namespace el::ia32
{

namespace
{

/** Byte cursor over the instruction buffer. */
struct Cursor
{
    const uint8_t *buf;
    unsigned len;
    unsigned pos = 0;
    bool fail = false;

    uint8_t
    u8()
    {
        if (pos >= len) {
            fail = true;
            return 0;
        }
        return buf[pos++];
    }

    uint16_t
    u16()
    {
        uint16_t lo = u8();
        uint16_t hi = u8();
        return static_cast<uint16_t>(lo | (hi << 8));
    }

    uint32_t
    u32()
    {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(u8()) << (8 * i);
        return v;
    }

    int32_t s8() { return static_cast<int8_t>(u8()); }
    int32_t s32() { return static_cast<int32_t>(u32()); }
};

/** Decoded ModRM byte plus the resolved r/m operand. */
struct ModRm
{
    uint8_t mod = 0;
    uint8_t reg = 0; //!< The /r (or group selector) field.
    Operand rm;      //!< Register or memory operand.
};

/**
 * Parse ModRM (+SIB, +disp) with 32-bit addressing. @p rm_kind selects
 * how a mod==3 r/m field is interpreted (Gpr, Gpr8, Mm, Xmm).
 */
ModRm
parseModRm(Cursor &cur, OperandKind rm_kind)
{
    ModRm out;
    uint8_t modrm = cur.u8();
    out.mod = modrm >> 6;
    out.reg = (modrm >> 3) & 7;
    uint8_t rm = modrm & 7;

    if (out.mod == 3) {
        out.rm.kind = rm_kind;
        out.rm.reg = rm;
        return out;
    }

    MemRef m;
    if (rm == 4) {
        uint8_t sib = cur.u8();
        uint8_t ss = sib >> 6;
        uint8_t index = (sib >> 3) & 7;
        uint8_t base = sib & 7;
        if (index != 4) {
            m.has_index = true;
            m.index = static_cast<Reg>(index);
            m.scale = static_cast<uint8_t>(1u << ss);
        }
        if (base == 5 && out.mod == 0) {
            m.disp = cur.s32();
        } else {
            m.has_base = true;
            m.base = static_cast<Reg>(base);
        }
    } else if (rm == 5 && out.mod == 0) {
        m.disp = cur.s32();
    } else {
        m.has_base = true;
        m.base = static_cast<Reg>(rm);
    }

    if (out.mod == 1)
        m.disp += cur.s8();
    else if (out.mod == 2)
        m.disp += cur.s32();

    out.rm = Operand::makeMem(m);
    return out;
}

/** ALU opcode for the 0x00-0x3D pattern's /op field. */
Op
aluOp(unsigned idx)
{
    static const Op ops[8] = {Op::Add, Op::Or, Op::Adc, Op::Sbb,
                              Op::And, Op::Sub, Op::Xor, Op::Cmp};
    return ops[idx & 7];
}

/** Shift opcode for the 0xC0/0xD0 group's /op field (or Invalid). */
Op
shiftOp(unsigned idx)
{
    switch (idx & 7) {
      case 0:
        return Op::Rol;
      case 1:
        return Op::Ror;
      case 4:
      case 6:
        return Op::Shl;
      case 5:
        return Op::Shr;
      case 7:
        return Op::Sar;
      default:
        return Op::Invalid;
    }
}

Operand
gprOp(unsigned reg, unsigned size)
{
    if (size == 1)
        return Operand::makeGpr8(static_cast<uint8_t>(reg & 7));
    return Operand::makeGpr(static_cast<Reg>(reg & 7));
}

/** x87 escape bytes D8..DF. Returns false on unsupported pattern. */
bool
decodeX87(Cursor &cur, uint8_t opcode, Insn &insn)
{
    // Peek the ModRM byte to distinguish register forms (mod == 3).
    if (cur.pos >= cur.len) {
        cur.fail = true;
        return false;
    }
    uint8_t modrm = cur.buf[cur.pos];
    bool reg_form = (modrm >> 6) == 3;

    if (!reg_form) {
        ModRm mrm = parseModRm(cur, OperandKind::St);
        unsigned sel = mrm.reg;
        switch (opcode) {
          case 0xd8: // fp arith with m32
          case 0xdc: // fp arith with m64
            insn.op_size = (opcode == 0xd8) ? 4 : 8;
            switch (sel) {
              case 0:
                insn.op = Op::Fadd;
                break;
              case 1:
                insn.op = Op::Fmul;
                break;
              case 4:
                insn.op = Op::Fsub;
                break;
              case 5:
                insn.op = Op::Fsubr;
                break;
              case 6:
                insn.op = Op::Fdiv;
                break;
              case 7:
                insn.op = Op::Fdivr;
                break;
              default:
                return false;
            }
            insn.dst = Operand::makeSt(0);
            insn.src = mrm.rm;
            return true;
          case 0xd9: // fld/fst/fstp m32
            insn.op_size = 4;
            if (sel == 0) {
                insn.op = Op::Fld;
                insn.src = mrm.rm;
            } else if (sel == 2 || sel == 3) {
                insn.op = Op::Fst;
                insn.fp_pop = (sel == 3);
                insn.dst = mrm.rm;
            } else {
                return false;
            }
            return true;
          case 0xdb: // fild/fistp m32
            insn.op_size = 4;
            if (sel == 0) {
                insn.op = Op::Fild;
                insn.src = mrm.rm;
            } else if (sel == 3) {
                insn.op = Op::Fistp;
                insn.fp_pop = true;
                insn.dst = mrm.rm;
            } else {
                return false;
            }
            return true;
          case 0xdd: // fld/fst/fstp m64
            insn.op_size = 8;
            if (sel == 0) {
                insn.op = Op::Fld;
                insn.src = mrm.rm;
            } else if (sel == 2 || sel == 3) {
                insn.op = Op::Fst;
                insn.fp_pop = (sel == 3);
                insn.dst = mrm.rm;
            } else {
                return false;
            }
            return true;
          default:
            return false;
        }
    }

    // Register forms: consume the ModRM byte.
    cur.u8();
    uint8_t sti = modrm & 7;
    uint8_t group = modrm & 0xf8;
    switch (opcode) {
      case 0xd8:
        insn.dst = Operand::makeSt(0);
        insn.src = Operand::makeSt(sti);
        switch (group) {
          case 0xc0:
            insn.op = Op::Fadd;
            return true;
          case 0xc8:
            insn.op = Op::Fmul;
            return true;
          case 0xe0:
            insn.op = Op::Fsub;
            return true;
          case 0xe8:
            insn.op = Op::Fsubr;
            return true;
          case 0xf0:
            insn.op = Op::Fdiv;
            return true;
          case 0xf8:
            insn.op = Op::Fdivr;
            return true;
          default:
            return false;
        }
      case 0xd9:
        if (group == 0xc0) {
            insn.op = Op::Fld;
            insn.src = Operand::makeSt(sti);
            return true;
        }
        if (group == 0xc8) {
            insn.op = Op::Fxch;
            insn.dst = Operand::makeSt(sti);
            return true;
        }
        switch (modrm) {
          case 0xe0:
            insn.op = Op::Fchs;
            return true;
          case 0xe1:
            insn.op = Op::Fabs;
            return true;
          case 0xe8:
            insn.op = Op::Fld1;
            return true;
          case 0xee:
            insn.op = Op::Fldz;
            return true;
          case 0xfa:
            insn.op = Op::Fsqrt;
            return true;
          default:
            return false;
        }
      case 0xdb:
        if (group == 0xf0) {
            insn.op = Op::Fcomi;
            insn.dst = Operand::makeSt(0);
            insn.src = Operand::makeSt(sti);
            return true;
        }
        if (modrm == 0xe3) {
            insn.op = Op::Fninit;
            return true;
        }
        return false;
      case 0xdc:
        insn.dst = Operand::makeSt(sti);
        insn.src = Operand::makeSt(0);
        switch (group) {
          case 0xc0:
            insn.op = Op::Fadd;
            return true;
          case 0xc8:
            insn.op = Op::Fmul;
            return true;
          case 0xe0:
            insn.op = Op::Fsubr;
            return true;
          case 0xe8:
            insn.op = Op::Fsub;
            return true;
          case 0xf0:
            insn.op = Op::Fdivr;
            return true;
          case 0xf8:
            insn.op = Op::Fdiv;
            return true;
          default:
            return false;
        }
      case 0xdd:
        if (group == 0xd0 || group == 0xd8) {
            insn.op = Op::Fst;
            insn.fp_pop = (group == 0xd8);
            insn.dst = Operand::makeSt(sti);
            return true;
        }
        return false;
      case 0xde:
        insn.dst = Operand::makeSt(sti);
        insn.src = Operand::makeSt(0);
        insn.fp_pop = true;
        switch (group) {
          case 0xc0:
            insn.op = Op::Fadd;
            return true;
          case 0xc8:
            insn.op = Op::Fmul;
            return true;
          case 0xe0:
            insn.op = Op::Fsubr;
            return true;
          case 0xe8:
            insn.op = Op::Fsub;
            return true;
          case 0xf0:
            insn.op = Op::Fdivr;
            return true;
          case 0xf8:
            insn.op = Op::Fdiv;
            return true;
          default:
            return false;
        }
      case 0xdf:
        if (modrm == 0xe0) {
            insn.op = Op::Fnstsw;
            insn.dst = Operand::makeGpr(RegEax);
            insn.op_size = 2;
            return true;
        }
        if (group == 0xf0) {
            insn.op = Op::Fcomi;
            insn.fp_pop = true;
            insn.dst = Operand::makeSt(0);
            insn.src = Operand::makeSt(sti);
            return true;
        }
        return false;
      default:
        return false;
    }
}

/** Two-byte (0F xx) opcodes. @p sse_prefix: 0, 0x66, 0xF2 or 0xF3. */
bool
decodeTwoByte(Cursor &cur, Insn &insn, uint8_t sse_prefix, unsigned op_size,
              uint32_t addr)
{
    uint8_t opcode = cur.u8();

    // Jcc rel32.
    if (opcode >= 0x80 && opcode <= 0x8f) {
        insn.op = Op::Jcc;
        insn.cond = static_cast<Cond>(opcode & 0xf);
        int32_t rel = cur.s32();
        insn.src = Operand::makeImm(0);
        insn.dst.kind = OperandKind::None;
        // Target resolved by the caller once the length is known.
        insn.imm_rel = rel;
        return true;
    }
    // SETcc r/m8.
    if (opcode >= 0x90 && opcode <= 0x9f) {
        insn.op = Op::Setcc;
        insn.cond = static_cast<Cond>(opcode & 0xf);
        insn.op_size = 1;
        ModRm mrm = parseModRm(cur, OperandKind::Gpr8);
        insn.dst = mrm.rm;
        return true;
    }
    // CMOVcc r32, r/m32.
    if (opcode >= 0x40 && opcode <= 0x4f) {
        insn.op = Op::Cmovcc;
        insn.cond = static_cast<Cond>(opcode & 0xf);
        insn.op_size = op_size;
        ModRm mrm = parseModRm(cur, OperandKind::Gpr);
        insn.dst = gprOp(mrm.reg, op_size);
        insn.src = mrm.rm;
        return true;
    }

    switch (opcode) {
      case 0x0b:
        insn.op = Op::Ud2;
        return true;
      case 0x1f: { // multi-byte NOP
        parseModRm(cur, OperandKind::Gpr);
        insn.op = Op::Nop;
        return true;
      }
      case 0xaf: {
        insn.op = Op::Imul2;
        ModRm mrm = parseModRm(cur, OperandKind::Gpr);
        insn.dst = gprOp(mrm.reg, op_size);
        insn.src = mrm.rm;
        insn.op_size = op_size;
        return true;
      }
      case 0xb6:
      case 0xb7:
      case 0xbe:
      case 0xbf: {
        insn.op = (opcode < 0xbe) ? Op::Movzx : Op::Movsx;
        bool src8 = !(opcode & 1);
        ModRm mrm = parseModRm(cur, src8 ? OperandKind::Gpr8
                                         : OperandKind::Gpr);
        insn.dst = gprOp(mrm.reg, 4);
        insn.src = mrm.rm;
        insn.op_size = src8 ? 1 : 2; //!< Source width.
        return true;
      }
      default:
        break;
    }

    // MMX / SSE territory.
    auto xmmOrMem = [&](ModRm &mrm) {
        return mrm.rm;
    };

    switch (opcode) {
      case 0x10:
      case 0x11: { // movups / movss / movsd
        OperandKind k = OperandKind::Xmm;
        ModRm mrm = parseModRm(cur, k);
        Operand reg = Operand::makeXmm(mrm.reg);
        Operand rm = xmmOrMem(mrm);
        if (sse_prefix == 0xf3)
            insn.op = Op::Movss;
        else if (sse_prefix == 0xf2)
            insn.op = Op::MovsdX;
        else
            insn.op = Op::Movups;
        if (opcode == 0x10) {
            insn.dst = reg;
            insn.src = rm;
        } else {
            insn.dst = rm;
            insn.src = reg;
        }
        return true;
      }
      case 0x28:
      case 0x29: { // movaps
        if (sse_prefix != 0)
            return false;
        ModRm mrm = parseModRm(cur, OperandKind::Xmm);
        Operand reg = Operand::makeXmm(mrm.reg);
        Operand rm = xmmOrMem(mrm);
        insn.op = Op::Movaps;
        if (opcode == 0x28) {
            insn.dst = reg;
            insn.src = rm;
        } else {
            insn.dst = rm;
            insn.src = reg;
        }
        return true;
      }
      case 0x2a: { // cvtsi2ss xmm, r/m32 (F3)
        if (sse_prefix != 0xf3)
            return false;
        ModRm mrm = parseModRm(cur, OperandKind::Gpr);
        insn.op = Op::Cvtsi2ss;
        insn.dst = Operand::makeXmm(mrm.reg);
        insn.src = mrm.rm;
        return true;
      }
      case 0x2c: { // cvttss2si r32, xmm/m32 (F3)
        if (sse_prefix != 0xf3)
            return false;
        ModRm mrm = parseModRm(cur, OperandKind::Xmm);
        insn.op = Op::Cvttss2si;
        insn.dst = gprOp(mrm.reg, 4);
        insn.src = mrm.rm;
        return true;
      }
      case 0x2e: { // ucomiss xmm, xmm/m32
        if (sse_prefix != 0)
            return false;
        ModRm mrm = parseModRm(cur, OperandKind::Xmm);
        insn.op = Op::Ucomiss;
        insn.dst = Operand::makeXmm(mrm.reg);
        insn.src = mrm.rm;
        return true;
      }
      case 0x51:
      case 0x54:
      case 0x57:
      case 0x58:
      case 0x59:
      case 0x5a:
      case 0x5c:
      case 0x5e: { // packed/scalar FP arithmetic
        ModRm mrm = parseModRm(cur, OperandKind::Xmm);
        insn.dst = Operand::makeXmm(mrm.reg);
        insn.src = xmmOrMem(mrm);
        switch (opcode) {
          case 0x51:
            if (sse_prefix != 0xf3)
                return false;
            insn.op = Op::Sqrtss;
            return true;
          case 0x54:
            if (sse_prefix != 0)
                return false;
            insn.op = Op::Andps;
            return true;
          case 0x57:
            if (sse_prefix != 0)
                return false;
            insn.op = Op::Xorps;
            return true;
          case 0x58:
            insn.op = sse_prefix == 0 ? Op::Addps
                    : sse_prefix == 0xf3 ? Op::Addss
                    : sse_prefix == 0x66 ? Op::Addpd
                    : Op::Addsd;
            return true;
          case 0x59:
            insn.op = sse_prefix == 0 ? Op::Mulps
                    : sse_prefix == 0xf3 ? Op::Mulss
                    : sse_prefix == 0x66 ? Op::Mulpd
                    : Op::Mulsd;
            return true;
          case 0x5a:
            if (sse_prefix == 0)
                insn.op = Op::Cvtps2pd;
            else if (sse_prefix == 0x66)
                insn.op = Op::Cvtpd2ps;
            else
                return false;
            return true;
          case 0x5c:
            insn.op = sse_prefix == 0 ? Op::Subps
                    : sse_prefix == 0xf3 ? Op::Subss
                    : sse_prefix == 0x66 ? Op::Subpd
                    : Op::Invalid;
            return insn.op != Op::Invalid;
          case 0x5e:
            insn.op = sse_prefix == 0 ? Op::Divps
                    : sse_prefix == 0xf3 ? Op::Divss
                    : Op::Invalid;
            return insn.op != Op::Invalid;
        }
        return false;
      }
      case 0x6e: { // movd mm, r/m32
        if (sse_prefix != 0)
            return false;
        ModRm mrm = parseModRm(cur, OperandKind::Gpr);
        insn.op = Op::Movd;
        insn.dst = Operand::makeMm(mrm.reg);
        insn.src = mrm.rm;
        return true;
      }
      case 0x7e: { // movd r/m32, mm
        if (sse_prefix != 0)
            return false;
        ModRm mrm = parseModRm(cur, OperandKind::Gpr);
        insn.op = Op::Movd;
        insn.dst = mrm.rm;
        insn.src = Operand::makeMm(mrm.reg);
        return true;
      }
      case 0x6f:
      case 0x7f: { // movq mm / movdqa xmm
        bool is_xmm = (sse_prefix == 0x66);
        ModRm mrm = parseModRm(cur, is_xmm ? OperandKind::Xmm
                                           : OperandKind::Mm);
        Operand reg = is_xmm ? Operand::makeXmm(mrm.reg)
                             : Operand::makeMm(mrm.reg);
        insn.op = is_xmm ? Op::Movdqa : Op::MovqMm;
        if (opcode == 0x6f) {
            insn.dst = reg;
            insn.src = mrm.rm;
        } else {
            insn.dst = mrm.rm;
            insn.src = reg;
        }
        return true;
      }
      case 0x77:
        if (sse_prefix != 0)
            return false;
        insn.op = Op::Emms;
        return true;
      case 0xd5:
      case 0xdb:
      case 0xeb:
      case 0xef:
      case 0xf8:
      case 0xf9:
      case 0xfa:
      case 0xfc:
      case 0xfd:
      case 0xfe: { // packed integer ops
        bool is_xmm = (sse_prefix == 0x66);
        if (is_xmm && opcode != 0xfe)
            return false; // only PADDD is supported in the XMM domain
        if (!is_xmm && sse_prefix != 0)
            return false;
        ModRm mrm = parseModRm(cur, is_xmm ? OperandKind::Xmm
                                           : OperandKind::Mm);
        insn.dst = is_xmm ? Operand::makeXmm(mrm.reg)
                          : Operand::makeMm(mrm.reg);
        insn.src = mrm.rm;
        switch (opcode) {
          case 0xd5:
            insn.op = Op::Pmullw;
            return true;
          case 0xdb:
            insn.op = Op::Pand;
            return true;
          case 0xeb:
            insn.op = Op::Por;
            return true;
          case 0xef:
            insn.op = Op::Pxor;
            return true;
          case 0xf8:
            insn.op = Op::Psubb;
            return true;
          case 0xf9:
            insn.op = Op::Psubw;
            return true;
          case 0xfa:
            insn.op = Op::Psubd;
            return true;
          case 0xfc:
            insn.op = Op::Paddb;
            return true;
          case 0xfd:
            insn.op = Op::Paddw;
            return true;
          case 0xfe:
            insn.op = is_xmm ? Op::PadddX : Op::Paddd;
            return true;
        }
        return false;
      }
      default:
        return false;
    }
}

} // namespace

bool
decode(const uint8_t *buf, unsigned len, uint32_t addr, Insn *out)
{
    Cursor cur{buf, len};
    Insn insn;
    insn.addr = addr;

    // Prefixes.
    unsigned op_size = 4;
    uint8_t sse_prefix = 0;
    bool rep = false;
    for (;;) {
        if (cur.pos >= cur.len || cur.pos >= max_insn_bytes)
            break;
        uint8_t b = buf[cur.pos];
        if (b == 0x66) {
            op_size = 2;
            sse_prefix = 0x66;
            ++cur.pos;
        } else if (b == 0xf3 || b == 0xf2) {
            rep = (b == 0xf3);
            sse_prefix = b;
            ++cur.pos;
        } else {
            break;
        }
    }

    uint8_t opcode = cur.u8();
    bool ok = true;
    insn.op_size = op_size;
    insn.imm_rel = 0;

    auto finish_rel_branch = [&](Op op) {
        insn.op = op;
    };

    if (opcode < 0x40 && (opcode & 7) <= 5) {
        // Classic ALU block.
        Op op = aluOp(opcode >> 3);
        unsigned form = opcode & 7;
        switch (form) {
          case 0:
          case 1:
          case 2:
          case 3: {
            unsigned sz = (form & 1) ? op_size : 1;
            ModRm mrm = parseModRm(cur, sz == 1 ? OperandKind::Gpr8
                                                : OperandKind::Gpr);
            Operand reg = gprOp(mrm.reg, sz);
            insn.op = op;
            insn.op_size = sz;
            if (form < 2) {
                insn.dst = mrm.rm;
                insn.src = reg;
            } else {
                insn.dst = reg;
                insn.src = mrm.rm;
            }
            break;
          }
          case 4:
            insn.op = op;
            insn.op_size = 1;
            insn.dst = Operand::makeGpr8(RegAl);
            insn.src = Operand::makeImm(cur.u8());
            break;
          case 5:
            insn.op = op;
            insn.dst = gprOp(RegEax, op_size);
            insn.src = Operand::makeImm(op_size == 2
                                            ? cur.u16()
                                            : cur.u32());
            break;
        }
    } else if (opcode >= 0x40 && opcode <= 0x4f) {
        insn.op = opcode < 0x48 ? Op::Inc : Op::Dec;
        insn.dst = gprOp(opcode & 7, op_size);
    } else if (opcode >= 0x50 && opcode <= 0x5f) {
        insn.op = opcode < 0x58 ? Op::Push : Op::Pop;
        insn.dst = gprOp(opcode & 7, 4);
        insn.op_size = 4;
    } else if (opcode == 0x68) {
        insn.op = Op::Push;
        insn.dst = Operand::makeImm(cur.s32());
        insn.op_size = 4;
    } else if (opcode == 0x6a) {
        insn.op = Op::Push;
        insn.dst = Operand::makeImm(cur.s8());
        insn.op_size = 4;
    } else if (opcode >= 0x70 && opcode <= 0x7f) {
        insn.op = Op::Jcc;
        insn.cond = static_cast<Cond>(opcode & 0xf);
        insn.imm_rel = cur.s8();
        finish_rel_branch(Op::Jcc);
    } else if (opcode == 0x80 || opcode == 0x81 || opcode == 0x83) {
        unsigned sz = opcode == 0x80 ? 1 : op_size;
        ModRm mrm = parseModRm(cur, sz == 1 ? OperandKind::Gpr8
                                            : OperandKind::Gpr);
        insn.op = aluOp(mrm.reg);
        insn.op_size = sz;
        insn.dst = mrm.rm;
        int64_t imm;
        if (opcode == 0x80)
            imm = cur.u8();
        else if (opcode == 0x83)
            imm = cur.s8();
        else
            imm = sz == 2 ? cur.u16() : cur.u32();
        insn.src = Operand::makeImm(imm);
    } else if (opcode == 0x84 || opcode == 0x85) {
        unsigned sz = opcode == 0x84 ? 1 : op_size;
        ModRm mrm = parseModRm(cur, sz == 1 ? OperandKind::Gpr8
                                            : OperandKind::Gpr);
        insn.op = Op::Test;
        insn.op_size = sz;
        insn.dst = mrm.rm;
        insn.src = gprOp(mrm.reg, sz);
    } else if (opcode == 0x86 || opcode == 0x87) {
        unsigned sz = opcode == 0x86 ? 1 : op_size;
        ModRm mrm = parseModRm(cur, sz == 1 ? OperandKind::Gpr8
                                            : OperandKind::Gpr);
        insn.op = Op::Xchg;
        insn.op_size = sz;
        insn.dst = mrm.rm;
        insn.src = gprOp(mrm.reg, sz);
    } else if (opcode >= 0x88 && opcode <= 0x8b) {
        unsigned sz = (opcode & 1) ? op_size : 1;
        ModRm mrm = parseModRm(cur, sz == 1 ? OperandKind::Gpr8
                                            : OperandKind::Gpr);
        Operand reg = gprOp(mrm.reg, sz);
        insn.op = Op::Mov;
        insn.op_size = sz;
        if (opcode < 0x8a) {
            insn.dst = mrm.rm;
            insn.src = reg;
        } else {
            insn.dst = reg;
            insn.src = mrm.rm;
        }
    } else if (opcode == 0x8d) {
        ModRm mrm = parseModRm(cur, OperandKind::Gpr);
        if (!mrm.rm.isMem())
            ok = false;
        insn.op = Op::Lea;
        insn.dst = gprOp(mrm.reg, op_size);
        insn.src = mrm.rm;
    } else if (opcode == 0x8f) {
        ModRm mrm = parseModRm(cur, OperandKind::Gpr);
        if (mrm.reg != 0)
            ok = false;
        insn.op = Op::Pop;
        insn.dst = mrm.rm;
        insn.op_size = 4;
    } else if (opcode == 0x90) {
        insn.op = Op::Nop;
    } else if (opcode == 0x99) {
        insn.op = Op::Cdq;
    } else if (opcode == 0x9e) {
        insn.op = Op::Sahf;
    } else if (opcode == 0x9f) {
        insn.op = Op::Lahf;
    } else if (opcode >= 0xa4 && opcode <= 0xad) {
        unsigned sz = (opcode & 1) ? op_size : 1;
        insn.op_size = sz;
        insn.rep = rep;
        switch (opcode & ~1) {
          case 0xa4:
            insn.op = Op::Movs;
            break;
          case 0xaa:
            insn.op = Op::Stos;
            break;
          case 0xac:
            insn.op = Op::Lods;
            break;
          default:
            ok = false;
        }
    } else if (opcode == 0xa8 || opcode == 0xa9) {
        unsigned sz = opcode == 0xa8 ? 1 : op_size;
        insn.op = Op::Test;
        insn.op_size = sz;
        insn.dst = sz == 1 ? Operand::makeGpr8(RegAl) : gprOp(RegEax, sz);
        insn.src = Operand::makeImm(sz == 1 ? cur.u8()
                                   : sz == 2 ? cur.u16()
                                             : cur.u32());
    } else if (opcode >= 0xb0 && opcode <= 0xb7) {
        insn.op = Op::Mov;
        insn.op_size = 1;
        insn.dst = Operand::makeGpr8(opcode & 7);
        insn.src = Operand::makeImm(cur.u8());
    } else if (opcode >= 0xb8 && opcode <= 0xbf) {
        insn.op = Op::Mov;
        insn.op_size = op_size;
        insn.dst = gprOp(opcode & 7, op_size);
        insn.src = Operand::makeImm(op_size == 2 ? cur.u16() : cur.u32());
    } else if (opcode == 0xc0 || opcode == 0xc1) {
        unsigned sz = opcode == 0xc0 ? 1 : op_size;
        ModRm mrm = parseModRm(cur, sz == 1 ? OperandKind::Gpr8
                                            : OperandKind::Gpr);
        insn.op = shiftOp(mrm.reg);
        if (insn.op == Op::Invalid)
            ok = false;
        insn.op_size = sz;
        insn.dst = mrm.rm;
        insn.src = Operand::makeImm(cur.u8() & 31);
    } else if (opcode == 0xc2) {
        insn.op = Op::Ret;
        insn.src = Operand::makeImm(cur.u16());
    } else if (opcode == 0xc3) {
        insn.op = Op::Ret;
        insn.src = Operand::makeImm(0);
    } else if (opcode == 0xc6 || opcode == 0xc7) {
        unsigned sz = opcode == 0xc6 ? 1 : op_size;
        ModRm mrm = parseModRm(cur, sz == 1 ? OperandKind::Gpr8
                                            : OperandKind::Gpr);
        if (mrm.reg != 0)
            ok = false;
        insn.op = Op::Mov;
        insn.op_size = sz;
        insn.dst = mrm.rm;
        insn.src = Operand::makeImm(sz == 1 ? cur.u8()
                                   : sz == 2 ? cur.u16()
                                             : cur.u32());
    } else if (opcode == 0xc9) {
        insn.op = Op::Leave;
    } else if (opcode == 0xcc) {
        insn.op = Op::Int3;
    } else if (opcode == 0xcd) {
        insn.op = Op::Int;
        insn.src = Operand::makeImm(cur.u8());
    } else if (opcode == 0xd0 || opcode == 0xd1 || opcode == 0xd2 ||
               opcode == 0xd3) {
        unsigned sz = (opcode & 1) ? op_size : 1;
        ModRm mrm = parseModRm(cur, sz == 1 ? OperandKind::Gpr8
                                            : OperandKind::Gpr);
        insn.op = shiftOp(mrm.reg);
        if (insn.op == Op::Invalid)
            ok = false;
        insn.op_size = sz;
        insn.dst = mrm.rm;
        if (opcode < 0xd2)
            insn.src = Operand::makeImm(1);
        else
            insn.src = Operand::makeGpr8(RegCl);
    } else if (opcode >= 0xd8 && opcode <= 0xdf) {
        ok = decodeX87(cur, opcode, insn);
    } else if (opcode == 0xe8) {
        insn.imm_rel = cur.s32();
        finish_rel_branch(Op::Call);
    } else if (opcode == 0xe9) {
        insn.imm_rel = cur.s32();
        finish_rel_branch(Op::Jmp);
    } else if (opcode == 0xeb) {
        insn.imm_rel = cur.s8();
        finish_rel_branch(Op::Jmp);
    } else if (opcode == 0xf4) {
        insn.op = Op::Hlt;
    } else if (opcode == 0xf6 || opcode == 0xf7) {
        unsigned sz = opcode == 0xf6 ? 1 : op_size;
        ModRm mrm = parseModRm(cur, sz == 1 ? OperandKind::Gpr8
                                            : OperandKind::Gpr);
        insn.op_size = sz;
        insn.dst = mrm.rm;
        switch (mrm.reg) {
          case 0:
          case 1:
            insn.op = Op::Test;
            insn.src = Operand::makeImm(sz == 1 ? cur.u8()
                                        : sz == 2 ? cur.u16()
                                                  : cur.u32());
            break;
          case 2:
            insn.op = Op::Not;
            break;
          case 3:
            insn.op = Op::Neg;
            break;
          case 4:
            insn.op = Op::Mul1;
            insn.src = mrm.rm;
            insn.dst.kind = OperandKind::None;
            break;
          case 5:
            insn.op = Op::Imul1;
            insn.src = mrm.rm;
            insn.dst.kind = OperandKind::None;
            break;
          case 6:
            insn.op = Op::Div;
            insn.src = mrm.rm;
            insn.dst.kind = OperandKind::None;
            break;
          case 7:
            insn.op = Op::Idiv;
            insn.src = mrm.rm;
            insn.dst.kind = OperandKind::None;
            break;
        }
    } else if (opcode == 0xfc) {
        insn.op = Op::Cld;
    } else if (opcode == 0xfd) {
        insn.op = Op::Std;
    } else if (opcode == 0xfe) {
        ModRm mrm = parseModRm(cur, OperandKind::Gpr8);
        insn.op_size = 1;
        insn.dst = mrm.rm;
        if (mrm.reg == 0)
            insn.op = Op::Inc;
        else if (mrm.reg == 1)
            insn.op = Op::Dec;
        else
            ok = false;
    } else if (opcode == 0xff) {
        ModRm mrm = parseModRm(cur, OperandKind::Gpr);
        insn.dst = mrm.rm;
        switch (mrm.reg) {
          case 0:
            insn.op = Op::Inc;
            break;
          case 1:
            insn.op = Op::Dec;
            break;
          case 2:
            insn.op = Op::CallInd;
            insn.src = mrm.rm;
            insn.dst.kind = OperandKind::None;
            break;
          case 4:
            insn.op = Op::JmpInd;
            insn.src = mrm.rm;
            insn.dst.kind = OperandKind::None;
            break;
          case 6:
            insn.op = Op::Push;
            insn.op_size = 4;
            break;
          default:
            ok = false;
        }
    } else if (opcode == 0x0f) {
        ok = decodeTwoByte(cur, insn, sse_prefix, op_size, addr);
    } else {
        ok = false;
    }

    if (cur.fail || !ok || cur.pos > max_insn_bytes) {
        out->op = Op::Invalid;
        out->addr = addr;
        unsigned consumed = cur.pos < 1 ? 1 : cur.pos;
        out->len = static_cast<uint8_t>(
            consumed > max_insn_bytes ? max_insn_bytes : consumed);
        return false;
    }

    insn.len = static_cast<uint8_t>(cur.pos);

    // Resolve relative branch targets now that the length is known.
    if (insn.op == Op::Jcc || insn.op == Op::Jmp || insn.op == Op::Call) {
        insn.src = Operand::makeImm(
            static_cast<uint32_t>(addr + insn.len + insn.imm_rel));
    }

    *out = insn;
    return true;
}

bool
decode(const mem::Memory &memory, uint32_t addr, Insn *out)
{
    uint8_t buf[max_insn_bytes];
    uint64_t got = memory.fetch(addr, buf, sizeof(buf));
    if (got == 0) {
        out->op = Op::Invalid;
        out->addr = addr;
        out->len = 0;
        return false;
    }
    return decode(buf, static_cast<unsigned>(got), addr, out);
}

} // namespace el::ia32
