file(REMOVE_RECURSE
  "CMakeFiles/test_core_end2end.dir/core_end2end_test.cc.o"
  "CMakeFiles/test_core_end2end.dir/core_end2end_test.cc.o.d"
  "test_core_end2end"
  "test_core_end2end.pdb"
  "test_core_end2end[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_end2end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
