/**
 * @file
 * Process-kill chaos matrix for crash consistency: fork `el_run`
 * children with seeded `crash_*` fault sites that `_exit(43)` in the
 * middle of every durability window — mid-journal-append, mid-rename,
 * mid-checkpoint, and between in-memory adoption and the journal flush
 * — then relaunch each killed run with `--resume --cache-dir` and
 * assert the recovered run is bit-exact against an uninterrupted
 * baseline (state hash, console hash, exit code), that recovery adopts
 * zero torn records (truncated journal tails are discarded, never
 * replayed), and that in aggregate the relaunches reuse at least half
 * of the hot artifacts that the interrupted runs journaled.
 *
 * The binary under test comes from the EL_RUN_BIN environment variable,
 * which the CMake test registration points at the just-built el_run.
 * Everything is seeded: the same matrix kills at the same points on
 * every run of this test.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>

#include "support/json.hh"

namespace
{

namespace fs = std::filesystem;
using el::json::Parser;
using el::json::Value;

constexpr int exit_ok = 0;
constexpr int exit_crash = 43; // support/faultinject.hh crash_exit_code

// The shared workload flags: small heat threshold so several traces go
// hot (and get journaled) early, and a checkpoint period short enough
// that captures land inside the adoption-active phase of the run.
const char *const kRunFlags =
    "--workload=gzip --heat-threshold=16 --hot-batch=1 "
    "--checkpoint-period=200000";

int
runCli(const std::string &args)
{
    const char *bin = std::getenv("EL_RUN_BIN");
    EXPECT_NE(bin, nullptr)
        << "EL_RUN_BIN must point at the el_run binary";
    if (!bin)
        return -1;
    std::string cmd =
        std::string(bin) + " " + args + " > /dev/null 2>&1";
    int rc = std::system(cmd.c_str());
    if (rc < 0 || !WIFEXITED(rc))
        return -1;
    return WEXITSTATUS(rc);
}

bool
readJson(const std::string &path, Value *root)
{
    std::ifstream in(path);
    if (!in.good())
        return false;
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    return Parser::parse(text.str(), root, &error);
}

double
statOr(const Value &report, const std::string &name, double fallback)
{
    const Value *stats = report.find("stats");
    return stats ? stats->numberOr(name, fallback) : fallback;
}

/** The architectural outcome a recovered run must reproduce exactly.
 *  (guest_insns is deliberately absent: a warm or resumed run retires
 *  fewer translated-source instructions by design.) */
struct GuestOutcome
{
    bool exited = false;
    double exit_code = -1;
    std::string state_hash, console_hash;

    static GuestOutcome
    of(const Value &report)
    {
        GuestOutcome g;
        const Value *guest = report.find("guest");
        if (!guest)
            return g;
        const Value *e = guest->find("exited");
        g.exited = e && e->kind == Value::Kind::Bool && e->b;
        g.exit_code = guest->numberOr("exit_code", -1);
        g.state_hash = guest->strOr("state_hash", "");
        g.console_hash = guest->strOr("console_hash", "");
        return g;
    }

    bool
    operator==(const GuestOutcome &o) const
    {
        return exited == o.exited && exit_code == o.exit_code &&
               state_hash == o.state_hash &&
               console_hash == o.console_hash;
    }
};

struct MatrixRow
{
    const char *site;   // crash_* fault site name
    int prob;           // per-consult probability out of 1024
    int seed_lo, seed_hi;
};

} // namespace

TEST(CrashMatrix, KillResumeIsBitExactWithArtifactReuse)
{
    fs::path root =
        fs::path(::testing::TempDir()) / "el_crash_matrix";
    fs::remove_all(root);
    fs::create_directories(root);

    // ----- uninterrupted baseline -----------------------------------
    fs::path base_dir = root / "baseline";
    std::string base_report = (base_dir / "report.json").string();
    ASSERT_EQ(runCli(std::string(kRunFlags) +
                     " --cache-dir=" + (base_dir / "cache").string() +
                     " --checkpoint-dir=" + (base_dir / "ck").string() +
                     " --report-json=" + base_report),
              exit_ok);
    Value base;
    ASSERT_TRUE(readJson(base_report, &base));
    GuestOutcome want = GuestOutcome::of(base);
    ASSERT_TRUE(want.exited);
    ASSERT_FALSE(want.state_hash.empty());

    // ----- the kill matrix ------------------------------------------
    // prob=1024 fires at a window's first consult (the earliest, most
    // hostile kill); lower probabilities walk the kill point deeper
    // into the run, seed by seed. Expected crash count is deterministic
    // for a given el_run build; the floor below (20) is the contract.
    const MatrixRow rows[] = {
        {"crash_journal_append", 1024, 1, 1},
        {"crash_journal_append", 512, 2, 7},
        {"crash_adopt", 1024, 1, 1},
        {"crash_adopt", 512, 2, 7},
        {"crash_checkpoint", 1024, 1, 2},
        {"crash_checkpoint", 512, 3, 5},
        {"crash_store_rename", 1024, 1, 4},
    };

    int crashes = 0, clean = 0;
    std::vector<std::string> crashed_sites;
    double hits = 0, misses = 0, replayed = 0;

    for (const MatrixRow &row : rows) {
        for (int seed = row.seed_lo; seed <= row.seed_hi; ++seed) {
            std::string tag = std::string(row.site) + "_p" +
                              std::to_string(row.prob) + "_s" +
                              std::to_string(seed);
            SCOPED_TRACE(tag);
            fs::path dir = root / tag;
            std::string cache = (dir / "cache").string();
            std::string ck = (dir / "ck").string();
            std::string shared = std::string(kRunFlags) +
                                 " --cache-dir=" + cache +
                                 " --checkpoint-dir=" + ck;

            int rc = runCli(shared + " --fault=" + row.site + ":" +
                            std::to_string(row.prob) +
                            " --fault-seed=" + std::to_string(seed));
            if (rc == exit_ok) {
                ++clean; // seeded dice never fired: not a kill point
                continue;
            }
            ASSERT_EQ(rc, exit_crash)
                << "crash run died some way other than the injected "
                   "kill";
            ++crashes;
            crashed_sites.push_back(row.site);

            // ----- relaunch over the wreckage -----------------------
            std::string report = (dir / "resume.json").string();
            ASSERT_EQ(runCli(shared + " --resume --report-json=" +
                             report),
                      exit_ok)
                << "recovery run failed";
            Value resumed;
            ASSERT_TRUE(readJson(report, &resumed));
            EXPECT_TRUE(GuestOutcome::of(resumed) == want)
                << "recovered run diverges from the uninterrupted "
                   "baseline";

            // Zero torn records adopted: a cut journal tail may cost
            // exactly one rejected_truncated, but nothing that fails
            // its CRC or decode may reach the replay path's insert.
            EXPECT_EQ(statOr(resumed, "persist.rejected_crc", 0), 0);
            EXPECT_EQ(statOr(resumed, "persist.rejected_invalid", 0),
                      0);
            EXPECT_LE(statOr(resumed, "persist.rejected_truncated", 0),
                      1);

            hits += statOr(resumed, "persist.hits", 0);
            misses += statOr(resumed, "persist.misses", 0);
            replayed += statOr(resumed, "persist.journal_replayed", 0);

            // Recovery leaves no wreckage of its own: the exit
            // compaction folds the journal into the store and the
            // rename protocol leaves no temp file behind.
            for (const fs::directory_entry &de :
                 fs::directory_iterator(cache)) {
                std::string name = de.path().filename().string();
                EXPECT_EQ(name.find(".eljournal"), std::string::npos)
                    << "journal survived a clean recovery exit";
                EXPECT_EQ(name.find(".tmp"), std::string::npos)
                    << "temp file survived a clean recovery exit";
            }
        }
    }

    // ----- matrix-wide contracts ------------------------------------
    EXPECT_GE(crashes, 20)
        << "matrix too small: " << crashes << " kills landed, "
        << clean << " runs completed before their dice fired";
    for (const char *site :
         {"crash_journal_append", "crash_adopt", "crash_checkpoint",
          "crash_store_rename"}) {
        int n = 0;
        for (const std::string &s : crashed_sites)
            if (s == site)
                ++n;
        EXPECT_GE(n, 1) << "no kill landed in window " << site;
    }
    // Aggregate hot-artifact reuse across all recoveries: at least
    // half of the adoption lookups the relaunches made were served by
    // journaled artifacts from the killed runs.
    ASSERT_GT(hits + misses, 0);
    EXPECT_GE(hits / (hits + misses), 0.5)
        << "recovered runs reused " << hits << "/" << (hits + misses)
        << " artifacts";
    EXPECT_GT(replayed, 0)
        << "no journal frame was ever replayed: the matrix is not "
           "exercising recovery";
}

TEST(CrashMatrix, ResumeAfterCleanExitStartsWarm)
{
    // Not a crash: a checkpoint directory surviving a *clean* exit is
    // also a valid resume source, and the relaunch must still match.
    fs::path root =
        fs::path(::testing::TempDir()) / "el_crash_matrix_clean";
    fs::remove_all(root);
    fs::create_directories(root);
    std::string shared =
        std::string(kRunFlags) +
        " --cache-dir=" + (root / "cache").string() +
        " --checkpoint-dir=" + (root / "ck").string();

    std::string first_report = (root / "first.json").string();
    ASSERT_EQ(runCli(shared + " --report-json=" + first_report),
              exit_ok);
    Value first;
    ASSERT_TRUE(readJson(first_report, &first));

    std::string again_report = (root / "again.json").string();
    ASSERT_EQ(runCli(shared + " --resume --report-json=" +
                     again_report),
              exit_ok);
    Value again;
    ASSERT_TRUE(readJson(again_report, &again));
    EXPECT_TRUE(GuestOutcome::of(again) == GuestOutcome::of(first));
    // The first run's compacted store serves the rerun warm.
    EXPECT_GT(statOr(again, "persist.hits", 0), 0);
}
