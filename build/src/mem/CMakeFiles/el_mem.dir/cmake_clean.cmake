file(REMOVE_RECURSE
  "CMakeFiles/el_mem.dir/cache_model.cc.o"
  "CMakeFiles/el_mem.dir/cache_model.cc.o.d"
  "CMakeFiles/el_mem.dir/memory.cc.o"
  "CMakeFiles/el_mem.dir/memory.cc.o.d"
  "libel_mem.a"
  "libel_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/el_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
