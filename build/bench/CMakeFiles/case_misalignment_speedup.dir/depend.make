# Empty dependencies file for case_misalignment_speedup.
# This may be replaced when dependencies are built.
