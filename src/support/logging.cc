#include "support/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace el
{

int log_level = 1;

int
parseLogLevel(const std::string &name)
{
    if (name == "err" || name == "error" || name == "0")
        return 0;
    if (name == "warn" || name == "warning" || name == "1")
        return 1;
    if (name == "info" || name == "inform" || name == "2")
        return 2;
    if (name == "debug" || name == "3")
        return 3;
    return -1;
}

const char *
logLevelName(int level)
{
    switch (level) {
      case 0:
        return "err";
      case 1:
        return "warn";
      case 2:
        return "info";
      case 3:
        return "debug";
    }
    return "?";
}

void
initLogLevelFromEnv()
{
    const char *env = std::getenv("EL_LOG");
    if (!env || !*env)
        return;
    int level = parseLogLevel(env);
    if (level < 0) {
        std::fprintf(stderr,
                     "warn: EL_LOG=%s is not err|warn|info|debug; "
                     "keeping level %s\n",
                     env, logLevelName(log_level));
        return;
    }
    log_level = level;
}

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (log_level >= 1)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (log_level >= 2)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debugImpl(const std::string &msg)
{
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace el
