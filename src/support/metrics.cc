#include "support/metrics.hh"

#include "support/json.hh"

namespace el::metrics
{

bool
Registry::openOutput(const std::string &path)
{
    closeOutput();
    out_ = std::fopen(path.c_str(), "w");
    return out_ != nullptr;
}

void
Registry::closeOutput()
{
    if (out_) {
        std::fclose(out_);
        out_ = nullptr;
    }
}

void
Registry::emit(double cycle)
{
    ++snapshots_;
    if (!out_)
        return;
    std::string line = snapshotJson(cycle);
    std::fwrite(line.data(), 1, line.size(), out_);
    std::fputc('\n', out_);
    // Flush per line: an abnormal exit must still leave whole,
    // parseable snapshots behind.
    std::fflush(out_);
}

std::string
Registry::snapshotJson(double cycle) const
{
    json::Writer w;
    w.beginObject();
    w.kv("kind", "el-metrics");
    w.kv("version", 1);
    if (have_producer_)
        buildinfo::writeStamp(w, producer_);
    w.kv("cycle", cycle);
    w.key("gauges");
    w.beginObject();
    for (const Gauge &g : gauges_)
        w.kv(g.name.c_str(), g.read ? g.read() : 0.0);
    w.endObject();
    w.key("counters");
    w.beginObject();
    for (const CounterGroup &cg : counter_groups_) {
        if (!cg.group)
            continue;
        for (const auto &[name, value] : cg.group->all())
            w.kv((cg.prefix + "." + name).c_str(), value);
    }
    w.endObject();
    w.key("histograms");
    w.beginObject();
    for (const Hist &h : histograms_) {
        if (!h.h)
            continue;
        w.key(h.name.c_str());
        w.beginObject();
        w.kv("count", h.h->totalSamples());
        w.kv("mean", h.h->mean());
        w.kv("p50", h.h->percentile(50));
        w.kv("p90", h.h->percentile(90));
        w.kv("p99", h.h->percentile(99));
        w.endObject();
    }
    w.endObject();
    w.endObject();
    return w.str();
}

} // namespace el::metrics
