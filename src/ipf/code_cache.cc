#include "ipf/code_cache.hh"

#include "support/faultinject.hh"
#include "support/logging.hh"

namespace el::ipf
{

void
CodeCache::patchToBranch(int64_t idx, int64_t target)
{
    el_assert(idx >= 0 && idx < nextIndex(), "patch out of range");
    Instr &i = code_[idx];
    el_assert(i.op == IpfOp::Exit, "patching a non-exit instruction");
    ExitReason old_reason = i.exit_reason;
    el_assert(old_reason == ExitReason::LinkMiss,
              "patching a non-link exit (%u)",
              static_cast<unsigned>(old_reason));
    i.op = IpfOp::Br;
    i.target = target;
    // Keep the reason/payload as inert metadata: the machine ignores
    // them on a Br, but the execution profiler identifies a patched
    // conditional-exit probe (and its guest target) by them.
}

void
CodeCache::invalidateEntry(int64_t idx, ExitReason reason, int64_t payload)
{
    el_assert(idx >= 0 && idx < nextIndex(), "invalidate out of range");
    Instr &i = code_[idx];
    i.op = IpfOp::Exit;
    i.qp = 0;
    i.exit_reason = reason;
    i.exit_payload = payload;
    i.target = -1;
    i.stop = true;
}

bool
CodeCache::exhausted(size_t headroom)
{
    if (capacity_ != 0 && code_.size() + headroom > capacity_)
        return true;
    if (faultInjected(FaultSite::CacheExhaust))
        return true;
    return false;
}

void
CodeCache::flushAll()
{
    std::lock_guard<std::mutex> lk(*publish_mu_);
    code_.clear();
    ++generation_;
}

int64_t
CodeCache::publish(const CodeCache &staging,
                   uint64_t expected_generation, int32_t final_block_id)
{
    std::lock_guard<std::mutex> lk(*publish_mu_);
    if (generation_ != expected_generation)
        return -1;
    int64_t base = static_cast<int64_t>(code_.size());
    code_.reserve(code_.size() + staging.code_.size());
    for (Instr i : staging.code_) {
        // Branch/chk targets inside a staged block are staging-relative
        // (the staging cache starts at index 0); rebase them. Exit
        // stubs carry target == -1 and are linked later.
        if (i.target >= 0)
            i.target += base;
        i.meta.block_id = final_block_id;
        code_.push_back(i);
    }
    if (code_.size() > high_water_)
        high_water_ = code_.size();
    return base;
}

bool
CodeCache::patchToBranchChecked(int64_t idx, int64_t target,
                                uint64_t expected_generation)
{
    std::lock_guard<std::mutex> lk(*publish_mu_);
    if (generation_ != expected_generation)
        return false;
    patchToBranch(idx, target);
    return true;
}

uint64_t
CodeCache::countBucket(Bucket bucket) const
{
    uint64_t n = 0;
    for (const Instr &i : code_)
        if (i.meta.bucket == bucket)
            ++n;
    return n;
}

} // namespace el::ipf
