file(REMOVE_RECURSE
  "CMakeFiles/fig5_spec_relative.dir/fig5_spec_relative.cc.o"
  "CMakeFiles/fig5_spec_relative.dir/fig5_spec_relative.cc.o.d"
  "fig5_spec_relative"
  "fig5_spec_relative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_spec_relative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
