/**
 * @file
 * Divergence sentinel: shadow-execution policy, per-artifact health
 * ledger, and the translation-quarantine state machine.
 *
 * The paper's two-phase design assumes translations are correct; this
 * module is the runtime's way of *noticing* when one is not and
 * surviving it. The runtime (core/runtime.cc) checkpoints architectural
 * state at dispatch boundaries and — on a sampled subset of translated
 * regions — replays the region through the reference interpreter,
 * comparing final state and the net memory effect. This class holds
 * everything about that mechanism that is pure bookkeeping:
 *
 *  - the sampling decision (check every Nth region, deterministic —
 *    a counter, never wall clock, so runs are bit-identical across
 *    `translation_threads`);
 *  - the per-artifact health ledger keyed by translation entry EIP
 *    (divergence / fault / guard-mispredict counters);
 *  - the quarantine state machine:
 *
 *        Healthy -> Suspect -> Quarantined -> Retranslated
 *                      \________________^          |
 *                       (divergence goes           v
 *                        straight to Q)     back to Q on relapse,
 *                                           pinned to the interpreter
 *                                           after bounded retries
 *
 * Like the tracer and profiler, the sentinel is attached through a
 * non-owned `Options` pointer: when detached every hook is one
 * predictable branch, no simulated cycle is ever charged to it, and
 * counters/cycles are bit-identical with the sentinel attached or not
 * (as long as nothing diverges — after a divergence the sentinel
 * *changes* execution, which is its entire point).
 */

#ifndef EL_SUPPORT_SENTINEL_HH
#define EL_SUPPORT_SENTINEL_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "support/ring.hh"
#include "support/stats.hh"

namespace el::sentinel
{

/** Health of one translation artifact (keyed by entry EIP). */
enum class Health : uint8_t
{
    Healthy,      //!< No adverse evidence.
    Suspect,      //!< Fault/guard counters crossed the first threshold.
    Quarantined,  //!< Blacklisted: invalidated, runs via interpreter.
    Retranslated, //!< Served its quarantine; a fresh cold translation
                  //!< is allowed (relapses return to Quarantined).
};

const char *healthName(Health h);

/** Ledger row: everything known about one artifact's behavior. */
struct HealthRecord
{
    Health state = Health::Healthy;
    uint32_t divergences = 0;    //!< Shadow-execution mismatches.
    uint32_t faults = 0;         //!< Guest faults raised inside it.
    uint32_t guard_misses = 0;   //!< Speculation-guard mispredicts.
    uint32_t retries = 0;        //!< Quarantine -> retranslate cycles.
    uint64_t cooldown_left = 0;  //!< Dispatches to serve under the
                                 //!< interpreter before retranslation.
    bool pinned = false;         //!< Bounded retries exhausted: this
                                 //!< EIP executes interpreted forever.
};

/** One detected divergence, kept for reporting/debugging. */
struct DivergenceInfo
{
    uint32_t checkpoint_eip = 0; //!< Region entry (rollback target).
    uint32_t boundary_eip = 0;   //!< Where the region claimed to end.
    int32_t first_block = -1;    //!< First quarantined translation id.
    uint32_t ip_lo = 0;          //!< IA-32 ip range covered by the
    uint32_t ip_hi = 0;          //!< quarantined artifacts.
    uint64_t region_index = 0;   //!< Which region (sampling counter).
};

/** Sentinel tunables. All deterministic; no time, no randomness. */
struct Config
{
    uint32_t selfcheck_rate = 0;  //!< Shadow-check every Nth region;
                                  //!< 0 disables shadow execution
                                  //!< (the ledger still runs).
    uint64_t replay_budget = 1u << 20; //!< Interpreter steps allowed
                                  //!< per replay before the region is
                                  //!< declared divergent.
    uint32_t fault_suspect_threshold = 0;    //!< Faults before Suspect;
                                             //!< 0 = fault policy off.
    uint32_t fault_quarantine_threshold = 0; //!< Faults before
                                             //!< Quarantined; 0 = off.
    uint32_t guard_quarantine_threshold = 0; //!< Guard mispredicts
                                             //!< before Quarantined;
                                             //!< 0 = off.
    uint32_t retranslate_limit = 3; //!< Quarantine->retranslate cycles
                                    //!< before the EIP is pinned to
                                    //!< the interpreter.
    uint64_t quarantine_cooldown = 8; //!< Dispatches served under the
                                      //!< interpreter per quarantine.
    size_t divergence_log_capacity = 32; //!< Retained DivergenceInfo.
};

/** The sentinel. One instance per run; attach via Options::sentinel. */
class Sentinel
{
  public:
    explicit Sentinel(Config cfg = {});

    const Config &config() const { return cfg_; }

    // ----- sampling -------------------------------------------------

    /**
     * Called once per dispatch-boundary region about to execute.
     * True when the region must be shadow-checked. Pure function of
     * the call count (and the configured rate), so thread count and
     * host scheduling cannot change which regions are checked.
     */
    bool shouldCheck();

    /** Regions seen so far (the sampling counter). */
    uint64_t regionsSeen() const { return regions_seen_; }

    // ----- health ledger feeds --------------------------------------

    /**
     * Record a guest fault raised while executing @p entry_eip's
     * translation. True when the artifact just crossed the quarantine
     * threshold — the caller must then quarantine it.
     */
    bool noteFault(uint32_t entry_eip);

    /** Same contract for a speculation-guard mispredict. */
    bool noteGuardMiss(uint32_t entry_eip);

    /**
     * Record a shadow-execution divergence attributed to @p entry_eip.
     * Unlike faults, a single divergence is decisive: the artifact goes
     * straight to Quarantined (or to pinned-interpreter once the retry
     * budget is spent).
     */
    void noteDivergence(uint32_t entry_eip);

    /** Append one divergence event to the bounded report log. */
    void logDivergence(const DivergenceInfo &info);

    // ----- quarantine queries (all const / side-effect free) --------

    /** True when @p eip's artifact is blacklisted from publication
     *  (Quarantined or pinned). The translator's publish path checks
     *  this before adopting a hot artifact. */
    bool isQuarantined(uint32_t eip) const;

    /** True when dispatching @p eip must run under the interpreter
     *  (quarantine cooldown in progress, or pinned). */
    bool interpretGate(uint32_t eip) const;

    // ----- quarantine transitions -----------------------------------

    /**
     * Account one interpreter-served dispatch of a quarantined @p eip.
     * When the cooldown reaches zero and retries remain, the record
     * moves to Retranslated (a fresh cold translation may be built);
     * when retries are exhausted, the EIP stays pinned.
     */
    void tickCooldown(uint32_t eip);

    // ----- observability --------------------------------------------

    /**
     * Invoked on every health-state transition (and on pinning) with
     * the entry EIP, the state left, the state entered, and whether
     * the record is now pinned. Installed by the runtime to feed the
     * flight recorder / provenance ledger; never charges cycles and
     * must not call back into the sentinel.
     */
    using TransitionFn =
        std::function<void(uint32_t eip, Health from, Health to,
                           bool pinned)>;
    void setTransitionListener(TransitionFn fn)
    {
        on_transition_ = std::move(fn);
    }

    // ----- introspection --------------------------------------------

    const HealthRecord *record(uint32_t eip) const;
    const std::map<uint32_t, HealthRecord> &ledger() const
    {
        return ledger_;
    }
    const BoundedRing<DivergenceInfo> &divergences() const
    {
        return divergence_log_;
    }

    uint64_t totalDivergences() const { return total_divergences_; }

  private:
    HealthRecord &row(uint32_t eip) { return ledger_[eip]; }

    /** Shared Quarantined-entry transition (divergence + threshold). */
    void enterQuarantine(uint32_t eip, HealthRecord &r);

    /** Fire the transition listener when the state actually moved. */
    void
    notifyShift(uint32_t eip, Health from, bool was_pinned,
                const HealthRecord &r)
    {
        if (on_transition_ && (from != r.state || was_pinned != r.pinned))
            on_transition_(eip, from, r.state, r.pinned);
    }

    Config cfg_;
    uint64_t regions_seen_ = 0;
    uint64_t total_divergences_ = 0;
    std::map<uint32_t, HealthRecord> ledger_;
    BoundedRing<DivergenceInfo> divergence_log_;
    TransitionFn on_transition_;
};

} // namespace el::sentinel

#endif // EL_SUPPORT_SENTINEL_HH
