#include "support/attrib.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/strfmt.hh"

namespace el::attrib
{

namespace
{

// The Figure-6 category names, in report order. The parser accepts
// only these so a typo'd report fails loudly instead of diffing as
// zero.
const char *phase_names[] = {"cold_code", "hot_code",    "btgeneric",
                             "fault_handling", "native", "idle"};

bool
failParse(std::string *err, const std::string &path,
          const std::string &why)
{
    if (err)
        *err = strfmt("%s: %s", path.c_str(), why.c_str());
    return false;
}

} // namespace

bool
parseReport(const std::string &text, const std::string &path,
            RunView *out, std::string *err)
{
    json::Value doc;
    std::string jerr;
    if (!json::Parser::parse(text, &doc, &jerr))
        return failParse(err, path, "malformed JSON: " + jerr);
    if (!doc.isObject())
        return failParse(err, path, "not a JSON object");

    std::string kind = doc.strOr("kind", "");
    if (kind != "el-report")
        return failParse(err, path,
                         kind.empty()
                             ? "not an el-report (no kind; "
                               "re-run el_run from this build?)"
                             : "not an el-report (kind \"" + kind +
                                   "\")");

    out->path = path;
    out->version = static_cast<int>(doc.numberOr("version", 0));
    out->workload = doc.strOr("workload", "");
    out->cycles = doc.numberOr("cycles", 0);

    if (const json::Value *p = doc.find("producer")) {
        out->tool = p->strOr("tool", "");
        out->build = p->strOr("build", "");
        out->fingerprint = p->strOr("fingerprint", "");
        out->schema = static_cast<int>(p->numberOr("schema", 0));
    }

    const json::Value *attr = doc.find("attribution");
    if (!attr || !attr->isObject())
        return failParse(err, path, "no attribution object");
    out->phases.clear();
    for (const char *name : phase_names) {
        const json::Value *v = attr->find(name);
        if (!v || !v->isNumber())
            return failParse(err, path,
                             strfmt("attribution.%s missing", name));
        out->phases.emplace_back(name, v->num);
    }
    out->attribution_total = attr->numberOr("total", 0);

    out->blocks.clear();
    out->has_blocks = false;
    if (const json::Value *blocks = doc.find("blocks")) {
        if (!blocks->isArray())
            return failParse(err, path, "blocks is not an array");
        out->has_blocks = true;
        // Several translations can share an entry EIP (misalignment
        // variants, re-translations after a flush); the differ wants
        // the canonical guest location, so pre-merge here.
        std::map<std::pair<uint32_t, std::string>,
                 std::pair<double, double>>
            merged;
        for (const json::Value &row : blocks->arr) {
            if (!row.isObject())
                return failParse(err, path, "non-object block row");
            uint32_t eip =
                static_cast<uint32_t>(row.numberOr("eip", 0));
            std::string bkind = row.strOr("kind", "?");
            auto &cell = merged[{eip, bkind}];
            cell.first += row.numberOr("cycles", 0);
            cell.second += row.numberOr("insns", 0);
        }
        for (const auto &[key, cost] : merged) {
            RunView::BlockRow r;
            r.eip = key.first;
            r.kind = key.second;
            r.cycles = cost.first;
            r.insns = cost.second;
            out->blocks.push_back(std::move(r));
        }
    }
    return true;
}

bool
compatible(const RunView &base, const RunView &cur, std::string *why)
{
    auto refuse = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    if (base.version != cur.version)
        return refuse(strfmt("document versions differ: %s is v%d, "
                             "%s is v%d",
                             base.path.c_str(), base.version,
                             cur.path.c_str(), cur.version));
    if (base.schema && cur.schema && base.schema != cur.schema)
        return refuse(strfmt("producer schemas differ: %d vs %d",
                             base.schema, cur.schema));
    if (!base.fingerprint.empty() && !cur.fingerprint.empty() &&
        base.fingerprint != cur.fingerprint)
        return refuse(strfmt(
            "image fingerprints differ: %s ran %s, %s ran %s — these "
            "are different guests (use --force to diff anyway)",
            base.path.c_str(), base.fingerprint.c_str(),
            cur.path.c_str(), cur.fingerprint.c_str()));
    if (base.workload != cur.workload)
        return refuse(strfmt(
            "workloads differ: \"%s\" vs \"%s\" (use --force to diff "
            "anyway)",
            base.workload.c_str(), cur.workload.c_str()));
    return true;
}

Diff
diffRuns(const RunView &base, const RunView &cur, const Options &opts)
{
    Diff d;
    d.base_cycles = base.cycles;
    d.cur_cycles = cur.cycles;
    d.delta = cur.cycles - base.cycles;
    double abs_delta = std::fabs(d.delta);

    // ----- phases ---------------------------------------------------
    double phase_sum = 0;
    for (size_t i = 0; i < base.phases.size(); ++i) {
        PhaseDelta pd;
        pd.phase = base.phases[i].first;
        pd.base = base.phases[i].second;
        // Same parser, same fixed name list: positions match.
        pd.cur = i < cur.phases.size() ? cur.phases[i].second : 0;
        pd.delta = pd.cur - pd.base;
        pd.share = abs_delta > 0 ? pd.delta / d.delta : 0;
        phase_sum += pd.delta;
        d.phases.push_back(std::move(pd));
    }
    std::stable_sort(d.phases.begin(), d.phases.end(),
                     [](const PhaseDelta &a, const PhaseDelta &b) {
                         return std::fabs(a.delta) > std::fabs(b.delta);
                     });
    d.phase_residual = d.delta - phase_sum;
    d.attributed_fraction =
        abs_delta > 0
            ? 1.0 - std::fabs(d.phase_residual) / abs_delta
            : 1.0;

    // ----- blocks ---------------------------------------------------
    d.blocks_available = base.has_blocks && cur.has_blocks;
    if (!d.blocks_available)
        return d;

    d.noise_threshold = abs_delta * opts.noise_frac;
    std::map<std::pair<uint32_t, std::string>, BlockDelta> rows;
    for (const RunView::BlockRow &r : base.blocks) {
        BlockDelta &bd = rows[{r.eip, r.kind}];
        bd.eip = r.eip;
        bd.kind = r.kind;
        bd.base = r.cycles;
    }
    for (const RunView::BlockRow &r : cur.blocks) {
        BlockDelta &bd = rows[{r.eip, r.kind}];
        bd.eip = r.eip;
        bd.kind = r.kind;
        bd.cur = r.cycles;
    }
    double block_sum = 0;
    for (auto &[key, bd] : rows) {
        bd.delta = bd.cur - bd.base;
        block_sum += bd.delta;
        if (bd.delta == 0)
            continue;
        if (std::fabs(bd.delta) < d.noise_threshold) {
            d.below_noise += bd.delta;
            ++d.below_noise_rows;
            continue;
        }
        d.blocks.push_back(bd);
    }
    std::stable_sort(d.blocks.begin(), d.blocks.end(),
                     [](const BlockDelta &a, const BlockDelta &b) {
                         return std::fabs(a.delta) > std::fabs(b.delta);
                     });
    d.block_residual = d.delta - block_sum;
    return d;
}

std::string
diffJson(const Diff &d, const RunView &base, const RunView &cur,
         const buildinfo::ProducerStamp &producer)
{
    json::Writer w;
    w.beginObject();
    w.kv("kind", "el-diff");
    w.kv("version", 1);
    buildinfo::writeStamp(w, producer);
    w.kv("workload", base.workload);
    if (!base.fingerprint.empty())
        w.kv("fingerprint", base.fingerprint);

    auto side = [&](const char *key, const RunView &r) {
        w.key(key);
        w.beginObject();
        w.kv("path", r.path);
        if (!r.build.empty())
            w.kv("build", r.build);
        w.kv("cycles", r.cycles);
        w.endObject();
    };
    side("base", base);
    side("current", cur);

    w.key("delta");
    w.beginObject();
    w.kv("cycles", d.delta);
    w.kv("attributed_fraction", d.attributed_fraction);
    w.kv("phase_residual", d.phase_residual);
    w.endObject();

    w.key("phases");
    w.beginArray();
    for (const PhaseDelta &p : d.phases) {
        w.beginObject();
        w.kv("phase", p.phase);
        w.kv("base", p.base);
        w.kv("current", p.cur);
        w.kv("delta", p.delta);
        w.kv("share", p.share);
        w.endObject();
    }
    w.endArray();

    w.key("blocks");
    w.beginObject();
    w.kv("available", d.blocks_available);
    if (d.blocks_available) {
        w.kv("noise_threshold", d.noise_threshold);
        w.key("rows");
        w.beginArray();
        for (const BlockDelta &b : d.blocks) {
            w.beginObject();
            w.kv("eip", strfmt("0x%08x", b.eip));
            w.kv("kind", b.kind);
            w.kv("base", b.base);
            w.kv("current", b.cur);
            w.kv("delta", b.delta);
            w.endObject();
        }
        w.endArray();
        w.kv("below_noise", d.below_noise);
        w.kv("below_noise_rows", d.below_noise_rows);
        w.kv("residual", d.block_residual);
    }
    w.endObject();

    w.endObject();
    return w.str() + "\n";
}

std::string
diffTable(const Diff &d, const RunView &base, const RunView &cur)
{
    std::string out;
    out += strfmt("workload: %s\n", base.workload.c_str());
    out += strfmt("  base:    %14.0f cycles  (%s)\n", d.base_cycles,
                  base.path.c_str());
    out += strfmt("  current: %14.0f cycles  (%s)\n", d.cur_cycles,
                  cur.path.c_str());
    double pct = d.base_cycles != 0
                     ? 100.0 * d.delta / d.base_cycles
                     : 0.0;
    out += strfmt("  delta:   %+14.0f cycles  (%+.2f%%)\n", d.delta,
                  pct);
    out += strfmt("\nphase attribution (%.1f%% of delta attributed, "
                  "residual %+.0f):\n",
                  100.0 * d.attributed_fraction, d.phase_residual);
    out += strfmt("  %-16s %14s %14s %14s %8s\n", "phase", "base",
                  "current", "delta", "share");
    for (const PhaseDelta &p : d.phases)
        out += strfmt("  %-16s %14.0f %14.0f %+14.0f %7.1f%%\n",
                      p.phase.c_str(), p.base, p.cur, p.delta,
                      100.0 * p.share);

    if (!d.blocks_available) {
        out += "\nper-block attribution: unavailable (run el_run with "
               "--report-json on both sides;\nblock rows need "
               "Options::collect_block_cycles)\n";
        return out;
    }
    out += strfmt("\nper-block attribution (noise threshold %.0f "
                  "cycles):\n",
                  d.noise_threshold);
    out += strfmt("  %-12s %-8s %14s %14s %14s\n", "eip", "kind",
                  "base", "current", "delta");
    for (const BlockDelta &b : d.blocks) {
        std::string eip = b.kind == "runtime"
                              ? std::string("-")
                              : strfmt("0x%08x", b.eip);
        out += strfmt("  %-12s %-8s %14.0f %14.0f %+14.0f\n",
                      eip.c_str(), b.kind.c_str(), b.base, b.cur,
                      b.delta);
    }
    if (d.below_noise_rows)
        out += strfmt("  %-12s %-8s %29s %+14.0f   (%llu block(s))\n",
                      "(below", "noise)", "", d.below_noise,
                      static_cast<unsigned long long>(
                          d.below_noise_rows));
    out += strfmt("  %-12s %-8s %29s %+14.0f   (synthetic: xlate "
                  "overhead, native, idle)\n",
                  "(residual)", "", "", d.block_residual);
    return out;
}

} // namespace el::attrib
