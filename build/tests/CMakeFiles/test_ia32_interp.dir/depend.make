# Empty dependencies file for test_ia32_interp.
# This may be replaced when dependencies are built.
