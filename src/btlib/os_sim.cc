#include "btlib/os_sim.hh"

#include "ia32/regs.hh"
#include "support/faultinject.hh"
#include "support/logging.hh"

namespace el::btlib
{

namespace linux_abi
{

Service
serviceFor(uint32_t nr)
{
    switch (nr) {
      case nr_exit:
        return Service::Exit;
      case nr_write:
        return Service::Write;
      case nr_brk:
        return Service::Brk;
      case nr_time:
        return Service::Time;
      case nr_yield:
        return Service::Yield;
      case nr_kernel_work:
        return Service::KernelWork;
      case nr_set_handler:
        return Service::SetHandler;
      default:
        return Service::Unknown;
    }
}

} // namespace linux_abi

namespace windows_abi
{

Service
serviceFor(uint32_t nr)
{
    switch (nr) {
      case nr_terminate:
        return Service::Exit;
      case nr_write_console:
        return Service::Write;
      case nr_allocate_vm:
        return Service::Brk;
      case nr_query_time:
        return Service::Time;
      case nr_yield:
        return Service::Yield;
      case nr_kernel_work:
        return Service::KernelWork;
      case nr_set_handler:
        return Service::SetHandler;
      default:
        return Service::Unknown;
    }
}

} // namespace windows_abi

SimOsBase::SimOsBase(mem::Memory &memory) : mem_(memory)
{
}

/** Static thunks bridging the C vtable back into the C++ personality. */
struct VtableThunks
{
    static uint64_t
    allocPages(void *ctx, uint64_t bytes)
    {
        return static_cast<SimOsBase *>(ctx)->allocPages(bytes);
    }

    static SyscallResult
    systemService(void *ctx, ia32::State *state, uint8_t vector)
    {
        return static_cast<SimOsBase *>(ctx)->dispatch(*state, vector);
    }

    static ExceptionDisposition
    deliverException(void *ctx, ia32::State *state,
                     const ia32::Fault *fault)
    {
        return static_cast<SimOsBase *>(ctx)->deliver(*state, *fault);
    }

    static void
    chargeCycles(void *ctx, uint8_t bucket, double cycles)
    {
        static_cast<SimOsBase *>(ctx)->charge(
            static_cast<ipf::Bucket>(bucket), cycles);
    }

    static const char *
    osName(void *ctx)
    {
        return static_cast<SimOsBase *>(ctx)->name();
    }
};

BtOsVtable
SimOsBase::vtable()
{
    BtOsVtable vt;
    vt.major = btos_major;
    vt.minor = btos_minor;
    vt.ctx = this;
    vt.alloc_pages = &VtableThunks::allocPages;
    vt.system_service = &VtableThunks::systemService;
    vt.deliver_exception = &VtableThunks::deliverException;
    vt.charge_cycles = &VtableThunks::chargeCycles;
    vt.os_name = &VtableThunks::osName;
    return vt;
}

uint64_t
SimOsBase::allocPages(uint64_t bytes)
{
    if (faultInjected(FaultSite::BtosAlloc))
        return 0; // Transient allocation failure (chaos testing).
    uint64_t base = alloc_next_;
    uint64_t mapped = (bytes + mem::Memory::page_size - 1) &
                      ~(mem::Memory::page_size - 1);
    mem_.map(base, mapped, mem::PermRW);
    alloc_next_ += mapped + mem::Memory::page_size; // guard page gap
    return base;
}

void
SimOsBase::charge(ipf::Bucket bucket, double cycles)
{
    if (bucket == ipf::Bucket::Native)
        stats_.native_cycles += cycles;
    else if (bucket == ipf::Bucket::Idle)
        stats_.idle_cycles += cycles;
    if (sink_)
        sink_(bucket, cycles);
}

SyscallResult
SimOsBase::dispatch(ia32::State &state, uint8_t vector)
{
    ++stats_.syscalls;
    SyscallResult res;
    if (vector != intVector()) {
        // Unknown software interrupt: treat as an invalid-opcode-class
        // event; the caller routes it as a fault. Model as exit here.
        res.exit = true;
        res.exit_code = 128 + vector;
        return res;
    }
    uint32_t args[3] = {0, 0, 0};
    Service svc = decodeService(state, args);

    // Every trip into the kernel costs some native time.
    charge(ipf::Bucket::Native, 400);
    virtual_time_us_ += 0.4;

    uint32_t result = 0;
    switch (svc) {
      case Service::Exit:
        res.exit = true;
        res.exit_code = static_cast<int32_t>(args[0]);
        exit_code_ = res.exit_code;
        return res;
      case Service::Write: {
        uint32_t addr = args[0];
        uint32_t len = args[1] > 65536 ? 65536 : args[1];
        std::string chunk;
        chunk.reserve(len);
        for (uint32_t k = 0; k < len; ++k) {
            uint64_t b = 0;
            if (!mem_.read(addr + k, 1, &b).ok())
                break;
            chunk.push_back(static_cast<char>(b));
        }
        console_ += chunk;
        result = static_cast<uint32_t>(chunk.size());
        charge(ipf::Bucket::Native, 30.0 * chunk.size());
        break;
      }
      case Service::Brk: {
        if (args[0] == 0) {
            result = brk_;
        } else {
            uint32_t new_brk = brk_ + args[0];
            mem_.map(brk_, new_brk - brk_, mem::PermRW);
            result = brk_;
            brk_ = new_brk;
        }
        break;
      }
      case Service::Time:
        result = static_cast<uint32_t>(virtual_time_us_);
        break;
      case Service::Yield:
        charge(ipf::Bucket::Idle, 1200);
        virtual_time_us_ += 3.5;
        break;
      case Service::KernelWork:
        charge(ipf::Bucket::Native, 1000.0 * args[0]);
        virtual_time_us_ += args[0];
        break;
      case Service::SetHandler:
        handler_eip_ = args[0];
        break;
      case Service::Unknown:
        el_warn("%s: unknown system service", name());
        result = static_cast<uint32_t>(-1);
        break;
    }
    writeResult(state, result);
    return res;
}

ExceptionDisposition
SimOsBase::deliver(ia32::State &state, const ia32::Fault &fault)
{
    if (handler_eip_ == 0)
        return ExceptionDisposition::Terminate;
    // Minimal frame: the handler receives the fault kind, address and
    // faulting EIP in registers and decides where to resume.
    state.gpr[ia32::RegEax] = static_cast<uint32_t>(fault.kind);
    state.gpr[ia32::RegEbx] = fault.addr;
    state.gpr[ia32::RegEcx] = fault.eip;
    state.eip = handler_eip_;
    return ExceptionDisposition::Resume;
}

Service
SimLinux::decodeService(const ia32::State &state, uint32_t args[3])
{
    args[0] = state.gpr[ia32::RegEbx];
    args[1] = state.gpr[ia32::RegEcx];
    args[2] = state.gpr[ia32::RegEdx];
    return linux_abi::serviceFor(state.gpr[ia32::RegEax]);
}

void
SimLinux::writeResult(ia32::State &state, uint32_t result)
{
    state.gpr[ia32::RegEax] = result;
}

Service
SimWindows::decodeService(const ia32::State &state, uint32_t args[3])
{
    // Arguments live in an in-memory block pointed to by EDX.
    uint32_t block = state.gpr[ia32::RegEdx];
    for (int k = 0; k < 3; ++k) {
        uint64_t v = 0;
        if (mem_.read(block + 4u * k, 4, &v).ok())
            args[k] = static_cast<uint32_t>(v);
    }
    return windows_abi::serviceFor(state.gpr[ia32::RegEax]);
}

void
SimWindows::writeResult(ia32::State &state, uint32_t result)
{
    state.gpr[ia32::RegEax] = result;
}

} // namespace el::btlib
