/**
 * @file
 * Unit tests for the shared bounded ring (support/ring.hh): both
 * overflow policies, the drop counter, and the clear() semantics the
 * divergence sentinel's visit log relies on (contents go, the drop
 * count stays).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "support/ring.hh"

namespace el
{
namespace
{

TEST(BoundedRing, FifoUnderCapacity)
{
    BoundedRing<int> ring(4);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), 4u);
    for (int k = 0; k < 3; ++k)
        EXPECT_TRUE(ring.push(k));
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.front(), 0);
    EXPECT_EQ(ring.back(), 2);
    EXPECT_EQ(ring.dropped(), 0u);
}

TEST(BoundedRing, DropOldestEvictsFront)
{
    BoundedRing<int> ring(3, RingPolicy::DropOldest);
    for (int k = 0; k < 5; ++k)
        EXPECT_TRUE(ring.push(k)); // every push is stored
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.front(), 2); // 0 and 1 were sacrificed
    EXPECT_EQ(ring.back(), 4);
    EXPECT_EQ(ring.dropped(), 2u);
}

TEST(BoundedRing, DropNewestRefusesPush)
{
    BoundedRing<int> ring(3, RingPolicy::DropNewest);
    for (int k = 0; k < 3; ++k)
        EXPECT_TRUE(ring.push(k));
    EXPECT_FALSE(ring.push(99)); // refused, not stored
    EXPECT_FALSE(ring.push(98));
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.front(), 0); // the earliest survive
    EXPECT_EQ(ring.back(), 2);
    EXPECT_EQ(ring.dropped(), 2u);
}

TEST(BoundedRing, ClearKeepsDropCount)
{
    BoundedRing<int> ring(2, RingPolicy::DropNewest);
    ring.push(1);
    ring.push(2);
    ring.push(3); // dropped
    EXPECT_EQ(ring.dropped(), 1u);
    ring.clear();
    EXPECT_TRUE(ring.empty());
    // A consumer distinguishing complete from truncated recordings must
    // still see the historical drop count after a reuse cycle.
    EXPECT_EQ(ring.dropped(), 1u);
    EXPECT_TRUE(ring.push(4));
    EXPECT_EQ(ring.size(), 1u);
}

TEST(BoundedRing, ZeroCapacityIsClampedToOne)
{
    BoundedRing<int> ring(0);
    EXPECT_EQ(ring.capacity(), 1u);
    EXPECT_TRUE(ring.push(7));
    EXPECT_TRUE(ring.push(8)); // DropOldest default: evicts 7
    EXPECT_EQ(ring.size(), 1u);
    EXPECT_EQ(ring.back(), 8);
    EXPECT_EQ(ring.dropped(), 1u);
}

TEST(BoundedRing, IterationAndIndexing)
{
    BoundedRing<std::string> ring(4);
    ring.push("a");
    ring.push("b");
    ring.push("c");
    std::string joined;
    for (const std::string &s : ring)
        joined += s;
    EXPECT_EQ(joined, "abc");
    EXPECT_EQ(ring[1], "b");
    ring[1] = "B";
    EXPECT_EQ(ring[1], "B");
}

TEST(BoundedRing, MoveOnlyElements)
{
    BoundedRing<std::unique_ptr<int>> ring(2);
    ring.push(std::make_unique<int>(1));
    ring.push(std::make_unique<int>(2));
    ring.push(std::make_unique<int>(3)); // evicts 1
    EXPECT_EQ(*ring.front(), 2);
    EXPECT_EQ(*ring.back(), 3);
}

} // namespace
} // namespace el
