/**
 * @file
 * The asynchronous hot-translation pipeline.
 *
 * The paper's hot phase costs ~20x cold translation per instruction
 * (Options::hot_xlate_cost_per_insn); running it inline stalls the
 * guest for the whole session. This service moves hot sessions onto
 * Options::translation_threads worker threads, exactly like the
 * background compile threads of a modern tiered JIT:
 *
 *  - The runtime snapshots everything a session needs (the decoded
 *    trace, per-block misalignment policies, the entry SpecContext)
 *    into a self-contained HotCandidate at registration time and pushes
 *    it onto an MPSC work queue. Workers share no mutable state with
 *    the translator or each other.
 *  - A worker runs the emission + scheduling session into a private
 *    staging code cache and hands back a HotArtifact.
 *  - The runtime adopts artifacts only at block re-entry boundaries
 *    (the top of the dispatch loop) and publishes them into the shared
 *    ipf::CodeCache with a generation-checked commit, so the executing
 *    guest only ever sees fully-linked translations and results staged
 *    against a flushed generation are discarded.
 *
 * Determinism: guest-visible architectural state is bit-exact for a
 * fixed seed regardless of thread count, because candidates are frozen
 * at enqueue time and a hot trace is architecturally equivalent to the
 * cold code it replaces — workers race only over *when* the hot version
 * is adopted. Options::deterministic_adoption additionally fixes that
 * adoption point: each simulated worker has a cycle timeline, a
 * candidate's completion time is planned at enqueue from those
 * timelines, and artifacts are adopted in enqueue order once guest
 * simulated time passes their planned completion — making whole runs
 * (including cycle counts) replayable for the chaos harness.
 */

#ifndef EL_CORE_HOT_PIPELINE_HH
#define EL_CORE_HOT_PIPELINE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "core/analysis.hh"
#include "core/blockinfo.hh"
#include "core/emit_env.hh"
#include "ipf/code_cache.hh"
#include "support/pipeline.hh"
#include "support/stats.hh"

namespace el::core
{

/**
 * Everything one hot session reads, snapshotted on the main thread at
 * enqueue time: decoded trace blocks (by value), the per-block
 * misalignment policy, and the unroll decision. A session is a pure
 * function of this input plus the (immutable) Options.
 */
struct HotSessionInput
{
    uint32_t entry_eip = 0;
    SpecContext spec;
    std::vector<BasicBlock> trace;   //!< Selected trace, copied.
    /** Per-trace-block access policy (policy, known granularity). */
    std::vector<std::pair<MisalignPolicy, uint8_t>> policies;
    bool loops = false;
    unsigned copies = 1;             //!< Unroll copies of the trace.
    uint32_t trace_insns = 0;        //!< IA-32 insns in one copy.
    /** Entry EIPs of interior trace blocks (coverage at commit). */
    std::vector<uint32_t> covered_eips;
    /** SMC guards for constituent blocks on writable pages: (guest
     *  address, expected bytes). Snapshotted on the main thread at
     *  freeze time — workers must never read live guest memory. */
    std::vector<std::pair<uint32_t, uint64_t>> smc_guards;
};

/** A queued hot-translation request (self-contained; workers own it). */
struct HotCandidate
{
    uint64_t seq = 0;          //!< Enqueue sequence (and fault stream id).
    int32_t cold_block_id = -1;
    uint64_t generation = 0;   //!< Code-cache generation at enqueue.
    double start_cycles = 0;   //!< Planned session start (simulated).
    double ready_cycles = 0;   //!< Planned completion (simulated time).
    unsigned worker_slot = 0;  //!< Simulated worker lane the plan chose.
    HotSessionInput input;
};

/** The result of one hot session, staged for publication. */
struct HotArtifact
{
    uint64_t seq = 0;
    int32_t cold_block_id = -1;
    uint64_t generation = 0;
    double start_cycles = 0;
    double ready_cycles = 0;
    unsigned worker_slot = 0;

    bool ok = false;             //!< Session produced a publishable trace.
    bool injected_abort = false; //!< Failed via FaultSite::HotXlateAbort.

    SpecContext spec;            //!< Entry conditions (from the input).
    std::vector<uint32_t> covered_eips; //!< Interior trace entries.
    /** SMC guard windows carried from the input: the persistence layer
     *  stores them with the artifact so a warm run can re-validate a
     *  loaded trace against live guest memory before adopting it. */
    std::vector<std::pair<uint32_t, uint64_t>> smc_guards;
    bool from_store = false;     //!< Adopted from a persistent store
                                 //!< (skip re-recording + hot counters).

    /**
     * Proto block metadata: everything except the final id and cache
     * placement (assigned at commit). ExitStub cache indices and
     * recovery maps are staging-relative / staging-independent.
     */
    BlockInfo proto;
    ipf::CodeCache staging;      //!< Emitted code at indices [0, n).

    /**
     * Per-session statistics, filled by the worker and merged into the
     * translator's shared StatGroup at adoption on the main thread —
     * workers never touch the shared group, so `translator().stats` is
     * race-free under any worker count (TSan-verified).
     */
    StatGroup stats;
};

/**
 * The worker-pool service: an MPSC queue of HotCandidates drained by N
 * session threads, plus the simulated worker timelines that make
 * adoption deterministic. Enqueue and drain are main-thread-only; the
 * session function runs on workers and must be re-entrant.
 */
class HotPipeline
{
  public:
    using SessionFn =
        std::function<void(const HotCandidate &, HotArtifact *)>;

    struct Config
    {
        unsigned threads = 1;
        bool deterministic = false; //!< Options::deterministic_adoption.
    };

    HotPipeline(const Config &config, SessionFn session);
    ~HotPipeline();

    HotPipeline(const HotPipeline &) = delete;
    HotPipeline &operator=(const HotPipeline &) = delete;

    /**
     * Plan + enqueue one candidate. @p now is current guest simulated
     * time; @p session_cost the simulated cycles the session occupies a
     * worker for. Fills in seq and ready_cycles. Returns the sequence
     * number.
     */
    uint64_t enqueue(HotCandidate candidate, double now,
                     double session_cost);

    /**
     * Collect artifacts eligible for adoption at simulated time @p now.
     *
     * Deterministic mode: returns artifacts in enqueue order while the
     * oldest outstanding candidate's planned completion has been
     * reached, blocking (wall-clock only) on the worker if the artifact
     * has not landed yet. Default mode: returns whatever has landed,
     * ordered by sequence — adoption timing then depends on real worker
     * speed, which is the documented race (guest state is unaffected).
     */
    std::vector<HotArtifact> drain(double now);

    /** Candidates enqueued and not yet drained. */
    size_t inFlight() const { return pending_ready_.size(); }

    /**
     * Block (wall-clock only) until every enqueued candidate's session
     * has executed and its artifact landed. Does not drain: adoption
     * timing is unchanged. Called at end of run so observers that read
     * worker-side records (flight recorder, postmortem bundles) see
     * the same event set on every run regardless of host scheduling.
     */
    void quiesce();

    unsigned threads() const { return pool_.size(); }

  private:
    void workerLoop();

    SessionFn session_;
    bool deterministic_;
    support::WorkQueue<HotCandidate> queue_;
    support::WorkerPool pool_;

    std::mutex results_mu_;
    std::condition_variable results_cv_;
    std::vector<HotArtifact> results_; //!< Landed, not yet drained.

    // Main-thread bookkeeping.
    uint64_t next_seq_ = 0;
    uint64_t next_adopt_seq_ = 0;        //!< Deterministic-mode cursor.
    std::map<uint64_t, double> pending_ready_; //!< seq -> planned ready.
    std::vector<double> worker_avail_;   //!< Simulated worker timelines.
};

} // namespace el::core

#endif // EL_CORE_HOT_PIPELINE_HH
