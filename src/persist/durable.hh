/**
 * @file
 * Crash-durable file publication: write-to-temp + fsync + atomic
 * rename + directory fsync.
 *
 * Every durable artifact (the .elstore, the checkpoint file) is
 * published through this path, so a reader can never observe a
 * half-written file: either the old content survives or the new
 * content is complete. The containing directory is fsynced after the
 * rename so the new directory entry itself is durable — without it a
 * power cut can revert the rename even though the data blocks landed.
 */

#ifndef EL_PERSIST_DURABLE_HH
#define EL_PERSIST_DURABLE_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "support/faultinject.hh"

namespace el::persist
{

/**
 * Atomically publish @p n bytes at @p path via `<path>.tmp`. Returns
 * false (with the temp file unlinked) on any I/O failure.
 *
 * @p crash_site names the CrashPoint consulted between the temp
 * file's fsync and the rename — the window a kill would leave a
 * complete-but-unpublished temp file. When the site fires, only half
 * the payload is written first (modelling a torn in-flight write) and
 * the process _exit()s. Pass FaultSite::NumSites for no crash window.
 */
bool writeFileDurable(const std::string &path, const uint8_t *data,
                      size_t n,
                      FaultSite crash_site = FaultSite::NumSites);

/** fsync the directory @p dir (best effort; false on failure). */
bool fsyncDir(const std::string &dir);

} // namespace el::persist

#endif // EL_PERSIST_DURABLE_HH
