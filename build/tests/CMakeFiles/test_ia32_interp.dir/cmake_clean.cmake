file(REMOVE_RECURSE
  "CMakeFiles/test_ia32_interp.dir/ia32_fpu_test.cc.o"
  "CMakeFiles/test_ia32_interp.dir/ia32_fpu_test.cc.o.d"
  "CMakeFiles/test_ia32_interp.dir/ia32_interp_test.cc.o"
  "CMakeFiles/test_ia32_interp.dir/ia32_interp_test.cc.o.d"
  "CMakeFiles/test_ia32_interp.dir/ia32_simd_test.cc.o"
  "CMakeFiles/test_ia32_interp.dir/ia32_simd_test.cc.o.d"
  "test_ia32_interp"
  "test_ia32_interp.pdb"
  "test_ia32_interp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ia32_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
