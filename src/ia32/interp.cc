#include "ia32/interp.hh"

#include <cmath>
#include <cstring>

#include "ia32/flags.hh"
#include "support/bitfield.hh"
#include "support/faultinject.hh"
#include "support/logging.hh"

namespace el::ia32
{

namespace
{

Fault
pageFault(uint32_t eip, uint32_t addr, bool is_write)
{
    Fault f;
    f.kind = FaultKind::PageFault;
    f.eip = eip;
    f.addr = addr;
    f.is_write = is_write;
    return f;
}

Fault
simpleFault(FaultKind kind, uint32_t eip)
{
    Fault f;
    f.kind = kind;
    f.eip = eip;
    return f;
}

} // namespace

uint32_t
Interpreter::effAddr(const MemRef &m) const
{
    uint32_t addr = static_cast<uint32_t>(m.disp);
    if (m.has_base)
        addr += state_.gpr[m.base];
    if (m.has_index)
        addr += state_.gpr[m.index] * m.scale;
    return addr;
}

bool
Interpreter::load(uint32_t addr, unsigned size, uint64_t *val, Fault *fault)
{
    auto r = mem_.read(addr, size, val);
    if (!r.ok()) {
        *fault = pageFault(state_.eip, static_cast<uint32_t>(r.fault_addr),
                           false);
        return false;
    }
    return true;
}

bool
Interpreter::store(uint32_t addr, unsigned size, uint64_t val, Fault *fault)
{
    auto r = mem_.write(addr, size, val);
    if (!r.ok()) {
        *fault = pageFault(state_.eip, static_cast<uint32_t>(r.fault_addr),
                           true);
        return false;
    }
    return true;
}

bool
Interpreter::readOperand(const Operand &o, unsigned size, uint32_t *val,
                         Fault *fault)
{
    switch (o.kind) {
      case OperandKind::Gpr:
        *val = state_.readGpr(static_cast<Reg>(o.reg), size);
        return true;
      case OperandKind::Gpr8:
        *val = state_.readGpr8(o.reg);
        return true;
      case OperandKind::Imm:
        *val = static_cast<uint32_t>(o.imm) & sizeMask(size);
        return true;
      case OperandKind::Mem: {
        uint64_t v;
        if (!load(effAddr(o.mem), size, &v, fault))
            return false;
        *val = static_cast<uint32_t>(v);
        return true;
      }
      default:
        el_panic("readOperand: bad kind");
    }
}

bool
Interpreter::writeOperand(const Operand &o, unsigned size, uint32_t val,
                          Fault *fault)
{
    switch (o.kind) {
      case OperandKind::Gpr:
        state_.writeGpr(static_cast<Reg>(o.reg), val, size);
        return true;
      case OperandKind::Gpr8:
        state_.writeGpr8(o.reg, static_cast<uint8_t>(val));
        return true;
      case OperandKind::Mem:
        return store(effAddr(o.mem), size, val, fault);
      default:
        el_panic("writeOperand: bad kind");
    }
}

bool
Interpreter::push32(uint32_t val, Fault *fault)
{
    uint32_t addr = state_.gpr[RegEsp] - 4;
    if (!store(addr, 4, val, fault))
        return false;
    state_.gpr[RegEsp] = addr;
    return true;
}

bool
Interpreter::pop32(uint32_t *val, Fault *fault)
{
    uint64_t v;
    if (!load(state_.gpr[RegEsp], 4, &v, fault))
        return false;
    *val = static_cast<uint32_t>(v);
    state_.gpr[RegEsp] += 4;
    return true;
}

bool
Interpreter::fpuCheckRead(uint8_t sti, uint32_t eip, Fault *fault)
{
    if (state_.fpu.isEmpty(sti)) {
        *fault = simpleFault(FaultKind::FpStackFault, eip);
        return false;
    }
    return true;
}

bool
Interpreter::fpuCheckPush(uint32_t eip, Fault *fault)
{
    // The slot that will become the new ST(0) must be empty.
    uint8_t slot = (state_.fpu.top + 7) & 7;
    if (state_.fpu.tag[slot] != FpTag::Empty) {
        *fault = simpleFault(FaultKind::FpStackFault, eip);
        return false;
    }
    return true;
}

StepResult
Interpreter::step()
{
    if (faultInjected(FaultSite::GuestFaultStorm)) {
        // Synthetic transient fault storm: nothing architectural
        // happened (state untouched), so recovery can simply retry.
        StepResult res;
        res.kind = StepKind::Fault;
        FaultInjector *fi = activeFaultInjector();
        static const FaultKind storm_kinds[] = {
            FaultKind::PageFault, FaultKind::DivideError,
            FaultKind::FpNumericError};
        res.fault = simpleFault(storm_kinds[fi ? fi->pick(3) : 0],
                                state_.eip);
        res.fault.injected = true;
        return res;
    }
    Insn insn;
    if (!decode(mem_, state_.eip, &insn)) {
        StepResult res;
        res.kind = StepKind::Fault;
        res.fault = simpleFault(insn.len == 0 ? FaultKind::PageFault
                                              : FaultKind::InvalidOpcode,
                                state_.eip);
        if (insn.len == 0)
            res.fault.addr = state_.eip;
        res.insn = insn;
        return res;
    }
    return execute(insn);
}

StepResult
Interpreter::execute(const Insn &insn)
{
    el_assert(state_.eip == insn.addr, "eip %08x != insn.addr %08x",
              state_.eip, insn.addr);
    const OpInfo &info = opInfo(insn.op);
    StepResult res;
    if (info.is_fp)
        res = execX87(insn);
    else if (info.is_mmx)
        res = execMmx(insn);
    else if (info.is_sse)
        res = execSse(insn);
    else if (insn.op == Op::Movs || insn.op == Op::Stos ||
             insn.op == Op::Lods)
        res = execString(insn);
    else
        res = execInteger(insn);
    res.insn = insn;
    if (res.kind == StepKind::Ok || res.kind == StepKind::Int)
        ++retired_;
    return res;
}

StepResult
Interpreter::execInteger(const Insn &insn)
{
    StepResult res;
    Fault fault;
    State &s = state_;
    unsigned size = insn.op_size;

    auto fail = [&]() {
        res.kind = StepKind::Fault;
        res.fault = fault;
        return res;
    };
    auto done = [&]() {
        s.eip = insn.next();
        return res;
    };

    switch (insn.op) {
      case Op::Nop:
      case Op::Cld:
      case Op::Std:
        if (insn.op == Op::Cld)
            s.setFlag(FlagDf, false);
        if (insn.op == Op::Std)
            s.setFlag(FlagDf, true);
        return done();

      case Op::Hlt:
        res.kind = StepKind::Halt;
        s.eip = insn.next();
        return res;

      case Op::Int:
        s.eip = insn.next();
        res.kind = StepKind::Int;
        res.vector = static_cast<uint8_t>(insn.src.imm);
        return res;

      case Op::Int3:
        fault = simpleFault(FaultKind::Breakpoint, insn.addr);
        return fail();

      case Op::Ud2:
        fault = simpleFault(FaultKind::InvalidOpcode, insn.addr);
        return fail();

      case Op::Mov: {
        uint32_t v;
        if (!readOperand(insn.src, size, &v, &fault))
            return fail();
        if (!writeOperand(insn.dst, size, v, &fault))
            return fail();
        return done();
      }

      case Op::Movzx:
      case Op::Movsx: {
        uint32_t v;
        if (!readOperand(insn.src, size, &v, &fault))
            return fail();
        uint32_t out;
        if (insn.op == Op::Movzx)
            out = v & sizeMask(size);
        else
            out = static_cast<uint32_t>(sext(v, size * 8));
        state_.writeGpr(static_cast<Reg>(insn.dst.reg), out, 4);
        return done();
      }

      case Op::Lea:
        state_.writeGpr(static_cast<Reg>(insn.dst.reg),
                        effAddr(insn.src.mem), size);
        return done();

      case Op::Xchg: {
        uint32_t a, b;
        if (!readOperand(insn.dst, size, &a, &fault))
            return fail();
        if (!readOperand(insn.src, size, &b, &fault))
            return fail();
        if (!writeOperand(insn.dst, size, b, &fault))
            return fail();
        if (!writeOperand(insn.src, size, a, &fault))
            return fail();
        return done();
      }

      case Op::Push: {
        uint32_t v;
        if (!readOperand(insn.dst, 4, &v, &fault))
            return fail();
        if (!push32(v, &fault))
            return fail();
        return done();
      }

      case Op::Pop: {
        uint32_t v;
        if (!pop32(&v, &fault))
            return fail();
        if (!writeOperand(insn.dst, 4, v, &fault)) {
            s.gpr[RegEsp] -= 4; // undo the pop for restartability
            return fail();
        }
        return done();
      }

      case Op::Cdq:
        s.gpr[RegEdx] = (s.gpr[RegEax] & 0x80000000u) ? 0xffffffffu : 0;
        return done();

      case Op::Sahf: {
        uint32_t ah = (s.gpr[RegEax] >> 8) & 0xff;
        uint32_t keep = FlagCf | FlagPf | FlagAf | FlagZf | FlagSf;
        s.eflags = (s.eflags & ~keep) | (ah & keep) | FlagsFixed;
        return done();
      }

      case Op::Lahf: {
        uint32_t fl = (s.eflags | FlagsFixed) & 0xff;
        s.gpr[RegEax] = (s.gpr[RegEax] & 0xffff00ffu) | (fl << 8);
        return done();
      }

      case Op::Add:
      case Op::Adc:
      case Op::Sub:
      case Op::Sbb:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Cmp:
      case Op::Test: {
        uint32_t a, b;
        if (!readOperand(insn.dst, size, &a, &fault))
            return fail();
        if (!readOperand(insn.src, size, &b, &fault))
            return fail();
        unsigned cin = s.flag(FlagCf) ? 1 : 0;
        uint32_t r = 0, fl = 0;
        switch (insn.op) {
          case Op::Add:
            r = a + b;
            fl = flagsAdd(a, b, 0, size);
            break;
          case Op::Adc:
            r = a + b + cin;
            fl = flagsAdd(a, b, cin, size);
            break;
          case Op::Sub:
          case Op::Cmp:
            r = a - b;
            fl = flagsSub(a, b, 0, size);
            break;
          case Op::Sbb:
            r = a - b - cin;
            fl = flagsSub(a, b, cin, size);
            break;
          case Op::And:
          case Op::Test:
            r = a & b;
            fl = flagsLogic(r, size);
            break;
          case Op::Or:
            r = a | b;
            fl = flagsLogic(r, size);
            break;
          case Op::Xor:
            r = a ^ b;
            fl = flagsLogic(r, size);
            break;
          default:
            el_panic("unreachable");
        }
        if (insn.op != Op::Cmp && insn.op != Op::Test) {
            if (!writeOperand(insn.dst, size, r & sizeMask(size), &fault))
                return fail();
        }
        s.setArithFlags(fl);
        return done();
      }

      case Op::Inc:
      case Op::Dec: {
        uint32_t a;
        if (!readOperand(insn.dst, size, &a, &fault))
            return fail();
        uint32_t r;
        uint32_t fl;
        if (insn.op == Op::Inc) {
            r = a + 1;
            fl = flagsAdd(a, 1, 0, size);
        } else {
            r = a - 1;
            fl = flagsSub(a, 1, 0, size);
        }
        if (!writeOperand(insn.dst, size, r & sizeMask(size), &fault))
            return fail();
        // CF is preserved by INC/DEC.
        fl = (fl & ~FlagCf) | (s.eflags & FlagCf);
        s.setArithFlags(fl);
        return done();
      }

      case Op::Neg: {
        uint32_t a;
        if (!readOperand(insn.dst, size, &a, &fault))
            return fail();
        uint32_t r = (0 - a) & sizeMask(size);
        uint32_t fl = flagsSub(0, a, 0, size);
        if (!writeOperand(insn.dst, size, r, &fault))
            return fail();
        s.setArithFlags(fl);
        return done();
      }

      case Op::Not: {
        uint32_t a;
        if (!readOperand(insn.dst, size, &a, &fault))
            return fail();
        if (!writeOperand(insn.dst, size, ~a & sizeMask(size), &fault))
            return fail();
        return done();
      }

      case Op::Imul2: {
        uint32_t a, b;
        if (!readOperand(insn.dst, size, &a, &fault))
            return fail();
        if (!readOperand(insn.src, size, &b, &fault))
            return fail();
        int64_t wide = static_cast<int64_t>(sext(a, size * 8)) *
                       sext(b, size * 8);
        uint32_t r = static_cast<uint32_t>(wide) & sizeMask(size);
        uint32_t fl = flagsZSP(r, size);
        if (wide != sext(r, size * 8))
            fl |= FlagCf | FlagOf;
        if (!writeOperand(insn.dst, size, r, &fault))
            return fail();
        s.setArithFlags(fl);
        return done();
      }

      case Op::Mul1:
      case Op::Imul1: {
        uint32_t b;
        if (!readOperand(insn.src, size, &b, &fault))
            return fail();
        el_assert(size == 4, "8/16-bit mul not modelled");
        uint64_t wide;
        if (insn.op == Op::Mul1) {
            wide = static_cast<uint64_t>(s.gpr[RegEax]) * b;
        } else {
            wide = static_cast<uint64_t>(
                static_cast<int64_t>(static_cast<int32_t>(s.gpr[RegEax])) *
                static_cast<int64_t>(static_cast<int32_t>(b)));
        }
        uint32_t lo = static_cast<uint32_t>(wide);
        uint32_t hi = static_cast<uint32_t>(wide >> 32);
        s.gpr[RegEax] = lo;
        s.gpr[RegEdx] = hi;
        uint32_t fl = flagsZSP(lo, size);
        bool over;
        if (insn.op == Op::Mul1)
            over = hi != 0;
        else
            over = wide != static_cast<uint64_t>(
                sext(lo, 32));
        if (over)
            fl |= FlagCf | FlagOf;
        s.setArithFlags(fl);
        return done();
      }

      case Op::Div:
      case Op::Idiv: {
        uint32_t b;
        if (!readOperand(insn.src, size, &b, &fault))
            return fail();
        el_assert(size == 4, "8/16-bit div not modelled");
        if (b == 0) {
            fault = simpleFault(FaultKind::DivideError, insn.addr);
            return fail();
        }
        uint64_t dividend = (static_cast<uint64_t>(s.gpr[RegEdx]) << 32) |
                            s.gpr[RegEax];
        if (insn.op == Op::Div) {
            uint64_t q = dividend / b;
            uint64_t r = dividend % b;
            if (q > 0xffffffffULL) {
                fault = simpleFault(FaultKind::DivideError, insn.addr);
                return fail();
            }
            s.gpr[RegEax] = static_cast<uint32_t>(q);
            s.gpr[RegEdx] = static_cast<uint32_t>(r);
        } else {
            int64_t sd = static_cast<int64_t>(dividend);
            int64_t sb = static_cast<int32_t>(b);
            if (sd == INT64_MIN && sb == -1) {
                fault = simpleFault(FaultKind::DivideError, insn.addr);
                return fail();
            }
            int64_t q = sd / sb;
            int64_t r = sd % sb;
            if (q > INT32_MAX || q < INT32_MIN) {
                fault = simpleFault(FaultKind::DivideError, insn.addr);
                return fail();
            }
            s.gpr[RegEax] = static_cast<uint32_t>(q);
            s.gpr[RegEdx] = static_cast<uint32_t>(r);
        }
        return done();
      }

      case Op::Shl:
      case Op::Shr:
      case Op::Sar:
      case Op::Rol:
      case Op::Ror: {
        uint32_t a, cnt_raw;
        if (!readOperand(insn.dst, size, &a, &fault))
            return fail();
        if (!readOperand(insn.src, 1, &cnt_raw, &fault))
            return fail();
        unsigned cnt = cnt_raw & 31;
        if (cnt == 0)
            return done();
        unsigned nbits = size * 8;
        uint32_t mask = sizeMask(size);
        uint32_t r = 0;
        uint32_t fl = s.eflags & FlagsArith;
        bool cf = false;
        switch (insn.op) {
          case Op::Shl:
            r = (cnt >= nbits) ? 0 : (a << cnt) & mask;
            cf = cnt <= nbits && (a >> (nbits - cnt)) & 1;
            fl = flagsZSP(r, size) | (cf ? uint32_t{FlagCf} : 0u);
            if (((r & signBit(size)) != 0) != cf)
                fl |= (cnt == 1) ? uint32_t{FlagOf} : 0u;
            break;
          case Op::Shr:
            r = (cnt >= nbits) ? 0 : (a & mask) >> cnt;
            cf = cnt <= nbits && (a >> (cnt - 1)) & 1;
            fl = flagsZSP(r, size) | (cf ? uint32_t{FlagCf} : 0u);
            if (cnt == 1 && (a & signBit(size)))
                fl |= FlagOf;
            break;
          case Op::Sar: {
            int32_t sa = static_cast<int32_t>(sext(a, nbits));
            r = static_cast<uint32_t>(sa >> (cnt >= nbits ? nbits - 1
                                                          : cnt)) & mask;
            cf = (sa >> (cnt - 1 >= nbits ? nbits - 1 : cnt - 1)) & 1;
            fl = flagsZSP(r, size) | (cf ? uint32_t{FlagCf} : 0u);
            break;
          }
          case Op::Rol: {
            unsigned c = cnt % nbits;
            uint32_t av = a & mask;
            r = c ? ((av << c) | (av >> (nbits - c))) & mask : av;
            cf = r & 1;
            fl = (fl & ~(FlagCf | FlagOf)) | (cf ? uint32_t{FlagCf} : 0u);
            if (cnt == 1 && (((r & signBit(size)) != 0) != cf))
                fl |= FlagOf;
            break;
          }
          case Op::Ror: {
            unsigned c = cnt % nbits;
            uint32_t av = a & mask;
            r = c ? ((av >> c) | (av << (nbits - c))) & mask : av;
            cf = (r & signBit(size)) != 0;
            fl = (fl & ~(FlagCf | FlagOf)) | (cf ? uint32_t{FlagCf} : 0u);
            if (cnt == 1 &&
                (((r & signBit(size)) != 0) !=
                 ((r & (signBit(size) >> 1)) != 0))) {
                fl |= FlagOf;
            }
            break;
          }
          default:
            el_panic("unreachable");
        }
        if (!writeOperand(insn.dst, size, r, &fault))
            return fail();
        s.setArithFlags(fl);
        return done();
      }

      case Op::Jcc:
        if (condEval(insn.cond, s.eflags))
            s.eip = insn.target();
        else
            s.eip = insn.next();
        return res;

      case Op::Jmp:
        s.eip = insn.target();
        return res;

      case Op::JmpInd: {
        uint32_t t;
        if (!readOperand(insn.src, 4, &t, &fault))
            return fail();
        s.eip = t;
        return res;
      }

      case Op::Call: {
        if (!push32(insn.next(), &fault))
            return fail();
        s.eip = insn.target();
        return res;
      }

      case Op::CallInd: {
        uint32_t t;
        if (!readOperand(insn.src, 4, &t, &fault))
            return fail();
        if (!push32(insn.next(), &fault))
            return fail();
        s.eip = t;
        return res;
      }

      case Op::Ret: {
        uint32_t t;
        if (!pop32(&t, &fault))
            return fail();
        s.gpr[RegEsp] += static_cast<uint32_t>(insn.src.imm);
        s.eip = t;
        return res;
      }

      case Op::Leave: {
        uint32_t saved_esp = s.gpr[RegEsp];
        s.gpr[RegEsp] = s.gpr[RegEbp];
        uint32_t v;
        if (!pop32(&v, &fault)) {
            s.gpr[RegEsp] = saved_esp;
            return fail();
        }
        s.gpr[RegEbp] = v;
        return done();
      }

      case Op::Setcc: {
        uint32_t v = condEval(insn.cond, s.eflags) ? 1 : 0;
        if (!writeOperand(insn.dst, 1, v, &fault))
            return fail();
        return done();
      }

      case Op::Cmovcc: {
        uint32_t v;
        if (!readOperand(insn.src, size, &v, &fault))
            return fail();
        if (condEval(insn.cond, s.eflags))
            state_.writeGpr(static_cast<Reg>(insn.dst.reg), v, size);
        return done();
      }

      default:
        fault = simpleFault(FaultKind::InvalidOpcode, insn.addr);
        return fail();
    }
}

StepResult
Interpreter::execX87(const Insn &insn)
{
    StepResult res;
    Fault fault;
    State &s = state_;
    FpuState &fpu = s.fpu;

    auto fail = [&]() {
        res.kind = StepKind::Fault;
        res.fault = fault;
        return res;
    };
    auto done = [&]() {
        s.eip = insn.next();
        return res;
    };

    switch (insn.op) {
      case Op::Fninit:
        fpu.init();
        return done();

      case Op::Fld1:
      case Op::Fldz: {
        if (!fpuCheckPush(insn.addr, &fault))
            return fail();
        fpu.pushTop();
        fpu.writeSt(0, insn.op == Op::Fld1 ? 1.0L : 0.0L);
        return done();
      }

      case Op::Fld: {
        long double v;
        if (insn.src.kind == OperandKind::St) {
            if (!fpuCheckRead(insn.src.reg, insn.addr, &fault))
                return fail();
            v = fpu.readSt(insn.src.reg);
        } else {
            uint64_t bits;
            if (!load(effAddr(insn.src.mem), insn.op_size, &bits, &fault))
                return fail();
            if (insn.op_size == 4) {
                float f;
                std::memcpy(&f, &bits, 4);
                v = f;
            } else {
                double d;
                std::memcpy(&d, &bits, 8);
                v = d;
            }
        }
        if (!fpuCheckPush(insn.addr, &fault))
            return fail();
        fpu.pushTop();
        fpu.writeSt(0, v);
        return done();
      }

      case Op::Fild: {
        uint64_t bits;
        if (!load(effAddr(insn.src.mem), 4, &bits, &fault))
            return fail();
        if (!fpuCheckPush(insn.addr, &fault))
            return fail();
        fpu.pushTop();
        fpu.writeSt(0, static_cast<long double>(
            static_cast<int32_t>(bits)));
        return done();
      }

      case Op::Fst: {
        if (!fpuCheckRead(0, insn.addr, &fault))
            return fail();
        long double v = fpu.readSt(0);
        if (insn.dst.kind == OperandKind::St) {
            fpu.writeSt(insn.dst.reg, v);
        } else {
            uint64_t bits = 0;
            if (insn.op_size == 4) {
                float f = static_cast<float>(v);
                std::memcpy(&bits, &f, 4);
            } else {
                double d = static_cast<double>(v);
                std::memcpy(&bits, &d, 8);
            }
            if (!store(effAddr(insn.dst.mem), insn.op_size, bits, &fault))
                return fail();
        }
        if (insn.fp_pop)
            fpu.popTop();
        return done();
      }

      case Op::Fistp: {
        if (!fpuCheckRead(0, insn.addr, &fault))
            return fail();
        long double v = fpu.readSt(0);
        int64_t wide = std::llrintl(v);
        uint32_t out;
        if (std::isnan(static_cast<double>(v)) || wide > INT32_MAX ||
            wide < INT32_MIN) {
            out = 0x80000000u; // x87 integer indefinite
        } else {
            out = static_cast<uint32_t>(static_cast<int32_t>(wide));
        }
        if (!store(effAddr(insn.dst.mem), 4, out, &fault))
            return fail();
        fpu.popTop();
        return done();
      }

      case Op::Fadd:
      case Op::Fsub:
      case Op::Fsubr:
      case Op::Fmul:
      case Op::Fdiv:
      case Op::Fdivr: {
        long double a, b;
        uint8_t dst_sti;
        if (insn.src.kind == OperandKind::Mem) {
            // ST(0) = ST(0) op mem.
            if (!fpuCheckRead(0, insn.addr, &fault))
                return fail();
            uint64_t bits;
            if (!load(effAddr(insn.src.mem), insn.op_size, &bits, &fault))
                return fail();
            if (insn.op_size == 4) {
                float f;
                std::memcpy(&f, &bits, 4);
                b = f;
            } else {
                double d;
                std::memcpy(&d, &bits, 8);
                b = d;
            }
            a = fpu.readSt(0);
            dst_sti = 0;
        } else {
            uint8_t dst_i = insn.dst.reg;
            uint8_t src_i = insn.src.reg;
            if (!fpuCheckRead(dst_i, insn.addr, &fault) ||
                !fpuCheckRead(src_i, insn.addr, &fault)) {
                return fail();
            }
            a = fpu.readSt(dst_i);
            b = fpu.readSt(src_i);
            dst_sti = dst_i;
        }
        long double r;
        switch (insn.op) {
          case Op::Fadd:
            r = a + b;
            break;
          case Op::Fsub:
            r = a - b;
            break;
          case Op::Fsubr:
            r = b - a;
            break;
          case Op::Fmul:
            r = a * b;
            break;
          case Op::Fdiv:
            r = a / b;
            break;
          case Op::Fdivr:
            r = b / a;
            break;
          default:
            el_panic("unreachable");
        }
        fpu.writeSt(dst_sti, r);
        if (insn.fp_pop)
            fpu.popTop();
        return done();
      }

      case Op::Fxch: {
        uint8_t i = insn.dst.reg;
        if (!fpuCheckRead(0, insn.addr, &fault) ||
            !fpuCheckRead(i, insn.addr, &fault)) {
            return fail();
        }
        long double a = fpu.readSt(0);
        long double b = fpu.readSt(i);
        fpu.writeSt(0, b);
        fpu.writeSt(i, a);
        return done();
      }

      case Op::Fchs:
      case Op::Fabs:
      case Op::Fsqrt: {
        if (!fpuCheckRead(0, insn.addr, &fault))
            return fail();
        long double v = fpu.readSt(0);
        if (insn.op == Op::Fchs)
            v = -v;
        else if (insn.op == Op::Fabs)
            v = v < 0 ? -v : v;
        else
            v = sqrtl(v); // negative input yields NaN (masked response)
        fpu.writeSt(0, v);
        return done();
      }

      case Op::Fcomi: {
        uint8_t i = insn.src.reg;
        if (!fpuCheckRead(0, insn.addr, &fault) ||
            !fpuCheckRead(i, insn.addr, &fault)) {
            return fail();
        }
        long double a = fpu.readSt(0);
        long double b = fpu.readSt(i);
        uint32_t fl = 0;
        if (std::isnan(static_cast<double>(a)) ||
            std::isnan(static_cast<double>(b))) {
            fl = FlagZf | FlagPf | FlagCf;
        } else if (a == b) {
            fl = FlagZf;
        } else if (a < b) {
            fl = FlagCf;
        }
        s.setArithFlags(fl);
        if (insn.fp_pop)
            fpu.popTop();
        return done();
      }

      case Op::Fnstsw: {
        uint32_t sw = fpu.statusWord();
        s.writeGpr(RegEax, sw, 2);
        return done();
      }

      default:
        fault = simpleFault(FaultKind::InvalidOpcode, insn.addr);
        return fail();
    }
}

StepResult
Interpreter::execMmx(const Insn &insn)
{
    StepResult res;
    Fault fault;
    State &s = state_;
    FpuState &fpu = s.fpu;

    auto fail = [&]() {
        res.kind = StepKind::Fault;
        res.fault = fault;
        return res;
    };
    auto done = [&]() {
        s.eip = insn.next();
        return res;
    };

    auto readMmOperand = [&](const Operand &o, uint64_t *val) {
        if (o.kind == OperandKind::Mm) {
            *val = fpu.readMm(o.reg);
            return true;
        }
        el_assert(o.isMem(), "bad MMX operand");
        return load(effAddr(o.mem), 8, val, &fault);
    };

    switch (insn.op) {
      case Op::Emms:
        fpu.tag.fill(FpTag::Empty);
        return done();

      case Op::Movd: {
        if (insn.dst.kind == OperandKind::Mm) {
            uint32_t v;
            if (!readOperand(insn.src, 4, &v, &fault))
                return fail();
            fpu.writeMm(insn.dst.reg, v);
        } else {
            uint64_t v = fpu.readMm(insn.src.reg);
            // MOVD reads the register without changing tags/TOS? On real
            // hardware every MMX instruction resets TOS and tags; model
            // that by re-writing the register value.
            fpu.writeMm(insn.src.reg, v);
            if (!writeOperand(insn.dst, 4, static_cast<uint32_t>(v),
                              &fault)) {
                return fail();
            }
        }
        return done();
      }

      case Op::MovqMm: {
        if (insn.dst.kind == OperandKind::Mm) {
            uint64_t v;
            if (!readMmOperand(insn.src, &v))
                return fail();
            fpu.writeMm(insn.dst.reg, v);
        } else {
            uint64_t v = fpu.readMm(insn.src.reg);
            fpu.writeMm(insn.src.reg, v);
            if (!store(effAddr(insn.dst.mem), 8, v, &fault))
                return fail();
        }
        return done();
      }

      case Op::Paddb:
      case Op::Paddw:
      case Op::Paddd:
      case Op::Psubb:
      case Op::Psubw:
      case Op::Psubd:
      case Op::Pand:
      case Op::Por:
      case Op::Pxor:
      case Op::Pmullw: {
        uint64_t a = fpu.readMm(insn.dst.reg);
        uint64_t b;
        if (!readMmOperand(insn.src, &b))
            return fail();
        uint64_t r = 0;
        auto lanes = [&](unsigned lane_bits, auto fn) {
            unsigned n = 64 / lane_bits;
            for (unsigned i = 0; i < n; ++i) {
                uint64_t la = bits(a, i * lane_bits, lane_bits);
                uint64_t lb = bits(b, i * lane_bits, lane_bits);
                r = insertBits(r, i * lane_bits, lane_bits, fn(la, lb));
            }
        };
        switch (insn.op) {
          case Op::Paddb:
            lanes(8, [](uint64_t x, uint64_t y) { return x + y; });
            break;
          case Op::Paddw:
            lanes(16, [](uint64_t x, uint64_t y) { return x + y; });
            break;
          case Op::Paddd:
            lanes(32, [](uint64_t x, uint64_t y) { return x + y; });
            break;
          case Op::Psubb:
            lanes(8, [](uint64_t x, uint64_t y) { return x - y; });
            break;
          case Op::Psubw:
            lanes(16, [](uint64_t x, uint64_t y) { return x - y; });
            break;
          case Op::Psubd:
            lanes(32, [](uint64_t x, uint64_t y) { return x - y; });
            break;
          case Op::Pand:
            r = a & b;
            break;
          case Op::Por:
            r = a | b;
            break;
          case Op::Pxor:
            r = a ^ b;
            break;
          case Op::Pmullw:
            lanes(16, [](uint64_t x, uint64_t y) {
                return static_cast<uint64_t>(
                    static_cast<int16_t>(x) * static_cast<int16_t>(y));
            });
            break;
          default:
            el_panic("unreachable");
        }
        fpu.writeMm(insn.dst.reg, r);
        return done();
      }

      default:
        fault = simpleFault(FaultKind::InvalidOpcode, insn.addr);
        return fail();
    }
}

StepResult
Interpreter::execSse(const Insn &insn)
{
    StepResult res;
    Fault fault;
    State &s = state_;

    auto fail = [&]() {
        res.kind = StepKind::Fault;
        res.fault = fault;
        return res;
    };
    auto done = [&]() {
        s.eip = insn.next();
        return res;
    };

    auto load128 = [&](uint32_t addr, XmmReg *out, bool aligned) {
        if (aligned && (addr & 15)) {
            fault = simpleFault(FaultKind::GeneralProtect, insn.addr);
            fault.addr = addr;
            return false;
        }
        auto r = mem_.readBytes(addr, out->bytes.data(), 16);
        if (!r.ok()) {
            fault = pageFault(insn.addr,
                              static_cast<uint32_t>(r.fault_addr), false);
            return false;
        }
        return true;
    };
    auto store128 = [&](uint32_t addr, const XmmReg &v, bool aligned) {
        if (aligned && (addr & 15)) {
            fault = simpleFault(FaultKind::GeneralProtect, insn.addr);
            fault.addr = addr;
            return false;
        }
        auto r = mem_.writeBytes(addr, v.bytes.data(), 16);
        if (!r.ok()) {
            fault = pageFault(insn.addr,
                              static_cast<uint32_t>(r.fault_addr), true);
            return false;
        }
        return true;
    };

    /** Read a full 16-byte source (register or memory). */
    auto readX = [&](const Operand &o, XmmReg *out, bool aligned) {
        if (o.kind == OperandKind::Xmm) {
            *out = s.xmm[o.reg];
            return true;
        }
        return load128(effAddr(o.mem), out, aligned);
    };

    switch (insn.op) {
      case Op::Movaps:
      case Op::Movups:
      case Op::Movdqa: {
        bool aligned = insn.op != Op::Movups;
        if (insn.dst.kind == OperandKind::Xmm) {
            XmmReg v;
            if (!readX(insn.src, &v, aligned))
                return fail();
            s.xmm[insn.dst.reg] = v;
        } else {
            if (!store128(effAddr(insn.dst.mem), s.xmm[insn.src.reg],
                          aligned)) {
                return fail();
            }
        }
        return done();
      }

      case Op::Movss: {
        if (insn.dst.kind == OperandKind::Xmm &&
            insn.src.kind == OperandKind::Xmm) {
            s.xmm[insn.dst.reg].setU32(0, s.xmm[insn.src.reg].u32(0));
        } else if (insn.dst.kind == OperandKind::Xmm) {
            uint64_t v;
            if (!load(effAddr(insn.src.mem), 4, &v, &fault))
                return fail();
            XmmReg r{};
            r.setU32(0, static_cast<uint32_t>(v));
            s.xmm[insn.dst.reg] = r; // load zeroes the upper lanes
        } else {
            if (!store(effAddr(insn.dst.mem), 4,
                       s.xmm[insn.src.reg].u32(0), &fault)) {
                return fail();
            }
        }
        return done();
      }

      case Op::MovsdX: {
        if (insn.dst.kind == OperandKind::Xmm &&
            insn.src.kind == OperandKind::Xmm) {
            s.xmm[insn.dst.reg].setU64(0, s.xmm[insn.src.reg].u64(0));
        } else if (insn.dst.kind == OperandKind::Xmm) {
            uint64_t v;
            if (!load(effAddr(insn.src.mem), 8, &v, &fault))
                return fail();
            XmmReg r{};
            r.setU64(0, v);
            s.xmm[insn.dst.reg] = r;
        } else {
            if (!store(effAddr(insn.dst.mem), 8,
                       s.xmm[insn.src.reg].u64(0), &fault)) {
                return fail();
            }
        }
        return done();
      }

      case Op::Addps:
      case Op::Subps:
      case Op::Mulps:
      case Op::Divps: {
        XmmReg b;
        if (!readX(insn.src, &b, true))
            return fail();
        XmmReg &d = s.xmm[insn.dst.reg];
        for (unsigned i = 0; i < 4; ++i) {
            float x = d.f32(i), y = b.f32(i);
            float r = insn.op == Op::Addps ? x + y
                    : insn.op == Op::Subps ? x - y
                    : insn.op == Op::Mulps ? x * y
                                           : x / y;
            d.setF32(i, r);
        }
        return done();
      }

      case Op::Addss:
      case Op::Subss:
      case Op::Mulss:
      case Op::Divss:
      case Op::Sqrtss: {
        float y;
        if (insn.src.kind == OperandKind::Xmm) {
            y = s.xmm[insn.src.reg].f32(0);
        } else {
            uint64_t v;
            if (!load(effAddr(insn.src.mem), 4, &v, &fault))
                return fail();
            uint32_t v32 = static_cast<uint32_t>(v);
            std::memcpy(&y, &v32, 4);
        }
        XmmReg &d = s.xmm[insn.dst.reg];
        float x = d.f32(0);
        float r;
        switch (insn.op) {
          case Op::Addss:
            r = x + y;
            break;
          case Op::Subss:
            r = x - y;
            break;
          case Op::Mulss:
            r = x * y;
            break;
          case Op::Divss:
            r = x / y;
            break;
          case Op::Sqrtss:
            r = std::sqrt(y);
            break;
          default:
            el_panic("unreachable");
        }
        d.setF32(0, r);
        return done();
      }

      case Op::Addpd:
      case Op::Subpd:
      case Op::Mulpd: {
        XmmReg b;
        if (!readX(insn.src, &b, true))
            return fail();
        XmmReg &d = s.xmm[insn.dst.reg];
        for (unsigned i = 0; i < 2; ++i) {
            double x = d.f64(i), y = b.f64(i);
            double r = insn.op == Op::Addpd ? x + y
                     : insn.op == Op::Subpd ? x - y
                                            : x * y;
            d.setF64(i, r);
        }
        return done();
      }

      case Op::Addsd:
      case Op::Mulsd: {
        double y;
        if (insn.src.kind == OperandKind::Xmm) {
            y = s.xmm[insn.src.reg].f64(0);
        } else {
            uint64_t v;
            if (!load(effAddr(insn.src.mem), 8, &v, &fault))
                return fail();
            std::memcpy(&y, &v, 8);
        }
        XmmReg &d = s.xmm[insn.dst.reg];
        double x = d.f64(0);
        d.setF64(0, insn.op == Op::Addsd ? x + y : x * y);
        return done();
      }

      case Op::Andps:
      case Op::Xorps: {
        XmmReg b;
        if (!readX(insn.src, &b, true))
            return fail();
        XmmReg &d = s.xmm[insn.dst.reg];
        for (unsigned i = 0; i < 2; ++i) {
            uint64_t x = d.u64(i), y = b.u64(i);
            d.setU64(i, insn.op == Op::Andps ? (x & y) : (x ^ y));
        }
        return done();
      }

      case Op::PadddX: {
        XmmReg b;
        if (!readX(insn.src, &b, true))
            return fail();
        XmmReg &d = s.xmm[insn.dst.reg];
        for (unsigned i = 0; i < 4; ++i)
            d.setU32(i, d.u32(i) + b.u32(i));
        return done();
      }

      case Op::Ucomiss: {
        float y;
        if (insn.src.kind == OperandKind::Xmm) {
            y = s.xmm[insn.src.reg].f32(0);
        } else {
            uint64_t v;
            if (!load(effAddr(insn.src.mem), 4, &v, &fault))
                return fail();
            uint32_t v32 = static_cast<uint32_t>(v);
            std::memcpy(&y, &v32, 4);
        }
        float x = s.xmm[insn.dst.reg].f32(0);
        uint32_t fl = 0;
        if (std::isnan(x) || std::isnan(y))
            fl = FlagZf | FlagPf | FlagCf;
        else if (x == y)
            fl = FlagZf;
        else if (x < y)
            fl = FlagCf;
        s.setArithFlags(fl);
        return done();
      }

      case Op::Cvtps2pd: {
        XmmReg b;
        if (!readX(insn.src, &b, true))
            return fail();
        XmmReg &d = s.xmm[insn.dst.reg];
        double lo = b.f32(0);
        double hi = b.f32(1);
        d.setF64(0, lo);
        d.setF64(1, hi);
        return done();
      }

      case Op::Cvtpd2ps: {
        XmmReg b;
        if (!readX(insn.src, &b, true))
            return fail();
        XmmReg &d = s.xmm[insn.dst.reg];
        float lo = static_cast<float>(b.f64(0));
        float hi = static_cast<float>(b.f64(1));
        XmmReg r{};
        r.setF32(0, lo);
        r.setF32(1, hi);
        d = r;
        return done();
      }

      case Op::Cvtsi2ss: {
        uint32_t v;
        if (!readOperand(insn.src, 4, &v, &fault))
            return fail();
        s.xmm[insn.dst.reg].setF32(
            0, static_cast<float>(static_cast<int32_t>(v)));
        return done();
      }

      case Op::Cvttss2si: {
        float y;
        if (insn.src.kind == OperandKind::Xmm) {
            y = s.xmm[insn.src.reg].f32(0);
        } else {
            uint64_t v;
            if (!load(effAddr(insn.src.mem), 4, &v, &fault))
                return fail();
            uint32_t v32 = static_cast<uint32_t>(v);
            std::memcpy(&y, &v32, 4);
        }
        int32_t out;
        if (std::isnan(y) || y >= 2147483648.0f || y < -2147483648.0f)
            out = INT32_MIN;
        else
            out = static_cast<int32_t>(y);
        state_.writeGpr(static_cast<Reg>(insn.dst.reg),
                        static_cast<uint32_t>(out), 4);
        return done();
      }

      default:
        fault = simpleFault(FaultKind::InvalidOpcode, insn.addr);
        return fail();
    }
}

StepResult
Interpreter::execString(const Insn &insn)
{
    StepResult res;
    Fault fault;
    State &s = state_;
    unsigned size = insn.op_size;
    int32_t step = s.flag(FlagDf) ? -static_cast<int32_t>(size)
                                  : static_cast<int32_t>(size);

    auto fail = [&]() {
        res.kind = StepKind::Fault;
        res.fault = fault;
        return res;
    };

    auto one = [&]() -> bool {
        switch (insn.op) {
          case Op::Movs: {
            uint64_t v;
            if (!load(s.gpr[RegEsi], size, &v, &fault))
                return false;
            if (!store(s.gpr[RegEdi], size, v, &fault))
                return false;
            s.gpr[RegEsi] += static_cast<uint32_t>(step);
            s.gpr[RegEdi] += static_cast<uint32_t>(step);
            return true;
          }
          case Op::Stos: {
            uint64_t v = s.gpr[RegEax] & sizeMask(size);
            if (!store(s.gpr[RegEdi], size, v, &fault))
                return false;
            s.gpr[RegEdi] += static_cast<uint32_t>(step);
            return true;
          }
          case Op::Lods: {
            uint64_t v;
            if (!load(s.gpr[RegEsi], size, &v, &fault))
                return false;
            if (size == 1)
                s.writeGpr8(RegAl, static_cast<uint8_t>(v));
            else
                s.writeGpr(RegEax, static_cast<uint32_t>(v), size);
            s.gpr[RegEsi] += static_cast<uint32_t>(step);
            return true;
          }
          default:
            el_panic("unreachable");
        }
    };

    if (!insn.rep) {
        if (!one())
            return fail();
    } else {
        while (s.gpr[RegEcx] != 0) {
            if (!one())
                return fail(); // restartable: regs reflect progress
            s.gpr[RegEcx] -= 1;
        }
    }
    s.eip = insn.next();
    return res;
}

} // namespace el::ia32
