/**
 * @file
 * `el_run`: the command-line front end of the execution harness.
 *
 * Runs one synthetic workload personality under the IA-32 EL runtime
 * with the observability layer wired up: `--trace-out` captures the
 * translation-lifecycle trace as Chrome trace-event JSON (loadable in
 * chrome://tracing or ui.perfetto.dev) and `--report-json` writes the
 * machine-readable run report with Figure-6 cycle attribution and
 * per-block cycle rows. `--validate-trace` re-reads a trace file and
 * checks it against the Chrome trace-event shape (used by CI so the
 * artifact upload never ships a malformed file).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "btlib/abi.hh"
#include "core/audit.hh"
#include "core/checkpoint.hh"
#include "core/postmortem.hh"
#include "core/report.hh"
#include "guest/workloads.hh"
#include "ia32/assembler.hh"
#include "harness/exec.hh"
#include "persist/store.hh"
#include "support/buildinfo.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/profile.hh"
#include "support/sentinel.hh"
#include "support/trace.hh"

namespace
{

using namespace el;

// Exit codes (documented in README.md). They answer "whose fault was
// it": the caller's (usage), the environment's (I/O), the guest's
// (fault), the translator's (internal), or a caught miscompile
// (divergence — the sentinel's verdict takes precedence because it
// means translated execution was wrong, whatever else happened).
// exit_audit is weaker than all of those: the guest ran and exited
// cleanly but the accounting books did not close, so the run's
// *numbers* cannot be trusted — it only ever upgrades an exit_ok.
constexpr int exit_ok = 0;
constexpr int exit_usage = 1;
constexpr int exit_io = 2;
constexpr int exit_guest_fault = 10;
constexpr int exit_internal = 20;
constexpr int exit_divergence = 30;
constexpr int exit_audit = 40;

// Whether --audit defaults on; CMake sets this to 1 in Debug builds
// so every local debug run and the sanitizer CI jobs audit for free.
#ifndef EL_AUDIT_DEFAULT
#define EL_AUDIT_DEFAULT 0
#endif

void
usage()
{
    std::fprintf(
        stderr,
        "usage: el_run [options]\n"
        "  --workload=<name>      personality to run (default: gzip)\n"
        "  --list                 list known workloads and exit\n"
        "  --threads=<n>          hot-translation worker threads\n"
        "  --deterministic        deterministic pipeline adoption\n"
        "  --heat-threshold=<n>   block-use count registering hot\n"
        "  --hot-batch=<n>        candidates batched per session\n"
        "  --cache-capacity=<n>   bound the code cache (0 = unbounded)\n"
        "  --cache-dir=<dir>      persistent translation-artifact store:\n"
        "                         load matching hot artifacts before the\n"
        "                         run (warm start), journal new ones\n"
        "                         during it, and compact at exit\n"
        "  --checkpoint-dir=<dir> periodic in-run checkpoints of guest\n"
        "                         state (registers, dirty memory pages,\n"
        "                         OS state); one rolling file, replaced\n"
        "                         atomically on each capture\n"
        "  --checkpoint-period=<n> simulated cycles between captures\n"
        "                         (default 1000000)\n"
        "  --resume               restore the checkpoint from\n"
        "                         --checkpoint-dir and continue the\n"
        "                         interrupted run; a missing or corrupt\n"
        "                         checkpoint warns and starts cold\n"
        "  --fault=<site>:<p>     fire <site> with p/1024 probability\n"
        "                         (sites: btos_alloc, cold_xlate_abort,\n"
        "                         hot_xlate_abort, cache_exhaust,\n"
        "                         guest_fault_storm, miscompile,\n"
        "                         store_corrupt, acct_skew; crash\n"
        "                         points that\n"
        "                         _exit(43) the process mid-protocol:\n"
        "                         crash_journal_append,\n"
        "                         crash_store_rename, crash_checkpoint,\n"
        "                         crash_adopt)\n"
        "  --fault-seed=<n>       fault-injection PRNG seed\n"
        "  --selfcheck=<rate>     shadow-execute every <rate>-th\n"
        "                         dispatched region through the\n"
        "                         interpreter oracle; divergences\n"
        "                         quarantine the translation and el_run\n"
        "                         exits 30 (1 = check everything)\n"
        "  --trace-out=<file>     write Chrome trace-event JSON\n"
        "  --report-json=<file>   write the machine-readable run report\n"
        "  --profile-out=<file>   write the execution profile JSON\n"
        "                         (render it with el_prof)\n"
        "  --profile-period=<n>   profile sample period, simulated\n"
        "                         cycles (default 50000)\n"
        "  --profile-topk=<n>     indirect-target table size per site\n"
        "                         (default 8)\n"
        "  --profile-ring=<n>     time-series ring capacity (default\n"
        "                         512; oldest samples dropped)\n"
        "  --validate-trace=<f>   validate a trace file and exit\n"
        "  --metrics-out=<file>   write live telemetry snapshots as\n"
        "                         NDJSON (one el-metrics object per\n"
        "                         sampling period)\n"
        "  --metrics-period=<n>   snapshot period, simulated cycles\n"
        "                         (default 50000)\n"
        "  --postmortem-out=<f>   postmortem bundle path (default\n"
        "                         postmortem.json); written on any\n"
        "                         abnormal exit (codes 10/20/30),\n"
        "                         after injected faults fired, or\n"
        "                         when --dump-on-exit is given\n"
        "  --dump-on-exit         write the postmortem bundle even on\n"
        "                         a clean exit\n"
        "  --audit                cross-check the run's accounting:\n"
        "                         periodic cycle-closure audits during\n"
        "                         the run plus a full audit (flight\n"
        "                         cross-counts, provenance legality,\n"
        "                         schema self-checks) at exit;\n"
        "                         violations exit 40 (default on in\n"
        "                         Debug builds)\n"
        "  --no-audit             disable the accounting audit\n"
        "  --audit-period=<n>     simulated cycles between in-run\n"
        "                         closure audits (default 1000000)\n"
        "  --no-flight            disable the always-on flight\n"
        "                         recorder + provenance ledger (A/B\n"
        "                         overhead comparisons)\n"
        "  --flight-ring=<n>      per-thread flight ring capacity in\n"
        "                         events (default 1024)\n"
        "  --log-level=<l>        err|warn|info|debug (default warn;\n"
        "                         EL_LOG env var is the fallback)\n");
}

/**
 * Diagnostic guest that dereferences an unmapped address with no
 * handler registered: terminates on an unhandled page fault. Exists so
 * the CLI tests (and users) can exercise the guest-failure exit code
 * without fault injection.
 */
guest::Workload
buildFaulter()
{
    ia32::Assembler as(guest::Layout::code_base);
    as.movRI(ia32::RegEbx, 0x40); // unmapped low page
    as.movRM(ia32::RegEax, ia32::memb(ia32::RegEbx, 0));
    as.movRI(ia32::RegEax, 0);
    as.intN(btlib::linux_abi::int_vector); // never reached

    guest::Workload w;
    w.name = "faulter";
    w.kernel = "diagnostic";
    w.image.name = "faulter";
    w.image.entry = guest::Layout::code_base;
    w.image.addCode(guest::Layout::code_base, as.finish());
    w.image.addData(guest::Layout::data_base, 0x1000);
    return w;
}

std::vector<guest::Workload>
allWorkloads()
{
    std::vector<guest::Workload> all = guest::specIntSuite();
    for (auto &w : guest::specFpSuite())
        all.push_back(std::move(w));
    for (auto &w : guest::sysmarkSuite())
        all.push_back(std::move(w));
    for (auto &w : guest::adversarialSuite())
        all.push_back(std::move(w));
    all.push_back(buildFaulter());
    return all;
}

bool
parseFaultSite(const std::string &name, FaultSite *out)
{
    for (size_t s = 0; s < num_fault_sites; ++s) {
        FaultSite site = static_cast<FaultSite>(s);
        if (name == faultSiteName(site)) {
            *out = site;
            return true;
        }
    }
    return false;
}

int
validateTraceFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        std::fprintf(stderr, "el_run: cannot read %s\n", path.c_str());
        return exit_io;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    std::string error;
    if (!trace::validateChromeTrace(ss.str(), &error)) {
        std::fprintf(stderr, "el_run: %s: invalid trace: %s\n",
                     path.c_str(), error.c_str());
        return exit_io;
    }
    std::printf("%s: valid Chrome trace\n", path.c_str());
    return exit_ok;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload_name = "gzip";
    std::string trace_out, report_json, profile_out, cache_dir;
    std::string metrics_out, postmortem_out = "postmortem.json";
    std::string checkpoint_dir;
    uint64_t checkpoint_period = 1000000;
    bool resume = false;
    uint64_t metrics_period = 50000;
    bool dump_on_exit = false;
    core::Options options;
    options.audit = EL_AUDIT_DEFAULT != 0;
    prof::Config prof_cfg;
    sentinel::Config sentinel_cfg;
    bool list = false;

    initLogLevelFromEnv(); // Explicit --log-level below overrides.

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // An empty value after '=' counts as no match, so "--flag="
        // falls through to the unknown-argument diagnostic below.
        auto value = [&](const char *prefix) -> const char * {
            size_t n = std::strlen(prefix);
            if (arg.compare(0, n, prefix) != 0 || arg.size() == n)
                return nullptr;
            return arg.c_str() + n;
        };
        if (const char *v = value("--workload=")) {
            workload_name = v;
        } else if (arg == "--list") {
            list = true;
        } else if (const char *v = value("--threads=")) {
            options.translation_threads =
                static_cast<uint32_t>(std::atoi(v));
        } else if (arg == "--deterministic") {
            options.deterministic_adoption = true;
        } else if (const char *v = value("--heat-threshold=")) {
            options.heat_threshold =
                static_cast<uint32_t>(std::atoi(v));
        } else if (const char *v = value("--hot-batch=")) {
            options.hot_batch = static_cast<uint32_t>(std::atoi(v));
        } else if (const char *v = value("--cache-capacity=")) {
            options.code_cache_capacity =
                static_cast<uint64_t>(std::atoll(v));
        } else if (const char *v = value("--cache-dir=")) {
            cache_dir = v;
        } else if (const char *v = value("--checkpoint-dir=")) {
            checkpoint_dir = v;
        } else if (const char *v = value("--checkpoint-period=")) {
            checkpoint_period = static_cast<uint64_t>(std::atoll(v));
        } else if (arg == "--resume") {
            resume = true;
        } else if (const char *v = value("--fault=")) {
            std::string spec = v;
            size_t colon = spec.rfind(':');
            FaultSite site;
            if (colon == std::string::npos ||
                !parseFaultSite(spec.substr(0, colon), &site)) {
                std::fprintf(stderr, "el_run: bad --fault spec '%s'\n",
                             v);
                return exit_usage;
            }
            options.fault.site(
                site, static_cast<uint16_t>(
                          std::atoi(spec.c_str() + colon + 1)));
        } else if (const char *v = value("--fault-seed=")) {
            options.fault.seed = static_cast<uint64_t>(std::atoll(v));
        } else if (const char *v = value("--selfcheck=")) {
            sentinel_cfg.selfcheck_rate =
                static_cast<uint32_t>(std::atoi(v));
        } else if (const char *v = value("--trace-out=")) {
            trace_out = v;
        } else if (const char *v = value("--report-json=")) {
            report_json = v;
        } else if (const char *v = value("--profile-out=")) {
            profile_out = v;
        } else if (const char *v = value("--profile-period=")) {
            prof_cfg.sample_period =
                static_cast<uint64_t>(std::atoll(v));
        } else if (const char *v = value("--profile-topk=")) {
            prof_cfg.topk = static_cast<uint32_t>(std::atoi(v));
        } else if (const char *v = value("--profile-ring=")) {
            prof_cfg.ring_capacity =
                static_cast<size_t>(std::atoll(v));
        } else if (const char *v = value("--validate-trace=")) {
            return validateTraceFile(v);
        } else if (const char *v = value("--metrics-out=")) {
            metrics_out = v;
        } else if (const char *v = value("--metrics-period=")) {
            metrics_period = static_cast<uint64_t>(std::atoll(v));
        } else if (const char *v = value("--postmortem-out=")) {
            postmortem_out = v;
        } else if (arg == "--dump-on-exit") {
            dump_on_exit = true;
        } else if (arg == "--audit") {
            options.audit = true;
        } else if (arg == "--no-audit") {
            options.audit = false;
        } else if (const char *v = value("--audit-period=")) {
            options.audit_period = static_cast<uint64_t>(std::atoll(v));
        } else if (arg == "--no-flight") {
            options.flight_recorder = false;
        } else if (const char *v = value("--flight-ring=")) {
            options.flight_ring_capacity =
                static_cast<uint32_t>(std::atoi(v));
        } else if (const char *v = value("--log-level=")) {
            int level = parseLogLevel(v);
            if (level < 0) {
                std::fprintf(stderr,
                             "el_run: bad --log-level '%s' (want "
                             "err|warn|info|debug)\n", v);
                return exit_usage;
            }
            log_level = level;
        } else if (arg == "--help") {
            usage();
            return exit_ok;
        } else {
            std::fprintf(stderr, "el_run: unknown argument '%s'\n",
                         arg.c_str());
            usage();
            return exit_usage;
        }
    }

    std::vector<guest::Workload> suite = allWorkloads();
    if (list) {
        for (const guest::Workload &w : suite)
            std::printf("%-12s (%s, %s)\n", w.name.c_str(),
                        w.kernel.c_str(),
                        w.params.abi == btlib::OsAbi::Windows
                            ? "windows"
                            : "linux");
        return 0;
    }

    const guest::Workload *wl = nullptr;
    for (const guest::Workload &w : suite)
        if (w.name == workload_name)
            wl = &w;
    if (!wl) {
        std::fprintf(stderr,
                     "el_run: unknown workload '%s' (--list shows "
                     "the suite)\n",
                     workload_name.c_str());
        return exit_usage;
    }

    trace::Tracer tracer;
    if (!trace_out.empty())
        options.trace = &tracer;
    if (!report_json.empty())
        options.collect_block_cycles = true;
    prof::Profiler profiler(prof_cfg);
    if (!profile_out.empty()) {
        options.profiler = &profiler;
        // The annotated per-block view joins IPF translation costs.
        options.collect_block_cycles = true;
    }
    sentinel::Sentinel sentinel(sentinel_cfg);
    if (sentinel_cfg.selfcheck_rate > 0)
        options.sentinel = &sentinel;

    metrics::Registry metrics;
    if (!metrics_out.empty()) {
        if (!metrics.openOutput(metrics_out)) {
            std::fprintf(stderr, "el_run: cannot write %s\n",
                         metrics_out.c_str());
            return exit_io;
        }
        metrics.setPeriod(metrics_period);
        options.metrics = &metrics;
    }

    if (resume && checkpoint_dir.empty()) {
        std::fprintf(stderr,
                     "el_run: --resume requires --checkpoint-dir\n");
        return exit_usage;
    }

    // Always computed: every emitted artifact is stamped with the
    // image+options fingerprint so el_diff can refuse to compare runs
    // of different guests.
    persist::Fingerprint fp = persist::fingerprintOf(wl->image, options);
    buildinfo::ProducerStamp stamp =
        buildinfo::ProducerStamp::make("el_run", fp.hex());
    if (!metrics_out.empty())
        metrics.setProducer(stamp);

    persist::ArtifactStore store;
    bool warm = false;
    if (!cache_dir.empty()) {
        store.resetFingerprint(fp);
        // load() folds in any journal a crashed predecessor left; a
        // journal on disk then means the .elstore is stale, so compact
        // before truncating it for this run's own journaling.
        bool had_journal = std::filesystem::exists(
            store.journalPathIn(cache_dir));
        warm = store.load(cache_dir);
        if (!store.sealed()) {
            if (had_journal && !store.compact(cache_dir))
                std::fprintf(stderr,
                             "el_run: warning: cannot compact journal "
                             "in %s\n", cache_dir.c_str());
            if (!store.openJournal(cache_dir))
                std::fprintf(stderr,
                             "el_run: warning: cannot journal in %s; "
                             "artifacts persist only at exit\n",
                             cache_dir.c_str());
        }
        options.persist = &store;
    }

    std::unique_ptr<core::Checkpointer> checkpointer;
    core::CheckpointImage resume_img;
    bool resumed = false;
    if (!checkpoint_dir.empty()) {
        core::CheckpointConfig ck_cfg;
        ck_cfg.dir = checkpoint_dir;
        ck_cfg.period_cycles = checkpoint_period;
        ck_cfg.fp = fp;
        checkpointer = std::make_unique<core::Checkpointer>(ck_cfg);
        options.checkpointer = checkpointer.get();
        if (resume) {
            std::string err;
            if (core::Checkpointer::load(checkpoint_dir, fp,
                                         &resume_img, &err)) {
                resumed = true;
            } else {
                // A bad checkpoint must never make recovery worse
                // than a cold start: warn and run from the beginning.
                std::fprintf(stderr,
                             "el_run: no usable checkpoint (%s); "
                             "starting cold\n", err.c_str());
            }
        }
    }

    harness::TranslatedRun run =
        harness::runTranslated(wl->image, wl->params.abi, options,
                               resumed ? &resume_img : nullptr);

    // Compact (durable save + journal unlink) before the report is
    // written so persist.bytes_written and persist.records_saved
    // appear in the report's stats object.
    if (!cache_dir.empty()) {
        store.closeJournal();
        if (!store.compact(cache_dir)) {
            std::fprintf(stderr, "el_run: cannot write store in %s\n",
                         cache_dir.c_str());
            return exit_io;
        }
    }

    core::GuestResult guest = core::guestResultOf(
        run.outcome.final_state, run.outcome.console,
        run.outcome.exited, run.outcome.exit_code,
        run.outcome.guest_insns);

    if (!trace_out.empty()) {
        if (!tracer.writeChromeJson(trace_out)) {
            std::fprintf(stderr, "el_run: cannot write %s\n",
                         trace_out.c_str());
            return exit_io;
        }
        std::printf("trace:  %s (%zu events, %llu dropped)\n",
                    trace_out.c_str(), tracer.snapshot().size(),
                    static_cast<unsigned long long>(tracer.dropped()));
    }
    if (!report_json.empty()) {
        if (!core::writeRunReport(*run.runtime, wl->name, report_json,
                                  &guest, &stamp)) {
            std::fprintf(stderr, "el_run: cannot write %s\n",
                         report_json.c_str());
            return exit_io;
        }
        std::printf("report: %s\n", report_json.c_str());
    }
    if (!profile_out.empty()) {
        if (!core::writeProfile(*run.runtime, profiler, wl->name,
                                profile_out, &stamp)) {
            std::fprintf(stderr, "el_run: cannot write %s\n",
                         profile_out.c_str());
            return exit_io;
        }
        std::printf("profile: %s (%llu events, %zu samples)\n",
                    profile_out.c_str(),
                    static_cast<unsigned long long>(
                        profiler.eventCount()),
                    profiler.samples().size());
    }

    core::Attribution attr = core::attributionOf(*run.runtime);
    std::printf("%s: exit=%d cycles=%.0f\n", wl->name.c_str(),
                run.outcome.exit_code, run.outcome.cycles);
    std::printf("  cold=%.0f hot=%.0f btgeneric=%.0f fault=%.0f "
                "native=%.0f idle=%.0f\n",
                attr.cold_code, attr.hot_code, attr.btgeneric,
                attr.fault_handling, attr.native, attr.idle);
    if (options.persist) {
        const el::StatGroup &ps = store.stats;
        uint64_t hits = ps.get("persist.hits");
        uint64_t local =
            run.runtime->translator().stats.get("xlate.hot_blocks");
        double reuse = (hits + local)
                           ? 100.0 * static_cast<double>(hits) /
                                 static_cast<double>(hits + local)
                           : 0.0;
        std::printf("  persist: %s hits=%llu misses=%llu loaded=%llu "
                    "reuse=%.1f%% read=%lluB written=%lluB "
                    "records=%zu%s\n",
                    warm ? "warm" : "cold",
                    static_cast<unsigned long long>(hits),
                    static_cast<unsigned long long>(
                        ps.get("persist.misses")),
                    static_cast<unsigned long long>(
                        ps.get("persist.loaded_blocks")),
                    reuse,
                    static_cast<unsigned long long>(
                        ps.get("persist.bytes_read")),
                    static_cast<unsigned long long>(
                        ps.get("persist.bytes_written")),
                    store.recordCount(),
                    store.sealed() ? " (sealed)" : "");
    }
    if (checkpointer) {
        std::printf("  checkpoint: %s captures=%llu bytes=%llu "
                    "failed=%llu%s",
                    resumed ? "resumed" : "fresh",
                    static_cast<unsigned long long>(
                        checkpointer->captures()),
                    static_cast<unsigned long long>(
                        checkpointer->stats.get("ckpt.bytes")),
                    static_cast<unsigned long long>(
                        checkpointer->stats.get("ckpt.failed")),
                    resumed ? "" : "\n");
        if (resumed)
            std::printf(" from seq=%llu cycles=%.0f\n",
                        static_cast<unsigned long long>(resume_img.seq),
                        resume_img.cycles);
    }
    if (options.sentinel) {
        const el::StatGroup &st = run.runtime->stats();
        std::printf("  selfcheck: rate=1/%u regions=%llu checked=%llu "
                    "passed=%llu divergences=%llu quarantined=%llu\n",
                    sentinel_cfg.selfcheck_rate,
                    static_cast<unsigned long long>(
                        sentinel.regionsSeen()),
                    static_cast<unsigned long long>(
                        st.get("sentinel.checked")),
                    static_cast<unsigned long long>(
                        st.get("sentinel.passed")),
                    static_cast<unsigned long long>(
                        sentinel.totalDivergences()),
                    static_cast<unsigned long long>(
                        run.runtime->translator().stats.get(
                            "sentinel.blocks_quarantined")));
        for (const sentinel::DivergenceInfo &d : sentinel.divergences())
            std::printf("  divergence: region=%llu checkpoint=%#x "
                        "boundary=%#x block=%d ip=[%#x,%#x)\n",
                        static_cast<unsigned long long>(d.region_index),
                        d.checkpoint_eip, d.boundary_eip, d.first_block,
                        d.ip_lo, d.ip_hi);
    }

    if (run.outcome.faulted)
        std::fprintf(stderr, "el_run: guest fault: %s\n",
                     run.outcome.fault.toString().c_str());
    if (run.outcome.internal_error)
        std::fprintf(stderr, "el_run: internal error: %s\n",
                     run.outcome.internal_reason.c_str());

    if (!metrics_out.empty()) {
        // One final snapshot at the terminal cycle, so short runs that
        // never crossed a period boundary still produce a line.
        metrics.emit(run.outcome.cycles);
        std::printf("metrics: %s (%llu snapshots)\n",
                    metrics_out.c_str(),
                    static_cast<unsigned long long>(
                        metrics.snapshots()));
    }

    int code = exit_ok;
    const char *exit_class = "ok";
    if (options.sentinel && sentinel.totalDivergences() > 0) {
        code = exit_divergence;
        exit_class = "divergence";
    } else if (run.outcome.faulted) {
        code = exit_guest_fault;
        exit_class = "guest_fault";
    } else if (!run.outcome.exited) {
        code = exit_internal;
        exit_class = "internal";
    }

    if (options.audit) {
        // Everything the in-run closure audits accumulated, plus the
        // full cross-view audit (flight counts, provenance legality,
        // schema self-checks) — legal here because runTranslated()
        // already quiesced the pipeline. An audit failure only ever
        // *upgrades* a clean exit: a guest fault or divergence is
        // strictly more important than untrustworthy numbers.
        core::AuditContext actx;
        actx.workload = wl->name;
        actx.producer = &stamp;
        audit::Result audit_result = run.runtime->auditFindings();
        audit_result.merge(core::auditRun(*run.runtime, actx));
        std::printf("audit: %llu check(s), %zu violation(s)\n",
                    static_cast<unsigned long long>(
                        audit_result.checksRun()),
                    audit_result.violations().size());
        if (!audit_result.ok()) {
            std::fprintf(stderr, "el_run: %s\n",
                         audit_result.summary().c_str());
            if (code == exit_ok) {
                code = exit_audit;
                exit_class = "audit";
            }
        }
    }

    const FaultInjector *fi = run.runtime->faultInjector();
    bool injected = fi && fi->totalFires() > 0;
    if (code != exit_ok || injected || dump_on_exit) {
        core::PostmortemInfo pm;
        pm.workload = wl->name;
        pm.exit_class = exit_class;
        pm.exit_code = code;
        pm.resumed = resumed;
        pm.checkpoint_seq = resumed ? resume_img.seq : 0;
        pm.producer = &stamp;
        if (!core::writePostmortem(*run.runtime, pm, postmortem_out))
            std::fprintf(stderr, "el_run: cannot write %s\n",
                         postmortem_out.c_str());
        else
            std::printf("postmortem: %s\n", postmortem_out.c_str());
    }
    return code;
}
