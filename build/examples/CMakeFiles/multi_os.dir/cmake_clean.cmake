file(REMOVE_RECURSE
  "CMakeFiles/multi_os.dir/multi_os.cpp.o"
  "CMakeFiles/multi_os.dir/multi_os.cpp.o.d"
  "multi_os"
  "multi_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
