#include "support/profile.hh"

namespace el::prof
{

const GuestBlock *
Profiler::resolveBlock(uint32_t entry)
{
    auto it = blocks_.find(entry);
    if (it != blocks_.end())
        return &it->second;
    if (!resolver_)
        return nullptr;

    GuestBlock b;
    b.entry = entry;
    uint32_t ip = entry;
    for (unsigned n = 0; n < cfg_.max_block_insns; ++n) {
        InsnInfo info = resolver_(ip);
        ++b.insns;
        if (info.kind != InsnKind::Plain) {
            b.term_ip = ip;
            b.term_next = info.next;
            b.kind = info.kind;
            b.taken = info.target;
            b.fall = info.next;
            b.next = (info.kind == InsnKind::Jump ||
                      info.kind == InsnKind::CallDirect)
                         ? info.target
                         : 0;
            return &blocks_.emplace(entry, b).first->second;
        }
        ip = info.next;
    }
    // Decode cap reached without a terminator: pseudo-block that falls
    // through (mirrors the translator's own block-length cap).
    b.term_ip = ip;
    b.term_next = ip;
    b.kind = InsnKind::Plain;
    b.next = ip;
    return &blocks_.emplace(entry, b).first->second;
}

const GuestBlock *
Profiler::walkTo(const std::function<bool(const GuestBlock &)> &matches)
{
    if (!cursor_valid_) {
        ++lost_events_;
        return nullptr;
    }
    uint32_t ip = cursor_;
    std::vector<uint32_t> visited;
    for (unsigned i = 0; i <= cfg_.max_walk; ++i) {
        const GuestBlock *b = resolveBlock(ip);
        if (!b)
            break;
        visited.push_back(b->entry);
        if (matches(*b)) {
            for (uint32_t e : visited)
                ++block_execs_[e];
            return b;
        }
        // Only statically-successored blocks can be walked through;
        // anything else would have produced its own event first.
        if (b->kind != InsnKind::Jump &&
            b->kind != InsnKind::CallDirect && b->kind != InsnKind::Plain)
            break;
        ip = b->next;
    }
    ++walk_breaks_;
    cursor_valid_ = false;
    return nullptr;
}

void
Profiler::condEvent(uint32_t site_ip, uint32_t exit_target, bool fired,
                    bool via_link)
{
    ++events_;
    ++cond_events_;

    auto it = cond_sites_.find(site_ip);
    if (it == cond_sites_.end()) {
        CondSite cs;
        bool resolved = false;
        if (resolver_) {
            InsnInfo info = resolver_(site_ip);
            if (info.kind == InsnKind::Cond) {
                cs.taken_eip = info.target;
                cs.fall_eip = info.next;
                resolved = true;
            }
        }
        if (!resolved) {
            // No resolver (unit tests): classify by fired alone, which
            // the degenerate taken == fall rule below reduces to.
            cs.taken_eip = exit_target;
            cs.fall_eip = exit_target;
        }
        it = cond_sites_.emplace(site_ip, cs).first;
    }

    CondSite &cs = it->second;
    // The probe's exit target is whichever direction leaves the
    // translated path (cold: always taken; hot: the off-trace side),
    // so the architectural direction is recovered by comparing it
    // against the site's canonical taken target. A degenerate Jcc
    // whose two successors coincide counts as taken, unconditionally —
    // the probe's fired bit is phase-dependent there.
    bool went_taken =
        cs.taken_eip == cs.fall_eip
            ? true
            : (fired ? exit_target == cs.taken_eip
                     : exit_target != cs.taken_eip);
    if (went_taken)
        ++cs.taken;
    else
        ++cs.fall;
    if (fired) {
        if (via_link)
            ++cs.via_link;
        else
            ++cs.via_dispatch;
    }

    walkTo([&](const GuestBlock &b) {
        return b.kind == InsnKind::Cond && b.term_ip == site_ip;
    });

    // The destination is known from the site itself, so the cursor
    // recovers even when the walk broke.
    if (resolver_) {
        cursor_ = went_taken ? cs.taken_eip : cs.fall_eip;
        cursor_valid_ = true;
    }
}

void
Profiler::indirectEvent(uint32_t site_ip, uint32_t target, bool hit)
{
    ++events_;
    ++indirect_events_;

    IndirectSite &s = indirect_sites_[site_ip];
    ++s.execs;
    if (hit)
        ++s.hits;
    else
        ++s.misses;

    // Space-saving top-K: an unseen target beyond capacity replaces the
    // smallest entry and inherits its count + 1 (an upper bound on the
    // new target's true count; deterministic first-minimum tie-break).
    bool found = false;
    for (TargetCount &tc : s.targets) {
        if (tc.target == target) {
            ++tc.count;
            found = true;
            break;
        }
    }
    if (!found) {
        if (s.targets.size() < cfg_.topk) {
            s.targets.push_back({target, 1});
        } else {
            size_t min_i = 0;
            for (size_t i = 1; i < s.targets.size(); ++i)
                if (s.targets[i].count < s.targets[min_i].count)
                    min_i = i;
            ++s.evictions;
            ++evictions_;
            s.targets[min_i].target = target;
            s.targets[min_i].count += 1;
        }
    }

    walkTo([&](const GuestBlock &b) {
        return b.kind == InsnKind::Indirect && b.term_ip == site_ip;
    });

    cursor_ = target;
    cursor_valid_ = resolver_ != nullptr;
}

void
Profiler::stopEvent(uint32_t key)
{
    ++events_;
    ++stop_events_;

    walkTo([&](const GuestBlock &b) {
        return b.kind == InsnKind::Stop &&
               (b.term_ip == key || b.term_next == key);
    });

    // The runtime resynchronizes explicitly after servicing the stop
    // (syscall return EIP, fault delivery target, run end).
    cursor_valid_ = false;
}

void
Profiler::resync(uint32_t eip)
{
    ++resyncs_;
    cursor_ = eip;
    cursor_valid_ = resolver_ != nullptr;
}

void
Profiler::invalidateCode(uint32_t addr, uint32_t len)
{
    uint64_t lo = addr;
    uint64_t hi = static_cast<uint64_t>(addr) + len;
    for (auto it = blocks_.begin(); it != blocks_.end();) {
        uint64_t b_lo = it->second.entry;
        uint64_t b_hi = it->second.term_next > it->second.entry
                            ? it->second.term_next
                            : it->second.entry + 1;
        if (b_lo < hi && b_hi > lo)
            it = blocks_.erase(it);
        else
            ++it;
    }
    cursor_valid_ = false;
}

void
Profiler::maybeSample(double now)
{
    if (now < 0)
        return;
    uint64_t n = static_cast<uint64_t>(now);
    while (n >= next_sample_due_) {
        Sample s;
        s.cycle = next_sample_due_;
        if (gather_)
            gather_(&s);
        s.profile_events = events_;
        samples_.push(s);
        ++samples_taken_;
        next_sample_due_ += cfg_.sample_period;
    }
}

StatGroup
Profiler::counters() const
{
    StatGroup g;
    g.set("prof.events", events_);
    g.set("prof.events.cond", cond_events_);
    g.set("prof.events.indirect", indirect_events_);
    g.set("prof.events.stop", stop_events_);
    g.set("prof.walk_breaks", walk_breaks_);
    g.set("prof.lost_events", lost_events_);
    g.set("prof.resyncs", resyncs_);
    g.set("prof.canon_blocks", blocks_.size());
    g.set("prof.blocks_counted", block_execs_.size());
    g.set("prof.cond_sites", cond_sites_.size());
    g.set("prof.indirect_sites", indirect_sites_.size());
    g.set("prof.topk_evictions", evictions_);
    g.set("prof.samples", samples_taken_);
    g.set("prof.samples_dropped", samples_.dropped());
    return g;
}

} // namespace el::prof
