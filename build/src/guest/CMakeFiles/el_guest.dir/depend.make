# Empty dependencies file for el_guest.
# This may be replaced when dependencies are built.
