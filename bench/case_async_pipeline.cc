/**
 * @file
 * Case study: asynchronous hot-translation pipeline.
 *
 * The seed translator runs hot optimization sessions synchronously:
 * the guest stalls for the whole session (hot_xlate_cost_per_insn is
 * ~20x the cold rate). The pipeline moves sessions onto worker threads
 * and the guest pays only the snapshot/enqueue cost plus the final
 * publication cost, while cold code keeps executing. This bench sweeps
 * Options::translation_threads on the gzip and bzip2 stream
 * personalities and reports guest-attributed hot-translation stall —
 * the acceptance bar is a >= 50% stall reduction at four workers.
 */

#include "bench/bench_common.hh"

using namespace el;

namespace
{

struct Run
{
    double cycles = 0;
    uint64_t stall = 0;
    uint64_t adopted = 0;
    uint64_t hot_blocks = 0;
};

Run
runWith(const guest::Workload &w, uint32_t threads, bench::Report &rep)
{
    core::Options o;
    o.heat_threshold = 16;
    o.hot_batch = 1;
    o.translation_threads = threads;
    // Replayable adoption points: artifacts land at their simulated
    // ready time, so the numbers are stable run to run.
    o.deterministic_adoption = threads > 0;
    harness::TranslatedRun tr =
        harness::runTranslated(w.image, w.params.abi, o);
    Run r;
    r.cycles = tr.outcome.cycles;
    r.stall = tr.runtime->stats().get("hot.stall_cycles");
    r.adopted = tr.runtime->stats().get("hot.adopted");
    r.hot_blocks =
        tr.runtime->translator().stats.get("xlate.hot_blocks");
    rep.row(w.name + strfmt("/t%u", threads))
        .metric("threads", threads)
        .metric("cycles", r.cycles)
        .metric("stall_cycles", static_cast<double>(r.stall))
        .metric("hot_blocks", static_cast<double>(r.hot_blocks))
        .metric("adopted", static_cast<double>(r.adopted))
        .attribution(*tr.runtime);
    return r;
}

void
sweep(const guest::Workload &w, bench::Report &rep)
{
    std::printf("\n[%s]\n", w.name.c_str());
    Run sync = runWith(w, 0, rep);
    Table t({"threads", "hot stall cyc", "stall vs sync", "speedup",
             "hot blocks", "adopted"});
    t.addRow({"0 (sync)",
              strfmt("%llu", static_cast<unsigned long long>(sync.stall)),
              "1.00x", "1.00x",
              strfmt("%llu",
                     static_cast<unsigned long long>(sync.hot_blocks)),
              "-"});
    for (uint32_t threads : {1u, 2u, 4u}) {
        Run r = runWith(w, threads, rep);
        if (threads == 4 && sync.stall)
            rep.scalar(w.name + "_stall_reduction_t4",
                       1.0 - static_cast<double>(r.stall) /
                                 static_cast<double>(sync.stall),
                       0.25);
        t.addRow({strfmt("%u", threads),
                  strfmt("%llu",
                         static_cast<unsigned long long>(r.stall)),
                  strfmt("%.2fx",
                         sync.stall ? static_cast<double>(r.stall) /
                                          static_cast<double>(sync.stall)
                                    : 0.0),
                  strfmt("%.3fx", sync.cycles / r.cycles),
                  strfmt("%llu",
                         static_cast<unsigned long long>(r.hot_blocks)),
                  strfmt("%llu",
                         static_cast<unsigned long long>(r.adopted))});
    }
    std::printf("%s\n", t.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    if (int rc = bench::handleArgs(argc, argv); rc >= 0)
        return rc;
    bench::banner("Asynchronous hot-translation pipeline",
                  "section 2's two-phase split, decoupled "
                  "(no paper figure)");

    bench::Report rep("case_async_pipeline");
    guest::WorkloadParams gz;
    gz.outer_iters = 60;
    gz.size = 24000;
    sweep(guest::buildStream("gzip", gz), rep);

    guest::WorkloadParams bz;
    bz.outer_iters = 50;
    bz.size = 28000;
    sweep(guest::buildStream("bzip2", bz), rep);

    rep.write();
    std::printf("Interpretation: workers absorb the optimization "
                "sessions, so guest-visible\nstall shrinks to "
                "enqueue + publication; architectural results are "
                "bit-exact\nacross every thread count (enforced by "
                "tests/async_pipeline_test.cc).\n");
    return 0;
}
