/**
 * @file
 * IA-32 register identifiers and EFLAGS bit definitions.
 */

#ifndef EL_IA32_REGS_HH
#define EL_IA32_REGS_HH

#include <cstdint>

namespace el::ia32
{

/** The eight IA-32 general-purpose registers, in encoding order. */
enum Reg : uint8_t
{
    RegEax = 0,
    RegEcx = 1,
    RegEdx = 2,
    RegEbx = 3,
    RegEsp = 4,
    RegEbp = 5,
    RegEsi = 6,
    RegEdi = 7,
    NumRegs = 8,
};

/** 8-bit register encodings (column 0-7 of the r8 table). */
enum Reg8 : uint8_t
{
    RegAl = 0,
    RegCl = 1,
    RegDl = 2,
    RegBl = 3,
    RegAh = 4,
    RegCh = 5,
    RegDh = 6,
    RegBh = 7,
};

/** EFLAGS bit positions. */
enum FlagBit : unsigned
{
    FlagCfBit = 0,
    FlagPfBit = 2,
    FlagAfBit = 4,
    FlagZfBit = 6,
    FlagSfBit = 7,
    FlagDfBit = 10,
    FlagOfBit = 11,
};

/** EFLAGS masks; OR-able into flag sets. */
enum Flag : uint32_t
{
    FlagCf = 1u << FlagCfBit,
    FlagPf = 1u << FlagPfBit,
    FlagAf = 1u << FlagAfBit,
    FlagZf = 1u << FlagZfBit,
    FlagSf = 1u << FlagSfBit,
    FlagDf = 1u << FlagDfBit,
    FlagOf = 1u << FlagOfBit,
    /** The six arithmetic status flags (not DF). */
    FlagsArith = FlagCf | FlagPf | FlagAf | FlagZf | FlagSf | FlagOf,
    /** Bits in EFLAGS that always read as 1. */
    FlagsFixed = 1u << 1,
};

/** Condition codes, in x86 "tttn" encoding order. */
enum class Cond : uint8_t
{
    O = 0,   //!< overflow
    NO = 1,
    B = 2,   //!< below (CF)
    AE = 3,
    E = 4,   //!< equal (ZF)
    NE = 5,
    BE = 6,  //!< below or equal (CF|ZF)
    A = 7,
    S = 8,   //!< sign (SF)
    NS = 9,
    P = 10,  //!< parity (PF)
    NP = 11,
    L = 12,  //!< less (SF!=OF)
    GE = 13,
    LE = 14, //!< less or equal (ZF|(SF!=OF))
    G = 15,
};

/** Printable name of a GPR at a given operand size (1, 2 or 4 bytes). */
const char *regName(Reg reg, unsigned size = 4);

/** Printable name of an 8-bit register encoding. */
const char *reg8Name(Reg8 reg);

/** Printable name of a condition code. */
const char *condName(Cond cond);

/** EFLAGS read by a condition code (as a Flag mask). */
uint32_t condFlagsRead(Cond cond);

/** Evaluate a condition code against an EFLAGS value. */
bool condEval(Cond cond, uint32_t eflags);

/** The condition with the opposite outcome. */
constexpr Cond
condNegate(Cond cond)
{
    return static_cast<Cond>(static_cast<uint8_t>(cond) ^ 1);
}

} // namespace el::ia32

#endif // EL_IA32_REGS_HH
