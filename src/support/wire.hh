/**
 * @file
 * Shared little-endian wire format helpers for on-disk artifacts.
 *
 * The persistent artifact store, its append-only journal, and the
 * checkpoint files all use the same byte discipline: explicit
 * little-endian integers written byte-by-byte (so files are portable
 * across host endianness), a bounds-checked reader with a sticky
 * failure flag (so a truncated or corrupt file can never read out of
 * bounds — it just goes !ok), and CRC-32 for integrity. Factored here
 * so every durable format validates the same way.
 */

#ifndef EL_SUPPORT_WIRE_HH
#define EL_SUPPORT_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace el::wire
{

/** Append-only little-endian byte writer. */
struct Writer
{
    std::vector<uint8_t> buf;

    void
    u8(uint8_t v)
    {
        buf.push_back(v);
    }

    void
    u16(uint16_t v)
    {
        for (int i = 0; i < 2; ++i)
            buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void i8(int8_t v) { u8(static_cast<uint8_t>(v)); }
    void i16(int16_t v) { u16(static_cast<uint16_t>(v)); }
    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }

    void
    bytes(const void *data, size_t n)
    {
        const uint8_t *p = static_cast<const uint8_t *>(data);
        buf.insert(buf.end(), p, p + n);
    }
};

/** Bounds-checked little-endian reader; sticky failure flag. */
struct Reader
{
    const uint8_t *p = nullptr;
    size_t n = 0;
    size_t off = 0;
    bool ok = true;

    Reader(const uint8_t *data, size_t len) : p(data), n(len) {}

    /** Unread bytes left (0 when the failure flag latched). */
    size_t remaining() const { return ok ? n - off : 0; }

    bool
    need(size_t k)
    {
        if (!ok || n - off < k) {
            ok = false;
            return false;
        }
        return true;
    }

    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return p[off++];
    }

    uint16_t
    u16()
    {
        if (!need(2))
            return 0;
        uint16_t v = 0;
        for (int i = 0; i < 2; ++i)
            v |= static_cast<uint16_t>(p[off++]) << (8 * i);
        return v;
    }

    uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(p[off++]) << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(p[off++]) << (8 * i);
        return v;
    }

    int8_t i8() { return static_cast<int8_t>(u8()); }
    int16_t i16() { return static_cast<int16_t>(u16()); }
    int32_t i32() { return static_cast<int32_t>(u32()); }
    int64_t i64() { return static_cast<int64_t>(u64()); }
    bool b() { return u8() != 0; }

    bool
    bytes(void *out, size_t k)
    {
        if (!need(k))
            return false;
        uint8_t *dst = static_cast<uint8_t *>(out);
        for (size_t i = 0; i < k; ++i)
            dst[i] = p[off++];
        return true;
    }
};

/** CRC-32 (IEEE 802.3 polynomial, table-driven). */
inline uint32_t
crc32(const uint8_t *data, size_t n)
{
    static uint32_t table[256];
    static bool init = false;
    if (!init) {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            table[i] = c;
        }
        init = true;
    }
    uint32_t c = 0xffffffffu;
    for (size_t i = 0; i < n; ++i)
        c = table[(c ^ data[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

/** FNV-1a over a byte range, chainable through @p h. */
inline uint64_t
fnv1a(const void *data, size_t n, uint64_t h = 0xcbf29ce484222325ULL)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace el::wire

#endif // EL_SUPPORT_WIRE_HH
