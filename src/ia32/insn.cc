#include "ia32/insn.hh"

#include <array>

#include "support/logging.hh"
#include "support/strfmt.hh"

namespace el::ia32
{

namespace
{

constexpr uint32_t kAll = FlagsArith;

/** Build the static opcode table once. */
std::array<OpInfo, static_cast<size_t>(Op::NumOps)>
buildOpTable()
{
    std::array<OpInfo, static_cast<size_t>(Op::NumOps)> t{};
    auto set = [&](Op op, OpInfo info) {
        t[static_cast<size_t>(op)] = info;
    };
    // name, fl_w, fl_r, undef, load, store, branch, fp, mmx, sse, arithflt
    set(Op::Invalid, {"(invalid)", 0, 0, false, false, false, false, false,
                      false, false, true});

    set(Op::Mov,   {"mov", 0, 0, false, true, true, false, false, false,
                    false, false});
    set(Op::Movzx, {"movzx", 0, 0, false, true, false, false, false, false,
                    false, false});
    set(Op::Movsx, {"movsx", 0, 0, false, true, false, false, false, false,
                    false, false});
    set(Op::Lea,   {"lea", 0, 0, false, false, false, false, false, false,
                    false, false});
    set(Op::Xchg,  {"xchg", 0, 0, false, true, true, false, false, false,
                    false, false});
    set(Op::Push,  {"push", 0, 0, false, true, true, false, false, false,
                    false, false});
    set(Op::Pop,   {"pop", 0, 0, false, true, true, false, false, false,
                    false, false});
    set(Op::Cdq,   {"cdq", 0, 0, false, false, false, false, false, false,
                    false, false});
    set(Op::Sahf,  {"sahf", FlagCf | FlagPf | FlagAf | FlagZf | FlagSf, 0,
                    false, false, false, false, false, false, false, false});
    set(Op::Lahf,  {"lahf", 0,
                    FlagCf | FlagPf | FlagAf | FlagZf | FlagSf, false,
                    false, false, false, false, false, false, false});

    set(Op::Add,  {"add", kAll, 0, false, true, true, false, false, false,
                   false, false});
    set(Op::Adc,  {"adc", kAll, FlagCf, false, true, true, false, false,
                   false, false, false});
    set(Op::Sub,  {"sub", kAll, 0, false, true, true, false, false, false,
                   false, false});
    set(Op::Sbb,  {"sbb", kAll, FlagCf, false, true, true, false, false,
                   false, false, false});
    set(Op::And,  {"and", kAll, 0, false, true, true, false, false, false,
                   false, false});
    set(Op::Or,   {"or", kAll, 0, false, true, true, false, false, false,
                   false, false});
    set(Op::Xor,  {"xor", kAll, 0, false, true, true, false, false, false,
                   false, false});
    set(Op::Cmp,  {"cmp", kAll, 0, false, true, false, false, false, false,
                   false, false});
    set(Op::Test, {"test", kAll, 0, false, true, false, false, false, false,
                   false, false});
    set(Op::Inc,  {"inc", kAll & ~FlagCf, 0, false, true, true, false,
                   false, false, false, false});
    set(Op::Dec,  {"dec", kAll & ~FlagCf, 0, false, true, true, false,
                   false, false, false, false});
    set(Op::Neg,  {"neg", kAll, 0, false, true, true, false, false, false,
                   false, false});
    set(Op::Not,  {"not", 0, 0, false, true, true, false, false, false,
                   false, false});
    set(Op::Imul2, {"imul", kAll, 0, true, true, false, false, false, false,
                    false, false});
    set(Op::Mul1,  {"mul", kAll, 0, true, true, false, false, false, false,
                    false, false});
    set(Op::Imul1, {"imul", kAll, 0, true, true, false, false, false, false,
                    false, false});
    set(Op::Div,  {"div", kAll, 0, true, true, false, false, false, false,
                   false, true});
    set(Op::Idiv, {"idiv", kAll, 0, true, true, false, false, false, false,
                   false, true});
    set(Op::Shl,  {"shl", kAll, 0, true, true, true, false, false, false,
                   false, false});
    set(Op::Shr,  {"shr", kAll, 0, true, true, true, false, false, false,
                   false, false});
    set(Op::Sar,  {"sar", kAll, 0, true, true, true, false, false, false,
                   false, false});
    set(Op::Rol,  {"rol", FlagCf | FlagOf, 0, true, true, true, false,
                   false, false, false, false});
    set(Op::Ror,  {"ror", FlagCf | FlagOf, 0, true, true, true, false,
                   false, false, false, false});

    set(Op::Jcc,     {"j", 0, 0, false, false, false, true, false, false,
                      false, false});
    set(Op::Jmp,     {"jmp", 0, 0, false, false, false, true, false, false,
                      false, false});
    set(Op::JmpInd,  {"jmp", 0, 0, false, true, false, true, false, false,
                      false, false});
    set(Op::Call,    {"call", 0, 0, false, false, true, true, false, false,
                      false, false});
    set(Op::CallInd, {"call", 0, 0, false, true, true, true, false, false,
                      false, false});
    set(Op::Ret,     {"ret", 0, 0, false, true, false, true, false, false,
                      false, false});
    set(Op::Setcc,   {"set", 0, 0, false, false, true, false, false, false,
                      false, false});
    set(Op::Cmovcc,  {"cmov", 0, 0, false, true, false, false, false, false,
                      false, false});
    set(Op::Leave,   {"leave", 0, 0, false, true, false, false, false,
                      false, false, false});

    set(Op::Movs, {"movs", 0, FlagDf, false, true, true, false, false,
                   false, false, false});
    set(Op::Stos, {"stos", 0, FlagDf, false, false, true, false, false,
                   false, false, false});
    set(Op::Lods, {"lods", 0, FlagDf, false, true, false, false, false,
                   false, false, false});
    set(Op::Cld,  {"cld", FlagDf, 0, false, false, false, false, false,
                   false, false, false});
    set(Op::Std,  {"std", FlagDf, 0, false, false, false, false, false,
                   false, false, false});

    set(Op::Int,  {"int", 0, 0, false, false, false, true, false, false,
                   false, true});
    set(Op::Int3, {"int3", 0, 0, false, false, false, true, false, false,
                   false, true});
    set(Op::Nop,  {"nop", 0, 0, false, false, false, false, false, false,
                   false, false});
    set(Op::Hlt,  {"hlt", 0, 0, false, false, false, true, false, false,
                   false, true});
    set(Op::Ud2,  {"ud2", 0, 0, false, false, false, true, false, false,
                   false, true});

    auto fp = [&](Op op, const char *name, bool load, bool store) {
        set(op, {name, 0, 0, false, load, store, false, true, false, false,
                 true});
    };
    fp(Op::Fld, "fld", true, false);
    fp(Op::Fild, "fild", true, false);
    fp(Op::Fst, "fst", false, true);
    fp(Op::Fistp, "fistp", false, true);
    fp(Op::Fld1, "fld1", false, false);
    fp(Op::Fldz, "fldz", false, false);
    fp(Op::Fadd, "fadd", true, false);
    fp(Op::Fsub, "fsub", true, false);
    fp(Op::Fsubr, "fsubr", true, false);
    fp(Op::Fmul, "fmul", true, false);
    fp(Op::Fdiv, "fdiv", true, false);
    fp(Op::Fdivr, "fdivr", true, false);
    fp(Op::Fxch, "fxch", false, false);
    fp(Op::Fchs, "fchs", false, false);
    fp(Op::Fabs, "fabs", false, false);
    fp(Op::Fsqrt, "fsqrt", false, false);
    set(Op::Fcomi, {"fcomi", FlagCf | FlagPf | FlagZf, 0, false, false,
                    false, false, true, false, false, true});
    set(Op::Fnstsw, {"fnstsw", 0, 0, false, false, false, false, true,
                     false, false, false});
    set(Op::Fninit, {"fninit", 0, 0, false, false, false, false, true,
                     false, false, false});

    auto mmx = [&](Op op, const char *name, bool load, bool store) {
        set(op, {name, 0, 0, false, load, store, false, false, true, false,
                 false});
    };
    mmx(Op::Movd, "movd", true, true);
    mmx(Op::MovqMm, "movq", true, true);
    mmx(Op::Paddb, "paddb", true, false);
    mmx(Op::Paddw, "paddw", true, false);
    mmx(Op::Paddd, "paddd", true, false);
    mmx(Op::Psubb, "psubb", true, false);
    mmx(Op::Psubw, "psubw", true, false);
    mmx(Op::Psubd, "psubd", true, false);
    mmx(Op::Pand, "pand", true, false);
    mmx(Op::Por, "por", true, false);
    mmx(Op::Pxor, "pxor", true, false);
    mmx(Op::Pmullw, "pmullw", true, false);
    mmx(Op::Emms, "emms", false, false);

    auto sse = [&](Op op, const char *name, bool load, bool store) {
        set(op, {name, 0, 0, false, load, store, false, false, false, true,
                 false});
    };
    sse(Op::Movaps, "movaps", true, true);
    sse(Op::Movups, "movups", true, true);
    sse(Op::Movss, "movss", true, true);
    sse(Op::MovsdX, "movsd", true, true);
    sse(Op::Movdqa, "movdqa", true, true);
    sse(Op::Addps, "addps", true, false);
    sse(Op::Subps, "subps", true, false);
    sse(Op::Mulps, "mulps", true, false);
    sse(Op::Divps, "divps", true, false);
    sse(Op::Addss, "addss", true, false);
    sse(Op::Subss, "subss", true, false);
    sse(Op::Mulss, "mulss", true, false);
    sse(Op::Divss, "divss", true, false);
    sse(Op::Addpd, "addpd", true, false);
    sse(Op::Mulpd, "mulpd", true, false);
    sse(Op::Subpd, "subpd", true, false);
    sse(Op::Addsd, "addsd", true, false);
    sse(Op::Mulsd, "mulsd", true, false);
    sse(Op::Andps, "andps", true, false);
    sse(Op::Xorps, "xorps", true, false);
    sse(Op::Sqrtss, "sqrtss", true, false);
    set(Op::Ucomiss, {"ucomiss", FlagCf | FlagPf | FlagZf, 0, false, true,
                      false, false, false, false, true, false});
    sse(Op::Cvtps2pd, "cvtps2pd", true, false);
    sse(Op::Cvtpd2ps, "cvtpd2ps", true, false);
    sse(Op::Cvtsi2ss, "cvtsi2ss", true, false);
    sse(Op::Cvttss2si, "cvttss2si", true, false);
    sse(Op::PadddX, "paddd", true, false);

    return t;
}

const std::array<OpInfo, static_cast<size_t>(Op::NumOps)> op_table =
    buildOpTable();

std::string
operandToString(const Operand &o, unsigned op_size)
{
    switch (o.kind) {
      case OperandKind::None:
        return {};
      case OperandKind::Gpr:
        return regName(static_cast<Reg>(o.reg), op_size);
      case OperandKind::Gpr8:
        return reg8Name(static_cast<Reg8>(o.reg));
      case OperandKind::Imm:
        return strfmt("0x%llx", static_cast<unsigned long long>(o.imm));
      case OperandKind::St:
        return strfmt("st(%u)", o.reg);
      case OperandKind::Mm:
        return strfmt("mm%u", o.reg);
      case OperandKind::Xmm:
        return strfmt("xmm%u", o.reg);
      case OperandKind::Mem: {
        std::string s = "[";
        bool first = true;
        if (o.mem.has_base) {
            s += regName(o.mem.base);
            first = false;
        }
        if (o.mem.has_index) {
            if (!first)
                s += "+";
            s += strfmt("%s*%u", regName(o.mem.index), o.mem.scale);
            first = false;
        }
        if (o.mem.disp || first) {
            if (!first)
                s += o.mem.disp < 0 ? "-" : "+";
            int64_t d = o.mem.disp;
            if (!first && d < 0)
                d = -d;
            s += strfmt("0x%llx", static_cast<unsigned long long>(
                static_cast<uint64_t>(d) & 0xffffffffULL));
        }
        return s + "]";
      }
    }
    return "?";
}

} // namespace

const OpInfo &
opInfo(Op op)
{
    return op_table[static_cast<size_t>(op)];
}

const char *
opName(Op op)
{
    return opInfo(op).name;
}

std::string
Insn::toString() const
{
    std::string mnem = opName(op);
    if (op == Op::Jcc || op == Op::Setcc || op == Op::Cmovcc)
        mnem += condName(cond);
    if (fp_pop && opInfo(op).is_fp)
        mnem += "p";
    if (rep)
        mnem = "rep " + mnem;
    std::string d = operandToString(dst, op_size);
    std::string s = operandToString(src, op_size);
    std::string out = strfmt("%08x: %s", addr, mnem.c_str());
    if (!d.empty())
        out += " " + d;
    if (!s.empty())
        out += (d.empty() ? " " : ", ") + s;
    return out;
}

uint32_t
insnFlagsRead(const Insn &insn)
{
    uint32_t fl = opInfo(insn.op).flags_read;
    if (insn.op == Op::Jcc || insn.op == Op::Setcc || insn.op == Op::Cmovcc)
        fl |= condFlagsRead(insn.cond);
    return fl;
}

uint32_t
insnFlagsWritten(const Insn &insn)
{
    return opInfo(insn.op).flags_written;
}

bool
endsBlock(const Insn &insn)
{
    return opInfo(insn.op).is_branch;
}

bool
canFault(const Insn &insn)
{
    const OpInfo &info = opInfo(insn.op);
    if (info.may_fault_arith)
        return true;
    if ((info.may_load || info.may_store) &&
        (insn.dst.isMem() || insn.src.isMem())) {
        return true;
    }
    // Stack-relative implicit accesses.
    switch (insn.op) {
      case Op::Push:
      case Op::Pop:
      case Op::Call:
      case Op::CallInd:
      case Op::Ret:
      case Op::Leave:
      case Op::Movs:
      case Op::Stos:
      case Op::Lods:
        return true;
      default:
        return false;
    }
}

bool
accessesMemory(const Insn &insn)
{
    switch (insn.op) {
      case Op::Push:
      case Op::Pop:
      case Op::Call:
      case Op::CallInd:
      case Op::Ret:
      case Op::Leave:
      case Op::Movs:
      case Op::Stos:
      case Op::Lods:
        return true;
      default:
        break;
    }
    const OpInfo &info = opInfo(insn.op);
    return (info.may_load || info.may_store) &&
           (insn.dst.isMem() || insn.src.isMem());
}

bool
writesMemory(const Insn &insn)
{
    switch (insn.op) {
      case Op::Push:
      case Op::Call:
      case Op::CallInd:
      case Op::Movs:
      case Op::Stos:
        return true;
      default:
        break;
    }
    return opInfo(insn.op).may_store && insn.dst.isMem();
}

} // namespace el::ia32
