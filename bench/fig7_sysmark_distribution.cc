/**
 * @file
 * Figure 7: execution-time distribution of Sysmark-like applications
 * (paper: hot 46%, cold 5%, overhead 12%, other 22%, idle 15%). These
 * applications have large flat code footprints and spend significant
 * time in the OS kernel/drivers (executed natively) and idle.
 */

#include "bench/bench_common.hh"

using namespace el;

int
main(int argc, char **argv)
{
    if (int rc = bench::handleArgs(argc, argv); rc >= 0)
        return rc;
    bench::banner("Execution time distribution, Sysmark-like suite",
                  "Figure 7");

    double hot = 0, cold = 0, ovh = 0, native = 0, idle = 0;
    unsigned n = 0;
    Table table({"application", "hot", "cold", "overhead", "native(OS)",
                 "idle"});
    bench::Report rep("fig7_sysmark_distribution");
    for (guest::Workload &w : guest::sysmarkSuite()) {
        harness::TranslatedRun tr =
            harness::runTranslated(w.image, w.params.abi);
        bench::Distribution d = bench::distributionOf(*tr.runtime);
        table.addRow({w.name, bench::pct(d.hot), bench::pct(d.cold),
                      bench::pct(d.overhead), bench::pct(d.native),
                      bench::pct(d.idle)});
        rep.row(w.name)
            .metric("cycles", tr.outcome.cycles)
            .metric("hot_frac", d.hot)
            .metric("cold_frac", d.cold)
            .metric("overhead_frac", d.overhead)
            .metric("native_frac", d.native)
            .metric("idle_frac", d.idle)
            .attribution(*tr.runtime);
        hot += d.hot;
        cold += d.cold;
        ovh += d.overhead;
        native += d.native;
        idle += d.idle;
        ++n;
    }
    table.addRow({"Average", bench::pct(hot / n), bench::pct(cold / n),
                  bench::pct(ovh / n), bench::pct(native / n),
                  bench::pct(idle / n)});
    table.addRow({"(paper)", "46.0%", "5.0%", "12.0%", "22.0%", "15.0%"});
    rep.scalar("avg_hot_frac", hot / n);
    rep.scalar("avg_cold_frac", cold / n);
    rep.scalar("avg_overhead_frac", ovh / n);
    rep.scalar("avg_native_frac", native / n);
    rep.scalar("avg_idle_frac", idle / n);
    rep.write();
    std::printf("%s\n", table.render().c_str());
    std::printf("Shape checks vs Figure 6: hot fraction drops sharply,\n"
                "overhead rises (more code translated, executed less),\n"
                "and native kernel/driver time plus idle appear.\n");
    return 0;
}
