file(REMOVE_RECURSE
  "CMakeFiles/misalignment_clinic.dir/misalignment_clinic.cpp.o"
  "CMakeFiles/misalignment_clinic.dir/misalignment_clinic.cpp.o.d"
  "misalignment_clinic"
  "misalignment_clinic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misalignment_clinic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
