#include "support/stats.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"
#include "support/strfmt.hh"

namespace el
{

std::string
StatGroup::dump() const
{
    std::string out;
    for (const auto &[name, value] : counters_)
        out += strfmt("%-40s = %llu\n", name.c_str(),
                      static_cast<unsigned long long>(value));
    return out;
}

void
Histogram::sample(int64_t value, uint64_t count)
{
    total_ += count;
    sum_ += static_cast<double>(value) * static_cast<double>(count);
    if (value < lo_) {
        underflow_ += count;
        return;
    }
    uint64_t idx = static_cast<uint64_t>(value - lo_) /
                   static_cast<uint64_t>(width_);
    if (idx >= buckets_.size())
        overflow_ += count;
    else
        buckets_[idx] += count;
}

double
Histogram::mean() const
{
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    el_assert(cells.size() == headers_.size(),
              "row width %zu != header width %zu", cells.size(),
              headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto fmt_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
            line += strfmt("%-*s", static_cast<int>(width[c] + 2),
                           row[c].c_str());
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = fmt_row(headers_);
    size_t rule_len = 0;
    for (size_t c = 0; c < width.size(); ++c)
        rule_len += width[c] + 2;
    out += std::string(rule_len, '-') + "\n";
    for (const auto &row : rows_)
        out += fmt_row(row);
    return out;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace el
