#include "support/sentinel.hh"

namespace el::sentinel
{

const char *
healthName(Health h)
{
    switch (h) {
      case Health::Healthy:
        return "healthy";
      case Health::Suspect:
        return "suspect";
      case Health::Quarantined:
        return "quarantined";
      case Health::Retranslated:
        return "retranslated";
    }
    return "?";
}

Sentinel::Sentinel(Config cfg)
    : cfg_(cfg),
      divergence_log_(cfg.divergence_log_capacity
                          ? cfg.divergence_log_capacity
                          : 1,
                      RingPolicy::DropNewest)
{
    if (cfg_.replay_budget == 0)
        cfg_.replay_budget = 1;
    if (cfg_.quarantine_cooldown == 0)
        cfg_.quarantine_cooldown = 1;
}

bool
Sentinel::shouldCheck()
{
    uint64_t n = regions_seen_++;
    if (cfg_.selfcheck_rate == 0)
        return false;
    return n % cfg_.selfcheck_rate == 0;
}

bool
Sentinel::noteFault(uint32_t entry_eip)
{
    HealthRecord &r = row(entry_eip);
    ++r.faults;
    if (r.state == Health::Healthy && cfg_.fault_suspect_threshold &&
        r.faults >= cfg_.fault_suspect_threshold) {
        r.state = Health::Suspect;
        notifyShift(entry_eip, Health::Healthy, r.pinned, r);
    }
    if ((r.state == Health::Healthy || r.state == Health::Suspect ||
         r.state == Health::Retranslated) &&
        cfg_.fault_quarantine_threshold &&
        r.faults >= cfg_.fault_quarantine_threshold) {
        enterQuarantine(entry_eip, r);
        r.faults = 0; // A fresh translation starts from a clean count.
        return true;
    }
    return false;
}

bool
Sentinel::noteGuardMiss(uint32_t entry_eip)
{
    HealthRecord &r = row(entry_eip);
    ++r.guard_misses;
    if (r.state == Health::Healthy && cfg_.guard_quarantine_threshold &&
        r.guard_misses >= cfg_.guard_quarantine_threshold / 2 + 1) {
        r.state = Health::Suspect;
        notifyShift(entry_eip, Health::Healthy, r.pinned, r);
    }
    if ((r.state == Health::Healthy || r.state == Health::Suspect ||
         r.state == Health::Retranslated) &&
        cfg_.guard_quarantine_threshold &&
        r.guard_misses >= cfg_.guard_quarantine_threshold) {
        enterQuarantine(entry_eip, r);
        r.guard_misses = 0;
        return true;
    }
    return false;
}

void
Sentinel::noteDivergence(uint32_t entry_eip)
{
    ++total_divergences_;
    HealthRecord &r = row(entry_eip);
    ++r.divergences;
    enterQuarantine(entry_eip, r);
}

void
Sentinel::enterQuarantine(uint32_t eip, HealthRecord &r)
{
    Health before = r.state;
    bool was_pinned = r.pinned;
    r.state = Health::Quarantined;
    if (r.retries >= cfg_.retranslate_limit) {
        r.pinned = true;
        r.cooldown_left = 0;
    } else {
        r.cooldown_left = cfg_.quarantine_cooldown;
    }
    notifyShift(eip, before, was_pinned, r);
}

void
Sentinel::logDivergence(const DivergenceInfo &info)
{
    divergence_log_.push(info);
}

bool
Sentinel::isQuarantined(uint32_t eip) const
{
    const HealthRecord *r = record(eip);
    return r && (r->pinned || r->state == Health::Quarantined);
}

bool
Sentinel::interpretGate(uint32_t eip) const
{
    const HealthRecord *r = record(eip);
    if (!r)
        return false;
    if (r->pinned)
        return true;
    return r->state == Health::Quarantined && r->cooldown_left > 0;
}

void
Sentinel::tickCooldown(uint32_t eip)
{
    auto it = ledger_.find(eip);
    if (it == ledger_.end())
        return;
    HealthRecord &r = it->second;
    if (r.pinned || r.state != Health::Quarantined)
        return;
    if (r.cooldown_left > 0)
        --r.cooldown_left;
    if (r.cooldown_left == 0) {
        // Served its quarantine: allow one fresh cold translation.
        ++r.retries;
        r.state = Health::Retranslated;
        notifyShift(eip, Health::Quarantined, r.pinned, r);
    }
}

const HealthRecord *
Sentinel::record(uint32_t eip) const
{
    auto it = ledger_.find(eip);
    return it == ledger_.end() ? nullptr : &it->second;
}

} // namespace el::sentinel
