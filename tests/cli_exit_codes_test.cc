/**
 * @file
 * Exit-code hygiene for the el_run CLI: scripts and CI must be able to
 * tell *whose fault* a failed run was from the exit code alone —
 * 0 success, 1 usage, 10 the guest's own fault, 20 a translator
 * internal error, 30 a sentinel-detected divergence. The binary under
 * test comes from the EL_RUN_BIN environment variable, which the CMake
 * test registration points at the just-built el_run.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include <sys/wait.h>

namespace
{

int
runCli(const std::string &args)
{
    const char *bin = std::getenv("EL_RUN_BIN");
    EXPECT_NE(bin, nullptr)
        << "EL_RUN_BIN must point at the el_run binary";
    if (!bin)
        return -1;
    std::string cmd =
        std::string(bin) + " " + args + " > /dev/null 2>&1";
    int rc = std::system(cmd.c_str());
    if (rc < 0 || !WIFEXITED(rc))
        return -1;
    return WEXITSTATUS(rc);
}

TEST(CliExitCodes, CleanRunIsZero)
{
    EXPECT_EQ(runCli("--workload=jit_rewriter"), 0);
}

TEST(CliExitCodes, UsageErrorIsOne)
{
    EXPECT_EQ(runCli("--no-such-flag"), 1);
    EXPECT_EQ(runCli("--workload="), 1);
    EXPECT_EQ(runCli("--workload=no_such_personality"), 1);
}

TEST(CliExitCodes, IoErrorIsTwo)
{
    EXPECT_EQ(runCli("--workload=jit_rewriter "
                     "--report-json=/no/such/dir/report.json"),
              2);
}

TEST(CliExitCodes, UnhandledGuestFaultIsTen)
{
    // The faulter diagnostic dereferences an unmapped page with no
    // handler registered: the guest's own fault, not the translator's.
    EXPECT_EQ(runCli("--workload=faulter"), 10);
}

TEST(CliExitCodes, TranslatorInternalErrorIsTwenty)
{
    // Injected BTOS allocation failure on every attempt: the runtime
    // cannot initialize. That is our failure, not the guest's.
    EXPECT_EQ(runCli("--workload=jit_rewriter --fault=btos_alloc:1024"),
              20);
}

TEST(CliExitCodes, SentinelDivergenceIsThirty)
{
    // Seeded miscompile + full shadow-checking: the sentinel detects
    // the corrupted translation and el_run reports the divergence class
    // even though the run completes with the correct answer.
    EXPECT_EQ(runCli("--workload=jit_rewriter --fault=miscompile:128 "
                     "--fault-seed=1 --selfcheck=1"),
              30);
}

} // namespace
