/**
 * @file
 * Register conventions used by the translated code.
 *
 * IA-32 EL "allocates the entire 96-register stack" and runs all
 * translated code in one frame (section 3, footnote 4); this header fixes
 * how the guest state maps onto that frame. The cold translator and the
 * hot translator's renamer both honour these assignments, and the state
 * reconstruction logic (section 4) reads guest registers back out of
 * them.
 */

#ifndef EL_IPF_REGS_HH
#define EL_IPF_REGS_HH

#include <cstdint>

namespace el::ipf
{

// ----- general registers ----------------------------------------------

constexpr uint8_t gr_zero = 0;      //!< r0: hardwired zero.
constexpr uint8_t gr_rt_base = 1;   //!< r1: runtime data area pointer.
constexpr uint8_t gr_t0 = 2;        //!< r2/r3: template scratch.
constexpr uint8_t gr_t1 = 3;

/** r8..r15 hold the guest GPRs eax..edi (zero-extended to 64 bits). */
constexpr uint8_t gr_guest_base = 8;

/** r16: the "IA-32 state register" of section 4 (cold code). */
constexpr uint8_t gr_state = 16;

/** r17..r22 hold the lazy EFLAGS bits CF, PF, AF, ZF, SF, OF as 0/1. */
constexpr uint8_t gr_flag_base = 17;
constexpr uint8_t gr_flag_cf = 17;
constexpr uint8_t gr_flag_pf = 18;
constexpr uint8_t gr_flag_af = 19;
constexpr uint8_t gr_flag_zf = 20;
constexpr uint8_t gr_flag_sf = 21;
constexpr uint8_t gr_flag_of = 22;

/** r23: direction flag (DF) as 0/1. */
constexpr uint8_t gr_flag_df = 23;

/** r24..r31: additional template scratch (addresses, partial values). */
constexpr uint8_t gr_scratch_base = 24;
constexpr unsigned gr_scratch_count = 8;

/** r32..r39: MMX registers MM0..MM7 (integer-register MMX model). */
constexpr uint8_t gr_mmx_base = 32;

/** r40..r55: XMM packed-integer homes, two GRs per register. */
constexpr uint8_t gr_xmm_base = 40;

/** r56..r127: hot-code renaming pool. */
constexpr uint8_t gr_rename_base = 56;
constexpr unsigned gr_rename_count = 72;

constexpr unsigned num_grs = 128;

// ----- floating-point registers ------------------------------------------

constexpr uint8_t fr_zero = 0;  //!< f0 = +0.0 (hardwired).
constexpr uint8_t fr_one = 1;   //!< f1 = +1.0 (hardwired).
constexpr uint8_t fr_t0 = 6;    //!< f6/f7 scratch.
constexpr uint8_t fr_t1 = 7;

/** f8..f15: the x87 physical stack slots 0..7. */
constexpr uint8_t fr_fpstack_base = 8;

/** f16..f31: XMM FP homes, two FRs per register (lo, hi). */
constexpr uint8_t fr_xmm_base = 16;

/** f32..f63: hot-code FP renaming pool. */
constexpr uint8_t fr_rename_base = 32;
constexpr unsigned fr_rename_count = 32;

constexpr unsigned num_frs = 64;

// ----- predicates ----------------------------------------------------------

constexpr uint8_t pr_true = 0;  //!< p0: always true.
constexpr uint8_t pr_t0 = 1;    //!< p1..p5: template scratch.
constexpr uint8_t pr_t1 = 2;
constexpr uint8_t pr_t2 = 3;
constexpr uint8_t pr_t3 = 4;
constexpr uint8_t pr_t4 = 5;

/** p6..p15: cold-code compare targets. */
constexpr uint8_t pr_cold_base = 6;

/** p16..p63: hot-code predicate pool (if-conversion, misalignment). */
constexpr uint8_t pr_rename_base = 16;
constexpr unsigned pr_rename_count = 48;

constexpr unsigned num_prs = 64;

// ----- branch registers ---------------------------------------------------

constexpr uint8_t br_ret = 0;
constexpr uint8_t br_ind = 6; //!< indirect-branch target register.
constexpr unsigned num_brs = 8;

/** GR holding guest GPR @p reg (0..7 = eax..edi). */
constexpr uint8_t
grForGuest(unsigned reg)
{
    return static_cast<uint8_t>(gr_guest_base + (reg & 7));
}

/** GR holding MMX register @p i. */
constexpr uint8_t
grForMmx(unsigned i)
{
    return static_cast<uint8_t>(gr_mmx_base + (i & 7));
}

/** GR pair base for XMM register @p i in the packed-integer domain. */
constexpr uint8_t
grForXmm(unsigned i, unsigned half)
{
    return static_cast<uint8_t>(gr_xmm_base + (i & 7) * 2 + (half & 1));
}

/** FR holding x87 physical slot @p phys (0..7). */
constexpr uint8_t
frForFpSlot(unsigned phys)
{
    return static_cast<uint8_t>(fr_fpstack_base + (phys & 7));
}

/** FR pair member for XMM register @p i in an FP domain. */
constexpr uint8_t
frForXmm(unsigned i, unsigned half)
{
    return static_cast<uint8_t>(fr_xmm_base + (i & 7) * 2 + (half & 1));
}

} // namespace el::ipf

#endif // EL_IPF_REGS_HH
