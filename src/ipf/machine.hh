/**
 * @file
 * The IPF machine model: functional execution plus cycle-approximate
 * EPIC timing.
 *
 * Functional side: 128 general registers with NaT bits, 64 FP registers,
 * 64 predicates, 8 branch registers. Instructions execute sequentially,
 * but the scheduler guarantees no intra-group dependencies, so sequential
 * execution equals the architectural parallel semantics (a debug mode
 * verifies this property).
 *
 * Timing side: instruction groups delimited by stop bits issue in order;
 * a group occupies max(structural, 1) cycles and stalls until its source
 * registers' producing latencies have elapsed. Memory operations consult
 * the Itanium-2-like cache model. Misaligned accesses take the
 * OS-assisted fault path and cost thousands of cycles (section 5's
 * premise). Every cycle is attributed to the executing instruction's
 * bucket (hot/cold/overhead/native/idle) so Figures 6 and 7 are measured
 * rather than assumed.
 *
 * Control speculation: ld.s defers faults by setting the target's NaT
 * bit; NaT propagates through ALU ops; chk.s branches to recovery code
 * when it sees a NaT. This is the hardware mechanism section 4's commit
 * points lean on.
 */

#ifndef EL_IPF_MACHINE_HH
#define EL_IPF_MACHINE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <map>

#include "ipf/code_cache.hh"
#include "ipf/regs.hh"
#include "mem/cache_model.hh"
#include "mem/memory.hh"
#include "support/ring.hh"

namespace el::prof
{
class Profiler;
} // namespace el::prof

namespace el::ipf
{

/** One FP register: an 82-bit-register model with two synchronized views. */
struct Fr
{
    long double val = 0.0L; //!< Scalar FP view.
    uint64_t bits = 0;      //!< Significand / packed view.
    bool is_bits = false;   //!< True when last written as raw bits.

    /** Write as a scalar FP value (keeps the significand view in sync). */
    void
    setVal(long double v)
    {
        val = v;
        std::memcpy(&bits, &v, 8); // x86 long double: significand first
        is_bits = false;
    }

    /** Write as raw 64-bit data (integer/packed content). */
    void
    setBits(uint64_t b)
    {
        bits = b;
        is_bits = true;
    }

    /**
     * Scalar FP view. When the register holds raw bits, assemble the
     * 80-bit pattern {sign=1, exp=all-ones, significand=bits}, matching
     * what an MMX write does to an aliased x87 register.
     */
    long double
    valView() const
    {
        if (!is_bits)
            return val;
        uint8_t raw[16] = {};
        std::memcpy(raw, &bits, 8);
        raw[8] = 0xff;
        raw[9] = 0xff;
        long double out;
        std::memcpy(&out, raw, 10);
        return out;
    }

    /** Raw 64-bit view (always valid). */
    uint64_t bitsView() const { return bits; }
};

/** Why the machine stopped. */
enum class StopKind : uint8_t
{
    Exit,        //!< An Exit instruction executed (translator service).
    MemFault,    //!< Unmapped/protected access in translated code.
    CycleLimit,  //!< Budget exhausted (runaway guard).
    BadIp,       //!< Jumped outside the code cache.
};

/** Description of a machine stop. */
struct StopInfo
{
    StopKind kind = StopKind::Exit;
    ExitReason reason = ExitReason::None;
    int64_t payload = 0;
    int64_t instr_index = -1;  //!< Code-cache index of the stopping op.
    uint64_t fault_addr = 0;   //!< For MemFault.
    bool fault_is_write = false;
};

/** Timing parameters (defaults approximate a 1GHz Itanium 2). */
struct MachineConfig
{
    unsigned lat_alu = 1;
    unsigned lat_mul = 2;        //!< shladd chains / parallel ops
    unsigned lat_ld = 1;         //!< added on top of cache latency
    unsigned lat_fp = 4;
    unsigned lat_fdiv = 24;      //!< frcpa + Newton pseudo-op
    unsigned lat_getf = 5;       //!< FR<->GR moves are slow (the paper's
    unsigned lat_setf = 5;       //!< reason MMX aliasing needs care)
    unsigned br_taken_bubble = 1;
    unsigned br_indirect_penalty = 6;
    unsigned misalign_penalty = 2000; //!< OS-assisted unaligned fix-up.
    bool verify_groups = false;  //!< Check no intra-group RAW/WAW deps.
};

/** Per-bucket cycle and instruction accounting. */
struct BucketStats
{
    std::array<double, static_cast<size_t>(Bucket::NumBuckets)> cycles{};
    std::array<uint64_t, static_cast<size_t>(Bucket::NumBuckets)> insns{};

    double
    totalCycles() const
    {
        double t = 0;
        for (double c : cycles)
            t += c;
        return t;
    }
};

/** Per-translation-block cycle/slot accounting (gated; observability). */
struct BlockCost
{
    double cycles = 0.0;  //!< Simulated cycles attributed to the block.
    uint64_t insns = 0;   //!< Instructions retired inside the block.
};

/** The IPF machine. */
class Machine
{
  public:
    Machine(CodeCache &cache, mem::Memory &memory, MachineConfig cfg = {})
        : code_(cache), mem_(memory), cfg_(cfg),
          dcache_(mem::CacheModel::itanium2())
    {
        reset();
    }

    /** Reset register state (not statistics). */
    void reset();

    /**
     * Run from code-cache index @p entry until the code exits, faults,
     * or @p max_cycles have elapsed.
     */
    StopInfo run(int64_t entry, uint64_t max_cycles = ~0ULL);

    // ----- register access (used by the runtime for state exchange) ---
    uint64_t gr(unsigned idx) const { return grs_[idx]; }
    void setGr(unsigned idx, uint64_t v) { grs_[idx] = v; nats_[idx] = false; }
    bool grNat(unsigned idx) const { return nats_[idx]; }
    const Fr &fr(unsigned idx) const { return frs_[idx]; }
    Fr &fr(unsigned idx) { return frs_[idx]; }
    bool pr(unsigned idx) const { return prs_[idx]; }
    void setPr(unsigned idx, bool v) { prs_[idx] = idx == 0 ? true : v; }
    uint64_t br(unsigned idx) const { return brs_[idx]; }
    void setBr(unsigned idx, uint64_t v) { brs_[idx] = v; }

    // ----- statistics -------------------------------------------------
    const BucketStats &stats() const { return stats_; }
    BucketStats &stats() { return stats_; }
    uint64_t retired() const { return retired_; }
    uint64_t misalignedAccesses() const { return misaligned_; }
    mem::CacheModel &dcache() { return dcache_; }

    /**
     * Misalignment-penalty cycles folded into each bucket's total. A
     * subset of stats().cycles — subtracting it yields the "useful"
     * execution time per bucket, which the attribution report needs to
     * separate fault handling from cold/hot code time.
     */
    const std::array<double, static_cast<size_t>(Bucket::NumBuckets)> &
    misalignCycles() const
    {
        return misalign_cycles_;
    }

    /**
     * Enable per-translation-block cycle accounting. Off by default:
     * the map update in closeGroup() is measurable on hot loops, so the
     * runtime only turns it on when a run report was requested.
     */
    void setTrackBlockCycles(bool on) { track_blocks_ = on; }
    bool trackBlockCycles() const { return track_blocks_; }

    /** Per-block costs keyed by translation block id (see InstrMeta). */
    const std::map<int32_t, BlockCost> &blockCosts() const
    {
        return block_costs_;
    }

    /**
     * Attach the execution profiler (null detaches). The machine
     * reports probe-instruction visits to it; timing is untouched, so
     * cycle counts are bit-identical with or without a profiler, and
     * the detached path costs one predictable branch per instruction.
     */
    void setProfiler(prof::Profiler *p) { profiler_ = p; }

    /**
     * Attach a translation-block visit log (null detaches). While
     * attached, the id of every translation block execution enters —
     * deduplicated against the immediately preceding block — is pushed
     * into @p log, giving the divergence sentinel the set of artifacts
     * a checked region executed. Same contract as the profiler hook:
     * timing untouched, cycle counts bit-identical attached or not,
     * and the detached path is one predictable branch per instruction.
     */
    void
    setVisitLog(BoundedRing<int32_t> *log)
    {
        visit_log_ = log;
        visit_last_ = -1;
    }

    /** Charge synthetic cycles (translator overhead, native time, idle). */
    void
    chargeCycles(Bucket bucket, double cycles)
    {
        stats_.cycles[static_cast<size_t>(bucket)] += cycles;
        synthetic_cycles_ += cycles;
    }

    /**
     * Total cycles charged via chargeCycles() rather than executed
     * groups. Closes the block-level accounting books: when block
     * tracking is on, Σ blockCosts().cycles + syntheticCycles() equals
     * totalCycles() exactly — the auditor's core closure invariant.
     * Cycles added to stats() directly (the seeded accounting-skew
     * fault does exactly that) break the identity and are caught.
     */
    double syntheticCycles() const { return synthetic_cycles_; }

    double totalCycles() const { return stats_.totalCycles(); }

    const MachineConfig &config() const { return cfg_; }
    MachineConfig &config() { return cfg_; }

  private:
    /** Execute one instruction functionally. Returns false on stop. */
    bool execute(const Instr &i, StopInfo *stop);

    /** Close the current timing group. */
    void closeGroup();

    /** Charge a group's structural cost and source stalls. */
    void accountInstr(const Instr &i);

    /** Report a probe-instruction visit to the attached profiler. */
    void profileObserve(const Instr &i);

    CodeCache &code_;
    mem::Memory &mem_;
    MachineConfig cfg_;
    mem::CacheModel dcache_;

    std::array<uint64_t, num_grs> grs_{};
    std::array<bool, num_grs> nats_{};
    std::array<Fr, num_frs> frs_{};
    std::array<bool, num_prs> prs_{};
    std::array<uint64_t, num_brs> brs_{};

    int64_t ip_ = 0;
    bool branched_ = false; //!< Taken branch in the current group.

    // Timing state.
    double cycle_ = 0.0;
    std::array<double, num_grs> gr_ready_{};
    std::array<double, num_frs> fr_ready_{};
    // Current-group accumulation.
    unsigned grp_m_ = 0, grp_i_ = 0, grp_f_ = 0, grp_b_ = 0, grp_a_ = 0;
    unsigned grp_total_ = 0;
    double grp_stall_ = 0.0;
    double grp_extra_ = 0.0; //!< memory/branch penalties inside the group
    double grp_misalign_ = 0.0; //!< misalign share of grp_extra_
    unsigned grp_insns_ = 0;    //!< instructions in the current group
    Bucket grp_bucket_ = Bucket::Cold;
    int32_t grp_block_ = -1; //!< block id the current group belongs to
    bool grp_open_ = false;
    bool track_blocks_ = false;
    prof::Profiler *profiler_ = nullptr; //!< Null = profiling off.
    BoundedRing<int32_t> *visit_log_ = nullptr; //!< Null = no log.
    int32_t visit_last_ = -1; //!< Last block id pushed into the log.
    // Group verification (debug).
    std::array<int8_t, num_grs> grp_gr_writer_{};
    std::array<int8_t, num_frs> grp_fr_writer_{};

    BucketStats stats_;
    double synthetic_cycles_ = 0.0;
    std::array<double, static_cast<size_t>(Bucket::NumBuckets)>
        misalign_cycles_{};
    std::map<int32_t, BlockCost> block_costs_;
    uint64_t retired_ = 0;
    uint64_t misaligned_ = 0;
};

} // namespace el::ipf

#endif // EL_IPF_MACHINE_HH
