/**
 * @file
 * Quickstart: assemble a small IA-32 program, run it under IA-32 EL on
 * the simulated Itanium machine, and inspect what the two-phase
 * translator did.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "btlib/abi.hh"
#include "guest/image.hh"
#include "harness/exec.hh"
#include "ia32/assembler.hh"

using namespace el;
using namespace el::ia32;
using guest::Layout;

int
main()
{
    // 1. Build a guest program: compute the 20th Fibonacci number and
    //    print it through the (simulated) Linux write syscall.
    Assembler as(Layout::code_base);
    as.movRI(RegEax, 0);
    as.movRI(RegEbx, 1);
    as.movRI(RegEcx, 20);
    Label top = as.label();
    as.bind(top);
    as.movRR(RegEdx, RegEbx);
    as.aluRR(Op::Add, RegEbx, RegEax);
    as.movRR(RegEax, RegEdx);
    as.decR(RegEcx);
    as.jcc(Cond::NE, top);
    // Decimal-print eax into a buffer (simple division loop).
    as.movRI(RegEsi, Layout::data_base + 15);
    as.movMI8(memb(RegEsi, 0), '\n');
    Label digits = as.label();
    as.bind(digits);
    as.movRI(RegEcx, 10);
    as.movRI(RegEdx, 0);
    as.divR(RegEcx);
    as.aluRI8(Op::Add, RegDl, '0');
    as.decR(RegEsi);
    as.movMR8(memb(RegEsi, 0), RegDl);
    as.testRR(RegEax, RegEax);
    as.jcc(Cond::NE, digits);
    // write(buf=esi, len=end-esi)
    as.movRI(RegEax, btlib::linux_abi::nr_write);
    as.movRR(RegEbx, RegEsi);
    as.movRI(RegEcx, Layout::data_base + 16);
    as.aluRR(Op::Sub, RegEcx, RegEsi);
    as.intN(btlib::linux_abi::int_vector);
    as.movRI(RegEax, btlib::linux_abi::nr_exit);
    as.movRI(RegEbx, 0);
    as.intN(btlib::linux_abi::int_vector);

    guest::Image img;
    img.name = "fib";
    img.entry = as.base();
    img.addCode(as.base(), as.finish());
    img.addData(Layout::data_base, 0x1000);

    // 2. Run it under IA-32 EL.
    harness::TranslatedRun run =
        harness::runTranslated(img, btlib::OsAbi::Linux);

    std::printf("guest output : %s", run.outcome.console.c_str());
    std::printf("exit code    : %d\n", run.outcome.exit_code);
    std::printf("IPF cycles   : %.0f\n", run.outcome.cycles);

    // 3. Look inside the translator.
    StatGroup &ts = run.runtime->translator().stats;
    std::printf("\ntwo-phase translation summary:\n");
    std::printf("  cold blocks translated : %llu (%llu IA-32 insns)\n",
                (unsigned long long)ts.get("xlate.cold_blocks"),
                (unsigned long long)ts.get("xlate.cold_insns"));
    std::printf("  hot traces built       : %llu (%llu IA-32 insns)\n",
                (unsigned long long)ts.get("xlate.hot_blocks"),
                (unsigned long long)ts.get("xlate.hot_insns"));
    std::printf("  commit points recorded : %llu\n",
                (unsigned long long)ts.get("hot.commit_points"));
    const auto &ms = run.runtime->machine().stats();
    double tot = run.runtime->machine().totalCycles();
    std::printf("  cycle split            : hot %.1f%%, cold %.1f%%, "
                "overhead %.1f%%\n",
                100 * ms.cycles[0] / tot, 100 * ms.cycles[1] / tot,
                100 * ms.cycles[2] / tot);

    // 4. Cross-check against the reference interpreter.
    harness::Outcome ref =
        harness::runInterpreter(img, btlib::OsAbi::Linux);
    std::printf("\ninterpreter cross-check: %s\n",
                ref.console == run.outcome.console &&
                        ref.exit_code == run.outcome.exit_code
                    ? "IDENTICAL"
                    : "MISMATCH (bug!)");
    return 0;
}
