/**
 * @file
 * Translation-lifecycle event tracer.
 *
 * A low-overhead, thread-safe recorder of spans and instant events on
 * the *simulated* timeline: timestamps are simulated cycles, and the
 * "thread" of an event is a logical lane — lane 0 is the guest/runtime
 * thread, lane 1+k is simulated hot-pipeline worker slot k. Because
 * both timestamps and lanes come from the simulation (never from
 * wall-clock or host thread identity), a deterministic run produces a
 * bit-identical trace regardless of real worker scheduling.
 *
 * Recording is per-thread: each host thread appends into its own ring
 * buffer (bounded; overflow drops the newest event and counts it), so
 * pipeline workers never contend with the main thread. Export merges
 * the rings and sorts by (timestamp, lane) into Chrome trace-event JSON
 * loadable in chrome://tracing or https://ui.perfetto.dev.
 *
 * The disabled path is a single branch per event at every call site:
 * instrumented code holds a `Tracer *` that is null when tracing is
 * off, and the simulation never charges cycles for tracing, so cycle
 * results are bit-identical with tracing on or off.
 */

#ifndef EL_SUPPORT_TRACE_HH
#define EL_SUPPORT_TRACE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/ring.hh"

namespace el::trace
{

/** Event category (Chrome "cat" field; filterable in the viewer). */
enum class Cat : uint8_t
{
    Translate, //!< Cold translation.
    Hot,       //!< Hot-phase lifecycle (register/snapshot/emit/commit).
    Cache,     //!< Code-cache flush/GC, SMC, link/unlink.
    Fault,     //!< Fault handling + fault injection.
    Runtime,   //!< Everything else in BTGeneric.
};

const char *catName(Cat cat);

/** One key/value argument attached to an event. */
struct Arg
{
    const char *key = nullptr; //!< Static string (call sites use literals).
    int64_t value = 0;
};

constexpr unsigned max_args = 4;

/** One recorded event. Name/category strings must be static. */
struct Event
{
    const char *name = nullptr;
    Cat cat = Cat::Runtime;
    char ph = 'i';    //!< 'X' complete span, 'i' instant.
    uint32_t tid = 0; //!< Logical lane: 0 = guest, 1+k = worker slot k.
    double ts = 0;    //!< Simulated cycles at event start.
    double dur = 0;   //!< Span length in simulated cycles ('X' only).
    Arg args[max_args];
    uint8_t nargs = 0;
};

/** The tracer. One instance per traced run; see file comment. */
class Tracer
{
  public:
    /** @p ring_capacity Per-thread ring size in events. */
    explicit Tracer(size_t ring_capacity = 1 << 16)
        : ring_capacity_(ring_capacity ? ring_capacity : 1)
    {}

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Record a complete span of @p dur simulated cycles at @p ts. */
    void
    span(const char *name, Cat cat, uint32_t tid, double ts, double dur,
         std::initializer_list<Arg> args = {})
    {
        record(name, cat, 'X', tid, ts, dur, args);
    }

    /** Record an instant event at @p ts. */
    void
    instant(const char *name, Cat cat, uint32_t tid, double ts,
            std::initializer_list<Arg> args = {})
    {
        record(name, cat, 'i', tid, ts, 0, args);
    }

    /**
     * Merged view of every ring, sorted by (ts, tid, name, first arg) —
     * a deterministic order for a deterministic event set, independent
     * of which host thread recorded what when.
     */
    std::vector<Event> snapshot() const;

    /** Events dropped on ring overflow, across all rings. */
    uint64_t dropped() const;

    /** Chrome trace-event JSON (the {"traceEvents": [...]} form). */
    std::string chromeJson() const;

    /** Write chromeJson() to @p path; false on I/O failure. */
    bool writeChromeJson(const std::string &path) const;

  private:
    /** One host thread's bounded event buffer. Drop-newest: on
     *  overflow the earliest part of the run stays intact (see
     *  support/ring.hh for the shared ring + the profiler's opposite
     *  choice). */
    struct Ring
    {
        mutable std::mutex mu; //!< Owner appends; snapshot() reads.
        BoundedRing<Event> events;

        explicit Ring(size_t capacity)
            : events(capacity, RingPolicy::DropNewest)
        {}
    };

    void record(const char *name, Cat cat, char ph, uint32_t tid,
                double ts, double dur, std::initializer_list<Arg> args);

    /** The calling thread's ring (created on first use). */
    Ring *threadRing();

    size_t ring_capacity_;
    /** Distinguishes this instance from a dead tracer that occupied the
     *  same address (the per-thread ring cache keys on both). */
    uint64_t instance_id_ = nextInstanceId();
    mutable std::mutex rings_mu_;
    std::vector<std::unique_ptr<Ring>> rings_;

    static uint64_t nextInstanceId();
};

/**
 * Validate a Chrome trace-event JSON file: well-formed JSON, a
 * "traceEvents" array whose entries carry name/ph/ts/tid, and
 * non-decreasing timestamps within each tid. Returns true when valid;
 * otherwise fills @p error. Used by `el_run --validate-trace` and CI.
 */
bool validateChromeTrace(const std::string &json_text, std::string *error);

} // namespace el::trace

#endif // EL_SUPPORT_TRACE_HH
