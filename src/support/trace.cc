#include "support/trace.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <map>

#include "support/json.hh"

namespace el::trace
{

const char *
catName(Cat cat)
{
    switch (cat) {
      case Cat::Translate:
        return "translate";
      case Cat::Hot:
        return "hot";
      case Cat::Cache:
        return "cache";
      case Cat::Fault:
        return "fault";
      case Cat::Runtime:
        return "runtime";
    }
    return "?";
}

uint64_t
Tracer::nextInstanceId()
{
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

Tracer::Ring *
Tracer::threadRing()
{
    // Cache the (tracer, ring) pair per thread: the common case is one
    // tracer per run, so the lookup is two compares. The instance id
    // guards against address reuse — a new tracer allocated where a
    // dead one lived must not resurrect the dead tracer's ring.
    struct Cache
    {
        const Tracer *owner = nullptr;
        uint64_t owner_id = 0;
        Ring *ring = nullptr;
    };
    thread_local Cache cache;
    if (cache.owner == this && cache.owner_id == instance_id_)
        return cache.ring;

    std::lock_guard<std::mutex> lk(rings_mu_);
    rings_.push_back(std::make_unique<Ring>(ring_capacity_));
    cache.owner = this;
    cache.owner_id = instance_id_;
    cache.ring = rings_.back().get();
    return cache.ring;
}

void
Tracer::record(const char *name, Cat cat, char ph, uint32_t tid,
               double ts, double dur, std::initializer_list<Arg> args)
{
    Ring *ring = threadRing();
    std::lock_guard<std::mutex> lk(ring->mu);
    Event e;
    e.name = name;
    e.cat = cat;
    e.ph = ph;
    e.tid = tid;
    e.ts = ts;
    e.dur = dur;
    e.nargs = 0;
    for (const Arg &a : args) {
        if (e.nargs >= max_args)
            break;
        e.args[e.nargs++] = a;
    }
    ring->events.push(e);
}

std::vector<Event>
Tracer::snapshot() const
{
    std::vector<Event> out;
    {
        std::lock_guard<std::mutex> lk(rings_mu_);
        for (const auto &ring : rings_) {
            std::lock_guard<std::mutex> rlk(ring->mu);
            out.insert(out.end(), ring->events.begin(),
                       ring->events.end());
        }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const Event &a, const Event &b) {
                         if (a.ts != b.ts)
                             return a.ts < b.ts;
                         if (a.tid != b.tid)
                             return a.tid < b.tid;
                         int c = std::strcmp(a.name, b.name);
                         if (c != 0)
                             return c < 0;
                         int64_t av = a.nargs ? a.args[0].value : 0;
                         int64_t bv = b.nargs ? b.args[0].value : 0;
                         return av < bv;
                     });
    return out;
}

uint64_t
Tracer::dropped() const
{
    uint64_t n = 0;
    std::lock_guard<std::mutex> lk(rings_mu_);
    for (const auto &ring : rings_) {
        std::lock_guard<std::mutex> rlk(ring->mu);
        n += ring->events.dropped();
    }
    return n;
}

std::string
Tracer::chromeJson() const
{
    json::Writer w;
    w.beginObject();
    w.key("traceEvents");
    w.beginArray();
    for (const Event &e : snapshot()) {
        w.beginObject();
        w.kv("name", e.name);
        w.kv("cat", catName(e.cat));
        w.key("ph");
        w.str(std::string(1, e.ph));
        w.kv("ts", e.ts);
        if (e.ph == 'X')
            w.kv("dur", e.dur);
        w.kv("pid", 1);
        w.kv("tid", static_cast<uint64_t>(e.tid));
        if (e.ph == 'i')
            w.kv("s", "t"); // instant scope: thread
        w.key("args");
        w.beginObject();
        for (unsigned k = 0; k < e.nargs; ++k)
            w.kv(e.args[k].key, e.args[k].value);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.kv("displayTimeUnit", "ms");
    w.kv("droppedEvents", dropped());
    w.endObject();
    return w.str();
}

bool
Tracer::writeChromeJson(const std::string &path) const
{
    std::string text = chromeJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    size_t n = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = (n == text.size()) && std::fclose(f) == 0;
    if (n != text.size())
        std::fclose(f);
    return ok;
}

bool
validateChromeTrace(const std::string &json_text, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };

    json::Value root;
    std::string perr;
    if (!json::Parser::parse(json_text, &root, &perr))
        return fail("malformed JSON: " + perr);
    if (!root.isObject())
        return fail("top level is not an object");
    const json::Value *events = root.find("traceEvents");
    if (!events || !events->isArray())
        return fail("missing traceEvents array");

    std::map<uint64_t, double> last_ts; // per-tid monotonicity
    size_t idx = 0;
    for (const json::Value &e : events->arr) {
        if (!e.isObject())
            return fail(strfmt("event %zu is not an object", idx));
        const json::Value *name = e.find("name");
        const json::Value *ph = e.find("ph");
        const json::Value *ts = e.find("ts");
        const json::Value *tid = e.find("tid");
        if (!name || !name->isString() || name->str.empty())
            return fail(strfmt("event %zu lacks a name", idx));
        if (!ph || !ph->isString() ||
            (ph->str != "X" && ph->str != "i"))
            return fail(strfmt("event %zu has bad ph", idx));
        if (!ts || !ts->isNumber() || !tid || !tid->isNumber())
            return fail(strfmt("event %zu lacks ts/tid", idx));
        if (ph->str == "X") {
            const json::Value *dur = e.find("dur");
            if (!dur || !dur->isNumber() || dur->num < 0)
                return fail(strfmt("span %zu has bad dur", idx));
        }
        uint64_t t = static_cast<uint64_t>(tid->num);
        auto it = last_ts.find(t);
        if (it != last_ts.end() && ts->num < it->second)
            return fail(strfmt("ts not monotonic on tid %llu at "
                               "event %zu",
                               static_cast<unsigned long long>(t), idx));
        last_ts[t] = ts->num;
        ++idx;
    }
    return true;
}

} // namespace el::trace
