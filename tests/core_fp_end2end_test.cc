/**
 * @file
 * End-to-end differential tests for the section-5 machinery: x87 stack
 * speculation (TOS/TAG guards, FXCH elimination), MMX domain switching,
 * SSE format speculation, and the misalignment pipeline — each checked
 * against the reference interpreter, with the relevant ablation modes
 * exercised too.
 */

#include <gtest/gtest.h>

#include "btlib/abi.hh"
#include "guest/image.hh"
#include "harness/exec.hh"
#include "ia32/assembler.hh"

namespace el
{
namespace
{

using btlib::OsAbi;
using guest::Image;
using guest::Layout;
using ia32::Assembler;
using ia32::Cond;
using ia32::Label;
using ia32::Op;
using namespace ia32;

void
emitExitEax(Assembler &as)
{
    as.movRR(RegEbx, RegEax);
    as.movRI(RegEax, btlib::linux_abi::nr_exit);
    as.intN(btlib::linux_abi::int_vector);
}

Image
makeImage(Assembler &as)
{
    Image img;
    img.name = "fptest";
    img.entry = as.base();
    img.addCode(as.base(), as.finish());
    img.addData(Layout::data_base, 0x10000);
    return img;
}

void
diffRun(const Image &img, core::Options opts = {})
{
    harness::Outcome ref = harness::runInterpreter(img, OsAbi::Linux);
    harness::TranslatedRun tr =
        harness::runTranslated(img, OsAbi::Linux, opts);
    EXPECT_EQ(ref.exited, tr.outcome.exited);
    EXPECT_EQ(ref.faulted, tr.outcome.faulted);
    if (ref.exited)
        EXPECT_EQ(ref.exit_code, tr.outcome.exit_code);
    if (ref.faulted) {
        EXPECT_EQ(ref.fault.kind, tr.outcome.fault.kind);
        EXPECT_EQ(ref.fault.eip, tr.outcome.fault.eip);
    }
    std::string why;
    EXPECT_TRUE(ref.final_state.equalsArch(tr.outcome.final_state, &why))
        << "state mismatch: " << why;
}

/** Seed two f64 values at data_base[0], [8]. */
void
seedDoubles(Assembler &as)
{
    as.movRI(RegEbx, Layout::data_base);
    // 3.0 = 0x4008000000000000
    as.movMI(memb(RegEbx, 0), 0);
    as.movMI(memb(RegEbx, 4), 0x40080000);
    // 0.5 = 0x3FE0000000000000
    as.movMI(memb(RegEbx, 8), 0);
    as.movMI(memb(RegEbx, 12), 0x3fe00000);
}

TEST(FpEnd2End, BasicStackArithmetic)
{
    Assembler as(Layout::code_base);
    seedDoubles(as);
    as.fldM64(memb(RegEbx, 0));  // 3.0
    as.fldM64(memb(RegEbx, 8));  // 0.5
    as.farithStiSt0(Op::Fadd, 1, true); // 3.5
    as.farithM64(Op::Fmul, memb(RegEbx, 0)); // 10.5
    as.fstM64(memb(RegEbx, 16), true);
    as.movRM(RegEax, memb(RegEbx, 20)); // high word of 10.5
    emitExitEax(as);
    diffRun(makeImage(as));
}

TEST(FpEnd2End, FpLoopCrossesBlocks)
{
    // The TOS/TAG speculation must hold across block boundaries in a
    // loop (guard-pass fast path).
    Assembler as(Layout::code_base);
    seedDoubles(as);
    as.fldz();                  // accumulator on the stack across blocks
    as.movRI(RegEcx, 100);
    Label top = as.label();
    as.bind(top);
    as.farithM64(Op::Fadd, memb(RegEbx, 8)); // +0.5 each iteration
    as.decR(RegEcx);
    as.jcc(Cond::NE, top);
    as.fstM64(memb(RegEbx, 24), true);       // 50.0
    as.movRM(RegEax, memb(RegEbx, 28));
    emitExitEax(as);
    core::Options hot;
    hot.heat_threshold = 16;
    hot.hot_batch = 1;
    diffRun(makeImage(as), hot);
}

TEST(FpEnd2End, FxchHeavyKernel)
{
    Assembler as(Layout::code_base);
    seedDoubles(as);
    as.movRI(RegEcx, 64);
    Label top = as.label();
    as.bind(top);
    as.fldM64(memb(RegEbx, 0));
    as.farithM64(Op::Fmul, memb(RegEbx, 8));
    as.fldM64(memb(RegEbx, 8));
    as.farithM64(Op::Fadd, memb(RegEbx, 0));
    as.fxch(1);
    as.farithStiSt0(Op::Fadd, 1, true);
    as.fstM64(memb(RegEbx, 32), true);
    as.decR(RegEcx);
    as.jcc(Cond::NE, top);
    as.movRM(RegEax, memb(RegEbx, 36));
    emitExitEax(as);
    Image img = makeImage(as);
    core::Options hot;
    hot.heat_threshold = 8;
    hot.hot_batch = 1;
    diffRun(img, hot);

    core::Options no_fxch = hot;
    no_fxch.enable_fxch_elim = false;
    diffRun(img, no_fxch);
}

TEST(FpEnd2End, MemoryModeFpStackAblation)
{
    Assembler as(Layout::code_base);
    seedDoubles(as);
    as.fldM64(memb(RegEbx, 0));
    as.fldM64(memb(RegEbx, 8));
    as.fxch(1);
    as.farithStiSt0(Op::Fsub, 1, true); // careful direction
    as.fstM64(memb(RegEbx, 16), true);
    as.movRM(RegEax, memb(RegEbx, 20));
    emitExitEax(as);
    core::Options memfp;
    memfp.enable_fp_stack_spec = false;
    diffRun(makeImage(as), memfp);
}

TEST(FpEnd2End, StackFaultIsPrecise)
{
    Assembler as(Layout::code_base);
    as.fninit();
    as.movRI(RegEsi, 7);
    as.farithSt0Sti(Op::Fadd, 1); // empty stack -> #MF
    as.movRI(RegEsi, 9);
    as.movRI(RegEax, 0);
    emitExitEax(as);
    diffRun(makeImage(as));
}

TEST(FpEnd2End, OverflowFaultAfterEightPushes)
{
    Assembler as(Layout::code_base);
    for (int k = 0; k < 9; ++k)
        as.fldz(); // 9th push overflows
    as.movRI(RegEax, 0);
    emitExitEax(as);
    diffRun(makeImage(as));
}

TEST(FpEnd2End, FcomiBranching)
{
    Assembler as(Layout::code_base);
    seedDoubles(as);
    as.fldM64(memb(RegEbx, 0)); // 3.0
    as.fldM64(memb(RegEbx, 8)); // 0.5 (ST0)
    as.fcomi(1, false);         // 0.5 < 3.0 -> CF
    as.movRI(RegEax, 0);
    Label below = as.label();
    as.jcc(Cond::B, below);
    as.movRI(RegEax, 111);
    as.bind(below);
    as.aluRI(Op::Add, RegEax, 55);
    as.fstM64(memb(RegEbx, 40), true);
    as.fstM64(memb(RegEbx, 48), true);
    emitExitEax(as);
    diffRun(makeImage(as));
}

TEST(FpEnd2End, FildFistpRoundTrip)
{
    Assembler as(Layout::code_base);
    as.movRI(RegEbx, Layout::data_base);
    as.movMI(memb(RegEbx, 0), static_cast<uint32_t>(-1234567));
    as.fildM32(memb(RegEbx, 0));
    as.fchs();
    as.fistpM32(memb(RegEbx, 4));
    as.movRM(RegEax, memb(RegEbx, 4));
    emitExitEax(as);
    diffRun(makeImage(as));
}

TEST(FpEnd2End, MmxKernel)
{
    Assembler as(Layout::code_base);
    as.movRI(RegEbx, Layout::data_base);
    as.movMI(memb(RegEbx, 0), 0x01020304);
    as.movMI(memb(RegEbx, 4), 0x05060708);
    as.movMI(memb(RegEbx, 8), 0x10203040);
    as.movMI(memb(RegEbx, 12), 0x50607080);
    as.movRI(RegEcx, 32);
    Label top = as.label();
    as.bind(top);
    as.movqMmM(0, memb(RegEbx, 0));
    as.movqMmM(1, memb(RegEbx, 8));
    as.pArithMmMm(Op::Paddb, 0, 1);
    as.pArithMmMm(Op::Pxor, 0, 1);
    as.movqMMm(memb(RegEbx, 16), 0);
    as.decR(RegEcx);
    as.jcc(Cond::NE, top);
    as.emms();
    as.movRM(RegEax, memb(RegEbx, 16));
    emitExitEax(as);
    core::Options hot;
    hot.heat_threshold = 8;
    hot.hot_batch = 1;
    diffRun(makeImage(as), hot);
}

TEST(FpEnd2End, MmxThenFpDomainSwitch)
{
    // Blocks alternate domains: the Boolean domain speculation must
    // recover correctly (and the final FP state must reflect aliasing).
    Assembler as(Layout::code_base);
    as.movRI(RegEbx, Layout::data_base);
    as.movRI(RegEax, 0x1234);
    as.movdMmR(0, RegEax);
    Label next = as.label();
    as.jmp(next); // block boundary
    as.bind(next);
    as.emms();    // empty tags so FP code can run
    as.fldz();
    as.fld1();
    as.farithStiSt0(Op::Fadd, 1, true);
    as.fstM64(memb(RegEbx, 0), true);
    as.movRM(RegEax, memb(RegEbx, 4));
    emitExitEax(as);
    diffRun(makeImage(as));
}

TEST(FpEnd2End, SsePackedSingleKernel)
{
    Assembler as(Layout::code_base);
    as.movRI(RegEbx, Layout::data_base);
    for (int k = 0; k < 4; ++k) {
        as.movRI(RegEax, 0x3f800000 + (k << 20)); // floats
        as.movMR(memb(RegEbx, k * 4), RegEax);
        as.movRI(RegEax, 0x40000000);
        as.movMR(memb(RegEbx, 16 + k * 4), RegEax);
    }
    as.movRI(RegEcx, 40);
    Label top = as.label();
    as.bind(top);
    as.movapsXM(0, memb(RegEbx, 0));
    as.movapsXM(1, memb(RegEbx, 16));
    as.sseArithXX(Op::Addps, 0, 1);
    as.sseArithXX(Op::Mulps, 0, 1);
    as.movapsMX(memb(RegEbx, 32), 0);
    as.decR(RegEcx);
    as.jcc(Cond::NE, top);
    as.movRM(RegEax, memb(RegEbx, 40));
    emitExitEax(as);
    core::Options hot;
    hot.heat_threshold = 8;
    hot.hot_batch = 1;
    diffRun(makeImage(as), hot);
}

TEST(FpEnd2End, SseFormatSwitching)
{
    // packed-int, packed-single and packed-double in sequence across
    // separate blocks: exercises format guards + conversions.
    Assembler as(Layout::code_base);
    as.movRI(RegEbx, Layout::data_base);
    for (int k = 0; k < 4; ++k)
        as.movMI(memb(RegEbx, k * 4), 0x40400000); // 3.0f
    Label b2 = as.label(), b3 = as.label();
    as.movdqaXM(0, memb(RegEbx, 0)); // packed-int load
    as.sseArithXM(Op::PadddX, 0, memb(RegEbx, 0));
    as.jmp(b2);
    as.bind(b2);
    as.movapsXM(1, memb(RegEbx, 0));
    as.sseArithXX(Op::Addps, 1, 0); // reg 0 converts int->ps
    as.jmp(b3);
    as.bind(b3);
    as.cvtps2pd(2, 1);              // pd from ps
    as.sseArithXX(Op::Addpd, 2, 2);
    as.movapsMX(memb(RegEbx, 48), 2);
    as.movRM(RegEax, memb(RegEbx, 52));
    emitExitEax(as);
    Image img = makeImage(as);
    diffRun(img);

    core::Options no_spec;
    no_spec.enable_sse_format_spec = false;
    diffRun(img, no_spec);
}

TEST(FpEnd2End, ScalarSseAndConversions)
{
    Assembler as(Layout::code_base);
    as.movRI(RegEbx, Layout::data_base);
    as.movRI(RegEax, 41);
    as.cvtsi2ss(0, RegEax);
    as.sseArithXX(Op::Addss, 0, 0); // 82.0f
    as.sseArithXX(Op::Mulss, 0, 0); // 6724.0f
    as.cvttss2si(RegEax, 0);
    emitExitEax(as);
    diffRun(makeImage(as));
}

TEST(FpEnd2End, UcomissControlFlow)
{
    Assembler as(Layout::code_base);
    as.movRI(RegEbx, Layout::data_base);
    as.movMI(memb(RegEbx, 0), 0x3f800000); // 1.0f
    as.movMI(memb(RegEbx, 4), 0x40000000); // 2.0f
    as.movssXM(0, memb(RegEbx, 0));
    as.movssXM(1, memb(RegEbx, 4));
    as.ucomissXX(0, 1);
    as.movRI(RegEax, 0);
    Label done = as.label();
    as.jcc(Cond::AE, done);
    as.movRI(RegEax, 77);
    as.bind(done);
    emitExitEax(as);
    diffRun(makeImage(as));
}

TEST(FpEnd2End, MisalignmentPipelineStages)
{
    // A block with misaligned accesses: first execution trips stage 1,
    // regeneration avoids, hot promotion uses recorded granularity; the
    // result must stay correct throughout and the run must end with far
    // fewer machine-level misaligned accesses than accesses performed.
    Assembler as(Layout::code_base);
    as.movRI(RegEbx, Layout::data_base + 2); // 2-byte misaligned
    as.movRI(RegEcx, 400);
    as.movRI(RegEax, 0);
    Label top = as.label();
    as.bind(top);
    as.movMR(membi(RegEbx, RegEcx, 4, 0), RegEcx);
    as.aluRM(Op::Add, RegEax, membi(RegEbx, RegEcx, 4, 0));
    as.decR(RegEcx);
    as.jcc(Cond::NE, top);
    as.aluRI(Op::And, RegEax, 0xffff);
    emitExitEax(as);
    Image img = makeImage(as);

    core::Options hot;
    hot.heat_threshold = 16;
    hot.hot_batch = 1;
    diffRun(img, hot);

    harness::TranslatedRun avoid =
        harness::runTranslated(img, OsAbi::Linux, hot);
    core::Options no_avoid = hot;
    no_avoid.enable_misalign_avoidance = false;
    harness::TranslatedRun raw =
        harness::runTranslated(img, OsAbi::Linux, no_avoid);
    // Avoidance must eliminate most machine-level misaligned accesses.
    EXPECT_LT(avoid.runtime->machine().misalignedAccesses() * 5,
              raw.runtime->machine().misalignedAccesses());
    // And it must be dramatically faster on this workload.
    EXPECT_LT(avoid.outcome.cycles * 2, raw.outcome.cycles);
}

} // namespace
} // namespace el
