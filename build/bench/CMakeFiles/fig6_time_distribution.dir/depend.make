# Empty dependencies file for fig6_time_distribution.
# This may be replaced when dependencies are built.
