/**
 * @file
 * Printf-style string formatting returning std::string.
 *
 * GCC 12 lacks <format>, so the project uses this thin, type-checked
 * vsnprintf wrapper everywhere a formatted std::string is needed.
 */

#ifndef EL_SUPPORT_STRFMT_HH
#define EL_SUPPORT_STRFMT_HH

#include <string>

namespace el
{

/**
 * Format like printf into a std::string.
 *
 * @param fmt printf format string.
 * @return The formatted string.
 */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace el

#endif // EL_SUPPORT_STRFMT_HH
