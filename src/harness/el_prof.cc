/**
 * @file
 * `el_prof`: renders the execution-profile JSON written by
 * `el_run --profile-out`.
 *
 * Views:
 *   (default)      flat summary — hottest blocks, hottest conditional
 *                  edges, per-site indirect-target distributions, and
 *                  the profiler's health counters
 *   --annotate[=N] the top-N blocks with their IA-32 disassembly and
 *                  the joined per-translation IPF cycle costs
 *   --csv[=file]   the sampled time series as CSV (stdout by default)
 *   --check        schema validation (used by CI on the uploaded
 *                  artifact); exits 0 when the file is a well-formed
 *                  profile with no dropped telemetry, 3 when it is
 *                  well-formed but lossy (ring overflow dropped
 *                  samples; --allow-drops downgrades this back to 0),
 *                  2 otherwise
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/json.hh"
#include "support/logging.hh"

namespace
{

using el::json::Value;

void
usage()
{
    std::fprintf(
        stderr,
        "usage: el_prof [options] <profile.json>\n"
        "  --top=<n>        rows per table (default 10)\n"
        "  --annotate[=<n>] annotated listing of the <n> hottest\n"
        "                   blocks (default 5)\n"
        "  --csv[=<file>]   dump the time series as CSV\n"
        "  --check          validate the schema and exit (0 = ok,\n"
        "                   3 = valid but telemetry was dropped)\n"
        "  --allow-drops    with --check, accept dropped telemetry\n"
        "  --provenance[=<eip>|all]\n"
        "                   read a postmortem bundle (el_run\n"
        "                   --dump-on-exit) instead of a profile and\n"
        "                   print artifact lifecycle timelines: the\n"
        "                   final hot set by default, one entry point\n"
        "                   when <eip> (hex ok) is given, everything\n"
        "                   with 'all'\n"
        "  --log-level=<l>  err|warn|info|debug (EL_LOG env var is\n"
        "                   the fallback)\n");
}

/** The rows of array member @p key, sorted descending by @p by. */
std::vector<const Value *>
sortedRows(const Value &root, const char *key, const char *by)
{
    std::vector<const Value *> rows;
    const Value *arr = root.find(key);
    if (arr && arr->isArray())
        for (const Value &v : arr->arr)
            rows.push_back(&v);
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const Value *a, const Value *b) {
                         return a->numberOr(by, 0) > b->numberOr(by, 0);
                     });
    return rows;
}

double
condWeight(const Value &site)
{
    return site.numberOr("taken", 0) + site.numberOr("fall", 0);
}

/** Total cycles across a block's translations (0 when not joined). */
double
xlateCycles(const Value &block)
{
    const Value *xl = block.find("xlate");
    double cycles = 0;
    if (xl && xl->isArray())
        for (const Value &t : xl->arr)
            cycles += t.numberOr("cycles", 0);
    return cycles;
}

void
printBlocks(const Value &root, size_t top)
{
    std::printf("hottest blocks (by executions):\n");
    std::printf("  %-10s %10s %6s %-9s %12s\n", "entry", "execs",
                "insns", "term", "ipf-cycles");
    std::vector<const Value *> rows = sortedRows(root, "blocks", "execs");
    for (size_t i = 0; i < rows.size() && i < top; ++i) {
        const Value &b = *rows[i];
        std::printf("  %08llx   %10.0f %6.0f %-9s %12.0f\n",
                    (unsigned long long)b.numberOr("entry", 0),
                    b.numberOr("execs", 0), b.numberOr("insns", 0),
                    b.strOr("term", "?").c_str(), xlateCycles(b));
    }
    std::printf("\n");
}

void
printEdges(const Value &root, size_t top)
{
    std::printf("hottest conditional edges:\n");
    std::printf("  %-10s %10s %10s %7s  %s\n", "site", "taken", "fall",
                "taken%", "targets");
    std::vector<const Value *> rows;
    const Value *arr = root.find("cond_sites");
    if (arr && arr->isArray())
        for (const Value &v : arr->arr)
            rows.push_back(&v);
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Value *a, const Value *b) {
                         return condWeight(*a) > condWeight(*b);
                     });
    for (size_t i = 0; i < rows.size() && i < top; ++i) {
        const Value &s = *rows[i];
        double taken = s.numberOr("taken", 0);
        double total = condWeight(s);
        std::printf("  %08llx   %10.0f %10.0f %6.1f%%  "
                    "%08llx / %08llx\n",
                    (unsigned long long)s.numberOr("ip", 0), taken,
                    s.numberOr("fall", 0),
                    total > 0 ? 100.0 * taken / total : 0.0,
                    (unsigned long long)s.numberOr("taken_eip", 0),
                    (unsigned long long)s.numberOr("fall_eip", 0));
    }
    std::printf("\n");
}

void
printIndirects(const Value &root, size_t top)
{
    std::printf("indirect sites (by executions):\n");
    std::vector<const Value *> rows =
        sortedRows(root, "indirect_sites", "execs");
    for (size_t i = 0; i < rows.size() && i < top; ++i) {
        const Value &s = *rows[i];
        double execs = s.numberOr("execs", 0);
        double hits = s.numberOr("hits", 0);
        std::printf("  %08llx: execs=%.0f hit-rate=%.1f%% "
                    "evictions=%.0f\n",
                    (unsigned long long)s.numberOr("ip", 0), execs,
                    execs > 0 ? 100.0 * hits / execs : 0.0,
                    s.numberOr("evictions", 0));
        const Value *targets = s.find("targets");
        if (!targets || !targets->isArray())
            continue;
        std::vector<const Value *> ts;
        for (const Value &t : targets->arr)
            ts.push_back(&t);
        std::stable_sort(ts.begin(), ts.end(),
                         [](const Value *a, const Value *b) {
                             return a->numberOr("count", 0) >
                                    b->numberOr("count", 0);
                         });
        for (const Value *t : ts) {
            double count = t->numberOr("count", 0);
            std::printf("    -> %08llx %10.0f (%.1f%%)\n",
                        (unsigned long long)t->numberOr("eip", 0),
                        count, execs > 0 ? 100.0 * count / execs : 0.0);
        }
    }
    std::printf("\n");
}

void
printCounters(const Value &root)
{
    const Value *counters = root.find("counters");
    if (!counters || !counters->isObject())
        return;
    std::printf("profiler health:\n");
    for (const auto &[name, v] : counters->obj)
        if (v.isNumber())
            std::printf("  %-24s %12.0f\n", name.c_str(), v.num);
    std::printf("\n");
}

void
printAnnotated(const Value &root, size_t top)
{
    std::vector<const Value *> rows = sortedRows(root, "blocks", "execs");
    double total_cycles = root.numberOr("cycles", 0);
    for (size_t i = 0; i < rows.size() && i < top; ++i) {
        const Value &b = *rows[i];
        double execs = b.numberOr("execs", 0);
        std::printf("block %08llx: execs=%.0f insns=%.0f term=%s\n",
                    (unsigned long long)b.numberOr("entry", 0), execs,
                    b.numberOr("insns", 0),
                    b.strOr("term", "?").c_str());
        const Value *xl = b.find("xlate");
        if (xl && xl->isArray()) {
            for (const Value &t : xl->arr) {
                double cycles = t.numberOr("cycles", 0);
                // Warm-started translations are marked: "hot+store"
                // means the trace was adopted from a persistent
                // artifact store, not translated in this run.
                bool loaded = t.strOr("origin", "local") == "loaded";
                std::printf("  [%s%s #%.0f] %12.0f cycles "
                            "(%4.1f%% of run), %.0f ipf insns",
                            t.strOr("kind", "?").c_str(),
                            loaded ? "+store" : "",
                            t.numberOr("id", 0), cycles,
                            total_cycles > 0
                                ? 100.0 * cycles / total_cycles
                                : 0.0,
                            t.numberOr("ipf_insns", 0));
                if (execs > 0)
                    std::printf(", %.2f cycles/exec", cycles / execs);
                std::printf("\n");
            }
        }
        const Value *disasm = b.find("disasm");
        if (disasm && disasm->isArray())
            for (const Value &line : disasm->arr)
                if (line.isString())
                    std::printf("    %s\n", line.str.c_str());
        std::printf("\n");
    }
}

int
dumpCsv(const Value &root, const std::string &path)
{
    static const char *cols[] = {
        "cycle",           "dispatch_lookups", "cache_occupancy",
        "hot_queue_depth", "worker_inflight",  "fault_fires",
        "profile_events"};

    std::ostringstream out;
    for (size_t c = 0; c < std::size(cols); ++c)
        out << (c ? "," : "") << cols[c];
    out << "\n";

    const Value *samples = root.find("samples");
    const Value *series = samples ? samples->find("series") : nullptr;
    if (series && series->isArray())
        for (const Value &s : series->arr) {
            for (size_t c = 0; c < std::size(cols); ++c)
                out << (c ? "," : "")
                    << el::json::number(s.numberOr(cols[c], 0));
            out << "\n";
        }

    if (path.empty()) {
        std::fputs(out.str().c_str(), stdout);
        return 0;
    }
    std::ofstream f(path, std::ios::binary);
    f << out.str();
    if (!f) {
        std::fprintf(stderr, "el_prof: cannot write %s\n", path.c_str());
        return 2;
    }
    return 0;
}

/**
 * Render provenance timelines from a postmortem bundle. @p filter is
 * empty (final hot set only), "all", or one entry point (hex or
 * decimal). Returns the process exit code.
 */
int
printProvenance(const Value &root, const std::string &path,
                const std::string &filter)
{
    if (root.strOr("kind", "") != "el-postmortem" ||
        root.numberOr("version", 0) != 1) {
        std::fprintf(stderr,
                     "el_prof: %s is not an el-postmortem bundle "
                     "(write one with el_run --dump-on-exit)\n",
                     path.c_str());
        return 2;
    }
    const Value *prov = root.find("provenance");
    if (!prov || !prov->isArray()) {
        std::fprintf(stderr,
                     "el_prof: %s has no provenance ledger (was the "
                     "run made with --no-flight?)\n", path.c_str());
        return 2;
    }

    bool all = filter == "all";
    bool has_eip = false;
    unsigned long long want_eip = 0;
    if (!filter.empty() && !all) {
        want_eip = std::strtoull(filter.c_str(), nullptr,
                                 filter.compare(0, 2, "0x") == 0 ? 16
                                                                 : 0);
        has_eip = true;
    }

    const Value *exit_obj = root.find("exit");
    std::printf("postmortem: %s  workload=%s  exit=%s(%.0f)\n\n",
                path.c_str(), root.strOr("workload", "?").c_str(),
                exit_obj ? exit_obj->strOr("class", "?").c_str() : "?",
                exit_obj ? exit_obj->numberOr("code", 0) : 0.0);

    size_t shown = 0;
    for (const Value &entry : prov->arr) {
        unsigned long long eip =
            (unsigned long long)entry.numberOr("eip", 0);
        const Value *hv = entry.find("in_hot_set");
        bool hot = hv && hv->kind == Value::Kind::Bool && hv->b;
        if (has_eip ? eip != want_eip : (!all && !hot))
            continue;
        ++shown;
        std::printf("%08llx%s:\n", eip,
                    hot ? " (in final hot set)" : "");
        const Value *timeline = entry.find("timeline");
        if (timeline && timeline->isArray())
            for (const Value &e : timeline->arr)
                std::printf("  %12.0f  %-12s %-18s block=%.0f "
                            "gen=%.0f\n",
                            e.numberOr("ts", 0),
                            e.strOr("state", "?").c_str(),
                            e.strOr("cause", "?").c_str(),
                            e.numberOr("block", -1),
                            e.numberOr("generation", 0));
        if (entry.numberOr("dropped", 0) > 0)
            std::printf("  (… %.0f older events dropped)\n",
                        entry.numberOr("dropped", 0));
        std::printf("\n");
    }
    if (shown == 0) {
        if (has_eip)
            std::printf("%08llx: no provenance recorded\n", want_eip);
        else
            std::printf("no hot translations were live at exit "
                        "(use --provenance=all for every entry "
                        "point)\n");
    }
    return 0;
}

/** Is @p root a well-formed el-profile document? */
bool
checkSchema(const Value &root, std::string *error)
{
    auto fail = [&](const std::string &why) {
        *error = why;
        return false;
    };
    if (!root.isObject())
        return fail("top level is not an object");
    if (root.strOr("kind", "") != "el-profile")
        return fail("kind is not \"el-profile\"");
    if (root.numberOr("version", 0) != 1)
        return fail("unsupported version");
    if (!root.find("workload") || !root.find("workload")->isString())
        return fail("missing workload");
    if (!root.find("cycles") || !root.find("cycles")->isNumber())
        return fail("missing cycles");
    const Value *counters = root.find("counters");
    if (!counters || !counters->isObject())
        return fail("missing counters object");
    for (const char *arr : {"blocks", "cond_sites", "indirect_sites"}) {
        const Value *v = root.find(arr);
        if (!v || !v->isArray())
            return fail(std::string("missing array: ") + arr);
    }
    for (const Value &b : root.find("blocks")->arr) {
        if (!b.find("entry") || !b.find("execs") || !b.find("disasm"))
            return fail("block row missing entry/execs/disasm");
        if (!b.find("disasm")->isArray())
            return fail("block disasm is not an array");
    }
    for (const Value &s : root.find("indirect_sites")->arr) {
        const Value *targets = s.find("targets");
        if (!s.find("ip") || !s.find("execs") || !targets ||
            !targets->isArray())
            return fail("indirect row missing ip/execs/targets");
        double counted = 0;
        for (const Value &t : targets->arr)
            counted += t.numberOr("count", 0);
        // Space-saving top-K counts can over-approximate (an inserted
        // target inherits the evicted minimum), but with no evictions
        // they total exactly the site's executions.
        if (s.numberOr("evictions", 0) == 0 &&
            counted != s.numberOr("execs", 0))
            return fail("indirect target counts do not sum to execs");
    }
    const Value *samples = root.find("samples");
    if (!samples || !samples->isObject())
        return fail("missing samples object");
    const Value *series = samples->find("series");
    if (!series || !series->isArray())
        return fail("missing samples.series array");
    double prev = -1;
    for (const Value &s : series->arr) {
        double cycle = s.numberOr("cycle", -1);
        if (cycle <= prev)
            return fail("samples.series cycles not increasing");
        prev = cycle;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path, csv_path, prov_filter;
    size_t top = 10, annotate = 0;
    bool csv = false, check = false, provenance = false;
    bool allow_drops = false;

    el::initLogLevelFromEnv(); // Explicit --log-level overrides.

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help") {
            usage();
            return 0;
        } else if (arg.compare(0, 6, "--top=") == 0 && arg.size() > 6) {
            top = static_cast<size_t>(std::atoll(arg.c_str() + 6));
        } else if (arg == "--annotate") {
            annotate = 5;
        } else if (arg.compare(0, 11, "--annotate=") == 0 &&
                   arg.size() > 11) {
            annotate = static_cast<size_t>(std::atoll(arg.c_str() + 11));
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg.compare(0, 6, "--csv=") == 0 && arg.size() > 6) {
            csv = true;
            csv_path = arg.c_str() + 6;
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--allow-drops") {
            allow_drops = true;
        } else if (arg == "--provenance") {
            provenance = true;
        } else if (arg.compare(0, 13, "--provenance=") == 0 &&
                   arg.size() > 13) {
            provenance = true;
            prov_filter = arg.c_str() + 13;
        } else if (arg.compare(0, 12, "--log-level=") == 0 &&
                   arg.size() > 12) {
            int level = el::parseLogLevel(arg.c_str() + 12);
            if (level < 0) {
                std::fprintf(stderr,
                             "el_prof: bad --log-level '%s' (want "
                             "err|warn|info|debug)\n",
                             arg.c_str() + 12);
                return 1;
            }
            el::log_level = level;
        } else if (arg.compare(0, 2, "--") == 0) {
            std::fprintf(stderr, "el_prof: unknown argument '%s'\n",
                         arg.c_str());
            usage();
            return 1;
        } else if (path.empty()) {
            path = arg;
        } else {
            usage();
            return 1;
        }
    }
    if (path.empty()) {
        usage();
        return 1;
    }

    std::ifstream f(path, std::ios::binary);
    if (!f) {
        std::fprintf(stderr, "el_prof: cannot read %s\n", path.c_str());
        return 2;
    }
    std::ostringstream ss;
    ss << f.rdbuf();

    Value root;
    std::string error;
    if (!el::json::Parser::parse(ss.str(), &root, &error)) {
        std::fprintf(stderr, "el_prof: %s: parse error: %s\n",
                     path.c_str(), error.c_str());
        return 2;
    }
    if (provenance)
        return printProvenance(root, path, prov_filter);
    if (!checkSchema(root, &error)) {
        std::fprintf(stderr, "el_prof: %s: bad profile: %s\n",
                     path.c_str(), error.c_str());
        return 2;
    }
    if (check) {
        // A lossy profile is schema-valid but its per-block numbers
        // under-count; CI gates on that separately from malformedness
        // so a run that merely needs a bigger sample ring doesn't read
        // as a corrupted artifact.
        double drops = 0;
        for (const auto &[name, v] : root.find("counters")->obj)
            if (v.isNumber() && name.find("dropped") != std::string::npos)
                drops += v.num;
        if (drops > 0 && !allow_drops) {
            std::fprintf(stderr,
                         "el_prof: %s: valid el-profile but %.0f "
                         "telemetry records were dropped (rerun with a "
                         "larger ring, or pass --allow-drops)\n",
                         path.c_str(), drops);
            return 3;
        }
        std::printf("%s: valid el-profile (%s, %.0f events%s)\n",
                    path.c_str(), root.strOr("workload", "?").c_str(),
                    root.find("counters")->numberOr("prof.events", 0),
                    drops > 0 ? ", drops allowed" : "");
        return 0;
    }
    if (csv)
        return dumpCsv(root, csv_path);

    std::printf("profile: %s  workload=%s  cycles=%.0f\n\n",
                path.c_str(), root.strOr("workload", "?").c_str(),
                root.numberOr("cycles", 0));
    if (annotate > 0) {
        printAnnotated(root, annotate);
        return 0;
    }
    printBlocks(root, top);
    printEdges(root, top);
    printIndirects(root, top);
    printCounters(root);
    return 0;
}
