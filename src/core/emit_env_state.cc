/**
 * @file
 * EmitEnv, part 2: the architectural-state machinery — x87 stack
 * speculation and FXCH elimination, MMX domain handling, XMM format
 * tracking, commit regions and reconstruction maps, block guards and
 * status tails, and the block-ending control transfers.
 */

#include "core/emit_env.hh"

#include "ipf/regs.hh"
#include "support/bitfield.hh"
#include "support/logging.hh"

namespace el::core
{

using ia32::FaultKind;
using ipf::IpfOp;

// ----- x87 stack ---------------------------------------------------------

void
EmitEnv::touchFp()
{
    if (!fp_used_ && !mmx_used_) {
        guard.checks_mmx = true;
        guard.expect_domain = 0;
        cur_domain_ = 0;
    }
    fp_used_ = true;
    if (cur_domain_ == 1) {
        // The block mixed MMX then FP: move the MMX values back into the
        // aliased FP significands (the expensive inline conversion the
        // speculation normally avoids).
        for (unsigned k = 0; k < 8; ++k) {
            Il il = mk(IpfOp::Setf);
            il.dst = ipf::frForFpSlot(k);
            il.src1 = ipf::grForMmx(k);
            il.ins.size = 0; // significand
            emit(il);
        }
        cur_domain_ = 0;
    }
}

void
EmitEnv::touchMmx()
{
    if (!fp_used_ && !mmx_used_) {
        guard.checks_mmx = true;
        guard.expect_domain = 1;
        cur_domain_ = 1;
    }
    mmx_used_ = true;
    if (cur_domain_ == 0) {
        for (unsigned k = 0; k < 8; ++k) {
            Il il = mk(IpfOp::Getf);
            il.dst = ipf::grForMmx(k);
            il.src1 = ipf::frForFpSlot(k);
            il.ins.size = 0;
            emit(il);
        }
        cur_domain_ = 1;
    }
    // Architecturally, every MMX instruction makes all stack slots valid
    // and resets TOS.
    tag_now_ = 0xff;
    touched_ = 0xff;
    tag_set_ = 0xff;
    tag_clear_ = 0;
    cur_tos_ = 0;
}

void
EmitEnv::emitStaticGuestFault(FaultKind kind)
{
    Il x = mk(IpfOp::Exit);
    x.ins.exit_reason = ipf::ExitReason::GuestFault;
    uint32_t ip = cur_insn ? cur_insn->addr : 0;
    x.ins.exit_payload = (static_cast<int64_t>(ip) << 8) |
                         static_cast<int64_t>(kind);
    emit(x);
}

int16_t
EmitEnv::frForSt(uint8_t sti)
{
    touchFp();
    uint8_t abs = (cur_tos_ + sti) & 7;
    uint8_t bit = static_cast<uint8_t>(1u << abs);
    if (!(touched_ & bit)) {
        guard.need_valid |= bit;
        touched_ |= bit;
        tag_now_ |= bit;
    } else if (!(tag_now_ & bit)) {
        // Statically known stack fault (read of an empty slot).
        emitStaticGuestFault(FaultKind::FpStackFault);
        tag_now_ |= bit; // keep generating (dead) code sanely
    }
    return fp_perm_[abs];
}

void
EmitEnv::fpPush()
{
    touchFp();
    uint8_t abs = (cur_tos_ + 7) & 7;
    uint8_t bit = static_cast<uint8_t>(1u << abs);
    if (!(touched_ & bit)) {
        guard.need_empty |= bit;
    } else if (tag_now_ & bit) {
        emitStaticGuestFault(FaultKind::FpStackFault);
    }
    touched_ |= bit;
    tag_now_ |= bit;
    tag_set_ |= bit;
    tag_clear_ &= static_cast<uint8_t>(~bit);
    cur_tos_ = abs;
}

void
EmitEnv::fpPop()
{
    touchFp();
    uint8_t abs = cur_tos_;
    uint8_t bit = static_cast<uint8_t>(1u << abs);
    touched_ |= bit;
    tag_now_ &= static_cast<uint8_t>(~bit);
    tag_clear_ |= bit;
    tag_set_ &= static_cast<uint8_t>(~bit);
    cur_tos_ = (cur_tos_ + 1) & 7;
}

void
EmitEnv::fpSwap(uint8_t sti)
{
    touchFp();
    uint8_t a = cur_tos_;
    uint8_t b = (cur_tos_ + sti) & 7;
    if (phase == Phase::Hot && options.enable_fxch_elim) {
        std::swap(fp_perm_[a], fp_perm_[b]);
        ++fxch_eliminated;
        return;
    }
    ++fxch_emitted;
    int16_t fa = fp_perm_[a];
    int16_t fb = fp_perm_[b];
    emitOp(IpfOp::Fmov, ipf::fr_t0, fa);
    emitOp(IpfOp::Fmov, fa, fb);
    emitOp(IpfOp::Fmov, fb, ipf::fr_t0);
}

void
EmitEnv::fpInit()
{
    touchFp();
    tag_now_ = 0;
    touched_ = 0xff;
    tag_clear_ = 0xff;
    tag_set_ = 0;
    cur_tos_ = 0;
}

void
EmitEnv::fpEmms()
{
    touchMmx();
    tag_now_ = 0;
    touched_ = 0xff;
    tag_clear_ = 0xff;
    tag_set_ = 0;
}

void
EmitEnv::restoreFpPerm()
{
    // Materialize the deferred FXCH permutation: move each slot's value
    // into its canonical FR, cycle by cycle, via the scratch FR.
    bool identity = true;
    for (unsigned k = 0; k < 8; ++k)
        identity = identity && fp_perm_[k] == ipf::frForFpSlot(k);
    if (identity)
        return;

    bool done[8] = {};
    for (unsigned start = 0; start < 8; ++start) {
        if (done[start] || fp_perm_[start] == ipf::frForFpSlot(start)) {
            done[start] = true;
            continue;
        }
        // Follow the cycle containing `start`.
        emitOp(IpfOp::Fmov, ipf::fr_t0, fp_perm_[start]);
        unsigned cur = start;
        for (;;) {
            // Which slot's value currently lives in canonical FR(cur)?
            unsigned donor = 0;
            bool found = false;
            for (unsigned j = 0; j < 8; ++j) {
                if (!done[j] && j != start &&
                    fp_perm_[j] == ipf::frForFpSlot(cur)) {
                    donor = j;
                    found = true;
                    break;
                }
            }
            if (!found)
                break;
            emitOp(IpfOp::Fmov, ipf::frForFpSlot(cur), fp_perm_[donor]);
            done[cur] = true;
            cur = donor;
        }
        emitOp(IpfOp::Fmov, ipf::frForFpSlot(cur), ipf::fr_t0);
        done[cur] = true;
        done[start] = true;
    }
    for (unsigned k = 0; k < 8; ++k)
        fp_perm_[k] = ipf::frForFpSlot(k);
}

// ----- in-memory FP stack (the FX!32-style ablation) ---------------------

int16_t
EmitEnv::fpMemTos()
{
    int16_t a = rtAddr(rt::fp_tos);
    int16_t v = newGr();
    Il ld = mk(IpfOp::Ld);
    ld.dst = v;
    ld.src1 = a;
    ld.ins.size = 1;
    emit(ld);
    return v;
}

int16_t
EmitEnv::fpMemSlotAddr(int16_t tos, uint8_t sti)
{
    int16_t t = newGr();
    emitOp(IpfOp::AddImm, t, tos, -1, sti);
    int16_t m = newGr();
    Il e = mk(IpfOp::ExtrU);
    e.dst = m;
    e.src1 = t;
    e.ins.pos = 0;
    e.ins.len = 3;
    emit(e);
    int16_t off = newGr();
    Il sh = mk(IpfOp::ShlImm);
    sh.dst = off;
    sh.src1 = m;
    sh.ins.imm = 4;
    emit(sh);
    int16_t base = rtAddr(rt::fp_mem_stack);
    int16_t addr = newGr();
    emitOp(IpfOp::Add, addr, off, base);
    return addr;
}

int16_t
EmitEnv::fpMemLoadSt(uint8_t sti)
{
    fp_used_ = true;
    int16_t addr = fpMemSlotAddr(fpMemTos(), sti);
    int16_t v = newFr();
    Il ld = mk(IpfOp::Ldf);
    ld.dst = v;
    ld.src1 = addr;
    ld.ins.size = 16;
    emit(ld);
    return v;
}

void
EmitEnv::fpMemStoreSt(uint8_t sti, int16_t fval)
{
    fp_used_ = true;
    int16_t addr = fpMemSlotAddr(fpMemTos(), sti);
    Il st = mk(IpfOp::Stf);
    st.src1 = addr;
    st.src2 = fval;
    st.ins.size = 16;
    emit(st);
}

void
EmitEnv::fpMemPush(int16_t fval)
{
    fp_used_ = true;
    int16_t tos = fpMemTos();
    int16_t t = newGr();
    emitOp(IpfOp::AddImm, t, tos, -1, 7);
    int16_t nt = newGr();
    Il e = mk(IpfOp::ExtrU);
    e.dst = nt;
    e.src1 = t;
    e.ins.pos = 0;
    e.ins.len = 3;
    emit(e);
    int16_t a = rtAddr(rt::fp_tos);
    Il st = mk(IpfOp::St);
    st.src1 = a;
    st.src2 = nt;
    st.ins.size = 1;
    emit(st);
    int16_t slot = fpMemSlotAddr(nt, 0);
    Il sf = mk(IpfOp::Stf);
    sf.src1 = slot;
    sf.src2 = fval;
    sf.ins.size = 16;
    emit(sf);
}

void
EmitEnv::fpMemPop()
{
    fp_used_ = true;
    int16_t tos = fpMemTos();
    int16_t t = newGr();
    emitOp(IpfOp::AddImm, t, tos, -1, 1);
    int16_t nt = newGr();
    Il e = mk(IpfOp::ExtrU);
    e.dst = nt;
    e.src1 = t;
    e.ins.pos = 0;
    e.ins.len = 3;
    emit(e);
    int16_t a = rtAddr(rt::fp_tos);
    Il st = mk(IpfOp::St);
    st.src1 = a;
    st.src2 = nt;
    st.ins.size = 1;
    emit(st);
}

// ----- XMM format tracking ------------------------------------------------

rt::XmmRep
EmitEnv::xmmRep(uint8_t i)
{
    i &= 7;
    uint8_t bit = static_cast<uint8_t>(1u << i);
    if (!(xmm_touched_ & bit)) {
        xmm_touched_ |= bit;
        xmm_used_mask_ |= bit;
        if (options.enable_sse_format_spec) {
            guard.checks_xmm = true;
            guard.xmm_mask |= 0xfu << rt::formatShift(i);
            guard.xmm_expect |=
                (spec.xmm_format & (0xfu << rt::formatShift(i)));
        }
    }
    return xmm_rep_[i];
}

void
EmitEnv::xmmRequire(uint8_t i, rt::XmmRep want)
{
    i &= 7;
    rt::XmmRep cur = xmmRep(i);
    if (!options.enable_sse_format_spec) {
        // Ablation: every block converts from/to a canonical packed-
        // single representation; conversions happen around each use.
        cur = xmm_rep_[i];
    }
    if (cur == want)
        return;
    auto cvt_half = [&](unsigned half, rt::XmmRep from, rt::XmmRep to) {
        int16_t fr = ipf::frForXmm(i, half);
        int16_t gr = ipf::grForXmm(i, half);
        if (from == rt::XmmInt && to != rt::XmmInt) {
            Il il = mk(IpfOp::Setf);
            il.dst = fr;
            il.src1 = gr;
            il.ins.size = (to == rt::XmmPd) ? 8 : 0;
            emit(il);
        } else if (from != rt::XmmInt && to == rt::XmmInt) {
            Il il = mk(IpfOp::Getf);
            il.dst = gr;
            il.src1 = fr;
            il.ins.size = (from == rt::XmmPd) ? 8 : 0;
            emit(il);
        } else {
            // FR-resident format change: round-trip through a GR.
            int16_t t = newGr();
            Il g = mk(IpfOp::Getf);
            g.dst = t;
            g.src1 = fr;
            g.ins.size = (from == rt::XmmPd) ? 8 : 0;
            emit(g);
            Il s = mk(IpfOp::Setf);
            s.dst = fr;
            s.src1 = t;
            s.ins.size = (to == rt::XmmPd) ? 8 : 0;
            emit(s);
        }
    };
    cvt_half(0, cur, want);
    cvt_half(1, cur, want);
    xmm_rep_[i] = want;
}

void
EmitEnv::xmmDefine(uint8_t i, rt::XmmRep rep)
{
    i &= 7;
    uint8_t bit = static_cast<uint8_t>(1u << i);
    xmm_touched_ |= bit;      // full redefine: no entry guard needed
    xmm_used_mask_ |= bit;
    xmm_rep_[i] = rep;
}

uint32_t
EmitEnv::xmmExitFormats() const
{
    uint32_t w = spec.xmm_format;
    for (unsigned i = 0; i < 8; ++i) {
        if (xmm_touched_ & (1u << i)) {
            w &= ~(0xfu << rt::formatShift(i));
            w |= static_cast<uint32_t>(xmm_rep_[i]) << rt::formatShift(i);
        }
    }
    return w;
}

// ----- instruction & region management -----------------------------------

void
EmitEnv::beginInsn(const ia32::Insn &insn, uint32_t live_flags)
{
    cur_insn = &insn;
    last_insn_ip_ = insn.addr;
    live_mask_ = live_flags;
    if (region_fresh_) {
        region_start_ip_ = insn.addr;
        region_fresh_ = false;
    }
    will_close_region_ = phase == Phase::Hot &&
                         (ia32::writesMemory(insn) || ia32::endsBlock(insn));
    if (ia32::canFault(insn)) {
        // Reconstruction maps are captured for faulting instructions in
        // both phases: hot code needs the full register map; cold code
        // needs the FP TOS/TAG deltas accumulated since block entry.
        cur_commit_id_ = captureRecovery();
    } else {
        cur_commit_id_ = -1;
    }
    if (phase == Phase::Cold && ia32::canFault(insn)) {
        // Maintain the IA-32 state register (section 4, cold code).
        if (!state_reg_set_) {
            Il il = mk(IpfOp::Movl);
            il.dst = ipf::gr_state;
            il.ins.imm = insn.addr;
            il.ins.meta.ia32_ip = insn.addr;
            emit(il);
            state_reg_set_ = true;
        } else if (insn.addr != last_state_ip_) {
            Il il = mk(IpfOp::AddImm);
            il.dst = ipf::gr_state;
            il.src1 = ipf::gr_state;
            il.ins.imm = static_cast<int64_t>(insn.addr) -
                         static_cast<int64_t>(last_state_ip_);
            emit(il);
        }
        last_state_ip_ = insn.addr;
    }
}

void
EmitEnv::endInsn()
{
    if (phase == Phase::Cold) {
        // Sync modified guest registers to their homes; this happens
        // after the instruction's last faulting IPF instruction, which
        // is exactly the Table-1 ordering discipline.
        for (unsigned r = 0; r < ia32::NumRegs; ++r) {
            if (guest_dirty_ & (1u << r)) {
                Il il = mk(IpfOp::Mov);
                il.dst = ipf::grForGuest(r);
                il.src1 = guest_loc_[r];
                il.is_ordered = true;
                emit(il);
                guest_loc_[r] = ipf::grForGuest(r);
            }
        }
        guest_dirty_ = 0;
    } else if (will_close_region_) {
        closeRegion();
    }
    cur_insn = nullptr;
}

int32_t
EmitEnv::captureRecovery()
{
    RecoveryMap map;
    map.guest_ip = cur_insn ? cur_insn->addr : region_start_ip_;
    for (unsigned r = 0; r < ia32::NumRegs; ++r) {
        map.gpr[r] = (guest_loc_[r] == ipf::grForGuest(r))
                         ? Loc::home()
                         : Loc::gr(guest_loc_[r]);
    }
    map.flags = flagRecipe();
    map.tos_delta = tosDelta();
    map.tag_set = tag_set_;
    map.tag_clear = tag_clear_;
    map.xmm_formats = xmmExitFormats();
    map.mmx_domain = cur_domain_;
    recovery.push_back(map);
    return static_cast<int32_t>(recovery.size()) - 1;
}

void
EmitEnv::closeRegion()
{
    for (unsigned r = 0; r < ia32::NumRegs; ++r) {
        if (guest_dirty_ & (1u << r)) {
            Il il = mk(IpfOp::Mov);
            il.dst = ipf::grForGuest(r);
            il.src1 = guest_loc_[r];
            il.is_ordered = true;
            emit(il);
            guest_loc_[r] = ipf::grForGuest(r);
        }
    }
    guest_dirty_ = 0;
    // Keep live lazy flags recoverable by a cold re-execution (Resync).
    materializeFlags(lazy_.dirty & live_mask_);
    // Home register ids become reusable loc keys after a sync, so cached
    // address expressions keyed on them would go stale.
    addr_cse_.clear();
    align_cache_.clear();
    ++region_;
    region_fresh_ = true;
}

void
EmitEnv::syncAllToHomes()
{
    closeRegion();
    materializeFlags(ia32::FlagsArith);
    if (!fpMemoryMode())
        restoreFpPerm();
}

int8_t
EmitEnv::tosDelta() const
{
    return static_cast<int8_t>((cur_tos_ - spec.tos) & 7);
}

// ----- control transfers ----------------------------------------------

void
EmitEnv::sideExit(int16_t pred, uint32_t target_eip)
{
    syncAllToHomes();
    emitStatusTail();
    Il x = mk(IpfOp::Exit);
    x.qp = pred;
    x.ins.exit_reason = ipf::ExitReason::LinkMiss;
    x.ins.exit_payload = target_eip;
    int32_t idx = emit(x);
    pending_stubs.push_back({idx, target_eip});
}

void
EmitEnv::endBranch(uint32_t target_eip, int16_t pred)
{
    Il x = mk(IpfOp::Exit);
    if (pred >= 0)
        x.qp = pred;
    x.ins.exit_reason = ipf::ExitReason::LinkMiss;
    x.ins.exit_payload = target_eip;
    int32_t idx = emit(x);
    pending_stubs.push_back({idx, target_eip});
}

void
EmitEnv::endIndirect(int16_t target_vreg)
{
    // The fast lookup table of section 2: hash the target EIP, probe one
    // direct-mapped entry, branch through b6 on a hit.
    int16_t h = newGr();
    Il e = mk(IpfOp::ExtrU);
    e.dst = h;
    e.src1 = target_vreg;
    e.ins.pos = 2;
    e.ins.len = 10; // 1024 entries
    emit(e);
    int16_t base = rtAddr(rt::lookup_table);
    int16_t entry = newGr();
    Il sh = mk(IpfOp::Shladd);
    sh.dst = entry;
    sh.src1 = h;
    sh.src2 = base;
    sh.ins.imm = 4; // 16-byte entries
    emit(sh);
    int16_t tag = newGr();
    Il ld = mk(IpfOp::Ld);
    ld.dst = tag;
    ld.src1 = entry;
    ld.ins.size = 8;
    emit(ld);
    int16_t p_hit = newPr(), p_miss = newPr();
    Il c = mk(IpfOp::Cmp);
    c.dst = p_hit;
    c.dst2 = p_miss;
    c.src1 = tag;
    c.src2 = target_vreg;
    c.ins.crel = ipf::CmpRel::Eq;
    emit(c);
    Il x = mk(IpfOp::Exit);
    x.qp = p_miss;
    x.ins.exit_reason = ipf::ExitReason::IndirectMiss;
    x.src1 = target_vreg;
    emit(x);
    int16_t e2 = newGr();
    Il a2 = mk(IpfOp::AddImm);
    a2.qp = p_hit;
    a2.dst = e2;
    a2.src1 = entry;
    a2.ins.imm = 8;
    emit(a2);
    int16_t tgt = newGr();
    Il ld2 = mk(IpfOp::Ld);
    ld2.qp = p_hit;
    ld2.dst = tgt;
    ld2.src1 = e2;
    ld2.ins.size = 8;
    emit(ld2);
    Il mb = mk(IpfOp::MovToBr);
    mb.qp = p_hit;
    mb.dst = ipf::br_ind;
    mb.src1 = tgt;
    emit(mb);
    Il bi = mk(IpfOp::BrInd);
    bi.qp = p_hit;
    bi.src1 = ipf::br_ind;
    emit(bi);
    // Backstop (unreachable).
    Il x2 = mk(IpfOp::Exit);
    x2.ins.exit_reason = ipf::ExitReason::IndirectMiss;
    x2.src1 = target_vreg;
    emit(x2);
}

void
EmitEnv::endExit(ipf::ExitReason reason, int64_t payload)
{
    Il x = mk(IpfOp::Exit);
    x.ins.exit_reason = reason;
    x.ins.exit_payload = payload;
    emit(x);
}

void
EmitEnv::emitGuestFaultCheck(int16_t pred, FaultKind kind)
{
    Il x = mk(IpfOp::Exit);
    x.qp = pred;
    x.ins.exit_reason = ipf::ExitReason::GuestFault;
    uint32_t ip = cur_insn ? cur_insn->addr : 0;
    x.ins.exit_payload = (static_cast<int64_t>(ip) << 8) |
                         static_cast<int64_t>(kind);
    emit(x);
}

// ----- block head / tail helpers --------------------------------------

void
EmitEnv::emitUseCounter(int64_t ctr_off, uint32_t threshold)
{
    setBucket(ipf::Bucket::Overhead);
    int16_t a = rtAddr(ctr_off);
    int16_t c = newGr();
    Il ld = mk(IpfOp::Ld);
    ld.dst = c;
    ld.src1 = a;
    ld.ins.size = 4;
    emit(ld);
    int16_t c1 = newGr();
    emitOp(IpfOp::AddImm, c1, c, -1, 1);
    Il st = mk(IpfOp::St);
    st.src1 = a;
    st.src2 = c1;
    st.ins.size = 4;
    emit(st);
    int16_t p = newPr(), p2 = newPr();
    Il cm = mk(IpfOp::CmpImm);
    cm.dst = p;
    cm.dst2 = p2;
    cm.ins.imm = threshold;
    cm.src2 = c1;
    cm.ins.crel = ipf::CmpRel::Leu; // threshold <=u count
    emit(cm);
    Il x = mk(IpfOp::Exit);
    x.qp = p;
    x.ins.exit_reason = ipf::ExitReason::RegisterHot;
    x.ins.exit_payload = block_id;
    emit(x);
    clearBucket();
}

void
EmitEnv::emitEdgeCounter(int64_t ctr_off, int16_t pred)
{
    setBucket(ipf::Bucket::Overhead);
    int16_t a = rtAddr(ctr_off);
    int16_t c = newGr();
    Il ld = mk(IpfOp::Ld);
    ld.qp = pred;
    ld.dst = c;
    ld.src1 = a;
    ld.ins.size = 4;
    emit(ld);
    int16_t c1 = newGr();
    Il add = mk(IpfOp::AddImm);
    add.qp = pred;
    add.dst = c1;
    add.src1 = c;
    add.ins.imm = 1;
    emit(add);
    Il st = mk(IpfOp::St);
    st.qp = pred;
    st.src1 = a;
    st.src2 = c1;
    st.ins.size = 4;
    emit(st);
    clearBucket();
}

void
EmitEnv::emitSmcGuard(uint32_t guest_addr, uint64_t expected_bytes,
                      uint32_t window)
{
    setBucket(ipf::Bucket::Overhead);
    int16_t a = immGr(guest_addr);
    int16_t v = newGr();
    Il ld = mk(IpfOp::Ld);
    ld.dst = v;
    ld.src1 = a;
    ld.ins.size = 8;
    emit(ld);
    int16_t exp = immGr(static_cast<int64_t>(expected_bytes));
    int16_t p = newPr(), p2 = newPr();
    Il c = mk(IpfOp::Cmp);
    c.dst = p;
    c.dst2 = p2;
    c.src1 = v;
    c.src2 = exp;
    c.ins.crel = ipf::CmpRel::Ne;
    emit(c);
    Il x = mk(IpfOp::Exit);
    x.qp = p;
    x.ins.exit_reason = ipf::ExitReason::SmcDetected;
    // Runtime decodes (window << 32) | addr to invalidate exactly the
    // guarded bytes instead of a whole page.
    x.ins.exit_payload =
        (static_cast<uint64_t>(window) << 32) | guest_addr;
    emit(x);
    clearBucket();
}

void
EmitEnv::emitFpGuard(GuardInfo *out)
{
    if (!fp_used_ || fpMemoryMode())
        return;
    out->checks_fp = true;
    out->expect_tos = spec.tos;
    out->need_valid = guard.need_valid;
    out->need_empty = guard.need_empty;

    setBucket(ipf::Bucket::Overhead);
    int16_t a = rtAddr(rt::fp_tos);
    int16_t tos = newGr();
    Il ld = mk(IpfOp::Ld);
    ld.dst = tos;
    ld.src1 = a;
    ld.ins.size = 1;
    emit(ld);
    int16_t p = newPr(), p2 = newPr();
    Il c = mk(IpfOp::CmpImm);
    c.dst = p;
    c.dst2 = p2;
    c.ins.imm = spec.tos;
    c.src2 = tos;
    c.ins.crel = ipf::CmpRel::Ne;
    emit(c);
    Il x = mk(IpfOp::Exit);
    x.qp = p;
    x.ins.exit_reason = ipf::ExitReason::GuardFail;
    x.ins.exit_payload = 0; // TOS mismatch
    emit(x);

    if (guard.need_valid || guard.need_empty) {
        int16_t ta = rtAddr(rt::fp_tag);
        int16_t tag = newGr();
        Il ld2 = mk(IpfOp::Ld);
        ld2.dst = tag;
        ld2.src1 = ta;
        ld2.ins.size = 1;
        emit(ld2);
        if (guard.need_valid) {
            int16_t m = immGr(guard.need_valid);
            int16_t got = newGr();
            emitOp(IpfOp::And, got, tag, m);
            int16_t pv = newPr(), pv2 = newPr();
            Il cv = mk(IpfOp::CmpImm);
            cv.dst = pv;
            cv.dst2 = pv2;
            cv.ins.imm = guard.need_valid;
            cv.src2 = got;
            cv.ins.crel = ipf::CmpRel::Ne;
            emit(cv);
            Il xv = mk(IpfOp::Exit);
            xv.qp = pv;
            xv.ins.exit_reason = ipf::ExitReason::GuardFail;
            xv.ins.exit_payload = 1; // TAG mismatch
            emit(xv);
        }
        if (guard.need_empty) {
            int16_t m = immGr(guard.need_empty);
            int16_t got = newGr();
            emitOp(IpfOp::And, got, tag, m);
            int16_t pe = newPr(), pe2 = newPr();
            Il ce = mk(IpfOp::CmpImm);
            ce.dst = pe;
            ce.dst2 = pe2;
            ce.ins.imm = 0;
            ce.src2 = got;
            ce.ins.crel = ipf::CmpRel::Ne;
            emit(ce);
            Il xe = mk(IpfOp::Exit);
            xe.qp = pe;
            xe.ins.exit_reason = ipf::ExitReason::GuardFail;
            xe.ins.exit_payload = 1;
            emit(xe);
        }
    }
    clearBucket();
}

void
EmitEnv::emitMmxGuard(GuardInfo *out)
{
    if (!guard.checks_mmx || !options.enable_mmx_alias_spec ||
        fpMemoryMode()) {
        return;
    }
    out->checks_mmx = true;
    out->expect_domain = guard.expect_domain;
    setBucket(ipf::Bucket::Overhead);
    int16_t a = rtAddr(rt::mmx_domain);
    int16_t d = newGr();
    Il ld = mk(IpfOp::Ld);
    ld.dst = d;
    ld.src1 = a;
    ld.ins.size = 1;
    emit(ld);
    int16_t p = newPr(), p2 = newPr();
    Il c = mk(IpfOp::CmpImm);
    c.dst = p;
    c.dst2 = p2;
    c.ins.imm = guard.expect_domain;
    c.src2 = d;
    c.ins.crel = ipf::CmpRel::Ne;
    emit(c);
    Il x = mk(IpfOp::Exit);
    x.qp = p;
    x.ins.exit_reason = ipf::ExitReason::GuardFail;
    x.ins.exit_payload = 2; // domain mismatch
    emit(x);
    clearBucket();
}

void
EmitEnv::emitXmmGuard(GuardInfo *out)
{
    if (!guard.checks_xmm || guard.xmm_mask == 0)
        return;
    out->checks_xmm = true;
    out->xmm_mask = guard.xmm_mask;
    out->xmm_expect = guard.xmm_expect;
    setBucket(ipf::Bucket::Overhead);
    int16_t a = rtAddr(rt::xmm_format);
    int16_t w = newGr();
    Il ld = mk(IpfOp::Ld);
    ld.dst = w;
    ld.src1 = a;
    ld.ins.size = 4;
    emit(ld);
    int16_t m = immGr(guard.xmm_mask);
    int16_t got = newGr();
    emitOp(IpfOp::And, got, w, m);
    int16_t exp = immGr(guard.xmm_expect);
    int16_t p = newPr(), p2 = newPr();
    Il c = mk(IpfOp::Cmp);
    c.dst = p;
    c.dst2 = p2;
    c.src1 = got;
    c.src2 = exp;
    c.ins.crel = ipf::CmpRel::Ne;
    emit(c);
    Il x = mk(IpfOp::Exit);
    x.qp = p;
    x.ins.exit_reason = ipf::ExitReason::GuardFail;
    x.ins.exit_payload = 3; // format mismatch
    emit(x);
    clearBucket();
}

void
EmitEnv::emitStatusTail()
{
    if ((fp_used_ || mmx_used_) && !fpMemoryMode()) {
        if (cur_tos_ != spec.tos || mmx_used_) {
            int16_t a = rtAddr(rt::fp_tos);
            int16_t v = immGr(cur_tos_);
            Il st = mk(IpfOp::St);
            st.src1 = a;
            st.src2 = v;
            st.ins.size = 1;
            emit(st);
        }
        uint8_t changed = tag_set_ | tag_clear_;
        if (changed) {
            int16_t a = rtAddr(rt::fp_tag);
            if (changed == 0xff) {
                int16_t v = immGr(tag_set_);
                Il st = mk(IpfOp::St);
                st.src1 = a;
                st.src2 = v;
                st.ins.size = 1;
                emit(st);
            } else {
                int16_t old = newGr();
                Il ld = mk(IpfOp::Ld);
                ld.dst = old;
                ld.src1 = a;
                ld.ins.size = 1;
                emit(ld);
                int16_t km = immGr(static_cast<uint8_t>(~tag_clear_ &
                                                        ~tag_set_));
                int16_t kept = newGr();
                emitOp(IpfOp::And, kept, old, km);
                int16_t sm = immGr(tag_set_);
                int16_t merged = newGr();
                emitOp(IpfOp::Or, merged, kept, sm);
                Il st = mk(IpfOp::St);
                st.src1 = a;
                st.src2 = merged;
                st.ins.size = 1;
                emit(st);
            }
        }
        if ((fp_used_ || mmx_used_) && cur_domain_ != spec.mmx_domain) {
            int16_t a = rtAddr(rt::mmx_domain);
            int16_t v = immGr(cur_domain_);
            Il st = mk(IpfOp::St);
            st.src1 = a;
            st.src2 = v;
            st.ins.size = 1;
            emit(st);
        }
    }
    uint32_t exit_fmt = xmmExitFormats();
    if (xmm_touched_ && exit_fmt != spec.xmm_format) {
        int16_t a = rtAddr(rt::xmm_format);
        uint32_t touched_bits = 0;
        for (unsigned i = 0; i < 8; ++i) {
            if (xmm_touched_ & (1u << i))
                touched_bits |= 0xfu << rt::formatShift(i);
        }
        if (xmm_touched_ == 0xff) {
            int16_t v = immGr(exit_fmt);
            Il st = mk(IpfOp::St);
            st.src1 = a;
            st.src2 = v;
            st.ins.size = 4;
            emit(st);
        } else {
            int16_t old = newGr();
            Il ld = mk(IpfOp::Ld);
            ld.dst = old;
            ld.src1 = a;
            ld.ins.size = 4;
            emit(ld);
            int16_t km = immGr(~touched_bits & 0xffffffffu);
            int16_t kept = newGr();
            emitOp(IpfOp::And, kept, old, km);
            int16_t nm = immGr(exit_fmt & touched_bits);
            int16_t merged = newGr();
            emitOp(IpfOp::Or, merged, kept, nm);
            Il st = mk(IpfOp::St);
            st.src1 = a;
            st.src2 = merged;
            st.ins.size = 4;
            emit(st);
        }
    }
}

} // namespace el::core
