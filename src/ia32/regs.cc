#include "ia32/regs.hh"

#include "support/bitfield.hh"
#include "support/logging.hh"

namespace el::ia32
{

const char *
regName(Reg reg, unsigned size)
{
    static const char *names32[] = {"eax", "ecx", "edx", "ebx",
                                    "esp", "ebp", "esi", "edi"};
    static const char *names16[] = {"ax", "cx", "dx", "bx",
                                    "sp", "bp", "si", "di"};
    if (size == 2)
        return names16[reg & 7];
    return names32[reg & 7];
}

const char *
reg8Name(Reg8 reg)
{
    static const char *names[] = {"al", "cl", "dl", "bl",
                                  "ah", "ch", "dh", "bh"};
    return names[reg & 7];
}

const char *
condName(Cond cond)
{
    static const char *names[] = {"o", "no", "b", "ae", "e", "ne",
                                  "be", "a", "s", "ns", "p", "np",
                                  "l", "ge", "le", "g"};
    return names[static_cast<uint8_t>(cond) & 15];
}

uint32_t
condFlagsRead(Cond cond)
{
    switch (cond) {
      case Cond::O:
      case Cond::NO:
        return FlagOf;
      case Cond::B:
      case Cond::AE:
        return FlagCf;
      case Cond::E:
      case Cond::NE:
        return FlagZf;
      case Cond::BE:
      case Cond::A:
        return FlagCf | FlagZf;
      case Cond::S:
      case Cond::NS:
        return FlagSf;
      case Cond::P:
      case Cond::NP:
        return FlagPf;
      case Cond::L:
      case Cond::GE:
        return FlagSf | FlagOf;
      case Cond::LE:
      case Cond::G:
        return FlagZf | FlagSf | FlagOf;
    }
    el_panic("bad condition code");
}

bool
condEval(Cond cond, uint32_t eflags)
{
    bool cf = eflags & FlagCf;
    bool pf = eflags & FlagPf;
    bool zf = eflags & FlagZf;
    bool sf = eflags & FlagSf;
    bool of = eflags & FlagOf;
    bool result;
    switch (cond) {
      case Cond::O:
      case Cond::NO:
        result = of;
        break;
      case Cond::B:
      case Cond::AE:
        result = cf;
        break;
      case Cond::E:
      case Cond::NE:
        result = zf;
        break;
      case Cond::BE:
      case Cond::A:
        result = cf || zf;
        break;
      case Cond::S:
      case Cond::NS:
        result = sf;
        break;
      case Cond::P:
      case Cond::NP:
        result = pf;
        break;
      case Cond::L:
      case Cond::GE:
        result = sf != of;
        break;
      case Cond::LE:
      case Cond::G:
        result = zf || (sf != of);
        break;
      default:
        el_panic("bad condition code");
    }
    // Odd encodings are the negated forms.
    if (static_cast<uint8_t>(cond) & 1)
        result = !result;
    return result;
}

} // namespace el::ia32
