# Empty compiler generated dependencies file for fig7_sysmark_distribution.
# This may be replaced when dependencies are built.
