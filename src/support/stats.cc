#include "support/stats.hh"

#include <algorithm>
#include <cmath>

#include "support/logging.hh"
#include "support/strfmt.hh"

namespace el
{

std::string
StatGroup::dump() const
{
    std::string out;
    for (const auto &[name, value] : counters_)
        out += strfmt("%-40s = %llu\n", name.c_str(),
                      static_cast<unsigned long long>(value));
    return out;
}

void
Histogram::sample(int64_t value, uint64_t count)
{
    total_ += count;
    sum_ += static_cast<double>(value) * static_cast<double>(count);
    if (value < lo_) {
        underflow_ += count;
        return;
    }
    uint64_t idx = static_cast<uint64_t>(value - lo_) /
                   static_cast<uint64_t>(width_);
    if (idx >= buckets_.size())
        overflow_ += count;
    else
        buckets_[idx] += count;
}

double
Histogram::mean() const
{
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

double
Histogram::percentile(double p) const
{
    if (!total_)
        return static_cast<double>(lo_);
    p = std::min(100.0, std::max(0.0, p));
    double rank = p / 100.0 * static_cast<double>(total_);

    double cum = static_cast<double>(underflow_);
    if (rank <= cum)
        return static_cast<double>(lo_); // clamped: true value unknown
    for (size_t i = 0; i < buckets_.size(); ++i) {
        double n = static_cast<double>(buckets_[i]);
        if (rank <= cum + n && n > 0) {
            double frac = (rank - cum) / n;
            return static_cast<double>(lo_) +
                   static_cast<double>(width_) *
                       (static_cast<double>(i) + frac);
        }
        cum += n;
    }
    // Rank lands in overflow: clamp to the top edge.
    return static_cast<double>(lo_) +
           static_cast<double>(width_) *
               static_cast<double>(buckets_.size());
}

std::string
Histogram::dump() const
{
    // Scale in double: 40 * n overflows uint64_t for counts beyond
    // ~4.6e17, and the max(1, ...) keeps an all-empty histogram (or one
    // whose only samples landed in a single bucket) off a zero divisor.
    uint64_t peak = std::max<uint64_t>(1, std::max(underflow_, overflow_));
    for (uint64_t n : buckets_)
        peak = std::max(peak, n);
    auto bar = [&](uint64_t n) {
        double frac = static_cast<double>(n) / static_cast<double>(peak);
        return std::string(static_cast<size_t>(40.0 * frac), '#');
    };

    std::string out;
    if (underflow_)
        out += strfmt("%20s  %8llu  %s\n", "(underflow)",
                      static_cast<unsigned long long>(underflow_),
                      bar(underflow_).c_str());
    for (size_t i = 0; i < buckets_.size(); ++i) {
        long long b_lo = lo_ + width_ * static_cast<int64_t>(i);
        out += strfmt("[%8lld, %8lld)  %8llu  %s\n", b_lo,
                      b_lo + width_,
                      static_cast<unsigned long long>(buckets_[i]),
                      bar(buckets_[i]).c_str());
    }
    if (overflow_)
        out += strfmt("%20s  %8llu  %s\n", "(overflow)",
                      static_cast<unsigned long long>(overflow_),
                      bar(overflow_).c_str());
    return out;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    el_assert(cells.size() == headers_.size(),
              "row width %zu != header width %zu", cells.size(),
              headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto fmt_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
            line += strfmt("%-*s", static_cast<int>(width[c] + 2),
                           row[c].c_str());
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = fmt_row(headers_);
    size_t rule_len = 0;
    for (size_t c = 0; c < width.size(); ++c)
        rule_len += width[c] + 2;
    out += std::string(rule_len, '-') + "\n";
    for (const auto &row : rows_)
        out += fmt_row(row);
    return out;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace el
