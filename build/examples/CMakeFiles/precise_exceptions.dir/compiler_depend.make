# Empty compiler generated dependencies file for precise_exceptions.
# This may be replaced when dependencies are built.
