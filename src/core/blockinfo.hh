/**
 * @file
 * Per-translation metadata: block records, guard expectations, exit
 * stubs, and the recovery maps that make hot-code exceptions precise
 * (section 4's "Record reconstruction maps").
 */

#ifndef EL_CORE_BLOCKINFO_HH
#define EL_CORE_BLOCKINFO_HH

#include <cstdint>
#include <vector>

#include "core/layout.hh"
#include "ia32/regs.hh"

namespace el::core
{

/** Translation phases a block can belong to. */
enum class BlockKind : uint8_t
{
    Cold,
    Hot,
};

/**
 * Hot-coverage lifecycle of a cold block. Replaces the historical
 * hot_version = -1 / -2 sentinels so recovery code reads declaratively.
 */
enum class HotState : uint8_t
{
    Eligible,   //!< May register as a hot candidate and be promoted.
    Covered,    //!< A hot trace covers this block (hot_version valid).
    PinnedCold, //!< Hot translation failed hot_retry_limit times;
                //!< permanently executes as cold code.
};

/** Misalignment-handling stage of a cold block (section 5). */
enum class MisalignStage : uint8_t
{
    Light = 1,    //!< Stage 1: detect-any, exit to translator.
    Detailed = 2, //!< Stage 2: per-access counters + avoidance.
};

/** Where a guest value lives at a commit point. */
struct Loc
{
    enum class Kind : uint8_t
    {
        Home,  //!< The canonical home register (value unchanged).
        Gr,    //!< A general register (id may be virtual pre-renaming).
    };

    Kind kind = Kind::Home;
    int16_t reg = 0; //!< GR id when kind == Gr.

    static Loc
    home()
    {
        return {};
    }

    static Loc
    gr(int16_t r)
    {
        Loc l;
        l.kind = Kind::Gr;
        l.reg = r;
        return l;
    }
};

/** How to recover the arithmetic EFLAGS at a commit point. */
struct FlagRecipe
{
    /** Lazy operation classes the runtime can re-evaluate. */
    enum class LazyOp : uint8_t
    {
        Homes,   //!< The flag home registers are current.
        Add,     //!< Recompute as a + b (wide) / res.
        Sub,
        Logic,
    };

    LazyOp op = LazyOp::Homes;
    uint8_t size = 4;
    uint32_t dirty_mask = 0; //!< Flags to recompute; others from homes.
    Loc wide, a, b, res;
};

/**
 * Reconstruction map for one commit point: enough information to build
 * a precise ia32::State from the IPF machine state when a fault lands
 * on an instruction tagged with this commit id.
 */
struct RecoveryMap
{
    uint32_t guest_ip = 0;      //!< IA-32 IP of the faulting instruction.
    Loc gpr[ia32::NumRegs];     //!< Location of each guest GPR.
    FlagRecipe flags;
    int8_t tos_delta = 0;       //!< TOS change since block entry.
    uint8_t tag_set = 0;        //!< TAG bits set since entry.
    uint8_t tag_clear = 0;      //!< TAG bits cleared since entry.
    uint32_t xmm_formats = 0;   //!< XMM representations at this point.
    uint8_t mmx_domain = 0;     //!< MMX/FP domain at this point.
};

/** One not-yet-linked control transfer out of a block. */
struct ExitStub
{
    int64_t cache_index = -1;  //!< The Exit instruction to patch.
    uint32_t target_eip = 0;
    bool patched = false;
};

/** FP/MMX/SSE guard expectations of a block head (section 5). */
struct GuardInfo
{
    bool checks_fp = false;
    uint8_t expect_tos = 0;
    uint8_t need_valid = 0;   //!< TAG bits that must be 1.
    uint8_t need_empty = 0;   //!< TAG bits that must be 0.
    bool checks_mmx = false;
    uint8_t expect_domain = 0; //!< 0 = FP current, 1 = MMX current.
    bool checks_xmm = false;
    uint32_t xmm_mask = 0;     //!< Format-word bits compared.
    uint32_t xmm_expect = 0;
};

/** Metadata of one translated block (cold or hot). */
struct BlockInfo
{
    int32_t id = -1;
    BlockKind kind = BlockKind::Cold;
    uint32_t entry_eip = 0;
    int64_t cache_entry = -1;
    int64_t cache_end = -1;
    uint32_t insn_count = 0;   //!< IA-32 instructions translated.

    // Profiling (cold blocks).
    int64_t use_ctr_off = -1;  //!< Runtime-area offset of the use counter.
    int64_t edge_ctr_off = -1; //!< Taken-edge counter (conditional end).
    uint32_t taken_eip = 0;    //!< Conditional: taken target.
    uint32_t fall_eip = 0;     //!< Conditional: fall-through target.
    bool ends_cond = false;
    bool ends_indirect = false;
    uint32_t heat_registrations = 0;

    // Misalignment handling.
    MisalignStage misalign_stage = MisalignStage::Light;
    int64_t misalign_ctr_off = -1; //!< Stage-2 per-access detail base.
    uint32_t misalign_accesses = 0;

    // Safety guards.
    bool smc_guarded = false;
    GuardInfo guard;

    // Linking.
    std::vector<ExitStub> stubs;

    // Precise state (hot blocks).
    std::vector<RecoveryMap> recovery; //!< Indexed by commit id.

    // Superseded by a newer translation (kept for stable ids).
    bool invalidated = false;

    // Adopted from a persistent artifact store rather than translated
    // in this process (observability: report + el_prof origin marks).
    bool loaded_from_store = false;

    // Hot-coverage lifecycle (cold blocks).
    HotState hot_state = HotState::Eligible;
    int32_t hot_version = -1;  //!< Hot block id when hot_state == Covered.
    uint32_t hot_fail_count = 0; //!< Aborted hot sessions for this block.
    bool hot_queued = false;   //!< In the hot-candidate queue; makes
                               //!< re-registration O(1).
    bool hot_inflight = false; //!< A pipeline session for this block is
                               //!< running on a worker; its exits stay
                               //!< unlinked so every traversal yields
                               //!< an adoption boundary.
};

} // namespace el::core

#endif // EL_CORE_BLOCKINFO_HH
