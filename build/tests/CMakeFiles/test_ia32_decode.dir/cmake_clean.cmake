file(REMOVE_RECURSE
  "CMakeFiles/test_ia32_decode.dir/ia32_decode_test.cc.o"
  "CMakeFiles/test_ia32_decode.dir/ia32_decode_test.cc.o.d"
  "CMakeFiles/test_ia32_decode.dir/ia32_roundtrip_test.cc.o"
  "CMakeFiles/test_ia32_decode.dir/ia32_roundtrip_test.cc.o.d"
  "test_ia32_decode"
  "test_ia32_decode.pdb"
  "test_ia32_decode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ia32_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
