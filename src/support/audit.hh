/**
 * @file
 * Accounting-audit framework: named invariant checks with a violation
 * report.
 *
 * The runtime's telemetry (cycle buckets, per-block costs, StatGroup
 * counters, flight events, provenance timelines, serialized reports)
 * describes the same execution from several angles; when two of those
 * angles disagree, every number downstream — bench deltas, el_diff
 * attributions, paper figures — is suspect. This header is the
 * mechanism layer: a `Checker` accumulates pass/fail verdicts for
 * named invariants, and the core-level auditor (core/audit.hh) walks a
 * Runtime applying the actual invariant table. Keeping the mechanism
 * in support lets `el_diff` and the tests consume audit results
 * without linking the core.
 */

#ifndef EL_SUPPORT_AUDIT_HH
#define EL_SUPPORT_AUDIT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace el::audit
{

/** One failed invariant: which check, and the numbers that disagreed. */
struct Violation
{
    std::string check;  //!< Invariant name, e.g. "closure.blocks".
    std::string detail; //!< Human-readable mismatch description.
};

/** The outcome of one audit pass. */
class Result
{
  public:
    /** Record one invariant verdict; @p detail only read on failure. */
    void
    check(bool ok, const std::string &name, const std::string &detail)
    {
        ++checks_run_;
        if (!ok)
            violations_.push_back({name, detail});
    }

    /** Record an unconditional failure (e.g. unparseable artifact). */
    void
    fail(const std::string &name, const std::string &detail)
    {
        check(false, name, detail);
    }

    void
    merge(const Result &o)
    {
        checks_run_ += o.checks_run_;
        violations_.insert(violations_.end(), o.violations_.begin(),
                           o.violations_.end());
    }

    bool ok() const { return violations_.empty(); }
    uint64_t checksRun() const { return checks_run_; }
    const std::vector<Violation> &violations() const
    {
        return violations_;
    }

    /** Multi-line human summary ("audit: N checks, M violation(s)"
     *  plus one line per violation). */
    std::string summary() const;

  private:
    uint64_t checks_run_ = 0;
    std::vector<Violation> violations_;
};

} // namespace el::audit

#endif // EL_SUPPORT_AUDIT_HH
