file(REMOVE_RECURSE
  "CMakeFiles/fp_showcase.dir/fp_showcase.cpp.o"
  "CMakeFiles/fp_showcase.dir/fp_showcase.cpp.o.d"
  "fp_showcase"
  "fp_showcase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_showcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
