file(REMOVE_RECURSE
  "libel_ia32.a"
)
