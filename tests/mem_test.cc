/**
 * @file
 * Unit tests for guest memory (mapping, permissions, cross-page access)
 * and the cache cost model.
 */

#include <gtest/gtest.h>

#include "mem/cache_model.hh"
#include "mem/memory.hh"

namespace el::mem
{
namespace
{

TEST(Memory, MapAndReadWrite)
{
    Memory m;
    m.map(0x1000, 0x1000, PermRW);
    uint64_t v = 0;
    EXPECT_TRUE(m.write(0x1000, 4, 0xdeadbeef).ok());
    EXPECT_TRUE(m.read(0x1000, 4, &v).ok());
    EXPECT_EQ(v, 0xdeadbeefULL);
}

TEST(Memory, LittleEndian)
{
    Memory m;
    m.map(0, 0x1000, PermRW);
    ASSERT_TRUE(m.write(0x10, 4, 0x11223344).ok());
    uint64_t b = 0;
    ASSERT_TRUE(m.read(0x10, 1, &b).ok());
    EXPECT_EQ(b, 0x44u);
    ASSERT_TRUE(m.read(0x13, 1, &b).ok());
    EXPECT_EQ(b, 0x11u);
}

TEST(Memory, UnmappedFaults)
{
    Memory m;
    uint64_t v;
    auto r = m.read(0x5000, 4, &v);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.error, AccessError::Unmapped);
    EXPECT_EQ(r.fault_addr, 0x5000u);
}

TEST(Memory, PermissionFaults)
{
    Memory m;
    m.map(0x1000, 0x1000, PermRead);
    auto r = m.write(0x1004, 4, 1);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.error, AccessError::Protection);
    uint64_t v;
    EXPECT_TRUE(m.read(0x1004, 4, &v).ok());
}

TEST(Memory, CrossPageAccess)
{
    Memory m;
    m.map(0x1000, 0x2000, PermRW);
    // Write straddling the page boundary at 0x2000.
    EXPECT_TRUE(m.write(0x1ffe, 4, 0xaabbccdd).ok());
    uint64_t v = 0;
    EXPECT_TRUE(m.read(0x1ffe, 4, &v).ok());
    EXPECT_EQ(v, 0xaabbccddULL);
}

TEST(Memory, CrossPageFaultReportsFirstBadAddress)
{
    Memory m;
    m.map(0x1000, 0x1000, PermRW); // [0x1000, 0x2000) only
    auto r = m.write(0x1ffe, 4, 0xaabbccdd);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.fault_addr, 0x2000u);
}

TEST(Memory, FetchNeedsExec)
{
    Memory m;
    m.map(0x1000, 0x1000, PermRW);
    uint8_t buf[4];
    EXPECT_EQ(m.fetch(0x1000, buf, 4), 0u);
    m.protect(0x1000, 0x1000, PermRX);
    EXPECT_EQ(m.fetch(0x1000, buf, 4), 4u);
}

TEST(Memory, FetchStopsAtBoundary)
{
    Memory m;
    m.map(0x1000, 0x1000, PermRX);
    uint8_t buf[16];
    EXPECT_EQ(m.fetch(0x1ff8, buf, 16), 8u);
}

TEST(Memory, PrivilegedBypassesPerms)
{
    Memory m;
    m.map(0x1000, 0x1000, PermNone);
    EXPECT_TRUE(m.writePriv(0x1000, 4, 7).ok());
    uint64_t v;
    EXPECT_TRUE(m.readPriv(0x1000, 4, &v).ok());
    EXPECT_EQ(v, 7u);
    EXPECT_FALSE(m.read(0x1000, 4, &v).ok());
}

TEST(Memory, UnmapRemovesPages)
{
    Memory m;
    m.map(0x1000, 0x2000, PermRW);
    m.unmap(0x1000, 0x1000);
    uint64_t v;
    EXPECT_FALSE(m.read(0x1800, 4, &v).ok());
    EXPECT_TRUE(m.read(0x2800, 4, &v).ok());
}

TEST(Memory, CodeMarking)
{
    Memory m;
    m.map(0x1000, 0x2000, PermRWX);
    EXPECT_FALSE(m.isCode(0x1000, 16));
    m.markCode(0x1100, 32);
    EXPECT_TRUE(m.isCode(0x1000, 0x1000));
    EXPECT_FALSE(m.isCode(0x2000, 16));
}

TEST(CacheModel, HitAfterMiss)
{
    CacheModel c = CacheModel::itanium2();
    unsigned first = c.access(0x1000, 4);
    unsigned second = c.access(0x1000, 4);
    EXPECT_GT(first, second);
    EXPECT_EQ(second, c.levels()[0].hit_latency);
}

TEST(CacheModel, LineGranularity)
{
    CacheModel c = CacheModel::itanium2();
    c.access(0x1000, 4);
    // Same 64-byte line => L1 hit.
    EXPECT_EQ(c.access(0x1030, 4), c.levels()[0].hit_latency);
}

TEST(CacheModel, StraddlingAccessTouchesTwoLines)
{
    CacheModel c = CacheModel::itanium2();
    c.access(0x1000, 4);
    c.access(0x1040, 4);
    // Both lines resident: a straddling access costs two L1 hits.
    EXPECT_EQ(c.access(0x103e, 4), 2 * c.levels()[0].hit_latency);
}

TEST(CacheModel, CapacityEviction)
{
    CacheModel c({{"L1", 1024, 64, 1, 1}}, 100);
    // Direct-mapped 1KB: addresses 0 and 1024 conflict.
    EXPECT_EQ(c.access(0, 4), 100u);
    EXPECT_EQ(c.access(1024, 4), 100u);
    EXPECT_EQ(c.access(0, 4), 100u); // evicted by the conflicting line
}

TEST(CacheModel, StatsCount)
{
    CacheModel c = CacheModel::itanium2();
    c.access(0x1000, 4);
    c.access(0x1000, 4);
    EXPECT_EQ(c.stats()[0].accesses, 2u);
    EXPECT_EQ(c.stats()[0].misses, 1u);
}

TEST(CacheModel, ResetClears)
{
    CacheModel c = CacheModel::itanium2();
    c.access(0x1000, 4);
    c.reset();
    EXPECT_EQ(c.stats()[0].accesses, 0u);
    unsigned lat = c.access(0x1000, 4);
    EXPECT_GT(lat, c.levels()[0].hit_latency);
}

} // namespace
} // namespace el::mem
