/**
 * @file
 * EFLAGS computation for the IA-32 integer ALU.
 *
 * These helpers define the flag semantics used by the interpreter (the
 * oracle). Where the IA-32 manual leaves a flag undefined (SF/ZF/PF after
 * multiplies, AF after logic ops), this reproduction picks a fixed,
 * documented definition so the interpreter and the translated code can be
 * compared bit-for-bit: undefined flags are computed from the result just
 * like the defined ones, and AF is cleared by logic ops.
 */

#ifndef EL_IA32_FLAGS_HH
#define EL_IA32_FLAGS_HH

#include <cstdint>

#include "ia32/regs.hh"
#include "support/bitfield.hh"

namespace el::ia32
{

/** Sign bit mask for an operand size in bytes. */
constexpr uint32_t
signBit(unsigned size)
{
    return 1u << (size * 8 - 1);
}

/** Truncation mask for an operand size in bytes. */
constexpr uint32_t
sizeMask(unsigned size)
{
    return size >= 4 ? 0xffffffffu : ((1u << (size * 8)) - 1);
}

/** ZF/SF/PF from a result (PF covers the low byte only). */
inline uint32_t
flagsZSP(uint32_t result, unsigned size)
{
    uint32_t fl = 0;
    uint32_t r = result & sizeMask(size);
    if (r == 0)
        fl |= FlagZf;
    if (r & signBit(size))
        fl |= FlagSf;
    if (!(popcount8(static_cast<uint8_t>(r)) & 1))
        fl |= FlagPf;
    return fl;
}

/** Full flag set for dst = a + b + carry_in. */
inline uint32_t
flagsAdd(uint32_t a, uint32_t b, unsigned carry_in, unsigned size)
{
    uint32_t mask = sizeMask(size);
    a &= mask;
    b &= mask;
    uint64_t wide = static_cast<uint64_t>(a) + b + carry_in;
    uint32_t r = static_cast<uint32_t>(wide) & mask;
    uint32_t fl = flagsZSP(r, size);
    if (wide > mask)
        fl |= FlagCf;
    if (((a ^ r) & (b ^ r)) & signBit(size))
        fl |= FlagOf;
    if (((a ^ b ^ r) & 0x10))
        fl |= FlagAf;
    return fl;
}

/** Full flag set for dst = a - b - borrow_in. */
inline uint32_t
flagsSub(uint32_t a, uint32_t b, unsigned borrow_in, unsigned size)
{
    uint32_t mask = sizeMask(size);
    a &= mask;
    b &= mask;
    uint64_t wide = static_cast<uint64_t>(a) - b - borrow_in;
    uint32_t r = static_cast<uint32_t>(wide) & mask;
    uint32_t fl = flagsZSP(r, size);
    if (static_cast<uint64_t>(a) < static_cast<uint64_t>(b) + borrow_in)
        fl |= FlagCf;
    if (((a ^ b) & (a ^ r)) & signBit(size))
        fl |= FlagOf;
    if (((a ^ b ^ r) & 0x10))
        fl |= FlagAf;
    return fl;
}

/** Flag set for logic ops (AND/OR/XOR/TEST): CF=OF=AF=0. */
inline uint32_t
flagsLogic(uint32_t result, unsigned size)
{
    return flagsZSP(result, size);
}

} // namespace el::ia32

#endif // EL_IA32_FLAGS_HH
