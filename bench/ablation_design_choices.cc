/**
 * @file
 * Ablations of the design choices the paper calls out: the second
 * (hot) phase, EFlags elimination, FXCH elimination, the register FP
 * stack vs the FX!32-style in-memory stack, address CSE, loop
 * unrolling, load speculation, block chaining and misalignment
 * avoidance. Each row is the slowdown of turning one feature off,
 * measured on a workload that stresses it.
 */

#include "bench/bench_common.hh"

using namespace el;

namespace
{

double
cyclesWith(const guest::Workload &w, core::Options o)
{
    harness::TranslatedRun tr =
        harness::runTranslated(w.image, w.params.abi, o);
    return tr.outcome.cycles;
}

} // namespace

int
main(int argc, char **argv)
{
    if (int rc = bench::handleArgs(argc, argv); rc >= 0)
        return rc;
    bench::banner("Design-choice ablations", "sections 2, 4, 5");

    guest::WorkloadParams ip;
    ip.outer_iters = 30;
    ip.size = 16000;
    guest::Workload intw = guest::buildStream("int-kernel", ip);

    guest::WorkloadParams fp;
    fp.outer_iters = 25;
    fp.size = 4000;
    guest::Workload fpw = guest::buildFpKernel("fp-kernel", fp);

    guest::WorkloadParams mp = ip;
    mp.misaligned = 2;
    mp.size = 8000;
    guest::Workload misw = guest::buildMatrix("mis-kernel", mp);

    core::Options base;
    double int_base = cyclesWith(intw, base);
    double fp_base = cyclesWith(fpw, base);
    double mis_base = cyclesWith(misw, base);

    bench::Report rep("ablation_design_choices");
    rep.scalar("baseline_int_cycles", int_base);
    rep.scalar("baseline_fp_cycles", fp_base);
    rep.scalar("baseline_mis_cycles", mis_base);

    Table t({"feature disabled", "workload", "slowdown"});
    auto row = [&](const char *name, const guest::Workload &w,
                   double base_cycles, core::Options o) {
        harness::TranslatedRun tr =
            harness::runTranslated(w.image, w.params.abi, o);
        double c = tr.outcome.cycles;
        t.addRow({name, w.name, strfmt("%.2fx", c / base_cycles)});
        rep.row(name)
            .metric("cycles", c)
            .metric("slowdown", c / base_cycles)
            .attribution(*tr.runtime);
    };

    {
        core::Options o;
        o.enable_hot_phase = false;
        row("hot phase (cold only)", intw, int_base, o);
    }
    {
        core::Options o;
        o.enable_eflags_elim = false;
        row("EFlags elimination", intw, int_base, o);
    }
    {
        core::Options o;
        o.enable_addr_cse = false;
        row("address CSE", intw, int_base, o);
    }
    {
        core::Options o;
        o.enable_unroll = false;
        row("loop unrolling", intw, int_base, o);
    }
    {
        core::Options o;
        o.enable_load_speculation = false;
        row("load speculation (ld.s/chk.s)", intw, int_base, o);
    }
    {
        core::Options o;
        o.enable_chaining = false;
        row("block chaining", intw, int_base, o);
    }
    {
        core::Options o;
        o.enable_fxch_elim = false;
        row("FXCH elimination", fpw, fp_base, o);
    }
    {
        core::Options o;
        o.enable_fp_stack_spec = false;
        row("register FP stack (use memory stack)", fpw, fp_base, o);
    }
    {
        core::Options o;
        o.enable_misalign_avoidance = false;
        o.max_run_cycles = 8ULL * 1000 * 1000 * 1000;
        row("misalignment avoidance", misw, mis_base, o);
    }
    rep.write();
    std::printf("%s\n", t.render().c_str());
    std::printf("Interpretation: >1.00x means the feature pays off on\n"
                "its stress workload; the FP-stack-in-memory row is the\n"
                "FX!32 alternative the paper rejects in section 5.\n");
    return 0;
}
