/**
 * @file
 * Local code discovery and analysis (the cold-translation front end of
 * Figure 1): decode basic blocks around the current IP, build the local
 * flow graph, and compute EFlags liveness between blocks so redundant
 * EFlags updates can be eliminated. FP-stack deltas are tracked during
 * code generation itself (emit_env.hh), using the block list produced
 * here.
 */

#ifndef EL_CORE_ANALYSIS_HH
#define EL_CORE_ANALYSIS_HH

#include <cstdint>
#include <map>
#include <vector>

#include "ia32/insn.hh"
#include "mem/memory.hh"

namespace el::core
{

/** One decoded IA-32 basic block. */
struct BasicBlock
{
    uint32_t start = 0;
    std::vector<ia32::Insn> insns;
    // Successors within the region (0 = none/unknown).
    uint32_t taken = 0;     //!< Branch target of Jcc/Jmp/Call.
    uint32_t fall = 0;      //!< Fall-through (Jcc / non-branch end).
    bool ends_indirect = false;
    bool ends_stop = false; //!< HLT / INT / undecodable end.
    bool fetch_fault = false; //!< Undecodable because unmapped (#PF).
    uint32_t flags_live_out = ia32::FlagsArith; //!< Conservative default.

    const ia32::Insn &last() const { return insns.back(); }
};

/** A neighbourhood of basic blocks rooted at one entry point. */
struct Region
{
    uint32_t entry = 0;
    std::map<uint32_t, BasicBlock> blocks;

    const BasicBlock *
    find(uint32_t eip) const
    {
        auto it = blocks.find(eip);
        return it == blocks.end() ? nullptr : &it->second;
    }
};

/**
 * Decode up to @p max_blocks basic blocks reachable from @p entry.
 * Decoding stops at indirect branches, system instructions, and
 * undecodable bytes. Block boundaries are also introduced at branch
 * targets inside already-decoded blocks (block splitting).
 */
Region discoverRegion(const mem::Memory &memory, uint32_t entry,
                      unsigned max_blocks);

/**
 * Backward EFlags liveness over the region: for each block compute the
 * set of arithmetic flags that may be read before being written by some
 * successor chain. Unknown successors are assumed to read everything.
 * Results are written into BasicBlock::flags_live_out.
 */
void computeFlagsLiveness(Region &region);

/**
 * Per-instruction liveness inside one block: returns, for each
 * instruction index, the set of flags live immediately after that
 * instruction executes (the flags its EFLAGS writes must actually
 * produce; dead ones need not be materialized).
 */
std::vector<uint32_t> perInsnLiveFlags(const BasicBlock &block,
                                       uint32_t live_out);

} // namespace el::core

#endif // EL_CORE_ANALYSIS_HH
