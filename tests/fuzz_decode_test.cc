/**
 * @file
 * Robustness fuzzing: the decoder must handle arbitrary byte soup
 * without crashing, always consume between 1 and 15 bytes, and be
 * deterministic. The interpreter must turn undecodable bytes into
 * clean #UD faults. The translator must survive being pointed at
 * garbage (it emits a precise fault exit).
 */

#include <gtest/gtest.h>

#include "btlib/abi.hh"
#include "guest/image.hh"
#include "harness/exec.hh"
#include "ia32/decoder.hh"
#include "support/random.hh"

namespace el
{
namespace
{

using guest::Layout;

TEST(FuzzDecode, RandomBytesNeverCrash)
{
    Rng rng(0xfeed);
    for (int iter = 0; iter < 20000; ++iter) {
        uint8_t buf[16];
        unsigned len = 1 + static_cast<unsigned>(rng.range(15));
        for (unsigned k = 0; k < len; ++k)
            buf[k] = static_cast<uint8_t>(rng.next());
        ia32::Insn a, b;
        bool ok1 = ia32::decode(buf, len, 0x1000, &a);
        bool ok2 = ia32::decode(buf, len, 0x1000, &b);
        EXPECT_EQ(ok1, ok2) << "nondeterministic decode";
        EXPECT_GE(a.len, ok1 ? 1 : 0);
        EXPECT_LE(a.len, 15);
        if (ok1) {
            EXPECT_EQ(a.op, b.op);
            EXPECT_EQ(a.len, b.len);
            EXPECT_NE(a.op, ia32::Op::Invalid);
        }
    }
}

TEST(FuzzDecode, InterpreterFaultsCleanlyOnGarbage)
{
    Rng rng(0xdead);
    for (int iter = 0; iter < 50; ++iter) {
        guest::Image img;
        img.entry = Layout::code_base;
        std::vector<uint8_t> bytes;
        for (int k = 0; k < 64; ++k)
            bytes.push_back(static_cast<uint8_t>(rng.next()));
        img.addCode(Layout::code_base, bytes);
        img.addData(Layout::data_base, 0x1000);
        harness::Outcome ref =
            harness::runInterpreter(img, btlib::OsAbi::Linux, 10000);
        // Garbage either faults, exits through a random int 0x80, or
        // runs off into unmapped space (also a fault); it must never
        // crash the host or hang.
        (void)ref;
    }
    SUCCEED();
}

TEST(FuzzDecode, TranslatorSurvivesGarbageCode)
{
    Rng rng(0xbeef);
    for (int iter = 0; iter < 25; ++iter) {
        guest::Image img;
        img.entry = Layout::code_base;
        std::vector<uint8_t> bytes;
        for (int k = 0; k < 64; ++k)
            bytes.push_back(static_cast<uint8_t>(rng.next()));
        img.addCode(Layout::code_base, bytes);
        img.addData(Layout::data_base, 0x1000);
        core::Options o;
        o.max_run_cycles = 2 * 1000 * 1000;
        harness::TranslatedRun tr =
            harness::runTranslated(img, btlib::OsAbi::Linux, o);
        harness::Outcome ref =
            harness::runInterpreter(img, btlib::OsAbi::Linux, 100000);
        // When both sides fault at the same instruction they must agree
        // on the kind. (Garbage that runs off the mapped code area can
        // legitimately be classified at different EIPs: the block-based
        // translator discovers the undecodable tail before executing up
        // to it, while the interpreter faults at the exact boundary.)
        if (ref.faulted && tr.outcome.faulted &&
            ref.fault.eip == tr.outcome.fault.eip) {
            EXPECT_EQ(ref.fault.kind, tr.outcome.fault.kind)
                << "iter " << iter;
        }
    }
}

} // namespace
} // namespace el
