/**
 * @file
 * Section 5's speculation success rates: TOS/TAG (99-100%), MMX/FP
 * domain (~100%), SSE format conversions (<0.2% worst case). Measured
 * as guard-failure events per block execution across the FP suite.
 */

#include "bench/bench_common.hh"

using namespace el;

int
main(int argc, char **argv)
{
    if (int rc = bench::handleArgs(argc, argv); rc >= 0)
        return rc;
    bench::banner("FP/MMX/SSE speculation success rates", "section 5");

    uint64_t tos_miss = 0, tag_miss = 0, dom_miss = 0, fmt_miss = 0;
    uint64_t link_exits = 0, executions = 0;
    bench::Report rep("scalar_speculation_rates");
    for (guest::Workload &w : guest::specFpSuite()) {
        harness::TranslatedRun tr =
            harness::runTranslated(w.image, w.params.abi);
        StatGroup &st = tr.runtime->stats();
        rep.row(w.name)
            .metric("cycles", tr.outcome.cycles)
            .metric("tos_miss", st.get("guard.tos_miss"))
            .metric("tag_miss", st.get("guard.tag_miss"))
            .metric("domain_miss", st.get("guard.domain_miss"))
            .metric("format_miss", st.get("guard.format_miss"))
            .attribution(*tr.runtime);
        tos_miss += st.get("guard.tos_miss");
        tag_miss += st.get("guard.tag_miss");
        dom_miss += st.get("guard.domain_miss");
        fmt_miss += st.get("guard.format_miss");
        link_exits += st.get("exits.link_miss") +
                      st.get("links.patched") +
                      st.get("exits.indirect_miss");
        // Block executions ~ retired blocks; approximate with guard-
        // bearing block entries = hot+cold block entries. Use retired
        // branches as a proxy: every block ends with one.
        executions += static_cast<uint64_t>(
            tr.runtime->machine().stats().insns[0] / 20 +
            tr.runtime->machine().stats().insns[1] / 10);
    }

    auto rate = [&](uint64_t miss) {
        return executions ? 100.0 * (1.0 - static_cast<double>(miss) /
                                               executions)
                          : 100.0;
    };

    Table t({"speculation", "misses", "success (ours)", "paper"});
    t.addRow({"FP TOS", strfmt("%llu", (unsigned long long)tos_miss),
              strfmt("%.2f%%", rate(tos_miss)), "99-100%"});
    t.addRow({"FP TAG", strfmt("%llu", (unsigned long long)tag_miss),
              strfmt("%.2f%%", rate(tag_miss)), "99-100%"});
    t.addRow({"MMX/FP domain", strfmt("%llu", (unsigned long long)dom_miss),
              strfmt("%.2f%%", rate(dom_miss)), "~100%"});
    t.addRow({"SSE format", strfmt("%llu", (unsigned long long)fmt_miss),
              strfmt("%.2f%%", rate(fmt_miss)), ">99.8%"});
    rep.scalar("tos_success_pct", rate(tos_miss));
    rep.scalar("tag_success_pct", rate(tag_miss));
    rep.scalar("domain_success_pct", rate(dom_miss));
    rep.scalar("format_success_pct", rate(fmt_miss));
    rep.scalar("block_executions", static_cast<double>(executions));
    rep.write();
    std::printf("%s\n", t.render().c_str());
    std::printf("(block executions approximated: %llu)\n",
                (unsigned long long)executions);
    return 0;
}
