/**
 * @file
 * Instruction bundling.
 *
 * Real Itanium code is packaged into 128-bit bundles of three slots
 * chosen from a fixed template set (MII, MMI, MFI, MIB, MLX, ...). The
 * machine's dispersal timing uses the issue-group model directly, but
 * bundling still matters for code-size statistics ("ILs are ordered and
 * bundled according to architectural limitations", section 2), so the
 * scheduler calls this packer and the benchmarks report bundle counts
 * and nop-padding waste.
 */

#ifndef EL_IPF_BUNDLE_HH
#define EL_IPF_BUNDLE_HH

#include <cstdint>
#include <vector>

#include "ipf/code_cache.hh"
#include "ipf/insn.hh"

namespace el::ipf
{

/** Result of packing one instruction sequence into bundles. */
struct BundleStats
{
    uint64_t bundles = 0;
    uint64_t real_slots = 0; //!< Slots holding real instructions.
    uint64_t nop_slots = 0;  //!< Padding slots.

    /** Fraction of slots wasted on padding. */
    double
    padFraction() const
    {
        uint64_t total = real_slots + nop_slots;
        return total ? static_cast<double>(nop_slots) / total : 0.0;
    }
};

/**
 * Pack the instructions [begin, end) of @p code into bundles, honouring
 * stop bits (a group never shares a bundle with the next group unless a
 * mid-bundle stop template exists for it — modelled by simply ending the
 * bundle at every stop).
 */
BundleStats packBundles(const CodeCache &code, int64_t begin, int64_t end);

} // namespace el::ipf

#endif // EL_IPF_BUNDLE_HH
