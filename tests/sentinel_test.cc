/**
 * @file
 * Unit tests for the divergence sentinel's bookkeeping: deterministic
 * sampling, the health ledger, and the quarantine state machine
 * (healthy -> suspect -> quarantined -> retranslated, with bounded
 * retries pinning an EIP to the interpreter).
 */

#include <gtest/gtest.h>

#include "support/sentinel.hh"

namespace el::sentinel
{
namespace
{

TEST(SentinelSampling, RateZeroNeverChecks)
{
    Sentinel s; // default config: selfcheck_rate = 0
    for (int k = 0; k < 100; ++k)
        EXPECT_FALSE(s.shouldCheck());
    EXPECT_EQ(s.regionsSeen(), 100u); // the counter still advances
}

TEST(SentinelSampling, EveryNthRegionDeterministically)
{
    Config cfg;
    cfg.selfcheck_rate = 4;
    Sentinel s(cfg);
    int checked = 0;
    for (int k = 0; k < 16; ++k) {
        bool c = s.shouldCheck();
        EXPECT_EQ(c, k % 4 == 0) << "region " << k;
        checked += c;
    }
    EXPECT_EQ(checked, 4);

    // A second sentinel over the same region stream makes identical
    // decisions: sampling is a pure function of the counter.
    Sentinel s2(cfg);
    for (int k = 0; k < 16; ++k)
        EXPECT_EQ(s2.shouldCheck(), k % 4 == 0);
}

TEST(SentinelSampling, RateOneChecksEverything)
{
    Config cfg;
    cfg.selfcheck_rate = 1;
    Sentinel s(cfg);
    for (int k = 0; k < 8; ++k)
        EXPECT_TRUE(s.shouldCheck());
}

TEST(SentinelLedger, DivergenceIsDecisive)
{
    Sentinel s;
    EXPECT_EQ(s.record(0x1000), nullptr);
    EXPECT_FALSE(s.isQuarantined(0x1000));
    EXPECT_FALSE(s.interpretGate(0x1000));

    s.noteDivergence(0x1000);
    const HealthRecord *r = s.record(0x1000);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->state, Health::Quarantined);
    EXPECT_EQ(r->divergences, 1u);
    EXPECT_TRUE(s.isQuarantined(0x1000));
    EXPECT_TRUE(s.interpretGate(0x1000));
    EXPECT_EQ(s.totalDivergences(), 1u);
    // Unrelated EIPs are untouched.
    EXPECT_FALSE(s.isQuarantined(0x2000));
}

TEST(SentinelLedger, FaultThresholdsSuspectThenQuarantine)
{
    Config cfg;
    cfg.fault_suspect_threshold = 2;
    cfg.fault_quarantine_threshold = 4;
    Sentinel s(cfg);

    EXPECT_FALSE(s.noteFault(0x42)); // 1
    EXPECT_EQ(s.record(0x42)->state, Health::Healthy);
    EXPECT_FALSE(s.noteFault(0x42)); // 2 -> Suspect
    EXPECT_EQ(s.record(0x42)->state, Health::Suspect);
    EXPECT_FALSE(s.isQuarantined(0x42)); // suspect still runs translated
    EXPECT_FALSE(s.noteFault(0x42)); // 3
    EXPECT_TRUE(s.noteFault(0x42));  // 4 -> Quarantined, caller acts
    EXPECT_TRUE(s.isQuarantined(0x42));
    // The fault count reset: a future retranslation starts clean.
    EXPECT_EQ(s.record(0x42)->faults, 0u);
}

TEST(SentinelLedger, FaultPolicyOffByDefault)
{
    Sentinel s; // thresholds default to 0 = off
    for (int k = 0; k < 100; ++k)
        EXPECT_FALSE(s.noteFault(0x42));
    EXPECT_EQ(s.record(0x42)->state, Health::Healthy);
    EXPECT_EQ(s.record(0x42)->faults, 100u); // still counted
}

TEST(SentinelLedger, GuardMissThreshold)
{
    Config cfg;
    cfg.guard_quarantine_threshold = 3;
    Sentinel s(cfg);
    EXPECT_FALSE(s.noteGuardMiss(0x9));
    EXPECT_FALSE(s.noteGuardMiss(0x9)); // crosses half: Suspect
    EXPECT_EQ(s.record(0x9)->state, Health::Suspect);
    EXPECT_TRUE(s.noteGuardMiss(0x9)); // 3 -> Quarantined
    EXPECT_TRUE(s.isQuarantined(0x9));
}

TEST(SentinelQuarantine, CooldownServesThenRetranslates)
{
    Config cfg;
    cfg.quarantine_cooldown = 3;
    Sentinel s(cfg);
    s.noteDivergence(0x77);
    EXPECT_TRUE(s.interpretGate(0x77));
    EXPECT_EQ(s.record(0x77)->cooldown_left, 3u);

    s.tickCooldown(0x77);
    s.tickCooldown(0x77);
    EXPECT_TRUE(s.interpretGate(0x77)); // still cooling down
    s.tickCooldown(0x77);
    // Cooldown served: retranslation allowed, gate lifted.
    EXPECT_EQ(s.record(0x77)->state, Health::Retranslated);
    EXPECT_EQ(s.record(0x77)->retries, 1u);
    EXPECT_FALSE(s.interpretGate(0x77));
    EXPECT_FALSE(s.isQuarantined(0x77));
}

TEST(SentinelQuarantine, RelapsePinsAfterBoundedRetries)
{
    Config cfg;
    cfg.quarantine_cooldown = 1;
    cfg.retranslate_limit = 2;
    Sentinel s(cfg);

    // Two full quarantine -> retranslate -> relapse cycles...
    for (int cycle = 0; cycle < 2; ++cycle) {
        s.noteDivergence(0xabc);
        EXPECT_FALSE(s.record(0xabc)->pinned) << "cycle " << cycle;
        s.tickCooldown(0xabc);
        EXPECT_EQ(s.record(0xabc)->state, Health::Retranslated);
    }
    // ...and the third divergence exhausts the retry budget: pinned.
    s.noteDivergence(0xabc);
    EXPECT_TRUE(s.record(0xabc)->pinned);
    EXPECT_TRUE(s.interpretGate(0xabc));
    EXPECT_TRUE(s.isQuarantined(0xabc));
    // Ticks no longer lift the gate.
    for (int k = 0; k < 10; ++k)
        s.tickCooldown(0xabc);
    EXPECT_TRUE(s.interpretGate(0xabc));
}

TEST(SentinelQuarantine, TickOnUnknownOrHealthyIsNoop)
{
    Sentinel s;
    s.tickCooldown(0x5); // unknown EIP: nothing happens
    EXPECT_EQ(s.record(0x5), nullptr);
    s.noteFault(0x6); // healthy row
    s.tickCooldown(0x6);
    EXPECT_EQ(s.record(0x6)->state, Health::Healthy);
    EXPECT_EQ(s.record(0x6)->retries, 0u);
}

TEST(SentinelLog, DivergenceLogIsBoundedKeepingEarliest)
{
    Config cfg;
    cfg.divergence_log_capacity = 2;
    Sentinel s(cfg);
    for (uint32_t k = 0; k < 5; ++k) {
        DivergenceInfo d;
        d.checkpoint_eip = 0x100 + k;
        d.region_index = k;
        s.logDivergence(d);
    }
    ASSERT_EQ(s.divergences().size(), 2u);
    // Drop-newest: the first divergences explain the rest of the run.
    EXPECT_EQ(s.divergences()[0].checkpoint_eip, 0x100u);
    EXPECT_EQ(s.divergences()[1].checkpoint_eip, 0x101u);
    EXPECT_EQ(s.divergences().dropped(), 3u);
}

TEST(SentinelLog, HealthNames)
{
    EXPECT_STREQ(healthName(Health::Healthy), "healthy");
    EXPECT_STREQ(healthName(Health::Suspect), "suspect");
    EXPECT_STREQ(healthName(Health::Quarantined), "quarantined");
    EXPECT_STREQ(healthName(Health::Retranslated), "retranslated");
}

} // namespace
} // namespace el::sentinel
