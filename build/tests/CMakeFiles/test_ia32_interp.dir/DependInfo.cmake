
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ia32_fpu_test.cc" "tests/CMakeFiles/test_ia32_interp.dir/ia32_fpu_test.cc.o" "gcc" "tests/CMakeFiles/test_ia32_interp.dir/ia32_fpu_test.cc.o.d"
  "/root/repo/tests/ia32_interp_test.cc" "tests/CMakeFiles/test_ia32_interp.dir/ia32_interp_test.cc.o" "gcc" "tests/CMakeFiles/test_ia32_interp.dir/ia32_interp_test.cc.o.d"
  "/root/repo/tests/ia32_simd_test.cc" "tests/CMakeFiles/test_ia32_interp.dir/ia32_simd_test.cc.o" "gcc" "tests/CMakeFiles/test_ia32_interp.dir/ia32_simd_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/el_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/el_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ia32/CMakeFiles/el_ia32.dir/DependInfo.cmake"
  "/root/repo/build/src/ipf/CMakeFiles/el_ipf.dir/DependInfo.cmake"
  "/root/repo/build/src/guest/CMakeFiles/el_guest.dir/DependInfo.cmake"
  "/root/repo/build/src/btlib/CMakeFiles/el_btlib.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/el_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/el_harness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
