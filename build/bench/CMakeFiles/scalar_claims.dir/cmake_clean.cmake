file(REMOVE_RECURSE
  "CMakeFiles/scalar_claims.dir/scalar_claims.cc.o"
  "CMakeFiles/scalar_claims.dir/scalar_claims.cc.o.d"
  "scalar_claims"
  "scalar_claims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalar_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
