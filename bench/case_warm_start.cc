/**
 * @file
 * Case study: warm start from the persistent translation-artifact store.
 *
 * Three legs per workload over identical inputs:
 *  - cold:  empty store, every hot trace built live (and recorded),
 *  - warm:  second run over the store the cold leg saved,
 *  - aot:   run over a store pre-translated and validated by the
 *           `el_aot` flow (aggressive-heat discovery, then a
 *           shadow-check-everything validation pass that drops any
 *           artifact the sentinel convicts).
 *
 * Reported per leg: total cycles, translation cycles (hot-translation
 * stalls + cold translation work), and the reuse rate. The headline
 * scalars assert the subsystem's contract: the warm leg adopts >= 90%
 * of its hot artifacts from the store, spends <= 50% of the cold leg's
 * translation cycles, and reproduces the cold leg's guest results
 * bit-for-bit.
 */

#include <cstdio>
#include <filesystem>
#include <tuple>

#include "bench/bench_common.hh"
#include "persist/store.hh"
#include "support/sentinel.hh"

using namespace el;

namespace
{

namespace fs = std::filesystem;

core::Options
baseOpts()
{
    core::Options o;
    o.heat_threshold = 16;
    o.hot_batch = 1;
    return o;
}

/** Simulated cycles spent making translations (both phases). */
double
translationCycles(core::Runtime &rt, const core::Options &o)
{
    const StatGroup &st = rt.stats();
    const StatGroup &xl = rt.translator().stats;
    return static_cast<double>(st.get("hot.stall_cycles")) +
           o.cold_xlate_cost_per_insn *
               static_cast<double>(xl.get("xlate.cold_insns"));
}

struct Leg
{
    double cycles = 0;
    double xlate_cycles = 0;
    double reuse = 0; //!< adopted / (adopted + locally built)
    core::GuestResult guest;
};

Leg
measure(const guest::Workload &w, core::Options o,
        persist::ArtifactStore *store, bench::Report &rep,
        const std::string &label)
{
    o.persist = store;
    harness::TranslatedRun run =
        harness::runTranslated(w.image, w.params.abi, o);
    Leg leg;
    leg.cycles = run.outcome.cycles;
    leg.xlate_cycles = translationCycles(*run.runtime, o);
    double hits = store ? static_cast<double>(
                              store->stats.get("persist.hits"))
                        : 0;
    double local = static_cast<double>(
        run.runtime->translator().stats.get("xlate.hot_blocks"));
    leg.reuse = hits + local > 0 ? hits / (hits + local) : 0;
    leg.guest = core::guestResultOf(
        run.outcome.final_state, run.outcome.console, run.outcome.exited,
        run.outcome.exit_code, run.outcome.guest_insns);
    rep.row(label)
        .metric("cycles", leg.cycles)
        .metric("translation_cycles", leg.xlate_cycles)
        .metric("reuse", leg.reuse)
        .metric("exit_code", leg.guest.exit_code)
        .attribution(*run.runtime);
    return leg;
}

/** The `el_aot` flow, inline: discover aggressively, validate, seal. */
void
buildAotStore(const guest::Workload &w, persist::ArtifactStore &store)
{
    {
        core::Options o = baseOpts();
        o.heat_threshold = 4;
        o.persist = &store;
        harness::runTranslated(w.image, w.params.abi, o);
    }
    {
        core::Options o = baseOpts();
        o.heat_threshold = 4;
        o.max_run_cycles *= 10;
        o.persist = &store;
        sentinel::Config scfg;
        scfg.selfcheck_rate = 1;
        sentinel::Sentinel sent(scfg);
        o.sentinel = &sent;
        harness::runTranslated(w.image, w.params.abi, o);
    }
    store.seal();
}

bool
sameGuest(const core::GuestResult &a, const core::GuestResult &b)
{
    return a.exited == b.exited && a.exit_code == b.exit_code &&
           a.state_hash == b.state_hash &&
           a.console_hash == b.console_hash;
}

} // namespace

int
main(int argc, char **argv)
{
    if (int rc = bench::handleArgs(argc, argv); rc >= 0)
        return rc;
    bench::banner("Warm start from the persistent artifact store",
                  "the persistence subsystem (no paper figure)");

    fs::path dir = fs::temp_directory_path() / "el_bench_warm_start";
    fs::remove_all(dir);
    fs::create_directories(dir);

    bench::Report rep("case_warm_start");
    Table t({"workload", "leg", "cycles", "xlate cycles", "xlate share",
             "reuse", "bit-exact"});

    int rc = 0;
    for (const char *name : {"gzip", "mcf"}) {
        const guest::Workload *wl = nullptr;
        std::vector<guest::Workload> suite = guest::specIntSuite();
        for (const guest::Workload &w : suite)
            if (w.name == name)
                wl = &w;
        if (!wl)
            continue;

        core::Options base = baseOpts();
        persist::Fingerprint fp =
            persist::fingerprintOf(wl->image, base);
        fs::path cache = dir / name;
        fs::create_directories(cache);

        // Cold leg: records into a fresh store, saved for the warm leg.
        persist::ArtifactStore writer(fp);
        Leg cold = measure(*wl, base, &writer, rep,
                           std::string(name) + "_cold");
        writer.save(cache.string());

        // Warm leg: adopt what the cold leg published.
        persist::ArtifactStore warm_store(fp);
        warm_store.load(cache.string());
        Leg warm = measure(*wl, base, &warm_store, rep,
                           std::string(name) + "_warm");

        // AOT leg: a sealed, validated store built offline.
        persist::ArtifactStore aot_store(fp);
        buildAotStore(*wl, aot_store);
        Leg aot = measure(*wl, base, &aot_store, rep,
                          std::string(name) + "_aot");

        bool warm_exact = sameGuest(cold.guest, warm.guest);
        bool aot_exact = sameGuest(cold.guest, aot.guest);
        double ratio = cold.xlate_cycles > 0
                           ? warm.xlate_cycles / cold.xlate_cycles
                           : 0;

        const std::tuple<const char *, const Leg *, bool> legs[] = {
            {"cold", &cold, true},
            {"warm", &warm, warm_exact},
            {"aot", &aot, aot_exact}};
        for (const auto &[leg, l, exact] : legs) {
            t.addRow({name, leg, strfmt("%.0f", l->cycles),
                      strfmt("%.0f", l->xlate_cycles),
                      strfmt("%.2f%%",
                             100.0 * l->xlate_cycles / l->cycles),
                      strfmt("%.0f%%", 100.0 * l->reuse),
                      exact ? "yes" : "NO"});
        }

        rep.scalar(std::string(name) + "_warm_reuse", warm.reuse, 0.10);
        rep.scalar(std::string(name) + "_warm_xlate_ratio", ratio,
                   0.50);
        rep.scalar(std::string(name) + "_warm_speedup",
                   cold.cycles / warm.cycles, 0.10);
        rep.scalar(std::string(name) + "_aot_reuse", aot.reuse, 0.50);

        // The subsystem's contract, enforced.
        if (!warm_exact || !aot_exact) {
            std::fprintf(stderr, "%s: warm/aot guest results diverge "
                                 "from cold\n",
                         name);
            rc = 1;
        }
        if (warm.reuse < 0.90) {
            std::fprintf(stderr, "%s: warm reuse %.0f%% below 90%%\n",
                         name, 100.0 * warm.reuse);
            rc = 1;
        }
        if (ratio > 0.50) {
            std::fprintf(stderr,
                         "%s: warm translation cycles %.0f%% of cold "
                         "(need <= 50%%)\n",
                         name, 100.0 * ratio);
            rc = 1;
        }
    }

    rep.write();
    std::printf("%s\n", t.render().c_str());
    std::printf(
        "Interpretation: the warm leg adopts the cold leg's published\n"
        "traces from disk, cutting translation cycles by >= 2x with\n"
        "bit-identical guest results; the aot leg additionally survives\n"
        "the el_aot validation gauntlet (convicted artifacts dropped),\n"
        "so its reuse can sit below warm when the sentinel rejects\n"
        "artifacts conservatively.\n");
    fs::remove_all(dir);
    return rc;
}
