/**
 * @file
 * The emitter environment shared by cold and hot translation.
 *
 * The per-IA-32-instruction translation templates (templates.cc) are
 * written once against this environment — the paper's "precompiled
 * binary templates and the IL-generation are derived from the same
 * template source code". The environment differs between the phases
 * only in policy:
 *  - Cold: values synced to their home registers at every instruction
 *    boundary, flags materialized when live, no cross-instruction value
 *    reuse, in-order scheduling downstream.
 *  - Hot: guest values tracked in virtual registers across the trace,
 *    lazy flags with recovery recipes, address CSE, commit regions with
 *    reconstruction maps, side exits with sideways sync code.
 *
 * It also centralizes the section-5 machinery: the FP-stack TOS/TAG
 * speculation (with FXCH elimination as permutation of the mapping),
 * the MMX/FP domain tracking, the XMM format tracking, and the staged
 * misalignment policy applied to every guest memory access.
 */

#ifndef EL_CORE_EMIT_ENV_HH
#define EL_CORE_EMIT_ENV_HH

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "core/blockinfo.hh"
#include "core/il.hh"
#include "core/layout.hh"
#include "core/options.hh"
#include "ia32/fault.hh"
#include "ia32/insn.hh"

namespace el::core
{

/** Translation phase the environment is generating for. */
enum class Phase : uint8_t
{
    Cold,
    Hot,
};

/** Per-access misalignment policy (section 5 stages). */
enum class MisalignPolicy : uint8_t
{
    Plain,        //!< No handling (ablation / known-aligned).
    DetectExit,   //!< Stage 1: on misalignment exit to the translator.
    CountAndAvoid,//!< Stage 2: count + split-access avoidance.
    Avoid,        //!< Hot: known-misaligned, avoidance only.
    DetectLight,  //!< Hot: "dangerous", light re-instrumentation.
};

/** Architectural entry conditions the generated block speculates on. */
struct SpecContext
{
    uint8_t tos = 0;          //!< Expected x87 TOS at entry.
    uint8_t tag = 0;          //!< Expected TAG byte (bit = valid).
    uint8_t mmx_domain = 0;   //!< 0 = FP values current, 1 = MMX.
    uint32_t xmm_format = rt::uniformFormatWord(rt::XmmPs);
};

/** Lazy EFLAGS bookkeeping. */
struct LazyFlags
{
    enum class Kind : uint8_t
    {
        Homes, //!< Flag home registers are architecturally current.
        Add,   //!< wide = opa + opb (+carry-in); res = trunc(wide).
        Sub,   //!< wide = opa - opb (-borrow-in), 64-bit signed.
        Logic, //!< res = opa op opb; CF=OF=AF=0.
    };

    Kind kind = Kind::Homes;
    uint8_t size = 4;
    int16_t wide = -1; //!< Untruncated 64-bit result.
    int16_t opa = -1, opb = -1;
    int16_t res = -1;  //!< Size-truncated result.
    uint32_t dirty = 0; //!< Flags whose homes are stale (lazy-covered).
};

/** What a guest memory access needs from the misalignment machinery. */
struct AccessSite
{
    uint32_t ia32_ip = 0;
    uint32_t index = 0;       //!< Access ordinal within the block.
    MisalignPolicy policy = MisalignPolicy::Plain;
    uint8_t known_granularity = 0; //!< Stage-2 observed granularity.
};

/** The emitter environment. */
class EmitEnv
{
  public:
    EmitEnv(const Options &options, Phase phase, int32_t block_id,
            SpecContext spec);

    // ----- IL emission ---------------------------------------------
    IlBuffer body;
    IlBuffer head; //!< Guards + instrumentation, prepended by the driver.

    /** Redirect subsequent emission into the head buffer. */
    void beginHead() { to_head_ = true; }

    /** Append an IL with the current IP/region/bucket metadata. */
    int32_t emit(Il il);

    /** Shorthand constructors for common shapes. */
    Il mk(ipf::IpfOp op) const;
    int32_t emitOp(ipf::IpfOp op, int16_t dst, int16_t s1 = -1,
                   int16_t s2 = -1, int64_t imm = 0);

    // ----- virtual registers -----------------------------------------
    int16_t newGr();
    int16_t newFr();
    int16_t newPr();
    bool overflowed() const { return overflow_; }

    /** Materialize a 64-bit immediate into a GR. */
    int16_t immGr(int64_t value);

    // ----- guest integer state ---------------------------------------
    int16_t readGuest(ia32::Reg reg);
    /**
     * Write a guest GPR. @p clean promises the value is already a
     * zero-extended 32-bit quantity (true for almost every template
     * result); otherwise a zxt4 is emitted to maintain the container
     * invariant.
     */
    void writeGuest(ia32::Reg reg, int16_t val, unsigned size = 4,
                    bool clean = true);
    int16_t readGuest8(uint8_t enc);
    void writeGuest8(uint8_t enc, int16_t val);
    int16_t readGuest16(ia32::Reg reg);
    void writeGuest16(ia32::Reg reg, int16_t val);

    /** Read an operand (Gpr/Gpr8/Imm/Mem) zero-extended to 64 bits. */
    int16_t readOperand(const ia32::Operand &op, unsigned size);

    /** Write a register-or-memory destination. */
    void writeOperand(const ia32::Operand &op, int16_t val, unsigned size);

    // ----- flags ------------------------------------------------------
    /** Flags this instruction must actually produce (liveness-masked). */
    void setLiveMask(uint32_t mask) { live_mask_ = mask; }
    uint32_t liveMask() const { return live_mask_; }

    /**
     * Record the flag outcome of an ALU op. Under the cold policy, live
     * flags are materialized immediately; under the hot policy they stay
     * lazy until a sync point or consumer.
     */
    void setFlags(LazyFlags::Kind kind, unsigned size, int16_t wide,
                  int16_t opa, int16_t opb, int16_t res,
                  uint32_t written_mask);

    /** Force specific flag homes to be architecturally correct. */
    void materializeFlags(uint32_t mask);

    /** Directly set one flag home from a 0/1 value (shifts, fcomi...). */
    void setFlagHome(ia32::Flag flag, int16_t val01);

    /** Predicate that is true iff @p cond holds. */
    int16_t condPred(ia32::Cond cond);

    /** 0/1 value of one flag. */
    int16_t readFlagValue(ia32::Flag flag);

    /** The current lazy recipe (captured into recovery maps). */
    FlagRecipe flagRecipe() const;

    /** Declare flag homes current for @p mask without emitting code
     *  (used by templates that wrote homes with predicated moves). */
    void clearLazyDirty(uint32_t mask) { lazy_.dirty &= ~mask; }

    // ----- addresses & memory -----------------------------------------
    /** Effective address (32-bit wrapped), with CSE under the hot policy. */
    int16_t effAddr(const ia32::MemRef &mem);

    /** Emit a guest load through the misalignment policy. */
    int16_t emitLoad(int16_t addr, unsigned size);

    /** Emit a guest store through the misalignment policy. */
    void emitStore(int16_t addr, int16_t val, unsigned size);

    /** FP loads/stores (ldf/stf) with the same policy. */
    int16_t emitLoadF(int16_t addr, unsigned fsize);
    void emitStoreF(int16_t addr, int16_t fval, unsigned fsize);

    /** Set the policy applied to subsequent accesses. */
    void setAccessPolicy(MisalignPolicy policy, uint8_t granularity = 0);

    /** Stage-2 detail-counter area for this block (runtime offset). */
    void setMisalignCtrOff(int64_t off) { misalign_ctr_off_ = off; }

    /** Attribute subsequently emitted ILs to a specific bucket. */
    void
    setBucket(ipf::Bucket bucket)
    {
        bucket_override_ = true;
        override_bucket_ = bucket;
    }

    void clearBucket() { bucket_override_ = false; }

    /** Runtime-area address: r1 + offset. */
    int16_t rtAddr(int64_t offset);

    // ----- x87 / MMX / SSE --------------------------------------------
    /** FR id (physical) of logical ST(i); marks tag requirements. */
    int16_t frForSt(uint8_t sti);
    void fpPush();
    void fpPop();
    /** FXCH: permutes the mapping (hot) or emits three moves (cold). */
    void fpSwap(uint8_t sti);
    /** FNINIT: statically empty the whole stack. */
    void fpInit();
    /** EMMS: statically mark every slot empty (TOS unchanged). */
    void fpEmms();
    bool fpUsed() const { return fp_used_; }
    /** In-memory FP-stack mode (the FX!32 ablation). */
    bool fpMemoryMode() const { return !options.enable_fp_stack_spec; }
    int16_t fpMemLoadSt(uint8_t sti);
    void fpMemStoreSt(uint8_t sti, int16_t fval);
    void fpMemPush(int16_t fval);
    void fpMemPop();

    /** Mark that this block executes MMX (or FP) instructions. */
    void touchMmx();
    void touchFp();
    bool mmxUsed() const { return mmx_used_; }

    /** GR home of MMX register i (domain handling is block-level). */
    int16_t mmxGr(uint8_t i) { touchMmx(); return ipf::grForMmx(i); }

    /** Current representation of XMM register i (converts if needed). */
    rt::XmmRep xmmRep(uint8_t i);
    /** Require register i in representation rep (emits conversion). */
    void xmmRequire(uint8_t i, rt::XmmRep rep);
    /** Declare that register i was fully rewritten in rep. */
    void xmmDefine(uint8_t i, rt::XmmRep rep);
    bool xmmUsed() const { return xmm_used_mask_ != 0; }
    uint8_t xmmUsedMask() const { return xmm_used_mask_; }
    uint32_t xmmEntryFormats() const { return xmm_entry_formats_; }
    uint32_t xmmExitFormats() const;

    // ----- instruction & region management ------------------------------
    /** Start translating one IA-32 instruction. */
    void beginInsn(const ia32::Insn &insn, uint32_t live_flags);

    /** Finish the instruction (cold: sync state to homes). */
    void endInsn();

    /**
     * Capture a reconstruction map for a faulting point at the current
     * instruction and return its commit id.
     */
    int32_t captureRecovery();

    /** Close the current commit region (stores/branches do this). */
    void closeRegion();

    /** Emit home syncs for everything live (traces: exits/loop edges). */
    void syncAllToHomes();

    /** Predicated side exit to @p target_eip (hot traces). */
    void sideExit(int16_t pred, uint32_t target_eip);

    /** Record a pending control transfer (block end). */
    void endBranch(uint32_t target_eip, int16_t pred = -1);

    /** End with an indirect dispatch through the lookup table. */
    void endIndirect(int16_t target_vreg);

    /** End with an Exit of the given reason. */
    void endExit(ipf::ExitReason reason, int64_t payload);

    /** Emit a precise guest-fault exit (divide error etc.). */
    void emitGuestFaultCheck(int16_t pred, ia32::FaultKind kind);

    // ----- head/tail helpers used by the codegen drivers ---------------
    void emitUseCounter(int64_t ctr_off, uint32_t threshold);
    void emitEdgeCounter(int64_t ctr_off, int16_t pred);
    void emitSmcGuard(uint32_t guest_addr, uint64_t expected_bytes,
                      uint32_t window);
    void emitFpGuard(GuardInfo *guard);
    void emitMmxGuard(GuardInfo *guard);
    void emitXmmGuard(GuardInfo *guard);
    void emitStatusTail();

    /** Restore the FXCH permutation to identity (before exits). */
    void restoreFpPerm();

    // ----- bookkeeping ---------------------------------------------------
    const Options &options;
    const Phase phase;
    const int32_t block_id;
    SpecContext spec;

    /** Recovery maps captured so far (hot). */
    std::vector<RecoveryMap> recovery;

    /** Exit stubs recorded by endBranch/sideExit (for linking). */
    struct PendingStub
    {
        int32_t il_index;      //!< IL of the Exit instruction.
        uint32_t target_eip;
    };
    std::vector<PendingStub> pending_stubs;

    /** Guard info accumulated for the block head. */
    GuardInfo guard;

    /** Statistics shared with the codegen drivers. */
    uint32_t access_count = 0;
    uint32_t fxch_eliminated = 0;
    uint32_t fxch_emitted = 0;
    uint32_t loads_emitted = 0;
    uint32_t stores_emitted = 0;

    /** Current region counter (for the scheduler). */
    int32_t currentRegion() const { return region_; }

    /** TOS delta accumulated so far (for recovery and the tail). */
    int8_t tosDelta() const;
    uint8_t tagSet() const { return tag_set_; }
    uint8_t tagClear() const { return tag_clear_; }

    /** The IA-32 instruction currently being translated. */
    const ia32::Insn *cur_insn = nullptr;

    /** Commit id currently tagged onto emitted ILs (hot, faulting). */
    int32_t currentCommitId() const { return cur_commit_id_; }

  private:
    int16_t flagHomeFor(ia32::Flag flag) const;
    void emitStaticGuestFault(ia32::FaultKind kind);
    int16_t fpMemTos();
    int16_t fpMemSlotAddr(int16_t tos, uint8_t sti);
    void materializeOne(ia32::Flag flag);
    int16_t predFromLazySub(ia32::Cond cond);
    int16_t predTrue(int16_t p) { return p; }

    void emitMisalignCounter(int16_t p_mis, int16_t addr, unsigned size,
                             uint32_t access_idx);

    /** Split-access avoidance sequence. */
    int16_t emitSplitLoad(int16_t addr, unsigned size, int16_t p_mis,
                          int16_t p_al, unsigned granularity);
    void emitSplitStore(int16_t addr, int16_t val, unsigned size,
                        int16_t p_mis, int16_t p_al, unsigned granularity);
    /** Alignment predicates with hot-mode reuse. */
    std::pair<int16_t, int16_t> alignPreds(int16_t addr, unsigned size);

    uint32_t live_mask_ = 0;
    int16_t next_gr_ = vgr_base;
    int16_t next_fr_ = vfr_base;
    int16_t next_pr_ = vpr_base;
    bool overflow_ = false;

    /** Current location of each guest GPR (home physical id or vreg). */
    int16_t guest_loc_[ia32::NumRegs];
    uint8_t guest_dirty_ = 0; //!< Regs whose home is stale.

    LazyFlags lazy_;

    // x87 speculation state.
    uint8_t cur_tos_;
    uint8_t fp_perm_[8];      //!< Absolute slot -> physical FR.
    uint8_t tag_now_;         //!< Simulated TAG during generation.
    uint8_t touched_ = 0;     //!< Slots first-touched (for guard masks).
    uint8_t tag_set_ = 0, tag_clear_ = 0;
    bool fp_used_ = false;
    bool mmx_used_ = false;

    // XMM format tracking.
    uint8_t xmm_used_mask_ = 0;
    rt::XmmRep xmm_rep_[8];
    uint32_t xmm_entry_formats_;

    // Address CSE (hot): (base_loc, index_loc, scale, disp) -> vreg.
    std::map<std::tuple<int16_t, int16_t, uint8_t, int32_t>, int16_t>
        addr_cse_;

    // Alignment-predicate reuse (hot): (addr id, size) -> preds.
    std::map<std::pair<int16_t, unsigned>, std::pair<int16_t, int16_t>>
        align_cache_;

    MisalignPolicy policy_ = MisalignPolicy::Plain;
    uint8_t policy_granularity_ = 0;

    int32_t region_ = 0;
    bool region_fresh_ = true;
    uint32_t region_start_ip_ = 0;
    int32_t cur_commit_id_ = -1;
    uint8_t cur_domain_ = 0;
    bool state_reg_set_ = false;
    uint32_t last_state_ip_ = 0;
    uint32_t last_insn_ip_ = 0; //!< Most recent beginInsn() address.
    int64_t misalign_ctr_off_ = 0;
    bool in_sideways_ = false;
    bool bucket_override_ = false;
    bool to_head_ = false;
    ipf::Bucket override_bucket_ = ipf::Bucket::Overhead;
    uint8_t xmm_touched_ = 0;
    bool will_close_region_ = false;
    uint32_t pending_fault_ip_ = 0;
};

/**
 * Translate one decoded IA-32 instruction through the template table.
 * Returns false if the opcode has no template (caller falls back to an
 * exit that lets the runtime interpret or fault).
 */
bool translateInsn(EmitEnv &env, const ia32::Insn &insn);

} // namespace el::core

#endif // EL_CORE_EMIT_ENV_HH
