/**
 * @file
 * Property test: randomly generated guest programs (straight-line ALU +
 * memory + branches over a bounded arena) must behave identically under
 * the interpreter and under the translator, across many seeds and both
 * with and without the hot phase. This is the fuzz layer on top of the
 * directed end-to-end tests.
 */

#include <gtest/gtest.h>

#include "btlib/abi.hh"
#include "guest/image.hh"
#include "harness/exec.hh"
#include "ia32/assembler.hh"
#include "support/random.hh"

namespace el
{
namespace
{

using guest::Layout;
using namespace ia32;

/** Generate a random but terminating guest program. */
guest::Image
randomProgram(uint64_t seed)
{
    Rng rng(seed);
    Assembler as(Layout::code_base);

    // Registers: ebx points at a private arena; ecx is the loop
    // counter (never touched by the random body or the init writes).
    static const Reg pool[3] = {RegEax, RegEdx, RegEsi};
    for (int r = 0; r < 3; ++r)
        as.movRI(pool[rng.range(3)], static_cast<uint32_t>(rng.next()));
    as.movRI(RegEbx, Layout::data_base);
    as.movRI(RegEcx, 50 + static_cast<uint32_t>(rng.range(100)));

    Label top = as.label();
    as.bind(top);

    unsigned body = 4 + static_cast<unsigned>(rng.range(14));
    for (unsigned k = 0; k < body; ++k) {
        Reg r1 = pool[rng.range(3)];
        Reg r2 = pool[rng.range(3)];
        uint32_t off = static_cast<uint32_t>(rng.range(64)) * 4;
        switch (rng.range(10)) {
          case 0:
            as.aluRR(Op::Add, r1, r2);
            break;
          case 1:
            as.aluRI(Op::Xor, r1,
                     static_cast<int32_t>(rng.next()));
            break;
          case 2:
            as.movMR(memb(RegEbx, static_cast<int32_t>(off)), r1);
            break;
          case 3:
            as.movRM(r1, memb(RegEbx, static_cast<int32_t>(off)));
            break;
          case 4:
            as.imulRR(r1, r2);
            break;
          case 5:
            as.shiftRI(static_cast<Op>(
                           static_cast<int>(Op::Shl) + rng.range(3)),
                       r1, static_cast<uint8_t>(1 + rng.range(7)));
            break;
          case 6: {
            as.aluRI(Op::Cmp, r1, static_cast<int32_t>(rng.range(256)));
            Label skip = as.label();
            as.jcc(static_cast<Cond>(rng.range(16)), skip);
            as.aluRI(Op::Add, r2, 1);
            as.bind(skip);
            break;
          }
          case 7:
            as.movzxRM8(r1, memb(RegEbx, static_cast<int32_t>(off)));
            break;
          case 8:
            as.negR(r1);
            break;
          default:
            as.aluRM(Op::Add, r1,
                     memb(RegEbx, static_cast<int32_t>(off)));
            break;
        }
    }

    as.decR(RegEcx);
    as.jcc(Cond::NE, top);

    // Checksum the arena into eax and exit with it.
    as.movRI(RegEsi, 64);
    as.movRI(RegEax, 0);
    Label sum = as.label();
    as.bind(sum);
    as.aluRM(Op::Add, RegEax, membi(RegEbx, RegEsi, 4, -4));
    as.decR(RegEsi);
    as.jcc(Cond::NE, sum);
    as.aluRI(Op::And, RegEax, 0xff);
    as.movRR(RegEbx, RegEax);
    as.movRI(RegEax, btlib::linux_abi::nr_exit);
    as.intN(btlib::linux_abi::int_vector);

    guest::Image img;
    img.name = "random";
    img.entry = Layout::code_base;
    img.addCode(Layout::code_base, as.finish());
    img.addData(Layout::data_base, 0x2000);
    return img;
}

class RandomDiff : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomDiff, TranslatedMatchesInterpreter)
{
    guest::Image img = randomProgram(GetParam());
    harness::Outcome ref =
        harness::runInterpreter(img, btlib::OsAbi::Linux);

    core::Options hot;
    hot.heat_threshold = 16;
    hot.hot_batch = 1;
    for (core::Options o : {core::Options{}, hot}) {
        harness::TranslatedRun tr =
            harness::runTranslated(img, btlib::OsAbi::Linux, o);
        ASSERT_EQ(ref.exited, tr.outcome.exited);
        EXPECT_EQ(ref.exit_code, tr.outcome.exit_code);
        std::string why;
        EXPECT_TRUE(
            ref.final_state.equalsArch(tr.outcome.final_state, &why))
            << "seed " << GetParam() << ": " << why;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDiff,
                         ::testing::Range<uint64_t>(1, 41));

} // namespace
} // namespace el
