file(REMOVE_RECURSE
  "CMakeFiles/test_random_diff.dir/random_diff_test.cc.o"
  "CMakeFiles/test_random_diff.dir/random_diff_test.cc.o.d"
  "test_random_diff"
  "test_random_diff.pdb"
  "test_random_diff[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
