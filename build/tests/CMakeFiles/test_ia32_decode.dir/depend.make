# Empty dependencies file for test_ia32_decode.
# This may be replaced when dependencies are built.
