/**
 * @file
 * Telemetry continuity across an interrupted run: a kill mid-run plus
 * a `--resume` relaunch produces a *merged* metrics stream (the
 * interrupted run's NDJSON followed by the resumed run's) in which
 * every snapshot is schema-valid, every snapshot names the same
 * producer fingerprint (one guest, one options profile — that is what
 * makes concatenating the two files legitimate), cycles are strictly
 * increasing within each segment, and the resumed run's final
 * counters cross-check against its own run report. Raw counter
 * equality with an uninterrupted run is deliberately NOT asserted:
 * a resumed runtime starts a fresh simulated clock and retranslates
 * nothing it can adopt, so its totals legitimately differ — the
 * architectural outcome is what must be bit-exact.
 *
 * Shells out to el_run via EL_RUN_BIN like the other CLI suites.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>

#include "support/json.hh"

namespace
{

namespace fs = std::filesystem;
using el::json::Parser;
using el::json::Value;

constexpr int exit_ok = 0;
constexpr int exit_crash = 43;

const char *const kRunFlags =
    "--workload=gzip --heat-threshold=16 --hot-batch=1 "
    "--checkpoint-period=200000 --metrics-period=100000";

int
runCli(const std::string &args)
{
    const char *bin = std::getenv("EL_RUN_BIN");
    EXPECT_NE(bin, nullptr)
        << "EL_RUN_BIN must point at the el_run binary";
    if (!bin)
        return -1;
    std::string cmd =
        std::string(bin) + " " + args + " > /dev/null 2>&1";
    int rc = std::system(cmd.c_str());
    if (rc < 0 || !WIFEXITED(rc))
        return -1;
    return WEXITSTATUS(rc);
}

bool
readJson(const std::string &path, Value *root)
{
    std::ifstream in(path);
    if (!in.good())
        return false;
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    return Parser::parse(text.str(), root, &error);
}

/** Parse an NDJSON metrics file into snapshot documents. */
std::vector<Value>
readMetrics(const std::string &path)
{
    std::vector<Value> out;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "no metrics stream at " << path;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        Value v;
        std::string error;
        EXPECT_TRUE(Parser::parse(line, &v, &error))
            << path << ": unparseable snapshot line: " << error;
        out.push_back(std::move(v));
    }
    return out;
}

/** Schema + producer invariants for one snapshot; returns its
 *  fingerprint so the caller can assert stream-wide agreement. */
std::string
expectSnapshotSchema(const Value &s)
{
    EXPECT_EQ(s.strOr("kind", ""), "el-metrics");
    EXPECT_EQ(s.numberOr("version", 0), 1.0);
    const Value *producer = s.find("producer");
    EXPECT_NE(producer, nullptr) << "snapshot has no producer stamp";
    if (!producer)
        return "";
    EXPECT_EQ(producer->strOr("tool", ""), "el_run");
    EXPECT_NE(producer->strOr("build", ""), "");
    EXPECT_EQ(producer->numberOr("schema", 0), 1.0);
    for (const char *obj : {"gauges", "counters", "histograms"}) {
        const Value *v = s.find(obj);
        EXPECT_NE(v, nullptr) << "snapshot missing " << obj;
        if (v)
            EXPECT_TRUE(v->isObject());
    }
    return producer->strOr("fingerprint", "");
}

} // namespace

TEST(ResumeMetrics, MergedStreamIsSchemaValidAndCrossConsistent)
{
    fs::path root =
        fs::path(::testing::TempDir()) / "el_resume_metrics";
    fs::remove_all(root);
    fs::create_directories(root);
    std::string cache = (root / "cache").string();
    std::string ck = (root / "ck").string();
    std::string shared = std::string(kRunFlags) +
                         " --cache-dir=" + cache +
                         " --checkpoint-dir=" + ck;

    // ----- uninterrupted reference ----------------------------------
    std::string ref_report = (root / "ref_report.json").string();
    ASSERT_EQ(runCli(std::string(kRunFlags) +
                     " --report-json=" + ref_report),
              exit_ok);
    Value ref;
    ASSERT_TRUE(readJson(ref_report, &ref));

    // ----- interrupted run (seeded kill mid-checkpoint) -------------
    std::string part1 = (root / "part1.ndjson").string();
    ASSERT_EQ(runCli(shared + " --fault=crash_checkpoint:512 "
                              "--fault-seed=3 --metrics-out=" + part1),
              exit_crash)
        << "the seeded kill must land for this test to mean anything";

    // ----- resumed run ----------------------------------------------
    std::string part2 = (root / "part2.ndjson").string();
    std::string res_report = (root / "resume_report.json").string();
    ASSERT_EQ(runCli(shared + " --resume --metrics-out=" + part2 +
                     " --report-json=" + res_report),
              exit_ok);
    Value resumed;
    ASSERT_TRUE(readJson(res_report, &resumed));

    // ----- the merged stream ----------------------------------------
    std::vector<Value> merged = readMetrics(part1);
    size_t part1_lines = merged.size();
    ASSERT_GT(part1_lines, 0u)
        << "interrupted run left no snapshots (per-line flush broken?)";
    for (const Value &s : readMetrics(part2))
        merged.push_back(s);
    ASSERT_GT(merged.size(), part1_lines)
        << "resumed run emitted no snapshots";

    std::string fingerprint;
    double prev_cycle = -1;
    for (size_t i = 0; i < merged.size(); ++i) {
        SCOPED_TRACE("snapshot " + std::to_string(i));
        std::string fp = expectSnapshotSchema(merged[i]);
        EXPECT_FALSE(fp.empty());
        if (fingerprint.empty())
            fingerprint = fp;
        // One fingerprint across the whole merged stream: the resumed
        // process ran the same guest under the same options profile,
        // which is the precondition for reading the concatenation as
        // one logical run.
        EXPECT_EQ(fp, fingerprint);
        // Cycles restart at the segment boundary (fresh runtime, by
        // design) but must be strictly increasing within a segment.
        double cycle = merged[i].numberOr("cycle", -1);
        if (i != 0 && i != part1_lines)
            EXPECT_GT(cycle, prev_cycle);
        prev_cycle = cycle;
    }

    // The report carries the same stamp the stream does.
    const Value *rp = resumed.find("producer");
    ASSERT_NE(rp, nullptr);
    EXPECT_EQ(rp->strOr("fingerprint", ""), fingerprint);

    // ----- final-snapshot ↔ report cross-consistency ----------------
    // el_run emits one last snapshot at the terminal cycle, after the
    // run quiesced; its counters must agree exactly with the run
    // report rendered from the same runtime.
    const Value &last = merged.back();
    const Value *counters = last.find("counters");
    const Value *stats = resumed.find("stats");
    ASSERT_NE(counters, nullptr);
    ASSERT_NE(stats, nullptr);
    size_t compared = 0;
    for (const auto &[name, v] : counters->obj) {
        // Counter names are "<prefix>.<stat>" for prefixes the report
        // merges wholesale (translator/runtime/persist share one
        // namespace there).
        std::string::size_type dot = name.find('.');
        if (dot == std::string::npos || !v.isNumber())
            continue;
        std::string stat = name.substr(dot + 1);
        const Value *rv = stats->find(stat.c_str());
        if (!rv || !rv->isNumber())
            continue;
        EXPECT_EQ(v.num, rv->num)
            << "final snapshot disagrees with the report on " << name;
        ++compared;
    }
    EXPECT_GT(compared, 5u)
        << "cross-check matched suspiciously few counters";

    // The resumed run's cycles gauge at the last snapshot equals the
    // report's cycle total (the final emit happens at outcome.cycles).
    const Value *gauges = last.find("gauges");
    ASSERT_NE(gauges, nullptr);
    EXPECT_EQ(gauges->numberOr("cycles", -1),
              resumed.numberOr("cycles", -2));

    // ----- architectural outcome is bit-exact vs uninterrupted ------
    const Value *rg = ref.find("guest");
    const Value *gg = resumed.find("guest");
    ASSERT_NE(rg, nullptr);
    ASSERT_NE(gg, nullptr);
    EXPECT_EQ(gg->strOr("state_hash", "x"), rg->strOr("state_hash", "y"));
    EXPECT_EQ(gg->strOr("console_hash", "x"),
              rg->strOr("console_hash", "y"));
    EXPECT_EQ(gg->numberOr("exit_code", -1),
              rg->numberOr("exit_code", -2));
}

TEST(ResumeMetrics, AuditStaysGreenAcrossResume)
{
    // The closure books of a resumed runtime start fresh; the auditor
    // must not confuse "resumed" with "corrupted".
    fs::path root =
        fs::path(::testing::TempDir()) / "el_resume_audit";
    fs::remove_all(root);
    fs::create_directories(root);
    std::string shared = std::string(kRunFlags) +
                         " --cache-dir=" + (root / "cache").string() +
                         " --checkpoint-dir=" + (root / "ck").string();
    ASSERT_EQ(runCli(shared + " --audit --fault=crash_checkpoint:512 "
                              "--fault-seed=3"),
              exit_crash);
    EXPECT_EQ(runCli(shared + " --audit --resume"), exit_ok);
}
