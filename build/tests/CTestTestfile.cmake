# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_ia32_decode[1]_include.cmake")
include("/root/repo/build/tests/test_ipf[1]_include.cmake")
include("/root/repo/build/tests/test_ia32_interp[1]_include.cmake")
include("/root/repo/build/tests/test_core_end2end[1]_include.cmake")
include("/root/repo/build/tests/test_core_fp_end2end[1]_include.cmake")
include("/root/repo/build/tests/test_core_units[1]_include.cmake")
include("/root/repo/build/tests/test_random_diff[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_decode[1]_include.cmake")
