# Empty compiler generated dependencies file for test_core_end2end.
# This may be replaced when dependencies are built.
