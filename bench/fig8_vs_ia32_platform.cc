/**
 * @file
 * Figure 8: IA-32 EL on Itanium 2 relative to a Xeon-class IA-32
 * platform (paper: CPU2000 INT 105.0%, CPU2000 FP 132.6%, Sysmark
 * 98.9%). The IA-32 platform is the direct-execution cost model; the
 * paper's 1.5GHz-vs-1.6GHz frequency ratio is applied to the cycle
 * counts.
 */

#include "bench/bench_common.hh"

using namespace el;

namespace
{

double
suiteRatio(std::vector<guest::Workload> suite, bench::Report &rep,
           const char *suite_name)
{
    std::vector<double> ratios;
    for (guest::Workload &w : suite) {
        harness::TranslatedRun tr =
            harness::runTranslated(w.image, w.params.abi);
        harness::Outcome direct = harness::runDirect(w.image, w.params.abi);
        // time = cycles / frequency; score ratio = t_ia32 / t_el.
        double t_el = tr.outcome.cycles / 1.5e9;
        double t_ia32 = direct.cycles / 1.6e9;
        ratios.push_back(t_ia32 / t_el * 100.0);
        rep.row(std::string(suite_name) + "/" + w.name)
            .metric("el_cycles", tr.outcome.cycles)
            .metric("ia32_cycles", direct.cycles)
            .metric("ratio_pct", ratios.back())
            .attribution(*tr.runtime);
    }
    return geomean(ratios);
}

} // namespace

int
main(int argc, char **argv)
{
    if (int rc = bench::handleArgs(argc, argv); rc >= 0)
        return rc;
    bench::banner("IA-32 EL on Itanium 2 (1.5GHz) vs Xeon (1.6GHz)",
                  "Figure 8");

    bench::Report rep("fig8_vs_ia32_platform");
    double r_int = suiteRatio(guest::specIntSuite(), rep, "int");
    double r_fp = suiteRatio(guest::specFpSuite(), rep, "fp");
    double r_sm = suiteRatio(guest::sysmarkSuite(), rep, "sysmark");
    Table table({"suite", "ours", "paper"});
    table.addRow({"CPU2000 INT", strfmt("%.1f%%", r_int), "105.0%"});
    table.addRow({"CPU2000 FP", strfmt("%.1f%%", r_fp), "132.6%"});
    table.addRow({"Sysmark 2002", strfmt("%.1f%%", r_sm), "98.9%"});
    rep.scalar("geomean_int_pct", r_int);
    rep.scalar("geomean_fp_pct", r_fp);
    rep.scalar("geomean_sysmark_pct", r_sm);
    rep.write();
    std::printf("%s\n", table.render().c_str());
    std::printf("Shape check: FP benefits most (the Itanium FP model +\n"
                "the section-5 optimizations), Sysmark is roughly even.\n");
    return 0;
}
