#include "guest/image.hh"

#include "support/logging.hh"

namespace el::guest
{

uint32_t
load(const Image &image, mem::Memory &memory)
{
    for (const Section &s : image.sections) {
        el_assert(s.size >= s.bytes.size(), "section %s: size < bytes",
                  s.name.c_str());
        memory.map(s.addr, s.size, s.perm);
        if (!s.bytes.empty()) {
            auto r = memory.writeBytes(s.addr, s.bytes.data(),
                                       s.bytes.size());
            // Sections may be read-only; use the privileged path then.
            if (!r.ok()) {
                for (size_t k = 0; k < s.bytes.size(); ++k) {
                    auto pr = memory.writePriv(s.addr +
                                               static_cast<uint32_t>(k),
                                               1, s.bytes[k]);
                    el_assert(pr.ok(), "loader: cannot write section");
                }
            }
        }
        if (s.perm & mem::PermExec)
            memory.markCode(s.addr, s.size);
    }
    memory.map(Layout::stack_top - Layout::stack_size, Layout::stack_size,
               mem::PermRW);
    return Layout::stack_top - 64; // a small red zone below the top
}

} // namespace el::guest
