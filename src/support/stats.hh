/**
 * @file
 * Lightweight statistics: named counters, ratios and histograms, plus a
 * fixed-width table formatter used by the benchmark harnesses to print
 * paper-shaped result rows.
 */

#ifndef EL_SUPPORT_STATS_HH
#define EL_SUPPORT_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace el
{

/** A named group of integer counters with formatted reporting. */
class StatGroup
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void
    add(const std::string &name, uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Set counter @p name to @p value. */
    void set(const std::string &name, uint64_t value)
    {
        counters_[name] = value;
    }

    /** Read counter @p name (0 if absent). */
    uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Ratio of two counters as a double; 0 when the denominator is 0. */
    double
    ratio(const std::string &num, const std::string &den) const
    {
        uint64_t d = get(den);
        return d ? static_cast<double>(get(num)) / static_cast<double>(d)
                 : 0.0;
    }

    /**
     * Fold another group's counters into this one (summing). Used to
     * merge per-session/per-worker groups into the shared group on the
     * owning thread, so workers never touch shared counters.
     */
    void
    merge(const StatGroup &other)
    {
        for (const auto &[name, value] : other.counters_)
            counters_[name] += value;
    }

    /** Reset all counters to zero. */
    void clear() { counters_.clear(); }

    /** All counters, sorted by name. */
    const std::map<std::string, uint64_t> &all() const { return counters_; }

    /** Render as "name = value" lines. */
    std::string dump() const;

  private:
    std::map<std::string, uint64_t> counters_;
};

/** Simple fixed-bucket histogram for distribution-style statistics. */
class Histogram
{
  public:
    /**
     * @param lo Lowest bucket start.
     * @param bucket_width Width of each bucket; values <= 0 are clamped
     *        to 1 (a non-positive width would divide by zero in
     *        sample()).
     * @param n_buckets Number of buckets; samples above go to overflow.
     */
    Histogram(int64_t lo, int64_t bucket_width, unsigned n_buckets)
        : lo_(lo), width_(bucket_width > 0 ? bucket_width : 1),
          buckets_(n_buckets, 0)
    {}

    void sample(int64_t value, uint64_t count = 1);

    uint64_t totalSamples() const { return total_; }
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }
    const std::vector<uint64_t> &buckets() const { return buckets_; }
    int64_t bucketWidth() const { return width_; }

    /** Mean of all sampled values. */
    double mean() const;

    /**
     * Approximate p-th percentile (p in [0, 100]) by linear
     * interpolation inside the bucket holding the rank. Underflow
     * samples clamp to lo, overflow samples to the top edge. Returns
     * lo when the histogram is empty.
     */
    double percentile(double p) const;

    /** Text rendering: one "[lo, hi)  count  bar" line per bucket. */
    std::string dump() const;

  private:
    int64_t lo_;
    int64_t width_;
    std::vector<uint64_t> buckets_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
    double sum_ = 0.0;
};

/** Fixed-width text table used by the bench binaries. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Render the table with a header rule, column-aligned. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Geometric mean of a vector of positive values (0 if empty). */
double geomean(const std::vector<double> &values);

} // namespace el

#endif // EL_SUPPORT_STATS_HH
