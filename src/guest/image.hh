/**
 * @file
 * Guest program images and the loader.
 *
 * An Image is the IA-32 EL view of an application binary: sections of
 * raw bytes with permissions and an entry point. The loader maps it into
 * guest memory unchanged, "similar to their layout on the original IA-32
 * platform" (section 2), plus a stack. Sections on writable+executable
 * pages are the SMC-hazard case the translator guards against.
 */

#ifndef EL_GUEST_IMAGE_HH
#define EL_GUEST_IMAGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/memory.hh"

namespace el::guest
{

/** One loadable section. */
struct Section
{
    std::string name;
    uint32_t addr = 0;
    std::vector<uint8_t> bytes; //!< May be shorter than size (bss tail).
    uint32_t size = 0;          //!< Mapped size (>= bytes.size()).
    mem::Perm perm = mem::PermRW;
};

/** A guest program image. */
struct Image
{
    std::string name;
    uint32_t entry = 0;
    std::vector<Section> sections;

    /** Convenience: add a code section. */
    Section &
    addCode(uint32_t addr, std::vector<uint8_t> bytes, bool writable = false)
    {
        Section s;
        s.name = "text";
        s.addr = addr;
        s.size = static_cast<uint32_t>(bytes.size());
        s.bytes = std::move(bytes);
        s.perm = writable ? mem::PermRWX : mem::PermRX;
        sections.push_back(std::move(s));
        return sections.back();
    }

    /** Convenience: add a zero-filled data section. */
    Section &
    addData(uint32_t addr, uint32_t size)
    {
        Section s;
        s.name = "data";
        s.addr = addr;
        s.size = size;
        s.perm = mem::PermRW;
        sections.push_back(std::move(s));
        return sections.back();
    }
};

/** Canonical guest address-space layout used by the workload suite. */
struct Layout
{
    static constexpr uint32_t code_base = 0x08048000;
    static constexpr uint32_t data_base = 0x10000000;
    static constexpr uint32_t heap_base = 0x18000000;
    static constexpr uint32_t stack_top = 0x30000000;
    static constexpr uint32_t stack_size = 0x00100000;
};

/** Map an image (plus a stack) into @p memory. Returns the initial ESP. */
uint32_t load(const Image &image, mem::Memory &memory);

} // namespace el::guest

#endif // EL_GUEST_IMAGE_HH
